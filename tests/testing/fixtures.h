// Shared test fixtures: small assets, origins and sessions.
#pragma once

#include "common/rng.h"
#include "http/origin_server.h"
#include "media/encoder.h"
#include "media/scene.h"
#include "media/video_asset.h"
#include "services/service_catalog.h"

namespace vodx::testing {

/// A small three-rung VBR asset (plus optional audio), deterministic.
inline media::VideoAsset small_asset(Seconds duration = 60,
                                     bool separate_audio = false,
                                     Seconds segment_duration = 4,
                                     std::uint64_t seed = 1) {
  Rng rng(seed);
  Rng scene_rng = rng.fork(1);
  Rng video_rng = rng.fork(2);
  Rng audio_rng = rng.fork(3);
  media::SceneComplexity scenes =
      media::SceneComplexity::generate(duration, scene_rng);
  media::EncoderConfig config;
  std::vector<media::Track> video = media::encode_video_ladder(
      {400e3, 800e3, 1.6e6}, duration, segment_duration, config, scenes,
      video_rng);
  std::vector<media::Track> audio;
  if (separate_audio) {
    audio.push_back(media::encode_audio_track(96e3, duration, 2, audio_rng));
  }
  return media::VideoAsset("test-asset", std::move(video), std::move(audio));
}

/// A minimal synthetic service spec for session-level tests.
inline services::ServiceSpec test_spec(
    manifest::Protocol protocol = manifest::Protocol::kHls) {
  services::ServiceSpec spec;
  spec.name = "TEST";
  spec.protocol = protocol;
  spec.video_ladder = {400e3, 800e3, 1.6e6, 3.2e6};
  spec.segment_duration = 4;
  spec.separate_audio = protocol != manifest::Protocol::kHls;
  spec.player.name = "TEST";
  spec.player.startup_buffer = 8;
  spec.player.startup_bitrate = 800e3;
  spec.player.pausing_threshold = 30;
  spec.player.resuming_threshold = 25;
  spec.player.max_connections =
      protocol == manifest::Protocol::kHls ? 1 : 2;
  if (spec.audio_segment_duration <= 0) {
    spec.audio_segment_duration = spec.segment_duration;
  }
  return spec;
}

}  // namespace vodx::testing
