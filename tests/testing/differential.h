// Differential old-vs-new simulator-core harness.
//
// The event-driven core (net::SimCore::kEvent) must be observably identical
// to the retained fixed-tick reference (kFixedTickReference) — that is the
// whole determinism contract of the tick-skipping optimisation (DESIGN.md
// §13). This harness runs the same (service × profile × seed × fault
// scenario) grid through batch::run_sweep once per core and compares every
// cell field-by-field: SessionResult scalars, both QoE reports (methodology
// and ground truth), player events, fault stats and the full metrics
// snapshot. Numeric fields must agree within 1e-9; counts and strings must
// be exactly equal. On top of the structured comparison the serialized
// sweep outputs (CSV + JSONL) are compared byte-for-byte.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "batch/sweep.h"
#include "common/strings.h"
#include "core/qoe.h"

namespace vodx::testing {

/// The grid both cores sweep. Defaults keep a single cell; tests widen the
/// axes they care about.
struct DifferentialGrid {
  std::vector<std::string> services;        ///< catalog names
  std::vector<int> profiles = {7};          ///< 1-based Fig. 3 profile ids
  std::vector<std::uint64_t> seeds = {0};
  std::vector<std::string> fault_scenarios = {"none"};
  Seconds duration = 60;  ///< content == session duration
  int jobs = 2;
};

struct DifferentialResult {
  batch::SweepResult event;  ///< the kEvent sweep
  batch::SweepResult fixed;  ///< the kFixedTickReference sweep
  std::vector<std::string> mismatches;

  bool ok() const { return mismatches.empty(); }

  /// All mismatches, one per line (empty string when ok).
  std::string summary() const {
    std::string out;
    for (const std::string& m : mismatches) {
      out += m;
      out += '\n';
    }
    return out;
  }
};

namespace detail {

inline void diff_num(std::vector<std::string>& out, const std::string& where,
                     const char* field, double a, double b) {
  if (std::isnan(a) && std::isnan(b)) return;
  if (std::abs(a - b) <= 1e-9) return;
  out.push_back(format("%s: %s differs — event=%.12g fixed=%.12g",
                       where.c_str(), field, a, b));
}

inline void diff_int(std::vector<std::string>& out, const std::string& where,
                     const char* field, std::int64_t a, std::int64_t b) {
  if (a == b) return;
  out.push_back(format("%s: %s differs — event=%lld fixed=%lld",
                       where.c_str(), field, static_cast<long long>(a),
                       static_cast<long long>(b)));
}

inline void diff_text(std::vector<std::string>& out, const std::string& where,
                      const char* field, const std::string& a,
                      const std::string& b) {
  if (a == b) return;
  out.push_back(format("%s: %s differs — event=\"%s\" fixed=\"%s\"",
                       where.c_str(), field, a.c_str(), b.c_str()));
}

inline void diff_qoe(std::vector<std::string>& out, const std::string& where,
                     const core::QoeReport& a, const core::QoeReport& b) {
  diff_num(out, where, "startup_delay", a.startup_delay, b.startup_delay);
  diff_num(out, where, "total_stall", a.total_stall, b.total_stall);
  diff_int(out, where, "stall_count", a.stall_count, b.stall_count);
  diff_num(out, where, "average_declared_bitrate", a.average_declared_bitrate,
           b.average_declared_bitrate);
  diff_num(out, where, "displayed_time", a.displayed_time, b.displayed_time);
  diff_num(out, where, "low_quality_fraction", a.low_quality_fraction,
           b.low_quality_fraction);
  diff_int(out, where, "switch_count", a.switch_count, b.switch_count);
  diff_int(out, where, "nonconsecutive_switch_count",
           a.nonconsecutive_switch_count, b.nonconsecutive_switch_count);
  diff_num(out, where, "media_bytes", a.media_bytes, b.media_bytes);
  diff_num(out, where, "total_bytes", a.total_bytes, b.total_bytes);
  diff_num(out, where, "wasted_bytes", a.wasted_bytes, b.wasted_bytes);
  diff_int(out, where, "displayed.size",
           static_cast<std::int64_t>(a.displayed.size()),
           static_cast<std::int64_t>(b.displayed.size()));
  diff_int(out, where, "time_by_height.size",
           static_cast<std::int64_t>(a.time_by_height.size()),
           static_cast<std::int64_t>(b.time_by_height.size()));
  if (a.time_by_height.size() == b.time_by_height.size()) {
    auto ia = a.time_by_height.begin();
    auto ib = b.time_by_height.begin();
    for (; ia != a.time_by_height.end(); ++ia, ++ib) {
      diff_int(out, where, "time_by_height.key", ia->first, ib->first);
      diff_num(out, where, "time_by_height.value", ia->second, ib->second);
    }
  }
}

inline void diff_metrics(std::vector<std::string>& out,
                         const std::string& where,
                         const obs::MetricsSnapshot& a,
                         const obs::MetricsSnapshot& b) {
  diff_int(out, where, "metrics.entries",
           static_cast<std::int64_t>(a.entries.size()),
           static_cast<std::int64_t>(b.entries.size()));
  if (a.entries.size() != b.entries.size()) return;
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    const obs::MetricsSnapshot::Entry& ea = a.entries[i];
    const obs::MetricsSnapshot::Entry& eb = b.entries[i];
    const std::string at = where + " metric " + ea.name;
    diff_text(out, at, "name", ea.name, eb.name);
    diff_int(out, at, "type", static_cast<std::int64_t>(ea.type),
             static_cast<std::int64_t>(eb.type));
    diff_int(out, at, "count", ea.count, eb.count);
    diff_num(out, at, "value", ea.value, eb.value);
    diff_num(out, at, "min", ea.min, eb.min);
    diff_num(out, at, "mean", ea.mean, eb.mean);
    diff_num(out, at, "max", ea.max, eb.max);
    diff_int(out, at, "buckets.size",
             static_cast<std::int64_t>(ea.buckets.size()),
             static_cast<std::int64_t>(eb.buckets.size()));
    if (ea.buckets.size() == eb.buckets.size()) {
      for (std::size_t k = 0; k < ea.buckets.size(); ++k) {
        diff_int(out, at, "bucket", ea.buckets[k], eb.buckets[k]);
      }
    }
  }
}

inline void diff_cell(std::vector<std::string>& out,
                      const batch::CellResult& a, const batch::CellResult& b) {
  const std::string where = a.coordinates();
  diff_text(out, where, "service", a.service, b.service);
  diff_int(out, where, "profile_id", a.profile_id, b.profile_id);
  diff_text(out, where, "fault", a.fault, b.fault);
  diff_int(out, where, "ok", a.ok, b.ok);
  diff_text(out, where, "error", a.error, b.error);
  diff_int(out, where, "quarantined", a.quarantined, b.quarantined);
  if (!a.ok || !b.ok) return;

  const core::SessionResult& ra = a.result;
  const core::SessionResult& rb = b.result;
  diff_num(out, where, "session_end", ra.session_end, rb.session_end);
  diff_int(out, where, "final_state",
           static_cast<std::int64_t>(ra.final_state),
           static_cast<std::int64_t>(rb.final_state));
  diff_num(out, where, "final_position", ra.final_position,
           rb.final_position);
  diff_int(out, where, "events.stalls",
           static_cast<std::int64_t>(ra.events.stalls.size()),
           static_cast<std::int64_t>(rb.events.stalls.size()));
  diff_int(out, where, "events.displayed",
           static_cast<std::int64_t>(ra.events.displayed.size()),
           static_cast<std::int64_t>(rb.events.displayed.size()));
  diff_num(out, where, "events.startup_delay", ra.events.startup_delay(),
           rb.events.startup_delay());
  diff_int(out, where, "traffic.downloads",
           static_cast<std::int64_t>(ra.traffic.downloads.size()),
           static_cast<std::int64_t>(rb.traffic.downloads.size()));
  diff_num(out, where, "traffic.total_payload_bytes",
           ra.traffic.total_payload_bytes, rb.traffic.total_payload_bytes);
  diff_int(out, where, "buffer.samples",
           static_cast<std::int64_t>(ra.buffer.size()),
           static_cast<std::int64_t>(rb.buffer.size()));
  diff_int(out, where, "faults.rejected", ra.faults.rejected,
           rb.faults.rejected);
  diff_int(out, where, "faults.errors", ra.faults.errors, rb.faults.errors);
  diff_int(out, where, "faults.resets", ra.faults.resets, rb.faults.resets);
  diff_int(out, where, "faults.delayed", ra.faults.delayed,
           rb.faults.delayed);
  diff_qoe(out, where + " qoe", ra.qoe, rb.qoe);
  diff_qoe(out, where + " ground_truth", ra.ground_truth, rb.ground_truth);

  diff_int(out, where, "has_metrics", a.has_metrics, b.has_metrics);
  if (a.has_metrics && b.has_metrics) {
    diff_metrics(out, where, a.metrics, b.metrics);
  }
  diff_int(out, where, "trace_emitted",
           static_cast<std::int64_t>(a.trace_emitted),
           static_cast<std::int64_t>(b.trace_emitted));
  diff_int(out, where, "trace_dropped",
           static_cast<std::int64_t>(a.trace_dropped),
           static_cast<std::int64_t>(b.trace_dropped));
}

}  // namespace detail

/// Sweeps `grid` through both cores and compares. The two sweeps share
/// every config knob except SweepConfig::sim_core.
inline DifferentialResult run_differential(const DifferentialGrid& grid) {
  batch::SweepConfig config;
  for (const std::string& name : grid.services) {
    config.services.push_back(services::service(name));
  }
  config.profiles = grid.profiles;
  config.seeds = grid.seeds;
  config.fault_scenarios = grid.fault_scenarios;
  config.session_duration = grid.duration;
  config.content_duration = grid.duration;
  config.jobs = grid.jobs;
  config.collect_metrics = true;

  DifferentialResult out;
  config.sim_core = net::SimCore::kEvent;
  out.event = batch::run_sweep(config);
  config.sim_core = net::SimCore::kFixedTickReference;
  out.fixed = batch::run_sweep(config);

  if (out.event.cells.size() != out.fixed.cells.size()) {
    out.mismatches.push_back(
        format("grid size differs — event=%zu fixed=%zu",
               out.event.cells.size(), out.fixed.cells.size()));
    return out;
  }
  for (std::size_t i = 0; i < out.event.cells.size(); ++i) {
    detail::diff_cell(out.mismatches, out.event.cells[i],
                      out.fixed.cells[i]);
  }
  // Byte-level check of the serialized outputs (don't echo whole documents
  // into the mismatch list — just where they diverge).
  const auto diff_bytes = [&](const char* what, const std::string& a,
                              const std::string& b) {
    if (a == b) return;
    std::size_t at = 0;
    while (at < a.size() && at < b.size() && a[at] == b[at]) ++at;
    out.mismatches.push_back(format(
        "serialized %s differs at byte %zu (event %zu bytes, fixed %zu)",
        what, at, a.size(), b.size()));
  };
  diff_bytes("sweep_csv", batch::sweep_csv(out.event),
             batch::sweep_csv(out.fixed));
  diff_bytes("sweep_jsonl", batch::sweep_jsonl(out.event),
             batch::sweep_jsonl(out.fixed));
  return out;
}

}  // namespace vodx::testing
