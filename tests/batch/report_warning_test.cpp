// Trace-ring overflow must surface as an explicit warning row in every
// report format — and stay invisible on clean sweeps (golden-pinned
// layouts must not shift).
#include <gtest/gtest.h>

#include <string>

#include "batch/report.h"
#include "batch/sweep.h"

namespace vodx::batch {
namespace {

CellResult cell(const std::string& service, int profile,
                std::uint64_t dropped, std::uint64_t emitted) {
  CellResult c;
  c.service = service;
  c.profile_id = profile;
  c.fault = "none";
  c.ok = true;
  c.trace_emitted = emitted;
  c.trace_dropped = dropped;
  return c;
}

TEST(ReportWarning, DroppedEventsRenderAWarningRow) {
  SweepResult result;
  result.cells.push_back(cell("H1", 7, 0, 100));
  result.cells.push_back(cell("H2", 7, 5, 100));
  const SweepMetrics metrics = aggregate_metrics(result);
  EXPECT_EQ(metrics.trace_dropped, 5u);
  ASSERT_EQ(metrics.dropped_cells.size(), 1u);

  const std::string text = report_text(metrics);
  EXPECT_NE(text.find("== warnings =="), std::string::npos);
  EXPECT_NE(text.find("WARNING"), std::string::npos);
  EXPECT_NE(text.find("dropped 5 of 100"), std::string::npos);
  EXPECT_NE(text.find("H2"), std::string::npos);
  // The clean cell must not be named in the warning section.
  EXPECT_EQ(text.find("WARNING (H1"), std::string::npos);

  const std::string html = report_html(metrics);
  EXPECT_NE(html.find("<h2>warnings</h2>"), std::string::npos);
  EXPECT_NE(html.find("dropped 5 of 100"), std::string::npos);
}

TEST(ReportWarning, JsonlCarriesPerCellDropCounts) {
  SweepResult result;
  result.cells.push_back(cell("H1", 7, 0, 100));
  result.cells.push_back(cell("H2", 7, 5, 100));
  const SweepMetrics metrics = aggregate_metrics(result);
  const std::string jsonl = report_jsonl(result, metrics);
  EXPECT_NE(jsonl.find("\"trace_dropped\":5"), std::string::npos);
  // Exactly one cell line carries the key.
  const std::size_t first = jsonl.find("\"trace_dropped\"");
  EXPECT_EQ(jsonl.find("\"trace_dropped\"", first + 1), std::string::npos);
}

TEST(ReportWarning, CleanSweepHasNoWarningSection) {
  SweepResult result;
  result.cells.push_back(cell("H1", 7, 0, 100));
  const SweepMetrics metrics = aggregate_metrics(result);
  EXPECT_EQ(metrics.trace_dropped, 0u);
  EXPECT_TRUE(metrics.dropped_cells.empty());
  const std::string text = report_text(metrics);
  EXPECT_EQ(text.find("warnings"), std::string::npos);
  EXPECT_EQ(text.find("WARNING"), std::string::npos);
  const std::string html = report_html(metrics);
  EXPECT_EQ(html.find("<h2>warnings</h2>"), std::string::npos);
  const std::string jsonl = report_jsonl(result, metrics);
  EXPECT_EQ(jsonl.find("trace_dropped"), std::string::npos);
}

}  // namespace
}  // namespace vodx::batch
