#include "batch/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace vodx::batch {
namespace {

TEST(BatchPool, ResolveJobsHonoursExplicitCounts) {
  EXPECT_EQ(resolve_jobs(1), 1);
  EXPECT_EQ(resolve_jobs(7), 7);
}

TEST(BatchPool, ResolveJobsZeroMeansHardware) {
  EXPECT_GE(resolve_jobs(0), 1);
  EXPECT_GE(resolve_jobs(-3), 1);
}

TEST(BatchPool, RunsEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  parallel_for(kCount, 8, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(BatchPool, MoreWorkersThanItems) {
  std::vector<std::atomic<int>> hits(3);
  parallel_for(3, 16, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(hits[0].load() + hits[1].load() + hits[2].load(), 3);
}

TEST(BatchPool, ZeroItemsIsANoop) {
  bool ran = false;
  parallel_for(0, 4, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(BatchPool, ParallelMapPreservesIndexOrder) {
  const std::vector<int> out = parallel_map<int>(
      257, 7, [](std::size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(BatchPool, RethrowsTheLowestFailingIndex) {
  // Indices 11 and 37 both fail; whichever worker hits them, the exception
  // that escapes must be the one from index 11.
  for (int jobs : {1, 4}) {
    try {
      parallel_for(100, jobs, [](std::size_t i) {
        if (i == 11 || i == 37) {
          throw std::runtime_error("boom@" + std::to_string(i));
        }
      });
      FAIL() << "expected an exception (jobs=" << jobs << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom@11") << "jobs=" << jobs;
    }
  }
}

}  // namespace
}  // namespace vodx::batch
