// Seed sensitivity: different sweep seeds must produce *different* channel
// and content realisations (catching accidental RNG sharing or seed
// collapse across cells) while staying inside the documented tolerance
// bands for the reference player on a mid-tier profile — the realisations
// vary, the regime does not. Bands are documented in DESIGN.md §8.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "batch/sweep.h"
#include "common/stats.h"
#include "support.h"

namespace vodx::batch {
namespace {

SweepResult reference_sweep() {
  SweepConfig config;
  config.services = {bench::reference_player_spec()};
  config.profiles = {7};  // ~5.5 Mbps mean, comfortably above the ladder mid
  config.seeds = {0, 1, 2, 3, 4};
  config.jobs = 4;
  return run_sweep(config);
}

TEST(SeedSensitivity, DifferentSeedsGiveDifferentRealisations) {
  const SweepResult sweep = reference_sweep();
  ASSERT_EQ(sweep.cells.size(), 5u);
  std::set<long long> bytes;
  std::set<double> bitrates;
  for (const CellResult& cell : sweep.cells) {
    ASSERT_TRUE(cell.ok) << cell.coordinates() << ": " << cell.error;
    bytes.insert(static_cast<long long>(cell.result.qoe.total_bytes));
    bitrates.insert(cell.result.qoe.average_declared_bitrate);
  }
  // If seeds were collapsing (every cell fed the same RNG material), these
  // sets would have one element.
  EXPECT_GT(bytes.size(), 1u);
  EXPECT_GT(bitrates.size(), 1u);
}

TEST(SeedSensitivity, QoeStaysWithinToleranceBands) {
  const SweepResult sweep = reference_sweep();
  std::vector<double> bitrates;
  for (const CellResult& cell : sweep.cells) {
    ASSERT_TRUE(cell.ok) << cell.coordinates() << ": " << cell.error;
    bitrates.push_back(cell.result.qoe.average_declared_bitrate);
  }
  const double med = median(bitrates);
  ASSERT_GT(med, 0);

  for (const CellResult& cell : sweep.cells) {
    const core::QoeReport& q = cell.result.qoe;
    // Startup: the reference player needs 10 s of buffer; on ~5.5 Mbps that
    // is seconds, not tens of seconds, under any seed.
    EXPECT_GE(q.startup_delay, 0) << cell.coordinates();
    EXPECT_LE(q.startup_delay, 20.0) << cell.coordinates();
    // Quality: seeds shuffle the fades, not the mean bandwidth, so the
    // chosen bitrate stays within ±60% of the cross-seed median.
    EXPECT_GE(q.average_declared_bitrate, 0.4 * med) << cell.coordinates();
    EXPECT_LE(q.average_declared_bitrate, 1.6 * med) << cell.coordinates();
    // Stalls: profile 7 leaves headroom; a seed change must never push the
    // reference player into a stall-dominated regime.
    EXPECT_LE(q.total_stall, 60.0) << cell.coordinates();
    EXPECT_LE(q.stall_count, 12) << cell.coordinates();
  }
}

}  // namespace
}  // namespace vodx::batch
