// Self-healing sweeps: wall-budget watchdogs quarantine a cell after
// bounded retries without failing the grid, deterministic failures are not
// retried, and quarantines surface explicitly in every output format.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "batch/report.h"
#include "batch/sweep.h"
#include "testing/fixtures.h"

namespace vodx::batch {
namespace {

SweepConfig tiny_grid() {
  SweepConfig config;
  services::ServiceSpec spec = testing::test_spec(manifest::Protocol::kHls);
  config.services = {spec};
  config.profiles = {1, 7};
  config.seeds = {0};
  config.session_duration = 20;
  config.content_duration = 60;
  return config;
}

/// Sabotages profile-index 1's cell with an unmeetable wall budget; the
/// other cell keeps the config's (unlimited) budget.
void sabotage_profile_1(const Cell& cell, core::SessionConfig& session) {
  if (cell.profile_index == 1) session.wall_budget = 1e-9;
}

TEST(SelfHeal, WallBudgetCellIsQuarantinedAfterBoundedRetries) {
  SweepConfig config = tiny_grid();
  config.cell_retries = 1;
  config.prepare = sabotage_profile_1;
  const SweepResult result = run_sweep(config);
  ASSERT_EQ(result.cells.size(), 2u);

  const CellResult& healthy = result.cells[0];
  EXPECT_TRUE(healthy.ok) << healthy.error;
  EXPECT_FALSE(healthy.quarantined);
  EXPECT_EQ(healthy.attempts, 1);

  const CellResult& sick = result.cells[1];
  EXPECT_FALSE(sick.ok);
  EXPECT_TRUE(sick.quarantined);
  EXPECT_EQ(sick.attempts, 2) << "1 initial attempt + 1 retry";
  EXPECT_NE(sick.error.find("watchdog"), std::string::npos) << sick.error;

  EXPECT_EQ(result.failed, 1);
  EXPECT_EQ(result.quarantined, 1);
  EXPECT_EQ(result.retried, 1);
}

TEST(SelfHeal, RetryCanRescueACellWhoseFirstAttemptTripped) {
  // The prepare hook poisons only the first attempt: attempt numbers are
  // not exposed, so key off a per-test counter. Retries rebuild the whole
  // session, so the second attempt runs clean and the cell succeeds.
  SweepConfig config = tiny_grid();
  config.profiles = {1};
  config.cell_retries = 2;
  int calls = 0;
  config.prepare = [&calls](const Cell&, core::SessionConfig& session) {
    if (calls++ == 0) session.wall_budget = 1e-9;
  };
  const SweepResult result = run_sweep(config);
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_TRUE(result.cells[0].ok) << result.cells[0].error;
  EXPECT_FALSE(result.cells[0].quarantined);
  EXPECT_EQ(result.cells[0].attempts, 2);
  EXPECT_EQ(result.failed, 0);
  EXPECT_EQ(result.quarantined, 0);
  EXPECT_EQ(result.retried, 1);
}

TEST(SelfHeal, DeterministicFailuresAreNotRetried) {
  // An unknown fault scenario throws ConfigError inside the attempt,
  // identically every time: one attempt, no quarantine, no retries.
  SweepConfig config = tiny_grid();
  config.profiles = {1};
  config.fault_scenarios = {"no-such-scenario"};
  config.cell_retries = 3;
  const SweepResult result = run_sweep(config);
  ASSERT_EQ(result.cells.size(), 1u);
  const CellResult& bad = result.cells[0];
  EXPECT_FALSE(bad.ok);
  EXPECT_FALSE(bad.quarantined);
  EXPECT_EQ(bad.attempts, 1) << "retrying a deterministic failure is futile";
  EXPECT_EQ(result.quarantined, 0);
  EXPECT_EQ(result.retried, 0);
}

TEST(SelfHeal, ConfigRejectedCellsNeverEvenAttempt) {
  SweepConfig config = tiny_grid();
  config.profiles = {99};  // rejected before the attempt loop
  config.cell_retries = 3;
  const SweepResult result = run_sweep(config);
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_FALSE(result.cells[0].ok);
  EXPECT_EQ(result.cells[0].attempts, 0);
  EXPECT_EQ(result.retried, 0);
}

TEST(SelfHeal, QuarantineSurfacesInJsonlReportAndHtml) {
  SweepConfig config = tiny_grid();
  config.cell_retries = 1;
  config.collect_metrics = true;
  config.prepare = sabotage_profile_1;
  const SweepResult result = run_sweep(config);

  const std::string jsonl = sweep_jsonl(result);
  EXPECT_NE(jsonl.find("\"quarantined\":true"), std::string::npos) << jsonl;
  EXPECT_NE(jsonl.find("\"attempts\":2"), std::string::npos) << jsonl;

  const SweepMetrics metrics = aggregate_metrics(result);
  EXPECT_EQ(metrics.quarantined, 1);
  ASSERT_EQ(metrics.quarantined_cells.size(), 1u);
  EXPECT_NE(metrics.quarantined_cells[0].find("profile 7"), std::string::npos);

  const std::string text = report_text(metrics);
  EXPECT_NE(text.find("1 quarantined"), std::string::npos) << text;
  EXPECT_NE(text.find("QUARANTINED"), std::string::npos) << text;

  const std::string report = report_jsonl(result, metrics);
  EXPECT_NE(report.find("\"quarantined\":1"), std::string::npos) << report;

  const std::string html = report_html(metrics);
  EXPECT_NE(html.find("quarantined"), std::string::npos);
}

TEST(SelfHeal, CleanSweepReportsNoQuarantineClause) {
  SweepConfig config = tiny_grid();
  config.collect_metrics = true;
  const SweepResult result = run_sweep(config);
  EXPECT_EQ(result.quarantined, 0);
  EXPECT_EQ(result.retried, 0);
  for (const CellResult& cell : result.cells) {
    EXPECT_EQ(cell.attempts, 1);
  }
  const std::string text = report_text(aggregate_metrics(result));
  EXPECT_EQ(text.find("quarantined"), std::string::npos)
      << "the clause must only appear when a cell was quarantined";
}

TEST(SelfHeal, QuarantinedGridIsDeterministicAcrossJobs) {
  SweepConfig config = tiny_grid();
  config.profiles = {1, 7, 9, 11};
  config.cell_retries = 1;
  config.prepare = sabotage_profile_1;
  config.jobs = 1;
  const std::string serial = sweep_jsonl(run_sweep(config));
  config.jobs = 4;
  const std::string parallel = sweep_jsonl(run_sweep(config));
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace vodx::batch
