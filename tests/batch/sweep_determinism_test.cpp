// The determinism contract, enforced end to end: the serialized output of a
// sweep must not depend on the worker count, on repetition, or on anything
// but the grid and its seeds. See DESIGN.md §8.
#include <gtest/gtest.h>

#include <string>

#include "batch/sweep.h"
#include "common/strings.h"
#include "core/report.h"
#include "testing/fixtures.h"

namespace vodx::batch {
namespace {

/// The full 12-service × 14-profile paper grid, shortened sessions so the
/// three sweeps stay test-suite friendly (the artefact harnesses run the
/// full 600 s).
SweepConfig paper_grid(int jobs) {
  SweepConfig config = full_grid();
  config.session_duration = 120;
  config.jobs = jobs;
  return config;
}

/// Everything observable about a session, serialized: QoE row, the inferred
/// buffer timeline, and the ground-truth event counts.
std::string session_fingerprint(const core::SessionResult& r) {
  return core::qoe_csv_row("cell", r) + core::buffer_csv(r) +
         format("replacements:%zu stalls:%zu displayed:%zu final:%.4f "
                "end:%.4f start:%.4f",
                r.events.replacements.size(), r.events.stalls.size(),
                r.events.displayed.size(), r.final_position, r.session_end,
                r.events.playback_started);
}

TEST(SweepDeterminism, FullGridByteIdenticalAcrossJobCounts) {
  const SweepResult serial = run_sweep(paper_grid(1));
  ASSERT_EQ(serial.cells.size(),
            static_cast<std::size_t>(12 * trace::kProfileCount));
  ASSERT_EQ(serial.failed, 0);
  const std::string csv1 = sweep_csv(serial);
  const std::string jsonl1 = sweep_jsonl(serial);

  for (int jobs : {2, 8}) {
    const SweepResult parallel = run_sweep(paper_grid(jobs));
    EXPECT_EQ(parallel.failed, 0);
    EXPECT_EQ(sweep_csv(parallel), csv1) << "jobs=" << jobs;
    EXPECT_EQ(sweep_jsonl(parallel), jsonl1) << "jobs=" << jobs;
  }
}

TEST(SweepDeterminism, RepeatedSweepIsByteIdentical) {
  SweepConfig config = full_grid();
  config.services = {services::catalog()[0], services::catalog()[7]};
  config.session_duration = 60;
  config.jobs = 3;
  const SweepResult a = run_sweep(config);
  const SweepResult b = run_sweep(config);
  EXPECT_EQ(sweep_csv(a), sweep_csv(b));
  EXPECT_EQ(sweep_jsonl(a), sweep_jsonl(b));
}

TEST(SweepDeterminism, SameSeedSessionIsIdentical) {
  core::SessionConfig config;
  config.spec = testing::test_spec(manifest::Protocol::kDash);
  config.trace = trace::cellular_profile(5);
  config.session_duration = 120;
  config.content_duration = 120;
  const core::SessionResult a = core::run_session(config);
  const core::SessionResult b = core::run_session(config);
  EXPECT_EQ(session_fingerprint(a), session_fingerprint(b));
}

TEST(SweepDeterminism, SeededCellsMatchAcrossSweeps) {
  // A cell's result depends only on its coordinates: the same (service,
  // profile, seed) embedded in two different grids serializes identically.
  SweepConfig wide = full_grid();
  wide.services = {services::catalog()[2]};
  wide.profiles = {3, 6, 9};
  wide.seeds = {1, 4};
  wide.session_duration = 60;
  wide.jobs = 4;

  SweepConfig narrow = wide;
  narrow.profiles = {6};
  narrow.seeds = {4};
  narrow.jobs = 1;

  const SweepResult w = run_sweep(wide);
  const SweepResult n = run_sweep(narrow);
  ASSERT_EQ(n.cells.size(), 1u);
  const CellResult* match = nullptr;
  for (const CellResult& cell : w.cells) {
    if (cell.profile_id == 6 && cell.seed == 4) match = &cell;
  }
  ASSERT_NE(match, nullptr);
  EXPECT_EQ(session_fingerprint(match->result),
            session_fingerprint(n.cells[0].result));
}

}  // namespace
}  // namespace vodx::batch
