// End-to-end aggregation determinism: a 12-service x 3-profile sweep with
// per-cell metric collection must produce a byte-identical merged
// MetricsSnapshot — and byte-identical rendered reports — at --jobs 1, 2
// and 8. This is the acceptance gate for the mergeable-snapshot design.
#include <gtest/gtest.h>

#include "batch/report.h"
#include "batch/sweep.h"
#include "obs/export.h"
#include "services/service_catalog.h"

namespace vodx::batch {
namespace {

SweepConfig grid(int jobs) {
  SweepConfig config;
  config.services = services::catalog();
  config.profiles = {3, 7, 11};
  config.session_duration = 60;
  config.content_duration = 60;
  config.collect_metrics = true;
  config.jobs = jobs;
  return config;
}

TEST(MetricsRollup, AggregateIsByteIdenticalAcrossJobCounts) {
  const SweepResult r1 = run_sweep(grid(1));
  ASSERT_EQ(r1.failed, 0);
  ASSERT_EQ(r1.cells.size(), 36u);
  const SweepMetrics m1 = aggregate_metrics(r1);
  const std::string merged1 = obs::metrics_json(m1.overall.metrics);
  const std::string text1 = report_text(m1);
  const std::string jsonl1 = report_jsonl(r1, m1);

  for (int jobs : {2, 8}) {
    const SweepResult rn = run_sweep(grid(jobs));
    ASSERT_EQ(rn.failed, 0);
    const SweepMetrics mn = aggregate_metrics(rn);
    EXPECT_EQ(obs::metrics_json(mn.overall.metrics), merged1)
        << "merged snapshot differs at jobs=" << jobs;
    EXPECT_EQ(report_text(mn), text1) << "text report differs at jobs=" << jobs;
    EXPECT_EQ(report_jsonl(rn, mn), jsonl1)
        << "report JSONL differs at jobs=" << jobs;
  }
}

TEST(MetricsRollup, EveryCellCarriesASnapshot) {
  const SweepResult result = run_sweep(grid(4));
  for (const CellResult& cell : result.cells) {
    ASSERT_TRUE(cell.ok) << cell.coordinates();
    EXPECT_TRUE(cell.has_metrics) << cell.coordinates();
    EXPECT_NE(cell.metrics.find("session.total_bytes"), nullptr)
        << cell.coordinates();
  }
}

TEST(MetricsRollup, RollupKeysFollowGridOrderAndCountCells) {
  const SweepResult result = run_sweep(grid(4));
  const SweepMetrics metrics = aggregate_metrics(result);

  EXPECT_EQ(metrics.total_cells, 36);
  EXPECT_EQ(metrics.overall.cells, 36);

  const std::vector<services::ServiceSpec> catalog = services::catalog();
  ASSERT_EQ(metrics.by_service.size(), catalog.size());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ(metrics.by_service[i].key, catalog[i].name);
    EXPECT_EQ(metrics.by_service[i].cells, 3);  // one per profile
  }

  ASSERT_EQ(metrics.by_profile.size(), 3u);
  EXPECT_EQ(metrics.by_profile[0].key, "profile 3");
  EXPECT_EQ(metrics.by_profile[1].key, "profile 7");
  EXPECT_EQ(metrics.by_profile[2].key, "profile 11");
  for (const Rollup& rollup : metrics.by_profile) {
    EXPECT_EQ(rollup.cells, 12);  // one per service
  }

  ASSERT_EQ(metrics.by_fault.size(), 1u);
  EXPECT_EQ(metrics.by_fault[0].key, "none");
  EXPECT_EQ(metrics.by_fault[0].cells, 36);
}

TEST(MetricsRollup, OverallCountersEqualTheSumOfPerCellCounters) {
  const SweepResult result = run_sweep(grid(4));
  const SweepMetrics metrics = aggregate_metrics(result);
  std::int64_t by_hand = 0;
  for (const CellResult& cell : result.cells) {
    by_hand += cell.metrics.find("session.total_bytes")->count;
  }
  EXPECT_EQ(metrics.overall.metrics.find("session.total_bytes")->count,
            by_hand);
}

TEST(MetricsRollup, CellsWithoutMetricsAreSkippedButCounted) {
  SweepConfig config = grid(1);
  config.profiles = {7, 99};  // 99 is out of range: the cell fails
  const SweepResult result = run_sweep(config);
  EXPECT_EQ(result.failed, 12);
  const SweepMetrics metrics = aggregate_metrics(result);
  EXPECT_EQ(metrics.total_cells, 24);
  EXPECT_EQ(metrics.failed, 12);
  EXPECT_EQ(metrics.overall.cells, 12);
  // The failed profile never contributes a rollup key.
  ASSERT_EQ(metrics.by_profile.size(), 1u);
  EXPECT_EQ(metrics.by_profile[0].key, "profile 7");
}

}  // namespace
}  // namespace vodx::batch
