#include "batch/sweep.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/strings.h"
#include "testing/fixtures.h"

namespace vodx::batch {
namespace {

/// A fast grid: tiny sessions, two synthetic services.
SweepConfig small_grid(std::vector<int> profiles = {1, 7},
                       std::vector<std::uint64_t> seeds = {0}) {
  SweepConfig config;
  services::ServiceSpec hls = testing::test_spec(manifest::Protocol::kHls);
  services::ServiceSpec dash = testing::test_spec(manifest::Protocol::kDash);
  hls.name = "TH";
  hls.player.name = "TH";
  dash.name = "TD";
  dash.player.name = "TD";
  config.services = {hls, dash};
  config.profiles = std::move(profiles);
  config.seeds = std::move(seeds);
  config.session_duration = 30;
  config.content_duration = 120;
  return config;
}

TEST(SweepEngine, DeriveSeedIsPureAndTagSeparated) {
  EXPECT_EQ(derive_seed(1, 2, 3, 4), derive_seed(1, 2, 3, 4));
  EXPECT_NE(derive_seed(1, 2, 3, 4), derive_seed(1, 2, 3, 5));
  EXPECT_NE(derive_seed(1, 2, 3, 4), derive_seed(1, 2, 4, 3));
  EXPECT_NE(derive_seed(1, 2), derive_seed(2, 1));
  EXPECT_NE(derive_seed(42, 1), 42u);
}

TEST(SweepEngine, SeedZeroMapsToLegacySeeds) {
  EXPECT_EQ(trace_seed_for(0), kLegacyTraceSeed);
  EXPECT_EQ(content_seed_for(0), kLegacyContentSeed);
  EXPECT_NE(trace_seed_for(1), kLegacyTraceSeed);
  EXPECT_NE(content_seed_for(1), kLegacyContentSeed);
  // Trace and content streams must never collapse onto each other.
  EXPECT_NE(trace_seed_for(1), content_seed_for(1));
  EXPECT_NE(trace_seed_for(7), trace_seed_for(8));
}

TEST(SweepEngine, GridOrderIsServiceMajorThenProfileThenSeed) {
  SweepConfig config = small_grid({1, 7}, {0, 3});
  SweepResult result = run_sweep(config);
  ASSERT_EQ(result.cells.size(), 8u);
  const char* expected_service[] = {"TH", "TH", "TH", "TH",
                                    "TD", "TD", "TD", "TD"};
  const int expected_profile[] = {1, 1, 7, 7, 1, 1, 7, 7};
  const std::uint64_t expected_seed[] = {0, 3, 0, 3, 0, 3, 0, 3};
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const CellResult& cell = result.cells[i];
    EXPECT_EQ(cell.service, expected_service[i]) << "cell " << i;
    EXPECT_EQ(cell.profile_id, expected_profile[i]) << "cell " << i;
    EXPECT_EQ(cell.seed, expected_seed[i]) << "cell " << i;
    EXPECT_TRUE(cell.ok) << cell.error;
    EXPECT_GT(cell.result.session_end, 0);
  }
  EXPECT_EQ(result.failed, 0);
}

TEST(SweepEngine, BadProfileIdFailsOnlyItsCells) {
  SweepConfig config = small_grid({1, 99});
  SweepResult result = run_sweep(config);
  ASSERT_EQ(result.cells.size(), 4u);
  EXPECT_EQ(result.failed, 2);
  for (const CellResult& cell : result.cells) {
    if (cell.profile_id == 99) {
      EXPECT_FALSE(cell.ok);
      EXPECT_NE(cell.error.find("out of range"), std::string::npos);
      EXPECT_NE(cell.coordinates().find("profile 99"), std::string::npos);
    } else {
      EXPECT_TRUE(cell.ok) << cell.error;
    }
  }
}

TEST(SweepEngine, CsvHasCoordinateColumnsAndSkipsFailedCells) {
  SweepConfig config = small_grid({1, 99});
  SweepResult result = run_sweep(config);
  const std::string csv = sweep_csv(result);
  const std::vector<std::string> lines = split_lines(csv);
  ASSERT_GE(lines.size(), 3u);
  EXPECT_TRUE(starts_with(lines[0],
                          "service,profile,seed,fault,origin,startup_delay_s"));
  EXPECT_TRUE(starts_with(lines[1], "TH,1,0,none,none,"));
  EXPECT_TRUE(starts_with(lines[2], "TD,1,0,none,none,"));
  EXPECT_EQ(csv.find(",99,"), std::string::npos);  // failed cells excluded
}

TEST(SweepEngine, JsonlCarriesErrorsWithCoordinates) {
  SweepConfig config = small_grid({1, 99});
  SweepResult result = run_sweep(config);
  const std::string jsonl = sweep_jsonl(result);
  const std::vector<std::string> lines = split_lines(jsonl);
  ASSERT_EQ(lines.size(), 4u);  // every cell serializes, failed or not
  int ok_lines = 0;
  int error_lines = 0;
  for (const std::string& line : lines) {
    if (line.find("\"ok\":true") != std::string::npos) ++ok_lines;
    if (line.find("\"ok\":false") != std::string::npos &&
        line.find("\"profile\":99") != std::string::npos &&
        line.find("out of range") != std::string::npos) {
      ++error_lines;
    }
  }
  EXPECT_EQ(ok_lines, 2);
  EXPECT_EQ(error_lines, 2);
}

TEST(SweepEngine, ObserverCallbackRunsInGridOrderWithPopulatedTraces) {
  SweepConfig config = small_grid({1, 7});
  config.jobs = 4;
  std::vector<std::string> order;
  std::vector<std::size_t> trace_sizes;
  config.observe = [&](const CellResult& cell, const obs::Observer& observer) {
    order.push_back(format("%s/%d", cell.service.c_str(), cell.profile_id));
    trace_sizes.push_back(observer.trace.size());
  };
  run_sweep(config);
  const std::vector<std::string> expected = {"TH/1", "TH/7", "TD/1", "TD/7"};
  EXPECT_EQ(order, expected);
  for (std::size_t size : trace_sizes) EXPECT_GT(size, 0u);
}

TEST(SweepEngine, ProgressTicksOncePerCell) {
  SweepConfig config = small_grid({1, 7});
  config.jobs = 2;
  std::size_t ticks = 0;
  std::size_t last_total = 0;
  config.progress = [&](const CellResult&, std::size_t done,
                        std::size_t total) {
    ++ticks;
    EXPECT_LE(done, total);
    last_total = total;
  };
  run_sweep(config);
  EXPECT_EQ(ticks, 4u);
  EXPECT_EQ(last_total, 4u);
}

TEST(SweepEngine, FullGridSpansCatalogAndProfiles) {
  SweepConfig config = full_grid();
  EXPECT_EQ(config.services.size(), services::catalog().size());
  EXPECT_EQ(config.profiles.size(),
            static_cast<std::size_t>(trace::kProfileCount));
  EXPECT_EQ(config.seeds, std::vector<std::uint64_t>{0});
}

}  // namespace
}  // namespace vodx::batch
