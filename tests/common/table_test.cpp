#include "common/table.h"

#include <gtest/gtest.h>

namespace vodx {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name    value"), std::string::npos);
  EXPECT_NE(out.find("longer  22"), std::string::npos);
}

TEST(Table, HeaderSeparatorPresent) {
  Table t({"a"});
  t.add_row({"b"});
  const std::string out = t.render();
  EXPECT_NE(out.find("-"), std::string::npos);
}

TEST(Table, EmptyTableStillRendersHeader) {
  Table t({"col1", "col2"});
  const std::string out = t.render();
  EXPECT_NE(out.find("col1"), std::string::npos);
}

TEST(TableDeathTest, RowArityMismatchAborts) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "arity");
}

}  // namespace
}  // namespace vodx
