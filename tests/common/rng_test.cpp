#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace vodx {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform_int(0, 1000) == b.uniform_int(0, 1000)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.uniform(2.0, 3.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(42);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    auto x = rng.uniform_int(0, 3);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 3);
    saw_lo |= x == 0;
    saw_hi |= x == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, LognormalMedianRoughlyCorrect) {
  Rng rng(42);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.lognormal(2.0, 0.5));
  std::sort(xs.begin(), xs.end());
  EXPECT_NEAR(xs[xs.size() / 2], 2.0, 0.1);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(9);
  Rng child_a = parent.fork(1);
  Rng child_b = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child_a.uniform_int(0, 100000) == child_b.uniform_int(0, 100000)) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkDeterministicFromSameState) {
  EXPECT_DOUBLE_EQ(Rng(5).fork(3).uniform(0, 1), Rng(5).fork(3).uniform(0, 1));
}

}  // namespace
}  // namespace vodx
