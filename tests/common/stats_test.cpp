#include "common/stats.h"

#include <gtest/gtest.h>

namespace vodx {
namespace {

TEST(Mean, Basics) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({-5, 5}), 0.0);
}

TEST(Median, OddAndEven) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> xs{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 50);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 30);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 20);
  EXPECT_DOUBLE_EQ(percentile(xs, 90), 46);
}

TEST(Percentile, ClampsOutOfRangeP) {
  std::vector<double> xs{1, 2};
  EXPECT_DOUBLE_EQ(percentile(xs, -10), 1);
  EXPECT_DOUBLE_EQ(percentile(xs, 200), 2);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7}, 50), 7);
}

TEST(Stddev, KnownValue) {
  EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(stddev({5}), 0.0);
}

TEST(MinMax, Basics) {
  EXPECT_DOUBLE_EQ(min_of({3, 1, 2}), 1);
  EXPECT_DOUBLE_EQ(max_of({3, 1, 2}), 3);
  EXPECT_DOUBLE_EQ(min_of({}), 0);
}

TEST(Accumulator, TracksRunningStats) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  acc.add(2);
  acc.add(4);
  acc.add(9);
  EXPECT_EQ(acc.count(), 3);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(Accumulator, NegativeValuesSetMinMax) {
  Accumulator acc;
  acc.add(-3);
  EXPECT_DOUBLE_EQ(acc.min(), -3);
  EXPECT_DOUBLE_EQ(acc.max(), -3);
}

}  // namespace
}  // namespace vodx
