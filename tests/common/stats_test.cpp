#include "common/stats.h"

#include <gtest/gtest.h>

namespace vodx {
namespace {

TEST(Mean, Basics) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({-5, 5}), 0.0);
}

TEST(Median, OddAndEven) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> xs{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 50);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 30);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 20);
  EXPECT_DOUBLE_EQ(percentile(xs, 90), 46);
}

TEST(Percentile, ClampsOutOfRangeP) {
  std::vector<double> xs{1, 2};
  EXPECT_DOUBLE_EQ(percentile(xs, -10), 1);
  EXPECT_DOUBLE_EQ(percentile(xs, 200), 2);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7}, 50), 7);
}

TEST(Stddev, KnownValue) {
  EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(stddev({5}), 0.0);
}

TEST(MinMax, Basics) {
  EXPECT_DOUBLE_EQ(min_of({3, 1, 2}), 1);
  EXPECT_DOUBLE_EQ(max_of({3, 1, 2}), 3);
  EXPECT_DOUBLE_EQ(min_of({}), 0);
}

TEST(Quantiles, MatchesPercentileCalls) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(static_cast<double>(101 - i));
  const QuantileSummary q = quantiles(xs);
  EXPECT_DOUBLE_EQ(q.p50, percentile(xs, 50));
  EXPECT_DOUBLE_EQ(q.p95, percentile(xs, 95));
  EXPECT_DOUBLE_EQ(q.p99, percentile(xs, 99));
}

TEST(Quantiles, EmptyAndSingle) {
  const QuantileSummary empty = quantiles({});
  EXPECT_DOUBLE_EQ(empty.p50, 0);
  EXPECT_DOUBLE_EQ(empty.p95, 0);
  EXPECT_DOUBLE_EQ(empty.p99, 0);
  const QuantileSummary one = quantiles({7});
  EXPECT_DOUBLE_EQ(one.p50, 7);
  EXPECT_DOUBLE_EQ(one.p99, 7);
}

TEST(JainIndex, EqualSharesAreFair) {
  EXPECT_DOUBLE_EQ(jain_index({5, 5, 5, 5}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index({3}), 1.0);
}

TEST(JainIndex, OneFlowHasEverything) {
  // (Σx)²/(n·Σx²) = 1/n when a single flow holds all the capacity.
  EXPECT_NEAR(jain_index({10, 0, 0, 0}), 0.25, 1e-12);
}

TEST(JainIndex, KnownUnevenSplit) {
  // (1+2+3)² / (3 * (1+4+9)) = 36/42.
  EXPECT_NEAR(jain_index({1, 2, 3}), 36.0 / 42.0, 1e-12);
}

TEST(JainIndex, EdgeCases) {
  EXPECT_DOUBLE_EQ(jain_index({}), 0.0);       // no population
  EXPECT_DOUBLE_EQ(jain_index({0, 0, 0}), 1.0);  // all-zero: equally poor
}

TEST(Accumulator, TracksRunningStats) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  acc.add(2);
  acc.add(4);
  acc.add(9);
  EXPECT_EQ(acc.count(), 3);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(Accumulator, NegativeValuesSetMinMax) {
  Accumulator acc;
  acc.add(-3);
  EXPECT_DOUBLE_EQ(acc.min(), -3);
  EXPECT_DOUBLE_EQ(acc.max(), -3);
}

}  // namespace
}  // namespace vodx
