#include "common/strings.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vodx {
namespace {

TEST(Split, KeepsEmptyFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitLines, HandlesUnixAndDos) {
  EXPECT_EQ(split_lines("a\nb\nc"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_lines("a\r\nb\r\n"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(split_lines("single"), (std::vector<std::string>{"single"}));
  EXPECT_TRUE(split_lines("").empty());
}

TEST(SplitLines, TrailingNewlineProducesNoEmptyLine) {
  EXPECT_EQ(split_lines("a\n"), (std::vector<std::string>{"a"}));
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\nx\r "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(starts_with("#EXTM3U", "#EXT"));
  EXPECT_FALSE(starts_with("EXT", "#EXT"));
  EXPECT_TRUE(ends_with("seg0.ts", ".ts"));
  EXPECT_FALSE(ends_with(".ts", "seg.ts"));
}

TEST(ParseInt, ValidAndInvalid) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int(" -7 "), -7);
  EXPECT_EQ(parse_int("1234567890123"), 1234567890123LL);
  EXPECT_THROW(parse_int("12x"), ParseError);
  EXPECT_THROW(parse_int(""), ParseError);
  EXPECT_THROW(parse_int("4.5"), ParseError);
}

TEST(ParseDouble, ValidAndInvalid) {
  EXPECT_DOUBLE_EQ(parse_double("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(parse_double(" 2 "), 2.0);
  EXPECT_DOUBLE_EQ(parse_double("1e3"), 1000.0);
  EXPECT_THROW(parse_double("abc"), ParseError);
  EXPECT_THROW(parse_double(""), ParseError);
}

TEST(Format, PrintfStyle) {
  EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(format("%.2f", 1.239), "1.24");
  EXPECT_EQ(format("empty"), "empty");
}

TEST(FormatBps, PicksUnits) {
  EXPECT_EQ(format_bps(2.5e6), "2.50 Mbps");
  EXPECT_EQ(format_bps(640e3), "640 kbps");
  EXPECT_EQ(format_bps(500), "500 bps");
}

}  // namespace
}  // namespace vodx
