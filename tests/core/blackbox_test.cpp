// Black-box probes validated against the catalogue's ground truth — the
// paper's methodology applied to services whose design we actually know.
#include "core/blackbox.h"

#include <gtest/gtest.h>

#include "core/design_inference.h"
#include "services/content_factory.h"

namespace vodx::core {
namespace {

class StartupProbeTest : public ::testing::TestWithParam<std::string> {};

TEST_P(StartupProbeTest, RecoversStartupDesign) {
  const services::ServiceSpec& spec = services::service(GetParam());
  StartupProbe probe = probe_startup(spec);
  ASSERT_TRUE(probe.playback_achievable);
  // The startup buffer in seconds is recovered exactly (it is a whole
  // number of segments by construction).
  EXPECT_NEAR(probe.startup_buffer, probe.min_segments * spec.segment_duration,
              0.01);
  EXPECT_GE(probe.startup_buffer, spec.player.startup_buffer - 0.01);
  EXPECT_LT(probe.startup_buffer,
            spec.player.startup_buffer + spec.segment_duration + 0.01);
  // Startup bitrate: the probe reads the first segment's declared bitrate.
  EXPECT_NEAR(probe.startup_bitrate, spec.player.startup_bitrate,
              0.01 * spec.player.startup_bitrate);
}

INSTANTIATE_TEST_SUITE_P(
    Services, StartupProbeTest,
    ::testing::Values("H1", "H2", "H3", "H4", "H6", "D2", "D4", "S2"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

class ThresholdProbeTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ThresholdProbeTest, RecoversPauseResumeThresholds) {
  const services::ServiceSpec& spec = services::service(GetParam());
  ThresholdProbe probe = probe_thresholds(spec);
  ASSERT_GT(probe.pause_cycles, 0);
  // Tolerance: one segment of overshoot per parallel connection plus the
  // 1 s buffer-inference granularity.
  const double slack =
      spec.segment_duration * spec.player.max_connections + 3.0;
  EXPECT_NEAR(probe.pausing_threshold, spec.player.pausing_threshold, slack);
  EXPECT_NEAR(probe.resuming_threshold, spec.player.resuming_threshold,
              slack);
  EXPECT_GT(probe.pausing_threshold, probe.resuming_threshold);
}

INSTANTIATE_TEST_SUITE_P(
    Services, ThresholdProbeTest,
    ::testing::Values("H1", "H3", "H5", "D2", "D4", "S1", "S2"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

TEST(SteadyState, OnlyD1IsUnstable) {
  for (const char* name : {"H1", "D1", "D2", "S2"}) {
    const services::ServiceSpec& spec = services::service(name);
    const Bps bw = 0.6 * spec.video_ladder.back();
    SteadyStateProbe probe = probe_steady_state(spec, {.bandwidth = bw});
    if (std::string(name) == "D1") {
      EXPECT_FALSE(probe.converged) << name;
      EXPECT_GT(probe.steady_switches, 5) << name;
    } else {
      EXPECT_TRUE(probe.converged) << name;
    }
  }
}

TEST(SteadyState, AggressivenessSeparatesServices) {
  // Fig. 9: D3 selects at or above the bandwidth, D2 stays below half.
  const services::ServiceSpec& d3 = services::service("D3");
  const services::ServiceSpec& d2 = services::service("D2");
  double d3_max = 0;
  double d2_max = 0;
  for (double bw : {1.2e6, 2.1e6, 3.6e6}) {
    d3_max = std::max(d3_max,
                      probe_steady_state(d3, {.bandwidth = bw}).declared_over_bandwidth);
    d2_max = std::max(d2_max,
                      probe_steady_state(d2, {.bandwidth = bw}).declared_over_bandwidth);
  }
  EXPECT_GE(d3_max, 1.0);  // selects declared at/above the link rate
  EXPECT_LT(d2_max, 0.6);
}

TEST(StepResponse, DampedServicesSpendTheirBuffer) {
  // H2 holds its 40 s decrease buffer; H1 switches immediately.
  StepProbe h2 = probe_step_response(services::service("H2"));
  ASSERT_TRUE(h2.switched_down);
  EXPECT_NEAR(h2.buffer_at_downswitch, 40, 10);

  StepProbe h1 = probe_step_response(services::service("H1"));
  ASSERT_TRUE(h1.switched_down);
  EXPECT_GT(h1.buffer_at_downswitch, 60);
}

TEST(ManifestVariants, ShiftKeepsDeclaredChangesActual) {
  // Verify the Fig.-12 rewrite itself: parse a rewritten MPD and check the
  // declared ladder is intact while media ranges moved down one rung.
  const services::ServiceSpec& spec = services::service("D2");
  http::OriginServer origin =
      services::make_origin(spec, 600, 42);
  const std::string original =
      origin.handle({http::Method::kGet, "/manifest.mpd", {}}).body;
  const std::string shifted =
      shift_tracks_variant()->on_manifest("/manifest.mpd", original);
  manifest::DashMpd before = manifest::DashMpd::parse(original);
  manifest::DashMpd after = manifest::DashMpd::parse(shifted);
  const auto& reps_before = before.adaptation_sets[0].representations;
  auto& reps_after = after.adaptation_sets[0].representations;
  ASSERT_EQ(reps_after.size(), reps_before.size() - 1);
  // Level i in the variant has level (i+1)'s declared but level i's media.
  EXPECT_DOUBLE_EQ(reps_after[0].bandwidth, reps_before[1].bandwidth);
  EXPECT_EQ(reps_after[0].base_url, reps_before[0].base_url);
}

TEST(ManifestVariants, D2ProvedDeclaredOnly) {
  DeclaredVsActualProbe probe =
      probe_declared_vs_actual(services::service("D2"));
  EXPECT_TRUE(probe.declared_only);
  // §4.2: ~33.7% utilization at 2 Mbps. Shape: clearly under half.
  EXPECT_GT(probe.bandwidth_utilization, 0.15);
  EXPECT_LT(probe.bandwidth_utilization, 0.55);
}

TEST(RejectInterceptor, OnlyVideoSegmentsAreRejected) {
  // A probe with allow=2 lets exactly two distinct video segments through
  // while audio flows freely.
  SessionConfig config;
  config.spec = services::service("D2");
  config.trace = net::BandwidthTrace::constant(8e6, 60);
  config.session_duration = 60;
  config.content_duration = 600;
  config.interceptors.push_back(reject_after_n_video_segments(2));
  SessionResult r = run_session(config);
  std::set<int> video_indexes;
  int audio_count = 0;
  for (const SegmentDownload& d : r.traffic.downloads) {
    if (d.type == media::ContentType::kVideo && !d.aborted) {
      video_indexes.insert(d.index);
    }
    if (d.type == media::ContentType::kAudio) ++audio_count;
  }
  EXPECT_EQ(video_indexes.size(), 2u);
  // Audio keeps flowing (up to the A/V sync window past the video extent).
  EXPECT_GE(audio_count, 3);
}

TEST(DesignInference, FullTableForOneService) {
  // End-to-end: a full Table-1 row for H3 (cheap: small thresholds).
  InferredDesign d = infer_design(services::service("H3"));
  EXPECT_NEAR(d.segment_duration, 9, 0.01);
  EXPECT_FALSE(d.separate_audio);
  EXPECT_EQ(d.max_tcp, 1);
  EXPECT_FALSE(d.persistent_tcp);
  EXPECT_EQ(d.startup_segments, 1);
  EXPECT_NEAR(d.startup_buffer, 9, 0.01);
  EXPECT_NEAR(d.pausing_threshold, 40, 9);
  EXPECT_NEAR(d.resuming_threshold, 30, 9);
  EXPECT_TRUE(d.stable);
  EXPECT_FALSE(d.aggressive);
}

}  // namespace
}  // namespace vodx::core
