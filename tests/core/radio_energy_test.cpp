#include "core/radio_energy.h"

#include <gtest/gtest.h>

#include "core/session.h"
#include "testing/fixtures.h"

namespace vodx::core {
namespace {

using vodx::testing::test_spec;

AnalyzedTraffic synthetic_traffic(
    std::vector<std::pair<Seconds, Seconds>> intervals) {
  AnalyzedTraffic traffic;
  traffic.media_transfer_intervals = std::move(intervals);
  return traffic;
}

TEST(RadioEnergy, AllIdleWithoutTraffic) {
  RadioEnergyReport r = radio_energy(synthetic_traffic({}), 100);
  EXPECT_DOUBLE_EQ(r.active_time, 0);
  // One demotion-timer tail at session start, then idle.
  EXPECT_DOUBLE_EQ(r.tail_time, 11);
  EXPECT_DOUBLE_EQ(r.idle_time, 89);
}

TEST(RadioEnergy, ContinuousTransferIsAllActive) {
  RadioEnergyReport r = radio_energy(synthetic_traffic({{0, 100}}), 100);
  EXPECT_DOUBLE_EQ(r.active_time, 100);
  EXPECT_DOUBLE_EQ(r.tail_time, 0);
  EXPECT_DOUBLE_EQ(r.idle_time, 0);
  EXPECT_NEAR(r.energy_joules, 130, 1e-9);  // 100 s x 1.3 W
}

TEST(RadioEnergy, ShortGapNeverLeavesHighPower) {
  // 8 s pause < 11 s demotion timer: all tail, no idle (the paper's point).
  RadioEnergyReport r =
      radio_energy(synthetic_traffic({{0, 10}, {18, 28}}), 28);
  EXPECT_DOUBLE_EQ(r.active_time, 20);
  EXPECT_DOUBLE_EQ(r.tail_time, 8);
  EXPECT_DOUBLE_EQ(r.idle_time, 0);
  EXPECT_DOUBLE_EQ(r.high_power_fraction(), 1.0);
}

TEST(RadioEnergy, LongGapDemotesToIdle) {
  RadioEnergyReport r =
      radio_energy(synthetic_traffic({{0, 10}, {41, 51}}), 51);
  EXPECT_DOUBLE_EQ(r.active_time, 20);
  EXPECT_DOUBLE_EQ(r.tail_time, 11);
  EXPECT_DOUBLE_EQ(r.idle_time, 20);
  EXPECT_LT(r.high_power_fraction(), 1.0);
}

TEST(RadioEnergy, OverlappingIntervalsMerge) {
  RadioEnergyReport r =
      radio_energy(synthetic_traffic({{0, 10}, {5, 15}, {12, 20}}), 20);
  EXPECT_DOUBLE_EQ(r.active_time, 20);
}

TEST(RadioEnergy, WiderThresholdGapSavesEnergy) {
  // The §3.3.2 suggestion, end to end: same service, one with a 5 s
  // pause/resume gap, one with a 25 s gap; at ample bandwidth the wide-gap
  // player lets the radio demote during pauses.
  auto run = [](Seconds resuming) {
    services::ServiceSpec spec = test_spec(manifest::Protocol::kHls);
    spec.player.pausing_threshold = 30;
    spec.player.resuming_threshold = resuming;
    SessionConfig config;
    config.spec = spec;
    config.trace = net::BandwidthTrace::constant(20e6, 400);
    config.session_duration = 400;
    config.content_duration = 600;
    SessionResult result = run_session(config);
    return radio_energy(result.traffic, result.session_end);
  };
  RadioEnergyReport narrow = run(25);  // 5 s gap < 11 s timer
  RadioEnergyReport wide = run(5);     // 25 s gap > timer
  EXPECT_GT(narrow.high_power_fraction(), 0.95);
  EXPECT_LT(wide.high_power_fraction(), 0.85);
  EXPECT_LT(wide.energy_joules, narrow.energy_joules);
}

TEST(RadioEnergy, TimerWhatIf) {
  AnalyzedTraffic traffic = synthetic_traffic({{0, 10}, {25, 35}});
  RadioEnergyReport short_timer = radio_energy_with_timer(traffic, 35, 5);
  RadioEnergyReport long_timer = radio_energy_with_timer(traffic, 35, 30);
  EXPECT_LT(short_timer.energy_joules, long_timer.energy_joules);
}

}  // namespace
}  // namespace vodx::core
