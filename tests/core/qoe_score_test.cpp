#include <gtest/gtest.h>

#include "core/qoe.h"

namespace vodx::core {
namespace {

QoeReport report_with(Bps bitrate, Seconds displayed = 600,
                      Seconds stall = 0, int switches = 0,
                      Seconds startup = 2) {
  QoeReport r;
  DisplayedSegment s;
  s.declared_bitrate = bitrate;
  s.seconds_shown = displayed;
  r.displayed.push_back(s);
  r.displayed_time = displayed;
  r.average_declared_bitrate = bitrate;
  r.total_stall = stall;
  r.switch_count = switches;
  r.startup_delay = startup;
  return r;
}

TEST(QoeScore, HigherBitrateScoresHigher) {
  EXPECT_GT(qoe_score(report_with(2e6), 600),
            qoe_score(report_with(1e6), 600));
}

TEST(QoeScore, BitrateUtilityIsConcave) {
  // +1 Mbps at the low end is worth much more than +1 Mbps at the top —
  // the [35] relationship §4.1.3 leans on.
  const double low_gain =
      qoe_score(report_with(1.3e6), 600) - qoe_score(report_with(0.3e6), 600);
  const double high_gain =
      qoe_score(report_with(4.3e6), 600) - qoe_score(report_with(3.3e6), 600);
  EXPECT_GT(low_gain, 3 * high_gain);
}

TEST(QoeScore, StallsHurt) {
  EXPECT_GT(qoe_score(report_with(2e6, 600, 0), 600),
            qoe_score(report_with(2e6, 600, 60), 600));
}

TEST(QoeScore, SwitchesHurt) {
  EXPECT_GT(qoe_score(report_with(2e6, 600, 0, 0), 600),
            qoe_score(report_with(2e6, 600, 0, 40), 600));
}

TEST(QoeScore, StartupHurts) {
  EXPECT_GT(qoe_score(report_with(2e6, 600, 0, 0, 1), 600),
            qoe_score(report_with(2e6, 600, 0, 0, 20), 600));
}

TEST(QoeScore, EmptyReportIsZero) {
  EXPECT_DOUBLE_EQ(qoe_score(QoeReport{}, 600), 0);
}

TEST(QoeScore, StallCanOutweighBitrate) {
  // A high-bitrate session that stalls a third of the time loses to a
  // mid-bitrate smooth one.
  EXPECT_GT(qoe_score(report_with(1.5e6, 400, 0), 600),
            qoe_score(report_with(4e6, 400, 200), 600));
}

}  // namespace
}  // namespace vodx::core
