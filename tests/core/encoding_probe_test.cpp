// §3.1 encoding-scheme analysis validated against catalogue ground truth.
#include <gtest/gtest.h>

#include "core/blackbox.h"

namespace vodx::core {
namespace {

class EncodingProbeTest : public ::testing::TestWithParam<std::string> {};

TEST_P(EncodingProbeTest, RecoversEncodingAndDeclaredPolicy) {
  const services::ServiceSpec& spec = services::service(GetParam());
  EncodingProbe probe = probe_encoding(spec);
  ASSERT_GT(probe.ratios.size(), 50u);
  EXPECT_EQ(probe.looks_cbr(),
            spec.encoding == media::EncodingMode::kCbr)
      << spec.name;
  if (spec.encoding == media::EncodingMode::kVbr) {
    EXPECT_EQ(probe.inferred_policy(), spec.declared_policy) << spec.name;
  }
  // DASH exposes sizes on the wire; HLS (non-byterange) and SS need HEADs.
  if (spec.protocol == manifest::Protocol::kDash) {
    EXPECT_TRUE(probe.sizes_from_wire);
  } else {
    EXPECT_FALSE(probe.sizes_from_wire);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Services, EncodingProbeTest,
    ::testing::Values("H1", "H2", "H3", "H5", "D1", "D2", "D3", "S1", "S2"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

}  // namespace
}  // namespace vodx::core
