#include "core/buffer_inference.h"

#include <gtest/gtest.h>

#include "core/session.h"
#include "testing/fixtures.h"

namespace vodx::core {
namespace {

using vodx::testing::test_spec;

SessionResult steady_session(manifest::Protocol protocol,
                             Bps bandwidth = 4e6) {
  SessionConfig config;
  config.spec = test_spec(protocol);
  config.trace = net::BandwidthTrace::constant(bandwidth, 180);
  config.session_duration = 180;
  config.content_duration = 600;
  return run_session(config);
}

TEST(BufferInference, TracksOscillateBetweenThresholds) {
  SessionResult r = steady_session(manifest::Protocol::kHls);
  // After warmup the inferred video buffer must live in
  // [resuming - slack, pausing + segment + slack].
  for (const BufferSample& s : r.buffer) {
    if (s.wall < 60) continue;
    EXPECT_GE(s.video_buffer, 25 - 8) << "at " << s.wall;
    EXPECT_LE(s.video_buffer, 30 + 4 + 4) << "at " << s.wall;
  }
}

TEST(BufferInference, MatchesGroundTruthDuringSteadyState) {
  SessionResult r = steady_session(manifest::Protocol::kDash);
  // Recompute the true buffer from the player events is not possible after
  // the fact, but the inferred buffer must be consistent with no stalls:
  // it never hits zero after startup.
  ASSERT_TRUE(r.events.stalls.empty());
  for (const BufferSample& s : r.buffer) {
    if (s.wall < 30 || s.wall > 170) continue;
    EXPECT_GT(s.video_buffer, 0) << "at " << s.wall;
  }
}

TEST(BufferInference, AudioTrackedSeparately) {
  SessionResult r = steady_session(manifest::Protocol::kDash);
  bool audio_differs = false;
  for (const BufferSample& s : r.buffer) {
    if (std::abs(s.audio_buffer - s.video_buffer) > 1.0) {
      audio_differs = true;
      break;
    }
  }
  EXPECT_TRUE(audio_differs) << "separate audio pipeline should not shadow "
                                "the video buffer exactly";
}

TEST(BufferInference, MuxedAudioMirrorsVideo) {
  SessionResult r = steady_session(manifest::Protocol::kHls);
  for (const BufferSample& s : r.buffer) {
    EXPECT_DOUBLE_EQ(s.audio_buffer, s.video_buffer);
  }
}

TEST(DownloadProgress, MonotoneNonDecreasing) {
  SessionResult r = steady_session(manifest::Protocol::kHls);
  Seconds previous = 0;
  for (Seconds t = 0; t <= 180; t += 5) {
    Seconds progress =
        download_progress(r.traffic, media::ContentType::kVideo, t);
    EXPECT_GE(progress, previous);
    previous = progress;
  }
}

TEST(DownloadProgress, ZeroBeforeFirstCompletion) {
  SessionResult r = steady_session(manifest::Protocol::kHls);
  EXPECT_DOUBLE_EQ(
      download_progress(r.traffic, media::ContentType::kVideo, 0.0), 0.0);
}

}  // namespace
}  // namespace vodx::core
