#include "core/traffic_analyzer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/error.h"

#include "core/session.h"
#include "testing/fixtures.h"

namespace vodx::core {
namespace {

using vodx::testing::test_spec;

SessionResult run_short(services::ServiceSpec spec, Bps bandwidth = 4e6,
                        Seconds duration = 120) {
  SessionConfig config;
  config.spec = std::move(spec);
  config.trace = net::BandwidthTrace::constant(bandwidth, duration);
  config.session_duration = duration;
  config.content_duration = 300;
  return run_session(config);
}

TEST(Analyzer, HlsLadderRecoveredFromWire) {
  SessionResult r = run_short(test_spec(manifest::Protocol::kHls));
  EXPECT_EQ(r.traffic.protocol, manifest::Protocol::kHls);
  ASSERT_EQ(r.traffic.video_tracks.size(), 4u);
  EXPECT_DOUBLE_EQ(r.traffic.video_tracks[0].declared_bitrate, 400e3);
  EXPECT_DOUBLE_EQ(r.traffic.video_tracks[3].declared_bitrate, 3.2e6);
  EXPECT_TRUE(r.traffic.audio_tracks.empty());
  // Durations come from the media playlists.
  EXPECT_DOUBLE_EQ(r.traffic.video_tracks[0].nominal_segment_duration(), 4.0);
}

TEST(Analyzer, HlsDownloadsCarryLevelAndIndex) {
  SessionResult r = run_short(test_spec(manifest::Protocol::kHls));
  ASSERT_FALSE(r.traffic.downloads.empty());
  int last_index = -1;
  for (const SegmentDownload& d : r.traffic.downloads) {
    EXPECT_GE(d.level, 0);
    EXPECT_LT(d.level, 4);
    EXPECT_GT(d.bytes, 0);
    EXPECT_GE(d.index, 0);
    last_index = std::max(last_index, d.index);
  }
  EXPECT_GT(last_index, 10);
}

TEST(Analyzer, DashSidxMappingMatchesSizes) {
  services::ServiceSpec spec = test_spec(manifest::Protocol::kDash);
  SessionResult r = run_short(spec);
  EXPECT_EQ(r.traffic.protocol, manifest::Protocol::kDash);
  ASSERT_EQ(r.traffic.video_tracks.size(), 4u);
  ASSERT_EQ(r.traffic.audio_tracks.size(), 1u);
  // The analyzer knows exact sizes from the sidx; every video download's
  // byte count must match the track's segment size.
  for (const SegmentDownload& d : r.traffic.downloads) {
    if (d.type != media::ContentType::kVideo || d.aborted) continue;
    const AnalyzedTrack& track = r.traffic.video_track(d.level);
    ASSERT_LT(static_cast<std::size_t>(d.index), track.segment_sizes.size());
    EXPECT_EQ(d.bytes, track.segment_sizes[static_cast<std::size_t>(d.index)]);
  }
}

TEST(Analyzer, SmoothFragmentsResolve) {
  SessionResult r = run_short(test_spec(manifest::Protocol::kSmooth));
  EXPECT_EQ(r.traffic.protocol, manifest::Protocol::kSmooth);
  ASSERT_EQ(r.traffic.video_tracks.size(), 4u);
  ASSERT_EQ(r.traffic.audio_tracks.size(), 1u);
  int video_downloads = 0;
  for (const SegmentDownload& d : r.traffic.downloads) {
    if (d.type == media::ContentType::kVideo) ++video_downloads;
  }
  EXPECT_GT(video_downloads, 20);
}

TEST(Analyzer, EncryptedMpdFallsBackToSidx) {
  services::ServiceSpec spec = test_spec(manifest::Protocol::kDash);
  spec.encrypt_manifest = true;
  SessionResult r = run_short(spec);
  EXPECT_TRUE(r.traffic.manifest_encrypted);
  // Tracks reconstructed from sidx boxes alone: only the ones the client
  // actually touched appear, and "declared" is the peak actual bitrate
  // (paper footnote 4).
  ASSERT_FALSE(r.traffic.video_tracks.empty());
  ASSERT_FALSE(r.traffic.audio_tracks.empty());
  for (const AnalyzedTrack& t : r.traffic.video_tracks) {
    EXPECT_FALSE(t.segment_sizes.empty());
    EXPECT_GT(t.declared_bitrate, 192e3);
  }
  EXPECT_LT(r.traffic.audio_tracks[0].declared_bitrate, 192e3);
  // Downloads still map.
  EXPECT_GT(r.traffic.downloads.size(), 20u);
}

TEST(Analyzer, SplitDownloadsAreMerged) {
  services::ServiceSpec spec = test_spec(manifest::Protocol::kDash);
  spec.player.split_segment_downloads = true;
  spec.player.max_connections = 3;
  SessionResult r = run_short(spec);
  // Each video segment appears exactly once despite sub-range requests...
  std::map<int, int> count_by_index;
  for (const SegmentDownload& d : r.traffic.downloads) {
    if (d.type == media::ContentType::kVideo && !d.aborted) {
      ++count_by_index[d.index];
    }
  }
  for (const auto& [index, count] : count_by_index) {
    EXPECT_EQ(count, 1) << "segment " << index;
  }
  // ...and the raw wire intervals show the parallelism.
  EXPECT_GE(r.traffic.max_concurrent_transfers(), 2);
}

TEST(Analyzer, NonPersistentConnectionsDetected) {
  services::ServiceSpec spec = test_spec(manifest::Protocol::kHls);
  spec.player.persistent_connections = false;
  SessionResult r = run_short(spec);
  EXPECT_TRUE(r.traffic.non_persistent_connections());

  services::ServiceSpec persistent = test_spec(manifest::Protocol::kHls);
  SessionResult r2 = run_short(persistent);
  EXPECT_FALSE(r2.traffic.non_persistent_connections());
}

TEST(Analyzer, TotalBytesIncludeManifests) {
  SessionResult r = run_short(test_spec(manifest::Protocol::kHls));
  Bytes media = 0;
  for (const SegmentDownload& d : r.traffic.downloads) media += d.bytes;
  EXPECT_GT(r.traffic.total_payload_bytes, media);
}

TEST(Analyzer, ThrowsWithoutManifest) {
  http::TrafficLog empty;
  EXPECT_THROW(analyze_traffic(empty), ParseError);
}

TEST(Analyzer, DownloadsSortedByRequestTime) {
  SessionResult r = run_short(test_spec(manifest::Protocol::kDash));
  for (std::size_t i = 1; i < r.traffic.downloads.size(); ++i) {
    EXPECT_LE(r.traffic.downloads[i - 1].requested_at,
              r.traffic.downloads[i].requested_at);
  }
}

class AnalyzerProtocolSweep
    : public ::testing::TestWithParam<manifest::Protocol> {};

// Property: for every protocol, downloaded media seconds (by analyzer
// accounting) match the player's final buffered+played extent.
TEST_P(AnalyzerProtocolSweep, DownloadAccountingConsistent) {
  SessionResult r = run_short(test_spec(GetParam()), 4e6, 90);
  Seconds video_seconds = 0;
  std::set<int> seen;
  for (const SegmentDownload& d : r.traffic.downloads) {
    if (d.type != media::ContentType::kVideo || d.aborted) continue;
    EXPECT_TRUE(seen.insert(d.index).second) << "duplicate index";
    video_seconds += d.duration;
  }
  // Player had played final_position and buffered video on top.
  const Seconds expected =
      r.final_position +
      (r.events.displayed.empty() ? 0 : 0);  // position is the lower bound
  EXPECT_GE(video_seconds + 1e-6, expected);
}

INSTANTIATE_TEST_SUITE_P(Protocols, AnalyzerProtocolSweep,
                         ::testing::Values(manifest::Protocol::kHls,
                                           manifest::Protocol::kDash,
                                           manifest::Protocol::kSmooth));

}  // namespace
}  // namespace vodx::core
