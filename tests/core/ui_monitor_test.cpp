#include "core/ui_monitor.h"

#include <gtest/gtest.h>

namespace vodx::core {
namespace {

/// Feeds a synthetic 1 Hz progress series: playback starts at
/// `startup`, and `stall` spans [stall_start, stall_end) wall time.
UiMonitor monitor_for(Seconds startup, Seconds stall_start = -1,
                      Seconds stall_end = -1, Seconds session_len = 60) {
  UiMonitor monitor;
  double position = 0;
  for (Seconds wall = 1; wall <= session_len; wall += 1) {
    const bool playing =
        wall > startup && !(wall > stall_start && wall <= stall_end);
    if (playing) position += 1;
    monitor.on_progress(wall, static_cast<int>(position));
  }
  return monitor;
}

TEST(UiMonitor, InfersStartupDelay) {
  UiInference inferred = monitor_for(5).infer(0);
  EXPECT_NEAR(inferred.startup_delay, 5, 1.1);
}

TEST(UiMonitor, NoStartupMeansMinusOne) {
  UiMonitor monitor;
  for (int i = 1; i < 30; ++i) monitor.on_progress(i, 0);
  EXPECT_LT(monitor.infer(0).startup_delay, 0);
  EXPECT_EQ(monitor.infer(0).total_stall, 0);
}

TEST(UiMonitor, CleanPlaybackHasNoStalls) {
  UiInference inferred = monitor_for(3).infer(0);
  EXPECT_TRUE(inferred.stalls.empty());
  EXPECT_DOUBLE_EQ(inferred.total_stall, 0);
}

TEST(UiMonitor, DetectsSingleStall) {
  UiInference inferred = monitor_for(3, 20, 28).infer(0);
  ASSERT_EQ(inferred.stalls.size(), 1u);
  EXPECT_NEAR(inferred.stalls[0].start, 20, 1.5);
  EXPECT_NEAR(inferred.stalls[0].duration(), 8, 1.5);
  EXPECT_NEAR(inferred.total_stall, 8, 1.5);
}

TEST(UiMonitor, DetectsMultipleStalls) {
  UiMonitor monitor;
  double position = 0;
  for (Seconds wall = 1; wall <= 60; wall += 1) {
    const bool stalled =
        (wall > 20 && wall <= 25) || (wall > 40 && wall <= 50);
    if (wall > 2 && !stalled) position += 1;
    monitor.on_progress(wall, static_cast<int>(position));
  }
  UiInference inferred = monitor.infer(0);
  ASSERT_EQ(inferred.stalls.size(), 2u);
  EXPECT_NEAR(inferred.total_stall, 15, 2.5);
}

TEST(UiMonitor, PositionAtInterpolates) {
  UiInference inferred = monitor_for(0).infer(0);
  EXPECT_NEAR(inferred.position_at(10.5), 10, 1.1);
  EXPECT_DOUBLE_EQ(inferred.position_at(0), 0);
}

TEST(UiMonitor, StartupRelativeToSessionStart) {
  UiMonitor monitor;
  // Session started at wall 100; playback at 104.
  double position = 0;
  for (Seconds wall = 101; wall <= 160; wall += 1) {
    if (wall > 104) position += 1;
    monitor.on_progress(wall, static_cast<int>(position));
  }
  EXPECT_NEAR(monitor.infer(100).startup_delay, 4, 1.1);
}

TEST(UiMonitor, OngoingStallAtSessionEndCounted) {
  UiInference inferred = monitor_for(3, 40, 1000, 60).infer(0);
  ASSERT_EQ(inferred.stalls.size(), 1u);
  EXPECT_GT(inferred.total_stall, 15);
}

}  // namespace
}  // namespace vodx::core
