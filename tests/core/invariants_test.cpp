// System-wide invariants, swept across every catalogued service and several
// network profiles. These don't pin behaviours — they pin *consistency*
// between the independent accountings the system keeps (player ground truth,
// wire log, analyzer, QoE reconstruction, link conservation).
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <tuple>
#include <utility>

#include "core/session.h"
#include "trace/cellular_profiles.h"

namespace vodx::core {
namespace {

class InvariantSweep
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {
 protected:
  static SessionResult& result() {
    // One session per (service, profile), shared by all invariant checks.
    static std::map<std::pair<std::string, int>, SessionResult> cache;
    const auto key = std::make_pair(std::get<0>(GetParam()),
                                    std::get<1>(GetParam()));
    auto it = cache.find(key);
    if (it == cache.end()) {
      SessionConfig config;
      config.spec = services::service(key.first);
      config.trace = trace::cellular_profile(key.second);
      config.session_duration = 300;
      config.content_duration = 600;
      it = cache.emplace(key, run_session(config)).first;
    }
    return it->second;
  }
};

TEST_P(InvariantSweep, DisplayedSegmentsAdvanceMonotonically) {
  const auto& displayed = result().events.displayed;
  for (std::size_t i = 1; i < displayed.size(); ++i) {
    EXPECT_EQ(displayed[i].index, displayed[i - 1].index + 1);
    EXPECT_GE(displayed[i].wall_time, displayed[i - 1].wall_time);
  }
}

TEST_P(InvariantSweep, DeliveredBytesRespectLinkCapacity) {
  const SessionResult& r = result();
  const double capacity_bits =
      trace::cellular_profile(std::get<1>(GetParam()))
          .bits_between(0, r.session_end);
  EXPECT_LE(static_cast<double>(r.traffic.total_payload_bytes) * 8,
            capacity_bits * 1.001);
}

TEST_P(InvariantSweep, MediaBytesNeverExceedTotalBytes) {
  const SessionResult& r = result();
  Bytes media = 0;
  for (const SegmentDownload& d : r.traffic.downloads) media += d.bytes;
  EXPECT_LE(media, r.traffic.total_payload_bytes);
  EXPECT_EQ(media, r.qoe.media_bytes);
}

TEST_P(InvariantSweep, InferredBufferStaysBounded) {
  const SessionResult& r = result();
  const services::ServiceSpec& spec = services::service(std::get<0>(GetParam()));
  // Slack: up to one full burst of parallel in-flight segments can land
  // after the pause latch trips, twice in a resume race, plus inference
  // granularity.
  const double bound =
      spec.player.pausing_threshold +
      2.0 * spec.player.max_connections * spec.segment_duration + 15;
  for (const BufferSample& s : r.buffer) {
    EXPECT_GE(s.video_buffer, 0) << "at " << s.wall;
    EXPECT_LE(s.video_buffer, bound) << "at " << s.wall;
  }
}

TEST_P(InvariantSweep, WastedNeverExceedsMediaBytes) {
  const SessionResult& r = result();
  EXPECT_GE(r.qoe.wasted_bytes, 0);
  EXPECT_LE(r.qoe.wasted_bytes, r.qoe.media_bytes);
}

TEST_P(InvariantSweep, UiPositionNeverExceedsDownloadedContent) {
  const SessionResult& r = result();
  for (const ProgressSample& s : r.ui.samples) {
    const Seconds available =
        download_progress(r.traffic, media::ContentType::kVideo, s.wall);
    EXPECT_LE(s.progress, available + 1.5) << "at " << s.wall;
  }
}

TEST_P(InvariantSweep, StallsAndPlaybackPartitionTheSession) {
  const SessionResult& r = result();
  if (r.events.playback_started < 0) GTEST_SKIP() << "never started";
  // Position advanced + stall time + startup ~ session end.
  const Seconds accounted = r.final_position +
                            r.events.total_stall_time(r.session_end) +
                            r.events.playback_started;
  EXPECT_NEAR(accounted, r.session_end, 2.0);
}

TEST_P(InvariantSweep, QoeScoreIsFinite) {
  const SessionResult& r = result();
  const double score = qoe_score(r.qoe, r.session_end);
  EXPECT_TRUE(std::isfinite(score));
}

INSTANTIATE_TEST_SUITE_P(
    ServicesAndProfiles, InvariantSweep,
    ::testing::Combine(::testing::Values("H1", "H3", "H4", "D1", "D2", "D3",
                                         "S1", "S2"),
                       ::testing::Values(2, 6, 10)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, int>>& info) {
      return std::get<0>(info.param) + "_p" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace vodx::core
