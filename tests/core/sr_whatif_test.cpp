#include "core/sr_whatif.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"
#include "trace/cellular_profiles.h"

namespace vodx::core {
namespace {

using vodx::testing::test_spec;

SessionResult run_sr_session(player::SrPolicy policy, int profile = 5) {
  services::ServiceSpec spec = test_spec(manifest::Protocol::kHls);
  spec.player.sr = policy;
  spec.player.sr_min_buffer = 10;
  spec.player.pausing_threshold = 60;
  spec.player.resuming_threshold = 50;
  SessionConfig config;
  config.spec = std::move(spec);
  config.trace = trace::cellular_profile(profile);
  config.session_duration = 600;
  config.content_duration = 600;
  return run_session(config);
}

TEST(SrWhatIf, NoSrMeansNoReplacementsObserved) {
  SrAnalysis analysis = analyze_sr(run_sr_session(player::SrPolicy::kNone));
  EXPECT_FALSE(analysis.sr_observed);
  EXPECT_EQ(analysis.replacement_downloads, 0);
  EXPECT_NEAR(analysis.data_increase, 0.0, 0.02);
  EXPECT_NEAR(analysis.bitrate_change, 0.0, 1e-9);
}

TEST(SrWhatIf, NaiveCascadeObservedOnVariableBandwidth) {
  SrAnalysis analysis =
      analyze_sr(run_sr_session(player::SrPolicy::kCascadeNaive));
  EXPECT_TRUE(analysis.sr_observed);
  EXPECT_GT(analysis.data_increase, 0.02);
  EXPECT_GT(analysis.wasted_bytes, 0);
}

TEST(SrWhatIf, NaiveCascadeReplacesWithLowerOrEqualQuality) {
  // The §4.1.1 headline: the H4-style cascade redownloads some segments at
  // lower or equal quality. Aggregate over several profiles for stability.
  int lower_or_equal = 0;
  int total = 0;
  for (int profile : {3, 4, 5, 6, 7}) {
    SrAnalysis analysis =
        analyze_sr(run_sr_session(player::SrPolicy::kCascadeNaive, profile));
    lower_or_equal += static_cast<int>(
        (analysis.replacements_lower + analysis.replacements_equal) *
        analysis.replacement_downloads);
    total += analysis.replacement_downloads;
  }
  ASSERT_GT(total, 0);
  EXPECT_GT(static_cast<double>(lower_or_equal) / total, 0.02);
}

TEST(SrWhatIf, ImprovedSrNeverDowngrades) {
  for (int profile : {3, 5, 7}) {
    SrAnalysis analysis =
        analyze_sr(run_sr_session(player::SrPolicy::kPerSegment, profile));
    EXPECT_DOUBLE_EQ(analysis.replacements_lower, 0.0) << profile;
    EXPECT_DOUBLE_EQ(analysis.replacements_equal, 0.0) << profile;
  }
}

TEST(SrWhatIf, ImprovedSrRaisesDisplayedBitrate) {
  double total_change = 0;
  int observed = 0;
  for (int profile : {3, 4, 5, 6}) {
    SrAnalysis analysis =
        analyze_sr(run_sr_session(player::SrPolicy::kPerSegment, profile));
    if (!analysis.sr_observed) continue;
    total_change += analysis.bitrate_change;
    ++observed;
  }
  ASSERT_GT(observed, 0);
  EXPECT_GT(total_change / observed, 0.0);
}

TEST(SrWhatIf, DataAccountingConsistent) {
  SrAnalysis analysis =
      analyze_sr(run_sr_session(player::SrPolicy::kCascadeNaive));
  EXPECT_GE(analysis.media_bytes_with, analysis.media_bytes_without);
  EXPECT_GE(analysis.wasted_fraction, 0);
  EXPECT_LE(analysis.wasted_fraction, 1);
}

TEST(SrWhatIf, CascadeRunsAreLongerThanImprovedOnes) {
  SrAnalysis cascade =
      analyze_sr(run_sr_session(player::SrPolicy::kCascadeNaive, 5));
  SrAnalysis improved =
      analyze_sr(run_sr_session(player::SrPolicy::kPerSegment, 5));
  if (cascade.sr_observed && improved.sr_observed) {
    EXPECT_GE(cascade.p90_cascade_length, improved.p90_cascade_length);
  }
}

}  // namespace
}  // namespace vodx::core
