#include "core/report.h"

#include <gtest/gtest.h>

#include "common/strings.h"
#include "testing/fixtures.h"

namespace vodx::core {
namespace {

SessionResult sample_session() {
  SessionConfig config;
  config.spec = vodx::testing::test_spec(manifest::Protocol::kHls);
  config.trace = net::BandwidthTrace::constant(4e6, 60);
  config.session_duration = 60;
  config.content_duration = 300;
  return run_session(config);
}

TEST(Report, CsvRowMatchesHeaderArity) {
  SessionResult r = sample_session();
  const std::string header = qoe_csv_header();
  const std::string row = qoe_csv_row("x", r);
  EXPECT_EQ(split(trim(header), ',').size(), split(trim(row), ',').size());
}

TEST(Report, CsvRowCarriesTheNumbers) {
  SessionResult r = sample_session();
  const std::string row = qoe_csv_row("label", r);
  std::vector<std::string> cells = split(std::string(trim(row)), ',');
  EXPECT_EQ(cells[0], "label");
  EXPECT_NEAR(parse_double(cells[1]), r.qoe.startup_delay, 0.01);
  EXPECT_NEAR(parse_double(cells[4]), r.qoe.average_declared_bitrate, 1);
  EXPECT_EQ(parse_int(cells[8]), r.qoe.media_bytes);
}

TEST(Report, BufferCsvHasOneRowPerSample) {
  SessionResult r = sample_session();
  const std::string csv = buffer_csv(r);
  EXPECT_EQ(split_lines(csv).size(), r.buffer.size() + 1);  // + header
  EXPECT_NE(csv.find("wall_s,video_buffer_s,audio_buffer_s"),
            std::string::npos);
}

}  // namespace
}  // namespace vodx::core
