// SessionFactory (single construction path) and HostedSession (sessions on
// a caller-owned simulator + link): equivalence with run_session, shared-
// link hosting, and early departure.
#include "core/session_factory.h"

#include <gtest/gtest.h>

#include "batch/sweep.h"
#include "common/error.h"
#include "trace/cellular_profiles.h"

namespace vodx::core {
namespace {

TEST(SessionFactory, ValidatesProfileRange) {
  EXPECT_NO_THROW(SessionFactory::validate_profile(1));
  EXPECT_NO_THROW(SessionFactory::validate_profile(trace::kProfileCount));
  EXPECT_THROW(SessionFactory::validate_profile(0), ConfigError);
  EXPECT_THROW(SessionFactory::validate_profile(trace::kProfileCount + 1),
               ConfigError);
  EXPECT_THROW(SessionFactory::validate_profile(-3), ConfigError);
}

TEST(SessionFactory, UnknownServiceNameThrows) {
  SessionFactory factory;
  EXPECT_THROW(factory.config("no-such-service", 7, 1, 2), ConfigError);
}

TEST(SessionFactory, ThreadsSharedKnobsIntoEveryConfig) {
  SessionFactory factory;
  factory.session_duration = 123;
  factory.content_duration = 456;
  factory.sim_core = net::SimCore::kFixedTickReference;
  factory.wall_budget = 9;
  factory.max_events_per_instant = 77;
  const SessionConfig config = factory.config("H1", 7, 2017, 42);
  EXPECT_EQ(config.spec.name, "H1");
  EXPECT_DOUBLE_EQ(config.session_duration, 123);
  EXPECT_DOUBLE_EQ(config.content_duration, 456);
  EXPECT_EQ(config.sim_core, net::SimCore::kFixedTickReference);
  EXPECT_DOUBLE_EQ(config.wall_budget, 9);
  EXPECT_EQ(config.max_events_per_instant, 77u);
  EXPECT_EQ(config.content_seed, 42u);
  EXPECT_GT(config.trace.duration(), 0);
}

TEST(SessionFactory, ProfileTraceMatchesDirectDraw) {
  SessionFactory factory;
  const SessionConfig config = factory.config("H1", 7, 2017, 42);
  const net::BandwidthTrace direct = trace::cellular_profile(7, 2017);
  EXPECT_EQ(config.trace.duration(), direct.duration());
  EXPECT_DOUBLE_EQ(config.trace.at(0), direct.at(0));
  EXPECT_DOUBLE_EQ(config.trace.at(100), direct.at(100));
}

TEST(HostedSession, MatchesRunSessionOnPrivateWorld) {
  // The ownership inversion must not change single-session results: one
  // HostedSession on a hand-built world reproduces run_session's ground
  // truth for the identical config.
  SessionFactory factory;
  factory.session_duration = 120;
  factory.content_duration = 120;
  const SessionConfig config = factory.config(
      "H1", 7, batch::trace_seed_for(0), batch::content_seed_for(0));

  const SessionResult expected = run_session(config);

  net::Simulator sim(config.tick);
  sim.set_core(config.sim_core);
  net::Link link(sim, config.trace, config.rtt);
  HostedSession session(sim, link, config);
  session.start();
  sim.run_until(config.session_duration);
  const SessionResult actual = session.finish(sim.now());

  EXPECT_EQ(actual.final_state, expected.final_state);
  EXPECT_DOUBLE_EQ(actual.final_position, expected.final_position);
  EXPECT_DOUBLE_EQ(actual.ground_truth.startup_delay,
                   expected.ground_truth.startup_delay);
  EXPECT_DOUBLE_EQ(actual.ground_truth.total_stall,
                   expected.ground_truth.total_stall);
  EXPECT_EQ(actual.ground_truth.total_bytes, expected.ground_truth.total_bytes);
  EXPECT_DOUBLE_EQ(actual.qoe.startup_delay, expected.qoe.startup_delay);
  EXPECT_EQ(actual.events.displayed.size(), expected.events.displayed.size());
  EXPECT_EQ(actual.events.stalls.size(), expected.events.stalls.size());
}

TEST(HostedSession, TwoSessionsShareOneLink) {
  SessionFactory factory;
  factory.session_duration = 60;
  factory.content_duration = 60;
  const SessionConfig config = factory.config(
      services::service("H1"), net::BandwidthTrace::constant(6e6, 600));

  net::Simulator sim(config.tick);
  net::Link link(sim, net::BandwidthTrace::constant(6e6, 600), config.rtt);
  HostedSession first(sim, link, config);
  HostedSession second(sim, link, config);
  first.start();
  second.start();
  sim.run_until(60);
  const SessionResult r1 = first.finish_light(sim.now());
  const SessionResult r2 = second.finish_light(sim.now());
  // Both made progress on the shared bottleneck, and identical sessions
  // competing max-min fairly end up with comparable byte totals.
  EXPECT_GT(r1.ground_truth.total_bytes, 0);
  EXPECT_GT(r2.ground_truth.total_bytes, 0);
  const double ratio = static_cast<double>(r1.ground_truth.total_bytes) /
                       static_cast<double>(r2.ground_truth.total_bytes);
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST(HostedSession, StopDetachesFlowsAndFreezesBytes) {
  SessionFactory factory;
  factory.session_duration = 120;
  factory.content_duration = 120;
  const SessionConfig config = factory.config(
      services::service("H1"), net::BandwidthTrace::constant(4e6, 600));

  net::Simulator sim(config.tick);
  net::Link link(sim, net::BandwidthTrace::constant(4e6, 600), config.rtt);
  HostedSession session(sim, link, config);
  session.start();
  sim.run_until(30);
  EXPECT_GT(link.attached(), 0);

  session.stop();
  EXPECT_TRUE(session.finished());
  EXPECT_EQ(link.attached(), 0);
  session.stop();  // idempotent

  const SessionResult at_stop = session.finish_light(sim.now());
  EXPECT_GT(at_stop.ground_truth.total_bytes, 0);
  sim.run_until(60);
  const SessionResult later = session.finish_light(sim.now());
  // A departed session downloads nothing more.
  EXPECT_EQ(later.ground_truth.total_bytes, at_stop.ground_truth.total_bytes);
}

}  // namespace
}  // namespace vodx::core
