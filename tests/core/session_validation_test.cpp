// The methodology-validation sweep: for every catalogued service, run a
// session and check that what the black-box toolchain infers (traffic
// analysis + UI monitoring + buffer inference) agrees with the player's
// ground truth — the validation the paper itself could not perform.
#include <gtest/gtest.h>

#include "core/session.h"
#include "obs/observer.h"
#include "trace/cellular_profiles.h"

namespace vodx::core {
namespace {

class ServiceValidation : public ::testing::TestWithParam<std::string> {
 protected:
  SessionResult run(int profile_id, Seconds duration = 300,
                    obs::Observer* observer = nullptr) {
    SessionConfig config;
    config.spec = services::service(GetParam());
    config.trace = trace::cellular_profile(profile_id);
    config.session_duration = duration;
    config.content_duration = 600;
    config.observer = observer;
    return run_session(config);
  }
};

TEST_P(ServiceValidation, PlaybackProgressesOnDecentNetwork) {
  SessionResult r = run(8);  // ~7.5 Mbps mean
  EXPECT_GE(r.final_position, 200)
      << "player barely progressed: " << to_string(r.final_state);
}

TEST_P(ServiceValidation, InferredStartupDelayCloseToTruth) {
  SessionResult r = run(8);
  ASSERT_GE(r.ground_truth.startup_delay, 0);
  EXPECT_NEAR(r.qoe.startup_delay, r.ground_truth.startup_delay, 1.6);
}

TEST_P(ServiceValidation, InferredBitrateCloseToTruth) {
  SessionResult r = run(8);
  ASSERT_GT(r.ground_truth.average_declared_bitrate, 0);
  EXPECT_NEAR(r.qoe.average_declared_bitrate,
              r.ground_truth.average_declared_bitrate,
              0.10 * r.ground_truth.average_declared_bitrate);
}

TEST_P(ServiceValidation, InferredStallTimeCloseToTruth) {
  SessionResult r = run(3);  // 1.5 Mbps mean: stalls likely for some
  const Seconds truth = r.ground_truth.total_stall;
  EXPECT_NEAR(r.qoe.total_stall, truth, 0.25 * truth + 3.0);
}

TEST_P(ServiceValidation, SegmentDurationRecoveredExactly) {
  SessionResult r = run(8, 120);
  const services::ServiceSpec& spec = services::service(GetParam());
  bool found = false;
  for (const auto& track : r.traffic.video_tracks) {
    if (track.segment_durations.empty()) continue;
    EXPECT_NEAR(track.nominal_segment_duration(), spec.segment_duration, 0.01);
    found = true;
  }
  EXPECT_TRUE(found);
}

TEST_P(ServiceValidation, AudioSeparationRecovered) {
  SessionResult r = run(8, 120);
  const services::ServiceSpec& spec = services::service(GetParam());
  EXPECT_EQ(!r.traffic.audio_tracks.empty(), spec.separate_audio);
}

TEST_P(ServiceValidation, WasteMatchesReplacementActivity) {
  SessionResult r = run(8);
  const services::ServiceSpec& spec = services::service(GetParam());
  if (spec.player.sr == player::SrPolicy::kNone) {
    // No SR: inferred waste only from aborted tail transfers (tiny).
    EXPECT_LT(static_cast<double>(r.qoe.wasted_bytes),
              0.02 * static_cast<double>(r.qoe.media_bytes) + 1e6);
  }
}

// Observability integration: an instrumented session's trace must tell the
// session's story in order — resolve, fill the startup buffer, start
// playing — and on a bad network the stall instants must bracket the
// player's own ground-truth record.
TEST_P(ServiceValidation, TraceNarratesStartupAndStalls) {
  obs::Observer observer;
  SessionResult r = run(3, 300, &observer);  // 1.5 Mbps: stalls likely

  std::vector<obs::Event> events = observer.trace.snapshot();
  ASSERT_FALSE(events.empty());

  // Events come out of the sink oldest-first with monotonic sequence
  // numbers; equal-time bursts keep emission order.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].sim_time, events[i].sim_time + 1e-9);
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  }

  auto index_of = [&](const char* name, obs::EventKind kind) {
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (events[i].kind == kind && std::string(events[i].name) == name) {
        return static_cast<long>(i);
      }
    }
    return -1L;
  };

  // Startup narrative: resolving -> startup -> playing, in that order.
  const long resolving = index_of("resolving", obs::EventKind::kSpanBegin);
  const long startup = index_of("startup", obs::EventKind::kSpanBegin);
  const long playing = index_of("playing", obs::EventKind::kSpanBegin);
  const long playback_start =
      index_of("playback.start", obs::EventKind::kInstant);
  ASSERT_GE(resolving, 0);
  ASSERT_GE(startup, 0);
  ASSERT_GE(playing, 0);
  ASSERT_GE(playback_start, 0);
  EXPECT_LT(resolving, startup);
  EXPECT_LT(startup, playing);

  // Stall instants mirror the ground truth: one begin per recorded stall,
  // and ends only for stalls that finished before the session did.
  long begins = 0;
  long ends = 0;
  for (const obs::Event& e : events) {
    if (e.kind != obs::EventKind::kInstant) continue;
    if (std::string(e.name) == "stall.begin") ++begins;
    if (std::string(e.name) == "stall.end") ++ends;
  }
  EXPECT_EQ(begins, static_cast<long>(r.ground_truth.stall_count));
  EXPECT_LE(ends, begins);

  // The summary metrics agree with the ground-truth report.
  obs::MetricsSnapshot snap = observer.metrics.snapshot(r.session_end);
  const obs::MetricsSnapshot::Entry* stalls = snap.find("session.stalls");
  ASSERT_NE(stalls, nullptr);
  EXPECT_EQ(stalls->count, r.ground_truth.stall_count);
}

INSTANTIATE_TEST_SUITE_P(
    AllServices, ServiceValidation,
    ::testing::Values("H1", "H2", "H3", "H4", "H5", "H6", "D1", "D2", "D3",
                      "D4", "S1", "S2"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

}  // namespace
}  // namespace vodx::core
