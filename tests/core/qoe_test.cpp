#include "core/qoe.h"

#include <gtest/gtest.h>

#include "core/session.h"
#include "testing/fixtures.h"

namespace vodx::core {
namespace {

using vodx::testing::test_spec;

SessionResult run_qoe_session(Bps bandwidth, Seconds duration = 180,
                              manifest::Protocol protocol =
                                  manifest::Protocol::kHls) {
  SessionConfig config;
  config.spec = test_spec(protocol);
  config.trace = net::BandwidthTrace::constant(bandwidth, duration);
  config.session_duration = duration;
  config.content_duration = 600;
  return run_session(config);
}

TEST(Qoe, InferredMatchesGroundTruthBitrate) {
  SessionResult r = run_qoe_session(4e6);
  EXPECT_GT(r.qoe.average_declared_bitrate, 0);
  EXPECT_NEAR(r.qoe.average_declared_bitrate,
              r.ground_truth.average_declared_bitrate,
              0.05 * r.ground_truth.average_declared_bitrate);
}

TEST(Qoe, InferredStartupWithinASecond) {
  SessionResult r = run_qoe_session(4e6);
  EXPECT_NEAR(r.qoe.startup_delay, r.ground_truth.startup_delay, 1.5);
}

TEST(Qoe, SwitchCountsMatchGroundTruth) {
  SessionResult r = run_qoe_session(4e6);
  EXPECT_NEAR(r.qoe.switch_count, r.ground_truth.switch_count, 2);
}

TEST(Qoe, HigherBandwidthGivesHigherBitrate) {
  SessionResult slow = run_qoe_session(1e6);
  SessionResult fast = run_qoe_session(6e6);
  EXPECT_GT(fast.qoe.average_declared_bitrate,
            slow.qoe.average_declared_bitrate);
}

TEST(Qoe, LowQualityFractionTracksBandwidth) {
  SessionResult slow = run_qoe_session(0.8e6);
  SessionResult fast = run_qoe_session(6e6);
  EXPECT_GT(slow.qoe.low_quality_fraction, 0.8);
  EXPECT_LT(fast.qoe.low_quality_fraction, 0.4);
}

TEST(Qoe, TimeByHeightSumsToDisplayedTime) {
  SessionResult r = run_qoe_session(3e6);
  Seconds sum = 0;
  for (const auto& [height, secs] : r.qoe.time_by_height) sum += secs;
  EXPECT_NEAR(sum, r.qoe.displayed_time, 1e-6);
}

TEST(Qoe, FractionAtOrBelowIsMonotone) {
  SessionResult r = run_qoe_session(2e6);
  double previous = 0;
  for (int height : {240, 360, 480, 720, 1080}) {
    const double fraction = r.qoe.fraction_at_or_below(height);
    EXPECT_GE(fraction, previous);
    previous = fraction;
  }
  EXPECT_NEAR(previous, 1.0, 1e-9);
}

TEST(Qoe, NoWasteWithoutSrOrStalls) {
  SessionResult r = run_qoe_session(4e6);
  EXPECT_EQ(r.qoe.wasted_bytes, 0);
}

TEST(Qoe, StallTimeMatchesGroundTruth) {
  SessionConfig config;
  config.spec = test_spec(manifest::Protocol::kHls);
  config.trace = net::BandwidthTrace::from_samples(
      {{0, 4e6}, {30, 60e3}, {70, 4e6}}, 200);
  config.session_duration = 200;
  config.content_duration = 600;
  SessionResult r = run_session(config);
  ASSERT_GT(r.ground_truth.total_stall, 3);
  EXPECT_NEAR(r.qoe.total_stall, r.ground_truth.total_stall,
              0.2 * r.ground_truth.total_stall + 2);
}

TEST(Qoe, MediaBytesBelowTotalBytes) {
  SessionResult r = run_qoe_session(4e6);
  EXPECT_GT(r.qoe.media_bytes, 0);
  EXPECT_LT(r.qoe.media_bytes, r.qoe.total_bytes);
}

}  // namespace
}  // namespace vodx::core
