// End-to-end coverage for the addressing modes beyond what the 12 studied
// services used: DASH SegmentTemplate ($Number$ files) and HLS v4
// byte-range segments — plus the BBA-style buffer-based ABR.
#include <gtest/gtest.h>

#include "core/session.h"
#include "manifest/dash_mpd.h"
#include "testing/fixtures.h"

namespace vodx::core {
namespace {

using vodx::testing::test_spec;

SessionResult run_spec(services::ServiceSpec spec, Bps bandwidth = 4e6,
                       Seconds duration = 120) {
  SessionConfig config;
  config.spec = std::move(spec);
  config.trace = net::BandwidthTrace::constant(bandwidth, duration);
  config.session_duration = duration;
  config.content_duration = 300;
  return run_session(config);
}

TEST(SegmentTemplate, MpdRoundTrip) {
  manifest::DashMpd mpd;
  mpd.media_presentation_duration = 20;
  manifest::DashAdaptationSet set;
  manifest::DashRepresentation rep;
  rep.id = "video/0";
  rep.bandwidth = 1e6;
  rep.media_template = "video/0/seg$Number$.m4s";
  rep.start_number = 1;
  rep.template_durations = {4, 4, 4, 4, 4};
  set.representations.push_back(rep);
  mpd.adaptation_sets.push_back(set);

  manifest::DashMpd parsed = manifest::DashMpd::parse(mpd.serialize());
  const auto& out = parsed.adaptation_sets[0].representations[0];
  EXPECT_EQ(out.media_template, "video/0/seg$Number$.m4s");
  EXPECT_EQ(out.start_number, 1);
  ASSERT_EQ(out.template_durations.size(), 5u);
  EXPECT_EQ(out.template_url(0), "video/0/seg1.m4s");
  EXPECT_EQ(out.template_url(4), "video/0/seg5.m4s");
}

TEST(SegmentTemplate, FullSessionStreams) {
  services::ServiceSpec spec = test_spec(manifest::Protocol::kDash);
  spec.dash_index = manifest::DashIndexMode::kSegmentTemplate;
  SessionResult r = run_spec(spec);
  EXPECT_GE(r.final_position, 100);
  EXPECT_TRUE(r.events.stalls.empty());
  // Templated mode exposes no sizes: the analyzer's tracks have durations
  // but no size lists.
  ASSERT_EQ(r.traffic.video_tracks.size(), 4u);
  for (const AnalyzedTrack& t : r.traffic.video_tracks) {
    EXPECT_FALSE(t.segment_durations.empty());
    EXPECT_TRUE(t.segment_sizes.empty());
  }
  // Every download still maps to (level, index).
  int mapped = 0;
  for (const SegmentDownload& d : r.traffic.downloads) {
    if (d.type == media::ContentType::kVideo) ++mapped;
    EXPECT_GE(d.level, 0);
  }
  EXPECT_GT(mapped, 15);
}

TEST(SegmentTemplate, QoeInferenceStillMatchesTruth) {
  services::ServiceSpec spec = test_spec(manifest::Protocol::kDash);
  spec.dash_index = manifest::DashIndexMode::kSegmentTemplate;
  SessionResult r = run_spec(spec);
  EXPECT_NEAR(r.qoe.average_declared_bitrate,
              r.ground_truth.average_declared_bitrate,
              0.05 * r.ground_truth.average_declared_bitrate);
}

TEST(HlsByteRange, FullSessionStreamsWithSizesExposed) {
  services::ServiceSpec spec = test_spec(manifest::Protocol::kHls);
  spec.hls_byterange = true;
  SessionResult r = run_spec(spec);
  EXPECT_GE(r.final_position, 100);
  ASSERT_EQ(r.traffic.video_tracks.size(), 4u);
  // Byte-range HLS exposes exact sizes, like DASH (§4.2's "newer HLS").
  for (const AnalyzedTrack& t : r.traffic.video_tracks) {
    EXPECT_EQ(t.segment_sizes.size(), t.segment_durations.size());
  }
  for (const SegmentDownload& d : r.traffic.downloads) {
    if (d.type != media::ContentType::kVideo || d.aborted) continue;
    const AnalyzedTrack& track = r.traffic.video_track(d.level);
    EXPECT_EQ(d.bytes,
              track.segment_sizes[static_cast<std::size_t>(d.index)]);
  }
}

TEST(HlsByteRange, EnablesActualBitrateAbr) {
  // §4.2: once HLS exposes sizes, an actual-aware ABR can use them.
  services::ServiceSpec declared_only = test_spec(manifest::Protocol::kHls);
  declared_only.hls_byterange = true;
  declared_only.peak_to_average = 2.0;
  services::ServiceSpec actual = declared_only;
  actual.player.use_actual_bitrate = true;

  SessionResult base = run_spec(declared_only, 1.2e6, 200);
  SessionResult aware = run_spec(actual, 1.2e6, 200);
  EXPECT_GT(aware.qoe.average_declared_bitrate,
            base.qoe.average_declared_bitrate);
}

TEST(HlsAverageBandwidth, ImprovesSelectionWithoutByteRanges) {
  // §4.2: even without per-segment sizes, the AVERAGE-BANDWIDTH attribute
  // lets an actual-aware ABR stop treating the peak-declared bitrate as the
  // track's cost.
  auto run = [](bool use_actual) {
    services::ServiceSpec spec = test_spec(manifest::Protocol::kHls);
    spec.peak_to_average = 2.0;
    spec.hls_average_bandwidth = true;
    spec.player.use_actual_bitrate = use_actual;
    return run_spec(std::move(spec), 1.2e6, 200);
  };
  SessionResult declared_only = run(false);
  SessionResult average_aware = run(true);
  EXPECT_GT(average_aware.qoe.average_declared_bitrate,
            1.3 * declared_only.qoe.average_declared_bitrate);
  // No per-segment granularity was needed: sizes were never on the wire.
  for (const AnalyzedTrack& t : average_aware.traffic.video_tracks) {
    EXPECT_TRUE(t.segment_sizes.empty());
  }
}

TEST(BufferBasedAbr, StreamsAndSettles) {
  services::ServiceSpec spec = test_spec(manifest::Protocol::kDash);
  spec.player.abr = player::AbrKind::kBufferBased;
  spec.player.bba_reservoir = 8;
  spec.player.bba_cushion = 20;
  spec.player.pausing_threshold = 40;
  spec.player.resuming_threshold = 32;
  SessionResult r = run_spec(spec, 5e6, 200);
  EXPECT_GE(r.final_position, 180);
  EXPECT_TRUE(r.events.stalls.empty());
  // With ample bandwidth the buffer fills past the cushion and playback
  // spends most time on the top track.
  EXPECT_GT(r.qoe.fraction_at_or_below(480), -1);  // sanity
  EXPECT_GT(r.qoe.average_declared_bitrate, 1.5e6);
}

TEST(BufferBasedAbr, DrainsGracefullyOnLowBandwidth) {
  services::ServiceSpec spec = test_spec(manifest::Protocol::kDash);
  spec.player.abr = player::AbrKind::kBufferBased;
  spec.player.bba_reservoir = 8;
  spec.player.bba_cushion = 20;
  spec.player.pausing_threshold = 40;
  spec.player.resuming_threshold = 32;
  SessionResult r = run_spec(spec, 600e3, 200);
  // The buffer controller keeps it on low tracks instead of stalling hard.
  EXPECT_LT(r.qoe.average_declared_bitrate, 900e3);
  EXPECT_LT(r.ground_truth.total_stall, 20);
}

}  // namespace
}  // namespace vodx::core
