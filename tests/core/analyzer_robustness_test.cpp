// Analyzer behaviour on imperfect inputs: truncated sessions, foreign
// traffic mixed into the log, and logs caught mid-flight.
#include <gtest/gtest.h>

#include "common/error.h"
#include "core/session.h"
#include "core/traffic_analyzer.h"
#include "testing/fixtures.h"

namespace vodx::core {
namespace {

using vodx::testing::test_spec;

TEST(AnalyzerRobustness, HandlesSessionCutMidTransfer) {
  // End the session while a segment is in flight: the analyzer must not
  // count the unfinished transfer as a completed download.
  SessionConfig config;
  config.spec = test_spec(manifest::Protocol::kHls);
  config.trace = net::BandwidthTrace::constant(300e3, 60);
  config.session_duration = 17;  // likely mid-segment at this rate
  config.content_duration = 300;
  SessionResult r = run_session(config);
  for (const SegmentDownload& d : r.traffic.downloads) {
    if (!d.aborted) {
      EXPECT_GE(d.completed_at, 0) << d.index;
      EXPECT_LE(d.completed_at, 17 + 1e-6);
    }
  }
}

TEST(AnalyzerRobustness, IgnoresUnmappableRequests) {
  // Foreign records (tracking beacons, ads) in the same log must not
  // confuse the segment mapping.
  http::TrafficLog log;
  const char* master =
      "#EXTM3U\n#EXT-X-STREAM-INF:BANDWIDTH=1000000\nvideo/0/p.m3u8\n";
  const char* playlist =
      "#EXTM3U\n#EXT-X-TARGETDURATION:4\n#EXTINF:4.0,\nseg0.ts\n"
      "#EXT-X-ENDLIST\n";
  auto add = [&](const std::string& url, http::Response resp, Seconds at) {
    int id = log.open(http::Method::kGet, url, {}, at, resp, "c", 0);
    log.complete(id, at + 0.5, resp.payload_size);
  };
  add("/master.m3u8",
      http::make_ok("application/vnd.apple.mpegurl", master), 0);
  add("/video/0/p.m3u8",
      http::make_ok("application/vnd.apple.mpegurl", playlist), 1);
  add("/beacon?id=123", http::make_ok("text/plain", "ok"), 2);
  add("/ads/creative.jpg", http::make_media("image/jpeg", 50000), 2.5);
  add("/video/0/seg0.ts", http::make_media("video/mp2t", 400000), 3);
  add("/totally/unrelated.ts", http::make_media("video/mp2t", 12345), 4);

  AnalyzedTraffic traffic = analyze_traffic(log);
  ASSERT_EQ(traffic.downloads.size(), 1u);
  EXPECT_EQ(traffic.downloads[0].index, 0);
  EXPECT_EQ(traffic.downloads[0].bytes, 400000);
}

TEST(AnalyzerRobustness, ThrowsCleanlyOnGarbageManifestBody) {
  http::TrafficLog log;
  http::Response bogus =
      http::make_ok("application/dash+xml", "<MPD this is not xml");
  int id = log.open(http::Method::kGet, "/manifest.mpd", {}, 0, bogus, "c", 0);
  log.complete(id, 1, bogus.payload_size);
  EXPECT_THROW(analyze_traffic(log), ParseError);
}

TEST(AnalyzerRobustness, EmptyPlaylistSessionStillAnalyzes) {
  // A master playlist with variants that were never fetched: tracks exist
  // with declared bitrates but no durations, and nothing crashes.
  http::TrafficLog log;
  const char* master =
      "#EXTM3U\n"
      "#EXT-X-STREAM-INF:BANDWIDTH=1000000\nvideo/0/p.m3u8\n"
      "#EXT-X-STREAM-INF:BANDWIDTH=2000000\nvideo/1/p.m3u8\n";
  http::Response resp =
      http::make_ok("application/vnd.apple.mpegurl", master);
  int id = log.open(http::Method::kGet, "/master.m3u8", {}, 0, resp, "c", 0);
  log.complete(id, 0.5, resp.payload_size);
  AnalyzedTraffic traffic = analyze_traffic(log);
  ASSERT_EQ(traffic.video_tracks.size(), 2u);
  EXPECT_TRUE(traffic.downloads.empty());
  EXPECT_TRUE(traffic.video_tracks[0].segment_durations.empty());
}

TEST(AnalyzerRobustness, ClassifierReturnsNulloptBeforeManifests) {
  http::TrafficLog log;
  SegmentClassifier classifier(log);
  EXPECT_FALSE(classifier.classify("/video/0/seg0.ts", std::nullopt));
}

TEST(AnalyzerRobustness, ClassifierPicksUpManifestsAsTheyArrive) {
  http::TrafficLog log;
  SegmentClassifier classifier(log);
  const char* master =
      "#EXTM3U\n#EXT-X-STREAM-INF:BANDWIDTH=1000000\nvideo/0/p.m3u8\n";
  http::Response master_resp =
      http::make_ok("application/vnd.apple.mpegurl", master);
  int id1 = log.open(http::Method::kGet, "/master.m3u8", {}, 0, master_resp,
                     "c", 0);
  log.complete(id1, 0.5, master_resp.payload_size);
  // Master alone cannot map segments.
  EXPECT_FALSE(classifier.classify("/video/0/seg0.ts", std::nullopt));

  const char* playlist =
      "#EXTM3U\n#EXT-X-TARGETDURATION:4\n#EXTINF:4.0,\nseg0.ts\n"
      "#EXT-X-ENDLIST\n";
  http::Response playlist_resp =
      http::make_ok("application/vnd.apple.mpegurl", playlist);
  int id2 = log.open(http::Method::kGet, "/video/0/p.m3u8", {}, 1,
                     playlist_resp, "c", 1);
  log.complete(id2, 1.5, playlist_resp.payload_size);
  auto ref = classifier.classify("/video/0/seg0.ts", std::nullopt);
  ASSERT_TRUE(ref.has_value());
  EXPECT_EQ(ref->index, 0);
  EXPECT_EQ(ref->type, media::ContentType::kVideo);
}

TEST(RebufferMinSegments, AppliesStartupAdviceToStallRecovery) {
  // §4.3's closing remark: the segment-count constraint helps recovery too.
  // An outage drains the buffer; on recovery, requiring 2 segments avoids
  // the instant re-stall that resuming on a single long segment risks.
  auto run = [](int min_segments) {
    services::ServiceSpec spec = test_spec(manifest::Protocol::kHls);
    spec.segment_duration = 8;
    spec.player.startup_buffer = 8;
    spec.player.rebuffer_duration = 4;  // deliberately skimpy
    spec.player.rebuffer_min_segments = min_segments;
    SessionConfig config;
    config.spec = spec;
    config.trace = net::BandwidthTrace::from_samples(
        {{0, 3e6}, {30, 40e3}, {60, 700e3}}, 300);
    config.session_duration = 300;
    config.content_duration = 600;
    return run_session(config);
  };
  SessionResult quick = run(1);
  SessionResult careful = run(2);
  // The careful player resumes later but re-stalls no more often.
  EXPECT_LE(careful.events.stalls.size(), quick.events.stalls.size());
}

}  // namespace
}  // namespace vodx::core
