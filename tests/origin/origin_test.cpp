// vodx::origin unit tests: the edge cache (hit/miss/TTL/LRU/flush),
// request coalescing vs the cache-miss storm, bounded retries with seeded
// jitter, the circuit breaker's trip / half-open / recovery walk, and the
// consistency digest. Everything runs against a real Proxy + OriginServer so
// the interceptor-chain ordering contract (origin first, injectors after)
// is exercised, not mocked.
#include "origin/origin.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/error.h"
#include "http/proxy.h"
#include "testing/fixtures.h"

namespace vodx::origin {
namespace {

using vodx::testing::small_asset;

constexpr const char* kManifest = "/master.m3u8";

struct World {
  explicit World(OriginOptions options,
                 std::shared_ptr<OriginState> state = nullptr,
                 std::string scope = "test|42")
      : server(small_asset(), {manifest::Protocol::kHls}),
        proxy(server),
        tier(std::make_shared<OriginTier>(options, std::move(state),
                                          std::move(scope))) {
    proxy.use(tier);
  }

  http::Response get(const std::string& url, Seconds now) {
    return proxy.resolve({http::Method::kGet, url, {}}, now);
  }

  const OriginState::Totals& totals() const { return tier->state().totals; }

  http::OriginServer server;
  http::Proxy proxy;
  std::shared_ptr<OriginTier> tier;
};

TEST(OriginMode, ParseAndToStringRoundTrip) {
  EXPECT_EQ(parse_mode("none"), Mode::kNone);
  EXPECT_EQ(parse_mode("naive"), Mode::kNaive);
  EXPECT_EQ(parse_mode("hardened"), Mode::kHardened);
  EXPECT_STREQ(to_string(Mode::kNaive), "naive");
  EXPECT_STREQ(to_string(Mode::kHardened), "hardened");
  EXPECT_THROW(parse_mode("cdn"), ConfigError);
  EXPECT_THROW(parse_mode(""), ConfigError);
}

TEST(OriginMode, PresetsMatchTheirDocumentedShape) {
  const OriginOptions naive = naive_origin();
  EXPECT_EQ(naive.mode, Mode::kNaive);
  EXPECT_FALSE(naive.coalesce);
  EXPECT_EQ(naive.retry_budget, 0);
  EXPECT_EQ(naive.breaker_threshold, 0);

  const OriginOptions hard = hardened_origin();
  EXPECT_EQ(hard.mode, Mode::kHardened);
  EXPECT_TRUE(hard.coalesce);
  EXPECT_GT(hard.retry_budget, 0);
  EXPECT_GT(hard.breaker_threshold, 0);

  EXPECT_EQ(preset(Mode::kNone).mode, Mode::kNone);
  EXPECT_EQ(preset(Mode::kNaive).mode, Mode::kNaive);
  EXPECT_EQ(preset(Mode::kHardened).mode, Mode::kHardened);
}

TEST(OriginOptionsValidate, RejectsDegenerateKnobs) {
  OriginOptions options = hardened_origin();
  options.cache_capacity = 0;
  EXPECT_THROW(options.validate(), ConfigError);

  options = hardened_origin();
  options.cache_ttl_s = 0;
  EXPECT_THROW(options.validate(), ConfigError);

  options = hardened_origin();
  options.manifest_package_s = -0.01;
  EXPECT_THROW(options.validate(), ConfigError);

  options = hardened_origin();
  options.retry_budget = -1;
  EXPECT_THROW(options.validate(), ConfigError);

  options = hardened_origin();
  options.retry_budget = 2;
  options.backoff_base_s = 0;
  EXPECT_THROW(options.validate(), ConfigError);

  options = hardened_origin();
  options.backoff_jitter_s = -0.1;
  EXPECT_THROW(options.validate(), ConfigError);

  options = hardened_origin();
  options.breaker_threshold = 3;
  options.breaker_cooldown_s = 0;
  EXPECT_THROW(options.validate(), ConfigError);

  options = hardened_origin();
  options.secondary_extra_s = -1;
  EXPECT_THROW(options.validate(), ConfigError);

  EXPECT_NO_THROW(hardened_origin().validate());
  EXPECT_NO_THROW(naive_origin().validate());
}

TEST(OriginCache, MissPaysPackagingThenHitPaysEdgeLatency) {
  World world(hardened_origin());
  const http::Response miss = world.get(kManifest, 0);
  ASSERT_TRUE(miss.ok());
  // A manifest miss pays the manifest repackaging cost.
  EXPECT_DOUBLE_EQ(miss.added_latency,
                   world.tier->options().manifest_package_s);
  EXPECT_EQ(world.totals().misses, 1);
  EXPECT_EQ(world.totals().hits, 0);

  const http::Response hit = world.get(kManifest, 1.0);
  ASSERT_TRUE(hit.ok());
  EXPECT_DOUBLE_EQ(hit.added_latency, world.tier->options().cache_hit_s);
  EXPECT_EQ(world.totals().misses, 1);
  EXPECT_EQ(world.totals().hits, 1);
  EXPECT_EQ(hit.body, miss.body);
}

TEST(OriginCache, SegmentPackagingScalesWithPayload) {
  World world(hardened_origin());
  const http::Response segment = world.get("/video/2/seg0.ts", 0);
  ASSERT_TRUE(segment.ok());
  const OriginOptions& o = world.tier->options();
  const double mb = static_cast<double>(segment.payload_size) / 1e6;
  EXPECT_DOUBLE_EQ(segment.added_latency,
                   o.segment_package_base_s + o.segment_package_per_mb_s * mb);
}

TEST(OriginCache, TtlExpiryRefillsLikeAMiss) {
  OriginOptions options = hardened_origin();
  options.cache_ttl_s = 5;
  World world(options);
  world.get(kManifest, 0);
  const http::Response stale = world.get(kManifest, 6.0);
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(world.totals().expired, 1);
  EXPECT_EQ(world.totals().misses, 2);
  // The refill is live again.
  world.get(kManifest, 7.0);
  EXPECT_EQ(world.totals().hits, 1);
}

TEST(OriginCache, LruEvictsTheColdestEntry) {
  OriginOptions options = hardened_origin();
  options.cache_capacity = 2;
  World world(options);
  world.get("/video/0/seg0.ts", 1);  // A: miss, fill
  world.get("/video/0/seg1.ts", 2);  // B: miss, fill
  world.get("/video/0/seg0.ts", 3);  // A: hit — B is now coldest
  world.get("/video/0/seg2.ts", 4);  // C: miss — evicts B
  EXPECT_EQ(world.totals().hits, 1);
  world.get("/video/0/seg1.ts", 5);  // B again: must be a miss (evicts A)
  EXPECT_EQ(world.totals().misses, 4);
  world.get("/video/0/seg2.ts", 6);  // C survived both evictions
  EXPECT_EQ(world.totals().hits, 2);
}

TEST(OriginCache, ScheduledFlushWipesTheEdge) {
  World world(hardened_origin());
  world.tier->set_fault_schedule({faults::CacheFlushFault{5.0}}, {});
  world.get(kManifest, 0);
  world.get(kManifest, 1);
  EXPECT_EQ(world.totals().hits, 1);
  world.get(kManifest, 6.0);  // the 5 s flush lands before this request
  EXPECT_EQ(world.totals().flushes, 1);
  EXPECT_EQ(world.totals().misses, 2);
}

TEST(OriginCache, CoalescingServesWaitersFromTheInFlightFill) {
  World world(hardened_origin());
  const http::Response first = world.get(kManifest, 10.0);
  // Second request lands before the fill's origin latency has elapsed
  // (ready_at = 10 + manifest packaging): it joins the in-flight fill and
  // pays the residual wait, not a second origin round trip.
  const http::Response waiter = world.get(kManifest, 10.0);
  ASSERT_TRUE(waiter.ok());
  EXPECT_EQ(world.totals().coalesced, 1);
  EXPECT_EQ(world.totals().dup_fills, 0);
  EXPECT_EQ(world.totals().misses, 1);
  EXPECT_NEAR(waiter.added_latency,
              first.added_latency + world.tier->options().cache_hit_s, 1e-9);
}

TEST(OriginCache, DisabledCoalescingDuplicatesTheFill) {
  // The cache-miss storm: with coalescing off every concurrent requester
  // refetches and repackages the same key.
  World world(naive_origin());
  world.get(kManifest, 10.0);
  world.get(kManifest, 10.0);
  EXPECT_EQ(world.totals().dup_fills, 1);
  EXPECT_EQ(world.totals().coalesced, 0);
  EXPECT_EQ(world.totals().misses, 2);
}

TEST(OriginCache, ScopeNamespacesTitles) {
  // Two sessions share cached bytes only when they stream the same title:
  // different scopes on the same shared state never cross-serve.
  auto state = std::make_shared<OriginState>();
  World first(hardened_origin(), state, "H1|7");
  World second(hardened_origin(), state, "H1|8");
  first.get(kManifest, 0);
  second.get(kManifest, 1);
  EXPECT_EQ(state->totals.misses, 2);
  EXPECT_EQ(state->totals.hits, 0);

  World same_title(hardened_origin(), state, "H1|7");
  same_title.get(kManifest, 2);
  EXPECT_EQ(state->totals.hits, 1);
  EXPECT_EQ(state->totals.consistency_failures, 0);
}

TEST(OriginConsistency, DigestDiscriminatesAndTamperingIsDetected) {
  auto state = std::make_shared<OriginState>();
  World world(hardened_origin(), state);
  const http::Response manifest = world.get(kManifest, 0);
  const http::Response segment = world.get("/video/0/seg0.ts", 1);
  EXPECT_EQ(response_digest(manifest), response_digest(manifest));
  EXPECT_NE(response_digest(manifest), response_digest(segment));

  // Corrupt one cached digest: the next hit must flag the inconsistency
  // (this is the cache.consistency invariant chaos checks).
  ASSERT_FALSE(state->entries.empty());
  state->entries.begin()->second.digest ^= 1;
  world.get(kManifest, 2);
  world.get("/video/0/seg0.ts", 3);
  EXPECT_EQ(state->totals.consistency_failures, 1);
}

TEST(OriginFailover, RetryClearsATransientInjectedError) {
  World world(hardened_origin());
  int injected = 0;
  // Registered after the tier: its response stage runs BEFORE the tier's
  // (reverse registration order), exactly where faults::FaultInjector sits.
  world.proxy.use(http::tap_response(
      [&injected](const http::Request&, http::Response& response, Seconds) {
        if (injected++ == 0) response = http::make_error(503, "injected");
      }));

  const http::Response response = world.get(kManifest, 0);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(world.totals().retries, 1);
  EXPECT_EQ(world.totals().errors, 0);
  // The client paid the first backoff (base + jitter in [0, jitter)) plus
  // the repackaging on the retried fetch.
  const OriginOptions& o = world.tier->options();
  EXPECT_GE(response.added_latency, o.backoff_base_s + o.manifest_package_s);
  EXPECT_LT(response.added_latency,
            o.backoff_base_s + o.backoff_jitter_s + o.manifest_package_s);
}

TEST(OriginFailover, NaiveOriginPropagatesFailuresAndCachesNothing) {
  World world(naive_origin());
  world.proxy.use(http::tap_response(
      [](const http::Request&, http::Response& response, Seconds) {
        response = http::make_error(503, "origin overloaded");
      }));
  EXPECT_EQ(world.get(kManifest, 0).status, 503);
  EXPECT_EQ(world.get(kManifest, 1).status, 503);
  EXPECT_EQ(world.totals().errors, 2);
  EXPECT_EQ(world.totals().retries, 0);
  EXPECT_EQ(world.totals().misses, 2);  // a failure never fills the edge
  EXPECT_EQ(world.totals().hits, 0);
}

TEST(OriginFailover, BreakerTripsToSecondaryProbesAndRecovers) {
  World world(hardened_origin());
  // Primary dark over [10, 40): inside the window every retried attempt
  // still lands in the blackout (max total backoff ~1.25 s).
  world.tier->set_fault_schedule({}, {faults::DcBlackoutFault{10, 30}});

  // Two fresh keys fail through the full retry budget and propagate.
  EXPECT_FALSE(world.get("/video/0/seg0.ts", 11).ok());
  EXPECT_FALSE(world.get("/video/0/seg1.ts", 12).ok());
  EXPECT_EQ(world.totals().errors, 2);
  EXPECT_EQ(world.totals().retries,
            2 * world.tier->options().retry_budget);
  EXPECT_FALSE(world.tier->state().breaker_open);

  // Third consecutive failure reaches the threshold: trip, serve secondary.
  EXPECT_TRUE(world.get("/video/0/seg2.ts", 13).ok());
  EXPECT_EQ(world.totals().trips, 1);
  EXPECT_EQ(world.totals().secondary, 1);
  EXPECT_TRUE(world.tier->state().breaker_open);

  // Open breaker, cooldown not elapsed: straight to the secondary, no
  // retries burned.
  const long long retries_before = world.totals().retries;
  EXPECT_TRUE(world.get("/video/0/seg3.ts", 14).ok());
  EXPECT_EQ(world.totals().secondary, 2);
  EXPECT_EQ(world.totals().retries, retries_before);

  // Half-open probe while still dark: re-opens, the probe's requester is
  // served by the secondary.
  EXPECT_TRUE(world.get("/video/0/seg4.ts", 29).ok());
  EXPECT_EQ(world.totals().probes, 1);
  EXPECT_EQ(world.totals().secondary, 3);
  EXPECT_TRUE(world.tier->state().breaker_open);

  // Blackout over, cooldown elapsed: the probe succeeds and the breaker
  // closes — this request is a plain healthy miss off the primary.
  const http::Response recovered = world.get("/video/0/seg5.ts", 45);
  EXPECT_TRUE(recovered.ok());
  EXPECT_EQ(world.totals().probes, 2);
  EXPECT_EQ(world.totals().secondary, 3);
  EXPECT_FALSE(world.tier->state().breaker_open);
  EXPECT_EQ(world.tier->state().consecutive_failures, 0);
}

TEST(OriginFailover, SecondaryExtraLatencyIsCharged) {
  OriginOptions options = hardened_origin();
  options.breaker_threshold = 1;
  options.retry_budget = 0;
  World world(options);
  world.tier->set_fault_schedule({}, {faults::DcBlackoutFault{0, 100}});
  const http::Response response = world.get(kManifest, 5);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(world.totals().trips, 1);
  EXPECT_DOUBLE_EQ(response.added_latency,
                   options.manifest_package_s + options.secondary_extra_s);
}

TEST(OriginFailover, RetryJitterIsAPureFunctionOfTheSeed) {
  auto run = [](std::uint64_t seed) {
    OriginOptions options = hardened_origin();
    options.seed = seed;
    World world(options);
    int injected = 0;
    world.proxy.use(http::tap_response(
        [&injected](const http::Request&, http::Response& response, Seconds) {
          if (injected++ == 0) response = http::make_error(503, "flaky");
        }));
    return world.get(kManifest, 0).added_latency;
  };
  EXPECT_DOUBLE_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(OriginObs, CountersMirrorTheStateTotals) {
  obs::Observer observer;
  OriginOptions options = hardened_origin();
  options.cache_ttl_s = 5;
  World world(options);
  world.tier->set_observer(&observer);
  world.get(kManifest, 0);   // miss
  world.get(kManifest, 1);   // hit
  world.get(kManifest, 7);   // expired -> miss
  EXPECT_EQ(observer.metrics.counter("origin.cache.hits").value(),
            world.totals().hits);
  EXPECT_EQ(observer.metrics.counter("origin.cache.misses").value(),
            world.totals().misses);
  EXPECT_EQ(observer.metrics.counter("origin.cache.expired").value(),
            world.totals().expired);
  EXPECT_EQ(observer.metrics.gauge("origin.coalesce.enabled").value(), 1);
}

TEST(OriginTotals, MergeFromAddsFieldwise) {
  OriginState::Totals a;
  a.hits = 1;
  a.misses = 2;
  a.retries = 3;
  OriginState::Totals b;
  b.hits = 10;
  b.misses = 20;
  b.errors = 5;
  a.merge_from(b);
  EXPECT_EQ(a.hits, 11);
  EXPECT_EQ(a.misses, 22);
  EXPECT_EQ(a.retries, 3);
  EXPECT_EQ(a.errors, 5);
}

}  // namespace
}  // namespace vodx::origin
