// Session-level origin tests: the tier wired through run_session /
// HostedSession, its composition with faults::FaultPlan (the injector's
// errors register as primary-DC failures the hardened origin absorbs), and
// run-to-run determinism of the whole stack.
#include <gtest/gtest.h>

#include <memory>

#include "core/session.h"
#include "faults/fault_plan.h"
#include "origin/origin.h"
#include "services/service_catalog.h"
#include "trace/cellular_profiles.h"

namespace vodx::core {
namespace {

SessionConfig base_config() {
  SessionConfig config;
  config.spec = services::service("H1");
  config.trace = trace::cellular_profile(7, 2017);
  config.session_duration = 60;
  config.content_duration = 120;
  return config;
}

TEST(OriginSession, HardenedTierServesTheSessionAndFillsTheCache) {
  SessionConfig config = base_config();
  config.origin = origin::hardened_origin();
  config.origin_state = std::make_shared<origin::OriginState>();
  const SessionResult result = run_session(config);
  EXPECT_GE(result.ground_truth.startup_delay, 0);
  EXPECT_GT(result.ground_truth.total_bytes, 0);
  const origin::OriginState::Totals& totals = config.origin_state->totals;
  // A single session never refetches a key it already pulled, so hits come
  // only from manifest refreshes — but every fetch goes through the tier.
  EXPECT_GT(totals.misses, 0);
  EXPECT_EQ(totals.errors, 0);
  EXPECT_EQ(totals.consistency_failures, 0);
}

TEST(OriginSession, RunSessionIsDeterministicWithTheTierEnabled) {
  auto run = [] {
    SessionConfig config = base_config();
    config.origin = origin::hardened_origin();
    config.origin_state = std::make_shared<origin::OriginState>();
    const SessionResult result = run_session(config);
    return std::make_pair(result, config.origin_state->totals);
  };
  const auto first = run();
  const auto second = run();
  EXPECT_DOUBLE_EQ(first.first.ground_truth.startup_delay,
                   second.first.ground_truth.startup_delay);
  EXPECT_DOUBLE_EQ(first.first.ground_truth.total_stall,
                   second.first.ground_truth.total_stall);
  EXPECT_EQ(first.first.ground_truth.total_bytes,
            second.first.ground_truth.total_bytes);
  EXPECT_EQ(first.second.hits, second.second.hits);
  EXPECT_EQ(first.second.misses, second.second.misses);
  EXPECT_EQ(first.second.retries, second.second.retries);
}

TEST(OriginSession, HardenedOriginAbsorbsInjectedOriginErrors) {
  // An ErrorFault that 503s every segment in a window. Registered after the
  // tier, so the tier's failover sees the injected failures: the hardened
  // origin's first retry clears each transient error; the naive origin
  // propagates every one to the player.
  faults::FaultPlan plan;
  plan.name = "segment-errors";
  faults::ErrorFault fault;
  fault.match.url_contains = "seg";
  fault.match.start = 10;
  fault.match.end = 25;
  fault.probability = 1.0;
  plan.errors.push_back(fault);

  SessionConfig naive = base_config();
  naive.fault_plan = plan;
  naive.origin = origin::naive_origin();
  naive.origin_state = std::make_shared<origin::OriginState>();
  run_session(naive);
  EXPECT_GT(naive.origin_state->totals.errors, 0);

  SessionConfig hardened = base_config();
  hardened.fault_plan = plan;
  hardened.origin = origin::hardened_origin();
  hardened.origin_state = std::make_shared<origin::OriginState>();
  run_session(hardened);
  EXPECT_EQ(hardened.origin_state->totals.errors, 0);
  EXPECT_GT(hardened.origin_state->totals.retries, 0);
}

TEST(OriginSession, FaultPlanCacheFlushReachesTheTier) {
  faults::FaultPlan plan;
  plan.name = "flush";
  plan.cache_flushes.push_back(faults::CacheFlushFault{20});

  SessionConfig config = base_config();
  config.fault_plan = plan;
  config.origin = origin::hardened_origin();
  config.origin_state = std::make_shared<origin::OriginState>();
  run_session(config);
  EXPECT_EQ(config.origin_state->totals.flushes, 1);
}

TEST(OriginSession, DcBlackoutFailsOverInsteadOfFailingTheSession) {
  faults::FaultPlan plan;
  plan.name = "dc-blackout";
  plan.dc_blackouts.push_back(faults::DcBlackoutFault{5, 30});

  SessionConfig config = base_config();
  config.fault_plan = plan;
  config.origin = origin::hardened_origin();
  config.origin_state = std::make_shared<origin::OriginState>();
  const SessionResult result = run_session(config);
  const origin::OriginState::Totals& totals = config.origin_state->totals;
  EXPECT_GT(totals.trips + totals.secondary, 0);
  EXPECT_GE(result.ground_truth.startup_delay, 0);
  EXPECT_GT(result.ground_truth.total_bytes, 0);
}

}  // namespace
}  // namespace vodx::core
