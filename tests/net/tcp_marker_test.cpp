// The tcp.transfer / tcp.handshake / tcp.idle_restart trace markers are
// the raw evidence vodx::diag consumes; their fields are a contract.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/link.h"
#include "net/simulator.h"
#include "net/tcp_connection.h"
#include "obs/event.h"
#include "obs/observer.h"

namespace vodx::net {
namespace {

struct Harness {
  explicit Harness(Bps bandwidth, Seconds duration = 600, Seconds rtt = 0.07)
      : sim(0.01),
        link(sim, BandwidthTrace::constant(bandwidth, duration), rtt) {}

  Simulator sim;
  Link link;
};

std::vector<obs::Event> events_named(const obs::Observer& observer,
                                     const char* name, obs::EventKind kind) {
  std::vector<obs::Event> out;
  for (const obs::Event& e : observer.trace.snapshot()) {
    if (e.kind == kind && std::string(e.name) == name) out.push_back(e);
  }
  return out;
}

double field(const obs::Event& e, const char* name) {
  const obs::Field* f = obs::find_field(e, name);
  EXPECT_NE(f, nullptr) << "missing field " << name << " on " << e.name;
  return f == nullptr ? -1 : f->num;
}

TEST(TcpMarkers, TransferEndCarriesTheDiagContract) {
  Harness h(8e6);
  obs::Observer observer;
  TcpConnection conn({}, "c");
  conn.set_observer(&observer);
  h.link.attach(&conn);
  conn.start_transfer(h.sim.now(), 500'000, [] {});
  h.sim.run_until(10);

  const std::vector<obs::Event> ends =
      events_named(observer, "tcp.transfer", obs::EventKind::kSpanEnd);
  ASSERT_EQ(ends.size(), 1u);
  const obs::Event& end = ends.front();
  EXPECT_EQ(end.track, conn.obs_track());
  // Cold connection: first byte waits handshake + request, ~2 RTTs.
  EXPECT_NEAR(field(end, "wait_s"), 0.14, 0.03);
  EXPECT_DOUBLE_EQ(field(end, "extra_wait_s"), 0);
  EXPECT_DOUBLE_EQ(field(end, "restart"), 0);
  // Streaming time splits exhaustively into sender- vs link-limited.
  EXPECT_GE(field(end, "sender_limited_s"), 0);
  EXPECT_GT(field(end, "link_limited_s"), 0);
  const std::vector<obs::Event> begins =
      events_named(observer, "tcp.transfer", obs::EventKind::kSpanBegin);
  ASSERT_EQ(begins.size(), 1u);
  const double streaming =
      end.sim_time - begins.front().sim_time - field(end, "wait_s");
  EXPECT_NEAR(field(end, "sender_limited_s") + field(end, "link_limited_s"),
              streaming, 0.05);
}

TEST(TcpMarkers, HandshakeMarksColdVersusRestart) {
  Harness h(8e6);
  obs::Observer observer;
  TcpConfig config;
  config.idle_restart_after = 0.5;
  TcpConnection conn(config, "c");
  conn.set_observer(&observer);
  h.link.attach(&conn);

  conn.start_transfer(h.sim.now(), 10'000, [] {});
  h.sim.run_until(2);  // finish, then idle past the restart threshold
  conn.start_transfer(h.sim.now(), 10'000, [] {});
  h.sim.run_until(4);

  const std::vector<obs::Event> handshakes =
      events_named(observer, "tcp.handshake", obs::EventKind::kInstant);
  ASSERT_EQ(handshakes.size(), 1u);
  EXPECT_DOUBLE_EQ(field(handshakes.front(), "restart"), 0);

  // The reused-but-idle transfer fires the idle-restart marker instead and
  // flags its end event as a restart.
  const std::vector<obs::Event> restarts =
      events_named(observer, "tcp.idle_restart", obs::EventKind::kInstant);
  ASSERT_EQ(restarts.size(), 1u);
  EXPECT_GT(field(restarts.front(), "idle_s"), 0.5);
  const std::vector<obs::Event> ends =
      events_named(observer, "tcp.transfer", obs::EventKind::kSpanEnd);
  ASSERT_EQ(ends.size(), 2u);
  EXPECT_DOUBLE_EQ(field(ends[0], "restart"), 0);
  EXPECT_DOUBLE_EQ(field(ends[1], "restart"), 1);
}

TEST(TcpMarkers, NonPersistentReconnectIsARestartHandshake) {
  Harness h(8e6);
  obs::Observer observer;
  TcpConfig config;
  config.persistent = false;
  TcpConnection conn(config, "c");
  conn.set_observer(&observer);
  h.link.attach(&conn);

  conn.start_transfer(h.sim.now(), 10'000, [] {});
  h.sim.run_until(1);
  conn.start_transfer(h.sim.now(), 10'000, [] {});
  h.sim.run_until(2);

  const std::vector<obs::Event> handshakes =
      events_named(observer, "tcp.handshake", obs::EventKind::kInstant);
  ASSERT_EQ(handshakes.size(), 2u);
  EXPECT_DOUBLE_EQ(field(handshakes[0], "restart"), 0);
  EXPECT_DOUBLE_EQ(field(handshakes[1], "restart"), 1);
}

}  // namespace
}  // namespace vodx::net
