#include "net/bandwidth_trace.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vodx::net {
namespace {

TEST(BandwidthTrace, ConstantEverywhere) {
  BandwidthTrace t = BandwidthTrace::constant(2e6, 10);
  EXPECT_DOUBLE_EQ(t.at(0), 2e6);
  EXPECT_DOUBLE_EQ(t.at(9.99), 2e6);
  EXPECT_DOUBLE_EQ(t.mean(), 2e6);
  EXPECT_DOUBLE_EQ(t.peak(), 2e6);
}

TEST(BandwidthTrace, StepChangesAtBoundary) {
  BandwidthTrace t = BandwidthTrace::step(4e6, 1e6, 5, 10);
  EXPECT_DOUBLE_EQ(t.at(4.99), 4e6);
  EXPECT_DOUBLE_EQ(t.at(5.0), 1e6);
  EXPECT_DOUBLE_EQ(t.at(9.0), 1e6);
  EXPECT_DOUBLE_EQ(t.mean(), 2.5e6);
}

TEST(BandwidthTrace, WrapsAroundPastEnd) {
  BandwidthTrace t = BandwidthTrace::step(4e6, 1e6, 5, 10);
  EXPECT_DOUBLE_EQ(t.at(10.0), 4e6);  // wraps to t=0
  EXPECT_DOUBLE_EQ(t.at(15.5), 1e6);
  EXPECT_DOUBLE_EQ(t.at(25.0), 1e6);
}

TEST(BandwidthTrace, PerSecondSamples) {
  BandwidthTrace t = BandwidthTrace::per_second({1e6, 2e6, 3e6});
  EXPECT_DOUBLE_EQ(t.duration(), 3.0);
  EXPECT_DOUBLE_EQ(t.at(0.5), 1e6);
  EXPECT_DOUBLE_EQ(t.at(1.0), 2e6);
  EXPECT_DOUBLE_EQ(t.at(2.9), 3e6);
  EXPECT_DOUBLE_EQ(t.mean(), 2e6);
}

TEST(BandwidthTrace, BitsBetweenWithinOneSegment) {
  BandwidthTrace t = BandwidthTrace::constant(8e6, 10);
  EXPECT_DOUBLE_EQ(t.bits_between(1, 3), 16e6);
}

TEST(BandwidthTrace, BitsBetweenAcrossBoundaries) {
  BandwidthTrace t = BandwidthTrace::step(4e6, 1e6, 5, 10);
  EXPECT_DOUBLE_EQ(t.bits_between(4, 6), 4e6 + 1e6);
}

TEST(BandwidthTrace, BitsBetweenAcrossWrap) {
  BandwidthTrace t = BandwidthTrace::step(4e6, 1e6, 5, 10);
  // [9, 11) = 1 s of 1 Mbps + 1 s of 4 Mbps (wrapped).
  EXPECT_DOUBLE_EQ(t.bits_between(9, 11), 1e6 + 4e6);
}

TEST(BandwidthTrace, SlicePreservesValues) {
  BandwidthTrace t = BandwidthTrace::step(4e6, 1e6, 5, 10);
  BandwidthTrace s = t.slice(3, 4);  // covers [3, 7): 2 s high, 2 s low
  EXPECT_DOUBLE_EQ(s.duration(), 4);
  EXPECT_DOUBLE_EQ(s.at(0), 4e6);
  EXPECT_DOUBLE_EQ(s.at(1.99), 4e6);
  EXPECT_DOUBLE_EQ(s.at(2.0), 1e6);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5e6);
}

TEST(BandwidthTrace, SliceAcrossWrap) {
  BandwidthTrace t = BandwidthTrace::step(4e6, 1e6, 5, 10);
  BandwidthTrace s = t.slice(8, 4);  // [8,10) low + [0,2) high
  EXPECT_DOUBLE_EQ(s.at(0), 1e6);
  EXPECT_DOUBLE_EQ(s.at(2.5), 4e6);
}

TEST(BandwidthTrace, SliceOfConstantIsConstant) {
  BandwidthTrace t = BandwidthTrace::constant(3e6, 10);
  BandwidthTrace s = t.slice(7, 6);  // wraps
  EXPECT_DOUBLE_EQ(s.mean(), 3e6);
  EXPECT_EQ(s.samples().size(), 1u);
}

TEST(BandwidthTrace, RejectsBadConfigs) {
  EXPECT_THROW(BandwidthTrace::from_samples({}, 10), ConfigError);
  EXPECT_THROW(BandwidthTrace::from_samples({{0, 1e6}}, 0), ConfigError);
  EXPECT_THROW(BandwidthTrace::from_samples({{1, 1e6}}, 10), ConfigError);
  EXPECT_THROW(BandwidthTrace::from_samples({{0, 1e6}, {0.5, -2}}, 10),
               ConfigError);
  EXPECT_THROW(BandwidthTrace::from_samples({{0, 1e6}, {0.5, 2e6}, {0.5, 3e6}},
                                            10),
               ConfigError);
}

TEST(BandwidthTrace, NamePropagatesThroughSlice) {
  BandwidthTrace t = BandwidthTrace::constant(1e6, 10);
  t.set_name("prof");
  EXPECT_EQ(t.slice(0, 5).name(), "prof");
}

class TraceConservation : public ::testing::TestWithParam<int> {};

// Property: mean * duration == bits_between(0, duration) for any profile.
TEST_P(TraceConservation, MeanMatchesIntegral) {
  BandwidthTrace t = BandwidthTrace::per_second(
      [&] {
        std::vector<Bps> xs;
        for (int i = 0; i < 60; ++i) {
          xs.push_back(1e5 + 1e5 * ((i * GetParam()) % 17));
        }
        return xs;
      }());
  EXPECT_NEAR(t.mean() * t.duration(), t.bits_between(0, t.duration()), 1.0);
  // And wrap-around integration of two full periods doubles it.
  EXPECT_NEAR(t.bits_between(0, 2 * t.duration()),
              2 * t.bits_between(0, t.duration()), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceConservation,
                         ::testing::Values(1, 2, 3, 5, 7, 11));

}  // namespace
}  // namespace vodx::net
