#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/link.h"
#include "net/simulator.h"
#include "net/tcp_connection.h"

namespace vodx::net {
namespace {

struct Harness {
  explicit Harness(Bps bandwidth, Seconds duration = 600, Seconds rtt = 0.07)
      : sim(0.01),
        link(sim, BandwidthTrace::constant(bandwidth, duration), rtt) {}

  Simulator sim;
  Link link;
};

TEST(Tcp, TransferCompletesAndDeliversBytes) {
  Harness h(8e6);
  TcpConnection conn({}, "c");
  h.link.attach(&conn);
  bool done = false;
  conn.start_transfer(h.sim.now(), 1'000'000, [&] { done = true; });
  h.sim.run_until(10);
  EXPECT_TRUE(done);
  EXPECT_EQ(conn.lifetime_delivered(), 1'000'000);
  h.link.detach(&conn);
}

TEST(Tcp, FirstByteWaitsHandshakePlusRequestRtt) {
  Harness h(100e6);  // fast link: duration dominated by latency
  TcpConfig config;
  config.rtt = 0.1;
  TcpConnection conn(config, "c");
  h.link.attach(&conn);
  Seconds completed = -1;
  conn.start_transfer(h.sim.now(), 1000, [&] { completed = h.sim.now(); });
  h.sim.run_until(5);
  // Handshake (1 RTT) + request (1 RTT) + ~instant transfer.
  EXPECT_GE(completed, 0.2);
  EXPECT_LE(completed, 0.3);
}

TEST(Tcp, PersistentReuseSkipsHandshake) {
  Harness h(100e6);
  TcpConfig config;
  config.rtt = 0.1;
  config.idle_slow_start_restart = false;
  TcpConnection conn(config, "c");
  h.link.attach(&conn);

  Seconds first = -1;
  Seconds second = -1;
  conn.start_transfer(h.sim.now(), 1000, [&] { first = h.sim.now(); });
  h.sim.run_until(1);
  conn.start_transfer(h.sim.now(), 1000, [&] { second = h.sim.now(); });
  h.sim.run_until(2);
  // Second request: only the request RTT, no handshake.
  EXPECT_NEAR(second - 1.0, first - 0.1, 0.05);
}

TEST(Tcp, NonPersistentClosesAfterResponse) {
  Harness h(8e6);
  TcpConfig config;
  config.persistent = false;
  TcpConnection conn(config, "c");
  h.link.attach(&conn);
  bool done = false;
  conn.start_transfer(h.sim.now(), 10'000, [&] { done = true; });
  h.sim.run_until(5);
  EXPECT_TRUE(done);
  EXPECT_FALSE(conn.connected());
}

TEST(Tcp, SlowStartRampsThroughput) {
  // On a fat link, early progress is cwnd-limited: the first 100 ms
  // deliver far less than the link could carry.
  Harness h(50e6);
  TcpConnection conn({}, "c");
  h.link.attach(&conn);
  conn.start_transfer(h.sim.now(), 50'000'000, [] {});
  h.sim.run_until(0.3);  // past handshake+request (0.14 s)
  const Bytes early = conn.transfer_delivered();
  EXPECT_GT(early, 0);
  EXPECT_LT(early, bytes_for(50e6, 0.16));  // well under line rate
  h.sim.run_until(3.0);
  // After ramp-up the rate approaches the link rate.
  const Bps late_rate = rate_of(conn.transfer_delivered() - early, 2.7);
  EXPECT_GT(late_rate, 0.85 * 50e6);
}

TEST(Tcp, IdleRestartSlowsFirstSegmentAfterPause) {
  Harness h(20e6);
  TcpConfig config;
  config.idle_slow_start_restart = true;
  config.idle_restart_after = 0.5;
  TcpConnection conn(config, "c");
  h.link.attach(&conn);
  conn.start_transfer(h.sim.now(), 5'000'000, [] {});
  h.sim.run_until(5);
  const Bytes before_pause = conn.cwnd();
  EXPECT_GT(before_pause, config.initial_cwnd);
  // Long idle, then a new transfer: cwnd must be back at initial.
  h.sim.run_until(15);
  conn.start_transfer(h.sim.now(), 1000, [] {});
  EXPECT_EQ(conn.cwnd(), config.initial_cwnd);
}

TEST(Tcp, AbortStopsDeliveryAndClosesConnection) {
  Harness h(1e6);
  TcpConnection conn({}, "c");
  h.link.attach(&conn);
  bool done = false;
  conn.start_transfer(h.sim.now(), 10'000'000, [&] { done = true; });
  h.sim.run_until(2);
  const Bytes partial = conn.lifetime_delivered();
  EXPECT_GT(partial, 0);
  conn.abort_transfer();
  EXPECT_FALSE(conn.connected());
  h.sim.run_until(4);
  EXPECT_FALSE(done);
  EXPECT_EQ(conn.lifetime_delivered(), partial);
}

TEST(Link, FairShareBetweenTwoFlows) {
  Harness h(2e6);
  TcpConnection a({}, "a");
  TcpConnection b({}, "b");
  h.link.attach(&a);
  h.link.attach(&b);
  a.start_transfer(h.sim.now(), 50'000'000, [] {});
  b.start_transfer(h.sim.now(), 50'000'000, [] {});
  h.sim.run_until(30);
  const double ratio = static_cast<double>(a.lifetime_delivered()) /
                       static_cast<double>(b.lifetime_delivered());
  EXPECT_NEAR(ratio, 1.0, 0.05);
  // Together they saturate the link.
  const Bytes total = a.lifetime_delivered() + b.lifetime_delivered();
  EXPECT_GT(total, 0.9 * 2e6 * 30 / 8);
}

TEST(Link, IdleFlowLeavesCapacityToActiveOne) {
  Harness h(2e6);
  TcpConnection active({}, "active");
  TcpConnection idle({}, "idle");
  h.link.attach(&active);
  h.link.attach(&idle);
  active.start_transfer(h.sim.now(), 50'000'000, [] {});
  h.sim.run_until(20);
  // The attached-but-idle connection must not cost the active one anything.
  EXPECT_GT(active.lifetime_delivered(), 0.9 * 2e6 * 20 / 8);
  EXPECT_EQ(idle.lifetime_delivered(), 0);
}

TEST(Link, TotalDeliveredSurvivesDetach) {
  Harness h(8e6);
  auto conn = std::make_unique<TcpConnection>(TcpConfig{}, "c");
  h.link.attach(conn.get());
  conn->start_transfer(h.sim.now(), 100'000, [] {});
  h.sim.run_until(2);
  h.link.detach(conn.get());
  EXPECT_EQ(h.link.total_delivered(), 100'000);
}

// Property: over any trace, total bytes delivered never exceed what the
// link could physically carry.
class Conservation : public ::testing::TestWithParam<int> {};

TEST_P(Conservation, NeverExceedsLinkCapacity) {
  std::vector<Bps> samples;
  for (int i = 0; i < 60; ++i) {
    samples.push_back(2e5 + 1e5 * ((i * GetParam()) % 13));
  }
  Simulator sim(0.01);
  Link link(sim, BandwidthTrace::per_second(samples));
  std::vector<std::unique_ptr<TcpConnection>> conns;
  for (int i = 0; i < 3; ++i) {
    conns.push_back(std::make_unique<TcpConnection>(
        TcpConfig{}, "c" + std::to_string(i)));
    link.attach(conns.back().get());
    conns.back()->start_transfer(0, 1'000'000'000, [] {});
  }
  sim.run_until(60);
  const double capacity_bits =
      link.trace().bits_between(0, 60) * (1 + 1e-6) + 8 * 3 * 14600;
  EXPECT_LE(static_cast<double>(link.total_delivered()) * 8, capacity_bits);
  EXPECT_GT(static_cast<double>(link.total_delivered()) * 8,
            0.8 * capacity_bits);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Conservation,
                         ::testing::Values(1, 3, 5, 7, 9, 11, 13));

}  // namespace
}  // namespace vodx::net
