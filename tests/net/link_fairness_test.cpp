// Max-min fairness properties at N > 2 flows, on raw demand vectors (the
// extracted max_min_shares free function) and on the live Link, plus the
// population-critical regression: a departing flow's share redistributes to
// the survivors on the same tick it detaches.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/link.h"
#include "net/simulator.h"
#include "net/tcp_connection.h"

namespace vodx::net {
namespace {

double sum(const std::vector<Bps>& v) {
  double total = 0;
  for (Bps x : v) total += x;
  return total;
}

// --- max_min_shares on raw demand vectors --------------------------------

TEST(MaxMinShares, EqualDemandsGetEqualGrants) {
  for (int n : {3, 5, 8, 17}) {
    const std::vector<Bps> demands(n, 10e6);
    const std::vector<Bps> grants = max_min_shares(demands, 6e6);
    ASSERT_EQ(grants.size(), demands.size());
    for (Bps g : grants) EXPECT_DOUBLE_EQ(g, grants[0]);
    EXPECT_NEAR(sum(grants), 6e6, 1.0);
  }
}

TEST(MaxMinShares, ZeroDemandGetsZeroAndCostsNothing) {
  const std::vector<Bps> demands = {5e6, 0, 5e6, 0, 5e6};
  const std::vector<Bps> grants = max_min_shares(demands, 3e6);
  EXPECT_DOUBLE_EQ(grants[1], 0);
  EXPECT_DOUBLE_EQ(grants[3], 0);
  EXPECT_DOUBLE_EQ(grants[0], 1e6);
  EXPECT_DOUBLE_EQ(grants[2], 1e6);
  EXPECT_DOUBLE_EQ(grants[4], 1e6);
}

TEST(MaxMinShares, SmallDemandsSatisfiedSurplusGoesToBigOnes) {
  // Water-filling: the two small flows get all they ask; the rest split
  // the remainder evenly.
  const std::vector<Bps> demands = {1e5, 8e6, 2e5, 8e6, 8e6};
  const std::vector<Bps> grants = max_min_shares(demands, 6e6);
  EXPECT_DOUBLE_EQ(grants[0], 1e5);
  EXPECT_DOUBLE_EQ(grants[2], 2e5);
  const Bps rest = (6e6 - 3e5) / 3;
  EXPECT_NEAR(grants[1], rest, 1.0);
  EXPECT_NEAR(grants[3], rest, 1.0);
  EXPECT_NEAR(grants[4], rest, 1.0);
}

TEST(MaxMinShares, ConservationAndDemandBound) {
  // Pseudo-random demand vectors: grants never exceed demand, never exceed
  // capacity in total, and fill the link whenever demand can.
  std::uint64_t state = 42;
  auto next = [&] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 33) / static_cast<double>(1u << 31);
  };
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Bps> demands;
    const int n = 2 + trial % 9;
    for (int i = 0; i < n; ++i) demands.push_back(next() * 12e6);
    const Bps capacity = 1e5 + next() * 10e6;
    const std::vector<Bps> grants = max_min_shares(demands, capacity);
    for (std::size_t i = 0; i < demands.size(); ++i) {
      EXPECT_GE(grants[i], 0);
      EXPECT_LE(grants[i], demands[i] + 1e-6);
    }
    EXPECT_LE(sum(grants), capacity + 1e-6);
    if (sum(demands) >= capacity) {
      EXPECT_NEAR(sum(grants), capacity, capacity * 1e-9);
    } else {
      EXPECT_NEAR(sum(grants), sum(demands), sum(demands) * 1e-9);
    }
  }
}

TEST(MaxMinShares, WaterFillingMonotoneInCapacity) {
  // More capacity never shrinks anyone's grant.
  const std::vector<Bps> demands = {3e5, 9e6, 1e6, 5e6, 2e6, 7e6};
  std::vector<Bps> previous(demands.size(), 0);
  for (Bps capacity = 5e5; capacity <= 2.5e7; capacity += 5e5) {
    const std::vector<Bps> grants = max_min_shares(demands, capacity);
    for (std::size_t i = 0; i < demands.size(); ++i) {
      EXPECT_GE(grants[i], previous[i] - 1e-6)
          << "flow " << i << " at capacity " << capacity;
    }
    previous = grants;
  }
}

// --- the live Link at N > 2 flows ----------------------------------------

TEST(LinkFairness, FourBackloggedFlowsSplitEvenly) {
  Simulator sim(0.01);
  Link link(sim, BandwidthTrace::constant(4e6, 600));
  std::vector<std::unique_ptr<TcpConnection>> conns;
  for (int i = 0; i < 4; ++i) {
    conns.push_back(std::make_unique<TcpConnection>(
        TcpConfig{}, "c" + std::to_string(i)));
    link.attach(conns.back().get());
    conns.back()->start_transfer(0, 500'000'000, [] {});
  }
  sim.run_until(30);
  const Bytes base = conns[0]->lifetime_delivered();
  EXPECT_GT(base, 0);
  for (const auto& conn : conns) {
    const double ratio = static_cast<double>(conn->lifetime_delivered()) /
                         static_cast<double>(base);
    EXPECT_NEAR(ratio, 1.0, 0.05);
  }
  const double total = 8.0 * (4 * static_cast<double>(base));
  EXPECT_GT(total, 0.9 * 4e6 * 30);
}

TEST(LinkFairness, DetachedShareRedistributesSameTick) {
  // Three backlogged flows split a 3 Mbps link ~1 Mbps each. When one
  // departs (population session ending), the survivors' very next tick
  // must already run at the two-way share — no decaying ghost allocation.
  Simulator sim(0.01);
  Link link(sim, BandwidthTrace::constant(3e6, 600));
  auto a = std::make_unique<TcpConnection>(TcpConfig{}, "a");
  auto b = std::make_unique<TcpConnection>(TcpConfig{}, "b");
  auto c = std::make_unique<TcpConnection>(TcpConfig{}, "c");
  for (TcpConnection* conn : {a.get(), b.get(), c.get()}) {
    link.attach(conn);
    conn->start_transfer(0, 500'000'000, [] {});
  }
  sim.run_until(20);  // well past slow start: three-way split regime
  EXPECT_EQ(link.attached(), 3);

  a->abort_transfer();
  link.detach(a.get());
  a.reset();
  EXPECT_EQ(link.attached(), 2);

  // Immediately after the detach (no grace window), the survivors must
  // carry the full link between the two of them.
  const Bytes b_before = b->lifetime_delivered();
  const Bytes c_before = c->lifetime_delivered();
  sim.run_until(22);
  const double b_rate = 8.0 * (b->lifetime_delivered() - b_before) / 2.0;
  const double c_rate = 8.0 * (c->lifetime_delivered() - c_before) / 2.0;
  EXPECT_NEAR(b_rate, 1.5e6, 0.05 * 1.5e6);
  EXPECT_NEAR(c_rate, 1.5e6, 0.05 * 1.5e6);
}

TEST(LinkFairness, DetachIsIdempotent) {
  Simulator sim(0.01);
  Link link(sim, BandwidthTrace::constant(2e6, 600));
  TcpConnection a({}, "a");
  TcpConnection b({}, "b");
  link.attach(&a);
  link.attach(&b);
  b.start_transfer(0, 1'000'000, [] {});
  link.detach(&a);
  link.detach(&a);  // double detach of the same flow: harmless
  EXPECT_EQ(link.attached(), 1);
  sim.run_until(10);
  EXPECT_EQ(b.lifetime_delivered(), 1'000'000);
}

}  // namespace
}  // namespace vodx::net
