#include "net/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace vodx::net {
namespace {

TEST(Simulator, TimeAdvancesInTicks) {
  Simulator sim(0.01);
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  sim.run_until(1.0);
  EXPECT_NEAR(sim.now(), 1.0, 1e-9);
}

TEST(Simulator, EventsFireInTimestampOrder) {
  Simulator sim(0.01);
  std::vector<int> order;
  sim.schedule(0.5, [&] { order.push_back(2); });
  sim.schedule(0.1, [&] { order.push_back(1); });
  sim.schedule(0.9, [&] { order.push_back(3); });
  sim.run_until(1.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, SameTimeEventsAreFifo) {
  Simulator sim(0.01);
  std::vector<int> order;
  sim.schedule(0.5, [&] { order.push_back(1); });
  sim.schedule(0.5, [&] { order.push_back(2); });
  sim.run_until(1.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, CancelPreventsFiring) {
  Simulator sim(0.01);
  bool fired = false;
  auto id = sim.schedule(0.5, [&] { fired = true; });
  sim.cancel(id);
  sim.run_until(1.0);
  EXPECT_FALSE(fired);
}

TEST(Simulator, EventsScheduledFromEventsFire) {
  Simulator sim(0.01);
  int count = 0;
  sim.schedule(0.1, [&] {
    ++count;
    sim.schedule(0.1, [&] { ++count; });
  });
  sim.run_until(1.0);
  EXPECT_EQ(count, 2);
}

TEST(Simulator, TickHandlersSeeTickDuration) {
  Simulator sim(0.02);
  int ticks = 0;
  Seconds total = 0;
  sim.on_tick([&](Seconds dt) {
    ++ticks;
    total += dt;
  });
  sim.run_until(1.0);
  EXPECT_EQ(ticks, 50);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Simulator, RunForIsRelative) {
  Simulator sim(0.01);
  sim.run_for(0.5);
  sim.run_for(0.5);
  EXPECT_NEAR(sim.now(), 1.0, 1e-9);
}

TEST(Simulator, EventAtExactEndFires) {
  Simulator sim(0.01);
  bool fired = false;
  sim.schedule(1.0, [&] { fired = true; });
  sim.run_until(1.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, ZeroDelayFiresOnNextTick) {
  Simulator sim(0.01);
  bool fired = false;
  sim.schedule(0.0, [&] { fired = true; });
  EXPECT_FALSE(fired);
  sim.run_until(0.01);
  EXPECT_TRUE(fired);
}

}  // namespace
}  // namespace vodx::net
