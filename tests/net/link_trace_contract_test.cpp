// Trace-sink contract for the link's capacity timeline.
//
// The link samples its counter tracks on *change*, not per tick — and the
// event-driven core must not lose any of those changes to tick skipping:
// Link::next_wake() asks the bandwidth trace for its next sample boundary
// (BandwidthTrace::next_change_after), so a tick executes at every step of
// the trace even when the link is otherwise idle. This file pins that
// contract: the emitted (time, value) capacity series equals the trace's
// own step sequence and is identical across both simulator cores.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "net/bandwidth_trace.h"
#include "net/link.h"
#include "net/simulator.h"
#include "obs/observer.h"

namespace vodx::net {
namespace {

struct CapacitySample {
  Seconds time = 0;
  double mbps = 0;

  bool operator==(const CapacitySample& other) const {
    return time == other.time && mbps == other.mbps;
  }
};

/// Runs an idle link (no connections, nothing to transfer) over `trace` for
/// `duration` under `core`, with kLink tracing on, and returns the emitted
/// capacity counter series.
std::vector<CapacitySample> run_idle_link(const BandwidthTrace& trace,
                                          Seconds duration, SimCore core,
                                          std::uint64_t* executed = nullptr) {
  Simulator sim(0.01);
  sim.set_core(core);
  obs::Observer obs;
  obs.trace.set_category_mask(obs::bit(obs::Category::kLink));
  sim.set_observer(&obs);
  Link link(sim, trace, 0.07);
  link.set_observer(&obs);
  sim.run_until(duration);
  if (executed != nullptr) *executed = sim.ticks_executed();
  std::vector<CapacitySample> series;
  obs.trace.for_each([&](const obs::Event& event) {
    if (std::string(event.name) != "link.capacity_mbps") return;
    CapacitySample s;
    s.time = event.sim_time;
    if (!event.fields.empty()) s.mbps = event.fields.front().num;
    series.push_back(s);
  });
  return series;
}

TEST(LinkTraceContract, CapacityTimelineIsLosslessUnderTickSkipping) {
  // 1 Hz trace with a change at every boundary. The run ends mid-sample
  // (7.5 s) so the wrap-around boundary is not in play here.
  const BandwidthTrace trace = BandwidthTrace::per_second(
      {4e6, 2e6, 6e6, 1e6, 5e6, 3e6, 7e6, 2.5e6});
  const std::vector<CapacitySample> event_series =
      run_idle_link(trace, 7.5, SimCore::kEvent);
  const std::vector<CapacitySample> fixed_series =
      run_idle_link(trace, 7.5, SimCore::kFixedTickReference);
  // Identical series — same instants, same values, nothing dropped.
  EXPECT_EQ(event_series, fixed_series);
  // Lossless: one emission per distinct step (8 samples, all different).
  EXPECT_EQ(event_series.size(), 8u);
}

TEST(LinkTraceContract, EqualAdjacentSamplesCollapseIdenticallyOnBothCores) {
  // Adjacent equal samples emit no duplicate point (sampled on change); the
  // event core's conservative boundary wake must not add extras either.
  const BandwidthTrace trace =
      BandwidthTrace::per_second({3e6, 3e6, 5e6, 5e6, 1e6});
  const std::vector<CapacitySample> event_series =
      run_idle_link(trace, 4.5, SimCore::kEvent);
  const std::vector<CapacitySample> fixed_series =
      run_idle_link(trace, 4.5, SimCore::kFixedTickReference);
  EXPECT_EQ(event_series, fixed_series);
  EXPECT_EQ(event_series.size(), 3u);  // 3e6, 5e6, 1e6
}

TEST(LinkTraceContract, WrapAroundBoundariesAreStillSampled) {
  // Nearly three laps around a 3 s trace: the step pattern must repeat at
  // every wrap on both cores.
  const BandwidthTrace trace = BandwidthTrace::per_second({2e6, 4e6, 1e6});
  const std::vector<CapacitySample> event_series =
      run_idle_link(trace, 8.5, SimCore::kEvent);
  const std::vector<CapacitySample> fixed_series =
      run_idle_link(trace, 8.5, SimCore::kFixedTickReference);
  EXPECT_EQ(event_series, fixed_series);
  // Boundaries at 1..8 s plus the initial sample: every one changes value.
  EXPECT_EQ(event_series.size(), 9u);
}

TEST(LinkTraceContract, ConstantTraceEmitsOnceAndCoasts) {
  const BandwidthTrace trace = BandwidthTrace::constant(5e6, 60);
  std::uint64_t executed = 0;
  const std::vector<CapacitySample> event_series =
      run_idle_link(trace, 60.0, SimCore::kEvent, &executed);
  const std::vector<CapacitySample> fixed_series =
      run_idle_link(trace, 60.0, SimCore::kFixedTickReference);
  EXPECT_EQ(event_series, fixed_series);
  ASSERT_EQ(event_series.size(), 1u);
  EXPECT_DOUBLE_EQ(event_series[0].mbps, 5.0);
  // The losslessness is not bought by dense ticking: after the initial
  // emission the idle link coasts to the end of the run.
  EXPECT_LT(executed, 5u);
}

TEST(LinkTraceContract, NextChangeAfterNamesTheSampleBoundaries) {
  const BandwidthTrace trace = BandwidthTrace::per_second({2e6, 4e6, 1e6});
  EXPECT_NEAR(trace.next_change_after(0.0), 1.0, 1e-12);
  EXPECT_NEAR(trace.next_change_after(0.99), 1.0, 1e-12);
  EXPECT_NEAR(trace.next_change_after(1.0), 2.0, 1e-12);
  EXPECT_NEAR(trace.next_change_after(2.5), 3.0, 1e-12);  // wrap boundary
  EXPECT_NEAR(trace.next_change_after(3.0), 4.0, 1e-12);  // second lap
  EXPECT_NEAR(trace.next_change_after(7.25), 8.0, 1e-12);
  const BandwidthTrace constant = BandwidthTrace::constant(5e6, 10);
  EXPECT_TRUE(std::isinf(constant.next_change_after(0.0)));
  EXPECT_TRUE(std::isinf(constant.next_change_after(123.0)));
}

}  // namespace
}  // namespace vodx::net
