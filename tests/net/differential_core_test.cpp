// Differential tests: the event-driven core vs the fixed-tick reference.
//
// Every observable output — SessionResult, ground-truth and inferred QoE,
// player events, fault stats, metrics snapshots and the serialized sweep
// documents — must be identical across net::SimCore::kEvent and
// net::SimCore::kFixedTickReference for the same grid. These tests sweep
// deliberately diverse slices of (service × profile × seed × fault
// scenario): different protocols, persistent vs non-persistent connections,
// parallel segment downloads, separate-audio pipelines, and every fault
// scenario in the catalog.
#include <gtest/gtest.h>

#include "testing/differential.h"

namespace vodx {
namespace {

TEST(DifferentialCore, CatalogServicesMatch) {
  testing::DifferentialGrid grid;
  // One service per architecture family: HLS persistent (H1), HLS
  // non-persistent (H2), DASH with parallel downloads (D1), Smooth with
  // separate audio and a tight resume threshold (S2).
  grid.services = {"H1", "H2", "D1", "S2"};
  grid.profiles = {7, 3};
  grid.duration = 60;
  const testing::DifferentialResult result = testing::run_differential(grid);
  EXPECT_TRUE(result.ok()) << result.summary();
  EXPECT_EQ(result.event.cells.size(), 8u);
}

TEST(DifferentialCore, SweepSeedsMatch) {
  testing::DifferentialGrid grid;
  grid.services = {"H3", "D4"};
  grid.profiles = {1, 10};
  grid.seeds = {0, 7, 123};
  grid.duration = 60;
  const testing::DifferentialResult result = testing::run_differential(grid);
  EXPECT_TRUE(result.ok()) << result.summary();
  EXPECT_EQ(result.event.cells.size(), 12u);
}

TEST(DifferentialCore, FaultScenariosMatch) {
  testing::DifferentialGrid grid;
  grid.services = {"H1", "D2"};
  grid.profiles = {7};
  grid.seeds = {0, 1};
  // Every catalog scenario; 150 s so the first blackout window (120 s) is
  // inside the session.
  grid.fault_scenarios.clear();
  for (const faults::Scenario& s : faults::scenario_catalog()) {
    grid.fault_scenarios.push_back(s.name);
  }
  grid.duration = 150;
  const testing::DifferentialResult result = testing::run_differential(grid);
  EXPECT_TRUE(result.ok()) << result.summary();
  EXPECT_EQ(result.event.cells.size(),
            2u * 2u * faults::scenario_catalog().size());
}

}  // namespace
}  // namespace vodx
