// Simulator watchdogs: the per-instant event bound catches zero-delay
// livelocks deterministically, and the wall-clock budget aborts runs that
// burn real time without finishing.
#include <gtest/gtest.h>

#include <chrono>

#include "net/simulator.h"

namespace vodx::net {
namespace {

TEST(Watchdog, ZeroDelayLivelockTripsTheEventBound) {
  Simulator sim(0.01);
  sim.set_max_events_per_instant(10);
  // A self-rescheduling zero-delay event never lets simulated time advance.
  std::function<void()> respawn = [&sim, &respawn] { sim.schedule(0, respawn); };
  sim.schedule(0, respawn);
  try {
    sim.run_until(1);
    FAIL() << "livelock ran to completion";
  } catch (const WatchdogError& e) {
    EXPECT_NE(std::string(e.what()).find("livelock"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("watchdog"), std::string::npos);
  }
}

TEST(Watchdog, EventBoundIsDisabledByDefault) {
  Simulator sim(0.01);
  int fired = 0;
  // 50 same-instant events: far beyond any accidental default bound.
  for (int i = 0; i < 50; ++i) {
    sim.schedule(0, [&fired] { ++fired; });
  }
  sim.run_until(0.05);
  EXPECT_EQ(fired, 50);
}

TEST(Watchdog, EventBoundAllowsBurstsBelowTheLimit) {
  Simulator sim(0.01);
  sim.set_max_events_per_instant(100);
  int fired = 0;
  for (int i = 0; i < 50; ++i) {
    sim.schedule(0.02, [&fired] { ++fired; });
  }
  sim.run_until(1);
  EXPECT_EQ(fired, 50);
}

TEST(Watchdog, WallBudgetAbortsARunThatBurnsRealTime) {
  Simulator sim(0.01);
  sim.set_wall_budget(0.05);
  // Each tick burns ~2 ms of real time; the budget dies long before the
  // simulated hour does.
  sim.on_tick([](Seconds) {
    const auto until =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(2);
    while (std::chrono::steady_clock::now() < until) {
    }
  });
  EXPECT_THROW(sim.run_until(3600), WatchdogError);
  EXPECT_LT(sim.now(), 3600);
}

TEST(Watchdog, WallBudgetNeverFiresOnARunThatFinishes) {
  Simulator sim(0.01);
  sim.set_wall_budget(30);  // generous; the run takes microseconds
  int fired = 0;
  sim.schedule(0.5, [&fired] { ++fired; });
  sim.run_until(1);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 1);
}

TEST(Watchdog, WallBudgetReArmsPerRunCall) {
  Simulator sim(0.01);
  sim.set_wall_budget(10);
  sim.run_until(1);
  sim.run_until(2);  // a second call must start a fresh budget, not throw
  EXPECT_DOUBLE_EQ(sim.now(), 2);
}

}  // namespace
}  // namespace vodx::net
