// Property tests for the arena-backed event queue and the tick-skipping
// run loop: FIFO among same-instant events, cancel semantics across slot
// reuse, scheduling from inside handlers, monotone time, skip accounting,
// and the event-granularity watchdogs.
#include "net/simulator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace vodx::net {
namespace {

TEST(EventQueue, SameInstantEventsFireInScheduleOrder) {
  for (const SimCore core :
       {SimCore::kEvent, SimCore::kFixedTickReference}) {
    Simulator sim(0.01);
    sim.set_core(core);
    std::vector<int> order;
    for (int i = 0; i < 64; ++i) {
      sim.schedule(0.5, [&order, i] { order.push_back(i); });
    }
    sim.run_until(1.0);
    ASSERT_EQ(order.size(), 64u);
    for (int i = 0; i < 64; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueue, InterleavedDueTimesStillFifoWithinAnInstant) {
  Simulator sim(0.01);
  std::vector<std::string> order;
  // Schedule out of order across two instants; each instant must preserve
  // its own schedule order.
  sim.schedule(0.5, [&] { order.push_back("a0"); });
  sim.schedule(0.2, [&] { order.push_back("b0"); });
  sim.schedule(0.5, [&] { order.push_back("a1"); });
  sim.schedule(0.2, [&] { order.push_back("b1"); });
  sim.schedule(0.5, [&] { order.push_back("a2"); });
  sim.run_until(1.0);
  EXPECT_EQ(order, (std::vector<std::string>{"b0", "b1", "a0", "a1", "a2"}));
}

TEST(EventQueue, CancelBeforeFirePreventsFiring) {
  Simulator sim(0.01);
  bool fired = false;
  const std::uint64_t id = sim.schedule(0.5, [&] { fired = true; });
  sim.cancel(id);
  sim.run_until(1.0);
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelAfterFireIsANoOp) {
  Simulator sim(0.01);
  int fired = 0;
  const std::uint64_t id = sim.schedule(0.1, [&] { ++fired; });
  sim.run_until(0.5);
  EXPECT_EQ(fired, 1);
  sim.cancel(id);  // must not throw or disturb anything
  bool later = false;
  sim.schedule(0.1, [&] { later = true; });
  sim.run_until(1.0);
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(later);
}

TEST(EventQueue, StaleCancelDoesNotHitAReusedSlot) {
  Simulator sim(0.01);
  bool a = false;
  bool b = false;
  const std::uint64_t id_a = sim.schedule(0.3, [&] { a = true; });
  sim.cancel(id_a);  // frees the arena slot before anything fires
  // The next schedule reuses the freed slot but gets a fresh id.
  const std::uint64_t id_b = sim.schedule(0.3, [&] { b = true; });
  EXPECT_NE(id_a, id_b);
  sim.cancel(id_a);  // stale id: must not cancel b
  sim.run_until(1.0);
  EXPECT_FALSE(a);
  EXPECT_TRUE(b);
}

TEST(EventQueue, CancelFromWithinASameInstantHandler) {
  Simulator sim(0.01);
  bool second = false;
  std::uint64_t second_id = 0;
  sim.schedule(0.5, [&] { sim.cancel(second_id); });
  second_id = sim.schedule(0.5, [&] { second = true; });
  sim.run_until(1.0);
  EXPECT_FALSE(second);
}

TEST(EventQueue, ScheduleFromWithinAHandlerZeroDelayFiresSameInstant) {
  Simulator sim(0.01);
  std::vector<Seconds> at;
  sim.schedule(0.5, [&] {
    at.push_back(sim.now());
    sim.schedule(0, [&] { at.push_back(sim.now()); });
  });
  sim.run_until(1.0);
  ASSERT_EQ(at.size(), 2u);
  EXPECT_DOUBLE_EQ(at[0], at[1]);
}

TEST(EventQueue, ScheduleFromWithinAHandlerFutureDelayFiresLater) {
  Simulator sim(0.01);
  std::vector<Seconds> at;
  sim.schedule(0.5, [&] {
    sim.schedule(0.25, [&] { at.push_back(sim.now()); });
  });
  sim.run_until(1.0);
  ASSERT_EQ(at.size(), 1u);
  EXPECT_NEAR(at[0], 0.75, 1e-9);
}

TEST(EventQueue, NowIsMonotoneAcrossAScatterOfEvents) {
  Simulator sim(0.01);
  std::vector<Seconds> stamps;
  // Deterministic pseudo-random scatter of due times, scheduled out of
  // order (linear congruential mix — no global RNG in tests).
  std::uint64_t x = 0x9E3779B97F4A7C15ull;
  for (int i = 0; i < 200; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const Seconds due = static_cast<double>(x % 1000) / 100.0;  // [0, 10)
    sim.schedule(due, [&] { stamps.push_back(sim.now()); });
  }
  sim.run_until(10.0);
  ASSERT_EQ(stamps.size(), 200u);
  for (std::size_t i = 1; i < stamps.size(); ++i) {
    EXPECT_LE(stamps[i - 1], stamps[i]);
  }
  // Every firing instant is a grid point: the first tick at or after the
  // due time.
  for (const Seconds t : stamps) {
    const double ticks = t / 0.01;
    EXPECT_NEAR(ticks, std::round(ticks), 1e-6);
  }
}

TEST(EventQueue, EventCoreSkipsInertTicksTheReferenceExecutes) {
  Simulator event_sim(0.01);
  event_sim.set_core(SimCore::kEvent);
  Simulator fixed_sim(0.01);
  fixed_sim.set_core(SimCore::kFixedTickReference);
  int event_fired = 0;
  int fixed_fired = 0;
  event_sim.schedule(5.0, [&] { ++event_fired; });
  fixed_sim.schedule(5.0, [&] { ++fixed_fired; });
  event_sim.run_until(10.0);
  fixed_sim.run_until(10.0);
  EXPECT_EQ(event_fired, 1);
  EXPECT_EQ(fixed_fired, 1);
  // Same span covered, same clock — but the event core only executed the
  // one tick the event made non-inert.
  EXPECT_EQ(event_sim.ticks_covered(), fixed_sim.ticks_covered());
  EXPECT_DOUBLE_EQ(event_sim.now(), fixed_sim.now());
  EXPECT_EQ(fixed_sim.ticks_executed(), fixed_sim.ticks_covered());
  EXPECT_EQ(event_sim.ticks_executed(), 1u);
}

TEST(EventQueue, LegacyOnTickHandlersPinTheRunDense) {
  Simulator sim(0.01);
  sim.set_core(SimCore::kEvent);
  int ticks = 0;
  sim.on_tick([&](Seconds) { ++ticks; });
  sim.run_until(1.0);
  EXPECT_EQ(ticks, 100);
  EXPECT_EQ(sim.ticks_executed(), sim.ticks_covered());
}

// A TickClient whose wake is always "far in the future": the run loop may
// skip every tick, but fast_forward must still account the skipped span.
class DormantClient : public TickClient {
 public:
  explicit DormantClient(Simulator& sim) { sim.add_tick_client(this); }
  void tick(Seconds, Seconds) override { ++ticks; }
  Seconds next_wake(Seconds) override { return kNeverWakes; }
  void fast_forward(Seconds, Seconds dt, std::uint64_t n) override {
    skipped += n;
    coasted += static_cast<double>(n) * dt;
  }
  int ticks = 0;
  std::uint64_t skipped = 0;
  Seconds coasted = 0;
};

TEST(EventQueue, DormantClientsAreFastForwardedOverTheWholeSpan) {
  Simulator sim(0.01);
  DormantClient client(sim);
  sim.run_until(2.0);
  EXPECT_EQ(client.ticks, 0);
  EXPECT_EQ(client.skipped, 200u);
  EXPECT_NEAR(client.coasted, 2.0, 1e-9);
  EXPECT_EQ(sim.ticks_covered(), 200u);
  EXPECT_EQ(sim.ticks_executed(), 0u);
}

TEST(EventQueue, ClientWakeBoundsTheSkipNeverLater) {
  // A client asking to wake at 1.0 s must execute a tick at (not after)
  // 1.0 s even though everything before is skipped.
  class WakeOnce : public TickClient {
   public:
    explicit WakeOnce(Simulator& sim) { sim.add_tick_client(this); }
    void tick(Seconds now, Seconds) override {
      if (first_tick < 0) first_tick = now;
    }
    Seconds next_wake(Seconds) override {
      return first_tick < 0 ? 1.0 : kNeverWakes;
    }
    Seconds first_tick = -1;
  };
  Simulator sim(0.01);
  WakeOnce client(sim);
  sim.run_until(2.0);
  EXPECT_NEAR(client.first_tick, 1.0, 1e-9);
  EXPECT_GE(sim.ticks_covered(), sim.ticks_executed());
}

TEST(EventQueue, ZeroDelayLivelockTripsOnTheEventCore) {
  Simulator sim(0.01);
  sim.set_core(SimCore::kEvent);
  sim.set_max_events_per_instant(100);
  std::function<void()> rearm = [&] { sim.schedule(0, rearm); };
  sim.schedule(0.1, rearm);
  try {
    sim.run_until(1.0);
    FAIL() << "expected WatchdogError";
  } catch (const WatchdogError& e) {
    EXPECT_NE(std::string(e.what()).find("zero-delay event livelock"),
              std::string::npos);
  }
}

TEST(EventQueue, EventBurstsBelowTheInstantLimitPass) {
  Simulator sim(0.01);
  sim.set_max_events_per_instant(100);
  int fired = 0;
  for (int i = 0; i < 99; ++i) sim.schedule(0.5, [&] { ++fired; });
  sim.run_until(1.0);
  EXPECT_EQ(fired, 99);
}

TEST(EventQueue, ArenaReusesSlotsAcrossManyScheduleCancelCycles) {
  Simulator sim(0.01);
  int fired = 0;
  // Thousands of churn cycles: every cancelled event frees its slot for
  // the next schedule; the survivors must all fire exactly once.
  for (int round = 0; round < 1000; ++round) {
    const std::uint64_t doomed =
        sim.schedule(0.9, [&] { fired += 1000000; });
    sim.cancel(doomed);
    sim.schedule(0.5, [&] { ++fired; });
  }
  sim.run_until(1.0);
  EXPECT_EQ(fired, 1000);
}

}  // namespace
}  // namespace vodx::net
