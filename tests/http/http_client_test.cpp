#include "http/http_client.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace vodx::http {
namespace {

using vodx::testing::small_asset;

struct ClientHarness {
  explicit ClientHarness(int max_connections = 2, bool persistent = true,
                         Bps bandwidth = 8e6)
      : sim(0.01),
        link(sim, net::BandwidthTrace::constant(bandwidth, 600), 0.05),
        origin(small_asset(), {manifest::Protocol::kHls}),
        proxy(origin),
        client(sim, link, proxy, make_options(max_connections, persistent)) {}

  static HttpClient::Options make_options(int max_connections,
                                          bool persistent) {
    HttpClient::Options options;
    options.max_connections = max_connections;
    options.tcp.rtt = 0.05;
    options.tcp.persistent = persistent;
    return options;
  }

  net::Simulator sim;
  net::Link link;
  OriginServer origin;
  Proxy proxy;
  HttpClient client;
};

TEST(HttpClient, FetchDeliversResponse) {
  ClientHarness h;
  std::string body;
  h.client.fetch({Method::kGet, "/master.m3u8", {}},
                 [&](const Response& r) { body = r.body; });
  h.sim.run_until(2);
  EXPECT_NE(body.find("#EXTM3U"), std::string::npos);
}

TEST(HttpClient, SlotsAreLimited) {
  ClientHarness h(2);
  EXPECT_EQ(h.client.free_slots(), 2);
  h.client.fetch({Method::kGet, "/video/0/seg0.ts", {}}, {});
  h.client.fetch({Method::kGet, "/video/0/seg1.ts", {}}, {});
  EXPECT_EQ(h.client.free_slots(), 0);
  EXPECT_EQ(h.client.fetch({Method::kGet, "/video/0/seg2.ts", {}}, {}), -1);
  h.sim.run_until(5);
  EXPECT_EQ(h.client.free_slots(), 2);
}

TEST(HttpClient, TransferIdMatchesLogRecord) {
  ClientHarness h;
  int id = h.client.fetch({Method::kGet, "/video/1/seg0.ts", {}}, {});
  ASSERT_GE(id, 0);
  h.sim.run_until(5);
  const TransferRecord& record = h.proxy.log().record(id);
  EXPECT_EQ(record.url, "/video/1/seg0.ts");
  EXPECT_TRUE(record.finished());
  EXPECT_GT(record.bytes_received, 0);
}

TEST(HttpClient, PersistentConnectionIsReused) {
  ClientHarness h(1, /*persistent=*/true);
  h.client.fetch({Method::kGet, "/video/0/seg0.ts", {}},
                 [&](const Response&) {
                   h.client.fetch({Method::kGet, "/video/0/seg1.ts", {}}, {});
                 });
  h.sim.run_until(10);
  const auto& records = h.proxy.log().records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].connection, records[1].connection);
  EXPECT_EQ(records[0].connection_use, 0);
  EXPECT_EQ(records[1].connection_use, 1);
}

TEST(HttpClient, NonPersistentStartsFreshConnections) {
  ClientHarness h(1, /*persistent=*/false);
  h.client.fetch({Method::kGet, "/video/0/seg0.ts", {}},
                 [&](const Response&) {
                   h.client.fetch({Method::kGet, "/video/0/seg1.ts", {}}, {});
                 });
  h.sim.run_until(10);
  const auto& records = h.proxy.log().records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_NE(records[0].connection, records[1].connection);
  EXPECT_EQ(records[1].connection_use, 0);
}

TEST(HttpClient, AbortLogsPartialBytes) {
  ClientHarness h(1, true, 200e3);  // slow link so we can abort mid-flight
  int id = h.client.fetch({Method::kGet, "/video/2/seg0.ts", {}},
                          [](const Response&) { FAIL() << "must not finish"; });
  h.sim.run_until(2);
  EXPECT_GT(h.client.bytes_in_flight(id), 0);
  h.client.abort(id);
  h.sim.run_until(5);
  const TransferRecord& record = h.proxy.log().record(id);
  EXPECT_TRUE(record.aborted);
  EXPECT_LT(record.bytes_received, record.payload_size);
}

TEST(HttpClient, ErrorResponsesStillDeliver) {
  ClientHarness h;
  int status = 0;
  h.client.fetch({Method::kGet, "/missing", {}},
                 [&](const Response& r) { status = r.status; });
  h.sim.run_until(2);
  EXPECT_EQ(status, 404);
}

TEST(HttpClient, HeadIsFastAndCarriesLength) {
  ClientHarness h(1, true, 500e3);
  Bytes length = 0;
  Seconds done_at = 0;
  h.client.fetch({Method::kHead, "/video/2/seg0.ts", {}},
                 [&](const Response& r) {
                   length = r.head_content_length;
                   done_at = h.sim.now();
                 });
  h.sim.run_until(5);
  EXPECT_GT(length, 100000);  // a real segment size
  EXPECT_LT(done_at, 0.5);    // but only headers crossed the wire
}

}  // namespace
}  // namespace vodx::http
