#include "http/proxy.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace vodx::http {
namespace {

using vodx::testing::small_asset;

TEST(Proxy, PassesThroughByDefault) {
  OriginServer origin(small_asset(), {manifest::Protocol::kHls});
  Proxy proxy(origin);
  Response r = proxy.resolve({Method::kGet, "/master.m3u8", {}}, 0);
  EXPECT_TRUE(r.ok());
  EXPECT_NE(r.body.find("#EXTM3U"), std::string::npos);
}

TEST(Proxy, ManifestTransformRewritesBodyAndSize) {
  OriginServer origin(small_asset(), {manifest::Protocol::kHls});
  Proxy proxy(origin);
  proxy.use(transform_manifest(
      [](const std::string&, std::string) { return std::string("#X"); }));
  Response r = proxy.resolve({Method::kGet, "/master.m3u8", {}}, 0);
  EXPECT_EQ(r.body, "#X");
  EXPECT_EQ(r.payload_size, 2);
}

TEST(Proxy, TransformDoesNotTouchMedia) {
  OriginServer origin(small_asset(), {manifest::Protocol::kHls});
  Proxy proxy(origin);
  proxy.use(transform_manifest(
      [](const std::string&, std::string) { return std::string(); }));
  Response r = proxy.resolve({Method::kGet, "/video/0/seg0.ts", {}}, 0);
  EXPECT_TRUE(r.ok());
  EXPECT_GT(r.payload_size, 0);
}

TEST(Proxy, RejectInterceptorAnswers403) {
  OriginServer origin(small_asset(), {manifest::Protocol::kHls});
  Proxy proxy(origin);
  proxy.use(reject_if([](const Request& request) {
    return request.url.find("seg") != std::string::npos;
  }));
  EXPECT_EQ(proxy.resolve({Method::kGet, "/video/0/seg0.ts", {}}, 0).status,
            403);
  EXPECT_TRUE(proxy.resolve({Method::kGet, "/master.m3u8", {}}, 0).ok());
}

TEST(TrafficLogTest, RecordsLifecycle) {
  TrafficLog log;
  Response response = make_ok("text/plain", "hello");
  int id = log.open(Method::kGet, "/x", {}, 1.5, response, "conn0.1", 0);
  EXPECT_FALSE(log.record(id).finished());
  log.complete(id, 2.5, 5);
  const TransferRecord& r = log.record(id);
  EXPECT_TRUE(r.finished());
  EXPECT_EQ(r.bytes_received, 5);
  EXPECT_EQ(r.body_copy, "hello");
  EXPECT_EQ(r.connection, "conn0.1");
  EXPECT_DOUBLE_EQ(r.requested_at, 1.5);
  EXPECT_DOUBLE_EQ(r.completed_at, 2.5);
}

TEST(TrafficLogTest, AbortKeepsPartialBytes) {
  TrafficLog log;
  int id = log.open(Method::kGet, "/x", {}, 0, make_media("video/mp4", 1000),
                    "c", 0);
  log.abort(id, 400);
  EXPECT_TRUE(log.record(id).aborted);
  EXPECT_EQ(log.record(id).bytes_received, 400);
  EXPECT_EQ(log.total_bytes(), 400);
}

TEST(TrafficLogTest, TotalBytesSums) {
  TrafficLog log;
  int a = log.open(Method::kGet, "/a", {}, 0, make_media("v", 100), "c", 0);
  int b = log.open(Method::kGet, "/b", {}, 0, make_media("v", 200), "c", 1);
  log.complete(a, 1, 100);
  log.complete(b, 1, 200);
  EXPECT_EQ(log.total_bytes(), 300);
}

TEST(TrafficLogDeathTest, DoubleCloseAborts) {
  TrafficLog log;
  int id = log.open(Method::kGet, "/a", {}, 0, make_media("v", 10), "c", 0);
  log.complete(id, 1, 10);
  EXPECT_DEATH(log.complete(id, 2, 10), "closed");
}

}  // namespace
}  // namespace vodx::http
