#include "http/interceptor.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "http/proxy.h"
#include "testing/fixtures.h"

namespace vodx::http {
namespace {

using vodx::testing::small_asset;

// Records which stage hooks ran, in order, into a shared journal.
class Recorder : public Interceptor {
 public:
  Recorder(std::string name, std::vector<std::string>& journal)
      : name_(std::move(name)), journal_(journal) {}

  void attach(Proxy& proxy) override {
    (void)proxy;
    journal_.push_back(name_ + ".attach");
  }
  std::optional<Response> on_request(const Request&, Seconds) override {
    journal_.push_back(name_ + ".request");
    return std::nullopt;
  }
  std::string on_manifest(const std::string&, std::string body) override {
    journal_.push_back(name_ + ".manifest");
    return body + "#" + name_;
  }
  void on_response(const Request&, Response&, Seconds) override {
    journal_.push_back(name_ + ".response");
  }

 private:
  std::string name_;
  std::vector<std::string>& journal_;
};

TEST(Interceptor, AttachFiresOnceAtUse) {
  OriginServer origin(small_asset(), {manifest::Protocol::kHls});
  Proxy proxy(origin);
  std::vector<std::string> journal;
  proxy.use(std::make_shared<Recorder>("a", journal));
  EXPECT_EQ(journal, std::vector<std::string>{"a.attach"});
}

TEST(Interceptor, RequestOrderedManifestOrderedResponseReversed) {
  OriginServer origin(small_asset(), {manifest::Protocol::kHls});
  Proxy proxy(origin);
  std::vector<std::string> journal;
  proxy.use(std::make_shared<Recorder>("a", journal));
  proxy.use(std::make_shared<Recorder>("b", journal));
  journal.clear();

  Response r = proxy.resolve({Method::kGet, "/master.m3u8", {}}, 0);
  EXPECT_TRUE(r.ok());
  const std::vector<std::string> want = {"a.request", "b.request",
                                         "a.manifest", "b.manifest",
                                         "b.response", "a.response"};
  EXPECT_EQ(journal, want);
  // Both manifest rewrites applied, in registration order.
  EXPECT_NE(r.body.find("#a#b"), std::string::npos);
  EXPECT_EQ(r.payload_size, static_cast<Bytes>(r.body.size()));
}

TEST(Interceptor, FirstInjectedResponseShortCircuits) {
  OriginServer origin(small_asset(), {manifest::Protocol::kHls});
  Proxy proxy(origin);
  std::vector<std::string> journal;
  proxy.use(std::make_shared<Recorder>("a", journal));
  proxy.use(reject_if([](const Request&) { return true; }));
  proxy.use(std::make_shared<Recorder>("c", journal));
  journal.clear();

  Response r = proxy.resolve({Method::kGet, "/master.m3u8", {}}, 0);
  EXPECT_EQ(r.status, 403);
  // a ran, the rejection short-circuited c's request stage — but every
  // interceptor's response stage still sees the injected response.
  const std::vector<std::string> want = {"a.request", "c.response",
                                         "a.response"};
  EXPECT_EQ(journal, want);
}

TEST(Interceptor, ManifestStageSkipsMediaAndErrors) {
  OriginServer origin(small_asset(), {manifest::Protocol::kHls});
  Proxy proxy(origin);
  std::vector<std::string> journal;
  proxy.use(std::make_shared<Recorder>("a", journal));

  journal.clear();
  proxy.resolve({Method::kGet, "/video/0/seg0.ts", {}}, 0);
  EXPECT_EQ(journal, (std::vector<std::string>{"a.request", "a.response"}));

  journal.clear();
  proxy.resolve({Method::kGet, "/no/such/url", {}}, 0);
  EXPECT_EQ(journal, (std::vector<std::string>{"a.request", "a.response"}));
}

TEST(Interceptor, RespondWithInjectsArbitraryResponses) {
  OriginServer origin(small_asset(), {manifest::Protocol::kHls});
  Proxy proxy(origin);
  proxy.use(respond_with(
      [](const Request& request, Seconds) -> std::optional<Response> {
        if (request.url.find("seg1") == std::string::npos) return std::nullopt;
        return make_error(503, "injected");
      }));
  EXPECT_EQ(proxy.resolve({Method::kGet, "/video/0/seg1.ts", {}}, 0).status,
            503);
  EXPECT_TRUE(proxy.resolve({Method::kGet, "/video/0/seg0.ts", {}}, 0).ok());
}

TEST(Interceptor, TapResponseMutatesWireFaultFields) {
  OriginServer origin(small_asset(), {manifest::Protocol::kHls});
  Proxy proxy(origin);
  proxy.use(tap_response([](const Request&, Response& response, Seconds) {
    response.added_latency = 0.25;
    response.reset_after = 100;
  }));
  Response r = proxy.resolve({Method::kGet, "/video/0/seg0.ts", {}}, 0);
  EXPECT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.added_latency, 0.25);
  EXPECT_EQ(r.reset_after, 100);
  // Wire fault fields never change the nominal wire size.
  EXPECT_EQ(r.wire_size(), kHttpHeaderOverhead + r.payload_size);
}

TEST(Interceptor, IsManifestContentMatchesTheThreeManifestTypes) {
  EXPECT_TRUE(Proxy::is_manifest_content("application/vnd.apple.mpegurl"));
  EXPECT_TRUE(Proxy::is_manifest_content("application/dash+xml"));
  EXPECT_TRUE(Proxy::is_manifest_content("text/xml"));
  EXPECT_FALSE(Proxy::is_manifest_content("video/mp4"));
  EXPECT_FALSE(Proxy::is_manifest_content("video/mp2t"));
}

}  // namespace
}  // namespace vodx::http
