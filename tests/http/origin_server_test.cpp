#include "http/origin_server.h"

#include <gtest/gtest.h>

#include "common/error.h"

#include "manifest/dash_mpd.h"
#include "manifest/hls.h"
#include "manifest/smooth.h"
#include "media/sidx.h"
#include "testing/fixtures.h"

namespace vodx::http {
namespace {

using vodx::testing::small_asset;

TEST(OriginHls, ServesMasterAndMediaPlaylists) {
  OriginServer origin(small_asset(), {manifest::Protocol::kHls});
  Response master = origin.handle({Method::kGet, "/master.m3u8", {}});
  ASSERT_TRUE(master.ok());
  manifest::HlsMasterPlaylist parsed =
      manifest::HlsMasterPlaylist::parse(master.body);
  ASSERT_EQ(parsed.variants.size(), 3u);

  Response playlist =
      origin.handle({Method::kGet, "/video/0/playlist.m3u8", {}});
  ASSERT_TRUE(playlist.ok());
  manifest::HlsMediaPlaylist media =
      manifest::HlsMediaPlaylist::parse(playlist.body);
  EXPECT_EQ(media.segments.size(), 15u);  // 60 s / 4 s
}

TEST(OriginHls, SegmentSizesMatchAsset) {
  media::VideoAsset asset = small_asset();
  const Bytes expected = asset.video_track(1).segment(3).size;
  OriginServer origin(std::move(asset), {manifest::Protocol::kHls});
  Response seg = origin.handle({Method::kGet, "/video/1/seg3.ts", {}});
  ASSERT_TRUE(seg.ok());
  EXPECT_EQ(seg.payload_size, expected);
  EXPECT_TRUE(seg.body.empty());  // media bytes are size-only
}

TEST(OriginHls, HeadRevealsSizeWithoutPayload) {
  media::VideoAsset asset = small_asset();
  const Bytes expected = asset.video_track(0).segment(0).size;
  OriginServer origin(std::move(asset), {manifest::Protocol::kHls});
  Response head = origin.handle({Method::kHead, "/video/0/seg0.ts", {}});
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(head.head_content_length, expected);
  EXPECT_EQ(head.payload_size, 0);
}

TEST(OriginHls, UnknownUrlIs404) {
  OriginServer origin(small_asset(), {manifest::Protocol::kHls});
  EXPECT_EQ(origin.handle({Method::kGet, "/nope", {}}).status, 404);
}

TEST(OriginDashSidx, MpdPointsAtIndexRange) {
  OriginConfig config;
  config.protocol = manifest::Protocol::kDash;
  config.dash_index = manifest::DashIndexMode::kSidx;
  OriginServer origin(small_asset(60, true), config);

  Response mpd_response = origin.handle({Method::kGet, "/manifest.mpd", {}});
  ASSERT_TRUE(mpd_response.ok());
  manifest::DashMpd mpd = manifest::DashMpd::parse(mpd_response.body);
  ASSERT_EQ(mpd.adaptation_sets.size(), 2u);  // video + audio
  const auto& rep = mpd.adaptation_sets[0].representations[0];
  ASSERT_TRUE(rep.index_range.has_value());

  // Fetch and parse the sidx through a range request.
  Response sidx_response = origin.handle(
      {Method::kGet, "/video/0/media.mp4", rep.index_range});
  ASSERT_EQ(sidx_response.status, 206);
  media::SidxBox box = media::parse_sidx(sidx_response.body);
  EXPECT_EQ(box.references.size(), 15u);
}

TEST(OriginDashSidx, MediaRangeHasSizeButNoBody) {
  OriginConfig config;
  config.protocol = manifest::Protocol::kDash;
  OriginServer origin(small_asset(), config);
  Response r = origin.handle(
      {Method::kGet, "/video/0/media.mp4", manifest::ByteRange{5000, 9999}});
  ASSERT_EQ(r.status, 206);
  EXPECT_EQ(r.payload_size, 5000);
}

TEST(OriginDashSidx, OutOfRangeIs416) {
  OriginConfig config;
  config.protocol = manifest::Protocol::kDash;
  OriginServer origin(small_asset(), config);
  Response r = origin.handle({Method::kGet, "/video/0/media.mp4",
                              manifest::ByteRange{0, 1'000'000'000}});
  EXPECT_EQ(r.status, 416);
}

TEST(OriginDashList, RangesInMpdMatchSegments) {
  media::VideoAsset asset = small_asset();
  const media::Segment seg = asset.video_track(2).segment(5);
  OriginConfig config;
  config.protocol = manifest::Protocol::kDash;
  config.dash_index = manifest::DashIndexMode::kSegmentList;
  OriginServer origin(std::move(asset), config);

  manifest::DashMpd mpd = manifest::DashMpd::parse(
      origin.handle({Method::kGet, "/manifest.mpd", {}}).body);
  const auto& rep = mpd.adaptation_sets[0].representations[2];
  ASSERT_FALSE(rep.index_range.has_value());
  ASSERT_EQ(rep.segments.size(), 15u);
  EXPECT_EQ(rep.segments[5].media_range.first, seg.offset);
  EXPECT_EQ(rep.segments[5].media_range.length(), seg.size);
}

TEST(OriginSmooth, FragmentsResolvable) {
  media::VideoAsset asset = small_asset(60, true, 3);
  const Bps bitrate = asset.video_track(1).declared_bitrate();
  const Bytes expected = asset.video_track(1).segment(2).size;
  OriginServer origin(std::move(asset), {manifest::Protocol::kSmooth});

  manifest::SmoothManifest manifest = manifest::SmoothManifest::parse(
      origin.handle({Method::kGet, "/manifest.ism", {}}).body);
  const auto& video = manifest.stream_indexes[0];
  const std::string url =
      "/" + video.fragment_url(bitrate, video.chunk_start_ticks(2));
  Response r = origin.handle({Method::kGet, url, {}});
  ASSERT_TRUE(r.ok()) << url;
  EXPECT_EQ(r.payload_size, expected);
}

TEST(OriginEncrypted, ManifestIsOpaqueButSidxStaysReadable) {
  OriginConfig config;
  config.protocol = manifest::Protocol::kDash;
  config.encrypt_manifest = true;
  OriginServer origin(small_asset(), config);

  Response mpd = origin.handle({Method::kGet, "/manifest.mpd", {}});
  ASSERT_TRUE(mpd.ok());
  EXPECT_TRUE(is_scrambled(mpd.body));
  EXPECT_THROW(manifest::DashMpd::parse(mpd.body), ParseError);
  // With the app key it decodes.
  manifest::DashMpd parsed =
      manifest::DashMpd::parse(unscramble_manifest(mpd.body));
  EXPECT_EQ(parsed.adaptation_sets.size(), 1u);
}

TEST(Scramble, RoundTrips) {
  const std::string plain = "<MPD>secret</MPD>";
  const std::string blob = scramble_manifest(plain);
  EXPECT_NE(blob.find("VODXENC1"), std::string::npos);
  EXPECT_EQ(blob.find("secret"), std::string::npos);
  EXPECT_EQ(unscramble_manifest(blob), plain);
  EXPECT_THROW(unscramble_manifest("not scrambled"), ParseError);
}

TEST(OriginHlsDeathTest, RefusesSeparateAudio) {
  EXPECT_DEATH(OriginServer(small_asset(60, true), {manifest::Protocol::kHls}),
               "mux");
}

}  // namespace
}  // namespace vodx::http
