#include "media/track.h"

#include <gtest/gtest.h>

#include "media/video_asset.h"

namespace vodx::media {
namespace {

std::vector<Segment> three_segments() {
  Segment a;
  a.duration = 2;
  a.size = 1000;
  Segment b;
  b.duration = 2;
  b.size = 3000;
  Segment c;
  c.duration = 1;
  c.size = 500;
  return {a, b, c};
}

TEST(Track, AssignsIndexesAndOffsets) {
  Track t("video/0", ContentType::kVideo, 1e6, k360p, three_segments());
  EXPECT_EQ(t.segment_count(), 3);
  EXPECT_EQ(t.segment(0).index, 0);
  EXPECT_EQ(t.segment(0).offset, 0);
  EXPECT_EQ(t.segment(1).offset, 1000);
  EXPECT_EQ(t.segment(2).offset, 4000);
  EXPECT_EQ(t.total_size(), 4500);
  EXPECT_DOUBLE_EQ(t.duration(), 5.0);
}

TEST(Track, BitrateAggregates) {
  Track t("video/0", ContentType::kVideo, 1e6, k360p, three_segments());
  EXPECT_DOUBLE_EQ(t.average_actual_bitrate(), 4500 * 8.0 / 5.0);
  EXPECT_DOUBLE_EQ(t.peak_actual_bitrate(), 3000 * 8.0 / 2.0);
  EXPECT_DOUBLE_EQ(t.segment(0).actual_bitrate(), 4000);
}

TEST(Track, SegmentIndexAtTime) {
  Track t("video/0", ContentType::kVideo, 1e6, k360p, three_segments());
  EXPECT_EQ(t.segment_index_at(0), 0);
  EXPECT_EQ(t.segment_index_at(1.99), 0);
  EXPECT_EQ(t.segment_index_at(2.0), 1);
  EXPECT_EQ(t.segment_index_at(4.5), 2);
  EXPECT_EQ(t.segment_index_at(99), 2);  // clamped
}

TEST(Track, SegmentStart) {
  Track t("video/0", ContentType::kVideo, 1e6, k360p, three_segments());
  EXPECT_DOUBLE_EQ(t.segment_start(0), 0);
  EXPECT_DOUBLE_EQ(t.segment_start(1), 2);
  EXPECT_DOUBLE_EQ(t.segment_start(2), 4);
}

TEST(TrackDeathTest, RejectsEmptyOrInvalidSegments) {
  EXPECT_DEATH(Track("x", ContentType::kVideo, 1e6, k360p, {}), "segments");
  Segment bad;
  bad.duration = 0;
  bad.size = 10;
  EXPECT_DEATH(Track("x", ContentType::kVideo, 1e6, k360p, {bad}), "duration");
}

TEST(VideoAsset, SortsLadderAscending) {
  auto seg = three_segments();
  std::vector<Track> tracks;
  tracks.emplace_back("hi", ContentType::kVideo, 3e6, k720p, seg);
  tracks.emplace_back("lo", ContentType::kVideo, 1e6, k360p, seg);
  VideoAsset asset("a", std::move(tracks));
  EXPECT_EQ(asset.video_track(0).id(), "lo");
  EXPECT_EQ(asset.video_track(1).id(), "hi");
  EXPECT_DOUBLE_EQ(asset.lowest_declared_bitrate(), 1e6);
  EXPECT_DOUBLE_EQ(asset.highest_declared_bitrate(), 3e6);
}

TEST(VideoAsset, LevelLookupByTrackId) {
  auto seg = three_segments();
  std::vector<Track> tracks;
  tracks.emplace_back("lo", ContentType::kVideo, 1e6, k360p, seg);
  tracks.emplace_back("hi", ContentType::kVideo, 3e6, k720p, seg);
  VideoAsset asset("a", std::move(tracks));
  EXPECT_EQ(asset.video_level_of("hi"), 1);
  EXPECT_EQ(asset.video_level_of("nope"), -1);
}

TEST(VideoAsset, SeparateAudioDetection) {
  auto seg = three_segments();
  std::vector<Track> video;
  video.emplace_back("v", ContentType::kVideo, 1e6, k360p, seg);
  std::vector<Track> audio;
  audio.emplace_back("a", ContentType::kAudio, 96e3, Resolution{}, seg);
  VideoAsset with("w", video, std::move(audio));
  EXPECT_TRUE(with.separate_audio());
  VideoAsset without("wo", std::move(video));
  EXPECT_FALSE(without.separate_audio());
}

TEST(Resolution, TypicalMappingIsMonotonic) {
  EXPECT_EQ(typical_resolution_for(200e3).height, 240);
  EXPECT_EQ(typical_resolution_for(600e3).height, 360);
  EXPECT_EQ(typical_resolution_for(1.2e6).height, 480);
  EXPECT_EQ(typical_resolution_for(2.5e6).height, 720);
  EXPECT_EQ(typical_resolution_for(5e6).height, 1080);
}

}  // namespace
}  // namespace vodx::media
