#include "media/sidx.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "media/encoder.h"
#include "media/scene.h"

namespace vodx::media {
namespace {

Track sample_track(std::uint64_t seed = 1, Seconds duration = 60) {
  Rng rng(seed);
  SceneComplexity scenes = SceneComplexity::generate(duration, rng);
  EncoderConfig config;
  return encode_video_track("v", 1e6, duration, 4, config, scenes, rng);
}

TEST(Sidx, RoundTripPreservesReferences) {
  Track track = sample_track();
  SidxBox box = sidx_for_track(track);
  std::string wire = serialize_sidx(box);
  SidxBox parsed = parse_sidx(wire);
  ASSERT_EQ(parsed.references.size(), box.references.size());
  for (std::size_t i = 0; i < box.references.size(); ++i) {
    EXPECT_EQ(parsed.references[i].referenced_size,
              box.references[i].referenced_size);
    EXPECT_EQ(parsed.references[i].subsegment_duration,
              box.references[i].subsegment_duration);
  }
  EXPECT_EQ(parsed.timescale, box.timescale);
  EXPECT_EQ(parsed.reference_id, box.reference_id);
}

TEST(Sidx, WireSizeMatchesBoxSize) {
  SidxBox box = sidx_for_track(sample_track());
  EXPECT_EQ(serialize_sidx(box).size(), box.box_size());
}

TEST(Sidx, SizesMatchTrackSegments) {
  Track track = sample_track();
  SidxBox box = sidx_for_track(track, 1000);
  ASSERT_EQ(static_cast<int>(box.references.size()), track.segment_count());
  for (int i = 0; i < track.segment_count(); ++i) {
    EXPECT_EQ(static_cast<Bytes>(box.references[i].referenced_size),
              track.segment(i).size);
    EXPECT_NEAR(box.references[i].subsegment_duration / 1000.0,
                track.segment(i).duration, 0.001);
  }
}

TEST(Sidx, GoldenHeaderBytes) {
  SidxBox box;
  box.reference_id = 1;
  box.timescale = 1000;
  SidxReference ref;
  ref.referenced_size = 0x1234;
  ref.subsegment_duration = 4000;
  box.references.push_back(ref);
  std::string wire = serialize_sidx(box);
  ASSERT_EQ(wire.size(), 44u);  // 12 header + 20 fixed + 12 per reference
  EXPECT_EQ(wire.substr(4, 4), "sidx");
  // Size field, big endian.
  EXPECT_EQ(static_cast<unsigned char>(wire[3]), 44);
  // reference_count at offset 30-31.
  EXPECT_EQ(static_cast<unsigned char>(wire[31]), 1);
}

TEST(Sidx, ParseRejectsTruncated) {
  std::string wire = serialize_sidx(sidx_for_track(sample_track()));
  EXPECT_THROW(parse_sidx(std::string_view(wire).substr(0, 20)), ParseError);
  EXPECT_THROW(parse_sidx(""), ParseError);
}

TEST(Sidx, ParseRejectsWrongFourcc) {
  std::string wire = serialize_sidx(sidx_for_track(sample_track()));
  wire[4] = 'm';
  EXPECT_THROW(parse_sidx(wire), ParseError);
}

TEST(Sidx, ParseRejectsOversizedBoxField) {
  std::string wire = serialize_sidx(sidx_for_track(sample_track()));
  wire[0] = 0x7F;  // absurd declared size
  EXPECT_THROW(parse_sidx(wire), ParseError);
}

TEST(Sidx, ParseRejectsUnsupportedVersion) {
  std::string wire = serialize_sidx(sidx_for_track(sample_track()));
  wire[8] = 1;  // version byte
  EXPECT_THROW(parse_sidx(wire), ParseError);
}

TEST(Sidx, FirstOffsetSurvivesRoundTrip) {
  SidxBox box = sidx_for_track(sample_track());
  box.first_offset = 512;
  SidxBox parsed = parse_sidx(serialize_sidx(box));
  EXPECT_EQ(parsed.first_offset, 512u);
}

// Property: round-trip holds for arbitrary encoded tracks.
class SidxRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(SidxRoundTrip, AnyTrack) {
  Track track = sample_track(static_cast<std::uint64_t>(GetParam()),
                             30.0 + 17.0 * GetParam());
  SidxBox box = sidx_for_track(track);
  SidxBox parsed = parse_sidx(serialize_sidx(box));
  ASSERT_EQ(parsed.references.size(), box.references.size());
  Bytes total = 0;
  for (const SidxReference& r : parsed.references) {
    total += static_cast<Bytes>(r.referenced_size);
  }
  EXPECT_EQ(total, track.total_size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SidxRoundTrip, ::testing::Range(1, 9));

}  // namespace
}  // namespace vodx::media
