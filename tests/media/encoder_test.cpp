#include "media/encoder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "common/rng.h"
#include "media/scene.h"

namespace vodx::media {
namespace {

SceneComplexity scenes_for(Seconds duration, std::uint64_t seed = 1) {
  Rng rng(seed);
  return SceneComplexity::generate(duration, rng);
}

TEST(Scene, AverageComplexityIsNormalised) {
  SceneComplexity scenes = scenes_for(600);
  EXPECT_NEAR(scenes.average_over(0, 600), 1.0, 1e-9);
}

TEST(Scene, LocalComplexityVaries) {
  SceneComplexity scenes = scenes_for(600);
  double lo = 10;
  double hi = 0;
  for (Seconds t = 0; t < 600; t += 10) {
    const double c = scenes.average_over(t, t + 10);
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  EXPECT_LT(lo, 0.8);
  EXPECT_GT(hi, 1.2);
}

TEST(Scene, DeterministicInSeed) {
  SceneComplexity a = scenes_for(300, 7);
  SceneComplexity b = scenes_for(300, 7);
  for (Seconds t = 0; t < 300; t += 13) {
    EXPECT_DOUBLE_EQ(a.average_over(t, t + 5), b.average_over(t, t + 5));
  }
}

TEST(Encoder, CbrSegmentsNearlyUniform) {
  Rng rng(1);
  SceneComplexity scenes = scenes_for(600);
  EncoderConfig config;
  config.mode = EncodingMode::kCbr;
  Track t = encode_video_track("v", 1e6, 600, 4, config, scenes, rng);
  EXPECT_NEAR(t.average_actual_bitrate(), 1e6, 0.05e6);
  EXPECT_LT(t.peak_actual_bitrate() / t.average_actual_bitrate(), 1.1);
}

TEST(Encoder, VbrPeakDeclaredHasTwoToOneGap) {
  Rng rng(1);
  SceneComplexity scenes = scenes_for(600);
  EncoderConfig config;
  config.mode = EncodingMode::kVbr;
  config.declared_policy = DeclaredPolicy::kPeak;
  config.peak_to_average = 2.0;
  Track t = encode_video_track("v", 2e6, 600, 4, config, scenes, rng);
  // Average actual ~ declared / 2; peak near the declared bitrate.
  EXPECT_NEAR(t.average_actual_bitrate(), 1e6, 0.08e6);
  EXPECT_GT(t.peak_actual_bitrate(), 1.6e6);
  EXPECT_LT(t.peak_actual_bitrate(), 2.4e6);
}

TEST(Encoder, VbrAverageDeclaredTracksAverage) {
  Rng rng(1);
  SceneComplexity scenes = scenes_for(600);
  EncoderConfig config;
  config.mode = EncodingMode::kVbr;
  config.declared_policy = DeclaredPolicy::kAverage;
  config.average_policy_peak = 1.5;
  Track t = encode_video_track("v", 2e6, 600, 4, config, scenes, rng);
  EXPECT_NEAR(t.average_actual_bitrate(), 2e6, 0.15e6);
  // Some segments exceed the declared bitrate (the S1/S2 pattern, Fig. 5).
  EXPECT_GT(t.peak_actual_bitrate(), 2.2e6);
}

TEST(Encoder, LadderSharesComplexityAcrossRungs) {
  Rng rng(1);
  SceneComplexity scenes = scenes_for(600);
  EncoderConfig config;  // VBR peak
  std::vector<Track> ladder =
      encode_video_ladder({5e5, 1e6, 2e6}, 600, 4, config, scenes, rng);
  ASSERT_EQ(ladder.size(), 3u);
  // Big segments line up: the largest segment of each track has the same
  // index (same complex scene).
  auto argmax = [](const Track& t) {
    int best = 0;
    for (const Segment& s : t.segments()) {
      if (s.size > t.segment(best).size) best = s.index;
    }
    return best;
  };
  EXPECT_EQ(argmax(ladder[0]), argmax(ladder[1]));
  EXPECT_EQ(argmax(ladder[1]), argmax(ladder[2]));
}

TEST(Encoder, TailSegmentShorterWhenNotDivisible) {
  Rng rng(1);
  SceneComplexity scenes = scenes_for(10);
  EncoderConfig config;
  Track t = encode_video_track("v", 1e6, 10, 4, config, scenes, rng);
  ASSERT_EQ(t.segment_count(), 3);
  EXPECT_DOUBLE_EQ(t.segment(2).duration, 2.0);
  EXPECT_DOUBLE_EQ(t.duration(), 10.0);
}

TEST(Encoder, SubSecondTailIsDropped) {
  Rng rng(1);
  SceneComplexity scenes = scenes_for(8.1);
  EncoderConfig config;
  Track t = encode_video_track("v", 1e6, 8.1, 4, config, scenes, rng);
  EXPECT_EQ(t.segment_count(), 2);  // 0.1 s tail not worth a segment
}

TEST(Encoder, AudioTrackIsNearCbr) {
  Rng rng(1);
  Track a = encode_audio_track(96e3, 600, 2, rng);
  EXPECT_EQ(a.type(), ContentType::kAudio);
  EXPECT_NEAR(a.average_actual_bitrate(), 96e3, 3e3);
  EXPECT_LT(a.peak_actual_bitrate() / a.average_actual_bitrate(), 1.06);
  EXPECT_EQ(a.id(), "audio/0");
}

TEST(Encoder, LadderMustBeAscending) {
  Rng rng(1);
  SceneComplexity scenes = scenes_for(60);
  EncoderConfig config;
  EXPECT_DEATH(
      encode_video_ladder({2e6, 1e6}, 60, 4, config, scenes, rng),
      "ascending");
}

// Property sweep: for every (segment duration x policy), the realised
// average bitrate honours the declared policy.
class EncoderSweep
    : public ::testing::TestWithParam<std::tuple<double, DeclaredPolicy>> {};

TEST_P(EncoderSweep, AverageHonoursPolicy) {
  const auto [seg_dur, policy] = GetParam();
  Rng rng(11);
  SceneComplexity scenes = scenes_for(600, 3);
  EncoderConfig config;
  config.mode = EncodingMode::kVbr;
  config.declared_policy = policy;
  config.peak_to_average = 2.0;
  config.average_policy_peak = 1.5;
  Track t = encode_video_track("v", 3e6, 600, seg_dur, config, scenes, rng);
  const Bps expected =
      policy == DeclaredPolicy::kPeak ? 1.5e6 : 3e6;
  EXPECT_NEAR(t.average_actual_bitrate(), expected, 0.12 * expected);
  EXPECT_DOUBLE_EQ(t.declared_bitrate(), 3e6);
}

INSTANTIATE_TEST_SUITE_P(
    Durations, EncoderSweep,
    ::testing::Combine(::testing::Values(2.0, 4.0, 6.0, 9.0, 10.0),
                       ::testing::Values(DeclaredPolicy::kPeak,
                                         DeclaredPolicy::kAverage)));

}  // namespace
}  // namespace vodx::media
