// Wall-clock profiler: enable gating, zone nesting (total vs self),
// cross-thread flushing and report ordering. Wall-clock durations are
// machine-dependent, so assertions check structure (counts, orderings,
// inequalities), never absolute times.
#include <gtest/gtest.h>

#include <thread>

#include "obs/profiler.h"

#ifndef VODX_PROFILER_DISABLED

namespace vodx::obs {
namespace {

const ZoneStats* find_zone(const std::vector<ZoneStats>& zones,
                           const std::string& name) {
  for (const ZoneStats& z : zones) {
    if (z.name == name) return &z;
  }
  return nullptr;
}

class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_profiling_enabled(false);
    profiler_reset();
  }
  void TearDown() override {
    set_profiling_enabled(false);
    profiler_reset();
  }
};

TEST_F(ProfilerTest, DisabledZonesRecordNothing) {
  {
    VODX_PROFILE_ZONE("test.disabled");
  }
  EXPECT_TRUE(profiler_report().empty());
}

TEST_F(ProfilerTest, EnabledZonesCountEntries) {
  set_profiling_enabled(true);
  for (int i = 0; i < 5; ++i) {
    VODX_PROFILE_ZONE("test.loop");
  }
  const std::vector<ZoneStats> zones = profiler_report();
  const ZoneStats* loop = find_zone(zones, "test.loop");
  ASSERT_NE(loop, nullptr);
  EXPECT_EQ(loop->count, 5u);
  EXPECT_EQ(loop->total_ns, loop->self_ns);  // no children
}

TEST_F(ProfilerTest, NestedZonesSplitSelfFromTotal) {
  set_profiling_enabled(true);
  {
    VODX_PROFILE_ZONE("test.outer");
    for (int i = 0; i < 3; ++i) {
      VODX_PROFILE_ZONE("test.inner");
    }
  }
  const std::vector<ZoneStats> zones = profiler_report();
  const ZoneStats* outer = find_zone(zones, "test.outer");
  const ZoneStats* inner = find_zone(zones, "test.inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 1u);
  EXPECT_EQ(inner->count, 3u);
  // Outer's inclusive time covers inner; its self time excludes it.
  EXPECT_GE(outer->total_ns, inner->total_ns);
  EXPECT_EQ(outer->self_ns, outer->total_ns - inner->total_ns);
}

TEST_F(ProfilerTest, ReportSortsByTotalDescending) {
  set_profiling_enabled(true);
  {
    VODX_PROFILE_ZONE("test.a");
    VODX_PROFILE_ZONE("test.b");  // nested: strictly less inclusive time
  }
  const std::vector<ZoneStats> zones = profiler_report();
  ASSERT_EQ(zones.size(), 2u);
  EXPECT_GE(zones[0].total_ns, zones[1].total_ns);
}

TEST_F(ProfilerTest, WorkerThreadsFlushIntoTheGlobalAggregate) {
  set_profiling_enabled(true);
  std::thread worker([] {
    for (int i = 0; i < 4; ++i) {
      VODX_PROFILE_ZONE("test.worker");
    }
  });
  {
    VODX_PROFILE_ZONE("test.main");
  }
  worker.join();
  const std::vector<ZoneStats> zones = profiler_report();
  const ZoneStats* from_worker = find_zone(zones, "test.worker");
  ASSERT_NE(from_worker, nullptr);
  EXPECT_EQ(from_worker->count, 4u);
  EXPECT_NE(find_zone(zones, "test.main"), nullptr);
}

TEST_F(ProfilerTest, ResetClearsEverything) {
  set_profiling_enabled(true);
  {
    VODX_PROFILE_ZONE("test.gone");
  }
  EXPECT_FALSE(profiler_report().empty());
  profiler_reset();
  EXPECT_TRUE(profiler_report().empty());
}

TEST_F(ProfilerTest, DisableMidZoneStillClosesTheFrame) {
  set_profiling_enabled(true);
  {
    VODX_PROFILE_ZONE("test.toggled");
    set_profiling_enabled(false);
  }
  const std::vector<ZoneStats> zones = profiler_report();
  const ZoneStats* z = find_zone(zones, "test.toggled");
  ASSERT_NE(z, nullptr);
  EXPECT_EQ(z->count, 1u);
}

}  // namespace
}  // namespace vodx::obs

#endif  // VODX_PROFILER_DISABLED
