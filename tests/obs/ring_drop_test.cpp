// TraceSink drop accounting at degenerate capacities: capacity 0 (retain
// nothing, count everything), capacity 1, and exact wrap boundaries.
#include <gtest/gtest.h>

#include "obs/trace_sink.h"

namespace vodx::obs {
namespace {

TEST(RingDrop, CapacityZeroRetainsNothingButCountsExactly) {
  TraceSink sink(0);
  EXPECT_EQ(sink.capacity(), 0u);
  for (int i = 0; i < 7; ++i) {
    sink.instant(i, Category::kSim, "tick", 0);
  }
  EXPECT_EQ(sink.emitted(), 7u);
  EXPECT_EQ(sink.dropped(), 7u);
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_TRUE(sink.snapshot().empty());

  // clear() keeps the lifetime counters (they are exporter-facing totals).
  sink.clear();
  EXPECT_EQ(sink.emitted(), 7u);
  EXPECT_EQ(sink.dropped(), 7u);
}

TEST(RingDrop, CapacityOneKeepsOnlyTheNewest) {
  TraceSink sink(1);
  sink.instant(1.0, Category::kSim, "a", 0);
  EXPECT_EQ(sink.dropped(), 0u);
  sink.instant(2.0, Category::kSim, "b", 0);
  sink.instant(3.0, Category::kSim, "c", 0);
  EXPECT_EQ(sink.emitted(), 3u);
  EXPECT_EQ(sink.dropped(), 2u);
  std::vector<Event> events = sink.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "c");
  EXPECT_EQ(events[0].seq, 2u);
}

TEST(RingDrop, ExactCapacityBoundaryDropsNothing) {
  TraceSink sink(4);
  for (int i = 0; i < 4; ++i) {
    sink.instant(i, Category::kSim, "tick", 0);
  }
  EXPECT_EQ(sink.emitted(), 4u);
  EXPECT_EQ(sink.dropped(), 0u);
  EXPECT_EQ(sink.size(), 4u);
}

TEST(RingDrop, OnePastCapacityDropsExactlyTheOldest) {
  TraceSink sink(4);
  for (int i = 0; i < 5; ++i) {
    sink.instant(i, Category::kSim, "tick", 0, {Field::n("i", i)});
  }
  EXPECT_EQ(sink.dropped(), 1u);
  std::vector<Event> events = sink.snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_DOUBLE_EQ(events.front().fields[0].num, 1.0);
  EXPECT_DOUBLE_EQ(events.back().fields[0].num, 4.0);
}

TEST(RingDrop, MultipleFullWrapsKeepCountersExact) {
  TraceSink sink(3);
  // 3 full wraps plus one: 10 emitted, the newest 3 retained.
  for (int i = 0; i < 10; ++i) {
    sink.instant(i, Category::kSim, "tick", 0, {Field::n("i", i)});
  }
  EXPECT_EQ(sink.emitted(), 10u);
  EXPECT_EQ(sink.dropped(), 7u);
  std::vector<Event> events = sink.snapshot();
  ASSERT_EQ(events.size(), 3u);
  for (std::size_t k = 0; k < events.size(); ++k) {
    EXPECT_DOUBLE_EQ(events[k].fields[0].num, 7.0 + k);
    EXPECT_EQ(events[k].seq, 7u + k);
  }
}

TEST(RingDrop, ClearAfterWrapKeepsLifetimeCountersAndEmptiesRing) {
  TraceSink sink(2);
  for (int i = 0; i < 5; ++i) {
    sink.instant(i, Category::kSim, "tick", 0);
  }
  EXPECT_EQ(sink.dropped(), 3u);
  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.emitted(), 5u);
  EXPECT_EQ(sink.dropped(), 3u);
  // The ring is usable again after clear(); seq keeps rising.
  sink.instant(9.0, Category::kSim, "after", 0);
  std::vector<Event> events = sink.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].seq, 5u);
}

}  // namespace
}  // namespace vodx::obs
