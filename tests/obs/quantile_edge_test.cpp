// bucket_quantile edge cases: empty input, single sample, a single
// populated bucket (including overflow), and inconsistent hand-built
// entries must all yield well-defined, monotone quantiles.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "obs/metrics.h"

namespace vodx::obs {
namespace {

const std::vector<double> kBounds = {1, 2, 4, 8};

TEST(BucketQuantile, EmptyHistogramReturnsZeroEverywhere) {
  const std::vector<std::int64_t> buckets = {0, 0, 0, 0, 0};
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(bucket_quantile(kBounds, buckets, 0, 0, 0, q), 0);
  }
  Histogram h(kBounds);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0);
}

TEST(BucketQuantile, SingleSampleIsItsOwnQuantile) {
  Histogram h(kBounds);
  h.record(3.0);
  for (double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), 3.0);
  }
}

TEST(BucketQuantile, SinglePopulatedBucketClampsToObservedRange) {
  // All mass in the (2, 4] bucket, observed range [2.5, 3.5]: every
  // quantile interpolates inside the observed range, never the raw bucket
  // edges.
  Histogram h(kBounds);
  h.record(2.5);
  h.record(3.0);
  h.record(3.5);
  for (double q : {0.0, 0.5, 1.0}) {
    EXPECT_GE(h.quantile(q), 2.5);
    EXPECT_LE(h.quantile(q), 3.5);
  }
  EXPECT_DOUBLE_EQ(h.quantile(0), 2.5);
  EXPECT_DOUBLE_EQ(h.quantile(1), 3.5);
}

TEST(BucketQuantile, OverflowBucketUsesObservedMax) {
  // Mass past the last bound has no upper edge; the observed max bounds it.
  Histogram h(kBounds);
  h.record(20.0);
  h.record(30.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 30.0);
  EXPECT_GE(h.quantile(0.5), 20.0);
  EXPECT_LE(h.quantile(0.5), 30.0);
}

TEST(BucketQuantile, QuantilesAreMonotoneInQ) {
  Histogram h(kBounds);
  for (double v : {0.5, 0.7, 1.5, 3.0, 3.2, 5.0, 9.0, 12.0}) h.record(v);
  double prev = h.quantile(0);
  for (double q = 0.1; q <= 1.0; q += 0.1) {
    const double next = h.quantile(q);
    EXPECT_GE(next, prev - 1e-12) << "q=" << q;
    prev = next;
  }
  EXPECT_DOUBLE_EQ(h.quantile(0), 0.5);
  EXPECT_DOUBLE_EQ(h.quantile(1), 12.0);
}

TEST(BucketQuantile, HandBuiltEntryWithoutStatsStaysFinite) {
  // Merged or hand-built entries can carry buckets without observed
  // min/max (min > max is the "no stats" signal). Quantiles must fall back
  // to the raw bucket edges instead of clamping to garbage.
  const std::vector<std::int64_t> buckets = {0, 3, 0, 0, 0};
  const double v = bucket_quantile(kBounds, buckets, 3, /*min=*/1,
                                   /*max=*/-1, 0.5);
  EXPECT_GE(v, 1.0);
  EXPECT_LE(v, 2.0);
  // Overflow-only mass without stats: the bucket has no upper edge and no
  // max; the result must still be finite (the lower edge).
  const std::vector<std::int64_t> overflow = {0, 0, 0, 0, 2};
  const double w =
      bucket_quantile(kBounds, overflow, 2, /*min=*/1, /*max=*/-1, 0.9);
  EXPECT_DOUBLE_EQ(w, 8.0);
}

TEST(BucketQuantile, CountBucketMismatchSkipsEmptyBuckets) {
  // count can exceed the bucket sum on hand-built entries; the quantile
  // walk must not land in an empty bucket.
  const std::vector<std::int64_t> buckets = {0, 0, 5, 0, 0};
  const double v = bucket_quantile(kBounds, buckets, 10, 2.5, 3.5, 0.1);
  EXPECT_GE(v, 2.5);
  EXPECT_LE(v, 3.5);
}

TEST(MergeEdge, EmptyHistogramIsTheMergeIdentity) {
  MetricsRegistry left;
  Histogram& h = left.histogram("x", kBounds);
  h.record(3.0);
  h.record(5.0);
  MetricsRegistry right;
  right.histogram("x", kBounds);  // registered, never recorded

  MetricsSnapshot a = left.snapshot(1);
  const MetricsSnapshot b = right.snapshot(2);
  const MetricsSnapshot merged = merge(a, b);
  const MetricsSnapshot::Entry* entry = merged.find("x");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->count, 2);
  EXPECT_DOUBLE_EQ(entry->min, 3.0);
  EXPECT_DOUBLE_EQ(entry->max, 5.0);
  EXPECT_DOUBLE_EQ(entry->p50, left.snapshot(1).find("x")->p50);

  // And the other direction: folding samples into an empty entry.
  const MetricsSnapshot merged2 = merge(b, left.snapshot(1));
  EXPECT_EQ(merged2.find("x")->count, 2);
  EXPECT_DOUBLE_EQ(merged2.find("x")->p50, entry->p50);
}

TEST(MergeEdge, SinglePopulatedBucketMergesToDefinedQuantiles) {
  MetricsRegistry left;
  left.histogram("x", kBounds).record(3.0);
  MetricsRegistry right;
  right.histogram("x", kBounds).record(3.5);

  const MetricsSnapshot merged = merge(left.snapshot(1), right.snapshot(1));
  const MetricsSnapshot::Entry* entry = merged.find("x");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->count, 2);
  for (double q : {entry->p50, entry->p90, entry->p99}) {
    EXPECT_GE(q, 3.0);
    EXPECT_LE(q, 3.5);
  }
}

TEST(MergeEdge, BucketSizeMismatchThrows) {
  // Hand-built entries with equal bounds but a short bucket vector must be
  // rejected, not read out of bounds.
  MetricsSnapshot a;
  MetricsSnapshot::Entry ea;
  ea.name = "x";
  ea.type = MetricsSnapshot::Type::kHistogram;
  ea.count = 1;
  ea.bounds = kBounds;
  ea.buckets = {1, 0, 0, 0, 0};
  a.entries.push_back(ea);

  MetricsSnapshot b;
  MetricsSnapshot::Entry eb = ea;
  eb.buckets = {1, 0};  // truncated
  b.entries.clear();
  b.entries.push_back(eb);

  EXPECT_THROW(a.merge_from(b), ConfigError);
}

}  // namespace
}  // namespace vodx::obs
