// TraceSink behaviour: ring overflow, category masking, deterministic
// ordering, scoped spans, and the exporters' output formats.
#include <gtest/gtest.h>

#include <sstream>

#include "obs/export.h"
#include "obs/observer.h"
#include "obs/trace_sink.h"

namespace vodx::obs {
namespace {

TEST(TraceSink, RetainsEventsInEmissionOrder) {
  TraceSink sink(8);
  sink.instant(1.0, Category::kPlayer, "a", 0);
  sink.instant(2.0, Category::kPlayer, "b", 0);
  sink.instant(3.0, Category::kPlayer, "c", 0);

  std::vector<Event> events = sink.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_STREQ(events[0].name, "a");
  EXPECT_STREQ(events[1].name, "b");
  EXPECT_STREQ(events[2].name, "c");
  EXPECT_EQ(sink.emitted(), 3u);
  EXPECT_EQ(sink.dropped(), 0u);
}

TEST(TraceSink, RingOverflowKeepsNewestAndCountsDropped) {
  TraceSink sink(4);
  for (int i = 0; i < 10; ++i) {
    sink.instant(i, Category::kSim, "tick", 0, {Field::n("i", i)});
  }
  EXPECT_EQ(sink.emitted(), 10u);
  EXPECT_EQ(sink.dropped(), 6u);
  EXPECT_EQ(sink.size(), 4u);

  // The window is contiguous and ends at the newest event (i = 6..9).
  std::vector<Event> events = sink.snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t k = 0; k < events.size(); ++k) {
    EXPECT_DOUBLE_EQ(events[k].fields[0].num, 6.0 + k);
  }
}

TEST(TraceSink, SequenceNumbersBreakTiesAtEqualSimTime) {
  TraceSink sink;
  // A burst of events at the same simulated instant (one tick can emit
  // many) must stay in emission order so exporters are deterministic.
  sink.instant(5.0, Category::kTcp, "first", 0);
  sink.instant(5.0, Category::kTcp, "second", 0);
  sink.instant(5.0, Category::kTcp, "third", 0);

  std::vector<Event> events = sink.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_LT(events[1].seq, events[2].seq);
  EXPECT_STREQ(events[0].name, "first");
  EXPECT_STREQ(events[2].name, "third");
}

TEST(TraceSink, CategoryMaskGatesEnabledCheck) {
  TraceSink sink;
  EXPECT_TRUE(sink.enabled(Category::kTcp));

  sink.set_category_mask(bit(Category::kPlayer) | bit(Category::kAbr));
  EXPECT_TRUE(sink.enabled(Category::kPlayer));
  EXPECT_TRUE(sink.enabled(Category::kAbr));
  EXPECT_FALSE(sink.enabled(Category::kTcp));
  EXPECT_FALSE(sink.enabled(Category::kSim));

  sink.enable(Category::kTcp);
  EXPECT_TRUE(sink.enabled(Category::kTcp));
  sink.disable(Category::kPlayer);
  EXPECT_FALSE(sink.enabled(Category::kPlayer));

  // The master switch overrides the mask entirely.
  sink.set_enabled(false);
  EXPECT_FALSE(sink.enabled(Category::kAbr));
}

TEST(TraceSink, TrackIdsAreStable) {
  TraceSink sink;
  const int player = sink.track("player");
  const int tcp = sink.track("tcp conn0");
  EXPECT_NE(player, tcp);
  EXPECT_EQ(sink.track("player"), player);
  EXPECT_EQ(sink.track("tcp conn0"), tcp);
  ASSERT_EQ(sink.track_names().size(), 2u);
  EXPECT_EQ(sink.track_names()[static_cast<std::size_t>(player)], "player");
}

TEST(TraceSink, ScopedSpanEmitsBeginAndEndAtClockTime) {
  TraceSink sink;
  double now = 10.0;
  sink.set_clock([&now] { return now; });
  {
    ScopedSpan span(&sink, Category::kHttp, "http.request", 0,
                    sink.now(), {Field::n("id", 7)});
    now = 12.5;
  }
  std::vector<Event> events = sink.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::kSpanBegin);
  EXPECT_DOUBLE_EQ(events[0].sim_time, 10.0);
  EXPECT_EQ(events[1].kind, EventKind::kSpanEnd);
  EXPECT_DOUBLE_EQ(events[1].sim_time, 12.5);
}

TEST(TraceSink, ScopedSpanInactiveWhenDisabled) {
  TraceSink sink;
  sink.disable(Category::kHttp);
  { ScopedSpan span(&sink, Category::kHttp, "http.request", 0, 1.0); }
  { ScopedSpan span(nullptr, Category::kHttp, "http.request", 0, 1.0); }
  EXPECT_EQ(sink.size(), 0u);
}

TEST(TraceSink, ClearResetsRetainedWindowButNotTotals) {
  TraceSink sink(4);
  for (int i = 0; i < 6; ++i) sink.instant(i, Category::kSim, "e", 0);
  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.emitted(), 6u);
  sink.instant(7.0, Category::kSim, "after", 0);
  ASSERT_EQ(sink.snapshot().size(), 1u);
  EXPECT_STREQ(sink.snapshot()[0].name, "after");
}

TEST(Export, JsonlOneObjectPerLine) {
  TraceSink sink;
  const int track = sink.track("player");
  sink.instant(1.5, Category::kPlayer, "stall.begin", track,
               {Field::n("position_s", 42.0), Field::t("cause", "underrun")});
  std::ostringstream out;
  write_jsonl(sink, out);
  const std::string line = out.str();
  EXPECT_NE(line.find("\"t\":1.5"), std::string::npos);
  EXPECT_NE(line.find("\"name\":\"stall.begin\""), std::string::npos);
  EXPECT_NE(line.find("\"cause\":\"underrun\""), std::string::npos);
  EXPECT_NE(line.find("\"position_s\":42"), std::string::npos);
  EXPECT_EQ(line.back(), '\n');
}

TEST(Export, ChromeTraceHasTrackMetadataAndPhases) {
  TraceSink sink;
  const int player = sink.track("player");
  const int tcp = sink.track("tcp conn0");
  sink.begin(0.0, Category::kHttp, "http.request", tcp);
  sink.end(1.0, Category::kHttp, "http.request", tcp);
  sink.instant(2.0, Category::kPlayer, "stall.begin", player);
  sink.counter(2.0, Category::kPlayer, "buffer.video_s", player, 12.5);

  std::ostringstream out;
  write_chrome_trace(sink, out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("\"tcp conn0\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  // Timestamps are microseconds: t=2 s must appear as 2000000.
  EXPECT_NE(json.find("2000000"), std::string::npos);
}

TEST(Export, JsonEscapeHandlesControlCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
}

TEST(Observer, TraceOnHelperChecksSinkAndCategory) {
  Observer observer;
  EXPECT_TRUE(trace_on(&observer, Category::kPlayer));
  observer.trace.disable(Category::kPlayer);
  EXPECT_FALSE(trace_on(&observer, Category::kPlayer));
  EXPECT_FALSE(trace_on(nullptr, Category::kTcp));
}

}  // namespace
}  // namespace vodx::obs
