// Exporter edge cases: JSON escaping of hostile strings, the JSONL
// dropped-event summary line, and the canonical metrics_json rendering.
#include <gtest/gtest.h>

#include <sstream>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"

namespace vodx::obs {
namespace {

TEST(JsonEscape, EmbeddedNulSurvivesAsUnicodeEscape) {
  const std::string with_nul("a\0b", 3);
  EXPECT_EQ(json_escape(with_nul), "a\\u0000b");
}

TEST(JsonEscape, MultiByteUtf8PassesThroughUntouched) {
  // Non-ASCII bytes are > 0x1f once read unsigned; a signed-char comparison
  // would misclassify them as control characters and mangle the sequence.
  const std::string utf8 = "r\xC3\xA9sum\xC3\xA9 \xE2\x86\x92 \xF0\x9F\x8E\xAC";
  EXPECT_EQ(json_escape(utf8), utf8);
}

TEST(JsonlExport, EndsWithDroppedSummaryLine) {
  TraceSink sink(4);
  for (int i = 0; i < 10; ++i) sink.instant(i, Category::kSim, "tick", 0);
  std::ostringstream out;
  write_jsonl(sink, out);
  const std::string text = out.str();
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  const std::size_t last_start = text.rfind('\n', text.size() - 2);
  const std::string last = text.substr(last_start + 1);
  EXPECT_NE(last.find("\"kind\":\"summary\""), std::string::npos);
  EXPECT_NE(last.find("\"name\":\"obs.dropped\""), std::string::npos);
  EXPECT_NE(last.find("\"emitted\":10"), std::string::npos);
  EXPECT_NE(last.find("\"dropped\":6"), std::string::npos);
  EXPECT_NE(last.find("\"retained\":4"), std::string::npos);
}

TEST(JsonlExport, SummaryReportsZeroDroppedWhenNothingOverflowed) {
  TraceSink sink;
  sink.instant(1.0, Category::kSim, "tick", 0);
  std::ostringstream out;
  write_jsonl(sink, out);
  EXPECT_NE(out.str().find("\"dropped\":0"), std::string::npos);
}

TEST(MetricsJson, RendersEveryMetricTypeAndIsByteStable) {
  MetricsRegistry r;
  r.counter("http.requests").add(42);
  r.gauge("buffer_s").set(1.25);
  Histogram& h = r.histogram("goodput", {1.0, 8.0});
  h.record(0.5);
  h.record(5.0);

  const std::string json = metrics_json(r.snapshot(600.0));
  EXPECT_EQ(json, metrics_json(r.snapshot(600.0)));  // byte-stable
  EXPECT_EQ(json.find('\n'), std::string::npos);     // single line
  EXPECT_NE(json.find("\"sim_time\":600"), std::string::npos);
  EXPECT_NE(json.find("\"http.requests\":{\"type\":\"counter\",\"count\":42}"),
            std::string::npos);
  EXPECT_NE(json.find("\"type\":\"gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"bounds\":[1,8]"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":[1,1,0]"), std::string::npos);
}

TEST(MetricsJson, MergedSnapshotRendersIdenticallyToItsValue) {
  // The determinism harness compares merged snapshots via this string; a
  // merge followed by a render must equal rendering the merged value again.
  MetricsRegistry r1;
  r1.counter("c").add(1);
  MetricsRegistry r2;
  r2.counter("c").add(2);
  const MetricsSnapshot m = merge(r1.snapshot(1.0), r2.snapshot(2.0));
  EXPECT_EQ(metrics_json(m), metrics_json(m));
  EXPECT_NE(metrics_json(m).find("\"count\":3"), std::string::npos);
}

}  // namespace
}  // namespace vodx::obs
