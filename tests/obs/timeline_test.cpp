// obs::Timeline: the merge algebra (identity, associativity, fold kinds,
// padding) and the bin-boundary convention every population sampler relies
// on (DESIGN.md §15).
#include "obs/timeline.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vodx::obs {
namespace {

Timeline sample_timeline(double a0, double a1, double m0, double m1) {
  Timeline timeline(1.0, 2);
  const int adds = timeline.add_series("adds", Timeline::Fold::kSum);
  const int peaks = timeline.add_series("peaks", Timeline::Fold::kMax);
  timeline.set(adds, 0, a0);
  timeline.set(adds, 1, a1);
  timeline.set(peaks, 0, m0);
  timeline.set(peaks, 1, m1);
  return timeline;
}

std::string bytes(const Timeline& timeline) { return timeline_csv(timeline); }

TEST(Timeline, DefaultConstructedIsMergeIdentity) {
  const Timeline value = sample_timeline(1, 2, 3, 4);
  EXPECT_TRUE(Timeline().empty());
  EXPECT_FALSE(value.empty());

  Timeline left = value;
  left.merge_from(Timeline());
  EXPECT_EQ(bytes(left), bytes(value));

  Timeline right;
  right.merge_from(value);
  EXPECT_EQ(bytes(right), bytes(value));
}

TEST(Timeline, MergeIsAssociativeAcrossTowerOrder) {
  const Timeline a = sample_timeline(1, 0, 5, 1);
  const Timeline b = sample_timeline(2, 3, 2, 9);
  const Timeline c = sample_timeline(0, 7, 4, 4);
  // (a + b) + c == a + (b + c): the post-join fold may group towers any
  // way the scheduler happened to, the result may not care.
  EXPECT_EQ(bytes(merge(merge(a, b), c)), bytes(merge(a, merge(b, c))));
}

TEST(Timeline, FoldKindsSumAndMax) {
  const Timeline merged = merge(sample_timeline(1, 2, 5, 1),
                                sample_timeline(10, 20, 3, 8));
  const int adds = merged.find("adds");
  const int peaks = merged.find("peaks");
  ASSERT_GE(adds, 0);
  ASSERT_GE(peaks, 0);
  EXPECT_DOUBLE_EQ(merged.value(adds, 0), 11);
  EXPECT_DOUBLE_EQ(merged.value(adds, 1), 22);
  EXPECT_DOUBLE_EQ(merged.value(peaks, 0), 5);
  EXPECT_DOUBLE_EQ(merged.value(peaks, 1), 8);
}

TEST(Timeline, ShorterOperandPadsWithIdentity) {
  Timeline longer(1.0, 4);
  const int series = longer.add_series("adds", Timeline::Fold::kSum);
  longer.set(series, 3, 7);
  Timeline merged = sample_timeline(1, 2, 3, 4);
  merged.merge_from(longer);
  EXPECT_EQ(merged.bin_count(), 4);
  const int adds = merged.find("adds");
  EXPECT_DOUBLE_EQ(merged.value(adds, 0), 1);
  EXPECT_DOUBLE_EQ(merged.value(adds, 3), 7);
  const int peaks = merged.find("peaks");
  EXPECT_DOUBLE_EQ(merged.value(peaks, 3), 0);
}

TEST(Timeline, MergeRejectsMismatchedBinWidthAndFold) {
  Timeline seconds(1.0, 2);
  seconds.add_series("x", Timeline::Fold::kSum);
  Timeline tens(10.0, 2);
  tens.add_series("x", Timeline::Fold::kSum);
  EXPECT_THROW(seconds.merge_from(tens), ConfigError);

  Timeline other(1.0, 2);
  other.add_series("x", Timeline::Fold::kMax);
  EXPECT_THROW(seconds.merge_from(other), ConfigError);
  EXPECT_THROW(seconds.add_series("x", Timeline::Fold::kMax), ConfigError);
}

TEST(Timeline, BinBoundaryBelongsToTheBinStartingThere) {
  const Timeline timeline(1.0, 10);
  EXPECT_EQ(timeline.bin_index(0.0), 0);
  EXPECT_EQ(timeline.bin_index(0.999), 0);
  EXPECT_EQ(timeline.bin_index(1.0), 1);
  // Float-accumulated boundary (100 ticks of 0.01) lands in bin 1, not 0.
  double accumulated = 0;
  for (int i = 0; i < 100; ++i) accumulated += 0.01;
  EXPECT_EQ(timeline.bin_index(accumulated), 1);
  // Out-of-range stamps clamp instead of dropping.
  EXPECT_EQ(timeline.bin_index(-0.5), 0);
  EXPECT_EQ(timeline.bin_index(25.0), 9);
}

TEST(Timeline, CsvAndJsonlAreShapedAndStable) {
  const Timeline value = sample_timeline(1, 2, 3, 4);
  const std::string csv = timeline_csv(value);
  EXPECT_EQ(csv.find("bin,t_start_s,adds,peaks"), 0u);
  EXPECT_NE(csv.find("\n0,0.000,1,3\n"), std::string::npos);
  EXPECT_EQ(timeline_csv(value), csv);
  const std::string jsonl = timeline_jsonl(value);
  EXPECT_NE(jsonl.find(R"("adds":1)"), std::string::npos);
  EXPECT_NE(jsonl.find(R"("peaks":4)"), std::string::npos);
}

}  // namespace
}  // namespace vodx::obs
