// MetricsSnapshot as a mergeable value type: counters add, gauges keep the
// last write by sim time, histograms merge bucket-wise, and the whole
// operation is associative with the empty snapshot as identity — the
// properties the sweep aggregation layer's jobs-independence rests on.
#include <gtest/gtest.h>

#include "common/error.h"
#include "obs/export.h"
#include "obs/metrics.h"

namespace vodx::obs {
namespace {

MetricsSnapshot snap_a() {
  MetricsRegistry r;
  r.counter("stalls").add(2);
  r.gauge("buffer_s").set(10.0);
  Histogram& h = r.histogram("fetch_s", {1.0, 4.0});
  h.record(0.5);
  h.record(2.0);
  return r.snapshot(100.0);
}

MetricsSnapshot snap_b() {
  MetricsRegistry r;
  r.counter("stalls").add(3);
  r.counter("switches").add(7);  // absent from snap_a
  r.gauge("buffer_s").set(20.0);
  r.histogram("fetch_s", {1.0, 4.0}).record(3.0);
  return r.snapshot(50.0);
}

MetricsSnapshot snap_c() {
  MetricsRegistry r;
  r.counter("stalls").add(1);
  r.gauge("buffer_s").set(30.0);
  // fetch_s registered but never recorded: the empty-histogram identity.
  r.histogram("fetch_s", {1.0, 4.0});
  return r.snapshot(200.0);
}

TEST(SnapshotMerge, CountersAdd) {
  MetricsSnapshot m = merge(snap_a(), snap_b());
  EXPECT_EQ(m.find("stalls")->count, 5);
  EXPECT_EQ(m.find("switches")->count, 7);
  EXPECT_DOUBLE_EQ(m.sim_time, 100.0);
}

TEST(SnapshotMerge, GaugesKeepTheLastWriteBySimTime) {
  // b was captured earlier (t=50) than a (t=100): a's value survives in
  // either merge order.
  EXPECT_DOUBLE_EQ(merge(snap_a(), snap_b()).find("buffer_s")->value, 10.0);
  EXPECT_DOUBLE_EQ(merge(snap_b(), snap_a()).find("buffer_s")->value, 10.0);
  // Equal times: the right operand wins.
  MetricsSnapshot other = snap_a();
  other.entries[1].value = 99.0;
  EXPECT_DOUBLE_EQ(merge(snap_a(), other).find("buffer_s")->value, 99.0);
}

TEST(SnapshotMerge, HistogramsMergeBucketwise) {
  MetricsSnapshot m = merge(snap_a(), snap_b());
  const MetricsSnapshot::Entry* h = m.find("fetch_s");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 3);
  EXPECT_DOUBLE_EQ(h->value, 5.5);  // sums add
  EXPECT_DOUBLE_EQ(h->min, 0.5);
  EXPECT_DOUBLE_EQ(h->max, 3.0);
  ASSERT_EQ(h->buckets.size(), 3u);
  EXPECT_EQ(h->buckets[0], 1);
  EXPECT_EQ(h->buckets[1], 2);
  EXPECT_EQ(h->buckets[2], 0);
  // Derived stats are recomputed from the merged buckets, not averaged.
  EXPECT_DOUBLE_EQ(h->mean, 5.5 / 3.0);
}

TEST(SnapshotMerge, EmptyMergeIsIdentityBothWays) {
  const MetricsSnapshot a = snap_a();
  const MetricsSnapshot empty;
  EXPECT_EQ(metrics_json(merge(a, empty)), metrics_json(a));
  EXPECT_EQ(metrics_json(merge(empty, a)), metrics_json(a));
}

TEST(SnapshotMerge, EmptyHistogramIsIdentity) {
  // c's fetch_s has no samples; merging it in either direction must leave
  // a's distribution untouched (c's capture time is later, so this would
  // fail if empty histograms clobbered like gauges).
  const MetricsSnapshot a = snap_a();
  EXPECT_EQ(merge(a, snap_c()).find("fetch_s")->count, 2);
  EXPECT_EQ(merge(snap_c(), a).find("fetch_s")->count, 2);
  EXPECT_DOUBLE_EQ(merge(snap_c(), a).find("fetch_s")->min, 0.5);
}

TEST(SnapshotMerge, MergeIsAssociative) {
  // The property run_sweep's fold depends on: any grouping of the same
  // ordered sequence produces the same bytes. snap_b is missing a metric
  // and snap_c has an out-of-order capture time, the two cases that broke
  // naive "latest snapshot wins" designs.
  const MetricsSnapshot ab_c = merge(merge(snap_a(), snap_b()), snap_c());
  const MetricsSnapshot a_bc = merge(snap_a(), merge(snap_b(), snap_c()));
  EXPECT_EQ(metrics_json(ab_c), metrics_json(a_bc));
  EXPECT_DOUBLE_EQ(ab_c.find("buffer_s")->value, 30.0);  // newest capture
}

TEST(SnapshotMerge, AppendsUnknownEntriesInOtherOrder) {
  MetricsSnapshot m = merge(snap_a(), snap_b());
  ASSERT_EQ(m.entries.size(), 4u);
  EXPECT_EQ(m.entries[0].name, "stalls");
  EXPECT_EQ(m.entries[1].name, "buffer_s");
  EXPECT_EQ(m.entries[2].name, "fetch_s");
  EXPECT_EQ(m.entries[3].name, "switches");  // appended from b
}

TEST(SnapshotMerge, TypeMismatchThrowsConfigError) {
  MetricsRegistry r1;
  r1.counter("x");
  MetricsRegistry r2;
  r2.gauge("x");
  MetricsSnapshot a = r1.snapshot(0);
  EXPECT_THROW(a.merge_from(r2.snapshot(0)), ConfigError);
}

TEST(SnapshotMerge, HistogramBoundsMismatchThrowsConfigError) {
  MetricsRegistry r1;
  r1.histogram("h", {1.0, 2.0}).record(1.0);
  MetricsRegistry r2;
  r2.histogram("h", {1.0, 8.0}).record(1.0);
  MetricsSnapshot a = r1.snapshot(0);
  EXPECT_THROW(a.merge_from(r2.snapshot(0)), ConfigError);
}

}  // namespace
}  // namespace vodx::obs
