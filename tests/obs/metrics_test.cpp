// Metrics registry: bucketing, quantiles, create-on-first-use semantics and
// snapshot isolation.
#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/metrics.h"

namespace vodx::obs {
namespace {

TEST(Histogram, BucketingLandsSamplesAtUpperEdges) {
  Histogram h({1.0, 2.0, 4.0});
  h.record(0.5);   // bucket 0 (<= 1)
  h.record(1.0);   // bucket 0 (edge is inclusive)
  h.record(1.5);   // bucket 1
  h.record(4.0);   // bucket 2
  h.record(100.0); // overflow

  ASSERT_EQ(h.buckets().size(), 4u);
  EXPECT_EQ(h.buckets()[0], 2);
  EXPECT_EQ(h.buckets()[1], 1);
  EXPECT_EQ(h.buckets()[2], 1);
  EXPECT_EQ(h.buckets()[3], 1);
  EXPECT_EQ(h.count(), 5);
  EXPECT_DOUBLE_EQ(h.sum(), 107.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

TEST(Histogram, QuantilesInterpolateWithinTheWinningBucket) {
  Histogram h({1.0, 2.0, 4.0, 8.0});
  for (int i = 0; i < 90; ++i) h.record(0.5);  // bucket 0
  for (int i = 0; i < 9; ++i) h.record(3.0);   // bucket 2
  h.record(50.0);                              // overflow

  // Bucket 0 spans [min, 1]: the 50th of 90 samples lands 5/9 through it.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.5 + (5.0 / 9.0) * 0.5);
  // Bucket 2 spans (2, 4]: the 95th sample is 5/9 through its 9 samples.
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 2.0 + (5.0 / 9.0) * 2.0);
  // The overflow bucket tops out at the observed max, not at infinity.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 50.0);
}

TEST(Histogram, SingleSampleBucketQuantileStaysNearTheSample) {
  Histogram h({1.0, 2.0, 4.0});
  h.record(3.0);
  // One sample: every quantile clamps into [min, max] = [3, 3].
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 3.0);
}

TEST(Histogram, EmptyHistogramIsAllZeroes) {
  Histogram h({1.0});
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0);
}

TEST(MetricsRegistry, CreateOnFirstUseReturnsSameInstance) {
  MetricsRegistry registry;
  Counter& a = registry.counter("http.requests");
  a.add(3);
  Counter& b = registry.counter("http.requests");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3);

  Histogram& h1 = registry.histogram("fetch_s", {1.0, 2.0});
  // Bounds on re-request are ignored; same instance comes back.
  Histogram& h2 = registry.histogram("fetch_s", {99.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricsRegistry, SnapshotIsIsolatedFromLaterMutation) {
  MetricsRegistry registry;
  registry.counter("stalls").add(2);
  registry.gauge("buffer_s").set(17.5);
  registry.histogram("fetch_s", {1.0, 4.0}).record(2.0);

  MetricsSnapshot snap = registry.snapshot(120.0);
  registry.counter("stalls").add(100);
  registry.gauge("buffer_s").set(-1);
  registry.histogram("fetch_s", {}).record(3.0);

  EXPECT_DOUBLE_EQ(snap.sim_time, 120.0);
  const MetricsSnapshot::Entry* stalls = snap.find("stalls");
  ASSERT_NE(stalls, nullptr);
  EXPECT_EQ(stalls->count, 2);
  const MetricsSnapshot::Entry* buffer = snap.find("buffer_s");
  ASSERT_NE(buffer, nullptr);
  EXPECT_DOUBLE_EQ(buffer->value, 17.5);
  const MetricsSnapshot::Entry* fetch = snap.find("fetch_s");
  ASSERT_NE(fetch, nullptr);
  EXPECT_EQ(fetch->count, 1);
  EXPECT_EQ(snap.find("missing"), nullptr);
}

TEST(MetricsRegistry, SnapshotPreservesRegistrationOrder) {
  MetricsRegistry registry;
  registry.counter("z.last_alphabetically");
  registry.counter("a.first_alphabetically");
  MetricsSnapshot snap = registry.snapshot(0);
  ASSERT_EQ(snap.entries.size(), 2u);
  EXPECT_EQ(snap.entries[0].name, "z.last_alphabetically");
  EXPECT_EQ(snap.entries[1].name, "a.first_alphabetically");
}

TEST(MetricsRegistry, ReportRendersAllMetricTypes) {
  MetricsRegistry registry;
  registry.counter("http.requests").add(42);
  registry.gauge("startup_delay_s").set(1.28);
  registry.histogram("goodput_mbps", {1.0, 8.0}).record(5.0);

  const std::string report = metrics_report(registry.snapshot(600.0));
  EXPECT_NE(report.find("http.requests"), std::string::npos);
  EXPECT_NE(report.find("42"), std::string::npos);
  EXPECT_NE(report.find("startup_delay_s"), std::string::npos);
  EXPECT_NE(report.find("goodput_mbps"), std::string::npos);
  EXPECT_NE(report.find("600.000"), std::string::npos);
}

}  // namespace
}  // namespace vodx::obs
