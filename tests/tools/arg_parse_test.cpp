// Strict CLI parsing: negative numeric values are values, not flags, and
// integer lists accept "lo-hi" / "lo..hi" ranges.
#include "arg_parse.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace vodx::tools {
namespace {

/// Owns argv storage for one parse run.
struct Argv {
  explicit Argv(std::vector<std::string> tokens) : storage(std::move(tokens)) {
    for (std::string& token : storage) pointers.push_back(token.data());
  }
  int argc() { return static_cast<int>(pointers.size()); }
  char** argv() { return pointers.data(); }

  std::vector<std::string> storage;
  std::vector<char*> pointers;
};

TEST(ArgParse, FlagShapeExcludesNegativeNumbers) {
  EXPECT_TRUE(Args::looks_like_flag("--jobs"));
  EXPECT_TRUE(Args::looks_like_flag("-v"));
  EXPECT_TRUE(Args::looks_like_flag("--"));
  EXPECT_FALSE(Args::looks_like_flag("-1"));
  EXPECT_FALSE(Args::looks_like_flag("-12.5"));
  EXPECT_FALSE(Args::looks_like_flag("-.5"));
  EXPECT_FALSE(Args::looks_like_flag("-"));
  EXPECT_FALSE(Args::looks_like_flag(""));
  EXPECT_FALSE(Args::looks_like_flag("value"));
  EXPECT_FALSE(Args::looks_like_flag(nullptr));
}

TEST(ArgParse, NegativeNumberIsConsumedAsAFlagValue) {
  Argv argv({"--budget", "-1"});
  Args args(argv.argc(), argv.argv());
  const char* value = args.value("--budget");
  ASSERT_NE(value, nullptr);
  EXPECT_STREQ(value, "-1");
  EXPECT_TRUE(args.done());
  EXPECT_FALSE(args.failed());
}

TEST(ArgParse, NegativeNumberIsAPositional) {
  Argv argv({"-0.5"});
  Args args(argv.argc(), argv.argv());
  const char* token = args.positional();
  ASSERT_NE(token, nullptr);
  EXPECT_STREQ(token, "-0.5");
  EXPECT_TRUE(args.done());
}

TEST(ArgParse, FlagIsNotAPositional) {
  Argv argv({"--jobs"});
  Args args(argv.argc(), argv.argv());
  EXPECT_EQ(args.positional(), nullptr);
  EXPECT_FALSE(args.done());
}

TEST(ArgParse, FlagMissingItsValueLatchesFailed) {
  Argv argv({"--jobs"});
  Args args(argv.argc(), argv.argv());
  EXPECT_EQ(args.value("--jobs"), nullptr);
  EXPECT_TRUE(args.failed());
  EXPECT_TRUE(args.done());
}

TEST(ArgParse, CanonicalLoopParsesAMixedCommandLine) {
  Argv argv({"--seeds", "0..3", "--progress", "positional", "--budget", "-1"});
  Args args(argv.argc(), argv.argv());
  std::string seeds;
  std::string budget;
  std::string pos;
  bool progress = false;
  while (!args.done()) {
    if (const char* v = args.value("--seeds")) {
      seeds = v;
    } else if (const char* v = args.value("--budget")) {
      budget = v;
    } else if (args.flag("--progress")) {
      progress = true;
    } else if (const char* token = args.positional()) {
      pos = token;
    } else {
      args.unknown();
    }
  }
  EXPECT_FALSE(args.failed());
  EXPECT_EQ(seeds, "0..3");
  EXPECT_EQ(budget, "-1");
  EXPECT_EQ(pos, "positional");
  EXPECT_TRUE(progress);
}

TEST(ArgParse, IntListExpandsDotDotRanges) {
  const std::vector<std::int64_t> got = parse_int_list("0..63", 0, 0, "seed");
  ASSERT_EQ(got.size(), 64u);
  EXPECT_EQ(got.front(), 0);
  EXPECT_EQ(got.back(), 63);
}

TEST(ArgParse, IntListExpandsDashRangesAndSingles) {
  const std::vector<std::int64_t> got =
      parse_int_list("1-3,7,10..11", 0, 0, "profile");
  EXPECT_EQ(got, (std::vector<std::int64_t>{1, 2, 3, 7, 10, 11}));
}

TEST(ArgParse, IntListAllUsesTheGivenBounds) {
  const std::vector<std::int64_t> got = parse_int_list("all", 2, 4, "profile");
  EXPECT_EQ(got, (std::vector<std::int64_t>{2, 3, 4}));
}

TEST(ArgParse, IntListSkipsMalformedTokens) {
  const std::vector<std::int64_t> got =
      parse_int_list("1,junk,3", 0, 0, "seed");
  EXPECT_EQ(got, (std::vector<std::int64_t>{1, 3}));
}

TEST(ArgParse, IntListSupportsNegativeEndpointsViaDotDot) {
  const std::vector<std::int64_t> got = parse_int_list("-2..1", 0, 0, "delta");
  EXPECT_EQ(got, (std::vector<std::int64_t>{-2, -1, 0, 1}));
}

}  // namespace
}  // namespace vodx::tools
