// Attribution engine unit tests on synthetic traces: evidence priority,
// capacity predicates, carry-forward caps, lookback, and determinism.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "diag/diagnose.h"
#include "obs/observer.h"

namespace vodx::diag {
namespace {

std::uint64_t g_seq = 0;

obs::Event event(Seconds t, obs::Category category, obs::EventKind kind,
                 const char* name, int track,
                 std::vector<obs::Field> fields = {}) {
  obs::Event e;
  e.sim_time = t;
  e.seq = ++g_seq;
  e.category = category;
  e.kind = kind;
  e.name = name;
  e.track = track;
  e.fields = std::move(fields);
  return e;
}

obs::Event capacity(Seconds t, double mbps) {
  return event(t, obs::Category::kLink, obs::EventKind::kCounter,
               "link.capacity_mbps", 0, {obs::Field::n("value", mbps)});
}

/// A session that played from t=0 with one stall and a 1 Mbps bottom rung.
core::SessionResult result_with_stall(Seconds start, Seconds end,
                                      Seconds session_end = 120) {
  core::SessionResult r;
  r.session_end = session_end;
  r.events.session_start = 0;
  r.events.playback_started = 0;
  r.events.stalls.push_back({start, end});
  core::AnalyzedTrack rung;
  rung.level = 0;
  rung.declared_bitrate = 1e6;
  r.traffic.video_tracks.push_back(rung);
  return r;
}

TEST(Diagnose, CleanSessionHasNoProblemTime) {
  core::SessionResult r;
  r.session_end = 60;
  r.events.session_start = 0;
  r.events.playback_started = 0;
  const Diagnosis d = diagnose(r, std::vector<obs::Event>{});
  EXPECT_TRUE(d.intervals.empty());
  EXPECT_DOUBLE_EQ(d.problem_s(), 0);
  EXPECT_DOUBLE_EQ(d.attributed_fraction(), 1);
  EXPECT_DOUBLE_EQ(d.stall_attributed_fraction(), 1);
}

TEST(Diagnose, SpansTileEveryProblemInterval) {
  core::SessionResult r = result_with_stall(10, 14);
  std::vector<obs::Event> events = {capacity(0, 5.0), capacity(12, 0.2)};
  const Diagnosis d = diagnose(r, events);
  ASSERT_EQ(d.intervals.size(), 1u);
  const IntervalDiagnosis& stall = d.intervals[0];
  ASSERT_FALSE(stall.spans.empty());
  EXPECT_DOUBLE_EQ(stall.spans.front().start, 10);
  EXPECT_DOUBLE_EQ(stall.spans.back().end, 14);
  for (std::size_t i = 1; i < stall.spans.size(); ++i) {
    EXPECT_DOUBLE_EQ(stall.spans[i].start, stall.spans[i - 1].end);
  }
}

TEST(Diagnose, FaultEvidenceOutranksCapacityDeficit) {
  core::SessionResult r = result_with_stall(10, 14);
  // Capacity argues link.deficit for the whole stall, but a fired fault
  // covers it too — the more specific cause must win.
  std::vector<obs::Event> events = {
      capacity(0, 0.1),
      event(10, obs::Category::kFault, obs::EventKind::kInstant,
            "fault.error", 0)};
  const Diagnosis d = diagnose(r, events);
  EXPECT_DOUBLE_EQ(d.stall_blamed_s[static_cast<int>(Cause::kFaultInjected)],
                   4);
  EXPECT_DOUBLE_EQ(d.stall_blamed_s[static_cast<int>(Cause::kLinkDeficit)],
                   0);
  ASSERT_EQ(d.intervals.size(), 1u);
  EXPECT_EQ(d.intervals[0].dominant(), Cause::kFaultInjected);
}

TEST(Diagnose, StartupFirstByteWaitBlamedOnOrigin) {
  core::SessionResult r;
  r.session_end = 60;
  r.events.session_start = 0;
  r.events.playback_started = 2;
  std::vector<obs::Event> events = {
      event(0, obs::Category::kTcp, obs::EventKind::kSpanBegin,
            "tcp.transfer", 3),
      event(2, obs::Category::kTcp, obs::EventKind::kSpanEnd, "tcp.transfer",
            3,
            {obs::Field::n("wait_s", 1.8), obs::Field::n("extra_wait_s", 1.0),
             obs::Field::n("restart", 0),
             obs::Field::n("sender_limited_s", 0),
             obs::Field::n("link_limited_s", 0.2)})};
  const Diagnosis d = diagnose(r, events);
  ASSERT_EQ(d.intervals.size(), 1u);
  EXPECT_TRUE(d.intervals[0].startup);
  EXPECT_GE(d.blamed_s[static_cast<int>(Cause::kOriginLatency)], 1.8);
  // Injected server latency (extra_wait_s above one RTT) is near-certain.
  EXPECT_GT(d.confidence[static_cast<int>(Cause::kOriginLatency)], 0.8);
  EXPECT_DOUBLE_EQ(d.attributed_fraction(), 1);
}

TEST(Diagnose, CapacityBelowLowestRungIsLinkDeficit) {
  core::SessionResult r = result_with_stall(20, 30);
  std::vector<obs::Event> events = {capacity(0, 5.0), capacity(18, 0.2)};
  const Diagnosis d = diagnose(r, events);
  EXPECT_DOUBLE_EQ(d.stall_blamed_s[static_cast<int>(Cause::kLinkDeficit)],
                   10);
  EXPECT_DOUBLE_EQ(d.stall_attributed_fraction(), 1);
}

TEST(Diagnose, FetchingAboveCapacityIsAbrOverestimate) {
  core::SessionResult r = result_with_stall(10, 14);
  // 1.5 Mbps sustains the 1 Mbps bottom rung but not the 3 Mbps rung the
  // player actually requested.
  core::SegmentDownload download;
  download.type = media::ContentType::kVideo;
  download.level = 4;
  download.declared_bitrate = 3e6;
  download.requested_at = 5;
  r.traffic.downloads.push_back(download);
  std::vector<obs::Event> events = {capacity(0, 1.5)};
  const Diagnosis d = diagnose(r, events);
  EXPECT_DOUBLE_EQ(
      d.stall_blamed_s[static_cast<int>(Cause::kAbrOverestimate)], 4);
  EXPECT_DOUBLE_EQ(d.stall_blamed_s[static_cast<int>(Cause::kLinkDeficit)],
                   0);
}

TEST(Diagnose, IdleRestartChargesTheRampWindow) {
  core::SessionResult r = result_with_stall(10, 11);
  std::vector<obs::Event> events = {
      capacity(0, 5.0),
      event(9.9, obs::Category::kTcp, obs::EventKind::kInstant,
            "tcp.idle_restart", 2, {obs::Field::n("idle_s", 12.0)})};
  const Diagnosis d = diagnose(r, events);
  EXPECT_DOUBLE_EQ(
      d.stall_blamed_s[static_cast<int>(Cause::kTcpSlowStartRestart)], 1);
}

TEST(Diagnose, BlackoutWindowsComeFromThePlan) {
  // Blackouts carve the bandwidth trace and fire no injector events; the
  // plan is the only evidence they existed.
  core::SessionResult r = result_with_stall(105, 115);
  faults::FaultPlan plan;
  plan.name = "blackout";
  plan.blackouts.push_back({100, 20});
  const Diagnosis d = diagnose(r, std::vector<obs::Event>{}, plan);
  EXPECT_DOUBLE_EQ(d.stall_blamed_s[static_cast<int>(Cause::kFaultInjected)],
                   10);
  const Diagnosis without = diagnose(r, std::vector<obs::Event>{});
  EXPECT_DOUBLE_EQ(
      without.stall_blamed_s[static_cast<int>(Cause::kFaultInjected)], 0);
}

TEST(Diagnose, FaultCarryForwardIsCapped) {
  // One fault at stall start, influence 8 s: direct evidence covers
  // [10, 18), carry-forward may extend at most another influence window, so
  // a 30 s stall keeps an unknown tail instead of blaming the fault for
  // everything.
  core::SessionResult r = result_with_stall(10, 40);
  std::vector<obs::Event> events = {
      event(10, obs::Category::kFault, obs::EventKind::kInstant,
            "fault.reset", 0)};
  DiagOptions options;
  options.lookback = 0;
  const Diagnosis d = diagnose(r, events, {}, options);
  EXPECT_DOUBLE_EQ(d.stall_blamed_s[static_cast<int>(Cause::kFaultInjected)],
                   16);
  EXPECT_DOUBLE_EQ(d.stall_blamed_s[static_cast<int>(Cause::kUnknown)], 14);
  EXPECT_LT(d.stall_attributed_fraction(), 1);
}

TEST(Diagnose, LookbackResolvesBlindStallOpening) {
  // The deficit that drained the buffer ended right before the stall
  // surfaced; the stall window itself holds no evidence. The pre-interval
  // lookback must find the deficit and carry it in (at reduced confidence).
  core::SessionResult r = result_with_stall(10, 20);
  std::vector<obs::Event> events = {capacity(0, 0.2), capacity(10, 5.0)};
  const Diagnosis d = diagnose(r, events);
  EXPECT_DOUBLE_EQ(d.stall_blamed_s[static_cast<int>(Cause::kLinkDeficit)],
                   10);
  ASSERT_EQ(d.intervals.size(), 1u);
  const BlameSpan& first = d.intervals[0].spans.front();
  EXPECT_LT(first.confidence, 0.95);
  EXPECT_NE(first.note.find("pre-interval"), std::string::npos);
}

TEST(Diagnose, OngoingStallRunsToSessionEnd) {
  core::SessionResult r = result_with_stall(100, -1, /*session_end=*/120);
  std::vector<obs::Event> events = {capacity(0, 0.2)};
  const Diagnosis d = diagnose(r, events);
  ASSERT_EQ(d.intervals.size(), 1u);
  EXPECT_DOUBLE_EQ(d.intervals[0].end, 120);
  EXPECT_DOUBLE_EQ(d.stall_s(), 20);
}

TEST(Diagnose, NeverStartedSessionIsOneStartupInterval) {
  core::SessionResult r;
  r.session_end = 30;
  r.events.session_start = 0;
  r.events.playback_started = -1;
  const Diagnosis d = diagnose(r, std::vector<obs::Event>{});
  ASSERT_EQ(d.intervals.size(), 1u);
  EXPECT_TRUE(d.intervals[0].startup);
  EXPECT_DOUBLE_EQ(d.intervals[0].duration(), 30);
}

TEST(Diagnose, DiagnosisTextIsDeterministic) {
  core::SessionResult r = result_with_stall(10, 14);
  std::vector<obs::Event> events = {
      capacity(0, 0.2),
      event(11, obs::Category::kFault, obs::EventKind::kInstant,
            "fault.error", 0)};
  const std::string a = diagnosis_text(diagnose(r, events));
  const std::string b = diagnosis_text(diagnose(r, events));
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("root-cause attribution"), std::string::npos);
}

TEST(Diagnose, ObserverOverloadRecordsRingDrops) {
  core::SessionResult r;
  r.session_end = 10;
  r.events.session_start = 0;
  r.events.playback_started = 0;
  obs::Observer observer(/*trace_capacity=*/2);
  for (int i = 0; i < 5; ++i) {
    observer.trace.instant(i, obs::Category::kPlayer, "tick", 0);
  }
  const Diagnosis d = diagnose(r, observer);
  EXPECT_EQ(d.trace_dropped, 3u);
  const std::string text = diagnosis_text(d);
  EXPECT_NE(text.find("WARNING"), std::string::npos);
}

}  // namespace
}  // namespace vodx::diag
