// Sweep-level diag rollups: grid-order folding must make every rendered
// artefact byte-identical across job counts, and the rollup arithmetic
// must conserve blamed time.
#include <gtest/gtest.h>

#include "diag/rollup.h"
#include "services/service_catalog.h"

namespace vodx::diag {
namespace {

batch::SweepConfig grid(int jobs) {
  batch::SweepConfig config;
  config.services = {services::service("H1"), services::service("H3"),
                     services::service("D1")};
  config.profiles = {2, 7};
  config.session_duration = 60;
  config.content_duration = 60;
  config.jobs = jobs;
  return config;
}

TEST(DiagRollup, ByteIdenticalAcrossJobCounts) {
  const SweepDiagnosis d1 = diagnose_sweep(grid(1));
  ASSERT_EQ(d1.failed, 0);
  ASSERT_EQ(d1.total_cells, 6);
  const std::string text1 = diag_text(d1);
  const std::string jsonl1 = diag_jsonl(d1);
  const std::string html1 = diag_html(d1);
  for (int jobs : {2, 8}) {
    const SweepDiagnosis dn = diagnose_sweep(grid(jobs));
    EXPECT_EQ(diag_text(dn), text1) << "diag text differs at jobs=" << jobs;
    EXPECT_EQ(diag_jsonl(dn), jsonl1) << "diag JSONL differs at jobs=" << jobs;
    EXPECT_EQ(diag_html(dn), html1) << "diag HTML differs at jobs=" << jobs;
  }
}

TEST(DiagRollup, DimensionsConserveBlamedTime) {
  const SweepDiagnosis d = diagnose_sweep(grid(2));
  ASSERT_EQ(d.failed, 0);
  for (const std::vector<DiagRollup>* dim :
       {&d.by_service, &d.by_profile, &d.by_fault}) {
    int cells = 0;
    double problem = 0;
    double blamed[kCauseCount] = {};
    for (const DiagRollup& rollup : *dim) {
      cells += rollup.cells;
      problem += rollup.problem_s;
      for (int c = 0; c < kCauseCount; ++c) blamed[c] += rollup.blamed_s[c];
    }
    EXPECT_EQ(cells, d.overall.cells);
    EXPECT_NEAR(problem, d.overall.problem_s, 1e-6);
    for (int c = 0; c < kCauseCount; ++c) {
      EXPECT_NEAR(blamed[c], d.overall.blamed_s[c], 1e-6);
    }
  }
  // Every cell's blame spans tile its problem intervals, so the per-cause
  // totals must add back up to the problem time.
  double total = 0;
  for (int c = 0; c < kCauseCount; ++c) total += d.overall.blamed_s[c];
  EXPECT_NEAR(total, d.overall.problem_s, 1e-6);
}

TEST(DiagRollup, FoldAccumulatesFractions) {
  DiagRollup rollup;
  rollup.key = "x";
  Diagnosis a;
  IntervalDiagnosis stall;
  stall.startup = false;
  stall.start = 10;
  stall.end = 14;
  stall.spans.push_back({10, 14, Cause::kLinkDeficit, 0.8, ""});
  a.intervals.push_back(stall);
  a.blamed_s[static_cast<int>(Cause::kLinkDeficit)] = 4;
  a.stall_blamed_s[static_cast<int>(Cause::kLinkDeficit)] = 4;
  a.confidence[static_cast<int>(Cause::kLinkDeficit)] = 0.8;
  rollup.fold(a);
  EXPECT_EQ(rollup.cells, 1);
  EXPECT_DOUBLE_EQ(rollup.problem_s, 4);
  EXPECT_DOUBLE_EQ(rollup.stall_s, 4);
  EXPECT_DOUBLE_EQ(rollup.attributed_fraction(), 1);
  EXPECT_DOUBLE_EQ(rollup.stall_attributed_fraction(), 1);
  EXPECT_NEAR(rollup.mean_confidence(), 0.8, 1e-9);

  // An all-unknown diagnosis drags the fraction down proportionally.
  Diagnosis b;
  IntervalDiagnosis unknown = stall;
  unknown.spans[0].cause = Cause::kUnknown;
  b.intervals.push_back(unknown);
  b.blamed_s[static_cast<int>(Cause::kUnknown)] = 4;
  b.stall_blamed_s[static_cast<int>(Cause::kUnknown)] = 4;
  rollup.fold(b);
  EXPECT_DOUBLE_EQ(rollup.attributed_fraction(), 0.5);
}

}  // namespace
}  // namespace vodx::diag
