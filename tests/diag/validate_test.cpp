// Precision/recall harness: catalog coverage, score sanity, determinism,
// and the fault-free baseline staying blame-free.
#include <gtest/gtest.h>

#include "diag/validate.h"
#include "faults/fault_plan.h"

namespace vodx::diag {
namespace {

ValidateOptions quick() {
  ValidateOptions options;
  options.services = {"H1", "D1"};
  options.duration = 120;
  return options;
}

TEST(Validate, CoversEveryCatalogScenario) {
  const ValidationReport report = validate(quick());
  ASSERT_EQ(report.scores.size(), faults::scenario_catalog().size());
  for (std::size_t i = 0; i < report.scores.size(); ++i) {
    EXPECT_EQ(report.scores[i].scenario,
              faults::scenario_catalog()[i].name);
    EXPECT_EQ(report.scores[i].cells, 2);
    EXPECT_GE(report.scores[i].precision(), 0);
    EXPECT_LE(report.scores[i].precision(), 1);
    EXPECT_GE(report.scores[i].recall(), 0);
    EXPECT_LE(report.scores[i].recall(), 1);
  }
}

TEST(Validate, FaultFreeBaselineHasNoFaultBlame) {
  const ValidationReport report = validate(quick());
  const ScenarioScore& none = report.scores.front();
  ASSERT_EQ(none.scenario, "none");
  EXPECT_DOUBLE_EQ(none.blamed_s, 0);
  EXPECT_DOUBLE_EQ(none.truth_s, 0);
  // Empty denominators score 1, not NaN — the gate must stay meaningful.
  EXPECT_DOUBLE_EQ(none.precision(), 1);
  EXPECT_DOUBLE_EQ(none.recall(), 1);
}

TEST(Validate, MeetsTheSmokeThreshold) {
  const ValidationReport report = validate(quick());
  EXPECT_GE(report.min_precision(), 0.9);
  EXPECT_GE(report.min_recall(), 0.9);
  EXPECT_TRUE(report.pass(0.9));
  EXPECT_FALSE(report.pass(1.01));
}

TEST(Validate, TextIsDeterministic) {
  const ValidationReport a = validate(quick());
  const ValidationReport b = validate(quick());
  EXPECT_EQ(validation_text(a, 0.9), validation_text(b, 0.9));
  EXPECT_NE(validation_text(a, 0.9).find("PASS"), std::string::npos);
}

}  // namespace
}  // namespace vodx::diag
