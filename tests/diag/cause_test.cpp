// Cause taxonomy: stable wire names, priority ordering, catalog coverage.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "diag/cause.h"

namespace vodx::diag {
namespace {

TEST(Cause, StableWireNames) {
  EXPECT_STREQ(to_string(Cause::kFaultInjected), "fault.injected");
  EXPECT_STREQ(to_string(Cause::kTcpSlowStartRestart),
               "tcp.slow_start_restart");
  EXPECT_STREQ(to_string(Cause::kOriginLatency), "origin.latency");
  EXPECT_STREQ(to_string(Cause::kLinkDeficit), "link.deficit");
  EXPECT_STREQ(to_string(Cause::kAbrOverestimate), "abr.overestimate");
  EXPECT_STREQ(to_string(Cause::kServerPacing), "server.pacing");
  EXPECT_STREQ(to_string(Cause::kUnknown), "unknown");
}

TEST(Cause, AllCausesCoversTaxonomyInPriorityOrder) {
  const auto& causes = all_causes();
  ASSERT_EQ(causes.size(), static_cast<std::size_t>(kCauseCount));
  std::set<std::string> names;
  for (std::size_t i = 0; i < causes.size(); ++i) {
    names.insert(to_string(causes[i]));
    if (i > 0) {
      // The display order IS the attribution priority (ascending enum).
      EXPECT_LT(static_cast<int>(causes[i - 1]), static_cast<int>(causes[i]));
    }
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kCauseCount));
  EXPECT_EQ(causes.back(), Cause::kUnknown);
}

TEST(Cause, InjectedFaultsOutrankNetworkArithmetic) {
  // The taxonomy resolves overlapping evidence by enum value: an injected
  // fault explains the TCP pathology it triggered, which in turn explains
  // the bandwidth arithmetic that is "also true" during any outage.
  EXPECT_LT(static_cast<int>(Cause::kFaultInjected),
            static_cast<int>(Cause::kTcpSlowStartRestart));
  EXPECT_LT(static_cast<int>(Cause::kTcpSlowStartRestart),
            static_cast<int>(Cause::kLinkDeficit));
  EXPECT_LT(static_cast<int>(Cause::kLinkDeficit),
            static_cast<int>(Cause::kServerPacing));
}

TEST(Cause, LabelsAndDescriptionsNonEmpty) {
  for (Cause cause : all_causes()) {
    EXPECT_GT(std::string(short_label(cause)).size(), 0u);
    EXPECT_GT(std::string(describe(cause)).size(), 0u);
  }
}

}  // namespace
}  // namespace vodx::diag
