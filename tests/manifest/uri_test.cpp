#include "manifest/uri.h"

#include <gtest/gtest.h>

namespace vodx::manifest {
namespace {

TEST(Uri, DirectoryOfPath) {
  EXPECT_EQ(uri_directory("/a/b/c.m3u8"), "/a/b/");
  EXPECT_EQ(uri_directory("/master.m3u8"), "/");
  EXPECT_EQ(uri_directory("noslash"), "/");
}

TEST(Uri, ResolveRelative) {
  EXPECT_EQ(uri_resolve("/master.m3u8", "video/0/playlist.m3u8"),
            "/video/0/playlist.m3u8");
  EXPECT_EQ(uri_resolve("/video/0/playlist.m3u8", "seg1.ts"),
            "/video/0/seg1.ts");
}

TEST(Uri, ResolveAbsolute) {
  EXPECT_EQ(uri_resolve("/a/b/c.mpd", "/other/media.mp4"), "/other/media.mp4");
}

TEST(Uri, NormalisesDotSegments) {
  EXPECT_EQ(uri_resolve("/a/b/c.mpd", "../x.mp4"), "/a/x.mp4");
  EXPECT_EQ(uri_resolve("/a/b/c.mpd", "./x.mp4"), "/a/b/x.mp4");
  EXPECT_EQ(uri_resolve("/a/c.mpd", "../../x.mp4"), "/x.mp4");
}

TEST(Uri, CollapsesDoubleSlashes) {
  EXPECT_EQ(uri_resolve("/a//b.mpd", "x.mp4"), "/a/x.mp4");
}

TEST(Uri, RootEdgeCases) {
  EXPECT_EQ(uri_resolve("/m.mpd", ".."), "/");
}

}  // namespace
}  // namespace vodx::manifest
