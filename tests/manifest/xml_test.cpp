#include "manifest/xml.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vodx::manifest {
namespace {

TEST(Xml, SerializeSimpleElement) {
  XmlNode node("Root");
  node.set_attr("a", "1");
  EXPECT_EQ(node.serialize(), "<Root a=\"1\"/>\n");
}

TEST(Xml, SerializeNestedWithText) {
  XmlNode node("Root");
  node.add_child("Child").set_text("hello");
  const std::string out = node.serialize();
  EXPECT_NE(out.find("<Child>hello</Child>"), std::string::npos);
}

TEST(Xml, AttributeOverwriteKeepsOrder) {
  XmlNode node("N");
  node.set_attr("a", "1");
  node.set_attr("b", "2");
  node.set_attr("a", "3");
  EXPECT_EQ(*node.attr("a"), "3");
  EXPECT_LT(node.serialize().find("a=\"3\""), node.serialize().find("b=\"2\""));
}

TEST(Xml, RequiredAttrThrowsWhenMissing) {
  XmlNode node("N");
  EXPECT_THROW(node.required_attr("missing"), ParseError);
}

TEST(Xml, ParseRoundTrip) {
  XmlNode root("MPD");
  root.set_attr("type", "static");
  XmlNode& period = root.add_child("Period");
  XmlNode& rep = period.add_child("Representation");
  rep.set_attr("id", "video/0");
  rep.add_child("BaseURL").set_text("video/0/media.mp4");

  auto parsed = parse_xml(serialize_document(root));
  EXPECT_EQ(parsed->name(), "MPD");
  EXPECT_EQ(*parsed->attr("type"), "static");
  const XmlNode* p = parsed->child("Period");
  ASSERT_NE(p, nullptr);
  const XmlNode* r = p->child("Representation");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->child("BaseURL")->text(), "video/0/media.mp4");
}

TEST(Xml, ParseSelfClosing) {
  auto parsed = parse_xml("<a><b x=\"1\"/><b x=\"2\"/></a>");
  EXPECT_EQ(parsed->children_named("b").size(), 2u);
  EXPECT_EQ(*parsed->children_named("b")[1]->attr("x"), "2");
}

TEST(Xml, ParseSkipsDeclarationAndComments) {
  auto parsed = parse_xml(
      "<?xml version=\"1.0\"?>\n<!-- hi -->\n<a><!-- inner --><b/></a>");
  EXPECT_EQ(parsed->name(), "a");
  EXPECT_NE(parsed->child("b"), nullptr);
}

TEST(Xml, EscapesSpecialCharacters) {
  XmlNode node("N");
  node.set_attr("a", "x<y&\"z\"");
  node.set_text("a<b>&c");
  auto parsed = parse_xml(node.serialize());
  EXPECT_EQ(*parsed->attr("a"), "x<y&\"z\"");
  EXPECT_EQ(parsed->text(), "a<b>&c");
}

TEST(Xml, ParseErrors) {
  EXPECT_THROW(parse_xml("<a><b></a>"), ParseError);      // mismatched close
  EXPECT_THROW(parse_xml("<a attr=1/>"), ParseError);     // unquoted attr
  EXPECT_THROW(parse_xml("<a>"), ParseError);             // unterminated
  EXPECT_THROW(parse_xml("<a/><b/>"), ParseError);        // two roots
  EXPECT_THROW(parse_xml("<a>&unknown;</a>"), ParseError);  // bad entity
  EXPECT_THROW(parse_xml(""), ParseError);
}

TEST(Xml, WhitespaceAroundTextIsTrimmed) {
  auto parsed = parse_xml("<a>  text  </a>");
  EXPECT_EQ(parsed->text(), "text");
}

}  // namespace
}  // namespace vodx::manifest
