#include "manifest/dash_mpd.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vodx::manifest {
namespace {

DashMpd sample_mpd() {
  DashMpd mpd;
  mpd.media_presentation_duration = 600;

  DashAdaptationSet video;
  video.content_type = media::ContentType::kVideo;
  DashRepresentation sidx_rep;
  sidx_rep.id = "video/0";
  sidx_rep.bandwidth = 1e6;
  sidx_rep.resolution = {854, 480};
  sidx_rep.base_url = "video/0/media.mp4";
  sidx_rep.index_range = ByteRange{0, 1023};
  video.representations.push_back(sidx_rep);

  DashRepresentation list_rep;
  list_rep.id = "video/1";
  list_rep.bandwidth = 2e6;
  list_rep.resolution = {1280, 720};
  list_rep.base_url = "video/1/media.mp4";
  list_rep.segments.push_back({4.0, ByteRange{0, 999}});
  list_rep.segments.push_back({4.0, ByteRange{1000, 2999}});
  list_rep.segments.push_back({2.0, ByteRange{3000, 3999}});
  video.representations.push_back(list_rep);
  mpd.adaptation_sets.push_back(video);

  DashAdaptationSet audio;
  audio.content_type = media::ContentType::kAudio;
  DashRepresentation audio_rep;
  audio_rep.id = "audio/0";
  audio_rep.bandwidth = 96e3;
  audio_rep.base_url = "audio/0/media.mp4";
  audio_rep.index_range = ByteRange{0, 511};
  audio.representations.push_back(audio_rep);
  mpd.adaptation_sets.push_back(audio);
  return mpd;
}

TEST(DashMpd, RoundTripPreservesStructure) {
  DashMpd parsed = DashMpd::parse(sample_mpd().serialize());
  ASSERT_EQ(parsed.adaptation_sets.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed.media_presentation_duration, 600);

  const DashAdaptationSet& video = parsed.adaptation_sets[0];
  EXPECT_EQ(video.content_type, media::ContentType::kVideo);
  ASSERT_EQ(video.representations.size(), 2u);
  const DashRepresentation& sidx_rep = video.representations[0];
  EXPECT_EQ(sidx_rep.id, "video/0");
  ASSERT_TRUE(sidx_rep.index_range.has_value());
  EXPECT_EQ(sidx_rep.index_range->last, 1023);
  EXPECT_EQ(sidx_rep.resolution.height, 480);

  const DashRepresentation& list_rep = video.representations[1];
  ASSERT_EQ(list_rep.segments.size(), 3u);
  EXPECT_DOUBLE_EQ(list_rep.segments[2].duration, 2.0);
  EXPECT_EQ(list_rep.segments[1].media_range, (ByteRange{1000, 2999}));

  EXPECT_EQ(parsed.adaptation_sets[1].content_type,
            media::ContentType::kAudio);
}

TEST(DashMpd, TimelineRunLengthEncoding) {
  // Two equal durations then a shorter tail: should produce S@r=1 + S.
  const std::string text = sample_mpd().serialize();
  EXPECT_NE(text.find("r=\"1\""), std::string::npos);
}

TEST(DashMpd, RejectsMissingPeriod) {
  EXPECT_THROW(
      DashMpd::parse("<MPD mediaPresentationDuration=\"PT10S\"/>"),
      ParseError);
}

TEST(DashMpd, RejectsRepresentationWithoutSegments) {
  const char* text =
      "<MPD mediaPresentationDuration=\"PT10S\"><Period><AdaptationSet>"
      "<Representation id=\"x\" bandwidth=\"1\"><BaseURL>u</BaseURL>"
      "</Representation></AdaptationSet></Period></MPD>";
  EXPECT_THROW(DashMpd::parse(text), ParseError);
}

TEST(DashMpd, RejectsNonMpdRoot) {
  EXPECT_THROW(DashMpd::parse("<NotMPD/>"), ParseError);
}

TEST(Iso8601, FormatsDurations) {
  EXPECT_EQ(iso8601_duration(90.5), "PT1M30.500S");
  EXPECT_EQ(iso8601_duration(3600), "PT1H0.000S");
  EXPECT_EQ(iso8601_duration(12), "PT12.000S");
}

TEST(Iso8601, ParsesDurations) {
  EXPECT_DOUBLE_EQ(parse_iso8601_duration("PT600S"), 600);
  EXPECT_DOUBLE_EQ(parse_iso8601_duration("PT1M30.5S"), 90.5);
  EXPECT_DOUBLE_EQ(parse_iso8601_duration("PT2H"), 7200);
  EXPECT_DOUBLE_EQ(parse_iso8601_duration("PT1H1M1S"), 3661);
}

TEST(Iso8601, RoundTrip) {
  for (double secs : {0.0, 1.5, 59.9, 61.0, 3599.0, 3601.25, 600.0}) {
    EXPECT_NEAR(parse_iso8601_duration(iso8601_duration(secs)), secs, 1e-3);
  }
}

TEST(Iso8601, RejectsMalformed) {
  EXPECT_THROW(parse_iso8601_duration("600S"), ParseError);
  EXPECT_THROW(parse_iso8601_duration("PT5X"), ParseError);
  EXPECT_THROW(parse_iso8601_duration("PT12"), ParseError);
}

}  // namespace
}  // namespace vodx::manifest
