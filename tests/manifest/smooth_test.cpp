#include "manifest/smooth.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vodx::manifest {
namespace {

SmoothManifest sample_manifest() {
  SmoothManifest manifest;
  manifest.duration = 9;

  SmoothStreamIndex video;
  video.type = media::ContentType::kVideo;
  video.url_template = "QualityLevels({bitrate})/Fragments(video={start time})";
  video.quality_levels.push_back({1e6, {854, 480}});
  video.quality_levels.push_back({2e6, {1280, 720}});
  video.chunk_durations = {3, 3, 3};
  manifest.stream_indexes.push_back(video);

  SmoothStreamIndex audio;
  audio.type = media::ContentType::kAudio;
  audio.url_template = "QualityLevels({bitrate})/Fragments(audio={start time})";
  audio.quality_levels.push_back({96e3, {}});
  audio.chunk_durations = {2, 2, 2, 2, 1};
  manifest.stream_indexes.push_back(audio);
  return manifest;
}

TEST(Smooth, RoundTripPreservesStreams) {
  SmoothManifest parsed = SmoothManifest::parse(sample_manifest().serialize());
  ASSERT_EQ(parsed.stream_indexes.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed.duration, 9);

  const SmoothStreamIndex& video = parsed.stream_indexes[0];
  EXPECT_EQ(video.type, media::ContentType::kVideo);
  ASSERT_EQ(video.quality_levels.size(), 2u);
  EXPECT_DOUBLE_EQ(video.quality_levels[1].bitrate, 2e6);
  EXPECT_EQ(video.quality_levels[1].resolution.width, 1280);
  ASSERT_EQ(video.chunk_durations.size(), 3u);
  EXPECT_DOUBLE_EQ(video.chunk_durations[0], 3.0);

  const SmoothStreamIndex& audio = parsed.stream_indexes[1];
  EXPECT_EQ(audio.type, media::ContentType::kAudio);
  EXPECT_DOUBLE_EQ(audio.chunk_durations.back(), 1.0);
}

TEST(Smooth, FragmentUrlSubstitutesPlaceholders) {
  SmoothStreamIndex video = sample_manifest().stream_indexes[0];
  EXPECT_EQ(video.fragment_url(1e6, 30000000),
            "QualityLevels(1000000)/Fragments(video=30000000)");
}

TEST(Smooth, ChunkStartTicks) {
  SmoothStreamIndex video = sample_manifest().stream_indexes[0];
  EXPECT_EQ(video.chunk_start_ticks(0), 0u);
  EXPECT_EQ(video.chunk_start_ticks(1), 30000000u);
  EXPECT_EQ(video.chunk_start_ticks(2), 60000000u);
}

TEST(Smooth, SerializedAttributesPresent) {
  const std::string text = sample_manifest().serialize();
  EXPECT_NE(text.find("SmoothStreamingMedia"), std::string::npos);
  EXPECT_NE(text.find("TimeScale=\"10000000\""), std::string::npos);
  EXPECT_NE(text.find("Chunks=\"3\""), std::string::npos);
  EXPECT_NE(text.find("QualityLevels=\"2\""), std::string::npos);
}

TEST(Smooth, RejectsWrongRoot) {
  EXPECT_THROW(SmoothManifest::parse("<MPD Duration=\"1\"/>"), ParseError);
}

TEST(Smooth, RejectsMissingDuration) {
  EXPECT_THROW(SmoothManifest::parse("<SmoothStreamingMedia/>"), ParseError);
}

}  // namespace
}  // namespace vodx::manifest
