#include "manifest/hls.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vodx::manifest {
namespace {

TEST(HlsMaster, SerializeParseRoundTrip) {
  HlsMasterPlaylist master;
  master.variants.push_back({800e3, std::nullopt, {640, 360}, "video/0/p.m3u8"});
  master.variants.push_back({2.4e6, 1.2e6, {1280, 720}, "video/1/p.m3u8"});

  HlsMasterPlaylist parsed = HlsMasterPlaylist::parse(master.serialize());
  ASSERT_EQ(parsed.variants.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed.variants[0].bandwidth, 800e3);
  EXPECT_FALSE(parsed.variants[0].average_bandwidth.has_value());
  EXPECT_EQ(parsed.variants[0].resolution.height, 360);
  EXPECT_EQ(parsed.variants[0].uri, "video/0/p.m3u8");
  ASSERT_TRUE(parsed.variants[1].average_bandwidth.has_value());
  EXPECT_DOUBLE_EQ(*parsed.variants[1].average_bandwidth, 1.2e6);
}

TEST(HlsMaster, ParsesQuotedAttributesWithCommas) {
  const char* text =
      "#EXTM3U\n"
      "#EXT-X-STREAM-INF:BANDWIDTH=1000000,CODECS=\"avc1.4d,mp4a.40\","
      "RESOLUTION=854x480\n"
      "v.m3u8\n";
  HlsMasterPlaylist parsed = HlsMasterPlaylist::parse(text);
  ASSERT_EQ(parsed.variants.size(), 1u);
  EXPECT_EQ(parsed.variants[0].resolution.width, 854);
}

TEST(HlsMaster, RejectsMissingHeader) {
  EXPECT_THROW(HlsMasterPlaylist::parse("#EXT-X-STREAM-INF:BANDWIDTH=1\nv\n"),
               ParseError);
}

TEST(HlsMaster, RejectsStreamInfWithoutBandwidth) {
  EXPECT_THROW(HlsMasterPlaylist::parse(
                   "#EXTM3U\n#EXT-X-STREAM-INF:RESOLUTION=1x1\nv\n"),
               ParseError);
}

TEST(HlsMaster, RejectsDanglingStreamInf) {
  EXPECT_THROW(
      HlsMasterPlaylist::parse("#EXTM3U\n#EXT-X-STREAM-INF:BANDWIDTH=1\n"),
      ParseError);
}

TEST(HlsMedia, SerializeParseRoundTrip) {
  HlsMediaPlaylist playlist;
  playlist.target_duration = 4;
  playlist.segments.push_back({4.0, "seg0.ts", std::nullopt});
  playlist.segments.push_back({3.5, "seg1.ts", std::nullopt});

  HlsMediaPlaylist parsed = HlsMediaPlaylist::parse(playlist.serialize());
  ASSERT_EQ(parsed.segments.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed.target_duration, 4.0);
  EXPECT_NEAR(parsed.segments[1].duration, 3.5, 1e-3);
  EXPECT_EQ(parsed.segments[1].uri, "seg1.ts");
}

TEST(HlsMedia, ByteRangeRoundTrip) {
  HlsMediaPlaylist playlist;
  playlist.target_duration = 4;
  playlist.segments.push_back({4.0, "media.ts", ByteRange{100, 299}});
  HlsMediaPlaylist parsed = HlsMediaPlaylist::parse(playlist.serialize());
  ASSERT_TRUE(parsed.segments[0].byterange.has_value());
  EXPECT_EQ(parsed.segments[0].byterange->first, 100);
  EXPECT_EQ(parsed.segments[0].byterange->last, 299);
}

TEST(HlsMedia, SerializedFormHasEndlist) {
  HlsMediaPlaylist playlist;
  playlist.target_duration = 4;
  playlist.segments.push_back({4.0, "seg0.ts", std::nullopt});
  EXPECT_NE(playlist.serialize().find("#EXT-X-ENDLIST"), std::string::npos);
  EXPECT_NE(playlist.serialize().find("#EXT-X-PLAYLIST-TYPE:VOD"),
            std::string::npos);
}

TEST(HlsMedia, IgnoresContentAfterEndlist) {
  const char* text =
      "#EXTM3U\n#EXT-X-TARGETDURATION:4\n#EXTINF:4.0,\nseg0.ts\n"
      "#EXT-X-ENDLIST\n#EXTINF:4.0,\nghost.ts\n";
  HlsMediaPlaylist parsed = HlsMediaPlaylist::parse(text);
  EXPECT_EQ(parsed.segments.size(), 1u);
}

TEST(HlsMedia, RejectsUriWithoutExtinf) {
  EXPECT_THROW(
      HlsMediaPlaylist::parse("#EXTM3U\n#EXT-X-TARGETDURATION:4\nseg0.ts\n"),
      ParseError);
}

TEST(HlsMedia, RejectsTrailingExtinf) {
  EXPECT_THROW(
      HlsMediaPlaylist::parse("#EXTM3U\n#EXTINF:4.0,\n"),
      ParseError);
}

TEST(HlsMedia, TargetDurationCeilsFractional) {
  HlsMediaPlaylist playlist;
  playlist.target_duration = 3.2;
  playlist.segments.push_back({3.2, "s.ts", std::nullopt});
  EXPECT_NE(playlist.serialize().find("#EXT-X-TARGETDURATION:4"),
            std::string::npos);
}

}  // namespace
}  // namespace vodx::manifest
