#include "manifest/presentation.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vodx::manifest {
namespace {

ClientTrack make_track(const std::string& id, Bps declared, int segments,
                       Seconds seg_dur, Bytes seg_size = 0) {
  ClientTrack track;
  track.id = id;
  track.declared_bitrate = declared;
  for (int i = 0; i < segments; ++i) {
    ClientSegment s;
    s.index = i;
    s.duration = seg_dur;
    s.size = seg_size;
    track.segments.push_back(s);
  }
  track.sizes_known = seg_size > 0;
  return track;
}

TEST(ByteRangeTest, ParseAndToString) {
  ByteRange r = ByteRange::parse("100-299");
  EXPECT_EQ(r.first, 100);
  EXPECT_EQ(r.last, 299);
  EXPECT_EQ(r.length(), 200);
  EXPECT_EQ(r.to_string(), "100-299");
}

TEST(ByteRangeTest, ParseRejectsMalformed) {
  EXPECT_THROW(ByteRange::parse("100"), ParseError);
  EXPECT_THROW(ByteRange::parse("300-100"), ParseError);
  EXPECT_THROW(ByteRange::parse("a-b"), ParseError);
}

TEST(ClientTrack, DurationAndStarts) {
  ClientTrack t = make_track("v", 1e6, 5, 4);
  EXPECT_DOUBLE_EQ(t.duration(), 20);
  EXPECT_DOUBLE_EQ(t.segment_start(0), 0);
  EXPECT_DOUBLE_EQ(t.segment_start(3), 12);
  EXPECT_EQ(t.segment_index_at(0), 0);
  EXPECT_EQ(t.segment_index_at(11.9), 2);
  EXPECT_EQ(t.segment_index_at(99), 4);
}

TEST(ClientTrack, AverageActualBitrate) {
  ClientTrack with = make_track("v", 1e6, 5, 4, 500000);
  EXPECT_DOUBLE_EQ(with.average_actual_bitrate(), 500000 * 8.0 / 4.0);
  ClientTrack without = make_track("v", 1e6, 5, 4);
  EXPECT_DOUBLE_EQ(without.average_actual_bitrate(), 0);
}

TEST(ClientSegment, ActualBitrateOnlyWhenSized) {
  ClientSegment s;
  s.duration = 4;
  s.size = 0;
  EXPECT_DOUBLE_EQ(s.actual_bitrate(), 0);
  s.size = 1000;
  EXPECT_DOUBLE_EQ(s.actual_bitrate(), 2000);
}

TEST(Presentation, SortTracksAscending) {
  Presentation p;
  p.video.push_back(make_track("hi", 2e6, 2, 4));
  p.video.push_back(make_track("lo", 1e6, 2, 4));
  p.sort_tracks();
  EXPECT_EQ(p.video[0].id, "lo");
  EXPECT_EQ(p.video_level_of("hi"), 1);
  EXPECT_EQ(p.video_level_of("none"), -1);
}

TEST(Presentation, DurationFromFirstVideoTrack) {
  Presentation p;
  p.video.push_back(make_track("v", 1e6, 3, 5));
  EXPECT_DOUBLE_EQ(p.duration(), 15);
  EXPECT_FALSE(p.separate_audio());
  p.audio.push_back(make_track("a", 96e3, 10, 2));
  EXPECT_TRUE(p.separate_audio());
}

}  // namespace
}  // namespace vodx::manifest
