// Population runner: arrival-process purity, jobs-independence of the full
// report, and the shared-cell hosting behaviour the paper's population
// extrapolation rests on.
#include "pop/population.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "services/service_catalog.h"

namespace vodx::pop {
namespace {

PopulationConfig small_config() {
  PopulationConfig config;
  config.services = {"H1", "D1"};
  config.towers = {7, 3};
  config.seed = 11;
  config.horizon = 120;
  config.arrivals.rate_per_min = 4;
  config.watch_time = 60;
  config.watch_sigma = 0.4;
  return config;
}

TEST(TowerArrivals, PureFunctionOfCoordinates) {
  const PopulationConfig config = small_config();
  const std::vector<Arrival> first = tower_arrivals(config, 0, 2);
  const std::vector<Arrival> second = tower_arrivals(config, 0, 2);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].at, second[i].at);
    EXPECT_EQ(first[i].watch, second[i].watch);
    EXPECT_EQ(first[i].service_index, second[i].service_index);
    EXPECT_EQ(first[i].content_seed, second[i].content_seed);
  }
}

TEST(TowerArrivals, SortedInWindowAndWellFormed) {
  const PopulationConfig config = small_config();
  const std::vector<Arrival> arrivals = tower_arrivals(config, 1, 2);
  ASSERT_FALSE(arrivals.empty());
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    EXPECT_GE(arrivals[i].at, 0.0);
    EXPECT_LT(arrivals[i].at, config.horizon);
    EXPECT_GE(arrivals[i].watch, 1.0);
    EXPECT_GE(arrivals[i].service_index, 0);
    EXPECT_LT(arrivals[i].service_index, 2);
    if (i > 0) {
      EXPECT_GE(arrivals[i].at, arrivals[i - 1].at);
    }
  }
}

TEST(TowerArrivals, TowersDrawIndependentStreams) {
  const PopulationConfig config = small_config();
  const std::vector<Arrival> t0 = tower_arrivals(config, 0, 2);
  const std::vector<Arrival> t1 = tower_arrivals(config, 1, 2);
  // Identical schedules on different towers would mean the tower coordinate
  // never reached the seed derivation.
  bool identical = t0.size() == t1.size();
  for (std::size_t i = 0; identical && i < t0.size(); ++i) {
    identical = t0[i].at == t1[i].at;
  }
  EXPECT_FALSE(identical);
}

TEST(TowerArrivals, FlashCrowdLandsInsideItsWindow) {
  PopulationConfig config = small_config();
  config.arrivals.rate_per_min = 0;  // flash arrivals only
  config.arrivals.flash_at = 30;
  config.arrivals.flash_window = 10;
  config.arrivals.flash_arrivals = 25;
  const std::vector<Arrival> arrivals = tower_arrivals(config, 0, 2);
  EXPECT_EQ(arrivals.size(), 25u);
  for (const Arrival& a : arrivals) {
    EXPECT_GE(a.at, 30.0);
    EXPECT_LT(a.at, 40.0);
  }
}

TEST(TowerArrivals, CapBoundsTheSchedule) {
  PopulationConfig config = small_config();
  config.arrivals.rate_per_min = 60;
  config.max_sessions_per_tower = 5;
  const std::vector<Arrival> arrivals = tower_arrivals(config, 0, 2);
  EXPECT_EQ(arrivals.size(), 5u);
}

TEST(TowerArrivals, DiurnalModulationShiftsMass) {
  // Amplitude 1 with a period equal to the horizon puts the trough on the
  // second half: the first half must carry (much) more than the second.
  PopulationConfig config = small_config();
  config.horizon = 200;
  config.arrivals.rate_per_min = 30;
  config.arrivals.diurnal_amplitude = 1.0;
  config.arrivals.diurnal_period = 200;
  const std::vector<Arrival> arrivals = tower_arrivals(config, 0, 2);
  ASSERT_FALSE(arrivals.empty());
  const auto split = std::count_if(
      arrivals.begin(), arrivals.end(),
      [&](const Arrival& a) { return a.at < config.horizon / 2; });
  EXPECT_GT(static_cast<double>(split),
            0.75 * static_cast<double>(arrivals.size()));
}

TEST(PopulationDeterminism, JobsOneAndEightAreByteIdentical) {
  PopulationConfig config = small_config();
  config.arrivals.flash_at = 40;
  config.arrivals.flash_window = 15;
  config.arrivals.flash_arrivals = 6;
  config.jobs = 1;
  const PopulationReport serial = run_population(config);
  config.jobs = 8;
  const PopulationReport threaded = run_population(config);
  EXPECT_EQ(population_jsonl(serial), population_jsonl(threaded));
  EXPECT_EQ(population_text(serial), population_text(threaded));
  EXPECT_EQ(population_csv(serial), population_csv(threaded));
  EXPECT_GT(serial.total_sessions, 0);
}

TEST(Population, OutcomesCoverEveryArrivalAndFoldSanely) {
  PopulationConfig config = small_config();
  config.towers = {7};
  const std::vector<Arrival> expected = tower_arrivals(config, 0, 2);
  const PopulationReport report = run_population(config);
  ASSERT_EQ(report.towers.size(), 1u);
  const TowerReport& tower = report.towers[0];
  EXPECT_EQ(tower.profile_id, 7);
  EXPECT_EQ(tower.sessions, static_cast<int>(expected.size()));
  EXPECT_GE(tower.peak_concurrent, 1);
  EXPECT_LE(tower.peak_concurrent, tower.sessions);
  EXPECT_GE(tower.jain, 0.0);
  EXPECT_LE(tower.jain, 1.0 + 1e-12);
  int started = 0;
  for (const SessionOutcome& outcome : tower.outcomes) {
    EXPECT_GE(outcome.departure, outcome.arrival);
    EXPECT_LE(outcome.departure, config.horizon);
    EXPECT_GE(outcome.total_bytes, 0);
    EXPECT_GE(outcome.stall_count, 0);
    if (outcome.startup_delay >= 0) ++started;
  }
  EXPECT_EQ(report.total_sessions - report.never_started, started);
  // Per-service rollup counts partition the sessions.
  int rollup_total = 0;
  for (const ServiceRollup& rollup : report.by_service) {
    rollup_total += rollup.sessions;
  }
  EXPECT_EQ(rollup_total, report.total_sessions);
}

TEST(Population, UnknownServiceAndBadProfileThrow) {
  PopulationConfig config = small_config();
  config.services = {"nope"};
  EXPECT_THROW(run_population(config), ConfigError);
  config = small_config();
  config.towers = {99};
  EXPECT_THROW(run_population(config), ConfigError);
}

}  // namespace
}  // namespace vodx::pop
