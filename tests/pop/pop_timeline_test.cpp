// Population telemetry: jobs-independence of the sampled timelines, the
// merge identity between the population timeline and the tower fold,
// bin-edge handling in the schedule prefill, the session-cap accounting,
// peak bookkeeping, and the population diag rollup.
#include "pop/pop_timeline.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "pop/population.h"

namespace vodx::pop {
namespace {

PopulationConfig telemetry_config() {
  PopulationConfig config;
  config.services = {"H1", "D1"};
  config.towers = {7, 3};
  config.seed = 11;
  config.horizon = 90;
  config.arrivals.rate_per_min = 4;
  config.arrivals.flash_at = 30;
  config.arrivals.flash_window = 10;
  config.arrivals.flash_arrivals = 5;
  config.watch_time = 45;
  config.watch_sigma = 0.4;
  config.collect_timeline = true;
  return config;
}

TEST(PopulationTimeline, JobsOneTwoEightAreByteIdentical) {
  PopulationConfig config = telemetry_config();
  config.jobs = 1;
  const PopulationReport serial = run_population(config);
  config.jobs = 2;
  const PopulationReport two = run_population(config);
  config.jobs = 8;
  const PopulationReport eight = run_population(config);
  const std::string csv = population_timeline_csv(serial);
  EXPECT_EQ(csv, population_timeline_csv(two));
  EXPECT_EQ(csv, population_timeline_csv(eight));
  const std::string jsonl = population_timeline_jsonl(serial);
  EXPECT_EQ(jsonl, population_timeline_jsonl(two));
  EXPECT_EQ(jsonl, population_timeline_jsonl(eight));
  EXPECT_FALSE(serial.timeline.empty());
  EXPECT_GT(serial.total_sessions, 0);
}

TEST(PopulationTimeline, PopulationRowIsTheTowerFold) {
  const PopulationReport report = run_population(telemetry_config());
  ASSERT_EQ(report.towers.size(), 2u);
  obs::Timeline folded;
  for (const TowerReport& tower : report.towers) {
    folded.merge_from(tower.timeline);
  }
  EXPECT_EQ(obs::timeline_csv(folded), obs::timeline_csv(report.timeline));
}

TEST(PopulationTimeline, SampledConcurrencyIsBoundedByPeak) {
  const PopulationReport report = run_population(telemetry_config());
  for (const TowerReport& tower : report.towers) {
    const int concurrent = tower.timeline.find("concurrent");
    ASSERT_GE(concurrent, 0);
    double max_sampled = 0;
    for (int bin = 0; bin < tower.timeline.bin_count(); ++bin) {
      max_sampled =
          std::max(max_sampled, tower.timeline.value(concurrent, bin));
    }
    EXPECT_LE(max_sampled, tower.peak_concurrent);
    EXPECT_GT(max_sampled, 0);
  }
}

TEST(PopulationTimeline, ScheduleSeriesHandlesBinEdges) {
  obs::Timeline timeline = make_tower_timeline(1.0, 5.0, false);
  std::vector<Arrival> arrivals(3);
  arrivals[0].at = 0.0;   // exactly on the first boundary
  arrivals[0].watch = 2.0;  // departs at exactly 2.0 -> bin 2
  arrivals[1].at = 1.0;   // exactly on an interior boundary -> bin 1
  arrivals[1].watch = 10.0;  // survives the horizon: no departure
  arrivals[2].at = 4.5;
  arrivals[2].watch = 0.5;  // departs at exactly the horizon: no departure
  record_schedule(timeline, arrivals, 5.0);
  const int arrivals_series = timeline.find("arrivals");
  const int departures_series = timeline.find("departures");
  EXPECT_DOUBLE_EQ(timeline.value(arrivals_series, 0), 1);
  EXPECT_DOUBLE_EQ(timeline.value(arrivals_series, 1), 1);
  EXPECT_DOUBLE_EQ(timeline.value(arrivals_series, 4), 1);
  EXPECT_DOUBLE_EQ(timeline.value(departures_series, 2), 1);
  double total_departures = 0;
  for (int bin = 0; bin < timeline.bin_count(); ++bin) {
    total_departures += timeline.value(departures_series, bin);
  }
  EXPECT_DOUBLE_EQ(total_departures, 1);
}

TEST(PopulationTimeline, CapDropsAreCountedNotSilent) {
  PopulationConfig config = telemetry_config();
  config.max_sessions_per_tower = 3;
  int capped = -1;
  const std::vector<Arrival> uncapped_schedule =
      tower_arrivals(telemetry_config(), 0, 2);
  const std::vector<Arrival> capped_schedule =
      tower_arrivals(config, 0, 2, &capped);
  ASSERT_GT(uncapped_schedule.size(), 3u);
  EXPECT_EQ(capped_schedule.size(), 3u);
  EXPECT_EQ(capped,
            static_cast<int>(uncapped_schedule.size()) - 3);

  const PopulationReport report = run_population(config);
  EXPECT_EQ(report.towers[0].capped_arrivals, capped);
  const std::string text = population_text(report);
  EXPECT_NE(text.find("warning: tower 0 dropped"), std::string::npos);
  const std::string jsonl = population_jsonl(report);
  EXPECT_NE(jsonl.find("\"capped_arrivals\""), std::string::npos);
  const std::string tower_csv = population_tower_csv(report);
  EXPECT_NE(tower_csv.find("capped_arrivals"), std::string::npos);
}

TEST(PopulationTimeline, TimeOfPeakIsAnArrivalInstantAtOrBeforeHorizon) {
  const PopulationReport report = run_population(telemetry_config());
  for (const TowerReport& tower : report.towers) {
    ASSERT_GT(tower.peak_concurrent, 0);
    EXPECT_GT(tower.time_of_peak, 0);
    EXPECT_LE(tower.time_of_peak, 90.0);
  }
}

TEST(PopulationTimeline, DiagRollupAttributesAndFoldsAcrossTowers) {
  PopulationConfig config = telemetry_config();
  config.diagnose = true;
  config.diag_session_budget = 0;  // every session
  const PopulationReport report = run_population(config);
  ASSERT_TRUE(report.diagnosed);
  EXPECT_EQ(report.diag.sessions_diagnosed, report.total_sessions);
  EXPECT_EQ(report.diag.sessions_skipped, 0);
  EXPECT_GT(report.diag.problem_s, 0);
  // The population rollup is exactly the tower fold.
  TowerDiag folded;
  for (const TowerReport& tower : report.towers) {
    folded.merge_from(tower.diag);
  }
  EXPECT_EQ(folded.sessions_diagnosed, report.diag.sessions_diagnosed);
  EXPECT_DOUBLE_EQ(folded.problem_s, report.diag.problem_s);
  EXPECT_DOUBLE_EQ(folded.stall_s, report.diag.stall_s);
  // Per-bin blame seconds agree with the rollup's stall + startup totals.
  double binned = 0;
  for (int c = 0; c < diag::kCauseCount; ++c) {
    const int series = report.timeline.find(blame_series_name(c));
    ASSERT_GE(series, 0);
    for (int bin = 0; bin < report.timeline.bin_count(); ++bin) {
      binned += report.timeline.value(series, bin);
    }
  }
  EXPECT_NEAR(binned, report.diag.problem_s, 1e-6);
}

TEST(PopulationTimeline, DiagBudgetBoundsDiagnosedSessions) {
  PopulationConfig config = telemetry_config();
  config.diagnose = true;
  config.diag_session_budget = 2;
  const PopulationReport report = run_population(config);
  EXPECT_EQ(report.diag.sessions_diagnosed,
            2 * static_cast<int>(report.towers.size()));
  EXPECT_EQ(report.diag.sessions_diagnosed + report.diag.sessions_skipped,
            report.total_sessions);
}

TEST(PopulationTimeline, HtmlDashboardHasOneRowPerTowerPlusPopulation) {
  const PopulationReport report = run_population(telemetry_config());
  const std::string html = population_timeline_html(report);
  EXPECT_NE(html.find("<tr><td>0</td>"), std::string::npos);
  EXPECT_NE(html.find("<tr><td>1</td>"), std::string::npos);
  EXPECT_NE(html.find("<tr><td>pop</td>"), std::string::npos);
  EXPECT_NE(html.find("<svg"), std::string::npos);
}

}  // namespace
}  // namespace vodx::pop
