// HostedSession::stop() racing an in-flight origin retry/backoff
// (ISSUE 10 satellite): the origin tier's backoffs are *virtual* time
// folded into response latency, never simulator events, so a departure
// mid-backoff must leak nothing — no events firing for the dead session, no
// bytes trickling in after stop, and no double-counted http.resets. The
// suite also pins jobs-independence of a population run with the origin
// tier enabled. Runs under TSan in scripts/check.sh (NAME_FILTER
// PopulationOriginStopRace).
#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "core/session_factory.h"
#include "faults/fault_plan.h"
#include "net/link.h"
#include "net/simulator.h"
#include "obs/observer.h"
#include "origin/origin.h"
#include "pop/population.h"

namespace vodx::pop {
namespace {

/// A session whose origin is dark (retry/backoff constantly engaged) and
/// whose wire resets fire often — the worst case for a mid-flight stop.
core::SessionConfig race_config(obs::Observer* observer) {
  core::SessionFactory factory;
  factory.session_duration = 120;
  factory.content_duration = 120;
  factory.origin = origin::hardened_origin();
  core::SessionConfig config = factory.config("H1", 7, 2017, 42);

  faults::FaultPlan plan;
  plan.name = "stop-race";
  plan.seed = 9;
  faults::ResetFault reset;
  reset.match.url_contains = "seg";
  reset.probability = 0.4;
  plan.resets.push_back(reset);
  plan.dc_blackouts.push_back(faults::DcBlackoutFault{10, 40});
  config.fault_plan = plan;
  config.origin_state = std::make_shared<origin::OriginState>();
  config.observer = observer;
  return config;
}

struct RaceOutcome {
  long long resets_at_stop = 0;
  long long resets_at_end = 0;
  Bytes bytes_at_stop = 0;
  Bytes bytes_at_end = 0;
  origin::OriginState::Totals totals_at_stop;
  origin::OriginState::Totals totals_at_end;
};

RaceOutcome run_race(Seconds stop_at) {
  obs::Observer observer;
  core::SessionConfig config = race_config(&observer);
  net::Simulator sim(config.tick);
  sim.set_core(config.sim_core);
  net::Link link(sim, config.trace, config.rtt);
  core::HostedSession session(sim, link, config);
  session.start();
  sim.run_until(stop_at);

  session.stop();
  EXPECT_TRUE(session.finished());
  EXPECT_EQ(link.attached(), 0);
  session.stop();  // idempotent mid-backoff too

  RaceOutcome outcome;
  outcome.resets_at_stop = observer.metrics.counter("http.resets").value();
  outcome.bytes_at_stop =
      session.finish_light(sim.now()).ground_truth.total_bytes;
  outcome.totals_at_stop = config.origin_state->totals;

  // Run the (now empty) world to the horizon: a leaked event for the dead
  // session would fire here.
  sim.run_until(config.session_duration);
  outcome.resets_at_end = observer.metrics.counter("http.resets").value();
  outcome.bytes_at_end =
      session.finish_light(sim.now()).ground_truth.total_bytes;
  outcome.totals_at_end = config.origin_state->totals;
  return outcome;
}

TEST(PopulationOriginStopRace, StopMidBackoffLeaksNoEventsOrBytes) {
  // t=20 is mid-blackout: segment fetches are riding retry backoffs and the
  // breaker is exercising the secondary when the session departs.
  const RaceOutcome outcome = run_race(20);
  EXPECT_GT(outcome.bytes_at_stop, 0);
  EXPECT_EQ(outcome.bytes_at_end, outcome.bytes_at_stop);
  EXPECT_EQ(outcome.totals_at_end.misses, outcome.totals_at_stop.misses);
  EXPECT_EQ(outcome.totals_at_end.retries, outcome.totals_at_stop.retries);
  EXPECT_EQ(outcome.totals_at_end.secondary,
            outcome.totals_at_stop.secondary);
}

TEST(PopulationOriginStopRace, HttpResetsAreNotDoubleCounted) {
  const RaceOutcome outcome = run_race(20);
  // Whatever resets fired before departure stay counted exactly once: the
  // counter is frozen from stop() onwards.
  EXPECT_EQ(outcome.resets_at_end, outcome.resets_at_stop);
}

TEST(PopulationOriginStopRace, StopOutcomeIsDeterministic) {
  const RaceOutcome first = run_race(20);
  const RaceOutcome second = run_race(20);
  EXPECT_EQ(first.resets_at_stop, second.resets_at_stop);
  EXPECT_EQ(first.bytes_at_stop, second.bytes_at_stop);
  EXPECT_EQ(first.totals_at_stop.misses, second.totals_at_stop.misses);
  EXPECT_EQ(first.totals_at_stop.retries, second.totals_at_stop.retries);
  EXPECT_EQ(first.totals_at_stop.errors, second.totals_at_stop.errors);
}

TEST(PopulationOriginStopRace, PopulationWithOriginIsJobsIndependent) {
  PopulationConfig config;
  config.services = {"H1", "D1"};
  config.towers = {7};
  config.seed = 5;
  config.horizon = 60;
  config.watch_time = 30;
  config.arrivals.rate_per_min = 6;
  config.shared_content = true;
  config.origin = origin::hardened_origin();
  config.fault_plan.dc_blackouts.push_back(faults::DcBlackoutFault{15, 20});

  config.jobs = 1;
  const PopulationReport serial = run_population(config);
  config.jobs = 4;
  const PopulationReport threaded = run_population(config);
  EXPECT_EQ(population_text(serial), population_text(threaded));
  EXPECT_TRUE(serial.origin_enabled);
  EXPECT_GT(serial.origin_totals.hits + serial.origin_totals.misses, 0);
  // Shared content through one edge per tower: the flash-free steady state
  // still produces real cross-session hits.
  EXPECT_GT(serial.origin_totals.hits, 0);
}

}  // namespace
}  // namespace vodx::pop
