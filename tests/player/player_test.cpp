#include "player/player.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "testing/fixtures.h"

namespace vodx::player {
namespace {

using vodx::testing::small_asset;

struct PlayerHarness {
  PlayerHarness(PlayerConfig config, net::BandwidthTrace trace,
                media::VideoAsset asset,
                http::OriginConfig origin_config = {manifest::Protocol::kHls})
      : sim(0.01),
        link(sim, std::move(trace), 0.05),
        origin(std::move(asset), origin_config),
        proxy(origin),
        player(sim, link, proxy, origin_config.protocol, std::move(config)) {}

  void play(Seconds duration) {
    player.start(origin.manifest_url());
    sim.run_until(duration);
  }

  net::Simulator sim;
  net::Link link;
  http::OriginServer origin;
  http::Proxy proxy;
  Player player;
};

PlayerConfig basic_config() {
  PlayerConfig config;
  config.startup_buffer = 8;
  config.startup_bitrate = 800e3;
  config.pausing_threshold = 30;
  config.resuming_threshold = 25;
  config.tcp.rtt = 0.05;
  return config;
}

TEST(Player, PlaysShortContentToTheEnd) {
  PlayerHarness h(basic_config(), net::BandwidthTrace::constant(6e6, 200),
                  small_asset(60));
  h.play(120);
  EXPECT_EQ(h.player.state(), PlayerState::kEnded);
  EXPECT_NEAR(h.player.position(), 60, 0.1);
  EXPECT_TRUE(h.player.events().stalls.empty());
  EXPECT_GT(h.player.events().startup_delay(), 0);
}

TEST(Player, StartupWaitsForBufferSeconds) {
  PlayerConfig config = basic_config();
  config.startup_buffer = 12;  // three 4 s segments
  PlayerHarness h(config, net::BandwidthTrace::constant(6e6, 200),
                  small_asset(60));
  h.play(120);
  // Playback must not have begun before 3 segments were fetched: count
  // video downloads that completed before playback_started.
  int before = 0;
  for (const auto& r : h.proxy.log().records()) {
    if (r.url.find("seg") != std::string::npos && r.finished() &&
        r.completed_at <= h.player.events().playback_started) {
      ++before;
    }
  }
  EXPECT_GE(before, 3);
}

TEST(Player, StartupMinSegmentsConstraint) {
  // Same startup seconds, but also demand 3 segments: with 4 s segments the
  // 8 s requirement alone would start after 2.
  PlayerConfig with_count = basic_config();
  with_count.startup_min_segments = 3;
  PlayerHarness a(with_count, net::BandwidthTrace::constant(6e6, 200),
                  small_asset(60));
  a.play(120);

  PlayerConfig without = basic_config();
  PlayerHarness b(without, net::BandwidthTrace::constant(6e6, 200),
                  small_asset(60));
  b.play(120);

  EXPECT_GT(a.player.events().startup_delay(),
            b.player.events().startup_delay());
}

TEST(Player, StallsWhenBandwidthCollapses) {
  // Bandwidth dies at t=20: the buffer drains and playback stalls.
  PlayerHarness h(basic_config(),
                  net::BandwidthTrace::step(4e6, 50e3, 20, 300),
                  small_asset(120));
  h.play(200);
  EXPECT_GE(h.player.events().stalls.size(), 1u);
  EXPECT_GT(h.player.events().total_stall_time(200), 5);
}

TEST(Player, RecoversFromStall) {
  // A 30 s outage, then bandwidth returns: playback must resume.
  net::BandwidthTrace trace = net::BandwidthTrace::from_samples(
      {{0, 4e6}, {20, 30e3}, {50, 4e6}}, 300);
  PlayerHarness h(basic_config(), std::move(trace), small_asset(120));
  h.play(250);
  EXPECT_EQ(h.player.state(), PlayerState::kEnded);
  ASSERT_GE(h.player.events().stalls.size(), 1u);
  EXPECT_GE(h.player.events().stalls[0].end, 0);  // stall closed
}

TEST(Player, SeekbarTicksOncePerSecond) {
  PlayerHarness h(basic_config(), net::BandwidthTrace::constant(6e6, 200),
                  small_asset(60));
  std::vector<std::pair<Seconds, int>> samples;
  h.player.set_seekbar_callback(
      [&](Seconds wall, int progress) { samples.emplace_back(wall, progress); });
  h.play(100);
  ASSERT_GT(samples.size(), 50u);
  // 1 Hz cadence throughout; the very last update is the end-of-playback
  // notification and may arrive off-cycle.
  for (std::size_t i = 1; i + 1 < samples.size(); ++i) {
    EXPECT_NEAR(samples[i].first - samples[i - 1].first, 1.0, 0.02);
  }
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].second, samples[i - 1].second);
  }
  EXPECT_EQ(samples.back().second, 60);
}

TEST(Player, DisplayedSegmentsAreContiguous) {
  PlayerHarness h(basic_config(), net::BandwidthTrace::constant(3e6, 200),
                  small_asset(60));
  h.play(120);
  const auto& displayed = h.player.events().displayed;
  ASSERT_EQ(displayed.size(), 15u);
  for (std::size_t i = 0; i < displayed.size(); ++i) {
    EXPECT_EQ(displayed[i].index, static_cast<int>(i));
  }
}

TEST(Player, PauseResumeCyclesRespectThresholds) {
  PlayerConfig config = basic_config();
  config.pausing_threshold = 20;
  config.resuming_threshold = 12;
  PlayerHarness h(config, net::BandwidthTrace::constant(10e6, 400),
                  small_asset(300));
  h.player.start(h.origin.manifest_url());
  double max_buffer = 0;
  bool saw_resume_region = false;
  for (int step = 0; step < 2000; ++step) {
    h.sim.run_for(0.1);
    const double buffered = h.player.video_buffered();
    max_buffer = std::max(max_buffer, buffered);
    if (h.player.state() == PlayerState::kPlaying && buffered > 0 &&
        buffered < 13) {
      saw_resume_region = true;
    }
  }
  // Buffer stays near the pausing threshold (+ one segment of overshoot).
  EXPECT_LE(max_buffer, 20 + 4 + 0.5);
  EXPECT_GE(max_buffer, 19);
  EXPECT_TRUE(saw_resume_region);
}

TEST(Player, FailsCleanlyOnMissingManifest) {
  PlayerHarness h(basic_config(), net::BandwidthTrace::constant(6e6, 100),
                  small_asset(60));
  h.player.start("/wrong.m3u8");
  h.sim.run_until(10);
  EXPECT_EQ(h.player.state(), PlayerState::kFailed);
  EXPECT_FALSE(h.player.events().failure.empty());
}

TEST(Player, SeparateAudioGatesPlayback) {
  // DASH with separate audio: playback requires both pipelines.
  PlayerConfig config = basic_config();
  config.max_connections = 2;
  http::OriginConfig origin_config;
  origin_config.protocol = manifest::Protocol::kDash;
  PlayerHarness h(config, net::BandwidthTrace::constant(4e6, 200),
                  small_asset(60, /*separate_audio=*/true), origin_config);
  h.play(150);
  EXPECT_EQ(h.player.state(), PlayerState::kEnded);
  // Audio segments were fetched too.
  int audio_fetches = 0;
  for (const auto& r : h.proxy.log().records()) {
    if (r.url.find("/audio/") != std::string::npos &&
        r.range && r.range->first > 0) {
      ++audio_fetches;
    }
  }
  EXPECT_GT(audio_fetches, 20);  // 60 s of 2 s audio segments
}

TEST(Player, CascadeSrRedownloadsSuffix) {
  PlayerConfig config = basic_config();
  config.sr = SrPolicy::kCascadeExoV1;
  config.sr_min_buffer = 8;
  config.pausing_threshold = 60;
  config.resuming_threshold = 50;
  // Low bandwidth start, then a big jump: the player upswitches and
  // replaces buffered low-quality segments.
  PlayerHarness h(config, net::BandwidthTrace::step(1e6, 8e6, 40, 300),
                  small_asset(120));
  h.play(250);
  EXPECT_FALSE(h.player.events().replacements.empty());
}

TEST(Player, PerSegmentSrOnlyUpgrades) {
  PlayerConfig config = basic_config();
  config.sr = SrPolicy::kPerSegment;
  config.sr_min_buffer = 6;
  config.pausing_threshold = 40;
  config.resuming_threshold = 30;
  PlayerHarness h(config, net::BandwidthTrace::step(1e6, 8e6, 40, 300),
                  small_asset(120));
  h.play(250);
  const auto& replacements = h.player.events().replacements;
  ASSERT_FALSE(replacements.empty());
  for (const auto& r : replacements) {
    EXPECT_GT(r.new_level, r.old_level)
        << "improved SR must never downgrade a buffered segment";
  }
}

TEST(Player, NoSrMeansNoReplacements) {
  PlayerConfig config = basic_config();
  config.sr = SrPolicy::kNone;
  PlayerHarness h(config, net::BandwidthTrace::step(1e6, 8e6, 40, 300),
                  small_asset(120));
  h.play(250);
  EXPECT_TRUE(h.player.events().replacements.empty());
}

}  // namespace
}  // namespace vodx::player
