#include <gtest/gtest.h>

#include "player/player.h"
#include "testing/fixtures.h"

namespace vodx::player {
namespace {

using vodx::testing::small_asset;

struct SeekHarness {
  explicit SeekHarness(manifest::Protocol protocol = manifest::Protocol::kHls,
                       Bps bandwidth = 6e6)
      : sim(0.01),
        link(sim, net::BandwidthTrace::constant(bandwidth, 400), 0.05),
        origin(small_asset(120, protocol != manifest::Protocol::kHls),
               make_origin_config(protocol)),
        proxy(origin),
        player(sim, link, proxy, protocol, make_player_config(protocol)) {
    player.start(origin.manifest_url());
  }

  static http::OriginConfig make_origin_config(manifest::Protocol protocol) {
    http::OriginConfig config;
    config.protocol = protocol;
    return config;
  }

  static PlayerConfig make_player_config(manifest::Protocol protocol) {
    PlayerConfig config;
    config.startup_buffer = 8;
    config.startup_bitrate = 800e3;
    config.pausing_threshold = 30;
    config.resuming_threshold = 25;
    config.tcp.rtt = 0.05;
    config.max_connections = protocol == manifest::Protocol::kHls ? 1 : 2;
    return config;
  }

  net::Simulator sim;
  net::Link link;
  http::OriginServer origin;
  http::Proxy proxy;
  Player player;
};

TEST(Seek, ForwardOutOfBufferJumpsAndResumes) {
  SeekHarness h;
  h.sim.run_until(20);
  ASSERT_EQ(h.player.state(), PlayerState::kPlaying);
  h.player.seek(80);
  h.sim.run_until(40);
  EXPECT_EQ(h.player.state(), PlayerState::kPlaying);
  EXPECT_GT(h.player.position(), 80);
  EXPECT_LT(h.player.position(), 110);
  ASSERT_EQ(h.player.events().seeks.size(), 1u);
  EXPECT_DOUBLE_EQ(h.player.events().seeks[0].to, 80);
}

TEST(Seek, BackwardRefetchesEarlierContent) {
  SeekHarness h;
  h.sim.run_until(60);  // well past the start
  ASSERT_GT(h.player.position(), 30);
  h.player.seek(5);
  h.sim.run_until(90);
  EXPECT_EQ(h.player.state(), PlayerState::kPlaying);
  EXPECT_GT(h.player.position(), 5);
  EXPECT_LT(h.player.position(), 45);
  // Segment 1 (covering t=5) was downloaded twice: once at startup, once
  // after the seek.
  int fetches_of_seg1 = 0;
  for (const auto& r : h.proxy.log().records()) {
    if (r.url.find("seg1.ts") != std::string::npos && !r.aborted) {
      ++fetches_of_seg1;
    }
  }
  EXPECT_GE(fetches_of_seg1, 2);
}

TEST(Seek, AbortsInFlightTransfers) {
  SeekHarness h(manifest::Protocol::kHls, 150e3);  // slow: long transfers
  // Mid-startup: the first segment (~170 KB at 150 kbps) is still in
  // flight when the user seeks away.
  h.sim.run_until(10);
  h.player.seek(100);
  h.sim.run_until(11);
  int aborted = 0;
  for (const auto& r : h.proxy.log().records()) {
    if (r.aborted) ++aborted;
  }
  EXPECT_GE(aborted, 1);
}

TEST(Seek, CountsAsStallWhilePlaying) {
  SeekHarness h;
  h.sim.run_until(20);
  const std::size_t stalls_before = h.player.events().stalls.size();
  h.player.seek(100);
  h.sim.run_until(21);
  EXPECT_EQ(h.player.events().stalls.size(), stalls_before + 1);
  h.sim.run_until(60);
  EXPECT_GE(h.player.events().stalls.back().end, 0);  // closed on resume
}

TEST(Seek, WithinBufferedRegionIsInstant) {
  SeekHarness h;
  h.sim.run_until(20);  // ~25-30 s buffered ahead
  const Seconds pos = h.player.position();
  h.player.seek(pos + 10);  // inside the buffer
  // Never leaves the playing state: the content is already there.
  for (int i = 0; i < 100; ++i) {
    h.sim.run_for(0.1);
    EXPECT_EQ(h.player.state(), PlayerState::kPlaying);
  }
  EXPECT_GT(h.player.position(), pos + 10);
}

TEST(Seek, WorksWithSeparateAudio) {
  SeekHarness h(manifest::Protocol::kDash);
  h.sim.run_until(20);
  h.player.seek(90);
  h.sim.run_until(50);
  EXPECT_EQ(h.player.state(), PlayerState::kPlaying);
  EXPECT_GT(h.player.position(), 90);
}

TEST(Seek, ClampsBeyondDuration) {
  SeekHarness h;
  h.sim.run_until(20);
  h.player.seek(1e9);
  h.sim.run_until(60);
  // Lands near the end and finishes.
  EXPECT_EQ(h.player.state(), PlayerState::kEnded);
}

TEST(Seek, IgnoredBeforePlaybackExists) {
  SeekHarness h;
  h.player.seek(50);  // still resolving manifests
  EXPECT_TRUE(h.player.events().seeks.empty());
}

TEST(Seek, SeekbarReflectsTheJump) {
  SeekHarness h;
  std::vector<int> progress;
  h.player.set_seekbar_callback(
      [&](Seconds, int p) { progress.push_back(p); });
  h.sim.run_until(20);
  h.player.seek(80);
  h.sim.run_until(40);
  // The series jumps from ~15 to >= 80 at the seek.
  bool jumped = false;
  for (std::size_t i = 1; i < progress.size(); ++i) {
    if (progress[i] - progress[i - 1] > 30) jumped = true;
  }
  EXPECT_TRUE(jumped);
}

}  // namespace
}  // namespace vodx::player
