#include "player/abr.h"

#include <gtest/gtest.h>

namespace vodx::player {
namespace {

manifest::Presentation four_rung_presentation(bool sizes_known = false) {
  manifest::Presentation p;
  for (Bps declared : {400e3, 800e3, 1.6e6, 3.2e6}) {
    manifest::ClientTrack track;
    track.id = "v" + std::to_string(static_cast<int>(declared));
    track.declared_bitrate = declared;
    for (int i = 0; i < 20; ++i) {
      manifest::ClientSegment s;
      s.index = i;
      s.duration = 4;
      // Actual bitrate = half the declared, except segment 10 which spikes
      // to 0.9x declared (a complex scene).
      const double factor = i == 10 ? 0.9 : 0.5;
      s.size = sizes_known ? bytes_for(declared * factor, 4) : 0;
      track.segments.push_back(s);
    }
    track.sizes_known = sizes_known;
    p.video.push_back(std::move(track));
  }
  return p;
}

AbrContext context_for(const manifest::Presentation& p, Bps estimate,
                       int last_level = 0, int samples = 10,
                       int next_index = 0) {
  AbrContext context;
  context.presentation = &p;
  context.bandwidth_estimate = estimate;
  context.estimator_samples = samples;
  context.last_level = last_level;
  context.next_index = next_index;
  context.startup_level = 1;
  context.buffer = 20;
  return context;
}

PlayerConfig throughput_config(double safety = 0.75) {
  PlayerConfig config;
  config.abr = AbrKind::kThroughput;
  config.bandwidth_safety = safety;
  config.switch_confirmation = 1;  // no damping unless a test wants it
  return config;
}

TEST(ThroughputAbr, PicksHighestAffordable) {
  manifest::Presentation p = four_rung_presentation();
  auto abr = make_abr(throughput_config());
  EXPECT_EQ(abr->select_video_level(context_for(p, 1.2e6)), 1);  // 0.9M budget
  EXPECT_EQ(abr->select_video_level(context_for(p, 5e6)), 3);
  EXPECT_EQ(abr->select_video_level(context_for(p, 0.2e6)), 0);
}

TEST(ThroughputAbr, SafetyFactorScalesBudget) {
  manifest::Presentation p = four_rung_presentation();
  auto conservative = make_abr(throughput_config(0.5));
  auto aggressive = make_abr(throughput_config(1.2));
  EXPECT_EQ(conservative->select_video_level(context_for(p, 2e6)), 1);
  EXPECT_EQ(aggressive->select_video_level(context_for(p, 2e6)), 2);
}

TEST(ThroughputAbr, HoldsStartupLevelUntilEnoughSamples) {
  manifest::Presentation p = four_rung_presentation();
  PlayerConfig config = throughput_config();
  config.estimator_min_samples = 2;
  auto abr = make_abr(config);
  EXPECT_EQ(abr->select_video_level(context_for(p, 5e6, 0, /*samples=*/1)), 1);
  EXPECT_EQ(abr->select_video_level(context_for(p, 5e6, 0, /*samples=*/2)), 3);
}

TEST(ThroughputAbr, UpSwitchNeedsConfirmation) {
  manifest::Presentation p = four_rung_presentation();
  PlayerConfig config = throughput_config();
  config.switch_confirmation = 2;
  auto abr = make_abr(config);
  // One optimistic estimate: held. A second: allowed.
  EXPECT_EQ(abr->select_video_level(context_for(p, 5e6, 1)), 1);
  EXPECT_EQ(abr->select_video_level(context_for(p, 5e6, 1)), 3);
}

TEST(ThroughputAbr, DownSwitchIsImmediate) {
  manifest::Presentation p = four_rung_presentation();
  PlayerConfig config = throughput_config();
  config.switch_confirmation = 2;
  auto abr = make_abr(config);
  EXPECT_EQ(abr->select_video_level(context_for(p, 0.6e6, 3)), 0);
}

TEST(ThroughputAbr, DecreaseBufferDampsDownSwitch) {
  manifest::Presentation p = four_rung_presentation();
  PlayerConfig config = throughput_config();
  config.decrease_buffer = 30;
  auto abr = make_abr(config);
  AbrContext high_buffer = context_for(p, 0.6e6, 3);
  high_buffer.buffer = 50;
  EXPECT_EQ(abr->select_video_level(high_buffer), 3);  // ride it out
  AbrContext low_buffer = context_for(p, 0.6e6, 3);
  low_buffer.buffer = 20;
  EXPECT_EQ(abr->select_video_level(low_buffer), 0);  // buffer spent, drop
}

TEST(ThroughputAbr, ActualBitrateModeUsesSegmentSizes) {
  manifest::Presentation p = four_rung_presentation(/*sizes_known=*/true);
  PlayerConfig config = throughput_config();
  config.use_actual_bitrate = true;
  config.actual_bitrate_lookahead = 3;
  auto abr = make_abr(config);
  // Actual need is half the declared: with a 1.2 Mbps estimate the budget is
  // 0.9 Mbps which affords actual 0.8 Mbps = declared 1.6 Mbps (level 2);
  // declared-only logic picked level 1 here.
  EXPECT_EQ(abr->select_video_level(context_for(p, 1.2e6)), 2);
}

TEST(ThroughputAbr, ActualBitrateModeSeesUpcomingSpike) {
  manifest::Presentation p = four_rung_presentation(/*sizes_known=*/true);
  PlayerConfig config = throughput_config();
  config.use_actual_bitrate = true;
  config.actual_bitrate_lookahead = 3;
  auto abr = make_abr(config);
  // Next segments include the 0.9x-declared spike at index 10: level 2's
  // worst upcoming need is 1.44 Mbps > 0.9 Mbps budget, so back to level 1.
  EXPECT_EQ(abr->select_video_level(context_for(p, 1.2e6, 0, 10, /*next=*/9)),
            1);
}

TEST(TrackRequiredRate, FallsBackToDeclared) {
  manifest::Presentation p = four_rung_presentation(false);
  PlayerConfig config;
  config.use_actual_bitrate = true;  // but sizes unknown
  EXPECT_DOUBLE_EQ(track_required_rate(p.video[2], 0, config), 1.6e6);
}

TEST(OscillatingAbr, JittersAroundTheDeclaredRateBaseline) {
  // Baseline at a 1 Mbps estimate: the highest track with declared bitrate
  // within the estimate is level 1 (800 kbps); buffer-slope bursts perturb
  // the selection around it, so it never settles.
  manifest::Presentation p = four_rung_presentation(true);
  PlayerConfig config;
  config.abr = AbrKind::kOscillating;
  auto abr = make_abr(config);
  AbrContext flat = context_for(p, 1e6, 1);
  EXPECT_EQ(abr->select_video_level(flat), 1);
  AbrContext growing = context_for(p, 1e6, 1);
  growing.buffer_delta = 3.0;  // a segment-fill burst
  EXPECT_EQ(abr->select_video_level(growing), 2);
  AbrContext shrinking = context_for(p, 1e6, 1);
  shrinking.buffer_delta = -4.0;  // a real drain
  EXPECT_EQ(abr->select_video_level(shrinking), 0);
  AbrContext noise = context_for(p, 1e6, 1);
  noise.buffer_delta = -1.0;  // inter-fill playback drain: ignored
  EXPECT_EQ(abr->select_video_level(noise), 1);
}

TEST(OscillatingAbr, DoubleStepOnStrongSlope) {
  manifest::Presentation p = four_rung_presentation(true);
  PlayerConfig config;
  config.abr = AbrKind::kOscillating;
  auto abr = make_abr(config);
  AbrContext surging = context_for(p, 0.4e6, 0);  // baseline level 0
  surging.buffer_delta = 9.0;
  EXPECT_EQ(abr->select_video_level(surging), 2);  // non-consecutive switch
}

TEST(OscillatingAbr, StaysWithinLadderBounds) {
  manifest::Presentation p = four_rung_presentation(true);
  PlayerConfig config;
  config.abr = AbrKind::kOscillating;
  auto abr = make_abr(config);
  AbrContext top = context_for(p, 50e6, 3);
  top.buffer_delta = 10.0;
  EXPECT_EQ(abr->select_video_level(top), 3);
  AbrContext bottom = context_for(p, 1e6, 0);
  bottom.buffer_delta = -10.0;
  EXPECT_EQ(abr->select_video_level(bottom), 0);
}

}  // namespace
}  // namespace vodx::player
