#include "player/media_source.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace vodx::player {
namespace {

using vodx::testing::small_asset;

struct SourceHarness {
  SourceHarness(media::VideoAsset asset, http::OriginConfig origin_config,
                MediaSource::Options options)
      : sim(0.01),
        link(sim, net::BandwidthTrace::constant(8e6, 120), 0.05),
        origin(std::move(asset), origin_config),
        proxy(origin),
        client(sim, link, proxy, client_options()),
        source(client, options) {}

  static http::HttpClient::Options client_options() {
    http::HttpClient::Options options;
    options.max_connections = 1;
    options.tcp.rtt = 0.05;
    return options;
  }

  manifest::Presentation resolve() {
    manifest::Presentation result;
    bool done = false;
    std::string error;
    source.resolve(
        origin.manifest_url(),
        [&](manifest::Presentation p) {
          result = std::move(p);
          done = true;
        },
        [&](const std::string& reason) { error = reason; });
    sim.run_until(30);
    EXPECT_TRUE(done) << error;
    return result;
  }

  net::Simulator sim;
  net::Link link;
  http::OriginServer origin;
  http::Proxy proxy;
  http::HttpClient client;
  MediaSource source;
};

TEST(MediaSource, HlsPresentationMatchesAsset) {
  media::VideoAsset asset = small_asset();
  const int segment_count = asset.video_track(0).segment_count();
  SourceHarness h(std::move(asset), {manifest::Protocol::kHls},
                  {manifest::Protocol::kHls, false});
  manifest::Presentation p = h.resolve();
  ASSERT_EQ(p.video.size(), 3u);
  EXPECT_FALSE(p.separate_audio());
  EXPECT_DOUBLE_EQ(p.video[0].declared_bitrate, 400e3);
  EXPECT_DOUBLE_EQ(p.video[2].declared_bitrate, 1.6e6);
  EXPECT_EQ(static_cast<int>(p.video[1].segments.size()), segment_count);
  EXPECT_FALSE(p.video[0].sizes_known);
  EXPECT_EQ(p.video[1].segments[3].ref.url, "/video/1/seg3.ts");
}

TEST(MediaSource, DashSidxExposesExactSizes) {
  media::VideoAsset asset = small_asset(60, true);
  const Bytes expected_size = asset.video_track(2).segment(7).size;
  http::OriginConfig config;
  config.protocol = manifest::Protocol::kDash;
  config.dash_index = manifest::DashIndexMode::kSidx;
  SourceHarness h(std::move(asset), config,
                  {manifest::Protocol::kDash, false});
  manifest::Presentation p = h.resolve();
  ASSERT_EQ(p.video.size(), 3u);
  ASSERT_EQ(p.audio.size(), 1u);
  EXPECT_TRUE(p.video[2].sizes_known);
  EXPECT_EQ(p.video[2].segments[7].size, expected_size);
  ASSERT_TRUE(p.video[2].segments[7].ref.range.has_value());
  EXPECT_EQ(p.video[2].segments[7].ref.range->length(), expected_size);
}

TEST(MediaSource, DashSidxRangesAreContiguous) {
  http::OriginConfig config;
  config.protocol = manifest::Protocol::kDash;
  SourceHarness h(small_asset(), config, {manifest::Protocol::kDash, false});
  manifest::Presentation p = h.resolve();
  const auto& segments = p.video[0].segments;
  for (std::size_t i = 1; i < segments.size(); ++i) {
    EXPECT_EQ(segments[i].ref.range->first,
              segments[i - 1].ref.range->last + 1);
  }
}

TEST(MediaSource, DashSegmentListNeedsNoSidxFetch) {
  http::OriginConfig config;
  config.protocol = manifest::Protocol::kDash;
  config.dash_index = manifest::DashIndexMode::kSegmentList;
  SourceHarness h(small_asset(), config, {manifest::Protocol::kDash, false});
  manifest::Presentation p = h.resolve();
  EXPECT_TRUE(p.video[0].sizes_known);
  // Only the MPD crossed the wire.
  EXPECT_EQ(h.proxy.log().records().size(), 1u);
}

TEST(MediaSource, DashSidxFetchesOneIndexPerTrack) {
  http::OriginConfig config;
  config.protocol = manifest::Protocol::kDash;
  SourceHarness h(small_asset(60, true), config,
                  {manifest::Protocol::kDash, false});
  h.resolve();
  // MPD + 3 video sidx + 1 audio sidx.
  EXPECT_EQ(h.proxy.log().records().size(), 5u);
}

TEST(MediaSource, SmoothBuildsFragmentUrls) {
  media::VideoAsset asset = small_asset(60, true, 3);
  SourceHarness h(std::move(asset), {manifest::Protocol::kSmooth},
                  {manifest::Protocol::kSmooth, false});
  manifest::Presentation p = h.resolve();
  ASSERT_EQ(p.video.size(), 3u);
  ASSERT_EQ(p.audio.size(), 1u);
  EXPECT_FALSE(p.video[0].sizes_known);
  // Fragment URLs resolve on the origin.
  const manifest::ClientSegment& s = p.video[1].segments[2];
  http::Response r = h.origin.handle({http::Method::kGet, s.ref.url, {}});
  EXPECT_TRUE(r.ok()) << s.ref.url;
}

TEST(MediaSource, EncryptedMpdNeedsKey) {
  http::OriginConfig config;
  config.protocol = manifest::Protocol::kDash;
  config.encrypt_manifest = true;

  {
    SourceHarness h(small_asset(), config, {manifest::Protocol::kDash, true});
    manifest::Presentation p = h.resolve();
    EXPECT_EQ(p.video.size(), 3u);  // the app's key decodes it
  }
  {
    SourceHarness h(small_asset(), config, {manifest::Protocol::kDash, false});
    bool failed = false;
    h.source.resolve(
        h.origin.manifest_url(), [](manifest::Presentation) { FAIL(); },
        [&](const std::string&) { failed = true; });
    h.sim.run_until(10);
    EXPECT_TRUE(failed);
  }
}

TEST(MediaSource, ErrorCallbackOn404) {
  SourceHarness h(small_asset(), {manifest::Protocol::kHls},
                  {manifest::Protocol::kHls, false});
  std::string error;
  h.source.resolve(
      "/not-there.m3u8", [](manifest::Presentation) { FAIL(); },
      [&](const std::string& reason) { error = reason; });
  h.sim.run_until(10);
  EXPECT_NE(error.find("404"), std::string::npos);
}

TEST(MediaSource, ManifestFetchTimeIsSimulated) {
  SourceHarness h(small_asset(), {manifest::Protocol::kHls},
                  {manifest::Protocol::kHls, false});
  bool done = false;
  h.source.resolve(
      h.origin.manifest_url(), [&](manifest::Presentation) { done = true; },
      [](const std::string&) {});
  EXPECT_FALSE(done);  // nothing resolves synchronously
  h.sim.run_until(0.05);
  EXPECT_FALSE(done);  // manifests still in flight (4 sequential fetches)
  h.sim.run_until(10);
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace vodx::player
