#include "player/bandwidth_estimator.h"

#include <gtest/gtest.h>

namespace vodx::player {
namespace {

TEST(Estimator, FirstSampleSetsEstimate) {
  BandwidthEstimator est;
  EXPECT_EQ(est.sample_count(), 0);
  EXPECT_DOUBLE_EQ(est.estimate(), 0);
  est.add_download(125000, 1.0);  // 1 Mbps
  EXPECT_EQ(est.sample_count(), 1);
  EXPECT_DOUBLE_EQ(est.estimate(), 1e6);
}

TEST(Estimator, AggregatesOverWindow) {
  BandwidthEstimator est;
  // 1 Mbps for 1 s + 3 Mbps for 1 s -> aggregate 2 Mbps.
  est.add_download(125000, 1.0);
  est.add_download(375000, 1.0);
  EXPECT_DOUBLE_EQ(est.estimate(), 2e6);
}

TEST(Estimator, TimeWeightedNotSampleWeighted) {
  BandwidthEstimator est;
  // A long slow transfer dominates a short fast one.
  est.add_download(125000, 10.0);  // 100 kbps for 10 s
  est.add_download(125000, 0.1);   // 10 Mbps for 0.1 s
  EXPECT_NEAR(est.estimate(), 250000 * 8.0 / 10.1, 1);
}

TEST(Estimator, OldSamplesFallOutOfWindow) {
  BandwidthEstimator est(0.5);  // window of 8
  for (int i = 0; i < 20; ++i) est.add_download(125000, 1.0);  // 1 Mbps
  for (int i = 0; i < 8; ++i) est.add_download(250000, 1.0);   // 2 Mbps
  EXPECT_DOUBLE_EQ(est.estimate(), 2e6);
}

TEST(Estimator, IgnoresDegenerateSamples) {
  BandwidthEstimator est;
  est.add_download(0, 1.0);
  est.add_download(100, 0.0);
  est.add_download(-5, 1.0);
  EXPECT_EQ(est.sample_count(), 0);
}

}  // namespace
}  // namespace vodx::player
