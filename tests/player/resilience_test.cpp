// Failure injection and user-control coverage: transient 5xx faults, the
// retry budget, user pause/resume, and the data-saver resolution cap.
#include <gtest/gtest.h>

#include <map>

#include "player/player.h"
#include "testing/fixtures.h"

namespace vodx::player {
namespace {

using vodx::testing::small_asset;

struct Harness {
  explicit Harness(Bps bandwidth = 6e6, PlayerConfig config = base_config())
      : sim(0.01),
        link(sim, net::BandwidthTrace::constant(bandwidth, 400), 0.05),
        origin(small_asset(120), {manifest::Protocol::kHls}),
        proxy(origin),
        player(sim, link, proxy, manifest::Protocol::kHls, std::move(config)) {
  }

  static PlayerConfig base_config() {
    PlayerConfig config;
    config.startup_buffer = 8;
    config.startup_bitrate = 800e3;
    config.pausing_threshold = 30;
    config.resuming_threshold = 25;
    config.tcp.rtt = 0.05;
    return config;
  }

  net::Simulator sim;
  net::Link link;
  http::OriginServer origin;
  http::Proxy proxy;
  Player player;
};

TEST(Resilience, RecoversFromTransientFaults) {
  Harness h;
  // Every segment request fails once with 503, then succeeds.
  auto failures = std::make_shared<std::map<std::string, int>>();
  h.proxy.use(http::respond_with(
      [failures](const http::Request& request,
                 Seconds) -> std::optional<http::Response> {
        if (request.url.find("seg") == std::string::npos) return std::nullopt;
        if ((*failures)[request.url]++ == 0) {
          return http::make_error(503, "injected");
        }
        return std::nullopt;
      }));
  h.player.start(h.origin.manifest_url());
  h.sim.run_until(300);
  EXPECT_EQ(h.player.state(), PlayerState::kEnded);
  EXPECT_NEAR(h.player.position(), 120, 0.1);
  // The wire shows both the faults and the successful retries.
  int faults = 0;
  for (const auto& r : h.proxy.log().records()) {
    if (r.status == 503) ++faults;
  }
  EXPECT_GT(faults, 20);
}

TEST(Resilience, PersistentFaultExhaustsRetriesAndStops) {
  Harness h;
  h.proxy.use(http::respond_with(
      [](const http::Request& request,
         Seconds) -> std::optional<http::Response> {
        if (request.url.find("seg5") == std::string::npos) return std::nullopt;
        return http::make_error(503, "injected");
      }));
  h.player.start(h.origin.manifest_url());
  h.sim.run_until(200);
  // Playback proceeds through the buffered prefix, then starves at the
  // permanently missing segment.
  EXPECT_EQ(h.player.state(), PlayerState::kRebuffering);
  EXPECT_LT(h.player.position(), 25);
  // Exactly `fetch_retries` attempts hit the wire for the poisoned segment.
  int attempts = 0;
  for (const auto& r : h.proxy.log().records()) {
    if (r.url.find("seg5.ts") != std::string::npos) ++attempts;
  }
  EXPECT_EQ(attempts, h.player.config().fetch_retries);
}

TEST(Resilience, RetryBackoffDelaysReattempts) {
  Harness h;
  h.proxy.use(http::respond_with(
      [](const http::Request& request,
         Seconds) -> std::optional<http::Response> {
        if (request.url.find("seg3") == std::string::npos) return std::nullopt;
        return http::make_error(503, "injected");
      }));
  h.player.start(h.origin.manifest_url());
  h.sim.run_until(60);
  std::vector<Seconds> attempt_times;
  for (const auto& r : h.proxy.log().records()) {
    if (r.url.find("seg3.ts") != std::string::npos) {
      attempt_times.push_back(r.requested_at);
    }
  }
  ASSERT_GE(attempt_times.size(), 2u);
  for (std::size_t i = 1; i < attempt_times.size(); ++i) {
    EXPECT_GE(attempt_times[i] - attempt_times[i - 1], 0.45);
  }
}

TEST(Resilience, FetchTimeoutAbortsHungTransfers) {
  // The link dies at t=12 with fetches in flight. Without a timeout those
  // transfers hang forever; with one, the player aborts and retries until
  // the budget runs out.
  PlayerConfig config = Harness::base_config();
  config.fetch_timeout = 5;
  net::Simulator sim(0.01);
  net::Link link(sim, net::BandwidthTrace::step(6e6, 0, 12, 200), 0.05);
  http::OriginServer origin(small_asset(120), {manifest::Protocol::kHls});
  http::Proxy proxy(origin);
  Player player(sim, link, proxy, manifest::Protocol::kHls, config);
  player.start(origin.manifest_url());
  sim.run_until(120);
  int aborted = 0;
  for (const auto& r : proxy.log().records()) {
    if (r.aborted) ++aborted;
  }
  EXPECT_GE(aborted, 2);
  EXPECT_EQ(player.state(), PlayerState::kRebuffering);
}

TEST(Resilience, AbandonDownswitchRidesOutPoisonedRenditions) {
  // Every rendition but the cheapest fails persistently. The hardened
  // player spends its retry budget, then abandons to level 0 and keeps
  // playing instead of stopping the pipeline.
  PlayerConfig config = Harness::base_config();
  config.abandon_downswitch = true;
  config.retry_backoff = 0.2;
  Harness h(6e6, config);
  h.proxy.use(http::reject_if([](const http::Request& request) {
    return request.url.find(".ts") != std::string::npos &&
           request.url.find("/video/0/") == std::string::npos;
  }));
  h.player.start(h.origin.manifest_url());
  h.sim.run_until(350);
  EXPECT_EQ(h.player.state(), PlayerState::kEnded);
  EXPECT_NEAR(h.player.position(), 120, 0.1);
  for (const auto& e : h.player.events().displayed) {
    EXPECT_EQ(e.level, 0) << "segment " << e.index;
  }
}

TEST(Resilience, JitteredBackoffIsSeedDeterministic) {
  auto attempt_times = [](std::uint64_t seed) {
    PlayerConfig config = Harness::base_config();
    config.retry_jitter = 0.5;
    config.resilience_seed = seed;
    Harness h(6e6, config);
    h.proxy.use(http::respond_with(
        [](const http::Request& request,
           Seconds) -> std::optional<http::Response> {
          if (request.url.find("seg3.ts") == std::string::npos) {
            return std::nullopt;
          }
          return http::make_error(503, "injected");
        }));
    h.player.start(h.origin.manifest_url());
    h.sim.run_until(60);
    std::vector<Seconds> times;
    for (const auto& r : h.proxy.log().records()) {
      if (r.url.find("seg3.ts") != std::string::npos) {
        times.push_back(r.requested_at);
      }
    }
    return times;
  };
  const std::vector<Seconds> a = attempt_times(7);
  const std::vector<Seconds> b = attempt_times(7);
  const std::vector<Seconds> c = attempt_times(8);
  ASSERT_GE(a.size(), 2u);
  EXPECT_EQ(a, b);  // same seed, bit-identical schedule
  EXPECT_NE(a, c);  // different seed, different jitter
}

TEST(UserPause, FreezesPositionWhileDownloadsContinue) {
  // A high pausing threshold keeps the downloader busy at t=15, so the
  // buffer visibly grows while playback is frozen.
  PlayerConfig config = Harness::base_config();
  config.pausing_threshold = 60;
  config.resuming_threshold = 50;
  Harness h(1.5e6, config);
  h.player.start(h.origin.manifest_url());
  h.sim.run_until(15);
  ASSERT_EQ(h.player.state(), PlayerState::kPlaying);
  const Seconds pos = h.player.position();
  const Seconds buffered = h.player.video_buffered();
  h.player.pause();
  h.sim.run_until(25);
  EXPECT_DOUBLE_EQ(h.player.position(), pos);
  // Buffer kept filling toward the pausing threshold.
  EXPECT_GT(h.player.video_buffered(), buffered);
  h.player.resume();
  h.sim.run_until(30);
  EXPECT_GT(h.player.position(), pos + 4);
}

TEST(UserPause, LooksLikeAStallToTheUiMonitor) {
  // The known ambiguity: UI-based inference cannot tell a user pause from a
  // stall — progress freezes either way.
  Harness h;
  std::vector<int> progress;
  h.player.set_seekbar_callback(
      [&](Seconds, int p) { progress.push_back(p); });
  h.player.start(h.origin.manifest_url());
  h.sim.run_until(15);
  h.player.pause();
  h.sim.run_until(20);
  ASSERT_GE(progress.size(), 3u);
  EXPECT_EQ(progress.back(), progress[progress.size() - 2]);
}

TEST(DataSaver, HeightCapBoundsSelection) {
  PlayerConfig config = Harness::base_config();
  config.max_height_cap = 360;
  Harness h(20e6, config);  // bandwidth that would otherwise hit the top
  h.player.start(h.origin.manifest_url());
  h.sim.run_until(200);
  for (const auto& e : h.player.events().displayed) {
    EXPECT_LE(e.resolution.height, 360) << "segment " << e.index;
  }
}

TEST(DataSaver, CapSavesData) {
  PlayerConfig capped = Harness::base_config();
  capped.max_height_cap = 360;
  Harness a(20e6, capped);
  a.player.start(a.origin.manifest_url());
  a.sim.run_until(200);

  Harness b(20e6);
  b.player.start(b.origin.manifest_url());
  b.sim.run_until(200);

  EXPECT_LT(static_cast<double>(a.proxy.log().total_bytes()),
            0.65 * static_cast<double>(b.proxy.log().total_bytes()));
}

}  // namespace
}  // namespace vodx::player
