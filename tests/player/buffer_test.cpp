#include "player/buffer.h"

#include <gtest/gtest.h>

namespace vodx::player {
namespace {

BufferedSegment seg(int index, int level = 0, Seconds duration = 4,
                    Bytes size = 1000) {
  BufferedSegment s;
  s.index = index;
  s.level = level;
  s.duration = duration;
  s.start = index * duration;
  s.size = size;
  s.resolution = media::k360p;
  return s;
}

TEST(Buffer, AppendAndContiguousEnd) {
  PlaybackBuffer buffer;
  buffer.append(seg(0));
  buffer.append(seg(1));
  EXPECT_DOUBLE_EQ(buffer.contiguous_end(0), 8);
  EXPECT_DOUBLE_EQ(buffer.buffered_ahead(3), 5);
  EXPECT_EQ(buffer.contiguous_count(0), 2);
  EXPECT_EQ(buffer.last_contiguous_index(0), 1);
}

TEST(Buffer, GapLimitsContiguousRegion) {
  PlaybackBuffer buffer;
  buffer.append(seg(0));
  buffer.append(seg(2));  // out-of-order arrival left a hole at 1
  EXPECT_DOUBLE_EQ(buffer.contiguous_end(0), 4);
  EXPECT_EQ(buffer.contiguous_count(0), 1);
  buffer.append(seg(1));
  EXPECT_DOUBLE_EQ(buffer.contiguous_end(0), 12);
  EXPECT_EQ(buffer.contiguous_count(0), 3);
}

TEST(Buffer, ConsumeDropsPlayedSegments) {
  PlaybackBuffer buffer;
  buffer.append(seg(0));
  buffer.append(seg(1));
  buffer.append(seg(2));
  buffer.consume_until(7.9);
  EXPECT_EQ(buffer.segments().size(), 2u);  // seg 1 still covers 7.9
  buffer.consume_until(8.0);
  EXPECT_EQ(buffer.segments().size(), 1u);
  EXPECT_EQ(buffer.segments().front().index, 2);
}

TEST(Buffer, AtPositionFindsCoveringSegment) {
  PlaybackBuffer buffer;
  buffer.append(seg(0));
  buffer.append(seg(1));
  ASSERT_NE(buffer.at_position(5.0), nullptr);
  EXPECT_EQ(buffer.at_position(5.0)->index, 1);
  EXPECT_EQ(buffer.at_position(20.0), nullptr);
}

TEST(Buffer, ReplaceSwapsRendition) {
  PlaybackBuffer buffer;
  buffer.append(seg(0, 0));
  buffer.append(seg(1, 0));
  BufferedSegment old = buffer.replace(seg(1, 2, 4, 5000));
  EXPECT_EQ(old.level, 0);
  EXPECT_EQ(buffer.find(1)->level, 2);
  EXPECT_EQ(buffer.segments().size(), 2u);
}

TEST(Buffer, DiscardFromDropsSuffix) {
  PlaybackBuffer buffer;
  for (int i = 0; i < 5; ++i) buffer.append(seg(i));
  std::vector<BufferedSegment> discarded = buffer.discard_from(2);
  EXPECT_EQ(discarded.size(), 3u);
  EXPECT_EQ(discarded.front().index, 2);
  EXPECT_EQ(buffer.segments().size(), 2u);
  EXPECT_EQ(buffer.last_contiguous_index(0), 1);
}

TEST(Buffer, DiscardFromBeyondEndIsNoop) {
  PlaybackBuffer buffer;
  buffer.append(seg(0));
  EXPECT_TRUE(buffer.discard_from(5).empty());
  EXPECT_EQ(buffer.segments().size(), 1u);
}

TEST(Buffer, RefetchAfterDiscardIsAppendable) {
  PlaybackBuffer buffer;
  for (int i = 0; i < 4; ++i) buffer.append(seg(i, 0));
  buffer.discard_from(2);
  buffer.append(seg(2, 3));  // the cascade refetch at a new level
  EXPECT_EQ(buffer.find(2)->level, 3);
}

TEST(BufferDeathTest, DoubleAppendAborts) {
  PlaybackBuffer buffer;
  buffer.append(seg(0));
  EXPECT_DEATH(buffer.append(seg(0)), "replace");
}

TEST(BufferDeathTest, MidReplacementNeedsCapability) {
  PlaybackBuffer buffer(/*allow_mid_replacement=*/false);
  buffer.append(seg(0));
  EXPECT_DEATH(buffer.replace(seg(0, 1)), "middle");
}

TEST(BufferDeathTest, ReplacingUnbufferedAborts) {
  PlaybackBuffer buffer;
  buffer.append(seg(0));
  EXPECT_DEATH(buffer.replace(seg(3)), "not in the buffer");
}

TEST(BufferDeathTest, AppendingConsumedIndexAborts) {
  PlaybackBuffer buffer;
  buffer.append(seg(0));
  buffer.consume_until(4.0);
  EXPECT_DEATH(buffer.append(seg(0)), "consumed");
}

TEST(Buffer, BufferedAheadFromMidSegment) {
  PlaybackBuffer buffer;
  buffer.append(seg(0));
  buffer.append(seg(1));
  EXPECT_DOUBLE_EQ(buffer.buffered_ahead(1.5), 6.5);
  EXPECT_DOUBLE_EQ(buffer.buffered_ahead(8.0), 0.0);
}

}  // namespace
}  // namespace vodx::player
