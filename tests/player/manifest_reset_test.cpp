// Satellite of the chaos PR: a connection reset mid-manifest is retried
// under the bounded manifest-retry budget, the session still plays, and the
// wire metrics tick exactly one reset.
#include <gtest/gtest.h>

#include <memory>

#include "obs/observer.h"
#include "player/player.h"
#include "testing/fixtures.h"

namespace vodx::player {
namespace {

using vodx::testing::small_asset;

PlayerConfig retrying_config() {
  PlayerConfig config;
  config.startup_buffer = 8;
  config.startup_bitrate = 800e3;
  config.pausing_threshold = 30;
  config.resuming_threshold = 25;
  config.tcp.rtt = 0.05;
  config.manifest_retries = 2;
  return config;
}

TEST(ManifestReset, MidManifestResetIsRetriedOnce) {
  net::Simulator sim(0.01);
  net::Link link(sim, net::BandwidthTrace::constant(6e6, 400), 0.05);
  http::OriginServer origin(small_asset(120), {manifest::Protocol::kHls});
  http::Proxy proxy(origin);
  // Reset the very first master-manifest transfer halfway down the wire;
  // every later fetch is untouched.
  auto fired = std::make_shared<bool>(false);
  proxy.use(http::tap_response(
      [fired](const http::Request& request, http::Response& response,
              Seconds) {
        if (*fired) return;
        if (request.url.find("master.m3u8") == std::string::npos) return;
        *fired = true;
        response.reset_after = response.wire_size() / 2;
      }));

  Player player(sim, link, proxy, manifest::Protocol::kHls, retrying_config());
  obs::Observer observer;
  sim.set_observer(&observer);
  player.set_observer(&observer);
  player.start(origin.manifest_url());
  sim.run_until(300);

  // The retry rescued the session: playback ran to the end.
  EXPECT_EQ(player.state(), PlayerState::kEnded);
  EXPECT_NEAR(player.position(), 120, 0.1);
  EXPECT_GE(player.events().playback_started, 0);

  // The wire saw the manifest twice: the reset attempt and the retry.
  int manifest_fetches = 0;
  for (const auto& r : proxy.log().records()) {
    if (r.url.find("master.m3u8") != std::string::npos) ++manifest_fetches;
  }
  EXPECT_EQ(manifest_fetches, 2);

  // And the reset counter ticked exactly once.
  const obs::MetricsSnapshot snapshot = observer.metrics.snapshot(sim.now());
  const obs::MetricsSnapshot::Entry* resets = snapshot.find("http.resets");
  ASSERT_NE(resets, nullptr);
  EXPECT_EQ(resets->count, 1);
}

TEST(ManifestReset, WithoutRetriesTheResetIsFatal) {
  net::Simulator sim(0.01);
  net::Link link(sim, net::BandwidthTrace::constant(6e6, 400), 0.05);
  http::OriginServer origin(small_asset(120), {manifest::Protocol::kHls});
  http::Proxy proxy(origin);
  auto fired = std::make_shared<bool>(false);
  proxy.use(http::tap_response(
      [fired](const http::Request& request, http::Response& response,
              Seconds) {
        if (*fired) return;
        if (request.url.find("master.m3u8") == std::string::npos) return;
        *fired = true;
        response.reset_after = response.wire_size() / 2;
      }));

  PlayerConfig config = retrying_config();
  config.manifest_retries = 0;  // first manifest failure is fatal
  Player player(sim, link, proxy, manifest::Protocol::kHls, config);
  player.start(origin.manifest_url());
  sim.run_until(60);

  EXPECT_NE(player.state(), PlayerState::kEnded);
  EXPECT_FALSE(player.events().failure.empty());
}

}  // namespace
}  // namespace vodx::player
