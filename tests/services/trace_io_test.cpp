#include "trace/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/error.h"
#include "trace/cellular_profiles.h"

namespace vodx::trace {
namespace {

TEST(TraceIo, TextRoundTripPreservesSamples) {
  net::BandwidthTrace original = cellular_profile(3);
  net::BandwidthTrace parsed = from_text(to_text(original));
  EXPECT_DOUBLE_EQ(parsed.duration(), original.duration());
  for (Seconds t = 0; t < original.duration(); t += 1) {
    EXPECT_NEAR(parsed.at(t), original.at(t), 0.5) << t;
  }
  EXPECT_EQ(parsed.name(), "Profile 3");
}

TEST(TraceIo, ParsesCommentsAndBlankLines) {
  net::BandwidthTrace t =
      from_text("# comment\n\n1000000\n# mid comment\n2000000\n");
  EXPECT_DOUBLE_EQ(t.duration(), 2);
  EXPECT_DOUBLE_EQ(t.at(0), 1e6);
  EXPECT_DOUBLE_EQ(t.at(1), 2e6);
}

TEST(TraceIo, ExplicitNameWins) {
  net::BandwidthTrace t = from_text("# name: recorded\n1000\n", "override");
  EXPECT_EQ(t.name(), "override");
}

TEST(TraceIo, RejectsGarbage) {
  EXPECT_THROW(from_text(""), ParseError);
  EXPECT_THROW(from_text("# only comments\n"), ParseError);
  EXPECT_THROW(from_text("12x34\n"), ParseError);
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/vodx_trace_test.txt";
  net::BandwidthTrace original = cellular_profile(1);
  save_trace(original, path);
  net::BandwidthTrace loaded = load_trace(path);
  EXPECT_NEAR(loaded.mean(), original.mean(), 2);
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(load_trace("/nonexistent/nope.txt"), Error);
}

}  // namespace
}  // namespace vodx::trace
