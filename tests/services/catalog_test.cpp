#include "services/service_catalog.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

#include "services/content_factory.h"

namespace vodx::services {
namespace {

TEST(Catalog, TwelveServicesInPaperOrder) {
  const auto& all = catalog();
  ASSERT_EQ(all.size(), 12u);
  const char* expected[] = {"H1", "H2", "H3", "H4", "H5", "H6",
                            "D1", "D2", "D3", "D4", "S1", "S2"};
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].name, expected[i]);
  }
}

TEST(Catalog, ProtocolsMatchNames) {
  for (const ServiceSpec& s : catalog()) {
    switch (s.name[0]) {
      case 'H': EXPECT_EQ(s.protocol, manifest::Protocol::kHls); break;
      case 'D': EXPECT_EQ(s.protocol, manifest::Protocol::kDash); break;
      case 'S': EXPECT_EQ(s.protocol, manifest::Protocol::kSmooth); break;
      default: FAIL();
    }
  }
}

TEST(Catalog, HlsMuxesAudioOthersSeparate) {
  // §3.1: all studied HLS services mux audio; all DASH/SS separate it.
  for (const ServiceSpec& s : catalog()) {
    EXPECT_EQ(s.separate_audio, s.protocol != manifest::Protocol::kHls)
        << s.name;
  }
}

TEST(Catalog, LadderSpacingFollowsAppleGuideline) {
  // §3.1: adjacent rungs a factor 1.5-2 apart, all services.
  for (const ServiceSpec& s : catalog()) {
    for (std::size_t i = 1; i < s.video_ladder.size(); ++i) {
      const double ratio = s.video_ladder[i] / s.video_ladder[i - 1];
      EXPECT_GE(ratio, 1.35) << s.name << " rung " << i;
      EXPECT_LE(ratio, 2.15) << s.name << " rung " << i;
    }
  }
}

TEST(Catalog, HighestTracksBetween2And5p5Mbps) {
  for (const ServiceSpec& s : catalog()) {
    EXPECT_GE(s.video_ladder.back(), 2e6) << s.name;
    EXPECT_LE(s.video_ladder.back(), 5.5e6) << s.name;
  }
}

TEST(Catalog, ThreeServicesHaveHighLowestTrack) {
  // §3.1 / Table 2: H2, H5, S1 have lowest tracks above 500 kbps.
  for (const ServiceSpec& s : catalog()) {
    const bool high_bottom = s.video_ladder.front() > 500e3;
    const bool expected =
        s.name == "H2" || s.name == "H5" || s.name == "S1";
    EXPECT_EQ(high_bottom, expected) << s.name;
  }
}

TEST(Catalog, StartupBitrateIsALadderRung) {
  for (const ServiceSpec& s : catalog()) {
    bool found = false;
    for (Bps rung : s.video_ladder) {
      if (std::abs(rung - s.player.startup_bitrate) < 1) found = true;
    }
    EXPECT_TRUE(found) << s.name;
  }
}

TEST(Catalog, Table1ColumnsSpotCheck) {
  EXPECT_EQ(service("D1").player.max_connections, 6);
  EXPECT_FALSE(service("H2").player.persistent_connections);
  EXPECT_FALSE(service("H3").player.persistent_connections);
  EXPECT_FALSE(service("H5").player.persistent_connections);
  EXPECT_DOUBLE_EQ(service("S2").player.resuming_threshold, 4);
  EXPECT_DOUBLE_EQ(service("D1").player.pausing_threshold, 182);
  EXPECT_EQ(service("D1").player.abr, player::AbrKind::kOscillating);
  EXPECT_EQ(service("H4").player.sr, player::SrPolicy::kCascadeNaive);
  EXPECT_EQ(service("H1").player.sr, player::SrPolicy::kCascadeExoV1);
  EXPECT_TRUE(service("D3").encrypt_manifest);
  EXPECT_TRUE(service("D3").player.split_segment_downloads);
  EXPECT_EQ(service("D1").dash_index, manifest::DashIndexMode::kSegmentList);
  EXPECT_EQ(service("D2").dash_index, manifest::DashIndexMode::kSidx);
}

TEST(Catalog, DecreaseBufferServices) {
  // Table 1 "Decrease buffer": H2 40, D3 30, S1 50, everyone else none.
  for (const ServiceSpec& s : catalog()) {
    if (s.name == "H2") EXPECT_DOUBLE_EQ(s.player.decrease_buffer, 40);
    else if (s.name == "D3") EXPECT_DOUBLE_EQ(s.player.decrease_buffer, 30);
    else if (s.name == "S1") EXPECT_DOUBLE_EQ(s.player.decrease_buffer, 50);
    else EXPECT_DOUBLE_EQ(s.player.decrease_buffer, 0) << s.name;
  }
}

TEST(Catalog, CbrServicesAreH2H3H5) {
  for (const ServiceSpec& s : catalog()) {
    const bool cbr = s.encoding == media::EncodingMode::kCbr;
    const bool expected =
        s.name == "H2" || s.name == "H3" || s.name == "H5";
    EXPECT_EQ(cbr, expected) << s.name;
  }
}

TEST(Catalog, SmoothServicesDeclareAverage) {
  // Fig. 5: S1/S2 set declared near the average actual bitrate.
  for (const ServiceSpec& s : catalog()) {
    const bool average = s.declared_policy == media::DeclaredPolicy::kAverage;
    EXPECT_EQ(average, s.protocol == manifest::Protocol::kSmooth) << s.name;
  }
}

TEST(Catalog, UnknownServiceThrows) {
  EXPECT_THROW(service("NOPE"), ConfigError);
}

TEST(ContentFactory, AssetMatchesSpec) {
  const ServiceSpec& spec = service("D2");
  media::VideoAsset asset = make_asset(spec, 600, 1);
  ASSERT_EQ(asset.video_track_count(),
            static_cast<int>(spec.video_ladder.size()));
  for (int level = 0; level < asset.video_track_count(); ++level) {
    EXPECT_DOUBLE_EQ(asset.video_track(level).declared_bitrate(),
                     spec.video_ladder[static_cast<std::size_t>(level)]);
  }
  EXPECT_TRUE(asset.separate_audio());
  EXPECT_NEAR(asset.duration(), 600, 0.01);
  // D2's VBR gap: average actual ~ half the declared (Fig. 5).
  const media::Track& top =
      asset.video_track(asset.video_track_count() - 1);
  EXPECT_NEAR(top.average_actual_bitrate(), top.declared_bitrate() / 2,
              0.1 * top.declared_bitrate() / 2);
}

TEST(ContentFactory, DeterministicInSeed) {
  const ServiceSpec& spec = service("H1");
  media::VideoAsset a = make_asset(spec, 300, 9);
  media::VideoAsset b = make_asset(spec, 300, 9);
  for (int i = 0; i < a.video_track(0).segment_count(); ++i) {
    EXPECT_EQ(a.video_track(0).segment(i).size,
              b.video_track(0).segment(i).size);
  }
}

TEST(ContentFactory, AudioSegmentDurationFollowsSpec) {
  media::VideoAsset d1 = make_asset(service("D1"), 300, 1);
  EXPECT_NEAR(d1.audio_track(0).segment(0).duration, 2.0, 1e-9);
  media::VideoAsset d2 = make_asset(service("D2"), 300, 1);
  EXPECT_NEAR(d2.audio_track(0).segment(0).duration, 5.0, 1e-9);
}

}  // namespace
}  // namespace vodx::services
