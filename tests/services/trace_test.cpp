#include "trace/cellular_profiles.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace vodx::trace {
namespace {

TEST(Profiles, FourteenProfilesSortedByMean) {
  std::vector<net::BandwidthTrace> all = all_profiles();
  ASSERT_EQ(all.size(), 14u);
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_GT(all[i].mean(), all[i - 1].mean());
  }
}

TEST(Profiles, MeansHitTargets) {
  for (int id = 1; id <= kProfileCount; ++id) {
    net::BandwidthTrace t = cellular_profile(id);
    EXPECT_NEAR(t.mean(), profile_mean(id), 0.02 * profile_mean(id)) << id;
    EXPECT_DOUBLE_EQ(t.duration(), kProfileDuration);
  }
}

TEST(Profiles, SlowestCoversFigure3Range) {
  EXPECT_NEAR(profile_mean(1), 0.6e6, 1e5);
  EXPECT_NEAR(profile_mean(14), 38e6, 1e6);
}

TEST(Profiles, DeterministicInSeed) {
  net::BandwidthTrace a = cellular_profile(5, 99);
  net::BandwidthTrace b = cellular_profile(5, 99);
  for (Seconds t = 0; t < 600; t += 37) {
    EXPECT_DOUBLE_EQ(a.at(t), b.at(t));
  }
  net::BandwidthTrace c = cellular_profile(5, 100);
  bool differs = false;
  for (Seconds t = 0; t < 600; t += 7) {
    if (a.at(t) != c.at(t)) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Profiles, BandwidthIsAlwaysPositive) {
  for (int id = 1; id <= kProfileCount; ++id) {
    net::BandwidthTrace t = cellular_profile(id);
    for (Seconds wall = 0; wall < 600; wall += 1) {
      EXPECT_GE(t.at(wall), 50e3) << "profile " << id << " at " << wall;
    }
  }
}

TEST(Profiles, VariabilityShrinksWithSpeed) {
  // Slow profiles fade harder: coefficient of variation decreases.
  auto cov = [](const net::BandwidthTrace& t) {
    double mean = t.mean();
    double sum_sq = 0;
    int n = 0;
    for (Seconds wall = 0; wall < 600; wall += 1, ++n) {
      const double d = t.at(wall) - mean;
      sum_sq += d * d;
    }
    return std::sqrt(sum_sq / n) / mean;
  };
  EXPECT_GT(cov(cellular_profile(1)), cov(cellular_profile(14)) * 0.9);
}

TEST(Profiles, ProfilesHaveNames) {
  EXPECT_EQ(cellular_profile(3).name(), "Profile 3");
}

TEST(StartupProfiles, FiftyOneMinutePieces) {
  std::vector<net::BandwidthTrace> pieces = startup_profiles();
  ASSERT_EQ(pieces.size(), 50u);  // 5 profiles x 10 pieces
  for (const net::BandwidthTrace& p : pieces) {
    EXPECT_DOUBLE_EQ(p.duration(), 60);
  }
}

TEST(StartupProfiles, PiecesComeFromLowProfiles) {
  std::vector<net::BandwidthTrace> pieces = startup_profiles(2, 60);
  ASSERT_EQ(pieces.size(), 20u);
  // All pieces' means stay in the low-bandwidth regime.
  for (const net::BandwidthTrace& p : pieces) {
    EXPECT_LT(p.mean(), 4e6);
  }
}

TEST(Profiles, InvalidIdAborts) {
  EXPECT_DEATH(cellular_profile(0), "range");
  EXPECT_DEATH(cellular_profile(15), "range");
}

}  // namespace
}  // namespace vodx::trace
