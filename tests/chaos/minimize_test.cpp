// Delta-debugging minimizer against synthetic oracles (no sessions): the
// result is always oracle-confirmed, irrelevant faults are dropped, and the
// run budget is a hard bound.
#include "chaos/minimize.h"

#include <gtest/gtest.h>

#include <functional>

namespace vodx::chaos {
namespace {

/// 2 resets + 2 latency + 1 blackout, all whole-session.
faults::FaultPlan five_fault_plan() {
  faults::FaultPlan plan;
  plan.name = "synthetic";
  plan.resets.push_back({{}, 0.5, 0.5});
  plan.resets.push_back({{}, 0.3, 0.8});
  plan.latency.push_back({{}, 1.0, 0.5, 1.0});
  plan.latency.push_back({{}, 2.0, 0.0, 1.0});
  plan.blackouts.push_back({10, 10});
  return plan;
}

TEST(Minimize, FaultCountSpansAllKinds) {
  EXPECT_EQ(fault_count({}), 0u);
  EXPECT_EQ(fault_count(five_fault_plan()), 5u);
}

TEST(Minimize, DropsEverythingTheOracleDoesNotNeed) {
  // The "bug" needs one reset AND one latency fault; everything else is
  // noise the drop phase must remove.
  const auto oracle = [](const faults::FaultPlan& plan) {
    return !plan.resets.empty() && !plan.latency.empty();
  };
  const MinimizeResult result = minimize(five_fault_plan(), oracle);
  EXPECT_EQ(fault_count(result.plan), 2u);
  EXPECT_EQ(result.plan.resets.size(), 1u);
  EXPECT_EQ(result.plan.latency.size(), 1u);
  EXPECT_EQ(result.dropped, 3);
  EXPECT_TRUE(oracle(result.plan)) << "result must be oracle-confirmed";
  EXPECT_EQ(result.plan.name, "synthetic-min");
}

TEST(Minimize, SingleRelevantFaultSurvives) {
  faults::FaultPlan plan;
  plan.name = "one";
  plan.errors.push_back({{}, 503, 0.9});
  const auto oracle = [](const faults::FaultPlan& candidate) {
    return !candidate.errors.empty();
  };
  const MinimizeResult result = minimize(plan, oracle);
  ASSERT_EQ(result.plan.errors.size(), 1u);
  EXPECT_TRUE(oracle(result.plan));
}

TEST(Minimize, SofteningHalvesIntensitiesTowardTheFloor) {
  faults::FaultPlan plan;
  plan.errors.push_back({{}, 503, 0.8});
  // The violation persists at any probability: softening should walk the
  // probability down to (or just past) the 0.1 floor.
  const auto oracle = [](const faults::FaultPlan& candidate) {
    return !candidate.errors.empty();
  };
  const MinimizeResult result = minimize(plan, oracle);
  ASSERT_EQ(result.plan.errors.size(), 1u);
  EXPECT_LE(result.plan.errors[0].probability, 0.1 + 1e-9);
}

TEST(Minimize, NarrowingTightensWindowsWhileTheOracleHolds)
{
  faults::FaultPlan plan;
  faults::ErrorFault fault;
  fault.match.start = 0;
  fault.match.end = 100;
  fault.probability = 1.0;
  plan.errors.push_back(fault);
  const auto oracle = [](const faults::FaultPlan& candidate) {
    return !candidate.errors.empty();
  };
  const MinimizeResult result = minimize(plan, oracle);
  ASSERT_EQ(result.plan.errors.size(), 1u);
  const faults::Match& match = result.plan.errors[0].match;
  EXPECT_LT(match.end - match.start, 100.0)
      << "a window the oracle never needs full-width should shrink";
}

TEST(Minimize, RespectsTheRunBudget) {
  int calls = 0;
  const auto oracle = [&calls](const faults::FaultPlan& plan) {
    ++calls;
    return !plan.resets.empty() && !plan.latency.empty();
  };
  MinimizeOptions options;
  options.max_runs = 5;
  const MinimizeResult result = minimize(five_fault_plan(), oracle, options);
  EXPECT_LE(calls, 5);
  EXPECT_EQ(result.runs, calls);
  EXPECT_TRUE(oracle(result.plan)) << "even a truncated shrink stays confirmed";
}

TEST(Minimize, OracleThatNeedsEverythingDropsNothing) {
  const auto oracle = [](const faults::FaultPlan& plan) {
    return fault_count(plan) >= 5;
  };
  const MinimizeResult result = minimize(five_fault_plan(), oracle);
  EXPECT_EQ(fault_count(result.plan), 5u);
  EXPECT_EQ(result.dropped, 0);
}

}  // namespace
}  // namespace vodx::chaos
