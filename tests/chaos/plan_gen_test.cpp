// Seeded fault-plan generation: purity, seed sensitivity, bound respect.
#include "chaos/plan_gen.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "chaos/minimize.h"
#include "chaos/repro.h"

namespace vodx::chaos {
namespace {

/// Canonical byte representation of a plan (repro JSON with the name
/// blanked, so two plans compare by content, not by their "fuzz-<seed>"
/// label).
std::string fingerprint(faults::FaultPlan plan) {
  plan.name = "x";
  ReproArtifact artifact;
  artifact.plan = std::move(plan);
  return to_json(artifact);
}

TEST(PlanGen, SameSeedSamePlanByteForByte) {
  for (std::uint64_t seed : {0ull, 1ull, 17ull, 0xDEADBEEFull}) {
    EXPECT_EQ(fingerprint(generate_plan(seed)), fingerprint(generate_plan(seed)))
        << "seed " << seed;
  }
}

TEST(PlanGen, DifferentSeedsProduceDifferentPlans) {
  std::set<std::string> distinct;
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    distinct.insert(fingerprint(generate_plan(seed)));
  }
  // Collisions are possible in principle but 16 seeds collapsing to fewer
  // than 12 distinct plans would mean the stream barely depends on the seed.
  EXPECT_GE(distinct.size(), 12u);
}

TEST(PlanGen, FaultCountWithinDefaultBounds) {
  const GenOptions options;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const faults::FaultPlan plan = generate_plan(seed, options);
    const std::size_t count = fault_count(plan);
    EXPECT_GE(count, static_cast<std::size_t>(options.min_faults));
    EXPECT_LE(count, static_cast<std::size_t>(options.max_faults));
    EXPECT_EQ(plan.seed, seed);
    EXPECT_EQ(plan.name, "fuzz-" + std::to_string(seed));
  }
}

TEST(PlanGen, RespectsCustomBounds) {
  GenOptions options;
  options.min_faults = 2;
  options.max_faults = 3;
  options.horizon = 60;
  options.max_latency = 1.0;
  options.max_blackout = 5;
  options.min_probability = 0.2;
  options.max_probability = 0.9;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const faults::FaultPlan plan = generate_plan(seed, options);
    const std::size_t count = fault_count(plan);
    EXPECT_GE(count, 2u) << "seed " << seed;
    EXPECT_LE(count, 3u) << "seed " << seed;
    const auto check_window = [&](const faults::Match& match) {
      EXPECT_GE(match.start, 0.0);
      if (match.end >= 0) {
        EXPECT_LE(match.end, options.horizon + 1e-9);
        EXPECT_GT(match.end, match.start);
      }
    };
    for (const faults::LatencyFault& f : plan.latency) {
      check_window(f.match);
      EXPECT_GT(f.base, 0.0);
      EXPECT_LE(f.base + f.jitter, options.max_latency + 1e-9);
      EXPECT_GE(f.probability, options.min_probability - 1e-9);
      EXPECT_LE(f.probability, options.max_probability + 1e-9);
    }
    for (const faults::ErrorFault& f : plan.errors) {
      check_window(f.match);
      EXPECT_TRUE(f.status == 503 || f.status == 500);
      EXPECT_GE(f.probability, options.min_probability - 1e-9);
    }
    for (const faults::ResetFault& f : plan.resets) {
      check_window(f.match);
      EXPECT_GE(f.after_fraction, 0.0);
      EXPECT_LE(f.after_fraction, 1.0);
    }
    for (const faults::RejectFault& f : plan.rejects) {
      check_window(f.match);
      EXPECT_TRUE(f.every_nth >= 2 || f.probability > 0)
          << "a reject fault must actually reject something";
    }
    for (const faults::BlackoutFault& f : plan.blackouts) {
      EXPECT_GE(f.start, 0.0);
      EXPECT_LE(f.start, options.horizon * 0.9 + 1e-9);
      EXPECT_GE(f.duration, 0.5 - 1e-9);
      EXPECT_LE(f.duration, options.max_blackout + 1e-9);
    }
  }
}

TEST(PlanGen, SummaryNamesEachPopulatedKind) {
  faults::FaultPlan plan;
  EXPECT_EQ(plan_summary(plan), "empty");
  plan.latency.push_back({});
  plan.resets.push_back({});
  plan.resets.push_back({});
  EXPECT_EQ(plan_summary(plan), "1 latency, 2 reset");
  plan.errors.push_back({});
  plan.rejects.push_back({});
  plan.blackouts.push_back({});
  EXPECT_EQ(plan_summary(plan), "1 latency, 1 error, 2 reset, 1 reject, 1 blackout");
}

}  // namespace
}  // namespace vodx::chaos
