// Repro artifacts: byte-stable round trips, tolerant parsing, hard errors
// on malformed input.
#include "chaos/repro.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vodx::chaos {
namespace {

ReproArtifact full_artifact() {
  ReproArtifact artifact;
  artifact.service = "H1";
  artifact.profile_id = 3;
  artifact.duration = 60;
  artifact.chaos_seed = 17;
  artifact.invariants = "buffer.bounds, qoe.finite";
  faults::FaultPlan& plan = artifact.plan;
  plan.name = "fuzz-17-min";
  plan.seed = 17;
  plan.latency.push_back({{"seg", 5, 40}, 0.25, 0.5, 0.75});
  plan.errors.push_back({{"playlist", 0, -1}, 503, 0.2});
  plan.resets.push_back({{"", 10, 20}, 0.5, 0.1});
  plan.rejects.push_back({{"manifest", 0, -1}, 3, 0});
  plan.blackouts.push_back({30, 4.5});
  return artifact;
}

TEST(Repro, RoundTripIsByteIdentical) {
  const std::string json = to_json(full_artifact());
  const ReproArtifact parsed = parse_repro(json);
  EXPECT_EQ(to_json(parsed), json);
}

TEST(Repro, RoundTripPreservesEveryField) {
  const ReproArtifact a = parse_repro(to_json(full_artifact()));
  EXPECT_EQ(a.service, "H1");
  EXPECT_EQ(a.profile_id, 3);
  EXPECT_DOUBLE_EQ(a.duration, 60);
  EXPECT_EQ(a.chaos_seed, 17u);
  EXPECT_EQ(a.invariants, "buffer.bounds, qoe.finite");
  EXPECT_EQ(a.plan.name, "fuzz-17-min");
  EXPECT_EQ(a.plan.seed, 17u);
  ASSERT_EQ(a.plan.latency.size(), 1u);
  EXPECT_EQ(a.plan.latency[0].match.url_contains, "seg");
  EXPECT_DOUBLE_EQ(a.plan.latency[0].match.start, 5);
  EXPECT_DOUBLE_EQ(a.plan.latency[0].match.end, 40);
  EXPECT_DOUBLE_EQ(a.plan.latency[0].base, 0.25);
  EXPECT_DOUBLE_EQ(a.plan.latency[0].jitter, 0.5);
  EXPECT_DOUBLE_EQ(a.plan.latency[0].probability, 0.75);
  ASSERT_EQ(a.plan.errors.size(), 1u);
  EXPECT_EQ(a.plan.errors[0].status, 503);
  EXPECT_DOUBLE_EQ(a.plan.errors[0].match.end, -1);
  ASSERT_EQ(a.plan.resets.size(), 1u);
  EXPECT_DOUBLE_EQ(a.plan.resets[0].after_fraction, 0.5);
  ASSERT_EQ(a.plan.rejects.size(), 1u);
  EXPECT_EQ(a.plan.rejects[0].every_nth, 3);
  ASSERT_EQ(a.plan.blackouts.size(), 1u);
  EXPECT_DOUBLE_EQ(a.plan.blackouts[0].start, 30);
  EXPECT_DOUBLE_EQ(a.plan.blackouts[0].duration, 4.5);
}

TEST(Repro, ParsesHandWrittenJsonWithReorderedKeysAndDefaults) {
  const ReproArtifact a = parse_repro(R"({
    "plan": {"errors": [{"status": 500}], "name": "hand"},
    "chaos_seed": 9,
    "service": "D2"
  })");
  EXPECT_EQ(a.service, "D2");
  EXPECT_EQ(a.profile_id, 7);       // default
  EXPECT_DOUBLE_EQ(a.duration, 120);  // default
  EXPECT_EQ(a.chaos_seed, 9u);
  ASSERT_EQ(a.plan.errors.size(), 1u);
  EXPECT_EQ(a.plan.errors[0].status, 500);
  EXPECT_DOUBLE_EQ(a.plan.errors[0].probability, 0.1);  // field default
  EXPECT_TRUE(a.plan.errors[0].match.url_contains.empty());
}

TEST(Repro, MalformedInputThrowsParseError) {
  EXPECT_THROW(parse_repro(""), ParseError);
  EXPECT_THROW(parse_repro("{"), ParseError);
  EXPECT_THROW(parse_repro("[]"), ParseError);          // not an object
  EXPECT_THROW(parse_repro("{\"service\": \"H1\"}"), ParseError);  // no plan
  EXPECT_THROW(parse_repro("{\"plan\": {}} trailing"), ParseError);
  EXPECT_THROW(parse_repro("{\"plan\": {\"seed\": }}"), ParseError);
}

TEST(Repro, EscapesQuotesAndBackslashesInStrings) {
  ReproArtifact artifact;
  artifact.service = "H1";
  artifact.plan.name = "odd \"name\" with \\ backslash";
  const ReproArtifact parsed = parse_repro(to_json(artifact));
  EXPECT_EQ(parsed.plan.name, artifact.plan.name);
}

TEST(Repro, CliLineNamesTheReplayCommand) {
  EXPECT_EQ(full_artifact().cli_line("out/chaos-17.json"),
            "vodx chaos --repro out/chaos-17.json");
}

}  // namespace
}  // namespace vodx::chaos
