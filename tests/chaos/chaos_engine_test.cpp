// The chaos engine end to end: jobs-independence of the report, the
// detect -> minimize -> repro pipeline against a hook-injected violation,
// and deterministic watchdog aborts.
#include "chaos/chaos.h"

#include <gtest/gtest.h>

#include <string>

#include "common/error.h"

namespace vodx::chaos {
namespace {

ChaosConfig quick_config(std::vector<std::uint64_t> seeds) {
  ChaosConfig config;
  config.seeds = std::move(seeds);
  config.services = {"H1", "D1"};
  config.profiles = {1, 7};
  config.duration = 15;
  config.wall_budget = 0;  // tests bound their own runtime
  return config;
}

TEST(ChaosEngine, SeedAloneDeterminesServiceProfileAndPlan) {
  ChaosConfig config = quick_config({0, 1, 2, 3});
  const ChaosReport a = run_chaos(config);
  const ChaosReport b = run_chaos(config);
  ASSERT_EQ(a.rows.size(), 4u);
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i].seed, config.seeds[i]);
    EXPECT_EQ(a.rows[i].service, b.rows[i].service);
    EXPECT_EQ(a.rows[i].profile_id, b.rows[i].profile_id);
    EXPECT_EQ(a.rows[i].plan, b.rows[i].plan);
    EXPECT_EQ(a.rows[i].ok, b.rows[i].ok);
  }
  EXPECT_EQ(chaos_report_text(a), chaos_report_text(b));
}

TEST(ChaosEngine, ReportIsByteIdenticalAcrossJobCounts) {
  ChaosConfig config = quick_config({0, 1, 2, 3, 4, 5, 6, 7});
  config.jobs = 1;
  const std::string serial = chaos_report_text(run_chaos(config));
  config.jobs = 4;
  const std::string parallel = chaos_report_text(run_chaos(config));
  EXPECT_EQ(serial, parallel);
}

TEST(ChaosEngine, MakeSessionRejectsBadCoordinates) {
  EXPECT_THROW(make_session("H1", 0, 30, 1, {}), ConfigError);
  EXPECT_THROW(make_session("H1", 99, 30, 1, {}), ConfigError);
  EXPECT_THROW(make_session("NOPE", 7, 30, 1, {}), ConfigError);
}

TEST(ChaosEngine, TraceAndContentSeedsArePureAndDistinct) {
  EXPECT_EQ(chaos_trace_seed(5), chaos_trace_seed(5));
  EXPECT_NE(chaos_trace_seed(5), chaos_trace_seed(6));
  EXPECT_NE(chaos_trace_seed(5), chaos_content_seed(5));
}

// The full pipeline, driven by a synthetic bug: the hook "fails" whenever
// the session ran under a plan carrying both a reset and a latency fault.
// The engine must catch it, shrink the plan to the two faults that matter,
// and emit an artifact whose replay still reproduces the violation.
TEST(ChaosEngine, HookViolationIsMinimizedAndReplaysFromArtifact) {
  // Find a seed whose generated plan has the reset+latency pair plus noise
  // to shrink away (pure search, no sessions).
  std::uint64_t seed = 0;
  bool found = false;
  for (; seed < 512; ++seed) {
    const faults::FaultPlan plan = generate_plan(seed);
    if (!plan.resets.empty() && !plan.latency.empty() &&
        fault_count(plan) >= 4) {
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found) << "no seed under 512 draws reset+latency+noise";

  const TestHook hook = [](const core::SessionConfig& config,
                           const core::SessionResult&, const obs::Observer&,
                           InvariantReport& report) {
    if (config.fault_plan && !config.fault_plan->resets.empty() &&
        !config.fault_plan->latency.empty()) {
      report.violations.push_back(
          {"hook.reset_latency", "synthetic pairing bug", 0});
    }
  };

  ChaosConfig config = quick_config({seed});
  config.duration = 10;
  config.test_hook = hook;
  const ChaosReport report = run_chaos(config);
  ASSERT_EQ(report.rows.size(), 1u);
  const ChaosRow& row = report.rows[0];
  EXPECT_EQ(report.violations, 1);
  EXPECT_FALSE(row.ok);
  EXPECT_NE(row.invariants.find("hook.reset_latency"), std::string::npos);
  ASSERT_TRUE(row.minimized);
  EXPECT_LE(row.minimized_faults, 2u);
  EXPECT_GT(row.minimize_runs, 0);
  EXPECT_LT(row.minimized_faults, row.faults);

  // The artifact is self-contained: parse it back from its own JSON and
  // replay — the violation must still fire.
  const ReproArtifact artifact = parse_repro(to_json(row.artifact));
  EXPECT_EQ(artifact.chaos_seed, seed);
  EXPECT_EQ(artifact.service, row.service);
  CheckOptions options;
  options.test_hook = hook;
  const CheckedRun replayed = replay(artifact, options);
  EXPECT_FALSE(replayed.ok());
  ASSERT_FALSE(replayed.report.violations.empty());
  EXPECT_EQ(replayed.report.violations[0].invariant, "hook.reset_latency");
}

TEST(ChaosEngine, RunCheckedNeverLetsASessionExceptionEscape) {
  // A degenerate config (negative duration) must come back as a report —
  // clean or violated — never as an exception out of run_checked.
  core::SessionConfig config = make_session("H1", 7, 5, 1, {});
  config.session_duration = -1;
  EXPECT_NO_THROW({
    const CheckedRun run = run_checked(config);
    (void)run;
  });
}

TEST(ChaosEngine, TinyWallBudgetTripsTheWatchdogAndSkipsMinimization) {
  ChaosConfig config = quick_config({0, 1});
  config.duration = 30;
  config.wall_budget = 1e-9;  // any session exceeds this at the first check
  const ChaosReport report = run_chaos(config);
  ASSERT_EQ(report.rows.size(), 2u);
  EXPECT_EQ(report.watchdogs, 2);
  EXPECT_EQ(report.violations, 0);
  EXPECT_FALSE(report.ok());
  for (const ChaosRow& row : report.rows) {
    EXPECT_TRUE(row.watchdog);
    EXPECT_FALSE(row.ok);
    EXPECT_FALSE(row.minimized) << "watchdog aborts are not minimized";
    EXPECT_NE(row.detail.find("watchdog"), std::string::npos);
    EXPECT_EQ(row.artifact.invariants, "watchdog");
  }
  const std::string text = chaos_report_text(report);
  EXPECT_NE(text.find("WATCHDOG"), std::string::npos);
  EXPECT_NE(text.find("2 watchdog abort(s)"), std::string::npos);
}

TEST(ChaosEngine, ReportTextIsStableAndNamesEveryRow) {
  ChaosConfig config = quick_config({3, 4});
  const ChaosReport report = run_chaos(config);
  const std::string text = chaos_report_text(report);
  EXPECT_NE(text.find("chaos: 2 seed(s)"), std::string::npos);
  for (const ChaosRow& row : report.rows) {
    EXPECT_NE(text.find(row.service), std::string::npos);
  }
}

}  // namespace
}  // namespace vodx::chaos
