// The invariant catalog: a clean session passes everything, fabricated
// corruption in each evidence stream is caught, and summaries render in
// stable catalog order.
#include "chaos/invariants.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "chaos/chaos.h"

namespace vodx::chaos {
namespace {

TEST(Invariants, CatalogNamesAreStable) {
  const std::vector<InvariantInfo>& catalog = invariant_catalog();
  const char* expected[] = {
      "time.monotone",     "span.balanced",        "buffer.bounds",
      "transfer.order",    "bytes.conservation",   "retry.bounds",
      "qoe.finite",        "stall.well_formed",    "session.completes",
      "cache.consistency", "coalesce.no_dup_fetch", "failover.bounded",
  };
  ASSERT_EQ(catalog.size(), std::size(expected));
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_STREQ(catalog[i].name, expected[i]);
    EXPECT_GT(std::strlen(catalog[i].description), 0u);
  }
}

TEST(Invariants, CleanSessionPassesTheWholeCatalog) {
  const CheckedRun run =
      run_checked(make_session("H1", 7, 30, /*chaos_seed=*/1, {}));
  EXPECT_FALSE(run.watchdog);
  EXPECT_TRUE(run.report.ok()) << run.report.summary();
  EXPECT_TRUE(run.ok());
}

TEST(Invariants, SummaryDedupesInCatalogOrderAndKeepsForeignNames) {
  InvariantReport report;
  report.violations.push_back({"qoe.finite", "a", 1});
  report.violations.push_back({"time.monotone", "b", 2});
  report.violations.push_back({"qoe.finite", "c", 3});
  report.violations.push_back({"hook.custom", "d", 4});
  EXPECT_EQ(report.summary(), "time.monotone, qoe.finite, hook.custom");
}

/// Fixture: a session config plus empty-but-valid evidence that passes the
/// catalog, which each test then corrupts in exactly one way.
struct Fabricated {
  Fabricated() : config(make_session("H1", 7, 30, 1, {})) {
    result.session_end = 30;
  }

  core::SessionConfig config;
  core::SessionResult result;
  obs::Observer observer;

  InvariantReport check() {
    return check_invariants(config, result, observer);
  }
};

TEST(Invariants, EmptyEvidencePasses) {
  Fabricated f;
  EXPECT_TRUE(f.check().ok()) << f.check().summary();
}

TEST(Invariants, NonFiniteQoeComponentIsFlagged) {
  Fabricated f;
  f.result.qoe.startup_delay = std::nan("");
  EXPECT_EQ(f.check().summary(), "qoe.finite");
}

TEST(Invariants, SessionEndPastDurationIsFlagged) {
  Fabricated f;
  f.result.session_end = 31;  // duration 30, tick 0.01
  EXPECT_EQ(f.check().summary(), "qoe.finite");
}

TEST(Invariants, OverlappingStallsAreFlagged) {
  Fabricated f;
  f.result.events.stalls.push_back({1, 5});
  f.result.events.stalls.push_back({3, 6});  // starts inside the previous
  EXPECT_EQ(f.check().summary(), "stall.well_formed");
}

TEST(Invariants, OpenEndedStallMustBeLast) {
  Fabricated f;
  f.result.events.stalls.push_back({1, -1});
  f.result.events.stalls.push_back({5, 6});
  EXPECT_EQ(f.check().summary(), "stall.well_formed");
}

TEST(Invariants, DownloadCompletingBeforeItsRequestIsFlagged) {
  Fabricated f;
  core::SegmentDownload d;
  d.requested_at = 10;
  d.completed_at = 8;
  d.bytes = 1000;
  f.result.traffic.downloads.push_back(d);
  EXPECT_EQ(f.check().summary(), "transfer.order");
}

TEST(Invariants, NegativeDownloadBytesAreFlagged) {
  Fabricated f;
  core::SegmentDownload d;
  d.requested_at = 10;
  d.completed_at = 12;
  d.bytes = -5;
  f.result.traffic.downloads.push_back(d);
  EXPECT_EQ(f.check().summary(), "transfer.order");
}

TEST(Invariants, MediaBytesExceedingWireBytesAreFlagged) {
  Fabricated f;
  f.result.ground_truth.media_bytes = 2000;
  f.result.ground_truth.total_bytes = 1000;
  EXPECT_EQ(f.check().summary(), "bytes.conservation");
}

TEST(Invariants, FetchFailuresBeyondWireAttemptsAreFlagged) {
  Fabricated f;
  f.observer.metrics.counter("http.requests").add(2);
  f.observer.metrics.counter("player.fetch_failures").add(5);
  EXPECT_EQ(f.check().summary(), "retry.bounds");
}

TEST(Invariants, TraceEventMovingBackwardsIsFlagged) {
  Fabricated f;
  f.observer.trace.instant(5, obs::Category::kSession, "a", 0, {});
  f.observer.trace.instant(2, obs::Category::kSession, "b", 0, {});
  const InvariantReport report = f.check();
  EXPECT_NE(report.summary().find("time.monotone"), std::string::npos)
      << report.summary();
}

}  // namespace
}  // namespace vodx::chaos
