// vodx::faults unit coverage: the scenario catalog, blackout trace carving,
// the hardened player profile, and the injector's seed-derived decisions.
#include "faults/fault_plan.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.h"
#include "faults/fault_injector.h"
#include "http/message.h"

namespace vodx::faults {
namespace {

TEST(ScenarioCatalog, NoneBaselinePlusAtLeastFourPathologies) {
  const std::vector<Scenario>& catalog = scenario_catalog();
  ASSERT_FALSE(catalog.empty());
  EXPECT_EQ(catalog.front().name, "none");
  EXPECT_TRUE(catalog.front().plan.empty());
  int pathologies = 0;
  for (const Scenario& s : catalog) {
    EXPECT_FALSE(s.description.empty()) << s.name;
    if (!s.plan.empty()) ++pathologies;
  }
  EXPECT_GE(pathologies, 4);
}

TEST(ScenarioCatalog, LookupByNameAndUnknownThrows) {
  EXPECT_FALSE(scenario("resets").resets.empty());
  EXPECT_FALSE(scenario("blackout").blackouts.empty());
  EXPECT_TRUE(scenario("none").empty());
  EXPECT_THROW(scenario("no-such-scenario"), ConfigError);
}

TEST(ApplyBlackouts, CarvesZeroBandwidthWindows) {
  const net::BandwidthTrace trace = net::BandwidthTrace::constant(5e6, 600);
  const net::BandwidthTrace cut =
      apply_blackouts(trace, {{120, 20}, {300, 15}});
  EXPECT_DOUBLE_EQ(cut.duration(), trace.duration());
  EXPECT_DOUBLE_EQ(cut.at(119), 5e6);
  EXPECT_DOUBLE_EQ(cut.at(121), 0);
  EXPECT_DOUBLE_EQ(cut.at(139.5), 0);
  EXPECT_DOUBLE_EQ(cut.at(141), 5e6);
  EXPECT_DOUBLE_EQ(cut.at(310), 0);
  EXPECT_DOUBLE_EQ(cut.at(316), 5e6);
}

TEST(HardenedConfig, EnablesEveryResilienceKnob) {
  player::PlayerConfig base;
  player::PlayerConfig h = hardened(base, 0xABCDEF);
  EXPECT_GT(h.fetch_timeout, 0);
  EXPECT_GT(h.fetch_retries, base.fetch_retries);
  EXPECT_GT(h.retry_jitter, 0);
  EXPECT_TRUE(h.abandon_downswitch);
  EXPECT_EQ(h.resilience_seed, 0xABCDEFu);
  EXPECT_GT(h.manifest_retries, 0);
  EXPECT_TRUE(h.tolerate_variant_loss);
}

http::Request seg_request(int i) {
  return {http::Method::kGet, "/video/0/seg" + std::to_string(i) + ".ts", {}};
}

/// Runs `n` requests through the injector and fingerprints every decision.
std::string decisions(FaultInjector& injector, int n, Seconds now = 100) {
  std::string out;
  for (int i = 0; i < n; ++i) {
    const http::Request request = seg_request(i);
    std::optional<http::Response> injected =
        injector.on_request(request, now);
    http::Response response =
        injected ? *injected : http::make_media("video/mp2t", 40000);
    injector.on_response(request, response, now);
    out += injected ? 'E' : '.';
    out += response.reset_after >= 0 ? 'R' : '.';
    out += response.added_latency > 0 ? 'L' : '.';
  }
  return out;
}

FaultPlan mixed_plan(std::uint64_t seed) {
  FaultPlan plan;
  plan.name = "mixed";
  plan.seed = seed;
  plan.errors.push_back({{}, 503, 0.2});
  plan.resets.push_back({{}, 0.5, 0.2});
  plan.latency.push_back({{}, 0.3, 0.2, 0.4});
  return plan;
}

TEST(FaultInjector, SameSeedSameSchedule) {
  FaultInjector a(mixed_plan(17));
  FaultInjector b(mixed_plan(17));
  const std::string da = decisions(a, 200);
  EXPECT_EQ(da, decisions(b, 200));
  EXPECT_EQ(a.stats().errors, b.stats().errors);
  EXPECT_EQ(a.stats().resets, b.stats().resets);
  EXPECT_EQ(a.stats().delayed, b.stats().delayed);
  // ~20% rates actually fire over 200 draws.
  EXPECT_GT(a.stats().errors, 10);
  EXPECT_GT(a.stats().resets, 10);
  EXPECT_GT(a.stats().delayed, 10);
}

TEST(FaultInjector, DifferentSeedDifferentSchedule) {
  FaultInjector a(mixed_plan(17));
  FaultInjector b(mixed_plan(18));
  EXPECT_NE(decisions(a, 200), decisions(b, 200));
}

TEST(FaultInjector, EveryNthRejectCountsOnlyMatches) {
  FaultPlan plan;
  plan.rejects.push_back({{/*url_contains=*/"seg"}, /*every_nth=*/3});
  FaultInjector injector(plan);
  int rejected = 0;
  for (int i = 0; i < 9; ++i) {
    // Non-matching traffic interleaved: it must not advance the counter.
    http::Request manifest{http::Method::kGet, "/master.m3u8", {}};
    EXPECT_FALSE(injector.on_request(manifest, 0).has_value());
    http::Response pass = http::make_ok("application/vnd.apple.mpegurl", "#");
    injector.on_response(manifest, pass, 0);

    const http::Request request = seg_request(i);
    std::optional<http::Response> injected = injector.on_request(request, 0);
    if (injected) {
      ++rejected;
      EXPECT_EQ(injected->status, 403);
    }
    http::Response response =
        injected ? *injected : http::make_media("video/mp2t", 1000);
    injector.on_response(request, response, 0);
  }
  EXPECT_EQ(rejected, 3);  // every 3rd of 9 matching requests
  EXPECT_EQ(injector.stats().rejected, 3);
}

TEST(FaultInjector, DeterministicLatencyAndResetMagnitudes) {
  FaultPlan plan;
  plan.latency.push_back({{}, /*base=*/0.2, /*jitter=*/0, /*probability=*/1});
  plan.resets.push_back({{}, /*after_fraction=*/0.5, /*probability=*/1});
  FaultInjector injector(plan);
  const http::Request request = seg_request(0);
  http::Response response = http::make_media("video/mp2t", 40000);
  const Bytes wire = response.wire_size();
  injector.on_response(request, response, 0);
  EXPECT_DOUBLE_EQ(response.added_latency, 0.2);
  EXPECT_EQ(response.reset_after, wire / 2);

  // Error responses move no media bytes: latency still applies, resets don't.
  http::Response error = http::make_error(503, "x");
  injector.on_response(request, error, 0);
  EXPECT_DOUBLE_EQ(error.added_latency, 0.2);
  EXPECT_EQ(error.reset_after, -1);
}

TEST(FaultInjector, TimeWindowGatesFaults) {
  FaultPlan plan;
  ErrorFault fault;
  fault.match.start = 10;
  fault.match.end = 20;
  fault.probability = 1;
  plan.errors.push_back(fault);
  FaultInjector injector(plan);
  EXPECT_FALSE(injector.on_request(seg_request(0), 5).has_value());
  EXPECT_TRUE(injector.on_request(seg_request(0), 15).has_value());
  EXPECT_FALSE(injector.on_request(seg_request(0), 25).has_value());
  EXPECT_EQ(injector.stats().errors, 1);
}

}  // namespace
}  // namespace vodx::faults
