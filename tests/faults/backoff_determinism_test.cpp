// Satellite of the chaos PR: sessions whose fault plans force retries (and
// thus the seeded jittered-backoff path) must serialize byte-identically at
// --jobs 1, 2 and 8 — backoff timing derives from seeds, never from thread
// scheduling.
#include <gtest/gtest.h>

#include <string>

#include "batch/sweep.h"
#include "faults/fault_plan.h"
#include "testing/fixtures.h"

namespace vodx::faults {
namespace {

batch::SweepConfig retry_heavy_grid() {
  batch::SweepConfig config;
  services::ServiceSpec hls = testing::test_spec(manifest::Protocol::kHls);
  services::ServiceSpec dash = testing::test_spec(manifest::Protocol::kDash);
  hls.name = "TH";
  hls.player.name = "TH";
  dash.name = "TD";
  dash.player.name = "TD";
  config.services = {hls, dash};
  config.profiles = {1, 7};
  config.seeds = {0, 5};
  // Scenarios that hammer the retry/backoff machinery: transient 5xx and
  // connection resets both route through handle_fetch_failure's seeded
  // jittered backoff.
  config.fault_scenarios = {"flaky-origin", "resets"};
  config.session_duration = 30;
  config.content_duration = 120;
  return config;
}

TEST(BackoffDeterminism, RetryingSweepIsByteIdenticalAcrossJobs) {
  batch::SweepConfig config = retry_heavy_grid();

  config.jobs = 1;
  const batch::SweepResult serial = batch::run_sweep(config);
  const std::string jsonl_1 = batch::sweep_jsonl(serial);
  const std::string csv_1 = batch::sweep_csv(serial);

  // The grid must have exercised retries at all, or the test is vacuous:
  // at least one faulted cell must have seen injected failures.
  bool any_faults = false;
  for (const batch::CellResult& cell : serial.cells) {
    if (!cell.ok) continue;
    if (cell.result.faults.errors > 0 || cell.result.faults.resets > 0) {
      any_faults = true;
      break;
    }
  }
  EXPECT_TRUE(any_faults) << "no scenario injected anything; grid too gentle";

  for (int jobs : {2, 8}) {
    config.jobs = jobs;
    const batch::SweepResult parallel = batch::run_sweep(config);
    EXPECT_EQ(batch::sweep_jsonl(parallel), jsonl_1) << "jobs " << jobs;
    EXPECT_EQ(batch::sweep_csv(parallel), csv_1) << "jobs " << jobs;
  }
}

TEST(BackoffDeterminism, HardenedBackoffJitterIsSeedPure) {
  const player::PlayerConfig base = testing::test_spec().player;
  const player::PlayerConfig a = hardened(base, 7);
  const player::PlayerConfig b = hardened(base, 7);
  const player::PlayerConfig c = hardened(base, 8);
  EXPECT_EQ(a.retry_backoff, b.retry_backoff);
  EXPECT_EQ(a.fetch_retries, b.fetch_retries);
  // Different seeds may legitimately coincide on some fields, but the
  // hardened envelope itself must be reproducible per seed.
  EXPECT_EQ(hardened(base, 8).retry_backoff, c.retry_backoff);
}

}  // namespace
}  // namespace vodx::faults
