// The determinism contract extended to the fault axis: a (service × profile
// × seed × fault-scenario) grid serializes byte-identically at any --jobs,
// the fault schedule derives only from the cell coordinates, and unknown
// scenario names degrade to per-cell failures.
#include <gtest/gtest.h>

#include <string>

#include "batch/sweep.h"
#include "faults/fault_plan.h"

namespace vodx::batch {
namespace {

SweepConfig fault_grid(int jobs) {
  SweepConfig config;
  const std::vector<services::ServiceSpec>& catalog = services::catalog();
  config.services = {catalog[0], catalog[4], catalog[8], catalog[11]};
  config.profiles = {7};
  config.fault_scenarios.clear();
  for (const faults::Scenario& s : faults::scenario_catalog()) {
    config.fault_scenarios.push_back(s.name);
  }
  config.session_duration = 120;
  config.jobs = jobs;
  return config;
}

TEST(FaultSweepDeterminism, FaultAxisByteIdenticalAcrossJobCounts) {
  const SweepResult serial = run_sweep(fault_grid(1));
  ASSERT_EQ(serial.cells.size(),
            4 * faults::scenario_catalog().size());
  ASSERT_EQ(serial.failed, 0);
  const std::string csv1 = sweep_csv(serial);
  const std::string jsonl1 = sweep_jsonl(serial);

  for (int jobs : {2, 8}) {
    const SweepResult parallel = run_sweep(fault_grid(jobs));
    EXPECT_EQ(parallel.failed, 0);
    EXPECT_EQ(sweep_csv(parallel), csv1) << "jobs=" << jobs;
    EXPECT_EQ(sweep_jsonl(parallel), jsonl1) << "jobs=" << jobs;
  }
}

TEST(FaultSweepDeterminism, FaultSeedIsAPureFunctionOfCoordinates) {
  EXPECT_EQ(fault_seed_for(0, 1, 2, 3), fault_seed_for(0, 1, 2, 3));
  // Every coordinate perturbs the schedule seed.
  EXPECT_NE(fault_seed_for(0, 1, 2, 3), fault_seed_for(1, 1, 2, 3));
  EXPECT_NE(fault_seed_for(0, 1, 2, 3), fault_seed_for(0, 2, 2, 3));
  EXPECT_NE(fault_seed_for(0, 1, 2, 3), fault_seed_for(0, 1, 3, 3));
  EXPECT_NE(fault_seed_for(0, 1, 2, 3), fault_seed_for(0, 1, 2, 4));
}

TEST(FaultSweepDeterminism, UnknownScenarioIsAPerCellFailure) {
  SweepConfig config;
  config.services = {services::catalog()[0]};
  config.profiles = {7};
  config.fault_scenarios = {"none", "no-such-scenario"};
  config.session_duration = 30;
  config.jobs = 2;
  const SweepResult result = run_sweep(config);
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_EQ(result.failed, 1);
  EXPECT_TRUE(result.cells[0].ok);
  EXPECT_FALSE(result.cells[1].ok);
  EXPECT_NE(result.cells[1].error.find("unknown fault scenario"),
            std::string::npos);
  // Failed coordinates name the scenario for the diagnostics line.
  EXPECT_NE(result.cells[1].coordinates().find("no-such-scenario"),
            std::string::npos);
}

TEST(FaultSweepDeterminism, DefaultAxisKeepsLegacyGridShape) {
  // No fault axis requested: one implicit "none" entry, indices and CSV
  // coordinates exactly as the pre-fault engine produced them.
  SweepConfig config;
  config.services = {services::catalog()[0]};
  config.profiles = {3, 7};
  config.session_duration = 30;
  const SweepResult result = run_sweep(config);
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_EQ(result.cells[0].profile_id, 3);
  EXPECT_EQ(result.cells[1].profile_id, 7);
  for (const CellResult& cell : result.cells) {
    EXPECT_EQ(cell.fault, "none");
    EXPECT_EQ(cell.cell.fault_index, 0);
    // "none" cells run without a fault plan at all.
    EXPECT_EQ(cell.result.faults.rejected, 0);
    EXPECT_EQ(cell.coordinates().find("fault"), std::string::npos);
  }
}

}  // namespace
}  // namespace vodx::batch
