// Shared strict argument parsing for the repo's command-line tools.
//
// Every tool follows the same grammar: a handful of `--flag value` pairs,
// a few bare `--flag` switches, and at most one kind of positional token.
// Args is a cursor over argv that makes the canonical parse loop flat:
//
//   Args args(argc, argv);
//   while (!args.done()) {
//     if (const char* v = args.value("--jobs")) jobs = std::atoi(v);
//     else if (args.flag("--progress")) progress = true;
//     else if (const char* tok = args.positional()) use(tok);
//     else args.unknown();
//   }
//   if (args.failed()) return usage();
//
// Unknown options and flags missing their value are reported to stderr and
// latch failed(); parsing continues so every mistake is reported in one run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "obs/observer.h"

namespace vodx::tools {

class Args {
 public:
  Args(int argc, char** argv) : argc_(argc), argv_(argv) {}

  bool done() const { return i_ >= argc_; }
  const char* current() const { return done() ? "" : argv_[i_]; }
  void advance() {
    if (!done()) ++i_;
  }

  /// Matches `--flag value`: returns the value and consumes both tokens, or
  /// nullptr when the current token is something else. A matching flag with
  /// no value following it is reported and latches failed().
  const char* value(const char* flag);

  /// Matches a bare `--flag` and consumes it.
  bool flag(const char* name);

  /// Consumes and returns the current token when it is not flag-shaped;
  /// nullptr otherwise. Negative numbers ("-1", "-0.5") are positionals,
  /// not flags.
  const char* positional();

  /// The current token matched nothing: report it, latch failed(), skip it.
  void unknown();

  bool failed() const { return failed_; }

  /// '-' followed by anything except a digit or '.' — so "--jobs" and "-v"
  /// are flags but negative numeric values ("-1", "-.5") are not and flow
  /// through value()/positional() unharmed (e.g. `--budget -1` = unlimited).
  static bool looks_like_flag(const char* token) {
    if (token == nullptr || token[0] != '-' || token[1] == '\0') return false;
    const char next = token[1];
    return !(next >= '0' && next <= '9') && next != '.';
  }

 private:
  int argc_;
  char** argv_;
  int i_ = 0;
  bool failed_ = false;
};

/// Expands "all", "3", "1-5" and comma-joined mixes of those into a list of
/// integers; malformed tokens are reported to stderr and skipped. `what`
/// names the quantity in diagnostics ("profile", "seed", ...).
std::vector<std::int64_t> parse_int_list(const std::string& text,
                                         std::int64_t all_lo,
                                         std::int64_t all_hi,
                                         const char* what);

/// Splits a comma-separated name list, trimming blanks; "all" expands to
/// `all_names`.
std::vector<std::string> parse_name_list(
    const std::string& text, const std::vector<std::string>& all_names);

/// Observability outputs requested on the command line. The observer is
/// created lazily by the caller: a session without any -out flag runs
/// untraced (and thus at full speed).
struct ObsOutputs {
  std::string chrome_trace_path;  ///< --trace-out (chrome://tracing JSON)
  std::string jsonl_path;         ///< --events-out (one event per line)
  std::string metrics_path;       ///< --metrics-out (text table)

  bool wanted() const {
    return !chrome_trace_path.empty() || !jsonl_path.empty() ||
           !metrics_path.empty();
  }

  /// Consumes one `--*-out value` pair if the cursor points at one.
  bool parse(Args& args);

  void write(const obs::Observer& observer, Seconds session_end) const;
};

}  // namespace vodx::tools
