#include "arg_parse.h"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/error.h"
#include "common/strings.h"
#include "obs/export.h"

namespace vodx::tools {

const char* Args::value(const char* flag) {
  if (done() || std::strcmp(argv_[i_], flag) != 0) return nullptr;
  if (i_ + 1 >= argc_) {
    std::fprintf(stderr, "error: %s needs a value\n", flag);
    failed_ = true;
    advance();
    return nullptr;
  }
  i_ += 2;
  return argv_[i_ - 1];
}

bool Args::flag(const char* name) {
  if (done() || std::strcmp(argv_[i_], name) != 0) return false;
  advance();
  return true;
}

const char* Args::positional() {
  if (done() || looks_like_flag(argv_[i_])) return nullptr;
  return argv_[i_++];
}

void Args::unknown() {
  if (done()) return;
  std::fprintf(stderr, "error: unknown or incomplete option %s\n", argv_[i_]);
  failed_ = true;
  advance();
}

std::vector<std::int64_t> parse_int_list(const std::string& text,
                                         std::int64_t all_lo,
                                         std::int64_t all_hi,
                                         const char* what) {
  std::vector<std::int64_t> out;
  for (const std::string& token : split(text, ',')) {
    const std::string t(trim(token));
    if (t.empty()) continue;
    if (t == "all") {
      for (std::int64_t v = all_lo; v <= all_hi; ++v) out.push_back(v);
      continue;
    }
    try {
      // Ranges: "lo-hi" or "lo..hi" (the latter stays unambiguous with
      // negative endpoints, e.g. "-3..3").
      const std::size_t dots = t.find("..");
      const std::size_t dash =
          dots == std::string::npos ? t.find('-', 1) : std::string::npos;
      if (dots != std::string::npos) {
        const std::int64_t lo = parse_int(t.substr(0, dots));
        const std::int64_t hi = parse_int(t.substr(dots + 2));
        for (std::int64_t v = lo; v <= hi; ++v) out.push_back(v);
      } else if (dash == std::string::npos) {
        out.push_back(parse_int(t));
      } else {
        const std::int64_t lo = parse_int(t.substr(0, dash));
        const std::int64_t hi = parse_int(t.substr(dash + 1));
        for (std::int64_t v = lo; v <= hi; ++v) out.push_back(v);
      }
    } catch (const Error&) {
      std::fprintf(stderr, "bad %s token \"%s\" — skipped\n", what, t.c_str());
    }
  }
  return out;
}

std::vector<std::string> parse_name_list(
    const std::string& text, const std::vector<std::string>& all_names) {
  std::vector<std::string> out;
  for (const std::string& token : split(text, ',')) {
    const std::string name(trim(token));
    if (name.empty()) continue;
    if (name == "all") {
      out.insert(out.end(), all_names.begin(), all_names.end());
      continue;
    }
    out.push_back(name);
  }
  return out;
}

bool ObsOutputs::parse(Args& args) {
  if (const char* v = args.value("--trace-out")) {
    chrome_trace_path = v;
    return true;
  }
  if (const char* v = args.value("--events-out")) {
    jsonl_path = v;
    return true;
  }
  if (const char* v = args.value("--metrics-out")) {
    metrics_path = v;
    return true;
  }
  return false;
}

void ObsOutputs::write(const obs::Observer& observer,
                       Seconds session_end) const {
  auto open = [](const std::string& path) {
    std::ofstream out(path);
    if (!out) throw Error(format("cannot write %s", path.c_str()));
    return out;
  };
  if (!chrome_trace_path.empty()) {
    std::ofstream out = open(chrome_trace_path);
    obs::write_chrome_trace(observer.trace, out);
    std::fprintf(stderr, "wrote %s (%zu events; open in chrome://tracing)\n",
                 chrome_trace_path.c_str(), observer.trace.size());
  }
  if (!jsonl_path.empty()) {
    std::ofstream out = open(jsonl_path);
    obs::write_jsonl(observer.trace, out);
  }
  if (!metrics_path.empty()) {
    std::ofstream out = open(metrics_path);
    out << obs::metrics_report(observer.metrics.snapshot(session_end));
  }
}

}  // namespace vodx::tools
