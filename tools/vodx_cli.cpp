// vodx command-line tool: the library's main entry points without writing
// C++.
//
//   vodx list                      — catalogue of the 12 services
//   vodx play <svc> <profile>      — run a session, print the QoE report
//   vodx play <svc> --trace f.txt  — ... over a recorded 1 Hz trace file
//   vodx play <svc> --trace-out session.trace.json
//                                  — also export a Chrome/Perfetto timeline
//   vodx dissect <svc>             — black-box Table-1 row for a service
//   vodx trace <profile> [out]     — emit a cellular profile as text
//   vodx energy <svc> [profile]    — RRC radio-energy analysis (§3.3.2)
//   vodx sweep [...]               — parallel (service × profile × seed) grid
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "batch/sweep.h"
#include "common/error.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/design_inference.h"
#include "core/qoe.h"
#include "core/radio_energy.h"
#include "core/report.h"
#include "core/session.h"
#include "obs/export.h"
#include "obs/observer.h"
#include "trace/cellular_profiles.h"
#include "trace/trace_io.h"

using namespace vodx;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  vodx list\n"
      "  vodx play <service> [profile=7 | --trace file] [--csv|--buffer-csv]\n"
      "            [--trace-out f.json] [--events-out f.jsonl]\n"
      "            [--metrics-out f.txt]\n"
      "  vodx dissect <service>\n"
      "  vodx trace <profile> [out.txt]\n"
      "  vodx energy <service> [profile=7]\n"
      "  vodx sweep [--services all|H1,D2,...] [--profiles all|1-14|2,5]\n"
      "             [--seeds 0|0-4|1,7] [--jobs N] [--duration secs]\n"
      "             [--csv out.csv] [--jsonl out.jsonl] [--progress]\n"
      "        runs the grid in parallel; output is byte-identical for\n"
      "        every --jobs value. Default: full 12x14 grid, seed 0,\n"
      "        one worker per hardware thread, CSV on stdout.\n");
  return 2;
}

/// Observability outputs requested on the command line. The observer is
/// created lazily: a session without any -out flag runs untraced (and thus
/// at full speed).
struct ObsOutputs {
  std::string chrome_trace_path;  ///< --trace-out (chrome://tracing JSON)
  std::string jsonl_path;         ///< --events-out (one event per line)
  std::string metrics_path;       ///< --metrics-out (text table)

  bool wanted() const {
    return !chrome_trace_path.empty() || !jsonl_path.empty() ||
           !metrics_path.empty();
  }

  /// Consumes `--trace-out f` style pairs; returns true if argv[i] matched
  /// (i is advanced past the value).
  bool parse(int argc, char** argv, int& i) {
    auto take = [&](const char* flag, std::string& out) {
      if (std::strcmp(argv[i], flag) != 0 || i + 1 >= argc) return false;
      out = argv[++i];
      return true;
    };
    return take("--trace-out", chrome_trace_path) ||
           take("--events-out", jsonl_path) ||
           take("--metrics-out", metrics_path);
  }

  void write(const obs::Observer& observer, Seconds session_end) const {
    auto open = [](const std::string& path) {
      std::ofstream out(path);
      if (!out) throw Error(format("cannot write %s", path.c_str()));
      return out;
    };
    if (!chrome_trace_path.empty()) {
      std::ofstream out = open(chrome_trace_path);
      obs::write_chrome_trace(observer.trace, out);
      std::fprintf(stderr, "wrote %s (%zu events; open in chrome://tracing)\n",
                   chrome_trace_path.c_str(), observer.trace.size());
    }
    if (!jsonl_path.empty()) {
      std::ofstream out = open(jsonl_path);
      obs::write_jsonl(observer.trace, out);
    }
    if (!metrics_path.empty()) {
      std::ofstream out = open(metrics_path);
      out << obs::metrics_report(observer.metrics.snapshot(session_end));
    }
  }
};

int cmd_list() {
  Table table({"service", "protocol", "tracks", "segdur", "audio",
               "startup", "pausing/resuming", "notes"});
  for (const services::ServiceSpec& s : services::catalog()) {
    std::string notes;
    if (s.player.sr != player::SrPolicy::kNone) notes += "SR ";
    if (s.player.abr == player::AbrKind::kOscillating) notes += "unstable ";
    if (s.encrypt_manifest) notes += "encrypted-mpd ";
    if (s.player.split_segment_downloads) notes += "split-dl ";
    if (!s.player.persistent_connections) notes += "non-persistent ";
    table.add_row({s.name, to_string(s.protocol),
                   std::to_string(s.video_ladder.size()),
                   format("%.0f s", s.segment_duration),
                   s.separate_audio ? "separate" : "muxed",
                   format("%.0f s @%.2f M", s.player.startup_buffer,
                          s.player.startup_bitrate / 1e6),
                   format("%.0f/%.0f s", s.player.pausing_threshold,
                          s.player.resuming_threshold),
                   notes.empty() ? "-" : notes});
  }
  table.print();
  return 0;
}

core::SessionResult run(const services::ServiceSpec& spec,
                        net::BandwidthTrace trace,
                        obs::Observer* observer = nullptr) {
  core::SessionConfig config;
  config.spec = spec;
  config.trace = std::move(trace);
  config.session_duration = 600;
  config.content_duration = 600;
  config.observer = observer;
  return core::run_session(config);
}

int cmd_play(const std::string& service, int argc, char** argv) {
  net::BandwidthTrace trace = trace::cellular_profile(7);
  bool csv = false;
  bool buffer_csv_out = false;
  ObsOutputs outputs;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace = trace::load_trace(argv[++i]);
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else if (std::strcmp(argv[i], "--buffer-csv") == 0) {
      buffer_csv_out = true;
    } else if (outputs.parse(argc, argv, i)) {
      // consumed a --*-out flag and its value
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "error: unknown or incomplete option %s\n",
                   argv[i]);
      return usage();
    } else {
      trace = trace::cellular_profile(std::atoi(argv[i]));
    }
  }
  const services::ServiceSpec& spec = services::service(service);
  std::unique_ptr<obs::Observer> observer;
  if (outputs.wanted()) observer = std::make_unique<obs::Observer>();
  core::SessionResult r = run(spec, trace, observer.get());
  if (observer != nullptr) outputs.write(*observer, r.session_end);
  if (buffer_csv_out) {
    std::fputs(core::buffer_csv(r).c_str(), stdout);
    return 0;
  }
  if (csv) {
    std::fputs(core::qoe_csv_header().c_str(), stdout);
    std::fputs(core::qoe_csv_row(spec.name, r).c_str(), stdout);
    return 0;
  }

  std::printf("%s over %s (mean %.2f Mbps): %s\n\n", spec.name.c_str(),
              trace.name().empty() ? "trace" : trace.name().c_str(),
              trace.mean() / 1e6, player::to_string(r.final_state));
  std::printf("  startup delay        %.2f s\n", r.qoe.startup_delay);
  std::printf("  stalls               %d (%.1f s)\n", r.qoe.stall_count,
              r.qoe.total_stall);
  std::printf("  avg declared bitrate %.2f Mbps\n",
              r.qoe.average_declared_bitrate / 1e6);
  std::printf("  track switches       %d (%d non-consecutive)\n",
              r.qoe.switch_count, r.qoe.nonconsecutive_switch_count);
  std::printf("  data usage           %.1f MB (%.1f MB wasted)\n",
              static_cast<double>(r.qoe.total_bytes) / 1e6,
              static_cast<double>(r.qoe.wasted_bytes) / 1e6);
  std::printf("  QoE score            %.2f\n",
              core::qoe_score(r.qoe, r.session_end));
  return 0;
}

int cmd_dissect(const std::string& service) {
  core::InferredDesign d = core::infer_design(services::service(service));
  std::printf("%s (black-box):\n", service.c_str());
  std::printf("  segment duration    %.0f s\n", d.segment_duration);
  std::printf("  separate audio      %s\n", d.separate_audio ? "yes" : "no");
  std::printf("  max TCP             %d (%s)\n", d.max_tcp,
              d.persistent_tcp ? "persistent" : "non-persistent");
  std::printf("  startup             %.0f s / %d segments @ %.2f Mbps\n",
              d.startup_buffer, d.startup_segments, d.startup_bitrate / 1e6);
  std::printf("  pausing/resuming    %.0f / %.0f s\n", d.pausing_threshold,
              d.resuming_threshold);
  std::printf("  stable / aggressive %s / %s\n", d.stable ? "yes" : "NO",
              d.aggressive ? "yes" : "no");
  return 0;
}

int cmd_trace(int profile, const char* out) {
  net::BandwidthTrace trace = trace::cellular_profile(profile);
  if (out != nullptr) {
    trace::save_trace(trace, out);
    std::printf("wrote %s (mean %.2f Mbps)\n", out, trace.mean() / 1e6);
  } else {
    std::fputs(trace::to_text(trace).c_str(), stdout);
  }
  return 0;
}

int cmd_energy(const std::string& service, int profile) {
  const services::ServiceSpec& spec = services::service(service);
  core::SessionResult r = run(spec, trace::cellular_profile(profile));
  core::RadioEnergyReport energy = core::radio_energy(r.traffic, r.session_end);
  std::printf("%s on profile %d:\n", service.c_str(), profile);
  std::printf("  threshold gap        %.0f s (RRC demotion timer 11 s)\n",
              spec.player.pausing_threshold - spec.player.resuming_threshold);
  std::printf("  radio active/tail    %.0f / %.0f s\n", energy.active_time,
              energy.tail_time);
  std::printf("  high-power fraction  %.1f%%\n",
              energy.high_power_fraction() * 100);
  std::printf("  radio energy         %.0f J\n", energy.energy_joules);
  return 0;
}

/// Expands "all", "3", "1-5" and comma-joined mixes of those into a list of
/// integers; malformed tokens are reported to stderr and skipped.
std::vector<std::int64_t> parse_int_list(const std::string& text,
                                         std::int64_t all_lo,
                                         std::int64_t all_hi,
                                         const char* what) {
  std::vector<std::int64_t> out;
  for (const std::string& token : split(text, ',')) {
    const std::string t(trim(token));
    if (t.empty()) continue;
    if (t == "all") {
      for (std::int64_t v = all_lo; v <= all_hi; ++v) out.push_back(v);
      continue;
    }
    try {
      const std::size_t dash = t.find('-', 1);  // allow negative first number
      if (dash == std::string::npos) {
        out.push_back(parse_int(t));
      } else {
        const std::int64_t lo = parse_int(t.substr(0, dash));
        const std::int64_t hi = parse_int(t.substr(dash + 1));
        for (std::int64_t v = lo; v <= hi; ++v) out.push_back(v);
      }
    } catch (const Error&) {
      std::fprintf(stderr, "sweep: bad %s token \"%s\" — skipped\n", what,
                   t.c_str());
    }
  }
  return out;
}

int cmd_sweep(int argc, char** argv) {
  batch::SweepConfig config = batch::full_grid();
  config.jobs = 0;  // one worker per hardware thread
  std::string csv_path;
  std::string jsonl_path;
  bool progress = false;

  for (int i = 0; i < argc; ++i) {
    auto value = [&](const char* flag) -> const char* {
      if (std::strcmp(argv[i], flag) != 0) return nullptr;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (const char* v = value("--services")) {
      config.services.clear();
      for (const std::string& token : split(v, ',')) {
        const std::string name(trim(token));
        if (name.empty()) continue;
        if (name == "all") {
          config.services = services::catalog();
          continue;
        }
        try {
          config.services.push_back(services::service(name));
        } catch (const Error& e) {
          std::fprintf(stderr, "sweep: cell (%s, *, *): %s — skipped\n",
                       name.c_str(), e.what());
        }
      }
    } else if (const char* v = value("--profiles")) {
      // Out-of-range ids are kept: they become per-cell failures reported
      // with their coordinates, so one bad id never aborts the grid.
      config.profiles.clear();
      for (std::int64_t id :
           parse_int_list(v, 1, trace::kProfileCount, "profile")) {
        config.profiles.push_back(static_cast<int>(id));
      }
    } else if (const char* v = value("--seeds")) {
      config.seeds.clear();
      for (std::int64_t seed : parse_int_list(v, 0, 0, "seed")) {
        config.seeds.push_back(static_cast<std::uint64_t>(seed));
      }
    } else if (const char* v = value("--jobs")) {
      config.jobs = std::atoi(v);
    } else if (const char* v = value("--duration")) {
      config.session_duration = parse_double(v);
    } else if (const char* v = value("--csv")) {
      csv_path = v;
    } else if (const char* v = value("--jsonl")) {
      jsonl_path = v;
    } else if (std::strcmp(argv[i], "--progress") == 0) {
      progress = true;
    } else {
      std::fprintf(stderr, "error: unknown or incomplete option %s\n",
                   argv[i]);
      return usage();
    }
  }
  if (config.services.empty() || config.profiles.empty() ||
      config.seeds.empty()) {
    std::fprintf(stderr, "error: empty sweep grid\n");
    return 2;
  }

  if (progress) {
    config.progress = [](const batch::CellResult& cell, std::size_t done,
                         std::size_t total) {
      std::fprintf(stderr, "\r[%zu/%zu] %s%s", done, total,
                   cell.coordinates().c_str(), done == total ? "\n" : "   ");
    };
  }

  batch::SweepResult result = batch::run_sweep(config);

  for (const batch::CellResult& cell : result.cells) {
    if (!cell.ok) {
      std::fprintf(stderr, "sweep: cell %s failed: %s\n",
                   cell.coordinates().c_str(), cell.error.c_str());
    }
  }

  const std::string csv = batch::sweep_csv(result);
  if (csv_path.empty()) {
    std::fputs(csv.c_str(), stdout);
  } else {
    std::ofstream out(csv_path);
    if (!out) throw Error(format("cannot write %s", csv_path.c_str()));
    out << csv;
    std::fprintf(stderr, "wrote %s (%zu cells, %d failed)\n", csv_path.c_str(),
                 result.cells.size(), result.failed);
  }
  if (!jsonl_path.empty()) {
    std::ofstream out(jsonl_path);
    if (!out) throw Error(format("cannot write %s", jsonl_path.c_str()));
    out << batch::sweep_jsonl(result);
    std::fprintf(stderr, "wrote %s\n", jsonl_path.c_str());
  }
  return result.failed > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "list") return cmd_list();
    if (command == "play" && argc >= 3) {
      return cmd_play(argv[2], argc - 3, argv + 3);
    }
    if (command == "dissect" && argc >= 3) return cmd_dissect(argv[2]);
    if (command == "trace" && argc >= 3) {
      return cmd_trace(std::atoi(argv[2]), argc >= 4 ? argv[3] : nullptr);
    }
    if (command == "energy" && argc >= 3) {
      return cmd_energy(argv[2], argc >= 4 ? std::atoi(argv[3]) : 7);
    }
    if (command == "sweep") return cmd_sweep(argc - 2, argv + 2);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
