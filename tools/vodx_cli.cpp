// vodx command-line tool: the library's main entry points without writing
// C++.
//
//   vodx list                      — catalogue of the 12 services
//   vodx play <svc> <profile>      — run a session, print the QoE report
//   vodx play <svc> --trace f.txt  — ... over a recorded 1 Hz trace file
//   vodx play <svc> --trace-out session.trace.json
//                                  — also export a Chrome/Perfetto timeline
//   vodx dissect <svc>             — black-box Table-1 row for a service
//   vodx trace <profile> [out]     — emit a cellular profile as text
//   vodx energy <svc> [profile]    — RRC radio-energy analysis (§3.3.2)
//   vodx sweep [...]               — parallel (service × profile × seed) grid
//   vodx faults [...]              — fault-scenario grid (service × scenario)
//   vodx report [...]              — merged metrics rollups for a grid
//                                    (table / JSONL / single-file HTML)
//   vodx chaos [...]               — invariant-checked fault fuzzing with
//                                    minimized repro artifacts
//   vodx diagnose [...]            — root-cause attribution for stalls and
//                                    startup delay (single session, grid
//                                    rollups, or the precision/recall
//                                    validation harness)
//   vodx pop [...]                 — population-scale multi-session runs on
//                                    shared cells
//   vodx origin [...]              — flash-crowd failover drill: naive vs
//                                    hardened origin tier under a primary-DC
//                                    blackout
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "arg_parse.h"
#include "batch/report.h"
#include "batch/sweep.h"
#include "chaos/chaos.h"
#include "common/error.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/design_inference.h"
#include "core/qoe.h"
#include "core/radio_energy.h"
#include "core/report.h"
#include "core/session.h"
#include "diag/diagnose.h"
#include "diag/rollup.h"
#include "diag/validate.h"
#include "faults/fault_plan.h"
#include "obs/observer.h"
#include "origin/origin.h"
#include "pop/pop_timeline.h"
#include "pop/population.h"
#include "trace/cellular_profiles.h"
#include "trace/trace_io.h"

using namespace vodx;
using tools::Args;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  vodx list\n"
      "  vodx play <service> [profile=7 | --trace file] [--csv|--buffer-csv]\n"
      "            [--trace-out f.json] [--events-out f.jsonl]\n"
      "            [--metrics-out f.txt]\n"
      "  vodx dissect <service>\n"
      "  vodx trace <profile> [out.txt]\n"
      "  vodx energy <service> [profile=7]\n"
      "  vodx sweep [--services all|H1,D2,...] [--profiles all|1-14|2,5]\n"
      "             [--seeds 0|0-4|1,7] [--faults none|all|resets,...]\n"
      "             [--origin none|naive,hardened,...]\n"
      "             [--jobs N] [--duration secs]\n"
      "             [--csv out.csv] [--jsonl out.jsonl]\n"
      "             [--metrics-out report.jsonl] [--progress]\n"
      "        runs the grid in parallel; output is byte-identical for\n"
      "        every --jobs value. Default: full 12x14 grid, seed 0,\n"
      "        one worker per hardware thread, CSV on stdout.\n"
      "  vodx faults [--list] [--services all|H1,...] [--scenarios all|...]\n"
      "              [--profiles 7|...] [--seeds 0|...] [--hardened]\n"
      "              [--origin none|naive,hardened,...]\n"
      "              [--jobs N] [--duration secs]\n"
      "              [--csv out.csv] [--jsonl out.jsonl]\n"
      "              [--metrics-out report.jsonl] [--progress]\n"
      "        runs every service under scripted fault scenarios and prints\n"
      "        a resilience table. --hardened plays the same grid with the\n"
      "        fault-tolerant player configuration. Deterministic: the fault\n"
      "        schedule derives from (seed, cell), never from --jobs.\n"
      "  vodx report [--services ...] [--profiles ...] [--seeds ...]\n"
      "              [--faults ...] [--jobs N] [--duration secs] [--diag]\n"
      "              [--out report.txt] [--jsonl report.jsonl]\n"
      "              [--html report.html] [--csv cells.csv] [--progress]\n"
      "        runs the grid with per-cell metrics collection and renders\n"
      "        overall / per-service / per-profile / per-fault rollups.\n"
      "        Text report goes to stdout unless --out is given; the merged\n"
      "        aggregate is byte-identical for every --jobs value. --diag\n"
      "        appends root-cause attribution tables to every output.\n"
      "  vodx diagnose <service> [profile=7] [--duration secs]\n"
      "        runs one session with tracing on and prints per-interval\n"
      "        blame spans plus per-cause totals.\n"
      "  vodx diagnose [--services ...] [--profiles 7|...] [--seeds 0|...]\n"
      "                [--faults none|all|...] [--jobs N] [--duration secs]\n"
      "                [--out diag.txt] [--jsonl diag.jsonl]\n"
      "                [--html diag.html]\n"
      "        diagnoses every cell of the grid and renders per-service /\n"
      "        per-profile / per-fault root-cause tables; byte-identical\n"
      "        for every --jobs value.\n"
      "  vodx diagnose --validate [--threshold 0.9] [--duration secs]\n"
      "        precision/recall harness: checks fault.injected blame lands\n"
      "        inside the injected windows for every catalog scenario.\n"
      "        Exit 0 = every scenario meets the threshold.\n"
      "  vodx pop [--services all|H1,...] [--towers 7|3,7,12] [--seed N]\n"
      "           [--horizon secs] [--rate arrivals/min] [--diurnal 0..1]\n"
      "           [--diurnal-period secs] [--flash-at secs]\n"
      "           [--flash-window secs] [--flash-arrivals N]\n"
      "           [--watch-time secs] [--watch-sigma s] [--max-sessions N]\n"
      "           [--jobs N] [--core event|fixed] [--out report.txt]\n"
      "           [--jsonl sessions.jsonl] [--csv sessions.csv]\n"
      "           [--tower-csv towers.csv] [--timeline-out tl.csv|tl.jsonl]\n"
      "           [--timeline-bin secs] [--html dashboard.html]\n"
      "           [--diag] [--diag-budget N]\n"
      "           [--origin none|naive|hardened] [--shared-content]\n"
      "        population run: each tower's simulator hosts every viewer\n"
      "        arriving on that cell (Poisson + diurnal + flash crowds);\n"
      "        concurrent sessions share the link max-min fairly. Prints\n"
      "        p50/p95/p99 startup/stall and Jain fairness per tower and\n"
      "        per service; byte-identical for every --jobs value.\n"
      "        --timeline-out samples every tower into per-bin telemetry\n"
      "        (concurrency, stalls, rung mix, goodput vs capacity; CSV, or\n"
      "        JSONL when the path ends .jsonl) and --html renders the\n"
      "        per-tower sparkline dashboard; --diag additionally runs\n"
      "        root-cause attribution over up to --diag-budget sessions per\n"
      "        tower (0 = all) and folds blame rollups per tower and bin.\n"
      "        --origin runs every session behind the origin/CDN tier (one\n"
      "        shared edge cache + breaker per tower); --shared-content\n"
      "        collapses each tower onto one title so the cache sees real\n"
      "        cross-session hits.\n"
      "  vodx origin [--mode both|naive|hardened] [--services all|H1,...]\n"
      "              [--towers 7|3,7] [--seed N] [--horizon secs]\n"
      "              [--rate arrivals/min] [--flash-at secs]\n"
      "              [--flash-window secs] [--flash-arrivals N]\n"
      "              [--blackout-at secs] [--blackout-duration secs]\n"
      "              [--flush-at secs] [--cache-ttl secs]\n"
      "              [--cache-capacity N] [--retries N]\n"
      "              [--retry-backoff secs] [--breaker-threshold N]\n"
      "              [--cooldown secs] [--no-coalesce] [--jobs N]\n"
      "              [--out report.txt]\n"
      "        flash-crowd failover drill: a population run where every\n"
      "        viewer on a tower streams the same title through the tower's\n"
      "        shared edge cache while the primary datacenter goes dark\n"
      "        mid-crowd. --mode both (the default) runs the naive and the\n"
      "        hardened origin back to back and prints the completion and\n"
      "        QoE delta the hardened tier buys back; byte-identical for\n"
      "        every --jobs value.\n"
      "  vodx chaos [--seeds 0..63] [--services H1,...] [--profiles 1-14]\n"
      "             [--duration secs] [--jobs N] [--budget secs]\n"
      "             [--minimize|--no-minimize] [--artifacts dir]\n"
      "             [--out report.txt] [--repro file.json] [--invariants]\n"
      "             [--core event|fixed] [--origin naive|hardened]\n"
      "        fuzzes seeded fault plans through invariant-checked sessions\n"
      "        under watchdogs; violations are shrunk to minimal repro\n"
      "        artifacts. --budget is the per-session wall-clock budget\n"
      "        (-1 = unlimited); --repro replays a saved artifact. The\n"
      "        report is byte-identical for every --jobs value. Exit 0 =\n"
      "        clean, 1 = violations/watchdogs. --origin runs every fuzzed\n"
      "        session behind that origin tier and widens the generator to\n"
      "        draw cache-flush and DC-blackout windows, so the failover\n"
      "        paths are fuzzed against the full invariant catalog.\n");
  return 2;
}

int cmd_list() {
  Table table({"service", "protocol", "tracks", "segdur", "audio",
               "startup", "pausing/resuming", "notes"});
  for (const services::ServiceSpec& s : services::catalog()) {
    std::string notes;
    if (s.player.sr != player::SrPolicy::kNone) notes += "SR ";
    if (s.player.abr == player::AbrKind::kOscillating) notes += "unstable ";
    if (s.encrypt_manifest) notes += "encrypted-mpd ";
    if (s.player.split_segment_downloads) notes += "split-dl ";
    if (!s.player.persistent_connections) notes += "non-persistent ";
    table.add_row({s.name, to_string(s.protocol),
                   std::to_string(s.video_ladder.size()),
                   format("%.0f s", s.segment_duration),
                   s.separate_audio ? "separate" : "muxed",
                   format("%.0f s @%.2f M", s.player.startup_buffer,
                          s.player.startup_bitrate / 1e6),
                   format("%.0f/%.0f s", s.player.pausing_threshold,
                          s.player.resuming_threshold),
                   notes.empty() ? "-" : notes});
  }
  table.print();
  return 0;
}

core::SessionResult run(const services::ServiceSpec& spec,
                        net::BandwidthTrace trace,
                        obs::Observer* observer = nullptr) {
  core::SessionConfig config;
  config.spec = spec;
  config.trace = std::move(trace);
  config.session_duration = 600;
  config.content_duration = 600;
  config.observer = observer;
  return core::run_session(config);
}

int cmd_play(const std::string& service, Args& args) {
  net::BandwidthTrace trace = trace::cellular_profile(7);
  bool csv = false;
  bool buffer_csv_out = false;
  tools::ObsOutputs outputs;
  while (!args.done()) {
    if (const char* v = args.value("--trace")) {
      trace = trace::load_trace(v);
    } else if (args.flag("--csv")) {
      csv = true;
    } else if (args.flag("--buffer-csv")) {
      buffer_csv_out = true;
    } else if (outputs.parse(args)) {
      // consumed a --*-out flag and its value
    } else if (const char* profile = args.positional()) {
      trace = trace::cellular_profile(std::atoi(profile));
    } else {
      args.unknown();
    }
  }
  if (args.failed()) return usage();
  const services::ServiceSpec& spec = services::service(service);
  std::unique_ptr<obs::Observer> observer;
  if (outputs.wanted()) observer = std::make_unique<obs::Observer>();
  core::SessionResult r = run(spec, trace, observer.get());
  if (observer != nullptr) outputs.write(*observer, r.session_end);
  if (buffer_csv_out) {
    std::fputs(core::buffer_csv(r).c_str(), stdout);
    return 0;
  }
  if (csv) {
    std::fputs(core::qoe_csv_header().c_str(), stdout);
    std::fputs(core::qoe_csv_row(spec.name, r).c_str(), stdout);
    return 0;
  }

  std::printf("%s over %s (mean %.2f Mbps): %s\n\n", spec.name.c_str(),
              trace.name().empty() ? "trace" : trace.name().c_str(),
              trace.mean() / 1e6, player::to_string(r.final_state));
  std::printf("  startup delay        %.2f s\n", r.qoe.startup_delay);
  std::printf("  stalls               %d (%.1f s)\n", r.qoe.stall_count,
              r.qoe.total_stall);
  std::printf("  avg declared bitrate %.2f Mbps\n",
              r.qoe.average_declared_bitrate / 1e6);
  std::printf("  track switches       %d (%d non-consecutive)\n",
              r.qoe.switch_count, r.qoe.nonconsecutive_switch_count);
  std::printf("  data usage           %.1f MB (%.1f MB wasted)\n",
              static_cast<double>(r.qoe.total_bytes) / 1e6,
              static_cast<double>(r.qoe.wasted_bytes) / 1e6);
  std::printf("  QoE score            %.2f\n",
              core::qoe_score(r.qoe, r.session_end));
  return 0;
}

int cmd_dissect(const std::string& service) {
  core::InferredDesign d = core::infer_design(services::service(service));
  std::printf("%s (black-box):\n", service.c_str());
  std::printf("  segment duration    %.0f s\n", d.segment_duration);
  std::printf("  separate audio      %s\n", d.separate_audio ? "yes" : "no");
  std::printf("  max TCP             %d (%s)\n", d.max_tcp,
              d.persistent_tcp ? "persistent" : "non-persistent");
  std::printf("  startup             %.0f s / %d segments @ %.2f Mbps\n",
              d.startup_buffer, d.startup_segments, d.startup_bitrate / 1e6);
  std::printf("  pausing/resuming    %.0f / %.0f s\n", d.pausing_threshold,
              d.resuming_threshold);
  std::printf("  stable / aggressive %s / %s\n", d.stable ? "yes" : "NO",
              d.aggressive ? "yes" : "no");
  return 0;
}

int cmd_trace(int profile, const char* out) {
  net::BandwidthTrace trace = trace::cellular_profile(profile);
  if (out != nullptr) {
    trace::save_trace(trace, out);
    std::printf("wrote %s (mean %.2f Mbps)\n", out, trace.mean() / 1e6);
  } else {
    std::fputs(trace::to_text(trace).c_str(), stdout);
  }
  return 0;
}

int cmd_energy(const std::string& service, int profile) {
  const services::ServiceSpec& spec = services::service(service);
  core::SessionResult r = run(spec, trace::cellular_profile(profile));
  core::RadioEnergyReport energy = core::radio_energy(r.traffic, r.session_end);
  std::printf("%s on profile %d:\n", service.c_str(), profile);
  std::printf("  threshold gap        %.0f s (RRC demotion timer 11 s)\n",
              spec.player.pausing_threshold - spec.player.resuming_threshold);
  std::printf("  radio active/tail    %.0f / %.0f s\n", energy.active_time,
              energy.tail_time);
  std::printf("  high-power fraction  %.1f%%\n",
              energy.high_power_fraction() * 100);
  std::printf("  radio energy         %.0f J\n", energy.energy_joules);
  return 0;
}

/// All scenario names in catalog order (for "--scenarios all" and --list).
std::vector<std::string> scenario_names() {
  std::vector<std::string> names;
  for (const faults::Scenario& s : faults::scenario_catalog()) {
    names.push_back(s.name);
  }
  return names;
}

void parse_services(batch::SweepConfig& config, const char* v,
                    const char* tool) {
  config.services.clear();
  for (const std::string& token : split(v, ',')) {
    const std::string name(trim(token));
    if (name.empty()) continue;
    if (name == "all") {
      config.services = services::catalog();
      continue;
    }
    try {
      config.services.push_back(services::service(name));
    } catch (const Error& e) {
      std::fprintf(stderr, "%s: cell (%s, *, *): %s — skipped\n", tool,
                   name.c_str(), e.what());
    }
  }
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) throw Error(format("cannot write %s", path.c_str()));
  out << content;
  std::fprintf(stderr, "wrote %s\n", path.c_str());
}

/// Numeric knobs that make a run degenerate rather than fail loudly (a 0 s
/// timeline bin never advances; a 0 s TTL caches nothing; a 0-retry "retry
/// budget" silently disables failover) are rejected here, by flag name.
double parse_positive(const char* v, const char* flag) {
  const double value = parse_double(v);
  if (!(value > 0)) {
    throw Error(format("%s must be positive (got %s)", flag, v));
  }
  return value;
}

int parse_positive_int(const char* v, const char* flag) {
  const int value = std::atoi(v);
  if (value <= 0) {
    throw Error(format("%s must be positive (got %s)", flag, v));
  }
  return value;
}

/// Parses a comma-separated origin-mode list for the sweep/faults grids;
/// unknown modes throw ConfigError here, once, before any cell runs.
std::vector<std::string> parse_origin_modes(const char* v) {
  std::vector<std::string> modes;
  for (const std::string& token : split(v, ',')) {
    const std::string name(trim(token));
    if (name.empty()) continue;
    origin::parse_mode(name);
    modes.push_back(name);
  }
  if (modes.empty()) modes.push_back("none");
  return modes;
}

/// The grid flags `sweep` and `faults` share; parse() consumes one of them
/// per call and returns false when the cursor points at something else.
struct GridFlags {
  std::string csv_path;
  std::string jsonl_path;
  tools::ObsOutputs outputs;  ///< grids honour --metrics-out only
  bool progress = false;

  bool parse(Args& args, batch::SweepConfig& config, const char* tool) {
    if (const char* v = args.value("--services")) {
      parse_services(config, v, tool);
    } else if (const char* v = args.value("--profiles")) {
      // Out-of-range ids are kept: they become per-cell failures reported
      // with their coordinates, so one bad id never aborts the grid.
      config.profiles.clear();
      for (std::int64_t id :
           tools::parse_int_list(v, 1, trace::kProfileCount, "profile")) {
        config.profiles.push_back(static_cast<int>(id));
      }
    } else if (const char* v = args.value("--seeds")) {
      config.seeds.clear();
      for (std::int64_t seed : tools::parse_int_list(v, 0, 0, "seed")) {
        config.seeds.push_back(static_cast<std::uint64_t>(seed));
      }
    } else if (const char* v = args.value("--origin")) {
      config.origin_modes = parse_origin_modes(v);
    } else if (const char* v = args.value("--jobs")) {
      config.jobs = std::atoi(v);
    } else if (const char* v = args.value("--duration")) {
      config.session_duration = parse_positive(v, "--duration");
    } else if (const char* v = args.value("--cell-budget")) {
      // Per-cell wall-clock budget in seconds; <= 0 (e.g. "-1") = unlimited.
      const double budget = parse_double(v);
      config.cell_wall_budget = budget <= 0 ? 0 : budget;
    } else if (const char* v = args.value("--cell-retries")) {
      config.cell_retries = std::atoi(v);
    } else if (const char* v = args.value("--csv")) {
      csv_path = v;
    } else if (const char* v = args.value("--jsonl")) {
      jsonl_path = v;
    } else if (outputs.parse(args)) {
      // consumed a --*-out flag and its value
    } else if (args.flag("--progress")) {
      progress = true;
    } else {
      return false;
    }
    return true;
  }
};

int run_grid(batch::SweepConfig& config, const GridFlags& flags,
             bool print_table) {
  if (config.services.empty() || config.profiles.empty() ||
      config.seeds.empty() || config.fault_scenarios.empty()) {
    std::fprintf(stderr, "error: empty sweep grid\n");
    return 2;
  }
  if (!flags.outputs.chrome_trace_path.empty() ||
      !flags.outputs.jsonl_path.empty()) {
    std::fprintf(stderr,
                 "error: --trace-out/--events-out are per-session outputs; "
                 "use `vodx play` (grids support --metrics-out)\n");
    return 2;
  }
  if (!flags.outputs.metrics_path.empty()) config.collect_metrics = true;
  if (flags.progress) {
    config.progress = [](const batch::CellResult& cell, std::size_t done,
                         std::size_t total) {
      std::fprintf(stderr, "\r[%zu/%zu] %s%s", done, total,
                   cell.coordinates().c_str(), done == total ? "\n" : "   ");
    };
  }

  batch::SweepResult result = batch::run_sweep(config);

  for (const batch::CellResult& cell : result.cells) {
    if (!cell.ok) {
      std::fprintf(stderr, "sweep: cell %s %s after %d attempt(s): %s\n",
                   cell.coordinates().c_str(),
                   cell.quarantined ? "QUARANTINED" : "failed",
                   cell.attempts, cell.error.c_str());
    }
  }

  if (print_table) {
    // Per-cell resilience summary in grid order — byte-identical for every
    // --jobs value (the grid order never depends on scheduling).
    Table table({"service", "fault", "state", "startup", "stalls", "stall_s",
                 "rej", "err", "rst", "lat", "qoe"});
    for (const batch::CellResult& cell : result.cells) {
      if (!cell.ok) {
        // Quarantined cells surface as explicit rows, never silently
        // dropped from the grid summary.
        table.add_row({cell.service, cell.fault,
                       cell.quarantined ? "QUARANTINED" : "FAILED", "-", "-",
                       "-", "-", "-", "-", "-", "-"});
        continue;
      }
      const core::QoeReport& q = cell.result.qoe;
      const faults::FaultInjector::Stats& f = cell.result.faults;
      table.add_row(
          {cell.service, cell.fault,
           player::to_string(cell.result.final_state),
           format("%.1f", q.startup_delay), std::to_string(q.stall_count),
           format("%.1f", q.total_stall), std::to_string(f.rejected),
           std::to_string(f.errors), std::to_string(f.resets),
           std::to_string(f.delayed),
           format("%.2f", core::qoe_score(q, cell.result.session_end))});
    }
    table.print();
  }

  const std::string csv = batch::sweep_csv(result);
  if (!print_table && flags.csv_path.empty()) {
    std::fputs(csv.c_str(), stdout);
  } else if (!flags.csv_path.empty()) {
    std::ofstream out(flags.csv_path);
    if (!out) throw Error(format("cannot write %s", flags.csv_path.c_str()));
    out << csv;
    std::fprintf(stderr, "wrote %s (%zu cells, %d failed)\n",
                 flags.csv_path.c_str(), result.cells.size(), result.failed);
  }
  if (!flags.jsonl_path.empty()) {
    write_file(flags.jsonl_path, batch::sweep_jsonl(result));
  }
  if (!flags.outputs.metrics_path.empty()) {
    // Per-cell and merged metrics in one file: the report JSONL carries a
    // {"scope":"cell"} line per cell plus every rollup snapshot.
    batch::SweepMetrics metrics = batch::aggregate_metrics(result);
    write_file(flags.outputs.metrics_path,
               batch::report_jsonl(result, metrics));
  }
  return result.failed > 0 ? 1 : 0;
}

int cmd_sweep(Args& args) {
  batch::SweepConfig config = batch::full_grid();
  config.jobs = 0;  // one worker per hardware thread
  GridFlags flags;
  while (!args.done()) {
    if (const char* v = args.value("--faults")) {
      config.fault_scenarios = tools::parse_name_list(v, scenario_names());
    } else if (!flags.parse(args, config, "sweep")) {
      args.unknown();
    }
  }
  if (args.failed()) return usage();
  return run_grid(config, flags, /*print_table=*/false);
}

int cmd_faults(Args& args) {
  batch::SweepConfig config;
  config.services = services::catalog();
  config.profiles = {7};
  config.fault_scenarios = scenario_names();  // "none" baseline + pathologies
  config.session_duration = 300;
  config.jobs = 0;
  GridFlags flags;
  bool hardened = false;
  while (!args.done()) {
    if (args.flag("--list")) {
      Table table({"scenario", "description"});
      for (const faults::Scenario& s : faults::scenario_catalog()) {
        table.add_row({s.name, s.description});
      }
      table.print();
      return 0;
    } else if (const char* v = args.value("--scenarios")) {
      config.fault_scenarios = tools::parse_name_list(v, scenario_names());
    } else if (args.flag("--hardened")) {
      hardened = true;
    } else if (!flags.parse(args, config, "faults")) {
      args.unknown();
    }
  }
  if (args.failed()) return usage();
  if (hardened) {
    // The jitter seed only decorrelates retry storms across services; the
    // per-cell fault schedule comes from the plan seed, not from here.
    for (std::size_t i = 0; i < config.services.size(); ++i) {
      config.services[i].player =
          faults::hardened(config.services[i].player, batch::derive_seed(0, i));
    }
  }
  return run_grid(config, flags, /*print_table=*/true);
}

int cmd_report(Args& args) {
  batch::SweepConfig config = batch::full_grid();
  config.jobs = 0;
  config.collect_metrics = true;
  GridFlags flags;
  std::string text_path, jsonl_path, html_path;
  bool with_diag = false;
  while (!args.done()) {
    // Own output flags come before GridFlags: --jsonl here means the report
    // JSONL (cells + rollups), not the per-cell QoE rows `sweep` writes.
    if (const char* v = args.value("--faults")) {
      config.fault_scenarios = tools::parse_name_list(v, scenario_names());
    } else if (const char* v = args.value("--out")) {
      text_path = v;
    } else if (const char* v = args.value("--jsonl")) {
      jsonl_path = v;
    } else if (const char* v = args.value("--html")) {
      html_path = v;
    } else if (args.flag("--diag")) {
      with_diag = true;
    } else if (!flags.parse(args, config, "report")) {
      args.unknown();
    }
  }
  if (args.failed()) return usage();
  if (config.services.empty() || config.profiles.empty() ||
      config.seeds.empty() || config.fault_scenarios.empty()) {
    std::fprintf(stderr, "error: empty sweep grid\n");
    return 2;
  }
  if (!flags.outputs.chrome_trace_path.empty() ||
      !flags.outputs.jsonl_path.empty()) {
    std::fprintf(stderr,
                 "error: --trace-out/--events-out are per-session outputs; "
                 "use `vodx play`\n");
    return 2;
  }
  // --metrics-out is an alias for --jsonl here; both mean the report JSONL.
  if (jsonl_path.empty()) jsonl_path = flags.outputs.metrics_path;
  if (flags.progress) {
    config.progress = [](const batch::CellResult& cell, std::size_t done,
                         std::size_t total) {
      std::fprintf(stderr, "\r[%zu/%zu] %s%s", done, total,
                   cell.coordinates().c_str(), done == total ? "\n" : "   ");
    };
  }

  // --diag shares the single sweep pass: the diag fold runs in the post-join
  // observe callback (grid order, one thread), so the appended tables are
  // byte-identical for every --jobs value, like the metrics rollups.
  diag::SweepDiagnosis sweep_diag;
  if (with_diag) {
    config.observe = [&sweep_diag](const batch::CellResult& cell,
                                   const obs::Observer& observer) {
      diag::fold_cell(sweep_diag, cell, observer);
    };
  }

  batch::SweepResult result = batch::run_sweep(config);
  for (const batch::CellResult& cell : result.cells) {
    if (!cell.ok) {
      std::fprintf(stderr, "report: cell %s failed: %s\n",
                   cell.coordinates().c_str(), cell.error.c_str());
    }
  }
  sweep_diag.total_cells = static_cast<int>(result.cells.size());

  batch::SweepMetrics metrics = batch::aggregate_metrics(result);
  std::string text = batch::report_text(metrics);
  if (with_diag) text += "\n" + diag::diag_text(sweep_diag);
  if (text_path.empty()) {
    std::fputs(text.c_str(), stdout);
  } else {
    write_file(text_path, text);
  }
  if (!jsonl_path.empty()) {
    std::string jsonl = batch::report_jsonl(result, metrics);
    if (with_diag) jsonl += diag::diag_jsonl(sweep_diag);
    write_file(jsonl_path, jsonl);
  }
  if (!html_path.empty()) {
    std::string html = batch::report_html(metrics);
    if (with_diag) {
      const std::string tail = "</body></html>\n";
      const std::size_t pos = html.rfind(tail);
      const std::string section = diag::diag_html_section(sweep_diag);
      if (pos != std::string::npos) {
        html.insert(pos, section);
      } else {
        html += section;
      }
    }
    write_file(html_path, html);
  }
  if (!flags.csv_path.empty()) {
    write_file(flags.csv_path, batch::sweep_csv(result));
  }
  return result.failed > 0 ? 1 : 0;
}

int cmd_diagnose(Args& args) {
  batch::SweepConfig config;
  config.services = services::catalog();
  config.profiles = {7};
  config.jobs = 0;
  std::string service;
  int profile = 7;
  bool validate_mode = false;
  double threshold = 0.9;
  std::string text_path, jsonl_path, html_path;
  while (!args.done()) {
    if (args.flag("--validate")) {
      validate_mode = true;
    } else if (const char* v = args.value("--threshold")) {
      threshold = parse_double(v);
    } else if (const char* v = args.value("--services")) {
      parse_services(config, v, "diagnose");
    } else if (const char* v = args.value("--profiles")) {
      config.profiles.clear();
      for (std::int64_t id :
           tools::parse_int_list(v, 1, trace::kProfileCount, "profile")) {
        config.profiles.push_back(static_cast<int>(id));
      }
    } else if (const char* v = args.value("--seeds")) {
      config.seeds.clear();
      for (std::int64_t seed : tools::parse_int_list(v, 0, 0, "seed")) {
        config.seeds.push_back(static_cast<std::uint64_t>(seed));
      }
    } else if (const char* v = args.value("--faults")) {
      config.fault_scenarios = tools::parse_name_list(v, scenario_names());
    } else if (const char* v = args.value("--jobs")) {
      config.jobs = std::atoi(v);
    } else if (const char* v = args.value("--duration")) {
      config.session_duration = parse_double(v);
      config.content_duration = config.session_duration;
    } else if (const char* v = args.value("--out")) {
      text_path = v;
    } else if (const char* v = args.value("--jsonl")) {
      jsonl_path = v;
    } else if (const char* v = args.value("--html")) {
      html_path = v;
    } else if (const char* p = args.positional()) {
      if (service.empty()) {
        service = p;
      } else {
        profile = std::atoi(p);
      }
    } else {
      args.unknown();
    }
  }
  if (args.failed()) return usage();

  if (validate_mode) {
    diag::ValidateOptions options;
    options.duration = config.session_duration;
    const diag::ValidationReport report = diag::validate(options);
    std::fputs(diag::validation_text(report, threshold).c_str(), stdout);
    return report.pass(threshold) ? 0 : 1;
  }

  if (!service.empty()) {
    // Single-session view: full per-interval blame spans, not rollups.
    const services::ServiceSpec& spec = services::service(service);
    obs::Observer observer;
    core::SessionConfig session;
    session.spec = spec;
    session.trace = trace::cellular_profile(profile);
    session.session_duration = config.session_duration;
    session.content_duration = config.session_duration;
    session.observer = &observer;
    core::SessionResult r = core::run_session(session);
    std::printf("%s on profile %d (%.0f s session):\n\n", spec.name.c_str(),
                profile, r.session_end);
    std::fputs(diag::diagnosis_text(diag::diagnose(r, observer)).c_str(),
               stdout);
    return 0;
  }

  if (config.services.empty() || config.profiles.empty() ||
      config.seeds.empty() || config.fault_scenarios.empty()) {
    std::fprintf(stderr, "error: empty diagnose grid\n");
    return 2;
  }
  const diag::SweepDiagnosis diagnosis = diag::diagnose_sweep(config);
  const std::string text = diag::diag_text(diagnosis);
  if (text_path.empty()) {
    std::fputs(text.c_str(), stdout);
  } else {
    write_file(text_path, text);
  }
  if (!jsonl_path.empty()) write_file(jsonl_path, diag::diag_jsonl(diagnosis));
  if (!html_path.empty()) write_file(html_path, diag::diag_html(diagnosis));
  return diagnosis.failed > 0 ? 1 : 0;
}

int cmd_pop(Args& args) {
  pop::PopulationConfig config;
  config.jobs = 0;
  config.towers.clear();
  std::string out_path, jsonl_path, csv_path;
  std::string tower_csv_path, timeline_path, html_path;
  while (!args.done()) {
    if (const char* v = args.value("--services")) {
      std::vector<std::string> all;
      for (const services::ServiceSpec& s : services::catalog()) {
        all.push_back(s.name);
      }
      config.services = tools::parse_name_list(v, all);
    } else if (const char* v = args.value("--towers")) {
      for (std::int64_t id :
           tools::parse_int_list(v, 1, trace::kProfileCount, "profile")) {
        config.towers.push_back(static_cast<int>(id));
      }
    } else if (const char* v = args.value("--seed")) {
      config.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (const char* v = args.value("--horizon")) {
      config.horizon = parse_positive(v, "--horizon");
    } else if (const char* v = args.value("--rate")) {
      config.arrivals.rate_per_min = parse_double(v);
    } else if (const char* v = args.value("--diurnal")) {
      config.arrivals.diurnal_amplitude = parse_double(v);
    } else if (const char* v = args.value("--diurnal-period")) {
      config.arrivals.diurnal_period = parse_double(v);
    } else if (const char* v = args.value("--flash-at")) {
      config.arrivals.flash_at = parse_double(v);
    } else if (const char* v = args.value("--flash-window")) {
      config.arrivals.flash_window = parse_double(v);
    } else if (const char* v = args.value("--flash-arrivals")) {
      config.arrivals.flash_arrivals = std::atoi(v);
    } else if (const char* v = args.value("--watch-time")) {
      config.watch_time = parse_positive(v, "--watch-time");
    } else if (const char* v = args.value("--watch-sigma")) {
      config.watch_sigma = parse_double(v);
    } else if (const char* v = args.value("--max-sessions")) {
      config.max_sessions_per_tower = std::atoi(v);
    } else if (const char* v = args.value("--jobs")) {
      config.jobs = std::atoi(v);
    } else if (const char* v = args.value("--core")) {
      const std::string core = v;
      if (core == "event") {
        config.sim_core = net::SimCore::kEvent;
      } else if (core == "fixed") {
        config.sim_core = net::SimCore::kFixedTickReference;
      } else {
        throw Error(format("unknown --core '%s' (event|fixed)", v));
      }
    } else if (const char* v = args.value("--out")) {
      out_path = v;
    } else if (const char* v = args.value("--jsonl")) {
      jsonl_path = v;
    } else if (const char* v = args.value("--csv")) {
      csv_path = v;
    } else if (const char* v = args.value("--tower-csv")) {
      tower_csv_path = v;
    } else if (const char* v = args.value("--timeline-out")) {
      timeline_path = v;
      config.collect_timeline = true;
    } else if (const char* v = args.value("--timeline-bin")) {
      config.timeline_bin = parse_positive(v, "--timeline-bin");
    } else if (const char* v = args.value("--html")) {
      html_path = v;
      config.collect_timeline = true;
    } else if (args.flag("--diag")) {
      config.diagnose = true;
    } else if (const char* v = args.value("--diag-budget")) {
      config.diag_session_budget = std::atoi(v);
    } else if (const char* v = args.value("--origin")) {
      config.origin = origin::preset(origin::parse_mode(v));
    } else if (args.flag("--shared-content")) {
      config.shared_content = true;
    } else {
      args.unknown();
    }
  }
  if (args.failed()) return usage();
  if (config.towers.empty()) config.towers = {7};
  if (config.origin.mode != origin::Mode::kNone) config.origin.validate();

  const pop::PopulationReport report = pop::run_population(config);
  const std::string text = pop::population_text(report);
  if (out_path.empty()) {
    std::fputs(text.c_str(), stdout);
  } else {
    write_file(out_path, text);
  }
  if (!jsonl_path.empty()) {
    write_file(jsonl_path, pop::population_jsonl(report));
  }
  if (!csv_path.empty()) write_file(csv_path, pop::population_csv(report));
  if (!tower_csv_path.empty()) {
    write_file(tower_csv_path, pop::population_tower_csv(report));
  }
  if (!timeline_path.empty()) {
    const bool jsonl = timeline_path.size() >= 6 &&
                       timeline_path.compare(timeline_path.size() - 6, 6,
                                             ".jsonl") == 0;
    write_file(timeline_path,
               jsonl ? pop::population_timeline_jsonl(report)
                     : pop::population_timeline_csv(report));
  }
  if (!html_path.empty()) {
    write_file(html_path, pop::population_timeline_html(report));
  }
  return 0;
}

/// Fraction of a population run's sessions that started playback and were
/// healthy at the end — playing, or ended after their watch time. A session
/// stuck rebuffering at the horizon (its fetch pipeline died) counts as not
/// completed even though it never reached kFailed.
double completed_fraction(const pop::PopulationReport& report, int* completed,
                          int* total) {
  const std::string playing = player::to_string(player::PlayerState::kPlaying);
  const std::string ended = player::to_string(player::PlayerState::kEnded);
  *completed = 0;
  *total = 0;
  for (const pop::TowerReport& tower : report.towers) {
    for (const pop::SessionOutcome& s : tower.outcomes) {
      ++*total;
      if (s.startup_delay >= 0 &&
          (s.final_state == playing || s.final_state == ended)) {
        ++*completed;
      }
    }
  }
  return *total > 0 ? static_cast<double>(*completed) / *total : 0.0;
}

int cmd_origin(Args& args) {
  // Flash-crowd failover drill. Defaults: a 24-viewer crowd lands on the
  // fastest tower (profile 14 — the crowd must fit the radio link, so the
  // pathology separating the legs is origin-side) at t=25 s, the primary DC
  // goes dark at t=28 s for 30 s, and every viewer streams the same title
  // through the tower's shared edge cache.
  pop::PopulationConfig config;
  config.jobs = 0;
  config.horizon = 120;
  config.content_duration = 180;
  config.watch_time = 90;
  config.arrivals.rate_per_min = 2;
  config.arrivals.flash_at = 25;
  config.arrivals.flash_window = 15;
  config.arrivals.flash_arrivals = 24;
  config.shared_content = true;
  config.towers.clear();

  // Knob overrides are tracked separately so they layer onto *both* presets
  // when --mode both runs the naive and hardened legs.
  double cache_ttl = -1, retry_backoff = -1, cooldown = -1;
  int cache_capacity = -1, retries = -1, breaker_threshold = -1;
  bool no_coalesce = false;
  double blackout_at = 28, blackout_duration = 30, flush_at = -1;
  std::string mode = "both";
  std::string out_path;
  while (!args.done()) {
    if (const char* v = args.value("--mode")) {
      mode = v;
    } else if (const char* v = args.value("--services")) {
      std::vector<std::string> all;
      for (const services::ServiceSpec& s : services::catalog()) {
        all.push_back(s.name);
      }
      config.services = tools::parse_name_list(v, all);
    } else if (const char* v = args.value("--towers")) {
      for (std::int64_t id :
           tools::parse_int_list(v, 1, trace::kProfileCount, "profile")) {
        config.towers.push_back(static_cast<int>(id));
      }
    } else if (const char* v = args.value("--seed")) {
      config.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (const char* v = args.value("--horizon")) {
      config.horizon = parse_positive(v, "--horizon");
    } else if (const char* v = args.value("--rate")) {
      config.arrivals.rate_per_min = parse_double(v);
    } else if (const char* v = args.value("--flash-at")) {
      config.arrivals.flash_at = parse_double(v);
    } else if (const char* v = args.value("--flash-window")) {
      config.arrivals.flash_window = parse_positive(v, "--flash-window");
    } else if (const char* v = args.value("--flash-arrivals")) {
      config.arrivals.flash_arrivals = std::atoi(v);
    } else if (const char* v = args.value("--blackout-at")) {
      blackout_at = parse_double(v);  // < 0 disables the blackout
    } else if (const char* v = args.value("--blackout-duration")) {
      blackout_duration = parse_positive(v, "--blackout-duration");
    } else if (const char* v = args.value("--flush-at")) {
      flush_at = parse_positive(v, "--flush-at");
    } else if (const char* v = args.value("--cache-ttl")) {
      cache_ttl = parse_positive(v, "--cache-ttl");
    } else if (const char* v = args.value("--cache-capacity")) {
      cache_capacity = parse_positive_int(v, "--cache-capacity");
    } else if (const char* v = args.value("--retries")) {
      retries = parse_positive_int(v, "--retries");
    } else if (const char* v = args.value("--retry-backoff")) {
      retry_backoff = parse_positive(v, "--retry-backoff");
    } else if (const char* v = args.value("--breaker-threshold")) {
      breaker_threshold = parse_positive_int(v, "--breaker-threshold");
    } else if (const char* v = args.value("--cooldown")) {
      cooldown = parse_positive(v, "--cooldown");
    } else if (args.flag("--no-coalesce")) {
      no_coalesce = true;
    } else if (const char* v = args.value("--jobs")) {
      config.jobs = std::atoi(v);
    } else if (const char* v = args.value("--out")) {
      out_path = v;
    } else {
      args.unknown();
    }
  }
  if (args.failed()) return usage();
  if (config.towers.empty()) config.towers = {14};

  std::vector<origin::Mode> legs;
  if (mode == "both") {
    legs = {origin::Mode::kNaive, origin::Mode::kHardened};
  } else {
    const origin::Mode parsed = origin::parse_mode(mode);
    if (parsed == origin::Mode::kNone) {
      throw Error("--mode none defeats the drill; use naive|hardened|both");
    }
    legs = {parsed};
  }

  if (blackout_at >= 0 && blackout_duration > 0) {
    config.fault_plan.dc_blackouts.push_back(
        faults::DcBlackoutFault{blackout_at, blackout_duration});
  }
  if (flush_at >= 0) {
    config.fault_plan.cache_flushes.push_back(faults::CacheFlushFault{flush_at});
  }

  std::string text = format(
      "origin drill: flash crowd of %d over %.0f s at t=%.0f s "
      "(+%.1f/min background), %zu tower(s), horizon %.0f s\n",
      config.arrivals.flash_arrivals, config.arrivals.flash_window,
      config.arrivals.flash_at, config.arrivals.rate_per_min,
      config.towers.size(), config.horizon);
  if (blackout_at >= 0 && blackout_duration > 0) {
    text += format("primary DC dark %.1f-%.1f s\n", blackout_at,
                   blackout_at + blackout_duration);
  }
  if (flush_at >= 0) text += format("edge cache flushed at %.1f s\n", flush_at);

  std::vector<double> completion;
  std::vector<pop::PopulationReport> reports;
  for (origin::Mode leg : legs) {
    pop::PopulationConfig leg_config = config;
    leg_config.origin = origin::preset(leg);
    if (cache_ttl > 0) leg_config.origin.cache_ttl_s = cache_ttl;
    if (cache_capacity > 0) leg_config.origin.cache_capacity = cache_capacity;
    if (retries > 0) leg_config.origin.retry_budget = retries;
    if (retry_backoff > 0) leg_config.origin.backoff_base_s = retry_backoff;
    if (breaker_threshold > 0) {
      leg_config.origin.breaker_threshold = breaker_threshold;
    }
    if (cooldown > 0) leg_config.origin.breaker_cooldown_s = cooldown;
    if (no_coalesce) leg_config.origin.coalesce = false;
    leg_config.origin.validate();

    const pop::PopulationReport report = pop::run_population(leg_config);
    int completed = 0, total = 0;
    const double fraction = completed_fraction(report, &completed, &total);
    completion.push_back(fraction);
    text += format("\n--- %s origin ---\n", origin::to_string(leg));
    text += pop::population_text(report);
    text += format("completed: %d/%d session(s) (%.1f%%)\n", completed, total,
                   fraction * 100.0);
    reports.push_back(report);
  }
  if (legs.size() == 2) {
    const pop::PopulationReport& naive = reports[0];
    const pop::PopulationReport& hardened = reports[1];
    text += format(
        "\nhardened origin buys back: %+.1f pts completion, "
        "startup p95 %.2f -> %.2f s, stall p95 %.2f -> %.2f s\n",
        (completion[1] - completion[0]) * 100.0, naive.startup.p95,
        hardened.startup.p95, naive.stall.p95, hardened.stall.p95);
  }

  if (out_path.empty()) {
    std::fputs(text.c_str(), stdout);
  } else {
    write_file(out_path, text);
  }
  return 0;
}

int cmd_chaos(Args& args) {
  chaos::ChaosConfig config;
  config.jobs = 0;
  std::string repro_path, artifacts_dir, out_path;
  bool list_invariants = false;
  double budget = config.wall_budget;
  while (!args.done()) {
    if (const char* v = args.value("--seeds")) {
      for (std::int64_t s : tools::parse_int_list(v, 0, 63, "seed")) {
        config.seeds.push_back(static_cast<std::uint64_t>(s));
      }
    } else if (const char* v = args.value("--services")) {
      std::vector<std::string> all;
      for (const services::ServiceSpec& s : services::catalog()) {
        all.push_back(s.name);
      }
      config.services = tools::parse_name_list(v, all);
    } else if (const char* v = args.value("--profiles")) {
      for (std::int64_t id :
           tools::parse_int_list(v, 1, trace::kProfileCount, "profile")) {
        config.profiles.push_back(static_cast<int>(id));
      }
    } else if (const char* v = args.value("--duration")) {
      config.duration = parse_double(v);
    } else if (const char* v = args.value("--jobs")) {
      config.jobs = std::atoi(v);
    } else if (const char* v = args.value("--budget")) {
      budget = parse_double(v);  // "-1" = unlimited; parses as a value, not
                                 // a flag (tools::Args numeric-token rule)
    } else if (const char* v = args.value("--core")) {
      const std::string core = v;
      if (core == "event") {
        config.sim_core = net::SimCore::kEvent;
      } else if (core == "fixed") {
        config.sim_core = net::SimCore::kFixedTickReference;
      } else {
        throw Error(format("unknown --core '%s' (event|fixed)", v));
      }
    } else if (args.flag("--minimize")) {
      config.minimize = true;
    } else if (args.flag("--no-minimize")) {
      config.minimize = false;
    } else if (const char* v = args.value("--origin")) {
      // Origin mode implies origin-targeted fault generation: the wider
      // kind die only engages on opt-in, so default campaigns keep their
      // historical plans seed for seed.
      config.origin = origin::parse_mode(v);
      config.gen.origin_faults = config.origin != origin::Mode::kNone;
    } else if (const char* v = args.value("--repro")) {
      repro_path = v;
    } else if (const char* v = args.value("--artifacts")) {
      artifacts_dir = v;
    } else if (const char* v = args.value("--out")) {
      out_path = v;
    } else if (args.flag("--invariants")) {
      list_invariants = true;
    } else {
      args.unknown();
    }
  }
  if (args.failed()) return usage();
  if (list_invariants) {
    Table table({"invariant", "description"});
    for (const chaos::InvariantInfo& info : chaos::invariant_catalog()) {
      table.add_row({info.name, info.description});
    }
    table.print();
    return 0;
  }
  config.wall_budget = budget <= 0 ? 0 : budget;

  if (!repro_path.empty()) {
    std::ifstream in(repro_path);
    if (!in) throw Error(format("cannot read %s", repro_path.c_str()));
    std::ostringstream text;
    text << in.rdbuf();
    const chaos::ReproArtifact artifact = chaos::parse_repro(text.str());
    std::printf("replaying %s: %s, profile %d, %.0f s, chaos seed %llu\n",
                repro_path.c_str(), artifact.service.c_str(),
                artifact.profile_id, artifact.duration,
                static_cast<unsigned long long>(artifact.chaos_seed));
    std::printf("recorded violation: %s\n", artifact.invariants.c_str());

    chaos::CheckOptions options;
    options.wall_budget = config.wall_budget;
    options.max_events_per_instant = config.max_events_per_instant;
    options.sim_core = config.sim_core;
    const chaos::CheckedRun run = chaos::replay(artifact, options);
    if (run.watchdog) {
      std::printf("replay: WATCHDOG — %s\n", run.watchdog_detail.c_str());
      return 1;
    }
    if (run.report.ok()) {
      std::printf("replay: clean — violation did not reproduce\n");
      return 0;
    }
    std::printf("replay: VIOLATION %s\n", run.report.summary().c_str());
    for (const chaos::Violation& v : run.report.violations) {
      std::printf("  %s @ t=%.2f s: %s\n", v.invariant.c_str(), v.time,
                  v.detail.c_str());
    }
    return 1;
  }

  if (config.seeds.empty()) {
    for (std::uint64_t s = 0; s < 64; ++s) config.seeds.push_back(s);
  }

  const chaos::ChaosReport report = chaos::run_chaos(config);
  const std::string text = chaos::chaos_report_text(report);
  if (out_path.empty()) {
    std::fputs(text.c_str(), stdout);
  } else {
    write_file(out_path, text);
  }

  if (!artifacts_dir.empty()) {
    for (const chaos::ChaosRow& row : report.rows) {
      if (row.ok) continue;
      const std::string path = format(
          "%s/chaos-%llu.json", artifacts_dir.c_str(),
          static_cast<unsigned long long>(row.seed));
      write_file(path, chaos::to_json(row.artifact));
      std::fprintf(stderr, "repro: %s\n", row.artifact.cli_line(path).c_str());
    }
  }
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "list") return cmd_list();
    if (command == "play" && argc >= 3) {
      Args args(argc - 3, argv + 3);
      return cmd_play(argv[2], args);
    }
    if (command == "dissect" && argc >= 3) return cmd_dissect(argv[2]);
    if (command == "trace" && argc >= 3) {
      return cmd_trace(std::atoi(argv[2]), argc >= 4 ? argv[3] : nullptr);
    }
    if (command == "energy" && argc >= 3) {
      return cmd_energy(argv[2], argc >= 4 ? std::atoi(argv[3]) : 7);
    }
    if (command == "sweep") {
      Args args(argc - 2, argv + 2);
      return cmd_sweep(args);
    }
    if (command == "faults") {
      Args args(argc - 2, argv + 2);
      return cmd_faults(args);
    }
    if (command == "report") {
      Args args(argc - 2, argv + 2);
      return cmd_report(args);
    }
    if (command == "pop") {
      Args args(argc - 2, argv + 2);
      return cmd_pop(args);
    }
    if (command == "origin") {
      Args args(argc - 2, argv + 2);
      return cmd_origin(args);
    }
    if (command == "chaos") {
      Args args(argc - 2, argv + 2);
      return cmd_chaos(args);
    }
    if (command == "diagnose") {
      Args args(argc - 2, argv + 2);
      return cmd_diagnose(args);
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
