#include "services/content_factory.h"

#include "common/rng.h"
#include "media/encoder.h"
#include "media/scene.h"

namespace vodx::services {

media::VideoAsset make_asset(const ServiceSpec& spec, Seconds content_duration,
                             std::uint64_t seed) {
  Rng rng(seed);
  Rng scene_rng = rng.fork(1);
  Rng video_rng = rng.fork(2);
  Rng audio_rng = rng.fork(3);

  const media::SceneComplexity scenes =
      media::SceneComplexity::generate(content_duration, scene_rng);
  std::vector<media::Track> video = media::encode_video_ladder(
      spec.video_ladder, content_duration, spec.segment_duration,
      spec.encoder_config(), scenes, video_rng);

  std::vector<media::Track> audio;
  if (spec.separate_audio) {
    audio.push_back(media::encode_audio_track(spec.audio_bitrate,
                                              content_duration,
                                              spec.audio_segment_duration,
                                              audio_rng));
  }
  return media::VideoAsset(spec.name + "-asset", std::move(video),
                           std::move(audio));
}

http::OriginServer make_origin(const ServiceSpec& spec,
                               Seconds content_duration, std::uint64_t seed) {
  return http::OriginServer(make_asset(spec, content_duration, seed),
                            spec.origin_config());
}

}  // namespace vodx::services
