// The 12 studied services, reconstructed from Table 1 / Figures 4-5 and the
// per-service observations in §3-§4.
//
// Each ServiceSpec carries (a) server-side content parameters (protocol,
// ladder, segment duration, encoding, declared-bitrate policy, audio
// separation) and (b) the client PlayerConfig. These are the *ground truth*
// the black-box methodology must recover; nothing in core/ reads them.
#pragma once

#include <string>
#include <vector>

#include "common/units.h"
#include "http/origin_server.h"
#include "media/encoder.h"
#include "player/config.h"

namespace vodx::services {

struct ServiceSpec {
  std::string name;  ///< H1..H6, D1..D4, S1, S2
  manifest::Protocol protocol = manifest::Protocol::kHls;

  // --- Server side (§3.1) ----------------------------------------------
  std::vector<Bps> video_ladder;  ///< declared bitrates, ascending
  Seconds segment_duration = 4;
  Seconds audio_segment_duration = 0;  ///< 0: same as video
  bool separate_audio = false;
  Bps audio_bitrate = 96e3;
  media::EncodingMode encoding = media::EncodingMode::kVbr;
  media::DeclaredPolicy declared_policy = media::DeclaredPolicy::kPeak;
  double peak_to_average = 2.0;  ///< VBR declared/actual gap (Fig. 5)
  manifest::DashIndexMode dash_index = manifest::DashIndexMode::kSidx;
  bool encrypt_manifest = false;  ///< the D3 behaviour
  bool hls_byterange = false;     ///< HLS v4 sub-range segments (§4.2)
  bool hls_average_bandwidth = false;  ///< emit AVERAGE-BANDWIDTH (§4.2)

  // --- Client side ------------------------------------------------------
  player::PlayerConfig player;

  media::EncoderConfig encoder_config() const;
  http::OriginConfig origin_config() const;
};

/// All 12 services, in paper order (H1..H6, D1..D4, S1, S2).
const std::vector<ServiceSpec>& catalog();

/// Lookup by name; throws ConfigError if unknown.
const ServiceSpec& service(const std::string& name);

}  // namespace vodx::services
