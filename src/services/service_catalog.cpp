#include "services/service_catalog.h"

#include "common/error.h"

namespace vodx::services {

namespace {

using manifest::DashIndexMode;
using manifest::Protocol;
using media::DeclaredPolicy;
using media::EncodingMode;
using player::AbrKind;
using player::AvScheduling;
using player::SrPolicy;

std::vector<Bps> kbps(std::initializer_list<double> values) {
  std::vector<Bps> out;
  for (double v : values) out.push_back(v * 1e3);
  return out;
}

/// Builds the catalog once. Values follow Table 1 column by column; ladders
/// follow Fig. 4's ranges (lowest tracks above 500 kbps for H2/H5/S1, highest
/// tracks between 2 and 5.5 Mbps, adjacent rungs 1.5-2x apart) and include
/// each service's Table-1 startup bitrate as an exact rung.
std::vector<ServiceSpec> build_catalog() {
  std::vector<ServiceSpec> all;

  auto add = [&](ServiceSpec spec) { all.push_back(std::move(spec)); };

  {  // H1 — HLS, SR via the ExoPlayer-v1 cascade (§4.1).
    ServiceSpec s;
    s.name = "H1";
    s.protocol = Protocol::kHls;
    s.video_ladder = kbps({320, 630, 1100, 1900, 3200});
    s.segment_duration = 4;
    s.encoding = EncodingMode::kVbr;
    s.peak_to_average = 1.6;
    s.player.max_connections = 1;
    s.player.persistent_connections = true;
    s.player.startup_buffer = 8;
    s.player.startup_bitrate = 630e3;
    s.player.pausing_threshold = 95;
    s.player.resuming_threshold = 85;
    s.player.bandwidth_safety = 0.75;
    s.player.sr = SrPolicy::kCascadeExoV1;
    s.player.sr_min_buffer = 10;
    add(s);
  }
  {  // H2 — CBR, non-persistent TCP, high lowest track, decrease-buffer 40 s.
    ServiceSpec s;
    s.name = "H2";
    s.protocol = Protocol::kHls;
    s.video_ladder = kbps({800, 1330, 2200, 3600, 5400});
    s.segment_duration = 2;
    s.encoding = EncodingMode::kCbr;
    s.peak_to_average = 1.0;
    s.player.max_connections = 1;
    s.player.persistent_connections = false;
    s.player.startup_buffer = 8;
    s.player.startup_bitrate = 1330e3;
    s.player.pausing_threshold = 90;
    s.player.resuming_threshold = 84;
    s.player.bandwidth_safety = 0.75;
    s.player.decrease_buffer = 40;
    add(s);
  }
  {  // H3 — CBR, non-persistent TCP, 9 s segments, startup with 1 segment.
    ServiceSpec s;
    s.name = "H3";
    s.protocol = Protocol::kHls;
    s.video_ladder = kbps({260, 520, 1050, 2000});
    s.segment_duration = 9;
    s.encoding = EncodingMode::kCbr;
    s.peak_to_average = 1.0;
    s.player.max_connections = 1;
    s.player.persistent_connections = false;
    s.player.startup_buffer = 9;
    s.player.startup_bitrate = 1050e3;
    s.player.pausing_threshold = 40;
    s.player.resuming_threshold = 30;
    s.player.bandwidth_safety = 0.75;
    add(s);
  }
  {  // H4 — the naive SR cascade of §4.1.1, 9 s segments.
    ServiceSpec s;
    s.name = "H4";
    s.protocol = Protocol::kHls;
    s.video_ladder = kbps({240, 470, 900, 1600, 2700, 4500});
    s.segment_duration = 9;
    s.encoding = EncodingMode::kVbr;
    s.peak_to_average = 1.7;
    s.player.max_connections = 1;
    s.player.persistent_connections = true;
    s.player.startup_buffer = 9;
    s.player.startup_bitrate = 470e3;
    s.player.pausing_threshold = 155;
    s.player.resuming_threshold = 135;
    s.player.bandwidth_safety = 0.75;
    s.player.sr = SrPolicy::kCascadeNaive;
    s.player.sr_min_buffer = 10;
    add(s);
  }
  {  // H5 — CBR, non-persistent TCP, highest lowest-track (stalls, §3.1).
    ServiceSpec s;
    s.name = "H5";
    s.protocol = Protocol::kHls;
    s.video_ladder = kbps({700, 1150, 1850, 3000, 5000});
    s.segment_duration = 6;
    s.encoding = EncodingMode::kCbr;
    s.peak_to_average = 1.0;
    s.player.max_connections = 1;
    s.player.persistent_connections = false;
    s.player.startup_buffer = 12;
    s.player.startup_bitrate = 1850e3;
    s.player.pausing_threshold = 30;
    s.player.resuming_threshold = 20;
    s.player.bandwidth_safety = 0.75;
    add(s);
  }
  {  // H6 — 10 s segments, startup with a single segment.
    ServiceSpec s;
    s.name = "H6";
    s.protocol = Protocol::kHls;
    s.video_ladder = kbps({290, 500, 880, 1500, 2600, 4300});
    s.segment_duration = 10;
    s.encoding = EncodingMode::kVbr;
    s.peak_to_average = 1.5;
    s.player.max_connections = 1;
    s.player.persistent_connections = true;
    s.player.startup_buffer = 10;
    s.player.startup_bitrate = 880e3;
    s.player.pausing_threshold = 80;
    s.player.resuming_threshold = 70;
    s.player.bandwidth_safety = 0.75;
    add(s);
  }
  {  // D1 — DASH/SegmentList, 6 connections, unsynced A/V, oscillating ABR.
    ServiceSpec s;
    s.name = "D1";
    s.protocol = Protocol::kDash;
    s.dash_index = DashIndexMode::kSegmentList;
    s.video_ladder = kbps({230, 410, 760, 1400, 2500, 4200});
    s.segment_duration = 5;
    s.audio_segment_duration = 2;  // Table 1 footnote
    s.separate_audio = true;
    s.audio_bitrate = 128e3;  // heavier audio: starves on 1/6 of a slow link
    s.encoding = EncodingMode::kVbr;
    s.peak_to_average = 2.0;
    s.player.max_connections = 6;
    s.player.persistent_connections = true;
    s.player.startup_buffer = 15;
    s.player.startup_bitrate = 410e3;
    s.player.pausing_threshold = 182;
    s.player.resuming_threshold = 178;
    s.player.abr = AbrKind::kOscillating;
    s.player.av_scheduling = AvScheduling::kIndependent;
    add(s);
  }
  {  // D2 — DASH/sidx; ignores actual bitrates, very conservative (§4.2).
    ServiceSpec s;
    s.name = "D2";
    s.protocol = Protocol::kDash;
    s.dash_index = DashIndexMode::kSidx;
    s.video_ladder = kbps({160, 300, 560, 1000, 1900, 3400, 5200});
    s.segment_duration = 5;
    s.separate_audio = true;
    s.encoding = EncodingMode::kVbr;
    s.peak_to_average = 2.0;
    s.player.max_connections = 2;
    s.player.persistent_connections = true;
    s.player.startup_buffer = 5;
    s.player.startup_bitrate = 300e3;
    s.player.pausing_threshold = 30;
    s.player.resuming_threshold = 25;
    s.player.bandwidth_safety = 0.5;
    s.player.use_actual_bitrate = false;
    add(s);
  }
  {  // D3 — encrypted MPD, split segment downloads, aggressive, damped.
    ServiceSpec s;
    s.name = "D3";
    s.protocol = Protocol::kDash;
    s.dash_index = DashIndexMode::kSidx;
    s.encrypt_manifest = true;
    s.video_ladder = kbps({210, 400, 750, 1350, 2400, 4100});
    s.segment_duration = 2;
    s.separate_audio = true;
    s.encoding = EncodingMode::kVbr;
    s.peak_to_average = 1.8;
    s.player.max_connections = 3;
    s.player.persistent_connections = true;
    s.player.split_segment_downloads = true;
    s.player.startup_buffer = 8;
    s.player.startup_bitrate = 400e3;
    s.player.pausing_threshold = 120;
    s.player.resuming_threshold = 90;
    s.player.bandwidth_safety = 1.2;  // "aggressive" in Fig. 9
    s.player.decrease_buffer = 30;
    s.player.av_scheduling = AvScheduling::kIndependent;
    add(s);
  }
  {  // D4 — DASH/sidx, startup with a single segment, low resume threshold.
    ServiceSpec s;
    s.name = "D4";
    s.protocol = Protocol::kDash;
    s.dash_index = DashIndexMode::kSidx;
    s.video_ladder = kbps({360, 670, 1200, 2100, 3600, 5500});
    s.segment_duration = 6;
    s.separate_audio = true;
    s.encoding = EncodingMode::kVbr;
    s.peak_to_average = 1.6;
    s.player.max_connections = 3;
    s.player.persistent_connections = true;
    s.player.startup_buffer = 6;
    s.player.startup_bitrate = 670e3;
    s.player.pausing_threshold = 34;
    s.player.resuming_threshold = 15;
    s.player.bandwidth_safety = 0.75;
    s.player.av_scheduling = AvScheduling::kIndependent;
    add(s);
  }
  {  // S1 — SmoothStreaming, average-declared VBR, high lowest track,
     //      aggressive, decrease-buffer 50 s.
    ServiceSpec s;
    s.name = "S1";
    s.protocol = Protocol::kSmooth;
    s.video_ladder = kbps({680, 1350, 2300, 3900});
    s.segment_duration = 2;
    s.separate_audio = true;
    s.encoding = EncodingMode::kVbr;
    s.declared_policy = DeclaredPolicy::kAverage;
    s.peak_to_average = 1.4;
    s.player.max_connections = 2;
    s.player.persistent_connections = true;
    s.player.startup_buffer = 16;
    s.player.startup_bitrate = 1350e3;
    s.player.pausing_threshold = 180;
    s.player.resuming_threshold = 175;
    s.player.bandwidth_safety = 1.0;  // borderline aggressive
    s.player.decrease_buffer = 50;
    add(s);
  }
  {  // S2 — SmoothStreaming; the 4 s resume threshold of Fig. 7.
    ServiceSpec s;
    s.name = "S2";
    s.protocol = Protocol::kSmooth;
    s.video_ladder = kbps({300, 470, 760, 1300, 2200, 3700});
    s.segment_duration = 3;
    s.audio_segment_duration = 2;  // Table 1 footnote
    s.separate_audio = true;
    s.encoding = EncodingMode::kVbr;
    s.declared_policy = DeclaredPolicy::kAverage;
    s.peak_to_average = 1.5;
    s.player.max_connections = 2;
    s.player.persistent_connections = true;
    s.player.startup_buffer = 6;
    s.player.startup_bitrate = 760e3;
    s.player.pausing_threshold = 30;
    s.player.resuming_threshold = 4;
    s.player.bandwidth_safety = 0.75;
    add(s);
  }

  for (ServiceSpec& s : all) {
    s.player.name = s.name;
    if (s.audio_segment_duration <= 0) {
      s.audio_segment_duration = s.segment_duration;
    }
  }
  return all;
}

}  // namespace

media::EncoderConfig ServiceSpec::encoder_config() const {
  media::EncoderConfig config;
  config.mode = encoding;
  config.declared_policy = declared_policy;
  config.peak_to_average = peak_to_average;
  config.average_policy_peak = peak_to_average;
  return config;
}

http::OriginConfig ServiceSpec::origin_config() const {
  http::OriginConfig config;
  config.protocol = protocol;
  config.dash_index = dash_index;
  config.encrypt_manifest = encrypt_manifest;
  config.hls_byterange = hls_byterange;
  config.hls_average_bandwidth = hls_average_bandwidth;
  return config;
}

const std::vector<ServiceSpec>& catalog() {
  static const std::vector<ServiceSpec> all = build_catalog();
  return all;
}

const ServiceSpec& service(const std::string& name) {
  for (const ServiceSpec& s : catalog()) {
    if (s.name == name) return s;
  }
  throw ConfigError("unknown service: " + name);
}

}  // namespace vodx::services
