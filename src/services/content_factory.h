// Builds the server-side content (encoded asset + origin) for a service.
#pragma once

#include "http/origin_server.h"
#include "media/video_asset.h"
#include "services/service_catalog.h"

namespace vodx::services {

/// Encodes an asset for `spec`: the video ladder at the spec's segment
/// duration and encoding, plus an audio track when the service separates
/// audio. Deterministic in `seed`.
media::VideoAsset make_asset(const ServiceSpec& spec, Seconds content_duration,
                             std::uint64_t seed);

/// Convenience: asset + origin in one step.
http::OriginServer make_origin(const ServiceSpec& spec,
                               Seconds content_duration, std::uint64_t seed);

}  // namespace vodx::services
