#include "common/strings.h"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>

#include "common/error.h"

namespace vodx {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t pos = text.find('\n', start);
    if (pos == std::string_view::npos) {
      if (start < text.size()) out.emplace_back(text.substr(start));
      break;
    }
    std::string_view line = text.substr(start, pos - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    out.emplace_back(line);
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front())))
    text.remove_prefix(1);
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back())))
    text.remove_suffix(1);
  return text;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::int64_t parse_int(std::string_view text) {
  text = trim(text);
  std::int64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    throw ParseError("expected integer, got '" + std::string(text) + "'");
  }
  return value;
}

double parse_double(std::string_view text) {
  text = trim(text);
  // std::from_chars for double is not universally available; strtod on a
  // NUL-terminated copy is fine for short manifest fields.
  std::string copy(text);
  char* end = nullptr;
  double value = std::strtod(copy.c_str(), &end);
  if (copy.empty() || end != copy.c_str() + copy.size()) {
    throw ParseError("expected number, got '" + copy + "'");
  }
  return value;
}

std::string format(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args2;
  va_copy(args2, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(needed > 0 ? static_cast<std::size_t>(needed) : 0, '\0');
  if (needed > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

std::string format_bps(double bps) {
  if (bps >= 1e6) return format("%.2f Mbps", bps / 1e6);
  if (bps >= 1e3) return format("%.0f kbps", bps / 1e3);
  return format("%.0f bps", bps);
}

}  // namespace vodx
