#include "common/error.h"

#include <cstdio>
#include <cstdlib>

namespace vodx::detail {

void assert_fail(const char* expr, const char* file, int line,
                 const std::string& msg) {
  std::fprintf(stderr, "vodx invariant violated at %s:%d: (%s) %s\n", file,
               line, expr, msg.c_str());
  std::abort();
}

}  // namespace vodx::detail
