#include "common/rng.h"

#include <algorithm>
#include <cmath>

namespace vodx {

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

double Rng::lognormal(double median, double sigma) {
  std::lognormal_distribution<double> dist(std::log(median), sigma);
  return dist(engine_);
}

bool Rng::chance(double p) {
  return uniform(0.0, 1.0) < std::clamp(p, 0.0, 1.0);
}

Rng Rng::fork(std::uint64_t tag) const {
  // splitmix64-style mixing of the engine's next output with the tag keeps
  // child streams decorrelated without advancing the parent.
  Rng copy = *this;
  std::uint64_t x = copy.engine_() ^ (tag * 0x9E3779B97F4A7C15ULL);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return Rng(x);
}

}  // namespace vodx
