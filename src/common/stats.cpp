#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace vodx {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double median(std::vector<double> xs) { return percentile(std::move(xs), 50.0); }

namespace {
double sorted_percentile(const std::vector<double>& xs, double p);
}  // namespace

double percentile(std::vector<double> xs, double p) {
  std::sort(xs.begin(), xs.end());
  return sorted_percentile(xs, p);
}

namespace {

/// Linear-interpolated percentile over an already-sorted vector (the
/// single-sort core shared by percentile() and quantiles()).
double sorted_percentile(const std::vector<double>& xs, double p) {
  if (xs.empty()) return 0.0;
  double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                static_cast<double>(xs.size() - 1);
  std::size_t lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace

QuantileSummary quantiles(std::vector<double> xs) {
  QuantileSummary out;
  if (xs.empty()) return out;
  std::sort(xs.begin(), xs.end());
  out.p50 = sorted_percentile(xs, 50.0);
  out.p95 = sorted_percentile(xs, 95.0);
  out.p99 = sorted_percentile(xs, 99.0);
  return out;
}

double jain_index(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;  // all-zero: everyone equally has nothing
  return (sum * sum) / (static_cast<double>(xs.size()) * sum_sq);
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = mean(xs);
  double sum = 0.0;
  for (double x : xs) sum += (x - m) * (x - m);
  return std::sqrt(sum / static_cast<double>(xs.size() - 1));
}

double min_of(const std::vector<double>& xs) {
  return xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end());
}

double max_of(const std::vector<double>& xs) {
  return xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
}

void Accumulator::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  sum_ += x;
  ++count_;
}

}  // namespace vodx
