// Deterministic random source.
//
// Every stochastic component in vodx (scene complexity, bandwidth traces)
// takes an explicit Rng so whole experiments replay bit-identically from a
// seed. Wall-clock time is never consulted anywhere in the library.
#pragma once

#include <cstdint>
#include <random>

namespace vodx {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Normal draw; mean/stddev in the caller's units.
  double normal(double mean, double stddev);

  /// Log-normal draw parameterised directly by the target median and sigma
  /// of the underlying normal.
  double lognormal(double median, double sigma);

  /// True with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Derives an independent child stream; children with different tags do not
  /// correlate with each other or the parent.
  Rng fork(std::uint64_t tag) const;

 private:
  std::mt19937_64 engine_;
};

}  // namespace vodx
