// Error taxonomy shared by all vodx libraries.
//
// Parsing and protocol violations throw; programming errors use VODX_ASSERT
// which aborts with a message (we never continue on a broken invariant).
#pragma once

#include <stdexcept>
#include <string>

namespace vodx {

/// Base class for all errors raised by vodx libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed input: manifest, sidx box, HTTP message, trace file.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// A request that the peer cannot satisfy (unknown URL, bad range, ...).
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what)
      : Error("protocol error: " + what) {}
};

/// Invalid configuration supplied by the caller.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what)
      : Error("config error: " + what) {}
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& msg);
}  // namespace detail

}  // namespace vodx

/// Invariant check that stays on in release builds; violation aborts.
#define VODX_ASSERT(expr, msg)                                       \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::vodx::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                \
  } while (false)
