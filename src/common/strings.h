// Small string utilities used by the manifest parsers and formatters.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace vodx {

/// Splits on a single character; keeps empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Splits into lines, treating both "\n" and "\r\n" as terminators.
std::vector<std::string> split_lines(std::string_view text);

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// Parses a decimal integer / double; throws ParseError on malformed input.
std::int64_t parse_int(std::string_view text);
double parse_double(std::string_view text);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Pretty-prints a bitrate ("1.35 Mbps", "640 kbps").
std::string format_bps(double bps);

}  // namespace vodx
