// Strongly-named scalar units used across the codebase.
//
// We deliberately use plain doubles/int64s with unit-suffixed names instead of
// wrapper types: the simulator does heavy arithmetic on these values and the
// naming convention (seconds / bits-per-second / bytes) has proven sufficient
// to avoid unit bugs while keeping call sites readable.
#pragma once

#include <cstdint>

namespace vodx {

/// Simulation time and durations, in seconds.
using Seconds = double;

/// Network and media rates, in bits per second.
using Bps = double;

/// Payload sizes, in bytes. Signed on purpose (Core Guidelines ES.102).
using Bytes = std::int64_t;

constexpr Bps kKbps = 1e3;
constexpr Bps kMbps = 1e6;

/// Converts a size transferred over a duration into a rate.
constexpr Bps rate_of(Bytes bytes, Seconds duration) {
  return duration > 0 ? static_cast<double>(bytes) * 8.0 / duration : 0.0;
}

/// Bytes needed to carry `duration` seconds of media at `rate`.
constexpr Bytes bytes_for(Bps rate, Seconds duration) {
  return static_cast<Bytes>(rate * duration / 8.0);
}

}  // namespace vodx
