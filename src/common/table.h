// ASCII table renderer for the bench harnesses: prints the same rows/series
// the paper's tables and figures report.
#pragma once

#include <string>
#include <vector>

namespace vodx {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment and a header separator.
  std::string render() const;

  /// Convenience: render straight to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vodx
