#include "common/table.h"

#include <algorithm>
#include <cstdio>

#include "common/error.h"

namespace vodx {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  VODX_ASSERT(cells.size() == header_.size(), "table row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t i = 0; i < row.size(); ++i) {
      line += row[i];
      if (i + 1 < row.size()) {
        line.append(widths[i] - row[i].size() + 2, ' ');
      }
    }
    line += '\n';
    return line;
  };

  std::string out = render_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out.append(total > 2 ? total - 2 : total, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void Table::print() const { std::fputs(render().c_str(), stdout); }

}  // namespace vodx
