// Descriptive statistics used by the QoE analysis and bench harnesses.
#pragma once

#include <vector>

namespace vodx {

double mean(const std::vector<double>& xs);
double median(std::vector<double> xs);

/// Linear-interpolated percentile, p in [0, 100]. Empty input returns 0.
double percentile(std::vector<double> xs, double p);

double stddev(const std::vector<double>& xs);
double min_of(const std::vector<double>& xs);
double max_of(const std::vector<double>& xs);

/// Running mean/min/max accumulator for streaming measurements.
class Accumulator {
 public:
  void add(double x);
  int count() const { return count_; }
  double mean() const { return count_ ? sum_ / count_ : 0.0; }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  int count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace vodx
