// Descriptive statistics used by the QoE analysis and bench harnesses.
#pragma once

#include <vector>

namespace vodx {

double mean(const std::vector<double>& xs);
double median(std::vector<double> xs);

/// Linear-interpolated percentile, p in [0, 100]. Empty input returns 0.
double percentile(std::vector<double> xs, double p);

double stddev(const std::vector<double>& xs);
double min_of(const std::vector<double>& xs);
double max_of(const std::vector<double>& xs);

/// The three tail points population rollups report. One sort, three reads —
/// callers that need p50/p95/p99 together should use this instead of three
/// percentile() calls. Empty input yields all zeros.
struct QuantileSummary {
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

QuantileSummary quantiles(std::vector<double> xs);

/// Jain's fairness index (Σx)² / (n·Σx²) over non-negative allocations:
/// 1.0 = perfectly equal shares, 1/n = one flow has everything. An all-zero
/// population is perfectly equal (1.0); empty input returns 0.
double jain_index(const std::vector<double>& xs);

/// Running mean/min/max accumulator for streaming measurements.
class Accumulator {
 public:
  void add(double x);
  int count() const { return count_; }
  double mean() const { return count_ ? sum_ / count_ : 0.0; }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  int count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace vodx
