#include "http/http_client.h"

#include <algorithm>

#include "common/error.h"
#include "common/strings.h"

namespace vodx::http {

HttpClient::HttpClient(net::Simulator& sim, net::Link& link, Proxy& proxy,
                       Options options)
    : sim_(sim), link_(link), proxy_(proxy), options_(options) {
  VODX_ASSERT(options_.max_connections > 0, "need at least one connection");
}

HttpClient::~HttpClient() { shutdown(); }

void HttpClient::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  for (auto& [id, pending] : in_flight_) {
    proxy_.log().abort(id, pending.connection->transfer_delivered());
    pending.connection->abort_transfer();
  }
  in_flight_.clear();
  for (auto& connection : connections_) link_.detach(connection.get());
  connections_.clear();
  usage_.clear();
}

int HttpClient::free_slots() const {
  int busy = 0;
  for (const auto& connection : connections_) {
    if (connection->busy()) ++busy;
  }
  const int open_slots = static_cast<int>(connections_.size()) - busy;
  const int unopened =
      options_.max_connections - static_cast<int>(connections_.size());
  return open_slots + unopened;
}

void HttpClient::set_observer(obs::Observer* observer) {
  obs_ = observer;
  for (auto& connection : connections_) connection->set_observer(observer);
  if (obs_ == nullptr) {
    requests_metric_ = aborts_metric_ = bytes_metric_ = nullptr;
    resets_metric_ = nullptr;
    return;
  }
  requests_metric_ = &obs_->metrics.counter("http.requests");
  aborts_metric_ = &obs_->metrics.counter("http.aborts");
  bytes_metric_ = &obs_->metrics.counter("http.bytes_received");
  resets_metric_ = &obs_->metrics.counter("http.resets");
}

net::TcpConnection* HttpClient::acquire_connection() {
  if (shut_down_) return nullptr;
  for (auto& connection : connections_) {
    if (!connection->busy()) return connection.get();
  }
  if (static_cast<int>(connections_.size()) < options_.max_connections) {
    auto connection = std::make_unique<net::TcpConnection>(
        options_.tcp, format("conn%zu", connections_.size()));
    connection->set_observer(obs_);
    link_.attach(connection.get());
    connections_.push_back(std::move(connection));
    return connections_.back().get();
  }
  return nullptr;
}

int HttpClient::fetch(const Request& request, ResponseFn on_done) {
  net::TcpConnection* connection = acquire_connection();
  if (connection == nullptr) return -1;

  ConnectionUsage& usage = usage_[connection];
  if (!connection->connected()) {
    ++usage.generation;
    usage.requests_on_generation = 0;
  }
  const std::string wire_name =
      format("%s.%d", connection->label().c_str(), usage.generation);

  Response response = proxy_.resolve(request, sim_.now());
  const int id = proxy_.log().open(request.method, request.url, request.range,
                                   sim_.now(), response, wire_name,
                                   usage.requests_on_generation);
  ++usage.requests_on_generation;
  if (requests_metric_ != nullptr) requests_metric_->add();
  if (obs::trace_on(obs_, obs::Category::kHttp)) {
    // Opens on the carrying connection's track, inside which the TCP layer
    // nests its transfer span. `id` is the TrafficLog record id.
    obs_->trace.begin(
        sim_.now(), obs::Category::kHttp, "http.request",
        connection->obs_track(),
        {obs::Field::n("id", id), obs::Field::t("url", request.url),
         obs::Field::n("status", response.status),
         obs::Field::n("bytes", static_cast<double>(response.payload_size))});
  }
  // Reset faults truncate the wire transfer: the connection delivers bytes
  // up to the reset point, then the client observes a hard failure.
  const Bytes full_wire = response.wire_size();
  const bool reset =
      response.reset_after >= 0 && response.reset_after < full_wire;
  const Bytes wire = reset ? std::max<Bytes>(1, response.reset_after)
                           : full_wire;
  const Seconds extra_wait = std::max<Seconds>(0, response.added_latency);

  Pending pending;
  pending.connection = connection;
  pending.response = std::move(response);
  pending.on_done = std::move(on_done);
  pending.reset = reset;
  in_flight_.emplace(id, std::move(pending));

  connection->start_transfer(sim_.now(), wire, [this, id] { finish(id); },
                             extra_wait);
  return id;
}

void HttpClient::finish(int transfer_id) {
  auto it = in_flight_.find(transfer_id);
  VODX_ASSERT(it != in_flight_.end(), "completion for unknown transfer");
  // Move out before invoking: the callback may start new fetches.
  Response response = std::move(it->second.response);
  ResponseFn on_done = std::move(it->second.on_done);
  net::TcpConnection* connection = it->second.connection;
  if (it->second.reset) {
    // The truncated wire transfer finished — surface it as a mid-response
    // connection reset: partial payload logged as an abort, connection
    // closed, caller sees a transport-level error (status 0).
    const Bytes received = std::max<Bytes>(
        0, connection->transfer_delivered() - kHttpHeaderOverhead);
    proxy_.log().abort(transfer_id, received);
    if (bytes_metric_ != nullptr) bytes_metric_->add(received);
    if (resets_metric_ != nullptr) resets_metric_->add();
    connection->close();
    if (obs::trace_on(obs_, obs::Category::kHttp)) {
      obs_->trace.end(
          sim_.now(), obs::Category::kHttp, "http.request",
          connection->obs_track(),
          {obs::Field::n("id", transfer_id), obs::Field::n("reset", 1),
           obs::Field::n("bytes_received", static_cast<double>(received))});
    }
    in_flight_.erase(it);
    if (on_done) on_done(make_error(0, "connection reset by peer"));
    return;
  }
  proxy_.log().complete(transfer_id, sim_.now(), response.payload_size);
  if (bytes_metric_ != nullptr) bytes_metric_->add(response.payload_size);
  if (obs::trace_on(obs_, obs::Category::kHttp)) {
    obs_->trace.end(sim_.now(), obs::Category::kHttp, "http.request",
                    connection->obs_track(),
                    {obs::Field::n("id", transfer_id)});
  }
  in_flight_.erase(it);
  if (on_done) on_done(response);
}

void HttpClient::abort(int transfer_id) {
  auto it = in_flight_.find(transfer_id);
  if (it == in_flight_.end()) return;
  net::TcpConnection* connection = it->second.connection;
  // Subtract header overhead so the log charges only payload bytes.
  const Bytes received = std::max<Bytes>(
      0, connection->transfer_delivered() - kHttpHeaderOverhead);
  proxy_.log().abort(transfer_id, received);
  if (bytes_metric_ != nullptr) bytes_metric_->add(received);
  if (aborts_metric_ != nullptr) aborts_metric_->add();
  connection->abort_transfer();  // closes the nested tcp span first
  if (obs::trace_on(obs_, obs::Category::kHttp)) {
    obs_->trace.end(
        sim_.now(), obs::Category::kHttp, "http.request",
        connection->obs_track(),
        {obs::Field::n("id", transfer_id), obs::Field::n("aborted", 1),
         obs::Field::n("bytes_received", static_cast<double>(received))});
  }
  in_flight_.erase(it);
}

Bytes HttpClient::total_delivered() const {
  Bytes total = 0;
  for (const auto& connection : connections_) {
    total += connection->lifetime_delivered();
  }
  return total;
}

Bytes HttpClient::bytes_in_flight(int transfer_id) const {
  auto it = in_flight_.find(transfer_id);
  if (it == in_flight_.end()) return 0;
  return it->second.connection->transfer_delivered();
}

}  // namespace vodx::http
