// Wire-level record of every HTTP exchange, as seen at the proxy.
//
// This is the raw material for the paper's traffic analyzer (§2.3): URL,
// byte range, timing, size, and — for structured payloads — the bytes
// themselves (manifests, sidx boxes). Aborted transfers keep their partial
// byte count; that is exactly the "wasted data" the SR analysis charges.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/units.h"
#include "http/message.h"

namespace vodx::http {

struct TransferRecord {
  int id = 0;
  Method method = Method::kGet;
  /// Which TCP connection carried the exchange plus its serial number on
  /// that connection — the observable a packet trace would give (used to
  /// infer connection count and persistence, §3.2).
  std::string connection;
  int connection_use = 0;
  std::string url;
  std::optional<manifest::ByteRange> range;
  int status = 0;
  std::string content_type;
  Seconds requested_at = 0;
  Seconds completed_at = -1;  ///< -1 while in flight or if aborted
  Bytes payload_size = 0;     ///< full response payload
  Bytes bytes_received = 0;   ///< actual, < payload_size when aborted
  bool aborted = false;
  /// Copy of structured payloads (manifest text, sidx bytes); empty for media.
  std::string body_copy;

  bool finished() const { return completed_at >= 0; }

  /// Completion time of a finished transfer; asserts finished(). Use this
  /// (or finish_or) instead of reading the completed_at sentinel directly.
  Seconds finish_time() const;

  /// Completion time, or `fallback` while in flight / after an abort.
  Seconds finish_or(Seconds fallback) const {
    return finished() ? completed_at : fallback;
  }

  /// Wall time from request to completion; asserts finished().
  Seconds duration() const;

  /// Duration using `fallback_end` for unfinished transfers (e.g. the
  /// session end for the trailing in-flight request).
  Seconds duration_or(Seconds fallback_end) const {
    return finish_or(fallback_end) - requested_at;
  }
};

class TrafficLog {
 public:
  /// Opens a record; returns its id. `connection` identifies the TCP
  /// connection, `connection_use` how many requests it has carried before
  /// (0 = a fresh connection, i.e. a handshake was observed).
  int open(Method method, const std::string& url,
           const std::optional<manifest::ByteRange>& range, Seconds now,
           const Response& response, const std::string& connection,
           int connection_use);

  void complete(int id, Seconds now, Bytes bytes_received);
  void abort(int id, Bytes bytes_received);

  const std::vector<TransferRecord>& records() const { return records_; }
  const TransferRecord& record(int id) const;

  /// Total bytes that crossed the wire (payload only, aborted included).
  Bytes total_bytes() const;

 private:
  TransferRecord& record_mut(int id);

  std::vector<TransferRecord> records_;
};

}  // namespace vodx::http
