#include "http/origin_server.h"

#include <cmath>

#include "common/error.h"
#include "common/strings.h"
#include "manifest/hls.h"
#include "manifest/smooth.h"
#include "media/sidx.h"

namespace vodx::http {

namespace {

constexpr std::string_view kScrambleMagic = "VODXENC1";
constexpr std::string_view kScrambleKey = "app-private-key";

std::string xor_with_key(std::string_view data) {
  std::string out(data);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<char>(out[i] ^ kScrambleKey[i % kScrambleKey.size()]);
  }
  return out;
}

}  // namespace

std::string scramble_manifest(const std::string& plain) {
  return std::string(kScrambleMagic) + xor_with_key(plain);
}

std::string unscramble_manifest(const std::string& blob) {
  if (!is_scrambled(blob)) throw ParseError("not a scrambled manifest");
  return xor_with_key(std::string_view(blob).substr(kScrambleMagic.size()));
}

bool is_scrambled(std::string_view blob) {
  return blob.substr(0, kScrambleMagic.size()) == kScrambleMagic;
}

OriginServer::OriginServer(media::VideoAsset asset, OriginConfig config)
    : asset_(std::move(asset)), config_(config) {
  switch (config_.protocol) {
    case manifest::Protocol::kHls: build_hls(); break;
    case manifest::Protocol::kDash: build_dash(); break;
    case manifest::Protocol::kSmooth: build_smooth(); break;
  }
}

std::string OriginServer::manifest_url() const {
  switch (config_.protocol) {
    case manifest::Protocol::kHls: return "/master.m3u8";
    case manifest::Protocol::kDash: return "/manifest.mpd";
    case manifest::Protocol::kSmooth: return "/manifest.ism";
  }
  return "/";
}

void OriginServer::build_hls() {
  VODX_ASSERT(!asset_.separate_audio(),
              "the studied HLS services mux audio into video segments");
  manifest::HlsMasterPlaylist master;
  for (int level = 0; level < asset_.video_track_count(); ++level) {
    const media::Track& track = asset_.video_track(level);
    manifest::HlsVariant variant;
    variant.bandwidth = track.declared_bitrate();
    if (config_.hls_average_bandwidth) {
      variant.average_bandwidth = track.average_actual_bitrate();
    }
    variant.resolution = track.resolution();
    variant.uri = format("video/%d/playlist.m3u8", level);
    master.variants.push_back(variant);

    manifest::HlsMediaPlaylist media_playlist;
    media_playlist.target_duration = 0;
    for (const media::Segment& s : track.segments()) {
      media_playlist.target_duration =
          std::max(media_playlist.target_duration, s.duration);
      manifest::HlsMediaSegment seg;
      seg.duration = s.duration;
      if (config_.hls_byterange) {
        // HLS v4: sub-ranges of one media file per track.
        seg.uri = "media.ts";
        seg.byterange = manifest::ByteRange{s.offset, s.offset + s.size - 1};
      } else {
        seg.uri = format("seg%d.ts", s.index);
        media_segments_[format("/video/%d/seg%d.ts", level, s.index)] =
            s.size;
      }
      media_playlist.segments.push_back(seg);
    }
    if (config_.hls_byterange) {
      MediaFile file;
      file.total_size = track.total_size();
      media_files_[format("/video/%d/media.ts", level)] = file;
    }
    text_resources_[format("/video/%d/playlist.m3u8", level)] =
        make_ok("application/vnd.apple.mpegurl", media_playlist.serialize());
  }
  text_resources_["/master.m3u8"] =
      make_ok("application/vnd.apple.mpegurl", master.serialize());
}

void OriginServer::build_dash() {
  manifest::DashMpd mpd;
  mpd.media_presentation_duration = asset_.duration();

  auto build_set = [&](const std::vector<media::Track>& tracks,
                       media::ContentType type, const char* prefix) {
    if (tracks.empty()) return;
    manifest::DashAdaptationSet set;
    set.content_type = type;
    for (std::size_t level = 0; level < tracks.size(); ++level) {
      const media::Track& track = tracks[level];
      manifest::DashRepresentation rep;
      rep.id = track.id();
      rep.bandwidth = track.declared_bitrate();
      rep.resolution = track.resolution();
      rep.base_url = format("%s/%zu/media.mp4", prefix, level);
      const std::string file_url = "/" + rep.base_url;

      if (config_.dash_index == manifest::DashIndexMode::kSegmentTemplate) {
        rep.base_url.clear();
        rep.media_template = format("%s/%zu/seg$Number$.m4s", prefix, level);
        rep.start_number = 1;
        for (const media::Segment& seg : track.segments()) {
          rep.template_durations.push_back(seg.duration);
          media_segments_[format("/%s/%zu/seg%d.m4s", prefix, level,
                                 seg.index + rep.start_number)] = seg.size;
        }
        set.representations.push_back(std::move(rep));
        continue;
      }

      MediaFile file;
      if (config_.dash_index == manifest::DashIndexMode::kSidx) {
        file.index_blob = media::serialize_sidx(media::sidx_for_track(track));
        rep.index_range = manifest::ByteRange{
            0, static_cast<Bytes>(file.index_blob.size()) - 1};
      } else {
        for (const media::Segment& s : track.segments()) {
          manifest::DashSegmentRef ref;
          ref.duration = s.duration;
          ref.media_range = manifest::ByteRange{s.offset, s.offset + s.size - 1};
          rep.segments.push_back(ref);
        }
      }
      file.total_size = static_cast<Bytes>(file.index_blob.size()) +
                        track.total_size();
      media_files_[file_url] = std::move(file);
      set.representations.push_back(std::move(rep));
    }
    mpd.adaptation_sets.push_back(std::move(set));
  };

  build_set(asset_.video_tracks(), media::ContentType::kVideo, "video");
  build_set(asset_.audio_tracks(), media::ContentType::kAudio, "audio");

  std::string body = mpd.serialize();
  if (config_.encrypt_manifest) {
    text_resources_["/manifest.mpd"] =
        make_ok("application/octet-stream", scramble_manifest(body));
  } else {
    text_resources_["/manifest.mpd"] =
        make_ok("application/dash+xml", std::move(body));
  }
}

void OriginServer::build_smooth() {
  manifest::SmoothManifest manifest;
  manifest.duration = asset_.duration();

  auto build_stream = [&](const std::vector<media::Track>& tracks,
                          media::ContentType type, const char* tag) {
    if (tracks.empty()) return;
    manifest::SmoothStreamIndex stream;
    stream.type = type;
    stream.url_template =
        format("QualityLevels({bitrate})/Fragments(%s={start time})", tag);
    for (const media::Track& track : tracks) {
      manifest::SmoothQualityLevel q;
      q.bitrate = track.declared_bitrate();
      q.resolution = track.resolution();
      stream.quality_levels.push_back(q);
    }
    // Chunk timeline comes from the first track; SmoothStreaming requires
    // aligned fragments across quality levels.
    for (const media::Segment& s : tracks.front().segments()) {
      stream.chunk_durations.push_back(s.duration);
    }
    // Register every fragment of every quality level.
    for (const media::Track& track : tracks) {
      for (const media::Segment& s : track.segments()) {
        const std::uint64_t ticks = static_cast<std::uint64_t>(std::llround(
            track.segment_start(s.index) *
            static_cast<double>(manifest::kSmoothTimescale)));
        media_segments_["/" + stream.fragment_url(track.declared_bitrate(),
                                                  ticks)] = s.size;
      }
    }
    manifest.stream_indexes.push_back(std::move(stream));
  };

  build_stream(asset_.video_tracks(), media::ContentType::kVideo, "video");
  build_stream(asset_.audio_tracks(), media::ContentType::kAudio, "audio");

  text_resources_["/manifest.ism"] =
      make_ok("text/xml", manifest.serialize());
}

Response OriginServer::serve_media_file(const MediaFile& file,
                                        const Request& request) const {
  manifest::ByteRange range{0, file.total_size - 1};
  if (request.range) {
    range = *request.range;
    if (range.first < 0 || range.last >= file.total_size) {
      return make_error(416, "range not satisfiable");
    }
  }
  Response response;
  response.status = request.range ? 206 : 200;
  response.content_type = "video/mp4";
  response.payload_size = range.length();
  // Bytes overlapping the index blob are real (the analyzer parses them).
  const Bytes blob_size = static_cast<Bytes>(file.index_blob.size());
  if (range.first < blob_size) {
    const Bytes end = std::min(range.last, blob_size - 1);
    response.body = file.index_blob.substr(
        static_cast<std::size_t>(range.first),
        static_cast<std::size_t>(end - range.first + 1));
  }
  return response;
}

Response OriginServer::handle(const Request& request) const {
  auto finish = [&](Response response) {
    if (request.method == Method::kHead && response.ok()) {
      response.head_content_length = request.range
                                         ? request.range->length()
                                         : response.payload_size;
      response.payload_size = 0;
      response.body.clear();
    }
    return response;
  };

  if (auto it = text_resources_.find(request.url); it != text_resources_.end()) {
    return finish(it->second);
  }
  if (auto it = media_segments_.find(request.url);
      it != media_segments_.end()) {
    if (request.range) {
      if (request.range->last >= it->second) {
        return make_error(416, "range not satisfiable");
      }
      Response r = make_media("video/mp2t", request.range->length());
      r.status = 206;
      return finish(r);
    }
    return finish(make_media("video/mp2t", it->second));
  }
  if (auto it = media_files_.find(request.url); it != media_files_.end()) {
    return finish(serve_media_file(it->second, request));
  }
  return make_error(404, "unknown resource: " + request.url);
}

}  // namespace vodx::http
