#include "http/proxy.h"

#include <utility>

#include "obs/profiler.h"

namespace vodx::http {

bool Proxy::is_manifest_content(const std::string& content_type) {
  return content_type == "application/vnd.apple.mpegurl" ||
         content_type == "application/dash+xml" ||
         content_type == "text/xml";
}

void Proxy::use(InterceptorPtr interceptor) {
  interceptor->attach(*this);
  chain_.push_back(std::move(interceptor));
}

Response Proxy::resolve(const Request& request, Seconds now) const {
  VODX_PROFILE_ZONE("http.resolve");
  Response response;
  bool short_circuited = false;
  for (const auto& interceptor : chain_) {
    if (auto injected = interceptor->on_request(request, now)) {
      response = std::move(*injected);
      short_circuited = true;
      break;
    }
  }
  if (!short_circuited) response = origin_->handle(request);

  if (response.ok() && is_manifest_content(response.content_type)) {
    std::string body = std::move(response.body);
    for (const auto& interceptor : chain_) {
      body = interceptor->on_manifest(request.url, std::move(body));
    }
    response.payload_size = static_cast<Bytes>(body.size());
    response.body = std::move(body);
  }

  for (auto it = chain_.rbegin(); it != chain_.rend(); ++it) {
    (*it)->on_response(request, response, now);
  }
  return response;
}

}  // namespace vodx::http
