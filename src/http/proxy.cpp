#include "http/proxy.h"

namespace vodx::http {

bool Proxy::is_manifest_content(const std::string& content_type) {
  return content_type == "application/vnd.apple.mpegurl" ||
         content_type == "application/dash+xml" ||
         content_type == "text/xml";
}

Response Proxy::resolve(const Request& request) const {
  if (reject_hook_ && reject_hook_(request)) {
    return make_error(403, "rejected by proxy");
  }
  if (fault_hook_) {
    if (const int status = fault_hook_(request); status != 0) {
      return make_error(status, "injected fault");
    }
  }
  Response response = origin_->handle(request);
  if (manifest_transform_ && response.ok() &&
      is_manifest_content(response.content_type)) {
    std::string rewritten = manifest_transform_(request.url, response.body);
    response.payload_size = static_cast<Bytes>(rewritten.size());
    response.body = std::move(rewritten);
  }
  return response;
}

}  // namespace vodx::http
