// Composable session interception (§2.2's proxy powers, generalised).
//
// The paper's methodology is built on perturbing traffic in flight:
// rejecting requests, rewriting manifests, injecting failures. Instead of
// one ad-hoc hook per power, the proxy carries an ordered chain of
// Interceptors, each of which may participate in three stages:
//
//   on_request   registration order; the first interceptor returning a
//                Response short-circuits the origin (and the rest of the
//                request stage) — rejections and injected HTTP errors.
//   on_manifest  registration order; body rewriting for ok() responses
//                whose content type parses as a manifest (the Fig.-12
//                Manifest Modifier).
//   on_response  REVERSE registration order (onion semantics: the first
//                interceptor registered sees the final response last) —
//                mutation of headers/wire effects such as added latency or
//                a scheduled connection reset.
//
// attach() fires once when the interceptor is registered on a proxy, so
// stateful interceptors (e.g. the startup probe's segment classifier) can
// bind to the live traffic log.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/units.h"
#include "http/message.h"

namespace vodx::http {

class Proxy;

class Interceptor {
 public:
  virtual ~Interceptor() = default;

  /// Called once, from Proxy::use(), with the proxy the interceptor now
  /// serves. Default: nothing.
  virtual void attach(Proxy& proxy) { (void)proxy; }

  /// Request stage. Return a Response to answer without consulting the
  /// origin (later interceptors' request stages are skipped); nullopt to
  /// pass through. `now` is the simulated time of the request.
  virtual std::optional<Response> on_request(const Request& request,
                                             Seconds now) {
    (void)request;
    (void)now;
    return std::nullopt;
  }

  /// Manifest stage. Receives the (possibly already-rewritten) body of an
  /// ok() manifest response; returns the replacement body.
  virtual std::string on_manifest(const std::string& url, std::string body) {
    (void)url;
    return body;
  }

  /// Response stage. May mutate the response in place (status, body, wire
  /// fault fields). Runs for every response, including short-circuited and
  /// error responses.
  virtual void on_response(const Request& request, Response& response,
                           Seconds now) {
    (void)request;
    (void)response;
    (void)now;
  }
};

using InterceptorPtr = std::shared_ptr<Interceptor>;
using InterceptorChain = std::vector<InterceptorPtr>;

// --- One-liner adapters ----------------------------------------------------
// For probe/test code that needs a single stage without a named class.

/// Rejects (403) every request the predicate accepts.
InterceptorPtr reject_if(std::function<bool(const Request&)> predicate);

/// Arbitrary request-stage hook: return a Response to short-circuit.
InterceptorPtr respond_with(
    std::function<std::optional<Response>(const Request&, Seconds)> fn);

/// Manifest-stage rewrite: receives (url, body), returns the new body.
InterceptorPtr transform_manifest(
    std::function<std::string(const std::string&, std::string)> fn);

/// Response-stage tap/mutator.
InterceptorPtr tap_response(
    std::function<void(const Request&, Response&, Seconds)> fn);

}  // namespace vodx::http
