// HTTP client over the simulated transport.
//
// Owns up to `max_connections` TCP connections to the origin (through the
// proxy). Callers ask for a free slot, issue a request, and get called back
// when the response has fully arrived over the simulated link. The player's
// download scheduler is responsible for deciding *what* and *when* to fetch;
// this class only moves bytes and keeps the proxy's traffic log faithful.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "http/proxy.h"
#include "net/link.h"
#include "net/simulator.h"
#include "net/tcp_connection.h"
#include "obs/observer.h"

namespace vodx::http {

class HttpClient {
 public:
  struct Options {
    int max_connections = 1;
    net::TcpConfig tcp;
  };

  HttpClient(net::Simulator& sim, net::Link& link, Proxy& proxy,
             Options options);
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  using ResponseFn = std::function<void(const Response&)>;

  /// Attaches an observability context, propagated to every TCP connection
  /// (existing and future). Request lifecycle spans carry the TrafficLog
  /// record id, so a trace event joins against the TransferRecord it logged.
  void set_observer(obs::Observer* observer);

  /// Issues a request on a free connection. Returns the transfer id (also the
  /// TrafficLog record id), or -1 when every connection is busy.
  int fetch(const Request& request, ResponseFn on_done);

  /// Abandons an in-flight transfer; partial bytes are logged as waste and
  /// the underlying connection is closed. No callback fires.
  void abort(int transfer_id);

  /// Permanent teardown (session departure): aborts every in-flight
  /// transfer without firing callbacks, detaches and destroys all
  /// connections — the link redistributes their share to the surviving
  /// flows on its next allocation pass — and refuses further fetches
  /// (fetch() returns -1). Idempotent.
  void shutdown();
  bool shut_down() const { return shut_down_; }

  bool can_fetch() const { return free_slots() > 0; }
  int free_slots() const;
  int active_transfers() const { return static_cast<int>(in_flight_.size()); }

  /// Bytes received so far for an in-flight transfer.
  Bytes bytes_in_flight(int transfer_id) const;

  /// Total wire bytes this client has received over its lifetime, across all
  /// connections — the input for a player-wide bandwidth meter.
  Bytes total_delivered() const;

 private:
  struct Pending {
    net::TcpConnection* connection = nullptr;
    Response response;
    ResponseFn on_done;
    /// True when the response carries a reset_after below its wire size: the
    /// truncated transfer ends in a connection reset, not a completion.
    bool reset = false;
  };

  /// Observable identity of a connection: a handshake (re)starts a new
  /// "wire connection" even when the client object is reused.
  struct ConnectionUsage {
    int generation = 0;
    int requests_on_generation = 0;
  };

  net::TcpConnection* acquire_connection();
  void finish(int transfer_id);

  net::Simulator& sim_;
  net::Link& link_;
  Proxy& proxy_;
  Options options_;
  std::vector<std::unique_ptr<net::TcpConnection>> connections_;
  std::map<net::TcpConnection*, ConnectionUsage> usage_;
  std::map<int, Pending> in_flight_;
  bool shut_down_ = false;

  obs::Observer* obs_ = nullptr;
  obs::Counter* requests_metric_ = nullptr;
  obs::Counter* aborts_metric_ = nullptr;
  obs::Counter* bytes_metric_ = nullptr;
  obs::Counter* resets_metric_ = nullptr;
};

}  // namespace vodx::http
