#include "http/interceptor.h"

namespace vodx::http {

namespace {

class RejectIf : public Interceptor {
 public:
  explicit RejectIf(std::function<bool(const Request&)> predicate)
      : predicate_(std::move(predicate)) {}

  std::optional<Response> on_request(const Request& request,
                                     Seconds /*now*/) override {
    if (predicate_(request)) return make_error(403, "rejected by proxy");
    return std::nullopt;
  }

 private:
  std::function<bool(const Request&)> predicate_;
};

class RespondWith : public Interceptor {
 public:
  explicit RespondWith(
      std::function<std::optional<Response>(const Request&, Seconds)> fn)
      : fn_(std::move(fn)) {}

  std::optional<Response> on_request(const Request& request,
                                     Seconds now) override {
    return fn_(request, now);
  }

 private:
  std::function<std::optional<Response>(const Request&, Seconds)> fn_;
};

class TransformManifest : public Interceptor {
 public:
  explicit TransformManifest(
      std::function<std::string(const std::string&, std::string)> fn)
      : fn_(std::move(fn)) {}

  std::string on_manifest(const std::string& url, std::string body) override {
    return fn_(url, std::move(body));
  }

 private:
  std::function<std::string(const std::string&, std::string)> fn_;
};

class TapResponse : public Interceptor {
 public:
  explicit TapResponse(
      std::function<void(const Request&, Response&, Seconds)> fn)
      : fn_(std::move(fn)) {}

  void on_response(const Request& request, Response& response,
                   Seconds now) override {
    fn_(request, response, now);
  }

 private:
  std::function<void(const Request&, Response&, Seconds)> fn_;
};

}  // namespace

InterceptorPtr reject_if(std::function<bool(const Request&)> predicate) {
  return std::make_shared<RejectIf>(std::move(predicate));
}

InterceptorPtr respond_with(
    std::function<std::optional<Response>(const Request&, Seconds)> fn) {
  return std::make_shared<RespondWith>(std::move(fn));
}

InterceptorPtr transform_manifest(
    std::function<std::string(const std::string&, std::string)> fn) {
  return std::make_shared<TransformManifest>(std::move(fn));
}

InterceptorPtr tap_response(
    std::function<void(const Request&, Response&, Seconds)> fn) {
  return std::make_shared<TapResponse>(std::move(fn));
}

}  // namespace vodx::http
