#include "http/traffic_log.h"

#include "common/error.h"

namespace vodx::http {

Seconds TransferRecord::finish_time() const {
  VODX_ASSERT(finished(), "finish_time() on an unfinished transfer");
  return completed_at;
}

Seconds TransferRecord::duration() const {
  VODX_ASSERT(finished(), "duration() on an unfinished transfer");
  return completed_at - requested_at;
}

int TrafficLog::open(Method method, const std::string& url,
                     const std::optional<manifest::ByteRange>& range,
                     Seconds now, const Response& response,
                     const std::string& connection, int connection_use) {
  TransferRecord record;
  record.id = static_cast<int>(records_.size());
  record.method = method;
  record.connection = connection;
  record.connection_use = connection_use;
  record.url = url;
  record.range = range;
  record.status = response.status;
  record.content_type = response.content_type;
  record.requested_at = now;
  record.payload_size = response.payload_size;
  record.body_copy = response.body;
  records_.push_back(std::move(record));
  return records_.back().id;
}

void TrafficLog::complete(int id, Seconds now, Bytes bytes_received) {
  TransferRecord& record = record_mut(id);
  VODX_ASSERT(!record.finished() && !record.aborted, "record already closed");
  record.completed_at = now;
  record.bytes_received = bytes_received;
}

void TrafficLog::abort(int id, Bytes bytes_received) {
  TransferRecord& record = record_mut(id);
  VODX_ASSERT(!record.finished() && !record.aborted, "record already closed");
  record.aborted = true;
  record.bytes_received = bytes_received;
}

const TransferRecord& TrafficLog::record(int id) const {
  VODX_ASSERT(id >= 0 && id < static_cast<int>(records_.size()),
              "unknown transfer record");
  return records_[static_cast<std::size_t>(id)];
}

TransferRecord& TrafficLog::record_mut(int id) {
  VODX_ASSERT(id >= 0 && id < static_cast<int>(records_.size()),
              "unknown transfer record");
  return records_[static_cast<std::size_t>(id)];
}

Bytes TrafficLog::total_bytes() const {
  Bytes total = 0;
  for (const TransferRecord& r : records_) total += r.bytes_received;
  return total;
}

}  // namespace vodx::http
