// HTTP request/response model for the simulated client-server path.
//
// Bodies are real for structured content (manifests, sidx boxes) so the
// client and the man-in-the-middle traffic analyzer genuinely parse what went
// over the wire; media payloads carry only their size (their bytes would be
// meaningless here), which is all the transfer simulation needs.
#pragma once

#include <optional>
#include <string>

#include "common/units.h"
#include "manifest/presentation.h"

namespace vodx::http {

enum class Method { kGet, kHead };

inline const char* to_string(Method m) {
  return m == Method::kGet ? "GET" : "HEAD";
}

struct Request {
  Method method = Method::kGet;
  std::string url;
  std::optional<manifest::ByteRange> range;
};

struct Response {
  int status = 200;
  std::string content_type;
  /// Structured payloads only (manifest text, sidx bytes); empty for media.
  std::string body;
  /// Size of the full response payload; equals body.size() when body is set.
  Bytes payload_size = 0;
  /// For HEAD responses: the size a GET would have returned.
  Bytes head_content_length = 0;

  // Wire-level fault effects, set by response-stage interceptors and honoured
  // by HttpClient. Neither affects wire_size().
  /// Extra first-byte delay (seconds) before the transfer starts moving.
  Seconds added_latency = 0;
  /// If >= 0: the connection is reset after this many wire bytes have been
  /// delivered; the client observes a truncated transfer and a status-0
  /// "connection reset by peer" error. -1 disables.
  Bytes reset_after = -1;

  bool ok() const { return status >= 200 && status < 300; }

  /// Bytes that actually travel on the wire for this response.
  Bytes wire_size() const;
};

/// Fixed per-message overhead (status line + headers).
constexpr Bytes kHttpHeaderOverhead = 320;

inline Bytes Response::wire_size() const {
  return kHttpHeaderOverhead + payload_size;
}

Response make_ok(std::string content_type, std::string body);
Response make_media(std::string content_type, Bytes payload_size);
Response make_error(int status, const std::string& reason);

}  // namespace vodx::http
