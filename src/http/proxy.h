// Man-in-the-middle proxy (§2.2, Figure 2).
//
// Sits between the simulated client and the origin. Everything the client
// fetches flows through here, which gives the methodology its powers:
//
//  * passive traffic capture into a TrafficLog (the Traffic Analyzer's input),
//  * an ordered Interceptor chain (http/interceptor.h) through which request
//    rejection, manifest rewriting (the Fig. 12 declared-vs-actual probe),
//    fault injection and any future middleware are all expressed.
#pragma once

#include <string>

#include "http/interceptor.h"
#include "http/message.h"
#include "http/origin_server.h"
#include "http/traffic_log.h"

namespace vodx::http {

class Proxy {
 public:
  explicit Proxy(const OriginServer& origin) : origin_(&origin) {}

  /// Appends an interceptor to the chain and attaches it to this proxy.
  /// Chain position determines stage ordering — see http/interceptor.h.
  void use(InterceptorPtr interceptor);

  /// Resolves a request at simulated time `now`: request stage (first
  /// short-circuit wins) → origin → manifest stage (ok manifest bodies) →
  /// response stage in reverse registration order.
  Response resolve(const Request& request, Seconds now) const;

  TrafficLog& log() { return log_; }
  const TrafficLog& log() const { return log_; }

  const OriginServer& origin() const { return *origin_; }

  /// True for content types the manifest stage rewrites.
  static bool is_manifest_content(const std::string& content_type);

 private:
  const OriginServer* origin_;
  TrafficLog log_;
  InterceptorChain chain_;
};

}  // namespace vodx::http
