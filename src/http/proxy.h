// Man-in-the-middle proxy (§2.2, Figure 2).
//
// Sits between the simulated client and the origin. Everything the client
// fetches flows through here, which gives the methodology its three powers:
//
//  * passive traffic capture into a TrafficLog (the Traffic Analyzer's input),
//  * the Manifest Modifier: rewrite manifest bodies in flight (the Fig. 12
//    declared-vs-actual probe),
//  * the request rejector: refuse segment requests after the first n (the
//    startup-buffer probing experiment, §3.3.1).
#pragma once

#include <functional>
#include <string>

#include "http/message.h"
#include "http/origin_server.h"
#include "http/traffic_log.h"

namespace vodx::http {

class Proxy {
 public:
  explicit Proxy(const OriginServer& origin) : origin_(&origin) {}

  /// Rewrites manifest-like bodies (anything with a parseable content type).
  /// Receives the URL and the original body; returns the replacement body.
  using ManifestTransform =
      std::function<std::string(const std::string& url, const std::string&)>;
  void set_manifest_transform(ManifestTransform transform) {
    manifest_transform_ = std::move(transform);
  }

  /// Return true to reject the request (the proxy answers 403).
  using RejectHook = std::function<bool(const Request&)>;
  void set_reject_hook(RejectHook hook) { reject_hook_ = std::move(hook); }

  /// Failure injection: return an HTTP status (e.g. 503) to replace the
  /// origin's answer for this request, or 0 to pass through. Evaluated
  /// before the origin is consulted.
  using FaultHook = std::function<int(const Request&)>;
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }

  /// Resolves a request against the origin, applying hooks.
  Response resolve(const Request& request) const;

  TrafficLog& log() { return log_; }
  const TrafficLog& log() const { return log_; }

  const OriginServer& origin() const { return *origin_; }

 private:
  static bool is_manifest_content(const std::string& content_type);

  const OriginServer* origin_;
  TrafficLog log_;
  ManifestTransform manifest_transform_;
  RejectHook reject_hook_;
  FaultHook fault_hook_;
};

}  // namespace vodx::http
