#include "http/message.h"

namespace vodx::http {

Response make_ok(std::string content_type, std::string body) {
  Response r;
  r.status = 200;
  r.content_type = std::move(content_type);
  r.payload_size = static_cast<Bytes>(body.size());
  r.body = std::move(body);
  return r;
}

Response make_media(std::string content_type, Bytes payload_size) {
  Response r;
  r.status = 200;
  r.content_type = std::move(content_type);
  r.payload_size = payload_size;
  return r;
}

Response make_error(int status, const std::string& reason) {
  Response r;
  r.status = status;
  r.content_type = "text/plain";
  r.body = reason;
  r.payload_size = static_cast<Bytes>(reason.size());
  return r;
}

}  // namespace vodx::http
