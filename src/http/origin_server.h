// Simulated VOD origin.
//
// Hosts one asset under one HAS protocol, generating real manifest bytes:
//
//   HLS    /master.m3u8, /video/<k>/playlist.m3u8, /video/<k>/seg<i>.ts
//   DASH   /manifest.mpd, /video/<k>/media.mp4 (+ /audio/<l>/media.mp4),
//          served by byte range; in kSidx mode the media file begins with a
//          genuine sidx box and the MPD only carries SegmentBase@indexRange
//   SS     /manifest.ism, /QualityLevels(<bitrate>)/Fragments(<type>=<ticks>)
//
// Supports GET (with ranges on DASH media files) and HEAD — the paper's
// methodology HEADs HLS/SS segments to learn their sizes (§3.1).
//
// The D3-style application-layer manifest encryption is modelled by an XOR
// scramble: worthless as cryptography, but it gives the man-in-the-middle
// exactly the paper's situation — an opaque manifest it cannot read while the
// client (which has the app's key) can.
#pragma once

#include <map>
#include <string>

#include "http/message.h"
#include "manifest/dash_mpd.h"
#include "media/video_asset.h"

namespace vodx::http {

struct OriginConfig {
  manifest::Protocol protocol = manifest::Protocol::kHls;
  manifest::DashIndexMode dash_index = manifest::DashIndexMode::kSidx;
  /// Application-layer encrypt the manifest (the D3 behaviour, §2.3 fn 4).
  bool encrypt_manifest = false;
  /// Emit AVERAGE-BANDWIDTH in HLS master playlists (newer HLS, §4.2).
  bool hls_average_bandwidth = false;
  /// HLS v4 byte-range mode: each track is one media file and segments are
  /// EXT-X-BYTERANGE sub-ranges, which exposes exact sizes to the client —
  /// the direction §4.2 says HLS is moving in. (None of the 12 studied
  /// services used it, so it defaults off.)
  bool hls_byterange = false;
};

/// XOR-scramble stand-in for app-layer manifest encryption.
std::string scramble_manifest(const std::string& plain);
std::string unscramble_manifest(const std::string& blob);
bool is_scrambled(std::string_view blob);

class OriginServer {
 public:
  OriginServer(media::VideoAsset asset, OriginConfig config);

  Response handle(const Request& request) const;

  /// URL of the entry-point manifest.
  std::string manifest_url() const;

  const media::VideoAsset& asset() const { return asset_; }
  const OriginConfig& config() const { return config_; }

 private:
  struct MediaFile {
    Bytes total_size = 0;
    std::string index_blob;  ///< sidx bytes at the file head (may be empty)
  };

  void build_hls();
  void build_dash();
  void build_smooth();
  Response serve_media_file(const MediaFile& file, const Request& request) const;

  media::VideoAsset asset_;
  OriginConfig config_;
  std::map<std::string, Response> text_resources_;   ///< manifests, playlists
  std::map<std::string, Bytes> media_segments_;      ///< whole-file segments
  std::map<std::string, MediaFile> media_files_;     ///< range-served files
};

}  // namespace vodx::http
