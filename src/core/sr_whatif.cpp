#include "core/sr_whatif.h"

#include <algorithm>
#include <map>

#include "common/stats.h"

namespace vodx::core {

SrAnalysis analyze_sr(const SessionResult& session, int low_height) {
  SrAnalysis out;
  const AnalyzedTraffic& traffic = session.traffic;

  // Completed video downloads per index, in completion order.
  std::map<int, std::vector<const SegmentDownload*>> by_index;
  for (const SegmentDownload& d : traffic.downloads) {
    if (d.type != media::ContentType::kVideo) continue;
    if (d.aborted) {
      out.wasted_bytes += d.bytes;
      continue;
    }
    by_index[d.index].push_back(&d);
  }
  for (auto& [index, list] : by_index) {
    std::sort(list.begin(), list.end(),
              [](const SegmentDownload* a, const SegmentDownload* b) {
                return a->completed_at < b->completed_at;
              });
  }

  // Replacement quality accounting: each redownload vs what it replaced.
  int lower = 0;
  int equal = 0;
  std::vector<const SegmentDownload*> replacements;
  for (const auto& [index, list] : by_index) {
    for (std::size_t i = 1; i < list.size(); ++i) {
      ++out.replacement_downloads;
      replacements.push_back(list[i]);
      if (list[i]->level < list[i - 1]->level) ++lower;
      if (list[i]->level == list[i - 1]->level) ++equal;
      out.wasted_bytes += list[i - 1]->bytes;  // the discarded rendition
    }
  }
  out.sr_observed = out.replacement_downloads > 0;
  if (out.replacement_downloads > 0) {
    out.replacements_lower =
        static_cast<double>(lower) / out.replacement_downloads;
    out.replacements_equal =
        static_cast<double>(equal) / out.replacement_downloads;
  }

  // Cascade run lengths: replacements at consecutive indexes, issued in one
  // time-contiguous burst.
  if (!replacements.empty()) {
    std::sort(replacements.begin(), replacements.end(),
              [](const SegmentDownload* a, const SegmentDownload* b) {
                return a->requested_at < b->requested_at;
              });
    std::vector<double> runs;
    int run = 1;
    for (std::size_t i = 1; i < replacements.size(); ++i) {
      const bool contiguous =
          replacements[i]->index == replacements[i - 1]->index + 1 &&
          replacements[i]->requested_at -
                  replacements[i - 1]->requested_at <
              60;
      if (contiguous) {
        ++run;
      } else {
        runs.push_back(run);
        run = 1;
      }
    }
    runs.push_back(run);
    out.p90_cascade_length = static_cast<int>(percentile(runs, 90));
  }

  // With-SR quality: the session's own QoE (last download wins).
  out.avg_bitrate_with = session.qoe.average_declared_bitrate;
  out.low_quality_fraction_with = session.qoe.fraction_at_or_below(low_height);

  // No-SR baseline: first download per index wins. Weight by the same
  // displayed windows as the real session.
  double bitrate_weighted = 0;
  Seconds displayed_time = 0;
  Seconds low_time = 0;
  for (const DisplayedSegment& shown : session.qoe.displayed) {
    const auto it = by_index.find(shown.index);
    if (it == by_index.end() || it->second.empty()) continue;
    const SegmentDownload* first = it->second.front();
    bitrate_weighted += first->declared_bitrate * shown.seconds_shown;
    displayed_time += shown.seconds_shown;
    if (first->resolution.height <= low_height) {
      low_time += shown.seconds_shown;
    }
  }
  if (displayed_time > 0) {
    out.avg_bitrate_without = bitrate_weighted / displayed_time;
    out.low_quality_fraction_without = low_time / displayed_time;
  }
  if (out.avg_bitrate_without > 0) {
    out.bitrate_change =
        (out.avg_bitrate_with - out.avg_bitrate_without) /
        out.avg_bitrate_without;
  }

  // Data usage: all media bytes vs first-download-only bytes.
  for (const SegmentDownload& d : traffic.downloads) {
    out.media_bytes_with += d.bytes;
  }
  out.media_bytes_without = out.media_bytes_with;
  for (const auto& [index, list] : by_index) {
    for (std::size_t i = 1; i < list.size(); ++i) {
      out.media_bytes_without -= list[i]->bytes;
    }
  }
  // Aborted transfers would not have happened either.
  for (const SegmentDownload& d : traffic.downloads) {
    if (d.aborted && d.type == media::ContentType::kVideo) {
      out.media_bytes_without -= d.bytes;
    }
  }
  if (out.media_bytes_without > 0) {
    out.data_increase =
        static_cast<double>(out.media_bytes_with - out.media_bytes_without) /
        static_cast<double>(out.media_bytes_without);
  }
  if (out.media_bytes_with > 0) {
    out.wasted_fraction = static_cast<double>(out.wasted_bytes) /
                          static_cast<double>(out.media_bytes_with);
  }
  return out;
}

}  // namespace vodx::core
