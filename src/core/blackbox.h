// Black-box experiments (§2.2, §3.3, §4.2).
//
// Each probe runs controlled sessions against a service and deduces one
// design property from the outside:
//
//  * probe_startup        — reject video segments after the first n; the
//                           minimal n that lets playback begin reveals the
//                           startup buffer (seconds *and* segment count) and
//                           the startup track (§3.3.1).
//  * probe_thresholds     — constant 10 Mbps; the on-off download pattern's
//                           buffer levels reveal pausing/resuming (§3.3.2).
//  * probe_steady_state   — constant bandwidth; does track selection
//                           stabilise, and how close to the link rate is the
//                           converged track (stability / aggressiveness,
//                           Figures 8-9)?
//  * probe_step_response  — step the bandwidth down mid-session; the buffer
//                           level at the first down-switch reveals whether
//                           the player spends its buffer before switching
//                           (Table 1 "Decrease buffer").
//  * probe_declared_vs_actual — serve the two Fig.-12 manifest variants
//                           (same declared ladder, shifted actual bitrates);
//                           identical track choices prove the ABR ignores
//                           actual bitrates (§4.2).
//
// Probes perturb traffic through the Interceptor chain (http/interceptor.h)
// and take their tunables as per-probe Options structs with named fields.
#pragma once

#include <optional>

#include "core/session.h"

namespace vodx::core {

/// Rejects video segment requests once `allow` distinct segments have been
/// let through (manifests, playlists, sidx and audio stay unrestricted).
/// Classifies requests against the live proxy's traffic log.
http::InterceptorPtr reject_after_n_video_segments(int allow);

struct StartupProbeOptions {
  Bps probe_bandwidth = 8 * kMbps;  ///< ample, so rejection is the only limit
  int max_segments = 16;            ///< give up past this many admitted segments
};

struct StartupProbe {
  bool playback_achievable = false;
  int min_segments = 0;         ///< minimal segment count for playback
  Seconds startup_buffer = 0;   ///< duration of those segments
  Bps startup_bitrate = 0;      ///< declared bitrate of the first segment
};
StartupProbe probe_startup(const services::ServiceSpec& spec,
                           const StartupProbeOptions& options = {});

struct ThresholdProbeOptions {
  Bps bandwidth = 10 * kMbps;  ///< fast enough that pausing must kick in
  Seconds duration = 600;      ///< session length (seconds)
};

struct ThresholdProbe {
  int pause_cycles = 0;
  Seconds pausing_threshold = 0;   ///< mean buffer level when downloads stop
  Seconds resuming_threshold = 0;  ///< mean buffer level when they resume
};
ThresholdProbe probe_thresholds(const services::ServiceSpec& spec,
                                const ThresholdProbeOptions& options = {});

struct SteadyStateProbeOptions {
  Bps bandwidth = 0;       ///< constant link rate (bits/second); required
  Seconds duration = 600;  ///< session length (seconds)
  Seconds warmup = 120;    ///< seconds excluded from steady-state stats
};

struct SteadyStateProbe {
  bool converged = false;        ///< one track covers >= 90% of steady time
  int distinct_levels = 0;
  int steady_switches = 0;
  Bps modal_declared_bitrate = 0;
  double declared_over_bandwidth = 0;  ///< Fig.-9 y/x ratio
};
SteadyStateProbe probe_steady_state(const services::ServiceSpec& spec,
                                    const SteadyStateProbeOptions& options);

struct StepProbeOptions {
  Bps high = 6 * kMbps;          ///< rate before the step
  Bps low = 1.5 * kMbps;         ///< rate after the step
  Seconds step_at = 150;         ///< when the drop happens
  Seconds duration = 500;        ///< session length (seconds)
  /// A down-switch with more than this many seconds still buffered counts
  /// as "immediate" (the player did not spend its buffer first).
  Seconds immediate_cutoff = 60;
};

struct StepProbe {
  bool switched_down = false;
  Seconds buffer_at_downswitch = 0;
  /// True when the switch happened while more than `immediate_cutoff`
  /// seconds were still buffered.
  bool immediate = false;
};
StepProbe probe_step_response(const services::ServiceSpec& spec,
                              const StepProbeOptions& options = {});

/// §3.1's encoding analysis: gather the actual/declared bitrate ratios of
/// the highest video track the way the methodology does — DASH exposes
/// sizes on the wire (sidx / MPD ranges); HLS and SmoothStreaming need one
/// HTTP HEAD per segment (the paper uses curl). All traffic goes through a
/// real simulated session + prober, not origin shortcuts.
struct EncodingProbe {
  bool sizes_from_wire = false;  ///< true when no HEAD probing was needed
  std::vector<double> ratios;    ///< per-segment actual/declared

  bool looks_cbr(double tolerance = 0.10) const;
  /// kPeak when the declared bitrate sits near the max actual, kAverage when
  /// it sits near the mean.
  media::DeclaredPolicy inferred_policy() const;
};
EncodingProbe probe_encoding(const services::ServiceSpec& spec);

/// Fig.-12 manifest rewrites (DASH only), as manifest-stage interceptors.
http::InterceptorPtr shift_tracks_variant();
http::InterceptorPtr drop_lowest_variant();

struct DeclaredVsActualOptions {
  Bps bandwidth = 2 * kMbps;  ///< constant link rate (bits/second)
  Seconds duration = 600;     ///< session length (seconds)
  Seconds warmup = 120;       ///< seconds excluded from steady-state stats
};

struct DeclaredVsActualProbe {
  Bps selected_declared_variant1 = 0;  ///< steady-state modal declared
  Bps selected_declared_variant2 = 0;
  /// Same declared bitrate chosen although actual bitrates differ by a full
  /// rung -> the player only reads the declared bitrate.
  bool declared_only = false;
  double bandwidth_utilization = 0;  ///< §4.2's 33.7% figure (variant-free run)
};
DeclaredVsActualProbe probe_declared_vs_actual(
    const services::ServiceSpec& spec,
    const DeclaredVsActualOptions& options = {});

}  // namespace vodx::core
