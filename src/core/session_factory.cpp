#include "core/session_factory.h"

#include "common/error.h"
#include "common/strings.h"
#include "services/content_factory.h"
#include "trace/cellular_profiles.h"

namespace vodx::core {

void SessionFactory::validate_profile(int profile_id) {
  if (profile_id < 1 || profile_id > trace::kProfileCount) {
    throw ConfigError(format("profile id %d out of range [1, %d]", profile_id,
                             trace::kProfileCount));
  }
}

SessionConfig SessionFactory::config(const services::ServiceSpec& spec,
                                     net::BandwidthTrace trace) const {
  SessionConfig session;
  session.spec = spec;
  session.trace = std::move(trace);
  session.session_duration = session_duration;
  session.content_duration = content_duration;
  session.qoe_options = qoe_options;
  session.sim_core = sim_core;
  session.wall_budget = wall_budget;
  session.max_events_per_instant = max_events_per_instant;
  session.origin = origin;
  return session;
}

SessionConfig SessionFactory::config(const services::ServiceSpec& spec,
                                     int profile_id, std::uint64_t trace_seed,
                                     std::uint64_t content_seed) const {
  validate_profile(profile_id);
  SessionConfig session =
      config(spec, trace::cellular_profile(profile_id, trace_seed));
  session.content_seed = content_seed;
  return session;
}

SessionConfig SessionFactory::config(const std::string& service,
                                     int profile_id, std::uint64_t trace_seed,
                                     std::uint64_t content_seed) const {
  return config(services::service(service), profile_id, trace_seed,
                content_seed);
}

namespace {

player::PlayerConfig player_config_for(const SessionConfig& config) {
  player::PlayerConfig player_config = config.spec.player;
  player_config.tcp.rtt = config.rtt;
  return player_config;
}

}  // namespace

HostedSession::HostedSession(net::Simulator& sim, net::Link& link,
                             const SessionConfig& config)
    : qoe_options_(config.qoe_options),
      origin_(services::make_origin(config.spec, config.content_duration,
                                    config.content_seed)),
      proxy_(origin_),
      player_(sim, link, proxy_, config.spec.protocol,
              player_config_for(config)) {
  // The origin tier goes first: its cache can short-circuit the whole chain
  // (edge hits bypass injected origin errors), and its response stage runs
  // last, seeing injector-mutated responses as primary-DC failures.
  if (config.origin.mode != origin::Mode::kNone) {
    origin_tier_ = std::make_shared<origin::OriginTier>(
        config.origin, config.origin_state,
        format("%s#%llu", config.spec.name.c_str(),
               static_cast<unsigned long long>(config.content_seed)));
    if (config.fault_plan) {
      origin_tier_->set_fault_schedule(config.fault_plan->cache_flushes,
                                       config.fault_plan->dc_blackouts);
    }
    origin_tier_->set_observer(config.observer);
    proxy_.use(origin_tier_);
  }
  for (const http::InterceptorPtr& interceptor : config.interceptors) {
    proxy_.use(interceptor);
  }
  // The fault injector goes last: probes see requests first, faults mutate
  // responses first (reverse-order response stage).
  if (config.fault_plan) {
    injector_ = std::make_shared<faults::FaultInjector>(*config.fault_plan);
    injector_->set_observer(config.observer);
    proxy_.use(injector_);
  }
  if (config.observer != nullptr) player_.set_observer(config.observer);
  player_.set_seekbar_callback([this](Seconds wall, int progress) {
    ui_monitor_.on_progress(wall, progress);
  });
}

void HostedSession::start() { player_.start(origin_.manifest_url()); }

void HostedSession::stop() { player_.stop(); }

SessionResult HostedSession::finish(Seconds session_end) {
  SessionResult result;
  result.session_end = session_end;
  result.events = player_.events();
  result.final_state = player_.state();
  result.final_position = player_.position();

  try {
    result.traffic = analyze_traffic(proxy_.log());
  } catch (const ParseError&) {
    // A session can legitimately end with an unanalyzable wire log — e.g.
    // every manifest fetch failed under injected faults and the player
    // parked in its error state. That is a (bad) outcome to report, not a
    // crash: carry on with an empty analysis and zeroed QoE.
    result.traffic = AnalyzedTraffic{};
    result.traffic.total_payload_bytes = proxy_.log().total_bytes();
  }
  result.ui = ui_monitor_.infer(result.events.session_start);
  result.qoe =
      compute_qoe(result.traffic, result.ui, session_end, qoe_options_);
  result.buffer = infer_buffer(result.traffic, result.ui, session_end);
  result.ground_truth =
      qoe_from_events(result.events, result.traffic, session_end,
                      qoe_options_);
  if (injector_ != nullptr) result.faults = injector_->stats();
  return result;
}

HostedSession::Sample HostedSession::sample() const {
  Sample sample;
  sample.state = player_.state();
  const player::PlayerEvents& events = player_.events();
  sample.playback_started = events.playback_started >= 0;
  if (!events.displayed.empty()) sample.rung = events.displayed.back().level;
  return sample;
}

SessionResult HostedSession::finish_light(Seconds session_end) {
  SessionResult result;
  result.session_end = session_end;
  result.events = player_.events();
  result.final_state = player_.state();
  result.final_position = player_.position();
  result.traffic.total_payload_bytes = proxy_.log().total_bytes();
  result.ground_truth =
      qoe_from_events(result.events, result.traffic, session_end,
                      qoe_options_);
  if (injector_ != nullptr) result.faults = injector_->stats();
  return result;
}

}  // namespace vodx::core
