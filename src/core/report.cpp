#include "core/report.h"

#include "common/strings.h"
#include "core/qoe.h"

namespace vodx::core {

std::string qoe_csv_header() {
  return "label,startup_delay_s,stall_count,stall_time_s,"
         "avg_declared_bitrate_bps,low_quality_fraction,switches,"
         "nonconsecutive_switches,media_bytes,total_bytes,wasted_bytes,"
         "qoe_score\n";
}

std::string qoe_csv_row(const std::string& label,
                        const SessionResult& result) {
  const QoeReport& q = result.qoe;
  return format("%s,%.2f,%d,%.2f,%.0f,%.4f,%d,%d,%lld,%lld,%lld,%.3f\n",
                label.c_str(), q.startup_delay, q.stall_count, q.total_stall,
                q.average_declared_bitrate, q.low_quality_fraction,
                q.switch_count, q.nonconsecutive_switch_count,
                static_cast<long long>(q.media_bytes),
                static_cast<long long>(q.total_bytes),
                static_cast<long long>(q.wasted_bytes),
                qoe_score(q, result.session_end));
}

std::string buffer_csv(const SessionResult& result) {
  std::string out = "wall_s,video_buffer_s,audio_buffer_s\n";
  for (const BufferSample& s : result.buffer) {
    out += format("%.0f,%.2f,%.2f\n", s.wall, s.video_buffer, s.audio_buffer);
  }
  return out;
}

}  // namespace vodx::core
