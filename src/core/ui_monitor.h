// UI monitor (§2.4).
//
// The paper hooks ProgressBar.setProgress via Xposed and receives the
// playback position at >= 1 s granularity. Here the hook is the player's
// seekbar callback — the same information at the same resolution. From that
// single integer time series the monitor infers startup delay and stall
// spans, without touching player internals.
#pragma once

#include <vector>

#include "common/units.h"

namespace vodx::core {

struct ProgressSample {
  Seconds wall = 0;
  int progress = 0;  ///< seconds of playback position, floor()ed
};

struct InferredStall {
  Seconds start = 0;
  Seconds end = 0;
  Seconds duration() const { return end - start; }
};

struct UiInference {
  /// -1 when playback never started.
  Seconds startup_delay = -1;
  std::vector<InferredStall> stalls;
  Seconds total_stall = 0;
  /// Playback position at a wall time, interpolated from the samples.
  /// (Exposed for buffer inference.)
  std::vector<ProgressSample> samples;

  Seconds position_at(Seconds wall) const;
};

class UiMonitor {
 public:
  /// Hook this to Player::set_seekbar_callback.
  void on_progress(Seconds wall, int progress);

  /// Runs the inference over everything observed so far.
  UiInference infer(Seconds session_start) const;

  const std::vector<ProgressSample>& samples() const { return samples_; }

 private:
  std::vector<ProgressSample> samples_;
};

}  // namespace vodx::core
