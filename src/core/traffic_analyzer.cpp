#include "core/traffic_analyzer.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <tuple>

#include "common/error.h"
#include "common/strings.h"
#include "http/origin_server.h"
#include "manifest/dash_mpd.h"
#include "manifest/hls.h"
#include "manifest/smooth.h"
#include "manifest/uri.h"
#include "media/sidx.h"

namespace vodx::core {

namespace {

/// Apple's cellular audio guideline doubles as a classifier when the
/// manifest is unreadable: tracks this slow are audio.
constexpr Bps kAudioBitrateCeiling = 192e3;

Seconds sum(const std::vector<Seconds>& xs) {
  Seconds total = 0;
  for (Seconds x : xs) total += x;
  return total;
}

/// Map from what is observable on the wire to segments.
class RequestResolver {
 public:
  /// Whole-resource segments (HLS .ts files, SS fragments): URL -> segment.
  std::map<std::string, SegmentRef> by_url;

  /// Range-served files (DASH): URL -> list of (segment range, key).
  struct RangedSegment {
    manifest::ByteRange range;
    SegmentRef key;
  };
  std::map<std::string, std::vector<RangedSegment>> by_range;

  /// Resolves a record to a segment. `full_coverage` reports whether the
  /// request covered the whole segment (false = sub-range of a split
  /// download).
  std::optional<SegmentRef> resolve(const http::TransferRecord& record,
                                    bool* full_coverage) const {
    *full_coverage = true;
    if (auto it = by_url.find(record.url); it != by_url.end()) {
      return it->second;
    }
    auto it = by_range.find(record.url);
    if (it == by_range.end() || !record.range) return std::nullopt;
    for (const RangedSegment& seg : it->second) {
      if (record.range->first >= seg.range.first &&
          record.range->last <= seg.range.last) {
        *full_coverage = *record.range == seg.range;
        return seg.key;
      }
    }
    return std::nullopt;
  }
};

struct LadderBuild {
  std::vector<AnalyzedTrack> video;
  std::vector<AnalyzedTrack> audio;
  RequestResolver resolver;
};

const http::TransferRecord* find_manifest(
    const std::vector<http::TransferRecord>& records,
    manifest::Protocol* protocol, bool* encrypted) {
  for (const http::TransferRecord& r : records) {
    if (r.method != http::Method::kGet || r.body_copy.empty()) continue;
    // Failed exchanges (origin errors, injected faults) can carry arbitrary
    // bodies; only successful transfers describe the presentation.
    if (r.status < 200 || r.status >= 300) continue;
    if (r.content_type == "application/vnd.apple.mpegurl" &&
        r.body_copy.find("#EXT-X-STREAM-INF") != std::string::npos) {
      *protocol = manifest::Protocol::kHls;
      *encrypted = false;
      return &r;
    }
    if (r.content_type == "application/dash+xml") {
      *protocol = manifest::Protocol::kDash;
      *encrypted = false;
      return &r;
    }
    if (r.content_type == "application/octet-stream" &&
        http::is_scrambled(r.body_copy)) {
      *protocol = manifest::Protocol::kDash;
      *encrypted = true;
      return &r;
    }
    if (r.content_type == "text/xml" &&
        r.body_copy.find("SmoothStreamingMedia") != std::string::npos) {
      *protocol = manifest::Protocol::kSmooth;
      *encrypted = false;
      return &r;
    }
  }
  return nullptr;
}

// --- HLS --------------------------------------------------------------

LadderBuild build_hls(const std::vector<http::TransferRecord>& records,
                      const http::TransferRecord& master_record) {
  LadderBuild out;
  manifest::HlsMasterPlaylist master =
      manifest::HlsMasterPlaylist::parse(master_record.body_copy);
  std::sort(master.variants.begin(), master.variants.end(),
            [](const manifest::HlsVariant& a, const manifest::HlsVariant& b) {
              return a.bandwidth < b.bandwidth;
            });

  for (int level = 0; level < static_cast<int>(master.variants.size());
       ++level) {
    const manifest::HlsVariant& variant =
        master.variants[static_cast<std::size_t>(level)];
    AnalyzedTrack track;
    track.type = media::ContentType::kVideo;
    track.level = level;
    track.declared_bitrate = variant.bandwidth;
    track.resolution = variant.resolution;

    const std::string playlist_url =
        manifest::uri_resolve(master_record.url, variant.uri);
    for (const http::TransferRecord& r : records) {
      if (r.url != playlist_url || r.body_copy.empty()) continue;
      // A failed fetch of the playlist URL (e.g. an injected 5xx whose
      // body is an error string) is not a playlist; the successful retry
      // that follows it is.
      if (r.status < 200 || r.status >= 300) continue;
      manifest::HlsMediaPlaylist playlist =
          manifest::HlsMediaPlaylist::parse(r.body_copy);
      int index = 0;
      for (const manifest::HlsMediaSegment& seg : playlist.segments) {
        track.segment_durations.push_back(seg.duration);
        const std::string seg_url =
            manifest::uri_resolve(playlist_url, seg.uri);
        if (seg.byterange) {
          // HLS v4 byte-range segments: sizes are on the wire, like DASH.
          track.segment_sizes.push_back(seg.byterange->length());
          out.resolver.by_range[seg_url].push_back(
              {*seg.byterange,
               SegmentRef{media::ContentType::kVideo, level, index}});
        } else {
          out.resolver.by_url[seg_url] =
              SegmentRef{media::ContentType::kVideo, level, index};
        }
        ++index;
      }
      break;
    }
    out.video.push_back(std::move(track));
  }
  return out;
}

// --- DASH --------------------------------------------------------------

void add_sidx_track(LadderBuild& out, const std::string& media_url,
                    const media::SidxBox& sidx, media::ContentType type,
                    Bps declared, media::Resolution resolution,
                    manifest::ByteRange index_range) {
  AnalyzedTrack track;
  track.type = type;
  track.declared_bitrate = declared;
  track.resolution = resolution;
  std::vector<RequestResolver::RangedSegment> ranged;
  Bytes offset = index_range.last + 1 + static_cast<Bytes>(sidx.first_offset);
  int index = 0;
  for (const media::SidxReference& ref : sidx.references) {
    const Seconds duration =
        static_cast<double>(ref.subsegment_duration) / sidx.timescale;
    track.segment_durations.push_back(duration);
    track.segment_sizes.push_back(static_cast<Bytes>(ref.referenced_size));
    ranged.push_back({manifest::ByteRange{
                          offset,
                          offset + static_cast<Bytes>(ref.referenced_size) - 1},
                      SegmentRef{type, 0, index++}});
    offset += static_cast<Bytes>(ref.referenced_size);
  }
  auto& ladder = type == media::ContentType::kVideo ? out.video : out.audio;
  ladder.push_back(std::move(track));
  out.resolver.by_range[media_url] = std::move(ranged);
}

/// Levels are assigned after all tracks are known (ascending declared).
void finalize_levels(LadderBuild& out) {
  auto assign = [&](std::vector<AnalyzedTrack>& ladder,
                    media::ContentType type) {
    std::sort(ladder.begin(), ladder.end(),
              [](const AnalyzedTrack& a, const AnalyzedTrack& b) {
                return a.declared_bitrate < b.declared_bitrate;
              });
    // Rewrite the resolver's level fields to match the sorted order: match
    // tracks back by declared bitrate through a url->level map built below.
    for (int level = 0; level < static_cast<int>(ladder.size()); ++level) {
      ladder[static_cast<std::size_t>(level)].level = level;
    }
    (void)type;
  };
  assign(out.video, media::ContentType::kVideo);
  assign(out.audio, media::ContentType::kAudio);
}

LadderBuild build_dash(const std::vector<http::TransferRecord>& records,
                       const http::TransferRecord& mpd_record,
                       bool encrypted) {
  LadderBuild out;

  // SegmentTemplate representations map by expanded URL; their resolver
  // levels can only be assigned after the ladders are level-sorted.
  struct TemplateTrack {
    media::ContentType type;
    Bps declared;
    std::string mpd_url;
    manifest::DashRepresentation rep;
  };
  std::vector<TemplateTrack> template_tracks;

  // Collect every sidx observed on the wire: url -> (range, box).
  struct SidxSeen {
    manifest::ByteRange range;
    media::SidxBox box;
  };
  std::map<std::string, SidxSeen> sidx_seen;
  for (const http::TransferRecord& r : records) {
    if (r.body_copy.empty() || !r.range || r.content_type != "video/mp4") {
      continue;
    }
    try {
      sidx_seen.emplace(r.url, SidxSeen{*r.range,
                                        media::parse_sidx(r.body_copy)});
    } catch (const ParseError&) {
      // A media sub-range that happens to carry bytes — not an index.
    }
  }

  if (encrypted) {
    // Footnote-4 fallback: tracks are whatever sidx boxes we saw; declared
    // bitrate := peak actual segment bitrate; audio identified by bitrate.
    struct Pending {
      std::string url;
      SidxSeen seen;
      Bps peak;
    };
    std::vector<Pending> pendings;
    for (const auto& [url, seen] : sidx_seen) {
      Bps peak = 0;
      for (const media::SidxReference& ref : seen.box.references) {
        const Seconds d =
            static_cast<double>(ref.subsegment_duration) / seen.box.timescale;
        peak = std::max(peak, rate_of(static_cast<Bytes>(ref.referenced_size),
                                      d));
      }
      pendings.push_back({url, seen, peak});
    }
    std::sort(pendings.begin(), pendings.end(),
              [](const Pending& a, const Pending& b) { return a.peak < b.peak; });
    for (const Pending& p : pendings) {
      const bool audio = p.peak < kAudioBitrateCeiling;
      add_sidx_track(out, p.url, p.seen.box,
                     audio ? media::ContentType::kAudio
                           : media::ContentType::kVideo,
                     p.peak, media::typical_resolution_for(p.peak),
                     p.seen.range);
    }
  } else {
    manifest::DashMpd mpd = manifest::DashMpd::parse(mpd_record.body_copy);
    for (const manifest::DashAdaptationSet& set : mpd.adaptation_sets) {
      for (const manifest::DashRepresentation& rep : set.representations) {
        const std::string media_url =
            manifest::uri_resolve(mpd_record.url, rep.base_url);
        if (!rep.media_template.empty()) {
          AnalyzedTrack track;
          track.type = set.content_type;
          track.declared_bitrate = rep.bandwidth;
          track.resolution = rep.resolution;
          track.segment_durations = rep.template_durations;
          template_tracks.push_back(
              {set.content_type, rep.bandwidth, mpd_record.url, rep});
          auto& ladder = set.content_type == media::ContentType::kVideo
                             ? out.video
                             : out.audio;
          ladder.push_back(std::move(track));
        } else if (!rep.segments.empty()) {
          AnalyzedTrack track;
          track.type = set.content_type;
          track.declared_bitrate = rep.bandwidth;
          track.resolution = rep.resolution;
          std::vector<RequestResolver::RangedSegment> ranged;
          int index = 0;
          for (const manifest::DashSegmentRef& ref : rep.segments) {
            track.segment_durations.push_back(ref.duration);
            track.segment_sizes.push_back(ref.media_range.length());
            ranged.push_back(
                {ref.media_range, SegmentRef{set.content_type, 0, index++}});
          }
          auto& ladder = set.content_type == media::ContentType::kVideo
                             ? out.video
                             : out.audio;
          ladder.push_back(std::move(track));
          out.resolver.by_range[media_url] = std::move(ranged);
        } else if (rep.index_range) {
          auto it = sidx_seen.find(media_url);
          if (it == sidx_seen.end()) continue;  // track never touched
          add_sidx_track(out, media_url, it->second.box, set.content_type,
                         rep.bandwidth, rep.resolution, *rep.index_range);
        }
      }
    }
  }

  // Fix up levels: the resolver entries carry level 0 placeholders; rebuild
  // them by matching each url's track through declared bitrate order.
  finalize_levels(out);
  // Re-associate: for range-based resolvers we need url -> level. Walk the
  // ladders in final order and recompute peak/declared match by durations
  // object identity: simplest is to rebuild levels by declared bitrate rank.
  std::map<std::string, int> url_level;
  {
    // Reconstruct the per-url declared bitrate used at insertion time.
    // Range resolvers were inserted in the same order as ladder entries, so
    // match by segment count + total size.
    for (auto& [url, ranged] : out.resolver.by_range) {
      // Find the ladder entry whose size list matches this url's ranges.
      const media::ContentType type = ranged.front().key.type;
      const auto& ladder =
          type == media::ContentType::kVideo ? out.video : out.audio;
      for (const AnalyzedTrack& track : ladder) {
        if (track.segment_sizes.size() != ranged.size()) continue;
        bool match = true;
        for (std::size_t i = 0; i < ranged.size(); ++i) {
          if (track.segment_sizes[i] != ranged[i].range.length()) {
            match = false;
            break;
          }
        }
        if (match) {
          url_level[url] = track.level;
          break;
        }
      }
    }
  }
  for (auto& [url, ranged] : out.resolver.by_range) {
    auto it = url_level.find(url);
    if (it == url_level.end()) continue;
    for (auto& seg : ranged) seg.key.level = it->second;
  }
  // Template representations: find each track's final level by declared
  // bitrate, then register its expanded URLs.
  for (const TemplateTrack& t : template_tracks) {
    const auto& ladder =
        t.type == media::ContentType::kVideo ? out.video : out.audio;
    int level = -1;
    for (const AnalyzedTrack& track : ladder) {
      if (track.declared_bitrate == t.declared) level = track.level;
    }
    if (level < 0) continue;
    for (int index = 0;
         index < static_cast<int>(t.rep.template_durations.size()); ++index) {
      out.resolver.by_url[manifest::uri_resolve(
          t.mpd_url, t.rep.template_url(index))] =
          SegmentRef{t.type, level, index};
    }
  }
  return out;
}

// --- SmoothStreaming ----------------------------------------------------

LadderBuild build_smooth(const http::TransferRecord& manifest_record) {
  LadderBuild out;
  manifest::SmoothManifest manifest =
      manifest::SmoothManifest::parse(manifest_record.body_copy);
  for (const manifest::SmoothStreamIndex& stream : manifest.stream_indexes) {
    std::vector<manifest::SmoothQualityLevel> levels = stream.quality_levels;
    std::sort(levels.begin(), levels.end(),
              [](const manifest::SmoothQualityLevel& a,
                 const manifest::SmoothQualityLevel& b) {
                return a.bitrate < b.bitrate;
              });
    for (int level = 0; level < static_cast<int>(levels.size()); ++level) {
      const manifest::SmoothQualityLevel& q =
          levels[static_cast<std::size_t>(level)];
      AnalyzedTrack track;
      track.type = stream.type;
      track.level = level;
      track.declared_bitrate = q.bitrate;
      track.resolution = q.resolution;
      track.segment_durations = stream.chunk_durations;

      Seconds start_seconds = 0;
      for (int index = 0;
           index < static_cast<int>(stream.chunk_durations.size()); ++index) {
        const auto ticks = static_cast<std::uint64_t>(
            std::llround(start_seconds *
                         static_cast<double>(manifest::kSmoothTimescale)));
        const std::string url = manifest::uri_resolve(
            manifest_record.url, stream.fragment_url(q.bitrate, ticks));
        out.resolver.by_url[url] = SegmentRef{stream.type, level, index};
        start_seconds +=
            stream.chunk_durations[static_cast<std::size_t>(index)];
      }
      auto& ladder = stream.type == media::ContentType::kVideo ? out.video
                                                               : out.audio;
      ladder.push_back(std::move(track));
    }
  }
  return out;
}

}  // namespace

Seconds AnalyzedTrack::duration() const { return sum(segment_durations); }

Seconds AnalyzedTrack::segment_start(int index) const {
  VODX_ASSERT(index >= 0 &&
                  index <= static_cast<int>(segment_durations.size()),
              "segment index out of range");
  Seconds start = 0;
  for (int i = 0; i < index; ++i) {
    start += segment_durations[static_cast<std::size_t>(i)];
  }
  return start;
}

Seconds AnalyzedTrack::nominal_segment_duration() const {
  if (segment_durations.empty()) return 0;
  std::vector<double> copy(segment_durations.begin(), segment_durations.end());
  std::nth_element(copy.begin(), copy.begin() + copy.size() / 2, copy.end());
  return copy[copy.size() / 2];
}

const AnalyzedTrack& AnalyzedTraffic::video_track(int level) const {
  VODX_ASSERT(level >= 0 && level < static_cast<int>(video_tracks.size()),
              "video level out of range");
  return video_tracks[static_cast<std::size_t>(level)];
}

int AnalyzedTraffic::max_concurrent_transfers() const {
  // Sweep over start/end events of the raw wire transfers (split downloads
  // count once per sub-request: each occupies its own connection).
  std::vector<std::pair<Seconds, int>> events;
  for (const auto& [start, end] : media_transfer_intervals) {
    events.emplace_back(start, +1);
    events.emplace_back(end, -1);
  }
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;  // close before open at same time
            });
  int current = 0;
  int peak = 0;
  for (const auto& [t, delta] : events) {
    current += delta;
    peak = std::max(peak, current);
  }
  return peak;
}

bool AnalyzedTraffic::non_persistent_connections() const {
  for (const SegmentDownload& d : downloads) {
    if (d.connection_use > 0) return false;
  }
  return !downloads.empty();
}

AnalyzedTraffic analyze_traffic(const http::TrafficLog& log) {
  const std::vector<http::TransferRecord>& records = log.records();
  AnalyzedTraffic out;
  out.total_payload_bytes = log.total_bytes();

  bool encrypted = false;
  const http::TransferRecord* manifest_record =
      find_manifest(records, &out.protocol, &encrypted);
  if (manifest_record == nullptr) {
    throw ParseError("no manifest found in the traffic log");
  }
  out.manifest_encrypted = encrypted;

  LadderBuild build;
  switch (out.protocol) {
    case manifest::Protocol::kHls:
      build = build_hls(records, *manifest_record);
      break;
    case manifest::Protocol::kDash:
      build = build_dash(records, *manifest_record, encrypted);
      break;
    case manifest::Protocol::kSmooth:
      build = build_smooth(*manifest_record);
      break;
  }
  out.video_tracks = std::move(build.video);
  out.audio_tracks = std::move(build.audio);

  // Walk every record and resolve it to a segment. Sub-range requests of the
  // same segment (split downloads) are merged back into one download.
  std::map<std::tuple<int, int, int>, std::size_t> partial_groups;
  for (const http::TransferRecord& r : records) {
    if (r.method != http::Method::kGet) continue;
    if (r.status < 200 || r.status >= 300) continue;  // rejected / errors
    bool full = true;
    std::optional<SegmentRef> key = build.resolver.resolve(r, &full);
    if (!key) continue;
    const auto& ladder = key->type == media::ContentType::kVideo
                             ? out.video_tracks
                             : out.audio_tracks;
    const AnalyzedTrack& track = ladder[static_cast<std::size_t>(key->level)];

    if (!full) {
      const auto group_key = std::make_tuple(
          static_cast<int>(key->type), key->level, key->index);
      auto it = partial_groups.find(group_key);
      if (it != partial_groups.end()) {
        out.media_transfer_intervals.emplace_back(
            r.requested_at, r.finish_or(r.requested_at));
        SegmentDownload& d = out.downloads[it->second];
        d.bytes += r.bytes_received;
        d.requested_at = std::min(d.requested_at, r.requested_at);
        if (r.finished()) {
          d.completed_at = std::max(d.completed_at, r.finish_time());
        }
        d.aborted = d.aborted || r.aborted;
        continue;
      }
    }

    out.media_transfer_intervals.emplace_back(r.requested_at,
                                              r.finish_or(r.requested_at));

    SegmentDownload d;
    d.type = key->type;
    d.level = key->level;
    d.index = key->index;
    d.declared_bitrate = track.declared_bitrate;
    d.resolution = track.resolution;
    d.duration = track.segment_durations.empty()
                     ? 0
                     : track.segment_durations[static_cast<std::size_t>(
                           std::min(key->index,
                                    static_cast<int>(
                                        track.segment_durations.size()) -
                                        1))];
    d.bytes = r.bytes_received;
    d.requested_at = r.requested_at;
    d.completed_at = r.finish_or(-1);
    // A record still open when the capture ends never delivered its
    // segment; analysis-wise that is an aborted transfer.
    d.aborted = r.aborted || !r.finished();
    d.connection = r.connection;
    d.connection_use = r.connection_use;
    out.downloads.push_back(d);
    if (!full) {
      partial_groups[std::make_tuple(static_cast<int>(key->type), key->level,
                                     key->index)] = out.downloads.size() - 1;
    }
  }

  std::stable_sort(out.downloads.begin(), out.downloads.end(),
                   [](const SegmentDownload& a, const SegmentDownload& b) {
                     return a.requested_at < b.requested_at;
                   });
  return out;
}


// ---------------------------------------------------------------------------
// SegmentClassifier
// ---------------------------------------------------------------------------

struct SegmentClassifier::Impl {
  explicit Impl(const http::TrafficLog& log_in) : log(log_in) {}

  const http::TrafficLog& log;
  std::size_t built_from_records = 0;
  std::optional<LadderBuild> build;

  std::optional<SegmentRef> try_resolve(
      const std::string& url,
      const std::optional<manifest::ByteRange>& range) const {
    if (!build) return std::nullopt;
    http::TransferRecord fake;
    fake.url = url;
    fake.range = range;
    bool full = true;
    return build->resolver.resolve(fake, &full);
  }

  void rebuild() {
    built_from_records = log.records().size();
    build.reset();
    manifest::Protocol protocol;
    bool encrypted = false;
    const http::TransferRecord* manifest_record =
        find_manifest(log.records(), &protocol, &encrypted);
    if (manifest_record == nullptr) return;
    try {
      switch (protocol) {
        case manifest::Protocol::kHls:
          build = build_hls(log.records(), *manifest_record);
          break;
        case manifest::Protocol::kDash:
          build = build_dash(log.records(), *manifest_record, encrypted);
          break;
        case manifest::Protocol::kSmooth:
          build = build_smooth(*manifest_record);
          break;
      }
    } catch (const ParseError&) {
      // Manifests still arriving; retry on the next classify.
      build.reset();
    }
  }
};

SegmentClassifier::SegmentClassifier(const http::TrafficLog& log)
    : impl_(std::make_unique<Impl>(log)) {}

SegmentClassifier::~SegmentClassifier() = default;

std::optional<SegmentRef> SegmentClassifier::classify(
    const std::string& url, const std::optional<manifest::ByteRange>& range) {
  if (auto ref = impl_->try_resolve(url, range)) return ref;
  if (impl_->log.records().size() != impl_->built_from_records) {
    impl_->rebuild();
    return impl_->try_resolve(url, range);
  }
  return std::nullopt;
}

}  // namespace vodx::core
