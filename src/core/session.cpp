#include "core/session.h"

#include <algorithm>
#include <cmath>

#include "core/session_factory.h"
#include "net/link.h"
#include "net/simulator.h"

namespace vodx::core {

QoeReport qoe_from_events(const player::PlayerEvents& events,
                          const AnalyzedTraffic& traffic, Seconds session_end,
                          const QoeOptions& options) {
  QoeReport report;
  report.startup_delay = events.startup_delay();
  report.total_stall = events.total_stall_time(session_end);
  report.stall_count = static_cast<int>(events.stalls.size());
  report.total_bytes = traffic.total_payload_bytes;
  for (const SegmentDownload& d : traffic.downloads) {
    report.media_bytes += d.bytes;
  }

  // Displayed time per event: until the next display event (or session end).
  double bitrate_weighted = 0;
  for (std::size_t i = 0; i < events.displayed.size(); ++i) {
    const player::DisplayEvent& e = events.displayed[i];
    // Wall time is interrupted by stalls; displayed *media* seconds are the
    // position delta to the next event.
    const Seconds next_position = i + 1 < events.displayed.size()
                                      ? events.displayed[i + 1].position
                                      : e.position + e.duration;
    const Seconds shown = std::max(0.0, next_position - e.position);
    if (shown <= 0) continue;
    DisplayedSegment d;
    d.index = e.index;
    d.level = e.level;
    d.declared_bitrate = e.declared_bitrate;
    d.resolution = e.resolution;
    d.seconds_shown = shown;
    d.play_wall = e.wall_time;
    report.displayed.push_back(d);
    report.displayed_time += shown;
    bitrate_weighted += e.declared_bitrate * shown;
    report.time_by_height[e.resolution.height] += shown;
  }
  if (report.displayed_time > 0) {
    report.average_declared_bitrate = bitrate_weighted / report.displayed_time;
  }
  report.low_quality_fraction =
      report.fraction_at_or_below(options.low_quality_max_height);
  for (std::size_t i = 1; i < report.displayed.size(); ++i) {
    const int delta =
        std::abs(report.displayed[i].level - report.displayed[i - 1].level);
    if (delta > 0) ++report.switch_count;
    if (delta > 1) ++report.nonconsecutive_switch_count;
  }
  for (const player::ReplacementEvent& r : events.replacements) {
    report.wasted_bytes += r.old_bytes;
  }
  return report;
}

namespace {

// Session-level observability: root span, QoE summary metrics, and the
// truth-vs-inference divergence check. Divergence tolerances mirror what the
// validation tests accept — anything looser is flagged on the timeline so a
// trace viewer shows *where* the methodology breaks, not just that it did.
void emit_session_summary(obs::Observer* obs, const SessionResult& result,
                          int track) {
  obs::MetricsRegistry& m = obs->metrics;
  const QoeReport& truth = result.ground_truth;
  const QoeReport& inferred = result.qoe;
  m.gauge("session.startup_delay_s").set(truth.startup_delay);
  m.counter("session.stalls").add(truth.stall_count);
  m.gauge("session.stall_time_s").set(truth.total_stall);
  m.counter("session.switches").add(truth.switch_count);
  m.counter("session.total_bytes").add(truth.total_bytes);
  m.counter("session.media_bytes").add(truth.media_bytes);
  m.counter("session.wasted_bytes").add(truth.wasted_bytes);
  m.gauge("session.avg_bitrate_mbps")
      .set(truth.average_declared_bitrate / 1e6);
  m.gauge("inferred.startup_delay_s").set(inferred.startup_delay);
  m.gauge("inferred.stall_time_s").set(inferred.total_stall);
  // Ring-buffer truncation, surfaced as a metric so sweep rollups (and the
  // report warning rows) can flag cells whose trace-derived analyses —
  // including diag attribution — ran on an incomplete event window.
  m.counter("obs.dropped_events")
      .add(static_cast<std::int64_t>(obs->trace.dropped()));

  if (!obs->trace.enabled(obs::Category::kSession)) return;
  obs::TraceSink& trace = obs->trace;
  const Seconds end = result.session_end;
  trace.instant(
      end, obs::Category::kSession, "validate.summary", track,
      {obs::Field::n("truth_startup_s", truth.startup_delay),
       obs::Field::n("inferred_startup_s", inferred.startup_delay),
       obs::Field::n("truth_stall_s", truth.total_stall),
       obs::Field::n("inferred_stall_s", inferred.total_stall),
       obs::Field::n("truth_stalls", truth.stall_count),
       obs::Field::n("inferred_stalls", inferred.stall_count)});
  if (truth.startup_delay >= 0 &&
      std::abs(inferred.startup_delay - truth.startup_delay) > 0.5) {
    trace.instant(end, obs::Category::kSession, "diverge.startup_delay",
                  track,
                  {obs::Field::n("truth_s", truth.startup_delay),
                   obs::Field::n("inferred_s", inferred.startup_delay)});
  }
  const Seconds stall_tolerance = 0.25 * truth.total_stall + 3.0;
  if (std::abs(inferred.total_stall - truth.total_stall) > stall_tolerance) {
    trace.instant(end, obs::Category::kSession, "diverge.stall_time", track,
                  {obs::Field::n("truth_s", truth.total_stall),
                   obs::Field::n("inferred_s", inferred.total_stall),
                   obs::Field::n("tolerance_s", stall_tolerance)});
  }
  if (truth.average_declared_bitrate > 0 &&
      std::abs(inferred.average_declared_bitrate -
               truth.average_declared_bitrate) >
          0.1 * truth.average_declared_bitrate) {
    trace.instant(
        end, obs::Category::kSession, "diverge.bitrate", track,
        {obs::Field::n("truth_mbps", truth.average_declared_bitrate / 1e6),
         obs::Field::n("inferred_mbps",
                       inferred.average_declared_bitrate / 1e6)});
  }
}

}  // namespace

SessionResult run_session(const SessionConfig& config) {
  net::Simulator sim(config.tick);
  sim.set_core(config.sim_core);
  sim.set_wall_budget(config.wall_budget);
  sim.set_max_events_per_instant(config.max_events_per_instant);
  // Blackout windows act on the link, not the proxy: the trace the session
  // actually runs over has them carved out.
  const bool has_blackouts =
      config.fault_plan && !config.fault_plan->blackouts.empty();
  net::Link link(sim,
                 has_blackouts
                     ? faults::apply_blackouts(config.trace,
                                               config.fault_plan->blackouts)
                     : config.trace,
                 config.rtt);
  obs::Observer* obs = config.observer;
  int session_track = 0;
  if (obs != nullptr) {
    sim.set_observer(obs);  // also points the trace clock at this simulator
    link.set_observer(obs);
    session_track = obs->trace.track("session");
    if (obs->trace.enabled(obs::Category::kSession)) {
      obs->trace.begin(0, obs::Category::kSession, "session", session_track,
                       {obs::Field::t("service", config.spec.name),
                        obs::Field::n("duration_s", config.session_duration)});
    }
  }

  // World construction lives in HostedSession (shared with the population
  // runner, which hosts many of these on one simulator); this function owns
  // the single-session world: the private sim + link pair and the
  // session-level observability around the run.
  HostedSession session(sim, link, config);
  session.start();
  sim.run_until(config.session_duration);

  SessionResult result = session.finish(sim.now());

  if (obs != nullptr) {
    if (obs->trace.enabled(obs::Category::kSession)) {
      obs->trace.end(result.session_end, obs::Category::kSession, "session",
                     session_track,
                     {obs::Field::t("final_state",
                                    player::to_string(result.final_state)),
                      obs::Field::n("position_s", result.final_position)});
    }
    emit_session_summary(obs, result, session_track);
    // The trace clock captured `sim`, which dies with this frame: pin it to
    // the session end so later emits (exporters, tests) stay valid.
    const Seconds end = result.session_end;
    obs->trace.set_clock([end] { return end; });
  }
  return result;
}

}  // namespace vodx::core
