#include "core/session.h"

#include <algorithm>
#include <cmath>

#include "net/link.h"
#include "net/simulator.h"
#include "services/content_factory.h"

namespace vodx::core {

QoeReport qoe_from_events(const player::PlayerEvents& events,
                          const AnalyzedTraffic& traffic, Seconds session_end,
                          const QoeOptions& options) {
  QoeReport report;
  report.startup_delay = events.startup_delay();
  report.total_stall = events.total_stall_time(session_end);
  report.stall_count = static_cast<int>(events.stalls.size());
  report.total_bytes = traffic.total_payload_bytes;
  for (const SegmentDownload& d : traffic.downloads) {
    report.media_bytes += d.bytes;
  }

  // Displayed time per event: until the next display event (or session end).
  double bitrate_weighted = 0;
  for (std::size_t i = 0; i < events.displayed.size(); ++i) {
    const player::DisplayEvent& e = events.displayed[i];
    // Wall time is interrupted by stalls; displayed *media* seconds are the
    // position delta to the next event.
    const Seconds next_position = i + 1 < events.displayed.size()
                                      ? events.displayed[i + 1].position
                                      : e.position + e.duration;
    const Seconds shown = std::max(0.0, next_position - e.position);
    if (shown <= 0) continue;
    DisplayedSegment d;
    d.index = e.index;
    d.level = e.level;
    d.declared_bitrate = e.declared_bitrate;
    d.resolution = e.resolution;
    d.seconds_shown = shown;
    d.play_wall = e.wall_time;
    report.displayed.push_back(d);
    report.displayed_time += shown;
    bitrate_weighted += e.declared_bitrate * shown;
    report.time_by_height[e.resolution.height] += shown;
  }
  if (report.displayed_time > 0) {
    report.average_declared_bitrate = bitrate_weighted / report.displayed_time;
  }
  report.low_quality_fraction =
      report.fraction_at_or_below(options.low_quality_max_height);
  for (std::size_t i = 1; i < report.displayed.size(); ++i) {
    const int delta =
        std::abs(report.displayed[i].level - report.displayed[i - 1].level);
    if (delta > 0) ++report.switch_count;
    if (delta > 1) ++report.nonconsecutive_switch_count;
  }
  for (const player::ReplacementEvent& r : events.replacements) {
    report.wasted_bytes += r.old_bytes;
  }
  return report;
}

SessionResult run_session(const SessionConfig& config) {
  net::Simulator sim(config.tick);
  net::Link link(sim, config.trace, config.rtt);

  http::OriginServer origin = services::make_origin(
      config.spec, config.content_duration, config.content_seed);
  http::Proxy proxy(origin);
  if (config.manifest_transform) {
    proxy.set_manifest_transform(config.manifest_transform);
  }
  if (config.reject_hook) proxy.set_reject_hook(config.reject_hook);
  if (config.reject_hook_factory) {
    proxy.set_reject_hook(config.reject_hook_factory(proxy));
  }

  player::PlayerConfig player_config = config.spec.player;
  player_config.tcp.rtt = config.rtt;

  player::Player player(sim, link, proxy, config.spec.protocol, player_config);
  UiMonitor ui_monitor;
  player.set_seekbar_callback([&ui_monitor](Seconds wall, int progress) {
    ui_monitor.on_progress(wall, progress);
  });

  player.start(origin.manifest_url());
  sim.run_until(config.session_duration);

  SessionResult result;
  result.session_end = sim.now();
  result.events = player.events();
  result.final_state = player.state();
  result.final_position = player.position();

  result.traffic = analyze_traffic(proxy.log());
  result.ui = ui_monitor.infer(result.events.session_start);
  result.qoe =
      compute_qoe(result.traffic, result.ui, result.session_end,
                  config.qoe_options);
  result.buffer = infer_buffer(result.traffic, result.ui, result.session_end);
  result.ground_truth = qoe_from_events(result.events, result.traffic,
                                        result.session_end,
                                        config.qoe_options);
  return result;
}

}  // namespace vodx::core
