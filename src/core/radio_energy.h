// LTE RRC radio-energy model (§3.3.2).
//
// The paper observes that 8 of the 12 services keep the pausing and resuming
// thresholds within 10 s of each other — shorter than the LTE RRC demotion
// timer — so the radio never leaves the high-power state during download
// pauses, and suggests spacing the thresholds wider to save energy.
//
// This module makes that claim quantitative: replay a session's wire
// activity through the standard 3-state RRC machine
//
//   ACTIVE (data moving)  --inactivity-->  TAIL (DCH/short+long DRX, still
//   high power)  --demotion timer expires-->  IDLE (low power)
//
// and integrate power. Parameters default to commonly measured LTE values
// (Huang et al., MobiSys'12 ballpark); they are inputs, not claims.
#pragma once

#include <vector>

#include "common/units.h"
#include "core/traffic_analyzer.h"

namespace vodx::core {

struct RrcConfig {
  /// Inactivity before the radio may demote from the high-power tail.
  Seconds demotion_timer = 11.0;  ///< the paper's "LTE RRC demotion timer"
  double active_watts = 1.3;      ///< transmitting/receiving
  double tail_watts = 1.0;        ///< connected but idle (DRX tail)
  double idle_watts = 0.02;       ///< RRC_IDLE paging
};

struct RadioEnergyReport {
  Seconds active_time = 0;
  Seconds tail_time = 0;
  Seconds idle_time = 0;
  double energy_joules = 0;

  /// Fraction of the session with the radio in a high-power state.
  double high_power_fraction() const {
    const Seconds total = active_time + tail_time + idle_time;
    return total > 0 ? (active_time + tail_time) / total : 0;
  }
};

/// Replays the session's transfer intervals through the RRC machine over
/// [0, session_end).
RadioEnergyReport radio_energy(const AnalyzedTraffic& traffic,
                               Seconds session_end,
                               const RrcConfig& config = {});

/// Convenience: energy for the same wire activity under a different
/// hypothetical demotion timer (what-if for threshold tuning).
RadioEnergyReport radio_energy_with_timer(const AnalyzedTraffic& traffic,
                                          Seconds session_end,
                                          Seconds demotion_timer);

}  // namespace vodx::core
