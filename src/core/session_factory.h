// Session construction, redesigned for hosting.
//
// Two pieces, both extracted from what used to live inline in run_session
// and be re-implemented by every caller that needed a session:
//
//  - SessionFactory: the single SessionConfig construction path. Shared
//    knobs (durations, QoE options, simulator core, watchdogs) are fields
//    set once; config() resolves a service + trace (given explicitly, or
//    drawn from a cellular profile + seed) into a ready SessionConfig.
//    chaos::make_session, batch::run_sweep's cell setup and the blackbox
//    probes all construct through here, so a new SessionConfig field is
//    threaded in exactly one place.
//
//  - HostedSession: one wired session (origin, proxy, interceptors, fault
//    injector, player, UI monitor) living on a *caller-owned* Simulator and
//    Link. This is the ownership inversion that population-scale simulation
//    needs: vodx::pop hosts N HostedSessions on one simulator whose
//    sessions contend on one shared Link, while run_session hosts exactly
//    one on a private pair. Construction order and wiring are identical to
//    the historical run_session body — single-session outputs are
//    byte-identical by contract.
#pragma once

#include <memory>

#include "core/session.h"
#include "core/ui_monitor.h"
#include "faults/fault_injector.h"
#include "http/proxy.h"
#include "net/link.h"
#include "origin/origin.h"
#include "net/simulator.h"
#include "player/player.h"
#include "services/service_catalog.h"

namespace vodx::core {

struct SessionFactory {
  // Shared knobs, threaded into every SessionConfig this factory produces.
  Seconds session_duration = 600;
  Seconds content_duration = 600;
  QoeOptions qoe_options;
  net::SimCore sim_core = net::SimCore::kEvent;
  Seconds wall_budget = 0;
  std::uint64_t max_events_per_instant = 0;
  /// Origin tier preset applied to every session (mode kNone = disabled).
  origin::OriginOptions origin;

  /// Throws ConfigError when `profile_id` is outside [1, kProfileCount].
  /// Exposed separately so batch::run_sweep can reject a cell before its
  /// attempt loop (a config error must count zero attempts).
  static void validate_profile(int profile_id);

  /// Explicit-trace path (blackbox probes, tests): the caller already has
  /// the bandwidth trace the session runs over.
  SessionConfig config(const services::ServiceSpec& spec,
                       net::BandwidthTrace trace) const;

  /// Cellular-profile path (sweep, chaos): validates the id, draws the
  /// profile's trace with `trace_seed` and seeds content generation.
  SessionConfig config(const services::ServiceSpec& spec, int profile_id,
                       std::uint64_t trace_seed,
                       std::uint64_t content_seed) const;

  /// By service name; throws ConfigError on unknown names.
  SessionConfig config(const std::string& service, int profile_id,
                       std::uint64_t trace_seed,
                       std::uint64_t content_seed) const;
};

/// One fully wired session hosted on a caller-owned simulator + link.
///
/// The caller decides the world: run_session builds a private Simulator and
/// a Link carrying this session's own trace; the population runner builds
/// one Simulator per tower and attaches many sessions to the tower's shared
/// Link. `config.trace` is ignored here — the Link already embodies it.
///
/// Lifecycle: construct (wires everything, registers tick clients), then
/// start(); the session advances as the caller runs the simulator. stop()
/// departs early: in-flight transfers abort, the HTTP client detaches from
/// the link (its share redistributes next tick) and the player parks in
/// kEnded. finish()/finish_light() assemble the SessionResult.
///
/// Must outlive neither the simulator nor the link; destroy sessions before
/// the pair (or after run_until returns, as run_session does).
class HostedSession {
 public:
  HostedSession(net::Simulator& sim, net::Link& link,
                const SessionConfig& config);

  HostedSession(const HostedSession&) = delete;
  HostedSession& operator=(const HostedSession&) = delete;

  /// Presses play at the current simulated time.
  void start();

  /// Early departure (see class comment). Idempotent.
  void stop();

  bool finished() const { return player_.finished(); }

  /// Full methodology: traffic analysis, UI + buffer inference, QoE, ground
  /// truth — exactly what run_session has always reported.
  SessionResult finish(Seconds session_end);

  /// Population-scale result: ground truth only (player events + the wire
  /// log's byte total). Skips analyze_traffic and the buffer inference,
  /// whose per-second arrays scale with the absolute horizon — per-session
  /// cost must not grow with a multi-hour population run.
  SessionResult finish_light(Seconds session_end);

  const player::Player& player() const { return player_; }
  player::Player& player() { return player_; }
  http::Proxy& proxy() { return proxy_; }

  /// Instantaneous state for population telemetry samplers (vodx::pop reads
  /// this once per timeline bin per live session). O(1), no allocation.
  struct Sample {
    player::PlayerState state = player::PlayerState::kIdle;
    /// Last displayed video rung, -1 before the first rendered segment.
    int rung = -1;
    bool playback_started = false;
  };
  Sample sample() const;

 private:
  QoeOptions qoe_options_;
  http::OriginServer origin_;
  http::Proxy proxy_;
  std::shared_ptr<origin::OriginTier> origin_tier_;
  std::shared_ptr<faults::FaultInjector> injector_;
  player::Player player_;
  UiMonitor ui_monitor_;
};

}  // namespace vodx::core
