// Segment Replacement what-if analysis (§4.1.1).
//
// From a session's wire trace alone, quantify what SR bought and what it
// cost: emulate the no-SR baseline by keeping only the *first* download of
// every index, then compare displayed quality and data usage against the
// last-download-wins reality.
#pragma once

#include "core/session.h"

namespace vodx::core {

struct SrAnalysis {
  bool sr_observed = false;
  int replacement_downloads = 0;

  /// Fractions of replacements whose new rendition was worse / identical in
  /// level to the one it replaced (the §4.1.1 21.31% / 6.50% finding).
  double replacements_lower = 0;
  double replacements_equal = 0;

  /// 90th percentile of contiguous replaced-segment run lengths.
  int p90_cascade_length = 0;

  // With-SR vs no-SR (first-download baseline) comparison.
  Bytes media_bytes_with = 0;
  Bytes media_bytes_without = 0;
  double data_increase = 0;  ///< (with - without) / without

  Bps avg_bitrate_with = 0;
  Bps avg_bitrate_without = 0;
  double bitrate_change = 0;  ///< relative

  double low_quality_fraction_with = 0;   ///< height <= threshold
  double low_quality_fraction_without = 0;

  Bytes wasted_bytes = 0;      ///< discarded downloads + aborted transfers
  double wasted_fraction = 0;  ///< of all media bytes
};

SrAnalysis analyze_sr(const SessionResult& session, int low_height = 480);

}  // namespace vodx::core
