#include "core/blackbox.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "common/error.h"
#include "core/session_factory.h"
#include "manifest/dash_mpd.h"
#include "manifest/hls.h"
#include "manifest/smooth.h"
#include "manifest/uri.h"
#include "media/sidx.h"
#include "services/content_factory.h"

namespace vodx::core {

namespace {

SessionConfig base_session(const services::ServiceSpec& spec,
                           net::BandwidthTrace trace, Seconds duration) {
  SessionFactory factory;
  factory.session_duration = duration;
  // Probes run short sessions against full-length content: the startup
  // probe must never be rescued by content simply running out.
  factory.content_duration = std::max(duration, 600.0);
  return factory.config(spec, std::move(trace));
}

/// Modal declared bitrate (by downloaded duration) among steady-state video
/// downloads, plus distinct level count and switch count.
struct SteadyStats {
  std::map<int, Seconds> seconds_by_level;
  int switches = 0;
  std::map<int, Bps> declared_by_level;
};

SteadyStats steady_stats(const AnalyzedTraffic& traffic, Seconds warmup,
                         Seconds until = 1e18) {
  SteadyStats stats;
  int previous_level = -1;
  for (const SegmentDownload& d : traffic.downloads) {
    if (d.type != media::ContentType::kVideo || d.aborted) continue;
    if (d.requested_at < warmup || d.requested_at > until) continue;
    stats.seconds_by_level[d.level] += d.duration;
    stats.declared_by_level[d.level] = d.declared_bitrate;
    if (previous_level >= 0 && d.level != previous_level) ++stats.switches;
    previous_level = d.level;
  }
  return stats;
}

}  // namespace

namespace {

/// Interceptor behind reject_after_n_video_segments: binds a
/// SegmentClassifier to the proxy's live traffic log at attach() time, then
/// rejects every video segment beyond the first `allow` distinct indices.
class RejectAfterNVideoSegments : public http::Interceptor {
 public:
  explicit RejectAfterNVideoSegments(int allow) : allow_(allow) {}

  void attach(http::Proxy& proxy) override {
    classifier_ = std::make_unique<SegmentClassifier>(proxy.log());
  }

  std::optional<http::Response> on_request(const http::Request& request,
                                           Seconds /*now*/) override {
    VODX_ASSERT(classifier_ != nullptr,
                "interceptor used before being attached to a proxy");
    std::optional<SegmentRef> ref =
        classifier_->classify(request.url, request.range);
    if (!ref || ref->type != media::ContentType::kVideo) return std::nullopt;
    if (allowed_.count(ref->index) > 0) return std::nullopt;
    if (static_cast<int>(allowed_.size()) < allow_) {
      allowed_.insert(ref->index);
      return std::nullopt;
    }
    return http::make_error(403, "rejected by proxy");
  }

 private:
  int allow_;
  std::unique_ptr<SegmentClassifier> classifier_;
  std::set<int> allowed_;
};

}  // namespace

http::InterceptorPtr reject_after_n_video_segments(int allow) {
  return std::make_shared<RejectAfterNVideoSegments>(allow);
}

StartupProbe probe_startup(const services::ServiceSpec& spec,
                           const StartupProbeOptions& options) {
  StartupProbe probe;
  for (int n = 1; n <= options.max_segments; ++n) {
    SessionConfig config = base_session(
        spec, net::BandwidthTrace::constant(options.probe_bandwidth, 120), 90);
    config.interceptors.push_back(reject_after_n_video_segments(n));
    SessionResult result = run_session(config);
    if (result.ui.startup_delay < 0) continue;  // still not playing
    probe.playback_achievable = true;
    probe.min_segments = n;
    // Duration and declared bitrate of the admitted segments, from traffic.
    int counted = 0;
    for (const SegmentDownload& d : result.traffic.downloads) {
      if (d.type != media::ContentType::kVideo || d.aborted) continue;
      if (counted == 0) probe.startup_bitrate = d.declared_bitrate;
      probe.startup_buffer += d.duration;
      if (++counted == n) break;
    }
    return probe;
  }
  return probe;
}

ThresholdProbe probe_thresholds(const services::ServiceSpec& spec,
                                const ThresholdProbeOptions& options) {
  const Bps bandwidth = options.bandwidth;
  const Seconds duration = options.duration;
  SessionConfig config = base_session(
      spec, net::BandwidthTrace::constant(bandwidth, duration), duration);
  SessionResult result = run_session(config);

  // Wall intervals during which at least one video download is active.
  std::vector<std::pair<Seconds, Seconds>> active;
  for (const SegmentDownload& d : result.traffic.downloads) {
    if (d.type != media::ContentType::kVideo) continue;
    const Seconds end = d.completed_at >= 0 ? d.completed_at : duration;
    if (!active.empty() && d.requested_at <= active.back().second + 0.5) {
      active.back().second = std::max(active.back().second, end);
    } else {
      active.emplace_back(d.requested_at, end);
    }
  }

  auto buffer_at = [&](Seconds wall) {
    const std::size_t slot = static_cast<std::size_t>(
        std::clamp(wall, 0.0, duration));
    return slot < result.buffer.size() ? result.buffer[slot].video_buffer
                                       : 0.0;
  };

  ThresholdProbe probe;
  double pausing_sum = 0;
  double resuming_sum = 0;
  for (std::size_t i = 0; i + 1 < active.size(); ++i) {
    const Seconds gap_start = active[i].second;
    const Seconds gap_end = active[i + 1].first;
    if (gap_end - gap_start < 3.0) continue;  // not a pause, just pacing
    // Don't count the gap caused by running out of content.
    pausing_sum += buffer_at(gap_start);
    resuming_sum += buffer_at(gap_end);
    ++probe.pause_cycles;
  }
  if (probe.pause_cycles > 0) {
    probe.pausing_threshold = pausing_sum / probe.pause_cycles;
    probe.resuming_threshold = resuming_sum / probe.pause_cycles;
  }
  return probe;
}

SteadyStateProbe probe_steady_state(const services::ServiceSpec& spec,
                                    const SteadyStateProbeOptions& options) {
  VODX_ASSERT(options.bandwidth > 0, "steady-state probe needs a bandwidth");
  const Bps bandwidth = options.bandwidth;
  const Seconds duration = options.duration;
  SessionConfig config = base_session(
      spec, net::BandwidthTrace::constant(bandwidth, duration), duration);
  SessionResult result = run_session(config);
  SteadyStats stats = steady_stats(result.traffic, options.warmup);

  SteadyStateProbe probe;
  probe.distinct_levels = static_cast<int>(stats.seconds_by_level.size());
  probe.steady_switches = stats.switches;
  Seconds total = 0;
  Seconds best = 0;
  int modal_level = -1;
  for (const auto& [level, secs] : stats.seconds_by_level) {
    total += secs;
    if (secs > best) {
      best = secs;
      modal_level = level;
    }
  }
  if (modal_level >= 0 && total > 0) {
    probe.converged = best / total >= 0.9;
    probe.modal_declared_bitrate = stats.declared_by_level[modal_level];
    probe.declared_over_bandwidth = probe.modal_declared_bitrate / bandwidth;
  }
  return probe;
}

StepProbe probe_step_response(const services::ServiceSpec& spec,
                              const StepProbeOptions& options) {
  const Seconds step_at = options.step_at;
  const Seconds duration = options.duration;
  SessionConfig config = base_session(
      spec,
      net::BandwidthTrace::step(options.high, options.low, step_at, duration),
      duration);
  SessionResult result = run_session(config);

  // The level the player had settled on before the step.
  SteadyStats before = steady_stats(result.traffic, step_at * 0.4, step_at);
  int settled_level = -1;
  Seconds best = 0;
  for (const auto& [level, secs] : before.seconds_by_level) {
    if (secs > best) {
      best = secs;
      settled_level = level;
    }
  }

  StepProbe probe;
  if (settled_level < 0) return probe;
  for (const SegmentDownload& d : result.traffic.downloads) {
    if (d.type != media::ContentType::kVideo || d.aborted) continue;
    if (d.requested_at <= step_at || d.level >= settled_level) continue;
    probe.switched_down = true;
    const std::size_t slot =
        static_cast<std::size_t>(std::clamp(d.requested_at, 0.0, duration));
    probe.buffer_at_downswitch =
        slot < result.buffer.size() ? result.buffer[slot].video_buffer : 0;
    probe.immediate = probe.buffer_at_downswitch > options.immediate_cutoff;
    break;
  }
  return probe;
}

// ---------------------------------------------------------------------------
// §3.1 encoding probe
// ---------------------------------------------------------------------------

namespace {

/// Minimal synchronous fetch driver for probe-style traffic: issues one
/// request at a time over a fresh simulated fast link.
class SyncFetcher {
 public:
  explicit SyncFetcher(const services::ServiceSpec& spec)
      : sim_(0.01),
        link_(sim_, net::BandwidthTrace::constant(20 * kMbps, 3600), 0.03),
        origin_(services::make_origin(spec, 600, 42)),
        proxy_(origin_),
        client_(sim_, link_, proxy_, options()) {}

  static http::HttpClient::Options options() {
    http::HttpClient::Options out;
    out.max_connections = 2;
    out.tcp.rtt = 0.03;
    return out;
  }

  http::Response fetch(const http::Request& request) {
    std::optional<http::Response> out;
    client_.fetch(request, [&](const http::Response& r) { out = r; });
    while (!out) sim_.run_for(0.1);
    return *out;
  }

  const http::OriginServer& origin() const { return origin_; }

 private:
  net::Simulator sim_;
  net::Link link_;
  http::OriginServer origin_;
  http::Proxy proxy_;
  http::HttpClient client_;
};

std::vector<double> ratios_from(const std::vector<Seconds>& durations,
                                const std::vector<Bytes>& sizes,
                                Bps declared) {
  std::vector<double> ratios;
  for (std::size_t i = 0; i < sizes.size() && i < durations.size(); ++i) {
    ratios.push_back(rate_of(sizes[i], durations[i]) / declared);
  }
  return ratios;
}

}  // namespace

bool EncodingProbe::looks_cbr(double tolerance) const {
  if (ratios.empty()) return false;
  double lo = ratios.front();
  double hi = ratios.front();
  for (double r : ratios) {
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  const double mid = (lo + hi) / 2;
  return mid > 0 && (hi - lo) / mid < tolerance;
}

media::DeclaredPolicy EncodingProbe::inferred_policy() const {
  double sum = 0;
  for (double r : ratios) sum += r;
  const double mean = ratios.empty() ? 0 : sum / ratios.size();
  // Peak-declared VBR has mean actual well below the declared bitrate;
  // average-declared (and CBR) sits around it.
  return mean < 0.8 ? media::DeclaredPolicy::kPeak
                    : media::DeclaredPolicy::kAverage;
}

EncodingProbe probe_encoding(const services::ServiceSpec& spec) {
  EncodingProbe probe;

  if (spec.protocol == manifest::Protocol::kDash && spec.encrypt_manifest) {
    // Encrypted MPD: fall back to what a session leaves on the wire — the
    // analyzer reconstructs tracks (sizes included) from the sidx boxes.
    SessionConfig config;
    config.spec = spec;
    config.trace = net::BandwidthTrace::constant(10 * kMbps, 60);
    config.session_duration = 60;
    config.content_duration = 600;
    SessionResult r = run_session(config);
    const AnalyzedTrack& top = r.traffic.video_tracks.back();
    probe.sizes_from_wire = true;
    probe.ratios = ratios_from(top.segment_durations, top.segment_sizes,
                               top.declared_bitrate);
    return probe;
  }

  SyncFetcher fetcher(spec);

  auto head_size = [&](const std::string& url) {
    http::Response r = fetcher.fetch({http::Method::kHead, url, std::nullopt});
    return r.ok() ? r.head_content_length : 0;
  };

  if (spec.protocol == manifest::Protocol::kDash) {
    http::Response mpd_resp =
        fetcher.fetch({http::Method::kGet, "/manifest.mpd", std::nullopt});
    manifest::DashMpd mpd = manifest::DashMpd::parse(mpd_resp.body);
    const manifest::DashRepresentation* top = nullptr;
    for (const auto& set : mpd.adaptation_sets) {
      if (set.content_type != media::ContentType::kVideo) continue;
      for (const auto& rep : set.representations) {
        if (top == nullptr || rep.bandwidth > top->bandwidth) top = &rep;
      }
    }
    VODX_ASSERT(top != nullptr, "MPD without video");
    if (!top->segments.empty()) {
      probe.sizes_from_wire = true;
      for (const auto& seg : top->segments) {
        probe.ratios.push_back(
            rate_of(seg.media_range.length(), seg.duration) / top->bandwidth);
      }
    } else if (top->index_range) {
      const std::string media_url =
          manifest::uri_resolve("/manifest.mpd", top->base_url);
      http::Response sidx_resp = fetcher.fetch(
          {http::Method::kGet, media_url, top->index_range});
      media::SidxBox sidx = media::parse_sidx(sidx_resp.body);
      probe.sizes_from_wire = true;
      for (const auto& ref : sidx.references) {
        const Seconds d =
            static_cast<double>(ref.subsegment_duration) / sidx.timescale;
        probe.ratios.push_back(
            rate_of(static_cast<Bytes>(ref.referenced_size), d) /
            top->bandwidth);
      }
    } else {
      // SegmentTemplate: HEAD every fragment.
      for (int i = 0; i < static_cast<int>(top->template_durations.size());
           ++i) {
        const Bytes size = head_size(
            manifest::uri_resolve("/manifest.mpd", top->template_url(i)));
        if (size > 0) {
          probe.ratios.push_back(
              rate_of(size, top->template_durations[static_cast<std::size_t>(
                                i)]) /
              top->bandwidth);
        }
      }
    }
    return probe;
  }

  if (spec.protocol == manifest::Protocol::kHls) {
    http::Response master_resp =
        fetcher.fetch({http::Method::kGet, "/master.m3u8", std::nullopt});
    manifest::HlsMasterPlaylist master =
        manifest::HlsMasterPlaylist::parse(master_resp.body);
    const manifest::HlsVariant* top = nullptr;
    for (const auto& v : master.variants) {
      if (top == nullptr || v.bandwidth > top->bandwidth) top = &v;
    }
    VODX_ASSERT(top != nullptr, "master playlist without variants");
    const std::string playlist_url =
        manifest::uri_resolve("/master.m3u8", top->uri);
    manifest::HlsMediaPlaylist playlist = manifest::HlsMediaPlaylist::parse(
        fetcher.fetch({http::Method::kGet, playlist_url, std::nullopt}).body);
    for (const auto& seg : playlist.segments) {
      Bytes size = 0;
      if (seg.byterange) {
        size = seg.byterange->length();  // HLS v4: size is in the playlist
        probe.sizes_from_wire = true;
      } else {
        size = head_size(manifest::uri_resolve(playlist_url, seg.uri));
      }
      if (size > 0) {
        probe.ratios.push_back(rate_of(size, seg.duration) / top->bandwidth);
      }
    }
    return probe;
  }

  // SmoothStreaming: HEAD every fragment of the top quality level.
  manifest::SmoothManifest manifest = manifest::SmoothManifest::parse(
      fetcher.fetch({http::Method::kGet, "/manifest.ism", std::nullopt}).body);
  for (const auto& stream : manifest.stream_indexes) {
    if (stream.type != media::ContentType::kVideo) continue;
    const manifest::SmoothQualityLevel* top = nullptr;
    for (const auto& q : stream.quality_levels) {
      if (top == nullptr || q.bitrate > top->bitrate) top = &q;
    }
    VODX_ASSERT(top != nullptr, "SmoothStreaming without quality levels");
    for (int i = 0; i < static_cast<int>(stream.chunk_durations.size()); ++i) {
      const std::string url = manifest::uri_resolve(
          "/manifest.ism",
          stream.fragment_url(top->bitrate, stream.chunk_start_ticks(i)));
      const Bytes size = head_size(url);
      if (size > 0) {
        probe.ratios.push_back(
            rate_of(size, stream.chunk_durations[static_cast<std::size_t>(i)]) /
            top->bitrate);
      }
    }
  }
  return probe;
}

// ---------------------------------------------------------------------------
// Fig.-12 manifest variants
// ---------------------------------------------------------------------------

namespace {

std::string rewrite_mpd(const std::string& body, bool shift) {
  manifest::DashMpd mpd = manifest::DashMpd::parse(body);
  for (manifest::DashAdaptationSet& set : mpd.adaptation_sets) {
    if (set.content_type != media::ContentType::kVideo) continue;
    auto& reps = set.representations;
    if (reps.size() < 2) continue;
    std::sort(reps.begin(), reps.end(),
              [](const manifest::DashRepresentation& a,
                 const manifest::DashRepresentation& b) {
                return a.bandwidth < b.bandwidth;
              });
    if (shift) {
      // Variant 1: declared bitrate of rung i, media of rung i-1.
      for (std::size_t i = reps.size() - 1; i >= 1; --i) {
        reps[i].base_url = reps[i - 1].base_url;
        reps[i].index_range = reps[i - 1].index_range;
        reps[i].segments = reps[i - 1].segments;
      }
    }
    // Both variants drop the lowest rung so the track counts match.
    reps.erase(reps.begin());
  }
  return mpd.serialize();
}

}  // namespace

http::InterceptorPtr shift_tracks_variant() {
  return http::transform_manifest([](const std::string& url, std::string body) {
    if (url.find(".mpd") == std::string::npos) return body;
    return rewrite_mpd(body, /*shift=*/true);
  });
}

http::InterceptorPtr drop_lowest_variant() {
  return http::transform_manifest([](const std::string& url, std::string body) {
    if (url.find(".mpd") == std::string::npos) return body;
    return rewrite_mpd(body, /*shift=*/false);
  });
}

DeclaredVsActualProbe probe_declared_vs_actual(
    const services::ServiceSpec& spec, const DeclaredVsActualOptions& options) {
  VODX_ASSERT(spec.protocol == manifest::Protocol::kDash,
              "the Fig.-12 probe rewrites DASH MPDs");
  const Bps bandwidth = options.bandwidth;
  const Seconds duration = options.duration;
  const Seconds warmup = options.warmup;
  auto run_variant = [&](http::InterceptorPtr transform) {
    SessionConfig config = base_session(
        spec, net::BandwidthTrace::constant(bandwidth, duration), duration);
    config.interceptors.push_back(std::move(transform));
    SessionResult result = run_session(config);
    SteadyStats stats = steady_stats(result.traffic, warmup);
    Seconds best = 0;
    Bps declared = 0;
    for (const auto& [level, secs] : stats.seconds_by_level) {
      if (secs > best) {
        best = secs;
        declared = stats.declared_by_level[level];
      }
    }
    return declared;
  };

  DeclaredVsActualProbe probe;
  probe.selected_declared_variant1 = run_variant(shift_tracks_variant());
  probe.selected_declared_variant2 = run_variant(drop_lowest_variant());
  probe.declared_only =
      std::abs(probe.selected_declared_variant1 -
               probe.selected_declared_variant2) < 1.0;

  // Utilization on the unmodified stream (§4.2's 33.7%-of-2-Mbps finding).
  SessionConfig config = base_session(
      spec, net::BandwidthTrace::constant(bandwidth, duration), duration);
  SessionResult result = run_session(config);
  Bytes steady_bytes = 0;
  for (const SegmentDownload& d : result.traffic.downloads) {
    if (d.requested_at >= warmup && !d.aborted) steady_bytes += d.bytes;
  }
  probe.bandwidth_utilization =
      rate_of(steady_bytes, duration - warmup) / bandwidth;
  return probe;
}

}  // namespace vodx::core
