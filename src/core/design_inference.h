// Table-1 reconstruction: run the full black-box battery against a service
// and assemble every design-choice column the paper reports.
//
// Because our services are PlayerConfig instances with known ground truth,
// this is where the methodology gets *validated*, not just demonstrated:
// bench_table1 prints inferred vs. actual side by side.
#pragma once

#include <string>

#include "core/blackbox.h"

namespace vodx::core {

struct InferredDesign {
  std::string service;

  // Server.
  Seconds segment_duration = 0;
  bool separate_audio = false;

  // Transport.
  int max_tcp = 0;
  bool persistent_tcp = true;

  // Startup.
  Seconds startup_buffer = 0;
  int startup_segments = 0;
  Bps startup_bitrate = 0;

  // Download control.
  Seconds pausing_threshold = 0;
  Seconds resuming_threshold = 0;

  // Encoding (§3.1).
  bool cbr = false;
  media::DeclaredPolicy declared_policy = media::DeclaredPolicy::kPeak;

  // Adaptation.
  bool stable = true;
  bool aggressive = false;
  /// Buffer level at which the player switched down after a bandwidth drop;
  /// < 0 when it never switched down in the probe.
  Seconds decrease_buffer = -1;
  bool immediate_downswitch = false;
};

/// Runs the probes (a few tens of simulated sessions) and fills the row.
InferredDesign infer_design(const services::ServiceSpec& spec);

}  // namespace vodx::core
