#include "core/design_inference.h"

#include <algorithm>
#include <cmath>

namespace vodx::core {

InferredDesign infer_design(const services::ServiceSpec& spec) {
  InferredDesign out;
  out.service = spec.name;

  // One plain session at comfortable bandwidth covers the passive columns:
  // segment duration, audio separation, connection count and persistence.
  {
    SessionConfig config;
    config.spec = spec;
    config.trace = net::BandwidthTrace::constant(10 * kMbps, 300);
    config.session_duration = 300;
    config.content_duration = 600;
    SessionResult result = run_session(config);
    if (!result.traffic.video_tracks.empty()) {
      // Use a track that was actually downloaded (durations known).
      for (const AnalyzedTrack& t : result.traffic.video_tracks) {
        if (!t.segment_durations.empty()) {
          out.segment_duration = t.nominal_segment_duration();
          break;
        }
      }
    }
    out.separate_audio = !result.traffic.audio_tracks.empty();
    out.max_tcp = result.traffic.max_concurrent_transfers();
    out.persistent_tcp = !result.traffic.non_persistent_connections();
  }

  const EncodingProbe encoding = probe_encoding(spec);
  out.cbr = encoding.looks_cbr();
  out.declared_policy = encoding.inferred_policy();

  const StartupProbe startup = probe_startup(spec);
  out.startup_segments = startup.min_segments;
  out.startup_buffer = startup.startup_buffer;
  out.startup_bitrate = startup.startup_bitrate;

  const ThresholdProbe thresholds = probe_thresholds(spec);
  out.pausing_threshold = thresholds.pausing_threshold;
  out.resuming_threshold = thresholds.resuming_threshold;

  // Stability and aggressiveness over a Fig.-9-style bandwidth sweep. A
  // single operating point is misleading — the selected-track staircase
  // means declared/bandwidth depends on where the point falls between two
  // rungs — so take the max ratio over several points.
  const Bps ladder_low = spec.video_ladder.front();
  const Bps ladder_high = spec.video_ladder.back();
  out.stable = true;
  double max_ratio = 0;
  const int sweep_points = 6;
  for (int i = 0; i < sweep_points; ++i) {
    const double frac = static_cast<double>(i) / (sweep_points - 1);
    const Bps bw = ladder_low * 1.4 *
                   std::pow(ladder_high * 0.9 / (ladder_low * 1.4), frac);
    const SteadyStateProbe steady =
        probe_steady_state(spec, SteadyStateProbeOptions{.bandwidth = bw});
    out.stable = out.stable && steady.converged;
    max_ratio = std::max(max_ratio, steady.declared_over_bandwidth);
  }
  out.aggressive = max_ratio >= 0.80;

  const StepProbe step = probe_step_response(spec);
  if (step.switched_down) {
    out.decrease_buffer = step.buffer_at_downswitch;
    // "Immediate" means the player abandoned most of its headroom: it
    // switched while the buffer still held the bulk of its pausing level.
    out.immediate_downswitch =
        out.pausing_threshold > 0 &&
        step.buffer_at_downswitch > 0.55 * out.pausing_threshold;
  }
  return out;
}

}  // namespace vodx::core
