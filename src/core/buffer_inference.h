// Buffer inference (§2.5).
//
// "At any time, the difference between the downloading progress and playing
// progress should be the buffer occupancy." Downloading progress comes from
// the traffic analyzer (contiguous media seconds fully downloaded), playing
// progress from the UI monitor. Neither source looks inside the player.
#pragma once

#include <vector>

#include "common/units.h"
#include "core/traffic_analyzer.h"
#include "core/ui_monitor.h"

namespace vodx::core {

struct BufferSample {
  Seconds wall = 0;
  Seconds video_buffer = 0;
  Seconds audio_buffer = 0;  ///< == video when audio is muxed
};

/// Samples the inferred buffer at `step` intervals over the session.
std::vector<BufferSample> infer_buffer(const AnalyzedTraffic& traffic,
                                       const UiInference& ui,
                                       Seconds session_end,
                                       Seconds step = 1.0);

/// Contiguous media seconds of `type` fully downloaded by `wall`, counting a
/// segment index as available once any rendition of it has completed.
Seconds download_progress(const AnalyzedTraffic& traffic,
                          media::ContentType type, Seconds wall);

}  // namespace vodx::core
