#include "core/buffer_inference.h"

#include <algorithm>

namespace vodx::core {

Seconds download_progress(const AnalyzedTraffic& traffic,
                          media::ContentType type, Seconds wall) {
  const auto& ladder = type == media::ContentType::kVideo
                           ? traffic.video_tracks
                           : traffic.audio_tracks;
  if (ladder.empty()) return 0;
  const AnalyzedTrack& reference = ladder.front();
  const int segment_count =
      static_cast<int>(reference.segment_durations.size());

  // completion time per index = earliest completed download of any rendition.
  std::vector<Seconds> completed(static_cast<std::size_t>(segment_count), -1);
  for (const SegmentDownload& d : traffic.downloads) {
    if (d.type != type || d.aborted || d.completed_at < 0) continue;
    if (d.index < 0 || d.index >= segment_count) continue;
    Seconds& slot = completed[static_cast<std::size_t>(d.index)];
    if (slot < 0 || d.completed_at < slot) slot = d.completed_at;
  }

  Seconds progress = 0;
  for (int i = 0; i < segment_count; ++i) {
    const Seconds done = completed[static_cast<std::size_t>(i)];
    if (done < 0 || done > wall) break;  // contiguity ends here
    progress += reference.segment_durations[static_cast<std::size_t>(i)];
  }
  return progress;
}

std::vector<BufferSample> infer_buffer(const AnalyzedTraffic& traffic,
                                       const UiInference& ui,
                                       Seconds session_end, Seconds step) {
  std::vector<BufferSample> out;
  const bool separate_audio = !traffic.audio_tracks.empty();
  for (Seconds t = 0; t <= session_end + 1e-9; t += step) {
    BufferSample sample;
    sample.wall = t;
    const Seconds position = ui.position_at(t);
    sample.video_buffer = std::max(
        0.0, download_progress(traffic, media::ContentType::kVideo, t) -
                 position);
    sample.audio_buffer =
        separate_audio
            ? std::max(0.0, download_progress(
                                traffic, media::ContentType::kAudio, t) -
                                position)
            : sample.video_buffer;
    out.push_back(sample);
  }
  return out;
}

}  // namespace vodx::core
