// Traffic analyzer (§2.3).
//
// Input: the proxy's raw TrafficLog. Output: per-track metadata and every
// media segment download with its track level, index, duration, bytes and
// timing. The analyzer is deliberately *protocol-generic* — it recognises
// HLS, DASH and SmoothStreaming by content, parses the same manifests the
// client received, and maps requests to segments:
//
//   HLS    segment URL -> (variant, index) via the media playlists
//   DASH   (URL, byte range) -> segment via MPD SegmentList ranges, or via
//          sidx boxes observed on the wire; sub-range requests (the D3 split
//          download) are grouped back into their segment
//   SS     fragment URL -> (quality level, chunk) by expanding the manifest's
//          URL template exactly as a client would
//
// When the manifest is application-layer encrypted (the D3 case), the
// analyzer falls back to the sidx boxes alone and, following the paper's
// footnote 4, uses each track's peak actual segment bitrate as its declared
// bitrate.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/units.h"
#include "http/traffic_log.h"
#include "manifest/presentation.h"
#include "media/types.h"

namespace vodx::core {

struct AnalyzedTrack {
  media::ContentType type = media::ContentType::kVideo;
  int level = 0;  ///< position in the ascending declared-bitrate ladder
  Bps declared_bitrate = 0;
  media::Resolution resolution;
  std::vector<Seconds> segment_durations;
  /// Exact sizes when the protocol exposes them (DASH); empty otherwise.
  std::vector<Bytes> segment_sizes;

  Seconds duration() const;
  Seconds segment_start(int index) const;
  /// Median segment duration — the "segment duration" of Table 1.
  Seconds nominal_segment_duration() const;
};

struct SegmentDownload {
  media::ContentType type = media::ContentType::kVideo;
  int level = 0;
  int index = 0;
  Bps declared_bitrate = 0;
  media::Resolution resolution;
  Seconds duration = 0;       ///< media seconds
  Bytes bytes = 0;            ///< payload bytes received
  Seconds requested_at = 0;
  Seconds completed_at = -1;  ///< -1 if aborted
  bool aborted = false;
  std::string connection;
  int connection_use = 0;
};

struct AnalyzedTraffic {
  manifest::Protocol protocol = manifest::Protocol::kHls;
  bool manifest_encrypted = false;
  std::vector<AnalyzedTrack> video_tracks;  ///< ascending declared bitrate
  std::vector<AnalyzedTrack> audio_tracks;
  std::vector<SegmentDownload> downloads;   ///< by request time
  Bytes total_payload_bytes = 0;            ///< everything, manifests included

  const AnalyzedTrack& video_track(int level) const;
  /// Raw wire-level media transfer intervals (sub-range requests separate),
  /// for connection-concurrency analysis.
  std::vector<std::pair<Seconds, Seconds>> media_transfer_intervals;
  /// Maximum number of simultaneously open transfers (Table 1 "Max #TCP").
  int max_concurrent_transfers() const;
  /// True when no connection carried more than one request (§3.2).
  bool non_persistent_connections() const;
};

/// Analyzes a completed session's log. Throws ParseError if no manifest can
/// be located.
AnalyzedTraffic analyze_traffic(const http::TrafficLog& log);

/// A segment's identity within the ladder.
struct SegmentRef {
  media::ContentType type = media::ContentType::kVideo;
  int level = 0;
  int index = 0;
};

/// Live request classifier for black-box experiments running *on* the proxy
/// (e.g. "reject every video segment request after the first n", §3.3.1).
/// It builds its URL/range -> segment maps lazily from the manifests and
/// sidx boxes already observed in the traffic log — the same vantage point
/// the paper's proxy has.
class SegmentClassifier {
 public:
  explicit SegmentClassifier(const http::TrafficLog& log);
  ~SegmentClassifier();

  SegmentClassifier(const SegmentClassifier&) = delete;
  SegmentClassifier& operator=(const SegmentClassifier&) = delete;

  /// Classifies a request; nullopt when it is not a media segment (or the
  /// manifest describing it has not crossed the wire yet).
  std::optional<SegmentRef> classify(
      const std::string& url,
      const std::optional<manifest::ByteRange>& range);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace vodx::core
