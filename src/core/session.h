// Session runner: one experiment = one service streamed over one bandwidth
// trace through the instrumented proxy (Figure 2's whole pipeline).
//
// Wires simulator + link + origin + proxy + player + UI monitor, runs for
// the session duration, then executes the full methodology (traffic
// analysis, UI inference, buffer inference, QoE) and also extracts the
// player's ground truth so experiments can validate the inference.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/buffer_inference.h"
#include "core/qoe.h"
#include "core/traffic_analyzer.h"
#include "core/ui_monitor.h"
#include "faults/fault_injector.h"
#include "faults/fault_plan.h"
#include "http/interceptor.h"
#include "http/proxy.h"
#include "net/bandwidth_trace.h"
#include "net/simulator.h"
#include "obs/observer.h"
#include "origin/origin.h"
#include "player/player.h"
#include "services/service_catalog.h"

namespace vodx::core {

struct SessionConfig {
  services::ServiceSpec spec;
  net::BandwidthTrace trace;
  Seconds content_duration = 600;
  Seconds session_duration = 600;  ///< the paper runs 10-minute sessions
  Seconds tick = 0.01;
  Seconds rtt = 0.07;
  std::uint64_t content_seed = 42;

  /// Simulator advancement core. kEvent (default) skips provably-inert grid
  /// ticks; kFixedTickReference executes every tick — the retained reference
  /// implementation the differential harness compares against. Outputs are
  /// identical by contract (see DESIGN.md §13).
  net::SimCore sim_core = net::SimCore::kEvent;

  /// Interceptors registered on the proxy in order (black-box probe hooks,
  /// middleware). Each is attach()ed to the live proxy before the session
  /// starts; see http/interceptor.h for stage semantics.
  http::InterceptorChain interceptors;

  /// Scripted fault injection. Blackout windows are applied to `trace`
  /// before the link is built; the remaining faults run as a FaultInjector
  /// registered after `interceptors`.
  std::optional<faults::FaultPlan> fault_plan;

  /// Origin/CDN tier (DESIGN.md §16). mode kNone = no tier (the historical
  /// single-origin path, byte-identical). When enabled, an origin::OriginTier
  /// is registered FIRST on the proxy — before `interceptors` and the fault
  /// injector — so the edge cache short-circuits injected origin errors and
  /// the failover machinery sees injector-mutated responses.
  origin::OriginOptions origin;
  /// Shared cache/breaker state (population towers); null = per-session.
  std::shared_ptr<origin::OriginState> origin_state;

  QoeOptions qoe_options;

  // --- Watchdogs (vodx::chaos; both default off / inert) -----------------
  /// Wall-clock budget for the whole simulated run; when exceeded,
  /// run_session throws net::WatchdogError instead of hanging the harness
  /// (0 = no budget). Abort-only: it never changes a run that finishes.
  Seconds wall_budget = 0;
  /// Bound on events fired at a single simulated instant (0 = unbounded);
  /// trips net::WatchdogError on zero-delay event livelock.
  std::uint64_t max_events_per_instant = 0;

  /// Optional observability context. When set, run_session wires it through
  /// the whole stack (simulator, link, TCP, HTTP, player) and additionally
  /// emits session-level events: a root span covering the run, QoE summary
  /// metrics, and ground-truth-vs-inference divergence instants (category
  /// kSession) flagging where the black-box methodology disagrees with the
  /// player's own record. The pointer must outlive run_session().
  obs::Observer* observer = nullptr;
};

struct SessionResult {
  // Methodology outputs (what the paper's toolchain would produce).
  AnalyzedTraffic traffic;
  UiInference ui;
  QoeReport qoe;
  std::vector<BufferSample> buffer;

  // Ground truth (unavailable to the paper; used here for validation).
  player::PlayerEvents events;
  player::PlayerState final_state = player::PlayerState::kIdle;
  Seconds final_position = 0;
  QoeReport ground_truth;

  /// Faults actually fired (zeros when no fault plan was configured).
  faults::FaultInjector::Stats faults;

  Seconds session_end = 0;
};

/// Ground-truth QoE computed from player events + the wire log (validation
/// reference for compute_qoe()).
QoeReport qoe_from_events(const player::PlayerEvents& events,
                          const AnalyzedTraffic& traffic, Seconds session_end,
                          const QoeOptions& options = {});

SessionResult run_session(const SessionConfig& config);

}  // namespace vodx::core
