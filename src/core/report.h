// Machine-readable exports of session results, for spreadsheets/plotters.
#pragma once

#include <string>

#include "core/session.h"

namespace vodx::core {

/// One-line CSV header matching qoe_csv_row().
std::string qoe_csv_header();

/// Flattens a session's QoE report into one CSV row.
std::string qoe_csv_row(const std::string& label, const SessionResult& result);

/// Buffer-occupancy timeline as CSV (wall,video_buffer,audio_buffer).
std::string buffer_csv(const SessionResult& result);

}  // namespace vodx::core
