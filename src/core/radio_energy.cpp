#include "core/radio_energy.h"

#include <algorithm>

namespace vodx::core {

namespace {

/// Merges the session's media transfer intervals into disjoint busy spans.
/// (Manifest fetches happen once at startup and are negligible here.)
std::vector<std::pair<Seconds, Seconds>> busy_spans(
    const AnalyzedTraffic& traffic, Seconds session_end) {
  std::vector<std::pair<Seconds, Seconds>> spans =
      traffic.media_transfer_intervals;
  std::sort(spans.begin(), spans.end());
  std::vector<std::pair<Seconds, Seconds>> merged;
  for (auto [start, end] : spans) {
    end = std::min(std::max(end, start), session_end);
    start = std::min(start, session_end);
    if (!merged.empty() && start <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, end);
    } else {
      merged.emplace_back(start, end);
    }
  }
  return merged;
}

}  // namespace

RadioEnergyReport radio_energy(const AnalyzedTraffic& traffic,
                               Seconds session_end, const RrcConfig& config) {
  RadioEnergyReport report;
  const auto spans = busy_spans(traffic, session_end);

  Seconds cursor = 0;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const auto [start, end] = spans[i];
    // Gap before this span: tail up to the demotion timer, then idle.
    if (start > cursor) {
      const Seconds gap = start - cursor;
      report.tail_time += std::min(gap, config.demotion_timer);
      report.idle_time += std::max(0.0, gap - config.demotion_timer);
    }
    report.active_time += end - start;
    cursor = std::max(cursor, end);
  }
  if (session_end > cursor) {
    const Seconds gap = session_end - cursor;
    report.tail_time += std::min(gap, config.demotion_timer);
    report.idle_time += std::max(0.0, gap - config.demotion_timer);
  }

  report.energy_joules = report.active_time * config.active_watts +
                         report.tail_time * config.tail_watts +
                         report.idle_time * config.idle_watts;
  return report;
}

RadioEnergyReport radio_energy_with_timer(const AnalyzedTraffic& traffic,
                                          Seconds session_end,
                                          Seconds demotion_timer) {
  RrcConfig config;
  config.demotion_timer = demotion_timer;
  return radio_energy(traffic, session_end, config);
}

}  // namespace vodx::core
