#include "core/qoe.h"

#include <algorithm>
#include <cmath>

namespace vodx::core {

namespace {

/// First wall time at which the (1 Hz, integer) playing position reached
/// `position`; -1 if it never did.
Seconds wall_when_position_reached(const UiInference& ui, Seconds position) {
  for (const ProgressSample& s : ui.samples) {
    if (static_cast<Seconds>(s.progress) >= position - 1e-9) return s.wall;
  }
  return -1;
}

}  // namespace

double QoeReport::fraction_at_or_below(int height) const {
  if (displayed_time <= 0) return 0;
  Seconds below = 0;
  for (const auto& [h, secs] : time_by_height) {
    if (h <= height) below += secs;
  }
  return below / displayed_time;
}

QoeReport compute_qoe(const AnalyzedTraffic& traffic, const UiInference& ui,
                      Seconds session_end, const QoeOptions& options) {
  QoeReport report;
  report.startup_delay = ui.startup_delay;
  report.total_stall = ui.total_stall;
  report.stall_count = static_cast<int>(ui.stalls.size());
  report.total_bytes = traffic.total_payload_bytes;

  for (const SegmentDownload& d : traffic.downloads) {
    report.media_bytes += d.bytes;
  }
  if (traffic.video_tracks.empty()) return report;

  const Seconds final_position =
      ui.samples.empty()
          ? 0
          : static_cast<Seconds>(ui.samples.back().progress);

  // Reconstruct which rendition of every index actually rendered: the last
  // download of that index completed before its play time wins (§4.1.1 —
  // only the most recent download stays in the buffer).
  const AnalyzedTrack& reference = traffic.video_tracks.front();
  const int segment_count =
      static_cast<int>(reference.segment_durations.size());
  std::vector<const SegmentDownload*> winners(
      static_cast<std::size_t>(segment_count), nullptr);

  for (int index = 0; index < segment_count; ++index) {
    const Seconds seg_start = reference.segment_start(index);
    if (seg_start >= final_position - 1e-9) break;
    const Seconds play_wall = wall_when_position_reached(ui, seg_start);
    const SegmentDownload* winner = nullptr;
    const SegmentDownload* earliest = nullptr;
    for (const SegmentDownload& d : traffic.downloads) {
      if (d.type != media::ContentType::kVideo || d.index != index ||
          d.aborted || d.completed_at < 0) {
        continue;
      }
      if (earliest == nullptr || d.completed_at < earliest->completed_at) {
        earliest = &d;
      }
      if (play_wall >= 0 && d.completed_at <= play_wall + 1.0) {
        if (winner == nullptr || d.completed_at > winner->completed_at) {
          winner = &d;
        }
      }
    }
    if (winner == nullptr) winner = earliest;
    if (winner == nullptr) continue;
    winners[static_cast<std::size_t>(index)] = winner;

    DisplayedSegment shown;
    shown.index = index;
    shown.level = winner->level;
    shown.declared_bitrate = winner->declared_bitrate;
    shown.resolution = winner->resolution;
    const Seconds seg_end = seg_start + winner->duration;
    shown.seconds_shown = std::min(seg_end, final_position) - seg_start;
    shown.play_wall = play_wall;
    if (shown.seconds_shown <= 0) continue;
    report.displayed.push_back(shown);
  }

  // Quality aggregates.
  double bitrate_weighted = 0;
  for (const DisplayedSegment& s : report.displayed) {
    report.displayed_time += s.seconds_shown;
    bitrate_weighted += s.declared_bitrate * s.seconds_shown;
    report.time_by_height[s.resolution.height] += s.seconds_shown;
  }
  if (report.displayed_time > 0) {
    report.average_declared_bitrate = bitrate_weighted / report.displayed_time;
  }
  report.low_quality_fraction =
      report.fraction_at_or_below(options.low_quality_max_height);

  // Switches.
  for (std::size_t i = 1; i < report.displayed.size(); ++i) {
    const int delta =
        std::abs(report.displayed[i].level - report.displayed[i - 1].level);
    if (delta > 0) ++report.switch_count;
    if (delta > 1) ++report.nonconsecutive_switch_count;
  }

  // Waste: aborted transfers plus downloads that never rendered.
  for (const SegmentDownload& d : traffic.downloads) {
    if (d.aborted) {
      report.wasted_bytes += d.bytes;
      continue;
    }
    if (d.type != media::ContentType::kVideo) continue;
    if (d.index < 0 || d.index >= segment_count) continue;
    const SegmentDownload* winner =
        winners[static_cast<std::size_t>(d.index)];
    if (winner != nullptr && winner != &d) report.wasted_bytes += d.bytes;
  }

  (void)session_end;
  return report;
}

double qoe_score(const QoeReport& report, Seconds session_length,
                 const QoeScoreWeights& weights) {
  if (report.displayed_time <= 0 || session_length <= 0) return 0;
  // Concave (logarithmic) bitrate utility, time-weighted over what was
  // actually displayed.
  double utility = 0;
  for (const DisplayedSegment& s : report.displayed) {
    const double ratio =
        std::max(0.1, s.declared_bitrate / weights.reference_bitrate);
    utility += std::log2(ratio) * s.seconds_shown;
  }
  utility /= report.displayed_time;

  const double stall_fraction = report.total_stall / session_length;
  const double switches_per_minute =
      report.switch_count / (report.displayed_time / 60.0);
  const double startup =
      report.startup_delay > 0 ? report.startup_delay : 0;

  return utility - weights.stall_penalty * stall_fraction -
         weights.startup_penalty * startup -
         weights.switch_penalty * switches_per_minute;
}

}  // namespace vodx::core
