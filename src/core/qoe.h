// QoE metrics (§2.2).
//
// The four metric families the paper tracks — video quality (average
// declared bitrate and time spent on low tracks), track switches, stall
// duration, startup delay — plus the data-usage accounting the SR analysis
// needs. compute_qoe() derives everything from the methodology's two
// observation channels (traffic + UI); nothing reads player internals, so
// the same code evaluates any service.
#pragma once

#include <map>
#include <vector>

#include "common/units.h"
#include "core/traffic_analyzer.h"
#include "core/ui_monitor.h"

namespace vodx::core {

struct DisplayedSegment {
  int index = 0;
  int level = 0;
  Bps declared_bitrate = 0;
  media::Resolution resolution;
  Seconds seconds_shown = 0;
  Seconds play_wall = 0;  ///< when it started rendering (inferred)
};

struct QoeOptions {
  /// "Low quality" threshold: displayed height <= this counts as low.
  int low_quality_max_height = 480;
};

struct QoeReport {
  Seconds startup_delay = -1;
  Seconds total_stall = 0;
  int stall_count = 0;

  Bps average_declared_bitrate = 0;
  Seconds displayed_time = 0;
  double low_quality_fraction = 0;
  std::map<int, Seconds> time_by_height;  ///< height -> displayed seconds

  int switch_count = 0;
  int nonconsecutive_switch_count = 0;

  Bytes media_bytes = 0;   ///< media payload received (aborted included)
  Bytes total_bytes = 0;   ///< everything, manifests included
  Bytes wasted_bytes = 0;  ///< downloads that never rendered

  std::vector<DisplayedSegment> displayed;

  /// Fraction of displayed time at or below `height`.
  double fraction_at_or_below(int height) const;
};

QoeReport compute_qoe(const AnalyzedTraffic& traffic, const UiInference& ui,
                      Seconds session_end, const QoeOptions& options = {});

/// Scalar QoE score following the subjective-study shape the paper cites
/// ([35], Liu et al.): bitrate utility is *concave* — going from 300 kbps to
/// 600 kbps helps far more than 3 Mbps to 3.3 Mbps — while stalls, startup
/// delay and track switches subtract linearly. Unitless; only comparisons
/// between sessions of the same content are meaningful.
struct QoeScoreWeights {
  Bps reference_bitrate = 300e3;  ///< utility zero-point
  double stall_penalty = 6.0;     ///< per fraction of session stalled
  double startup_penalty = 0.05;  ///< per second of startup delay
  double switch_penalty = 0.03;   ///< per switch per displayed minute
};

double qoe_score(const QoeReport& report, Seconds session_length,
                 const QoeScoreWeights& weights = {});

}  // namespace vodx::core
