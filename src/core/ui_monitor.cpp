#include "core/ui_monitor.h"

#include <algorithm>

#include "common/error.h"

namespace vodx::core {

void UiMonitor::on_progress(Seconds wall, int progress) {
  samples_.push_back({wall, progress});
}

Seconds UiInference::position_at(Seconds wall) const {
  if (samples.empty()) return 0;
  auto it = std::upper_bound(
      samples.begin(), samples.end(), wall,
      [](Seconds value, const ProgressSample& s) { return value < s.wall; });
  if (it == samples.begin()) return 0;
  return static_cast<Seconds>(std::prev(it)->progress);
}

UiInference UiMonitor::infer(Seconds session_start) const {
  UiInference out;
  out.samples = samples_;

  // Startup: the progress first reaching 1 means one second of video has
  // rendered, so playback began ~1 s earlier.
  Seconds playback_began = -1;
  for (const ProgressSample& s : samples_) {
    if (s.progress >= 1) {
      playback_began = s.wall - static_cast<Seconds>(s.progress);
      break;
    }
  }
  if (playback_began < 0) return out;  // never started
  out.startup_delay = playback_began - session_start;

  // Stalls: while playing, progress advances one per 1 Hz sample. A run of
  // repeated values of length k means ~k-1 seconds without rendering.
  bool in_stall = false;
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    const ProgressSample& prev = samples_[i - 1];
    const ProgressSample& cur = samples_[i];
    // Stall detection only makes sense once rendering has visibly begun
    // (progress >= 1); earlier repeats are just the startup phase.
    if (prev.progress < 1) continue;
    if (cur.progress == prev.progress) {
      if (!in_stall) {
        out.stalls.push_back({prev.wall, cur.wall});
        in_stall = true;
      } else {
        out.stalls.back().end = cur.wall;
      }
    } else {
      in_stall = false;
    }
  }
  for (const InferredStall& s : out.stalls) out.total_stall += s.duration();
  return out;
}

}  // namespace vodx::core
