#include "batch/report.h"

#include <algorithm>

#include "common/strings.h"
#include "common/table.h"
#include "obs/export.h"

namespace vodx::batch {

namespace {

Rollup& rollup_for(std::vector<Rollup>& rollups, const std::string& key) {
  for (Rollup& rollup : rollups) {
    if (rollup.key == key) return rollup;
  }
  rollups.push_back(Rollup{key, 0, {}});
  return rollups.back();
}

void fold(Rollup& rollup, const obs::MetricsSnapshot& snapshot) {
  rollup.metrics.merge_from(snapshot);
  ++rollup.cells;
}

// --- Headline columns ------------------------------------------------------
//
// Rollup snapshots are generic bags of metrics; the per-dimension tables
// pull out the headline subset every instrumented session registers. A
// metric a dimension never saw renders as "-" (e.g. faults.injected on a
// fault-free sweep).

std::string counter_cell(const obs::MetricsSnapshot& snapshot,
                         const char* name) {
  const obs::MetricsSnapshot::Entry* entry = snapshot.find(name);
  if (entry == nullptr) return "-";
  return format("%lld", static_cast<long long>(entry->count));
}

std::string counter_mb_cell(const obs::MetricsSnapshot& snapshot,
                            const char* name) {
  const obs::MetricsSnapshot::Entry* entry = snapshot.find(name);
  if (entry == nullptr) return "-";
  return format("%.1f", static_cast<double>(entry->count) / 1e6);
}

std::string histogram_p50_cell(const obs::MetricsSnapshot& snapshot,
                               const char* name) {
  const obs::MetricsSnapshot::Entry* entry = snapshot.find(name);
  if (entry == nullptr || entry->count == 0) return "-";
  return format("%.2f", entry->p50);
}

const std::vector<std::string>& headline_header() {
  static const std::vector<std::string> header = {
      "key",       "cells",     "stalls",       "switches",
      "MB",        "wasted_MB", "fetch_fail",   "faults",
      "goodput_p50"};
  return header;
}

std::vector<std::string> headline_row(const Rollup& rollup) {
  const obs::MetricsSnapshot& m = rollup.metrics;
  return {rollup.key,
          std::to_string(rollup.cells),
          counter_cell(m, "session.stalls"),
          counter_cell(m, "session.switches"),
          counter_mb_cell(m, "session.total_bytes"),
          counter_mb_cell(m, "session.wasted_bytes"),
          counter_cell(m, "player.fetch_failures"),
          counter_cell(m, "faults.injected"),
          histogram_p50_cell(m, "tcp.goodput_mbps")};
}

struct Dimension {
  const char* title;
  const char* scope;  ///< JSONL "scope" value
  const std::vector<Rollup>* rollups;
};

std::vector<Dimension> dimensions(const SweepMetrics& metrics) {
  return {{"by service", "service", &metrics.by_service},
          {"by profile", "profile", &metrics.by_profile},
          {"by fault", "fault", &metrics.by_fault}};
}

std::string html_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

void append_html_table(std::string& out,
                       const std::vector<std::string>& header,
                       const std::vector<std::vector<std::string>>& rows) {
  out += "<table><tr>";
  for (const std::string& cell : header) {
    out += "<th>" + html_escape(cell) + "</th>";
  }
  out += "</tr>\n";
  for (const std::vector<std::string>& row : rows) {
    out += "<tr>";
    for (const std::string& cell : row) {
      out += "<td>" + html_escape(cell) + "</td>";
    }
    out += "</tr>\n";
  }
  out += "</table>\n";
}

std::vector<std::vector<std::string>> overall_rows(
    const obs::MetricsSnapshot& snapshot) {
  std::vector<std::vector<std::string>> rows;
  for (const obs::MetricsSnapshot::Entry& entry : snapshot.entries) {
    switch (entry.type) {
      case obs::MetricsSnapshot::Type::kCounter:
        rows.push_back({entry.name, "counter",
                        format("%lld", static_cast<long long>(entry.count)),
                        "-", "-", "-", "-", "-", "-"});
        break;
      case obs::MetricsSnapshot::Type::kGauge:
        rows.push_back({entry.name, "gauge", "-",
                        format("%.3f", entry.value), "-", "-", "-", "-",
                        "-"});
        break;
      case obs::MetricsSnapshot::Type::kHistogram:
        rows.push_back({entry.name, "histogram",
                        format("%lld", static_cast<long long>(entry.count)),
                        format("%.3f", entry.value),
                        format("%.3f", entry.mean),
                        format("%.3f", entry.p50), format("%.3f", entry.p90),
                        format("%.3f", entry.p99),
                        format("%.3f", entry.max)});
        break;
    }
  }
  return rows;
}

}  // namespace

SweepMetrics aggregate_metrics(const SweepResult& result) {
  SweepMetrics out;
  out.overall.key = "overall";
  out.total_cells = static_cast<int>(result.cells.size());
  out.failed = result.failed;
  out.quarantined = result.quarantined;
  for (const CellResult& cell : result.cells) {
    if (cell.quarantined) {
      out.quarantined_cells.push_back(
          format("%s: %s", cell.coordinates().c_str(), cell.error.c_str()));
    }
    if (cell.trace_dropped > 0) {
      out.trace_dropped += cell.trace_dropped;
      out.dropped_cells.push_back(format(
          "%s: trace ring dropped %llu of %llu events",
          cell.coordinates().c_str(),
          static_cast<unsigned long long>(cell.trace_dropped),
          static_cast<unsigned long long>(cell.trace_emitted)));
    }
    if (!cell.has_metrics) continue;
    fold(out.overall, cell.metrics);
    fold(rollup_for(out.by_service, cell.service), cell.metrics);
    fold(rollup_for(out.by_profile, format("profile %d", cell.profile_id)),
         cell.metrics);
    fold(rollup_for(out.by_fault, cell.fault), cell.metrics);
  }
  return out;
}

std::string report_text(const SweepMetrics& metrics) {
  // The quarantine clause only appears when non-zero, so quarantine-free
  // reports stay byte-identical to the historical format (golden-pinned).
  std::string failure_clause = format("%d failed", metrics.failed);
  if (metrics.quarantined > 0) {
    failure_clause += format(", %d quarantined", metrics.quarantined);
  }
  std::string out = format(
      "sweep metrics: %d cells (%s), %d merged\n\n== overall ==\n",
      metrics.total_cells, failure_clause.c_str(), metrics.overall.cells);
  out += obs::metrics_table(metrics.overall.metrics).render();
  if (!metrics.quarantined_cells.empty()) {
    out += "\n== quarantined ==\n";
    for (const std::string& line : metrics.quarantined_cells) {
      out += format("QUARANTINED %s\n", line.c_str());
    }
  }
  // Like the quarantine section: only rendered when something was actually
  // dropped, so clean sweeps keep the golden-pinned byte layout.
  if (!metrics.dropped_cells.empty()) {
    out += "\n== warnings ==\n";
    for (const std::string& line : metrics.dropped_cells) {
      out += format("WARNING %s — trace-derived analyses are partial\n",
                    line.c_str());
    }
  }
  for (const Dimension& dim : dimensions(metrics)) {
    out += format("\n== %s ==\n", dim.title);
    Table table(headline_header());
    for (const Rollup& rollup : *dim.rollups) {
      table.add_row(headline_row(rollup));
    }
    out += table.render();
  }
  return out;
}

std::string report_jsonl(const SweepResult& result,
                         const SweepMetrics& metrics) {
  std::string out =
      format("{\"scope\":\"sweep\",\"cells\":%d,\"failed\":%d,"
             "\"quarantined\":%d,\"merged\":%d}\n",
             metrics.total_cells, metrics.failed, metrics.quarantined,
             metrics.overall.cells);
  for (const CellResult& cell : result.cells) {
    out += format(
        "{\"scope\":\"cell\",\"service\":\"%s\",\"profile\":%d,"
        "\"seed\":%llu,\"fault\":\"%s\",\"ok\":%s",
        obs::json_escape(cell.service).c_str(), cell.profile_id,
        static_cast<unsigned long long>(cell.seed),
        obs::json_escape(cell.fault).c_str(), cell.ok ? "true" : "false");
    if (cell.quarantined) out += ",\"quarantined\":true";
    if (cell.trace_dropped > 0) {
      out += format(",\"trace_dropped\":%llu",
                    static_cast<unsigned long long>(cell.trace_dropped));
    }
    if (cell.has_metrics) {
      out += ",\"snapshot\":" + obs::metrics_json(cell.metrics);
    }
    out += "}\n";
  }
  for (const Dimension& dim : dimensions(metrics)) {
    for (const Rollup& rollup : *dim.rollups) {
      out += format("{\"scope\":\"%s\",\"key\":\"%s\",\"cells\":%d,"
                    "\"snapshot\":",
                    dim.scope, obs::json_escape(rollup.key).c_str(),
                    rollup.cells);
      out += obs::metrics_json(rollup.metrics);
      out += "}\n";
    }
  }
  out += format("{\"scope\":\"overall\",\"key\":\"overall\",\"cells\":%d,"
                "\"snapshot\":",
                metrics.overall.cells);
  out += obs::metrics_json(metrics.overall.metrics);
  out += "}\n";
  return out;
}

std::string report_html(const SweepMetrics& metrics) {
  std::string out =
      "<!doctype html><html><head><meta charset=\"utf-8\">"
      "<title>vodx sweep report</title><style>\n"
      "body{font:14px/1.4 system-ui,sans-serif;margin:2em;color:#222}\n"
      "h1{font-size:1.4em}h2{font-size:1.1em;margin-top:1.5em}\n"
      "table{border-collapse:collapse;margin:.5em 0}\n"
      "th,td{border:1px solid #ccc;padding:3px 9px;text-align:right;"
      "font-variant-numeric:tabular-nums}\n"
      "th{background:#f0f0f0}\n"
      "th:first-child,td:first-child{text-align:left;font-family:monospace}\n"
      "</style></head><body>\n";
  out += format("<h1>vodx sweep report</h1>\n"
                "<p>%d cells (%d failed, %d quarantined), %d merged into "
                "the rollups below.</p>\n",
                metrics.total_cells, metrics.failed, metrics.quarantined,
                metrics.overall.cells);
  if (!metrics.quarantined_cells.empty()) {
    out += "<h2>quarantined</h2>\n<ul>\n";
    for (const std::string& line : metrics.quarantined_cells) {
      out += "<li>QUARANTINED " + html_escape(line) + "</li>\n";
    }
    out += "</ul>\n";
  }
  if (!metrics.dropped_cells.empty()) {
    out += "<h2>warnings</h2>\n<ul>\n";
    for (const std::string& line : metrics.dropped_cells) {
      out += "<li>WARNING " + html_escape(line) +
             " — trace-derived analyses are partial</li>\n";
    }
    out += "</ul>\n";
  }
  out += "<h2>overall</h2>\n";
  append_html_table(out,
                    {"metric", "type", "count", "value", "mean", "p50",
                     "p90", "p99", "max"},
                    overall_rows(metrics.overall.metrics));
  for (const Dimension& dim : dimensions(metrics)) {
    out += format("<h2>%s</h2>\n", dim.title);
    std::vector<std::vector<std::string>> rows;
    for (const Rollup& rollup : *dim.rollups) {
      rows.push_back(headline_row(rollup));
    }
    append_html_table(out, headline_header(), rows);
  }
  out += "</body></html>\n";
  return out;
}

}  // namespace vodx::batch
