#include "batch/thread_pool.h"

#include <atomic>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>

namespace vodx::batch {

int resolve_jobs(int jobs) {
  if (jobs >= 1) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void parallel_for(std::size_t count, int jobs,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  const int workers =
      static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(resolve_jobs(jobs)), count));
  if (workers <= 1) {
    // Inline path: -j 1 must behave exactly like the parallel path minus the
    // threads, so exceptions propagate from the lowest failing index too.
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> cursor{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::size_t first_error_index = std::numeric_limits<std::size_t>::max();

  auto worker = [&] {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (i < first_error_index) {
          first_error_index = i;
          first_error = std::current_exception();
        }
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers) - 1);
  for (int t = 1; t < workers; ++t) threads.emplace_back(worker);
  worker();
  for (std::thread& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace vodx::batch
