#include "batch/sweep.h"

#include <algorithm>
#include <mutex>

#include "batch/thread_pool.h"
#include "net/simulator.h"
#include "common/strings.h"
#include "obs/profiler.h"
#include "core/qoe.h"
#include "core/report.h"
#include "core/session_factory.h"
#include "faults/fault_plan.h"

namespace vodx::batch {

namespace {

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t a, std::uint64_t b,
                          std::uint64_t c) {
  std::uint64_t x = base;
  x = mix64(x ^ (a + 0x9E3779B97F4A7C15ULL));
  x = mix64(x ^ (b + 0xD1B54A32D192ED03ULL));
  x = mix64(x ^ (c + 0x8CB92BA72F3D8DD7ULL));
  return x;
}

std::uint64_t trace_seed_for(std::uint64_t sweep_seed) {
  if (sweep_seed == 0) return kLegacyTraceSeed;
  return derive_seed(kLegacyTraceSeed, sweep_seed, /*b=*/1);
}

std::uint64_t content_seed_for(std::uint64_t sweep_seed) {
  if (sweep_seed == 0) return kLegacyContentSeed;
  return derive_seed(kLegacyContentSeed, sweep_seed, /*b=*/2);
}

std::uint64_t fault_seed_for(std::uint64_t sweep_seed, int service_index,
                             int profile_index, int fault_index) {
  // Chained so the fault schedule decorrelates across *all* coordinates:
  // the same scenario on a neighbouring profile draws a different schedule.
  return derive_seed(derive_seed(sweep_seed, /*a=*/3),
                     static_cast<std::uint64_t>(service_index),
                     static_cast<std::uint64_t>(profile_index),
                     static_cast<std::uint64_t>(fault_index));
}

std::string CellResult::coordinates() const {
  std::string out =
      format("(%s, profile %d, seed %llu", service.c_str(), profile_id,
             static_cast<unsigned long long>(seed));
  if (fault != "none") out += format(", fault %s", fault.c_str());
  if (origin != "none") out += format(", origin %s", origin.c_str());
  return out + ")";
}

SweepResult run_sweep(const SweepConfig& config) {
  const std::size_t n_services = config.services.size();
  const std::size_t n_profiles = config.profiles.size();
  const std::size_t n_seeds = config.seeds.size();
  const std::size_t n_faults = config.fault_scenarios.size();
  const std::size_t n_origins = config.origin_modes.size();
  const std::size_t total =
      n_services * n_profiles * n_seeds * n_faults * n_origins;

  SweepResult out;
  out.cells.resize(total);
  if (total == 0) return out;

  // Touch every immutable-after-init shared input on this thread, before any
  // worker exists: the service catalog's magic static and the profile-mean
  // table. Cells never mutate these; warming them here removes even the
  // benign first-use races from the TSan picture.
  services::catalog();
  for (int id : config.profiles) {
    if (id >= 1 && id <= trace::kProfileCount) trace::profile_mean(id);
  }

  // One observer per cell when requested, allocated up front so a worker
  // only ever touches the observer owned by its claimed index. Metrics-only
  // collection keeps the event ring off: counters and histograms are what
  // the aggregation layer folds, and tracing every cell of a large grid
  // would dominate the run's memory.
  std::vector<std::unique_ptr<obs::Observer>> observers;
  if (config.observe || config.collect_metrics) {
    observers.resize(total);
    for (auto& o : observers) {
      o = std::make_unique<obs::Observer>();
      if (!config.observe) o->trace.set_enabled(false);
    }
  }

  // One construction path for every cell: the shared knobs are threaded
  // into the factory once, here, and never per cell.
  core::SessionFactory factory;
  factory.session_duration = config.session_duration;
  factory.content_duration = config.content_duration;
  factory.qoe_options = config.qoe_options;
  factory.sim_core = config.sim_core;
  factory.wall_budget = config.cell_wall_budget;
  factory.max_events_per_instant = config.cell_max_events_per_instant;

  std::mutex progress_mutex;
  std::size_t done = 0;

  parallel_for(total, config.jobs, [&](std::size_t index) {
    VODX_PROFILE_ZONE("sweep.cell");
    const std::size_t per_service = n_profiles * n_seeds * n_faults * n_origins;
    const std::size_t per_profile = n_seeds * n_faults * n_origins;
    const std::size_t per_seed = n_faults * n_origins;
    CellResult& cell = out.cells[index];
    cell.cell.service_index = static_cast<int>(index / per_service);
    cell.cell.profile_index =
        static_cast<int>((index % per_service) / per_profile);
    cell.cell.seed_index =
        static_cast<int>((index % per_profile) / per_seed);
    cell.cell.fault_index = static_cast<int>((index % per_seed) / n_origins);
    cell.cell.origin_index = static_cast<int>(index % n_origins);

    const services::ServiceSpec& spec =
        config.services[static_cast<std::size_t>(cell.cell.service_index)];
    cell.service = spec.name;
    cell.profile_id =
        config.profiles[static_cast<std::size_t>(cell.cell.profile_index)];
    cell.seed = config.seeds[static_cast<std::size_t>(cell.cell.seed_index)];
    cell.fault = config.fault_scenarios[static_cast<std::size_t>(
        cell.cell.fault_index)];
    cell.origin = config.origin_modes[static_cast<std::size_t>(
        cell.cell.origin_index)];

    // A config-rejected cell never enters the attempt loop: the error is
    // deterministic and must count zero attempts.
    bool profile_ok = true;
    try {
      core::SessionFactory::validate_profile(cell.profile_id);
    } catch (const std::exception& e) {
      cell.error = e.what();
      profile_ok = false;
    }
    if (profile_ok) {
      // Self-healing attempt loop: watchdog aborts (wall budget, event
      // livelock) get a bounded number of fresh attempts; any other failure
      // is deterministic and fails the cell immediately. A cell that burns
      // every attempt is quarantined, not dropped.
      const int max_attempts = 1 + std::max(0, config.cell_retries);
      for (int attempt = 0; attempt < max_attempts; ++attempt) {
        ++cell.attempts;
        try {
          core::SessionConfig session =
              factory.config(spec, cell.profile_id, trace_seed_for(cell.seed),
                             content_seed_for(cell.seed));
          if (cell.fault != "none") {
            // Unknown scenario names throw ConfigError here and become a
            // per-cell failure with coordinates, like a bad profile id.
            faults::FaultPlan plan = faults::scenario(cell.fault);
            plan.seed = fault_seed_for(cell.seed, cell.cell.service_index,
                                       cell.cell.profile_index,
                                       cell.cell.fault_index);
            session.fault_plan = std::move(plan);
          }
          if (cell.origin != "none") {
            // Unknown modes throw ConfigError like unknown scenarios; the
            // jitter seed decorrelates across coordinates the same way the
            // fault seed does.
            session.origin = origin::preset(origin::parse_mode(cell.origin));
            session.origin.seed = derive_seed(
                derive_seed(cell.seed, /*a=*/4),
                static_cast<std::uint64_t>(cell.cell.service_index),
                static_cast<std::uint64_t>(cell.cell.profile_index),
                static_cast<std::uint64_t>(cell.cell.origin_index));
          }
          if (config.prepare) config.prepare(cell.cell, session);
          if (!observers.empty()) {
            // A retry must not fold the aborted attempt's counters into the
            // final snapshot; give the cell a fresh observer.
            if (attempt > 0) {
              auto fresh = std::make_unique<obs::Observer>();
              if (!config.observe) fresh->trace.set_enabled(false);
              observers[index] = std::move(fresh);
            }
            session.observer = observers[index].get();
          }
          cell.result = core::run_session(session);
          cell.ok = true;
          cell.quarantined = false;
          cell.error.clear();
          if (!observers.empty()) {
            cell.metrics =
                observers[index]->metrics.snapshot(cell.result.session_end);
            cell.has_metrics = true;
            cell.trace_emitted = observers[index]->trace.emitted();
            cell.trace_dropped = observers[index]->trace.dropped();
          }
          break;
        } catch (const net::WatchdogError& e) {
          cell.error = e.what();
          cell.quarantined = true;  // stands unless a later attempt succeeds
        } catch (const std::exception& e) {
          cell.error = e.what();
          break;  // deterministic failure: retrying reproduces it
        }
      }
    }

    if (config.progress) {
      std::lock_guard<std::mutex> lock(progress_mutex);
      config.progress(cell, ++done, total);
    }
  });

  for (const CellResult& cell : out.cells) {
    if (!cell.ok) ++out.failed;
    if (cell.quarantined) ++out.quarantined;
    if (cell.attempts > 1) ++out.retried;
  }
  if (config.observe) {
    for (std::size_t i = 0; i < total; ++i) {
      config.observe(out.cells[i], *observers[i]);
    }
  }
  return out;
}

SweepConfig full_grid() {
  SweepConfig config;
  config.services = services::catalog();
  config.profiles = all_profile_ids();
  return config;
}

std::vector<int> all_profile_ids() {
  std::vector<int> ids;
  ids.reserve(trace::kProfileCount);
  for (int id = 1; id <= trace::kProfileCount; ++id) ids.push_back(id);
  return ids;
}

std::string sweep_csv(const SweepResult& result) {
  // Reuse the session CSV columns; the "label" column becomes the three
  // coordinate columns.
  std::string header = core::qoe_csv_header();
  const std::string label_prefix = "label,";
  if (starts_with(header, label_prefix)) header.erase(0, label_prefix.size());
  std::string out = "service,profile,seed,fault,origin," + header;
  for (const CellResult& cell : result.cells) {
    if (!cell.ok) continue;
    out += core::qoe_csv_row(
        format("%s,%d,%llu,%s,%s", cell.service.c_str(), cell.profile_id,
               static_cast<unsigned long long>(cell.seed), cell.fault.c_str(),
               cell.origin.c_str()),
        cell.result);
  }
  return out;
}

std::string sweep_jsonl(const SweepResult& result) {
  std::string out;
  for (const CellResult& cell : result.cells) {
    out += format(
        R"({"service":"%s","profile":%d,"seed":%llu,"fault":"%s",)"
        R"("origin":"%s",)",
        cell.service.c_str(), cell.profile_id,
        static_cast<unsigned long long>(cell.seed), cell.fault.c_str(),
        cell.origin.c_str());
    if (!cell.ok) {
      // Error text is free-form; escape the two characters that can break
      // a JSON string literal coming from our own error messages.
      std::string escaped;
      for (char c : cell.error) {
        if (c == '"' || c == '\\') escaped += '\\';
        escaped += c;
      }
      out += format(R"("ok":false,"quarantined":%s,"attempts":%d,)"
                    R"("error":"%s"})",
                    cell.quarantined ? "true" : "false", cell.attempts,
                    escaped.c_str());
    } else {
      const core::QoeReport& q = cell.result.qoe;
      out += format(
          R"("ok":true,"startup_delay_s":%.2f,"stall_count":%d,)"
          R"("stall_time_s":%.2f,"avg_declared_bitrate_bps":%.0f,)"
          R"("low_quality_fraction":%.4f,"switches":%d,)"
          R"("nonconsecutive_switches":%d,"media_bytes":%lld,)"
          R"("total_bytes":%lld,"wasted_bytes":%lld,"qoe_score":%.3f,)"
          R"("final_state":"%s","session_end_s":%.2f})",
          q.startup_delay, q.stall_count, q.total_stall,
          q.average_declared_bitrate, q.low_quality_fraction, q.switch_count,
          q.nonconsecutive_switch_count,
          static_cast<long long>(q.media_bytes),
          static_cast<long long>(q.total_bytes),
          static_cast<long long>(q.wasted_bytes),
          core::qoe_score(q, cell.result.session_end),
          player::to_string(cell.result.final_state),
          cell.result.session_end);
    }
    out += '\n';
  }
  return out;
}

}  // namespace vodx::batch
