// Fixed-size worker pool for deterministic fan-out.
//
// The pool runs an indexed loop body over N workers. Work is handed out
// through an atomic cursor, so which worker executes which index is
// scheduler-dependent — everything built on top of this must therefore key
// results (and RNG seeds) on the *index*, never on the executing thread.
// parallel_map() encodes that rule: results land in a pre-sized vector slot
// owned exclusively by their index, making output order independent of
// execution order.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace vodx::batch {

/// Resolves a user-facing job count: values >= 1 are honoured as-is, 0 means
/// "one per hardware thread" (and at least 1 when the runtime reports 0).
int resolve_jobs(int jobs);

/// Runs fn(0), fn(1), ..., fn(count-1) across `jobs` workers (resolved via
/// resolve_jobs) and blocks until every index has completed. Each index runs
/// exactly once. If any invocation throws, the exception raised by the
/// lowest index is rethrown after all workers have drained — deterministic
/// regardless of which worker hit it first.
void parallel_for(std::size_t count, int jobs,
                  const std::function<void(std::size_t)>& fn);

/// Maps fn over [0, count) preserving index order in the returned vector.
/// R must be default-constructible; slot i is written only by the worker
/// that claimed index i.
template <typename R>
std::vector<R> parallel_map(std::size_t count, int jobs,
                            const std::function<R(std::size_t)>& fn) {
  std::vector<R> out(count);
  parallel_for(count, jobs, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace vodx::batch
