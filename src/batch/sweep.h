// Deterministic parallel sweep engine.
//
// A sweep is the cross-product (service × cellular profile × sweep seed ×
// fault scenario) run through core::run_session, one independent simulation
// per cell. The engine guarantees:
//
//   * Determinism: a cell's entire RNG material (bandwidth-trace seed,
//     content seed) derives from the cell's coordinates and the sweep seed —
//     never from thread identity, scheduling order, or wall-clock time.
//   * Ordered aggregation: results are collected into grid order
//     (service-major, then profile, then seed), so serialized output from
//     `--jobs N` is byte-identical to `--jobs 1`.
//   * Isolation: every cell builds its own net::Simulator, origin, proxy,
//     player and (optionally) obs::Observer. Nothing mutable is shared
//     across cells; the only cross-thread state is the engine's own work
//     cursor. Shared inputs (services::catalog(), profile definitions) are
//     immutable after initialisation and are warmed before workers spawn.
//   * Failure containment: a cell that cannot run (bad profile id, config
//     error, session exception) yields a CellResult with ok=false and its
//     coordinates; the rest of the grid still runs.
//
// See DESIGN.md §8 for the full determinism contract.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/session.h"
#include "obs/observer.h"
#include "services/service_catalog.h"
#include "trace/cellular_profiles.h"

namespace vodx::batch {

/// The trace/content seeds the rest of the repo has always used; sweep seed
/// 0 maps to exactly these so a seed-0 sweep reproduces the historical
/// single-threaded harness output byte for byte.
inline constexpr std::uint64_t kLegacyTraceSeed = 2017;
inline constexpr std::uint64_t kLegacyContentSeed = 42;

/// Mixes a base seed with up to three coordinate tags (splitmix64
/// finalizer). Pure function of its arguments: same coordinates, same seed,
/// on any thread, in any order.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t a,
                          std::uint64_t b = 0, std::uint64_t c = 0);

/// The bandwidth-trace seed for sweep seed `s` (s == 0 -> kLegacyTraceSeed).
std::uint64_t trace_seed_for(std::uint64_t sweep_seed);

/// The content seed for sweep seed `s` (s == 0 -> kLegacyContentSeed).
std::uint64_t content_seed_for(std::uint64_t sweep_seed);

/// The FaultPlan seed for one cell: a pure function of the sweep seed and
/// the cell's grid coordinates, so every (service, profile, fault) cell
/// draws an independent but reproducible fault schedule.
std::uint64_t fault_seed_for(std::uint64_t sweep_seed, int service_index,
                             int profile_index, int fault_index);

/// Grid coordinates of one experiment cell (indices into SweepConfig's
/// services / profiles / seeds / fault_scenarios / origin_modes vectors).
struct Cell {
  int service_index = 0;
  int profile_index = 0;
  int seed_index = 0;
  int fault_index = 0;
  int origin_index = 0;
};

struct CellResult {
  Cell cell;
  std::string service;     ///< spec name (or the raw token if unresolvable)
  int profile_id = 0;      ///< 1-based profile id as requested
  std::uint64_t seed = 0;  ///< sweep seed value
  std::string fault = "none";   ///< fault scenario name
  std::string origin = "none";  ///< origin-tier mode name

  bool ok = false;
  std::string error;  ///< populated when !ok

  /// The cell kept failing its wall-time budget (net::WatchdogError) through
  /// every permitted retry and was quarantined. Quarantined cells are never
  /// silently dropped: they appear in sweep_jsonl, the grid report and the
  /// CLI table as explicit QUARANTINED rows. Implies !ok.
  bool quarantined = false;
  /// Session attempts actually made (1 on the happy path; up to
  /// 1 + cell_retries when the watchdog kept firing).
  int attempts = 0;

  core::SessionResult result;  ///< valid only when ok

  /// Per-cell metrics captured at session end (SweepConfig::collect_metrics
  /// or an observe callback). Deterministic, so merging these in grid order
  /// (batch/report.h) is byte-identical at any `jobs`.
  bool has_metrics = false;
  obs::MetricsSnapshot metrics;

  /// Trace ring accounting at session end (zeros when the cell ran without
  /// an observer or with tracing off). trace_dropped > 0 means the cell's
  /// event window is truncated and trace-derived analyses (diag) are
  /// working from partial evidence; the report renders it as a warning.
  std::uint64_t trace_emitted = 0;
  std::uint64_t trace_dropped = 0;

  /// "(H1, profile 7, seed 0)" — the coordinate string used in diagnostics;
  /// ", fault <name>" / ", origin <mode>" are appended when non-trivial.
  std::string coordinates() const;
};

struct SweepConfig {
  std::vector<services::ServiceSpec> services;
  std::vector<int> profiles;               ///< 1-based Fig.-3 profile ids
  std::vector<std::uint64_t> seeds = {0};  ///< 0 = paper-default seeds

  /// Fault scenarios by catalog name (faults::scenario()); "none" runs the
  /// cell without a fault plan. The default single-entry vector leaves the
  /// legacy grid order untouched.
  std::vector<std::string> fault_scenarios = {"none"};

  /// Origin-tier modes ("none" | "naive" | "hardened",
  /// origin::parse_mode()); the innermost axis, inside fault. "none" runs
  /// the plain single-origin path, so the default vector multiplies the
  /// grid by exactly 1 and changes nothing.
  std::vector<std::string> origin_modes = {"none"};

  Seconds session_duration = 600;
  Seconds content_duration = 600;
  core::QoeOptions qoe_options;

  /// Worker threads; 0 = one per hardware thread. Output is identical for
  /// every value.
  int jobs = 1;

  /// Simulator core every cell runs on (forwarded to SessionConfig). The
  /// event core and the fixed-tick reference produce identical cells by
  /// contract; the differential test harness sweeps both and compares.
  net::SimCore sim_core = net::SimCore::kEvent;

  /// Capture a per-cell MetricsSnapshot into CellResult::metrics. Each cell
  /// gets its own registry (event tracing stays off unless `observe` is also
  /// set); snapshots are taken in the worker at session end, which is safe —
  /// the cell owns its observer — and deterministic.
  bool collect_metrics = false;

  /// When set, each cell runs with its own obs::Observer and the callback is
  /// invoked once per cell *after* the whole grid has finished, in grid
  /// order (single-threaded, deterministic).
  std::function<void(const CellResult&, const obs::Observer&)> observe;

  /// Optional completion ticker for progress display. Invoked from worker
  /// threads (serialized by the engine) in *completion* order, which is not
  /// deterministic — do not derive results from it.
  std::function<void(const CellResult&, std::size_t done, std::size_t total)>
      progress;

  // --- Self-healing (vodx::chaos) ---------------------------------------
  /// Wall-clock budget per cell *attempt* in seconds (0 = unlimited). A
  /// cell that exhausts it is aborted via net::WatchdogError instead of
  /// hanging the whole sweep. Abort-only: a cell that finishes within
  /// budget is untouched, so determinism of successful output holds.
  Seconds cell_wall_budget = 0;
  /// Bound on events fired at one simulated instant per cell (0 = off);
  /// deterministic livelock detector, forwarded to SessionConfig.
  std::uint64_t cell_max_events_per_instant = 0;
  /// Extra attempts after a watchdog abort before the cell is quarantined.
  /// Only watchdog aborts are retried — deterministic failures (bad config,
  /// session exceptions) would fail identically again.
  int cell_retries = 1;
  /// Test/instrumentation hook: runs on the worker right before each cell
  /// attempt, after the engine has filled the SessionConfig. Lets tests
  /// sabotage one coordinate deterministically (e.g. inflate a cell's
  /// duration so its wall budget trips). Must be thread-safe.
  std::function<void(const Cell&, core::SessionConfig&)> prepare;
};

struct SweepResult {
  std::vector<CellResult> cells;  ///< grid order, one per cell
  int failed = 0;                 ///< number of cells with ok == false
  int quarantined = 0;            ///< subset of failed: watchdog quarantines
  int retried = 0;                ///< cells that needed more than one attempt
};

/// Expands the grid and runs every cell, honouring the guarantees above.
SweepResult run_sweep(const SweepConfig& config);

/// All 12 catalog services × all 14 profiles × seed 0 with paper-default
/// durations — the full-artefact sweep.
SweepConfig full_grid();

/// {1, 2, ..., trace::kProfileCount}.
std::vector<int> all_profile_ids();

/// CSV of all successful cells in grid order:
/// "service,profile,seed,fault,origin," + the core QoE columns. Byte-stable
/// across job counts and repeat runs.
std::string sweep_csv(const SweepResult& result);

/// One JSON object per cell (including failed cells, which carry an
/// "error" member instead of metrics), grid order, byte-stable.
std::string sweep_jsonl(const SweepResult& result);

}  // namespace vodx::batch
