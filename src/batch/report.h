// Cross-run metric aggregation and report rendering.
//
// A sweep run with SweepConfig::collect_metrics leaves one MetricsSnapshot
// per cell; aggregate_metrics folds them — in grid order, so the result is
// byte-identical at any --jobs — into an overall rollup plus per-service,
// per-profile and per-fault-scenario rollups (keys in first-appearance grid
// order). The renderers turn that into the three shapes people actually
// consume: a terminal text report, machine-readable JSONL (per-cell lines
// included), and a single-file HTML summary.
#pragma once

#include <string>
#include <vector>

#include "batch/sweep.h"

namespace vodx::batch {

/// One aggregation bucket: every merged cell shares `key`.
struct Rollup {
  std::string key;
  int cells = 0;  ///< successful cells folded into `metrics`
  obs::MetricsSnapshot metrics;
};

struct SweepMetrics {
  int total_cells = 0;
  int failed = 0;
  int quarantined = 0;  ///< subset of failed: wall-budget quarantines
  /// "(<coords>): <error>" per quarantined cell, grid order — rendered as
  /// explicit QUARANTINED rows so a quarantine is never silently dropped.
  std::vector<std::string> quarantined_cells;
  /// Total trace-ring drops across all cells, plus one formatted line per
  /// affected cell (grid order). Non-empty means some cells' event windows
  /// were truncated, so trace-derived analyses (diag) saw partial evidence;
  /// the text/HTML reports render these as explicit WARNING rows.
  std::uint64_t trace_dropped = 0;
  std::vector<std::string> dropped_cells;
  Rollup overall;                  ///< key "overall"
  std::vector<Rollup> by_service;  ///< spec name, grid order
  std::vector<Rollup> by_profile;  ///< "profile <id>", grid order
  std::vector<Rollup> by_fault;    ///< scenario name, grid order
};

/// Folds every successful cell's snapshot in grid order. Cells without
/// metrics (collect_metrics off, or failed cells) are skipped but still
/// counted in total_cells/failed.
SweepMetrics aggregate_metrics(const SweepResult& result);

/// Terminal report: header, the overall metrics table, then one headline
/// table per rollup dimension. Byte-stable for identical sweeps.
std::string report_text(const SweepMetrics& metrics);

/// One JSON object per line: a sweep header, each cell's snapshot
/// ({"scope":"cell",...}), then each rollup ({"scope":"service",...} /
/// "profile" / "fault" / "overall"). Byte-stable.
std::string report_jsonl(const SweepResult& result,
                         const SweepMetrics& metrics);

/// Self-contained HTML page (inline CSS, no external assets) with the same
/// content as report_text, as real tables.
std::string report_html(const SweepMetrics& metrics);

}  // namespace vodx::batch
