// The observability context handed through the stack.
//
// One Observer per session bundles the event trace and the metrics registry.
// Every instrumented layer (simulator, link, TCP, HTTP client, player,
// session runner) holds a nullable Observer*; a null observer means
// observability is compiled in but fully off — the only cost on any hot path
// is one pointer test (see trace_on below).
#pragma once

#include "obs/metrics.h"
#include "obs/trace_sink.h"

namespace vodx::obs {

struct Observer {
  explicit Observer(std::size_t trace_capacity = 1 << 16)
      : trace(trace_capacity) {}

  TraceSink trace;
  MetricsRegistry metrics;
};

/// The guard every emission site uses. Inline and branch-predictable: null
/// observer (the default) or a masked category costs a test-and-branch,
/// and no event fields are constructed.
inline bool trace_on(const Observer* observer, Category category) {
  return observer != nullptr && observer->trace.enabled(category);
}

/// Guard for metrics-only updates (counters on hot paths).
inline bool metrics_on(const Observer* observer) { return observer != nullptr; }

}  // namespace vodx::obs
