#include "obs/trace_sink.h"

#include <algorithm>

#include "common/error.h"

namespace vodx::obs {

const char* to_string(Category category) {
  switch (category) {
    case Category::kSim: return "sim";
    case Category::kLink: return "link";
    case Category::kTcp: return "tcp";
    case Category::kHttp: return "http";
    case Category::kPlayer: return "player";
    case Category::kAbr: return "abr";
    case Category::kSession: return "session";
    case Category::kFault: return "fault";
    case Category::kOrigin: return "origin";
  }
  return "?";
}

TraceSink::TraceSink(std::size_t capacity) : capacity_(capacity) {
  ring_.reserve(std::min<std::size_t>(capacity, 1024));
}

int TraceSink::track(const std::string& name) {
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i] == name) return static_cast<int>(i);
  }
  tracks_.push_back(name);
  return static_cast<int>(tracks_.size()) - 1;
}

void TraceSink::emit(Event event) {
  event.seq = emitted_++;
  if (capacity_ == 0) {
    // A zero-capacity ring retains nothing but still counts: emitted() and
    // dropped() stay exact so exporters can report the truncation.
    ++dropped_;
    return;
  }
  if (count_ < capacity_) {
    ring_.push_back(std::move(event));
    ++count_;
    next_ = count_ % capacity_;
    return;
  }
  ring_[next_] = std::move(event);
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

void TraceSink::instant(Seconds time, Category category, const char* name,
                        int track, std::vector<Field> fields) {
  Event event;
  event.sim_time = time;
  event.category = category;
  event.kind = EventKind::kInstant;
  event.name = name;
  event.track = track;
  event.fields = std::move(fields);
  emit(std::move(event));
}

void TraceSink::begin(Seconds time, Category category, const char* name,
                      int track, std::vector<Field> fields) {
  Event event;
  event.sim_time = time;
  event.category = category;
  event.kind = EventKind::kSpanBegin;
  event.name = name;
  event.track = track;
  event.fields = std::move(fields);
  emit(std::move(event));
}

void TraceSink::end(Seconds time, Category category, const char* name,
                    int track, std::vector<Field> fields) {
  Event event;
  event.sim_time = time;
  event.category = category;
  event.kind = EventKind::kSpanEnd;
  event.name = name;
  event.track = track;
  event.fields = std::move(fields);
  emit(std::move(event));
}

void TraceSink::counter(Seconds time, Category category, const char* name,
                        int track, double value) {
  Event event;
  event.sim_time = time;
  event.category = category;
  event.kind = EventKind::kCounter;
  event.name = name;
  event.track = track;
  event.fields.push_back(Field::n("value", value));
  emit(std::move(event));
}

std::vector<Event> TraceSink::snapshot() const {
  std::vector<Event> out;
  out.reserve(count_);
  for_each([&out](const Event& event) { out.push_back(event); });
  return out;
}

void TraceSink::for_each(const std::function<void(const Event&)>& fn) const {
  if (count_ < capacity_) {
    for (std::size_t i = 0; i < count_; ++i) fn(ring_[i]);
    return;
  }
  // Full ring: oldest is the slot the next event would overwrite.
  for (std::size_t i = 0; i < capacity_; ++i) {
    fn(ring_[(next_ + i) % capacity_]);
  }
}

// Drops the retained window only; emitted()/dropped() are lifetime totals
// (seq stays monotonic across a clear, so merged exports remain ordered).
void TraceSink::clear() {
  ring_.clear();
  next_ = 0;
  count_ = 0;
}

ScopedSpan::ScopedSpan(TraceSink* sink, Category category, const char* name,
                       int track, Seconds begin_time,
                       std::vector<Field> fields)
    : category_(category), name_(name), track_(track),
      begin_time_(begin_time) {
  if (sink == nullptr || !sink->enabled(category)) return;
  sink_ = sink;
  sink_->begin(begin_time, category, name, track, std::move(fields));
}

ScopedSpan::~ScopedSpan() {
  if (sink_ == nullptr) return;
  const Seconds end_time = std::max(begin_time_, sink_->now());
  sink_->end(end_time, category_, name_, track_);
}

}  // namespace vodx::obs
