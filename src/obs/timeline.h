// Mergeable fixed-interval time series.
//
// MetricsSnapshot answers "how much, in total"; a Timeline answers "how much,
// when" at a fixed bin width — the shape of everything the paper reads off
// the 1 Hz seekbar channel and the per-request traffic logs. Like
// MetricsSnapshot it is a *mergeable value type*: per-bin values fold
// elementwise under a per-series fold kind (kSum for counters and
// across-tower gauges, kMax for peaks), the fold is associative and
// commutative, and a default-constructed Timeline is its identity — so
// folding per-tower timelines post-join in tower order yields a population
// timeline that is byte-identical at any --jobs value (the same determinism
// contract as DESIGN.md §8).
//
// Bin convention: bin k covers [k * bin_width, (k+1) * bin_width); a sample
// stamped exactly on a bin boundary belongs to the bin that *starts* there
// (bin_index is floor with a 1e-9 forgiveness for float-accumulated
// timestamps). Timelines merged together must agree on bin_width; bin counts
// may differ — the shorter operand is padded with the fold identity (0; all
// recorded values are non-negative by contract, so 0 is the identity for
// kMax too).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/units.h"

namespace vodx::obs {

class Timeline {
 public:
  /// How two bins of the same series combine under merge.
  enum class Fold {
    kSum,  ///< counters and summable gauges (concurrency adds across towers)
    kMax,  ///< per-bin peaks
  };

  struct Series {
    std::string name;
    Fold fold = Fold::kSum;
    std::vector<double> bins;  ///< bin_count() entries
  };

  /// The merge identity: no bins, no series, unset bin width.
  Timeline() = default;
  /// `bin_width` > 0; `bin_count` >= 0.
  Timeline(Seconds bin_width, int bin_count);

  /// True for the merge identity (merging it changes nothing; merging into
  /// it adopts the other operand wholesale).
  bool empty() const { return bin_width_ <= 0 && series_.empty(); }

  Seconds bin_width() const { return bin_width_; }
  int bin_count() const { return bin_count_; }
  Seconds bin_start(int bin) const { return bin * bin_width_; }

  /// Bin holding time `t` under the boundary convention above, clamped into
  /// [0, bin_count() - 1]. Meaningless on an empty timeline (returns 0).
  int bin_index(Seconds t) const;

  /// Index of the named series, creating it (zero-filled) on first use.
  /// Re-requesting with a different fold kind throws ConfigError.
  int add_series(const std::string& name, Fold fold);

  /// Index of the named series, -1 when absent.
  int find(std::string_view name) const;

  const Series& series(int index) const { return series_[index]; }
  const std::vector<Series>& all() const { return series_; }

  double value(int index, int bin) const { return series_[index].bins[bin]; }
  /// Adds `delta` into the bin (kSum semantics regardless of fold kind —
  /// in-run accumulation is always additive).
  void add(int index, int bin, double delta) {
    series_[index].bins[bin] += delta;
  }
  /// Folds `v` into the bin under the series' own fold kind.
  void fold_value(int index, int bin, double v);
  void set(int index, int bin, double v) { series_[index].bins[bin] = v; }

  /// Folds `other` into this timeline (see the header comment): series are
  /// matched by name (fold kinds must agree; absent series are appended in
  /// `other`'s order), bins fold elementwise, the result's bin count is the
  /// max of the two. Throws ConfigError on a bin-width or fold-kind
  /// mismatch.
  void merge_from(const Timeline& other);

 private:
  Seconds bin_width_ = 0;
  int bin_count_ = 0;
  std::vector<Series> series_;
};

/// Convenience: a ⊕ b without mutating either operand.
Timeline merge(const Timeline& a, const Timeline& b);

/// Generic flat export: header "bin,t_start_s,<series...>", one row per bin,
/// values rendered %.6g. Byte-stable.
std::string timeline_csv(const Timeline& timeline);

/// One JSON object per bin, same fields as the CSV. Byte-stable.
std::string timeline_jsonl(const Timeline& timeline);

}  // namespace vodx::obs
