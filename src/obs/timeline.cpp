#include "obs/timeline.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/strings.h"

namespace vodx::obs {

Timeline::Timeline(Seconds bin_width, int bin_count)
    : bin_width_(bin_width), bin_count_(bin_count) {
  VODX_ASSERT(bin_width > 0, "timeline bin width must be positive");
  VODX_ASSERT(bin_count >= 0, "timeline bin count must be non-negative");
}

int Timeline::bin_index(Seconds t) const {
  if (bin_width_ <= 0 || bin_count_ <= 0) return 0;
  // A timestamp exactly on a boundary belongs to the bin that starts there;
  // the 1e-9 forgiveness keeps float-accumulated boundary times (k ticks of
  // 0.01 s) from landing one bin early.
  const int bin = static_cast<int>(std::floor(t / bin_width_ + 1e-9));
  return std::clamp(bin, 0, bin_count_ - 1);
}

int Timeline::add_series(const std::string& name, Fold fold) {
  const int existing = find(name);
  if (existing >= 0) {
    if (series_[existing].fold != fold) {
      throw ConfigError(
          format("timeline series '%s' re-registered with a different fold",
                 name.c_str()));
    }
    return existing;
  }
  Series series;
  series.name = name;
  series.fold = fold;
  series.bins.assign(static_cast<std::size_t>(bin_count_), 0.0);
  series_.push_back(std::move(series));
  return static_cast<int>(series_.size()) - 1;
}

int Timeline::find(std::string_view name) const {
  for (std::size_t i = 0; i < series_.size(); ++i) {
    if (series_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

void Timeline::fold_value(int index, int bin, double v) {
  double& slot = series_[index].bins[bin];
  switch (series_[index].fold) {
    case Fold::kSum:
      slot += v;
      break;
    case Fold::kMax:
      slot = std::max(slot, v);
      break;
  }
}

void Timeline::merge_from(const Timeline& other) {
  if (other.empty()) return;
  if (empty()) {
    *this = other;
    return;
  }
  if (bin_width_ != other.bin_width_) {
    throw ConfigError(format(
        "timeline merge: bin width mismatch (%.6g vs %.6g)", bin_width_,
        other.bin_width_));
  }
  if (other.bin_count_ > bin_count_) {
    bin_count_ = other.bin_count_;
    for (Series& series : series_) {
      series.bins.resize(static_cast<std::size_t>(bin_count_), 0.0);
    }
  }
  for (const Series& theirs : other.series_) {
    const int index = add_series(theirs.name, theirs.fold);
    Series& mine = series_[index];
    for (std::size_t bin = 0; bin < theirs.bins.size(); ++bin) {
      switch (mine.fold) {
        case Fold::kSum:
          mine.bins[bin] += theirs.bins[bin];
          break;
        case Fold::kMax:
          mine.bins[bin] = std::max(mine.bins[bin], theirs.bins[bin]);
          break;
      }
    }
  }
}

Timeline merge(const Timeline& a, const Timeline& b) {
  Timeline out = a;
  out.merge_from(b);
  return out;
}

std::string timeline_csv(const Timeline& timeline) {
  std::string out = "bin,t_start_s";
  for (const Timeline::Series& series : timeline.all()) {
    out += ',';
    out += series.name;
  }
  out += '\n';
  for (int bin = 0; bin < timeline.bin_count(); ++bin) {
    out += format("%d,%.3f", bin, timeline.bin_start(bin));
    for (const Timeline::Series& series : timeline.all()) {
      out += format(",%.6g", series.bins[static_cast<std::size_t>(bin)]);
    }
    out += '\n';
  }
  return out;
}

std::string timeline_jsonl(const Timeline& timeline) {
  std::string out;
  for (int bin = 0; bin < timeline.bin_count(); ++bin) {
    out += format(R"({"bin":%d,"t_start_s":%.3f)", bin,
                  timeline.bin_start(bin));
    for (const Timeline::Series& series : timeline.all()) {
      out += format(R"(,"%s":%.6g)", series.name.c_str(),
                    series.bins[static_cast<std::size_t>(bin)]);
    }
    out += "}\n";
  }
  return out;
}

}  // namespace vodx::obs
