// Wall-clock profiler for the simulator's hot paths.
//
// Unlike the event trace and metrics registry — which run on *sim* time and
// are part of the deterministic output — the profiler measures how long the
// simulator itself takes on real hardware. It never feeds a value back into
// sim logic, so determinism is untouched by construction; the reports it
// produces (bench_perf, BENCH_PERF.json) are explicitly wall-clock and
// machine-dependent.
//
// Usage: drop `VODX_PROFILE_ZONE("tcp.advance");` at the top of a scope.
// Zones nest; each labeled zone accumulates count, total (inclusive) and
// self (exclusive of child zones) nanoseconds in a thread-local table with
// no locking on the hot path.
//
// Cost contract:
//   * compiled out (cmake -DVODX_PROFILER=OFF): zero — the macro expands to
//     a no-op object;
//   * compiled in, disabled (the default): one relaxed atomic load and a
//     predictable branch per zone;
//   * enabled: two steady_clock reads plus a small linear table update per
//     zone (~50 ns), all thread-local.
//
// Threading: each thread owns its table; a thread flushes into a global
// mutex-guarded aggregate when it exits (sweep workers join before any
// report is read). profiler_report() flushes the calling thread first, so
// single-threaded use needs no ceremony.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace vodx::obs {

/// Accumulated timings for one labeled zone.
struct ZoneStats {
  std::string name;
  std::uint64_t count = 0;     ///< times the zone was entered
  std::uint64_t total_ns = 0;  ///< inclusive of nested zones
  std::uint64_t self_ns = 0;   ///< exclusive of nested zones
};

namespace internal {
extern std::atomic<bool> g_profiling_enabled;

/// Per-thread zone table + frame stack. Users never touch this directly;
/// ProfileZone and the report functions are the API.
class ThreadProfiler {
 public:
  static ThreadProfiler& instance();
  ~ThreadProfiler();

  void enter(const char* name);
  void leave();

  /// Moves this thread's closed-zone data into the global aggregate.
  void flush();

  /// Drops this thread's data without flushing (open frames survive).
  void discard() { zones_.clear(); }

 private:
  struct Frame {
    const char* name;
    std::uint64_t start_ns;
    std::uint64_t child_ns;
  };
  std::vector<Frame> stack_;
  std::vector<ZoneStats> zones_;
};
}  // namespace internal

/// Master switch, off by default. Safe to toggle at any time; zones opened
/// while enabled close normally after a disable.
void set_profiling_enabled(bool on);
inline bool profiling_enabled() {
  return internal::g_profiling_enabled.load(std::memory_order_relaxed);
}

/// Merged per-zone stats: every exited thread's flushed data plus the
/// calling thread's, sorted by total_ns descending (name ascending as the
/// tie-break). Zones still open on any thread are not included.
std::vector<ZoneStats> profiler_report();

/// Clears the global aggregate and the calling thread's table. Call only
/// while no other thread is inside a zone.
void profiler_reset();

/// RAII scoped timer — prefer the VODX_PROFILE_ZONE macro.
class ProfileZone {
 public:
#ifndef VODX_PROFILER_DISABLED
  explicit ProfileZone(const char* name) {
    if (profiling_enabled()) {
      active_ = true;
      internal::ThreadProfiler::instance().enter(name);
    }
  }
  ~ProfileZone() {
    if (active_) internal::ThreadProfiler::instance().leave();
  }
#else
  explicit ProfileZone(const char*) {}
#endif

  ProfileZone(const ProfileZone&) = delete;
  ProfileZone& operator=(const ProfileZone&) = delete;

 private:
#ifndef VODX_PROFILER_DISABLED
  bool active_ = false;
#endif
};

#define VODX_PROFILE_CAT2(a, b) a##b
#define VODX_PROFILE_CAT(a, b) VODX_PROFILE_CAT2(a, b)
#define VODX_PROFILE_ZONE(name) \
  ::vodx::obs::ProfileZone VODX_PROFILE_CAT(vodx_profile_zone_, __LINE__) { \
    name                                                                    \
  }

}  // namespace vodx::obs
