#include "obs/export.h"

#include <cmath>

#include "common/strings.h"

namespace vodx::obs {

namespace {

/// Numbers in JSON: integers render without a fraction, NaN/inf (never
/// expected, but exporters must not emit invalid JSON) become null.
std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    return format("%lld", static_cast<long long>(value));
  }
  return format("%.9g", value);
}

void append_fields_json(const Event& event, std::string* out) {
  for (const Field& field : event.fields) {
    out->append(",\"");
    out->append(json_escape(field.key));
    out->append("\":");
    if (field.is_text) {
      out->push_back('"');
      out->append(json_escape(field.text));
      out->push_back('"');
    } else {
      out->append(json_number(field.num));
    }
  }
}

const char* kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kInstant: return "instant";
    case EventKind::kSpanBegin: return "begin";
    case EventKind::kSpanEnd: return "end";
    case EventKind::kCounter: return "counter";
  }
  return "?";
}

const char* chrome_phase(EventKind kind) {
  switch (kind) {
    case EventKind::kInstant: return "i";
    case EventKind::kSpanBegin: return "B";
    case EventKind::kSpanEnd: return "E";
    case EventKind::kCounter: return "C";
  }
  return "i";
}

}  // namespace

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += format("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void write_jsonl(const TraceSink& sink, std::ostream& out) {
  sink.for_each([&out](const Event& event) {
    std::string line = format(
        "{\"t\":%s,\"seq\":%llu,\"cat\":\"%s\",\"kind\":\"%s\","
        "\"name\":\"%s\",\"track\":%d",
        json_number(event.sim_time).c_str(),
        static_cast<unsigned long long>(event.seq), to_string(event.category),
        kind_name(event.kind), event.name, event.track);
    append_fields_json(event, &line);
    line += "}\n";
    out << line;
  });
  out << format(
      "{\"kind\":\"summary\",\"name\":\"obs.dropped\",\"emitted\":%llu,"
      "\"dropped\":%llu,\"retained\":%zu}\n",
      static_cast<unsigned long long>(sink.emitted()),
      static_cast<unsigned long long>(sink.dropped()), sink.size());
}

void write_chrome_trace(const TraceSink& sink, std::ostream& out) {
  out << "{\"traceEvents\":[\n";
  bool first = true;
  auto emit_raw = [&out, &first](const std::string& json) {
    if (!first) out << ",\n";
    first = false;
    out << json;
  };

  emit_raw(
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"vodx session\"}}");
  const std::vector<std::string>& tracks = sink.track_names();
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    emit_raw(format(
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%zu,"
        "\"args\":{\"name\":\"%s\"}}",
        i, json_escape(tracks[i]).c_str()));
    // Keep Perfetto's track order equal to registration order.
    emit_raw(format(
        "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":%zu,"
        "\"args\":{\"sort_index\":%zu}}",
        i, i));
  }

  sink.for_each([&emit_raw](const Event& event) {
    std::string json = format(
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,"
        "\"pid\":1,\"tid\":%d",
        json_escape(event.name).c_str(), to_string(event.category),
        chrome_phase(event.kind), event.sim_time * 1e6, event.track);
    if (event.kind == EventKind::kInstant) json += ",\"s\":\"t\"";
    json += ",\"args\":{";
    bool first_field = true;
    for (const Field& field : event.fields) {
      if (!first_field) json += ",";
      first_field = false;
      json += "\"";
      json += json_escape(field.key);
      json += "\":";
      if (field.is_text) {
        json += "\"";
        json += json_escape(field.text);
        json += "\"";
      } else {
        json += json_number(field.num);
      }
    }
    json += "}}";
    emit_raw(json);
  });

  out << format(
      "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
      "\"emitted\":%llu,\"dropped\":%llu}}\n",
      static_cast<unsigned long long>(sink.emitted()),
      static_cast<unsigned long long>(sink.dropped()));
}

Table metrics_table(const MetricsSnapshot& snapshot) {
  Table table({"metric", "type", "count", "value", "mean", "p50", "p90",
               "p99", "max"});
  for (const MetricsSnapshot::Entry& entry : snapshot.entries) {
    switch (entry.type) {
      case MetricsSnapshot::Type::kCounter:
        table.add_row({entry.name, "counter",
                       format("%lld", static_cast<long long>(entry.count)),
                       "-", "-", "-", "-", "-", "-"});
        break;
      case MetricsSnapshot::Type::kGauge:
        table.add_row({entry.name, "gauge", "-", format("%.3f", entry.value),
                       "-", "-", "-", "-", "-"});
        break;
      case MetricsSnapshot::Type::kHistogram:
        table.add_row({entry.name, "histogram",
                       format("%lld", static_cast<long long>(entry.count)),
                       format("%.3f", entry.value),
                       format("%.3f", entry.mean), format("%.3f", entry.p50),
                       format("%.3f", entry.p90), format("%.3f", entry.p99),
                       format("%.3f", entry.max)});
        break;
    }
  }
  return table;
}

std::string metrics_report(const MetricsSnapshot& snapshot) {
  std::string out = format("metrics @ sim t=%.3f s\n", snapshot.sim_time);
  out += metrics_table(snapshot).render();
  return out;
}

std::string metrics_json(const MetricsSnapshot& snapshot) {
  std::string out =
      format("{\"sim_time\":%s,\"metrics\":{",
             json_number(snapshot.sim_time).c_str());
  bool first = true;
  for (const MetricsSnapshot::Entry& entry : snapshot.entries) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(entry.name) + "\":";
    switch (entry.type) {
      case MetricsSnapshot::Type::kCounter:
        out += format("{\"type\":\"counter\",\"count\":%lld}",
                      static_cast<long long>(entry.count));
        break;
      case MetricsSnapshot::Type::kGauge:
        out += format("{\"type\":\"gauge\",\"value\":%s,\"time\":%s}",
                      json_number(entry.value).c_str(),
                      json_number(entry.time).c_str());
        break;
      case MetricsSnapshot::Type::kHistogram: {
        out += format(
            "{\"type\":\"histogram\",\"count\":%lld,\"sum\":%s,"
            "\"min\":%s,\"mean\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s,"
            "\"max\":%s,\"bounds\":[",
            static_cast<long long>(entry.count),
            json_number(entry.value).c_str(), json_number(entry.min).c_str(),
            json_number(entry.mean).c_str(), json_number(entry.p50).c_str(),
            json_number(entry.p90).c_str(), json_number(entry.p99).c_str(),
            json_number(entry.max).c_str());
        for (std::size_t i = 0; i < entry.bounds.size(); ++i) {
          if (i > 0) out += ",";
          out += json_number(entry.bounds[i]);
        }
        out += "],\"buckets\":[";
        for (std::size_t i = 0; i < entry.buckets.size(); ++i) {
          if (i > 0) out += ",";
          out += format("%lld", static_cast<long long>(entry.buckets[i]));
        }
        out += "]}";
        break;
      }
    }
  }
  out += "}}";
  return out;
}

}  // namespace vodx::obs
