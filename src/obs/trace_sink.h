// Ring-buffered event trace.
//
// Single-writer by design (the simulator is single-threaded), so "lock-free"
// is literal: emission is an enabled-mask check, a couple of stores and a
// ring index increment — no mutex, no allocation beyond the event's own
// fields. When the ring fills, the oldest events are overwritten and counted
// as dropped; exporters always see a contiguous, emission-ordered window
// ending at the newest event.
//
// Cost when disabled: callers are expected to guard emission with
// `enabled(category)` (or the `trace_on` helper in observer.h), which is an
// inline read of two plain members — no fields are even constructed.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/event.h"

namespace vodx::obs {

class TraceSink {
 public:
  /// `capacity` = number of retained events (oldest dropped beyond that).
  /// Capacity 0 is legal: nothing is retained, every emission counts as
  /// dropped, and emitted()/dropped() stay exact.
  explicit TraceSink(std::size_t capacity = 1 << 16);

  // --- Enabling -----------------------------------------------------------

  bool enabled(Category category) const {
    return enabled_ && (mask_ & bit(category)) != 0;
  }
  void set_enabled(bool on) { enabled_ = on; }
  bool is_enabled() const { return enabled_; }

  /// Per-category mask; defaults to everything.
  void set_category_mask(std::uint32_t mask) { mask_ = mask; }
  std::uint32_t category_mask() const { return mask_; }
  void enable(Category category) { mask_ |= bit(category); }
  void disable(Category category) { mask_ &= ~bit(category); }

  // --- Tracks -------------------------------------------------------------

  /// Returns a stable id for a named timeline ("player", "tcp conn0", ...),
  /// registering it on first use. Ids are small ints, assigned in order.
  int track(const std::string& name);
  const std::vector<std::string>& track_names() const { return tracks_; }

  // --- Clock (for scoped spans) ------------------------------------------

  /// Spans closed by ScopedSpan destructors need "now"; the session wires
  /// this to the simulator clock. Unset, spans end at their begin time.
  void set_clock(std::function<Seconds()> clock) { clock_ = std::move(clock); }
  Seconds now() const { return clock_ ? clock_() : 0; }

  // --- Emission -----------------------------------------------------------

  /// Appends `event` (seq is assigned here). Category masking is NOT
  /// re-checked: guard call sites with enabled() so disabled categories pay
  /// nothing.
  void emit(Event event);

  void instant(Seconds time, Category category, const char* name, int track,
               std::vector<Field> fields = {});
  void begin(Seconds time, Category category, const char* name, int track,
             std::vector<Field> fields = {});
  void end(Seconds time, Category category, const char* name, int track,
           std::vector<Field> fields = {});
  void counter(Seconds time, Category category, const char* name, int track,
               double value);

  // --- Inspection ---------------------------------------------------------

  std::uint64_t emitted() const { return emitted_; }
  std::uint64_t dropped() const { return dropped_; }
  std::size_t size() const { return count_; }
  std::size_t capacity() const { return capacity_; }

  /// Retained events, oldest first (emission order; seq is monotonic).
  std::vector<Event> snapshot() const;

  /// Visits retained events oldest-first without copying.
  void for_each(const std::function<void(const Event&)>& fn) const;

  void clear();

 private:
  bool enabled_ = true;
  std::uint32_t mask_ = kAllCategories;
  std::size_t capacity_;
  std::vector<Event> ring_;  ///< grows to capacity_, then wraps
  std::size_t next_ = 0;     ///< ring slot the next event lands in
  std::size_t count_ = 0;
  std::uint64_t emitted_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<std::string> tracks_;
  std::function<Seconds()> clock_;
};

/// RAII span: begin on construction, end on destruction (at the sink's
/// clock time). Inactive when the sink is null or the category disabled.
class ScopedSpan {
 public:
  ScopedSpan(TraceSink* sink, Category category, const char* name, int track,
             Seconds begin_time, std::vector<Field> fields = {});
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceSink* sink_ = nullptr;
  Category category_ = Category::kSim;
  const char* name_ = "";
  int track_ = 0;
  Seconds begin_time_ = 0;
};

}  // namespace vodx::obs
