// Metrics registry: counters, gauges and fixed-bucket histograms.
//
// Metrics complement the event trace: the trace answers "what happened at
// t=212.4 s", metrics answer "how much, in total". Everything is
// registered by name, kept in registration order, and snapshotable at any
// sim time — a snapshot is a deep copy, isolated from later mutation, so a
// sweep can capture per-phase metrics mid-run.
//
// Single-threaded like the simulator; handles returned by the registry stay
// valid for the registry's lifetime.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"

namespace vodx::obs {

class Counter {
 public:
  void add(std::int64_t delta = 1) { value_ += delta; }
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

class Gauge {
 public:
  void set(double value) { value_ = value; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Fixed-bucket histogram. `bounds` are ascending upper edges; a sample lands
/// in the first bucket whose bound is >= the value, or the implicit overflow
/// bucket past the last bound.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void record(double value);

  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ > 0 ? sum_ / count_ : 0; }
  double min() const { return count_ > 0 ? min_ : 0; }
  double max() const { return count_ > 0 ? max_ : 0; }
  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  const std::vector<std::int64_t>& buckets() const { return buckets_; }

  /// Quantile with linear interpolation inside the winning bucket (see
  /// bucket_quantile below). 0 with no samples.
  double quantile(double q) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::int64_t> buckets_;
  std::int64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Interpolated quantile over fixed buckets: finds the bucket holding the
/// q-th sample and interpolates linearly within it, clamping the bucket's
/// edges to the observed [min, max]. This is the one quantile definition the
/// whole tree uses (Histogram::quantile, merged-snapshot recompute, report
/// renderers), so per-cell and aggregated percentiles agree.
double bucket_quantile(const std::vector<double>& bounds,
                       const std::vector<std::int64_t>& buckets,
                       std::int64_t count, double min, double max, double q);

/// Deep-copied view of the registry at one moment.
///
/// A snapshot is also a *mergeable value type* — the unit of cross-run
/// aggregation. merge_from folds another snapshot in: counters add, gauges
/// keep the last write by sim time (per-entry `time`, right operand wins
/// ties), histograms merge bucket-wise (identical bounds required; empty
/// histograms are the identity) with derived stats recomputed. The
/// operation is associative and a default-constructed snapshot is its
/// identity, so any fold order over the same multiset of snapshots yields
/// the same value; folding in grid order makes sweep aggregates
/// byte-identical at any --jobs.
struct MetricsSnapshot {
  enum class Type { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    Type type = Type::kCounter;
    std::int64_t count = 0;  ///< counter value / histogram sample count
    double value = 0;        ///< gauge value / histogram sum
    double min = 0, mean = 0, p50 = 0, p90 = 0, p99 = 0, max = 0;
    /// Sim time of the snapshot the value was captured at; the merge
    /// tie-breaker for gauges (newest wins).
    Seconds time = 0;
    std::vector<double> bounds;
    std::vector<std::int64_t> buckets;
  };

  Seconds sim_time = 0;
  std::vector<Entry> entries;  ///< registration order

  /// nullptr when `name` is absent.
  const Entry* find(const std::string& name) const;

  /// Folds `other` into this snapshot (see the semantics above). Entries
  /// absent here are appended in `other`'s order; a name merged across
  /// different metric types or histogram bounds throws ConfigError.
  void merge_from(const MetricsSnapshot& other);
};

/// Convenience: a ⊕ b without mutating either operand.
MetricsSnapshot merge(const MetricsSnapshot& a, const MetricsSnapshot& b);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the named metric, creating it on first use. Re-requesting a
  /// name returns the same instance; requesting it as a different metric
  /// type throws.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` applies on first registration only.
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  MetricsSnapshot snapshot(Seconds sim_time) const;

  std::size_t size() const { return entries_.size(); }

 private:
  struct Named {
    std::string name;
    MetricsSnapshot::Type type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Named* find(const std::string& name);

  std::vector<Named> entries_;
};

}  // namespace vodx::obs
