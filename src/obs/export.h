// Exporters: turn a TraceSink / MetricsSnapshot into files people can open.
//
//  * JSONL       — one JSON object per event, grep/jq-friendly.
//  * Chrome JSON — the trace_event format; a session opens in
//                  chrome://tracing or https://ui.perfetto.dev with one
//                  timeline per registered track (player, each TCP
//                  connection, the link) and counter series for buffer
//                  occupancy, cwnd and link capacity.
//  * Table       — the metrics summary via common/table, for terminals.
#pragma once

#include <ostream>
#include <string>

#include "common/table.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"

namespace vodx::obs {

/// One event per line: {"t":..,"seq":..,"cat":..,"kind":..,"name":..,
/// "track":..,<fields>}. Ends with a summary line
/// {"kind":"summary","name":"obs.dropped",...} carrying the sink's
/// emitted/dropped/retained counts, so ring overflow is visible in this
/// format too (not just the Chrome exporter's metadata).
void write_jsonl(const TraceSink& sink, std::ostream& out);

/// Chrome trace_event JSON ({"traceEvents":[...]}). Timestamps are sim time
/// in microseconds; tracks become named threads of one "vodx session"
/// process. Includes a final metadata comment with dropped-event counts.
void write_chrome_trace(const TraceSink& sink, std::ostream& out);

/// Renders a snapshot as a summary table: counters as totals, gauges as
/// values, histograms as count/mean/p50/p90/p99/max.
Table metrics_table(const MetricsSnapshot& snapshot);

/// metrics_table plus a sim-time header, rendered to a string.
std::string metrics_report(const MetricsSnapshot& snapshot);

/// Canonical single-line JSON rendering of a snapshot:
/// {"sim_time":..,"metrics":{"<name>":{"type":..,...},...}} in entry order.
/// Byte-stable for identical snapshots — the merge/determinism tests and
/// the sweep report JSONL compare and embed exactly this string.
std::string metrics_json(const MetricsSnapshot& snapshot);

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string json_escape(const std::string& raw);

}  // namespace vodx::obs
