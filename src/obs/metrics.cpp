#include "obs/metrics.h"

#include <algorithm>

#include "common/error.h"

namespace vodx::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  VODX_ASSERT(std::is_sorted(bounds_.begin(), bounds_.end()),
              "histogram bounds must ascend");
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::record(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += value;
  if (count_ == 1) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  std::int64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (static_cast<double>(seen) >= target && buckets_[i] > 0) {
      return i < bounds_.size() ? std::min(bounds_[i], max_) : max_;
    }
  }
  return max_;
}

const MetricsSnapshot::Entry* MetricsSnapshot::find(
    const std::string& name) const {
  for (const Entry& entry : entries) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

MetricsRegistry::Named* MetricsRegistry::find(const std::string& name) {
  for (Named& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  if (Named* existing = find(name)) {
    VODX_ASSERT(existing->type == MetricsSnapshot::Type::kCounter,
                "metric '" + name + "' registered as a different type");
    return *existing->counter;
  }
  Named named;
  named.name = name;
  named.type = MetricsSnapshot::Type::kCounter;
  named.counter = std::make_unique<Counter>();
  entries_.push_back(std::move(named));
  return *entries_.back().counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  if (Named* existing = find(name)) {
    VODX_ASSERT(existing->type == MetricsSnapshot::Type::kGauge,
                "metric '" + name + "' registered as a different type");
    return *existing->gauge;
  }
  Named named;
  named.name = name;
  named.type = MetricsSnapshot::Type::kGauge;
  named.gauge = std::make_unique<Gauge>();
  entries_.push_back(std::move(named));
  return *entries_.back().gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  if (Named* existing = find(name)) {
    VODX_ASSERT(existing->type == MetricsSnapshot::Type::kHistogram,
                "metric '" + name + "' registered as a different type");
    return *existing->histogram;
  }
  Named named;
  named.name = name;
  named.type = MetricsSnapshot::Type::kHistogram;
  named.histogram = std::make_unique<Histogram>(std::move(bounds));
  entries_.push_back(std::move(named));
  return *entries_.back().histogram;
}

MetricsSnapshot MetricsRegistry::snapshot(Seconds sim_time) const {
  MetricsSnapshot snap;
  snap.sim_time = sim_time;
  snap.entries.reserve(entries_.size());
  for (const Named& named : entries_) {
    MetricsSnapshot::Entry entry;
    entry.name = named.name;
    entry.type = named.type;
    switch (named.type) {
      case MetricsSnapshot::Type::kCounter:
        entry.count = named.counter->value();
        break;
      case MetricsSnapshot::Type::kGauge:
        entry.value = named.gauge->value();
        break;
      case MetricsSnapshot::Type::kHistogram: {
        const Histogram& h = *named.histogram;
        entry.count = h.count();
        entry.value = h.sum();
        entry.min = h.min();
        entry.mean = h.mean();
        entry.p50 = h.quantile(0.5);
        entry.p90 = h.quantile(0.9);
        entry.p99 = h.quantile(0.99);
        entry.max = h.max();
        entry.bounds = h.bounds();
        entry.buckets = h.buckets();
        break;
      }
    }
    snap.entries.push_back(std::move(entry));
  }
  return snap;
}

}  // namespace vodx::obs
