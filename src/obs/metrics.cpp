#include "obs/metrics.h"

#include <algorithm>

#include "common/error.h"

namespace vodx::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  VODX_ASSERT(std::is_sorted(bounds_.begin(), bounds_.end()),
              "histogram bounds must ascend");
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::record(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += value;
  if (count_ == 1) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
}

double Histogram::quantile(double q) const {
  return bucket_quantile(bounds_, buckets_, count_, min(), max(), q);
}

double bucket_quantile(const std::vector<double>& bounds,
                       const std::vector<std::int64_t>& buckets,
                       std::int64_t count, double min, double max, double q) {
  if (count <= 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Snapshots are value types, so entries can reach us hand-built or
  // partially merged; an incoherent min/max pair must not poison the
  // interpolation below, so fall back to raw bucket edges in that case.
  const bool stats_ok = min <= max;
  const double target = q * static_cast<double>(count);
  std::int64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] <= 0) continue;
    const std::int64_t before = seen;
    seen += buckets[i];
    if (static_cast<double>(seen) >= target) {
      // Interpolate within the winning bucket rather than reporting its
      // upper bound: bucket edges clamp to the observed [min, max] so a
      // single-sample bucket reports the neighbourhood of the sample, not
      // an edge it never reached.
      double lo = i == 0 ? (stats_ok ? min : (bounds.empty() ? 0 : bounds[0]))
                         : (stats_ok ? std::max(bounds[i - 1], min)
                                     : bounds[i - 1]);
      double hi = i < bounds.size()
                      ? (stats_ok ? std::min(bounds[i], max) : bounds[i])
                      : (stats_ok ? max : lo);
      if (hi < lo) hi = lo;
      const double frac = std::clamp(
          (target - static_cast<double>(before)) /
              static_cast<double>(buckets[i]),
          0.0, 1.0);
      return lo + frac * (hi - lo);
    }
  }
  // count > 0 but every bucket empty: an inconsistent, hand-built entry.
  // Report the only defensible point estimate rather than interpolating.
  return stats_ok ? max : 0;
}

const MetricsSnapshot::Entry* MetricsSnapshot::find(
    const std::string& name) const {
  for (const Entry& entry : entries) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

namespace {

void refresh_histogram_stats(MetricsSnapshot::Entry& entry) {
  entry.mean = entry.count > 0
                   ? entry.value / static_cast<double>(entry.count)
                   : 0;
  entry.p50 = bucket_quantile(entry.bounds, entry.buckets, entry.count,
                              entry.min, entry.max, 0.5);
  entry.p90 = bucket_quantile(entry.bounds, entry.buckets, entry.count,
                              entry.min, entry.max, 0.9);
  entry.p99 = bucket_quantile(entry.bounds, entry.buckets, entry.count,
                              entry.min, entry.max, 0.99);
}

void merge_entry(MetricsSnapshot::Entry& mine,
                 const MetricsSnapshot::Entry& theirs) {
  if (mine.type != theirs.type) {
    throw ConfigError("metric '" + mine.name +
                      "' merged across different types");
  }
  switch (mine.type) {
    case MetricsSnapshot::Type::kCounter:
      mine.count += theirs.count;
      mine.time = std::max(mine.time, theirs.time);
      break;
    case MetricsSnapshot::Type::kGauge:
      // Last write by sim time; the right operand wins ties, which together
      // with per-entry times keeps the merge associative even when a gauge
      // is absent from some snapshots.
      if (theirs.time >= mine.time) {
        mine.value = theirs.value;
        mine.time = theirs.time;
      }
      break;
    case MetricsSnapshot::Type::kHistogram: {
      if (theirs.count == 0) break;  // empty histogram is the identity
      if (mine.count == 0) {
        const std::string name = mine.name;
        mine = theirs;
        mine.name = name;
        break;
      }
      if (mine.bounds != theirs.bounds ||
          mine.buckets.size() != theirs.buckets.size()) {
        throw ConfigError("histogram '" + mine.name +
                          "' merged across different bucket bounds");
      }
      for (std::size_t i = 0; i < mine.buckets.size(); ++i) {
        mine.buckets[i] += theirs.buckets[i];
      }
      mine.count += theirs.count;
      mine.value += theirs.value;
      mine.min = std::min(mine.min, theirs.min);
      mine.max = std::max(mine.max, theirs.max);
      mine.time = std::max(mine.time, theirs.time);
      refresh_histogram_stats(mine);
      break;
    }
  }
}

}  // namespace

void MetricsSnapshot::merge_from(const MetricsSnapshot& other) {
  sim_time = std::max(sim_time, other.sim_time);
  for (const Entry& theirs : other.entries) {
    Entry* mine = nullptr;
    for (Entry& entry : entries) {
      if (entry.name == theirs.name) {
        mine = &entry;
        break;
      }
    }
    if (mine == nullptr) {
      entries.push_back(theirs);
    } else {
      merge_entry(*mine, theirs);
    }
  }
}

MetricsSnapshot merge(const MetricsSnapshot& a, const MetricsSnapshot& b) {
  MetricsSnapshot out = a;
  out.merge_from(b);
  return out;
}

MetricsRegistry::Named* MetricsRegistry::find(const std::string& name) {
  for (Named& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  if (Named* existing = find(name)) {
    VODX_ASSERT(existing->type == MetricsSnapshot::Type::kCounter,
                "metric '" + name + "' registered as a different type");
    return *existing->counter;
  }
  Named named;
  named.name = name;
  named.type = MetricsSnapshot::Type::kCounter;
  named.counter = std::make_unique<Counter>();
  entries_.push_back(std::move(named));
  return *entries_.back().counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  if (Named* existing = find(name)) {
    VODX_ASSERT(existing->type == MetricsSnapshot::Type::kGauge,
                "metric '" + name + "' registered as a different type");
    return *existing->gauge;
  }
  Named named;
  named.name = name;
  named.type = MetricsSnapshot::Type::kGauge;
  named.gauge = std::make_unique<Gauge>();
  entries_.push_back(std::move(named));
  return *entries_.back().gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  if (Named* existing = find(name)) {
    VODX_ASSERT(existing->type == MetricsSnapshot::Type::kHistogram,
                "metric '" + name + "' registered as a different type");
    return *existing->histogram;
  }
  Named named;
  named.name = name;
  named.type = MetricsSnapshot::Type::kHistogram;
  named.histogram = std::make_unique<Histogram>(std::move(bounds));
  entries_.push_back(std::move(named));
  return *entries_.back().histogram;
}

MetricsSnapshot MetricsRegistry::snapshot(Seconds sim_time) const {
  MetricsSnapshot snap;
  snap.sim_time = sim_time;
  snap.entries.reserve(entries_.size());
  for (const Named& named : entries_) {
    MetricsSnapshot::Entry entry;
    entry.name = named.name;
    entry.type = named.type;
    entry.time = sim_time;
    switch (named.type) {
      case MetricsSnapshot::Type::kCounter:
        entry.count = named.counter->value();
        break;
      case MetricsSnapshot::Type::kGauge:
        entry.value = named.gauge->value();
        break;
      case MetricsSnapshot::Type::kHistogram: {
        const Histogram& h = *named.histogram;
        entry.count = h.count();
        entry.value = h.sum();
        entry.min = h.min();
        entry.mean = h.mean();
        entry.p50 = h.quantile(0.5);
        entry.p90 = h.quantile(0.9);
        entry.p99 = h.quantile(0.99);
        entry.max = h.max();
        entry.bounds = h.bounds();
        entry.buckets = h.buckets();
        break;
      }
    }
    snap.entries.push_back(std::move(entry));
  }
  return snap;
}

}  // namespace vodx::obs
