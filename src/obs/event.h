// Structured trace events.
//
// Everything the toolchain can observe about a running session — simulator
// ticks, TCP state machines, HTTP request lifecycles, player decisions,
// inference divergences — is expressed as one Event type: a sim-time-stamped,
// categorised, named record with a handful of typed key/value fields. The
// paper's methodology reconstructs player state from externally visible
// traffic; this event stream is the internal ground truth it is validated
// against, and the substrate the exporters (JSONL, Chrome trace_event,
// metrics tables) render.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.h"

namespace vodx::obs {

/// Event categories, one bit each so sinks can mask whole subsystems.
enum class Category : std::uint32_t {
  kSim = 1u << 0,      ///< simulator internals (run spans, tick stats)
  kLink = 1u << 1,     ///< bottleneck capacity and sharing
  kTcp = 1u << 2,      ///< per-connection state machine, cwnd, restarts
  kHttp = 1u << 3,     ///< request lifecycle (ties to TransferRecord.id)
  kPlayer = 1u << 4,   ///< state machine, stalls, buffer, replacement
  kAbr = 1u << 5,      ///< adaptation decisions with their inputs
  kSession = 1u << 6,  ///< session milestones, truth-vs-inference divergence
  kFault = 1u << 7,    ///< injected faults (rejects, errors, resets, latency)
  kOrigin = 1u << 8,   ///< origin tier (cache misses, retries, DC failover)
};

constexpr std::uint32_t kAllCategories = 0xffffffffu;

constexpr std::uint32_t bit(Category category) {
  return static_cast<std::uint32_t>(category);
}

const char* to_string(Category category);

/// How an event renders on a timeline (mirrors Chrome trace_event phases).
enum class EventKind : std::uint8_t {
  kInstant,    ///< a point in time ('i')
  kSpanBegin,  ///< opens a nested duration on its track ('B')
  kSpanEnd,    ///< closes the innermost open duration ('E')
  kCounter,    ///< a sampled value series ('C')
};

/// One key/value payload entry: either a number or a piece of text. Keys must
/// be string literals (they are stored unowned); text values are copied.
struct Field {
  const char* key = "";
  double num = 0;
  std::string text;
  bool is_text = false;

  static Field n(const char* key, double value) {
    Field field;
    field.key = key;
    field.num = value;
    return field;
  }
  static Field t(const char* key, std::string value) {
    Field field;
    field.key = key;
    field.text = std::move(value);
    field.is_text = true;
    return field;
  }
};

struct Event {
  Seconds sim_time = 0;
  /// Global emission order; the deterministic tiebreak at equal sim_time.
  std::uint64_t seq = 0;
  Category category = Category::kSim;
  EventKind kind = EventKind::kInstant;
  /// Static string (literal); never freed.
  const char* name = "";
  /// Timeline the event belongs to (TraceSink::track id, Chrome "tid").
  int track = 0;
  std::vector<Field> fields;
};

// --- Field lookup ----------------------------------------------------------
//
// Consumers that read events back (exporters, the diag attribution engine)
// address payload entries by key. Keys are compared by content, not pointer:
// emission sites use literals but a round-tripped event may not.

inline const Field* find_field(const Event& event, std::string_view key) {
  for (const Field& field : event.fields) {
    if (key == field.key) return &field;
  }
  return nullptr;
}

/// Numeric field by key; `fallback` when absent or text-typed.
inline double field_num(const Event& event, std::string_view key,
                        double fallback = 0) {
  const Field* field = find_field(event, key);
  return (field != nullptr && !field->is_text) ? field->num : fallback;
}

/// Text field by key; empty when absent or numeric.
inline std::string_view field_text(const Event& event, std::string_view key) {
  const Field* field = find_field(event, key);
  return (field != nullptr && field->is_text) ? std::string_view(field->text)
                                              : std::string_view();
}

}  // namespace vodx::obs
