#include "obs/profiler.h"

#include <algorithm>
#include <chrono>
#include <mutex>

namespace vodx::obs {

namespace internal {

std::atomic<bool> g_profiling_enabled{false};

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Function-local statics: threads can flush during static destruction
// without ordering hazards.
std::mutex& global_mutex() {
  static std::mutex mutex;
  return mutex;
}

std::vector<ZoneStats>& global_zones() {
  static std::vector<ZoneStats> zones;
  return zones;
}

void merge_zone(std::vector<ZoneStats>& into, const ZoneStats& stats) {
  for (ZoneStats& zone : into) {
    if (zone.name == stats.name) {
      zone.count += stats.count;
      zone.total_ns += stats.total_ns;
      zone.self_ns += stats.self_ns;
      return;
    }
  }
  into.push_back(stats);
}

}  // namespace

ThreadProfiler& ThreadProfiler::instance() {
  thread_local ThreadProfiler profiler;
  return profiler;
}

ThreadProfiler::~ThreadProfiler() { flush(); }

void ThreadProfiler::enter(const char* name) {
  stack_.push_back(Frame{name, now_ns(), 0});
}

void ThreadProfiler::leave() {
  const Frame frame = stack_.back();
  stack_.pop_back();
  const std::uint64_t elapsed = now_ns() - frame.start_ns;
  const std::uint64_t self =
      elapsed > frame.child_ns ? elapsed - frame.child_ns : 0;
  bool found = false;
  for (ZoneStats& zone : zones_) {
    if (zone.name == frame.name) {
      ++zone.count;
      zone.total_ns += elapsed;
      zone.self_ns += self;
      found = true;
      break;
    }
  }
  if (!found) {
    ZoneStats zone;
    zone.name = frame.name;
    zone.count = 1;
    zone.total_ns = elapsed;
    zone.self_ns = self;
    zones_.push_back(std::move(zone));
  }
  if (!stack_.empty()) stack_.back().child_ns += elapsed;
}

void ThreadProfiler::flush() {
  if (zones_.empty()) return;
  std::lock_guard<std::mutex> lock(global_mutex());
  for (const ZoneStats& zone : zones_) merge_zone(global_zones(), zone);
  zones_.clear();
}

}  // namespace internal

void set_profiling_enabled(bool on) {
  internal::g_profiling_enabled.store(on, std::memory_order_relaxed);
}

std::vector<ZoneStats> profiler_report() {
  internal::ThreadProfiler::instance().flush();
  std::vector<ZoneStats> out;
  {
    std::lock_guard<std::mutex> lock(internal::global_mutex());
    out = internal::global_zones();
  }
  std::sort(out.begin(), out.end(),
            [](const ZoneStats& a, const ZoneStats& b) {
              if (a.total_ns != b.total_ns) return a.total_ns > b.total_ns;
              return a.name < b.name;
            });
  return out;
}

void profiler_reset() {
  internal::ThreadProfiler::instance().discard();
  std::lock_guard<std::mutex> lock(internal::global_mutex());
  internal::global_zones().clear();
}

}  // namespace vodx::obs
