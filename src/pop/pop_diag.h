// Root-cause attribution folded to population scale.
//
// vodx::diag diagnoses one finished session from its event trace; this
// module runs it across a population run's sessions and folds the result
// into mergeable per-tower rollups. Two population-specific wrinkles:
//
//   * Per-session observers on a shared tower link never see the link's
//     capacity counters (the link has one observer, the sessions have
//     their own), so the capacity evidence diag needs is synthesised from
//     the tower timeline instead: each bin's trace capacity divided by its
//     concurrent-session count is that bin's max-min fair share, emitted as
//     the same "link.capacity_mbps" counter events the single-session
//     stack produces and merged time-sorted into each session's trace.
//   * Diagnosed sessions need the full finish() analysis (finish_light
//     leaves result.traffic empty, which would blind the deficit/ABR
//     rules), so diagnosis is bounded by a per-tower session budget.
//
// TowerDiag is a mergeable value type with the MetricsSnapshot contract:
// merge_from is associative/commutative with the default-constructed value
// as identity, so folding per-tower rollups post-join in tower order is
// byte-identical at any --jobs.
#pragma once

#include <cstdint>
#include <vector>

#include "core/session.h"
#include "diag/diagnose.h"
#include "obs/observer.h"
#include "obs/timeline.h"

namespace vodx::pop {

/// Per-tower (and, merged, per-population) attribution rollup.
struct TowerDiag {
  int sessions_diagnosed = 0;
  /// Sessions the per-tower budget left undiagnosed.
  int sessions_skipped = 0;
  double blamed_s[diag::kCauseCount] = {};        ///< startup + stalls
  double stall_blamed_s[diag::kCauseCount] = {};  ///< stalls only
  Seconds problem_s = 0;  ///< startup + stall wall time, diagnosed sessions
  Seconds stall_s = 0;
  Seconds startup_s = 0;
  /// Ring drops across diagnosed sessions; > 0 means evidence was lost.
  std::uint64_t trace_dropped = 0;

  void merge_from(const TowerDiag& other);

  /// Share of problem time charged to a non-unknown cause (1 when there is
  /// no problem time at all).
  double attributed_fraction() const;
  /// Same, restricted to stalls — the acceptance-gated number.
  double stall_attributed_fraction() const;
};

/// Synthesises per-bin fair-share capacity counters from a tower timeline:
/// one kLink/kCounter "link.capacity_mbps" event per bin at the bin start,
/// value = bin capacity (Mbps) / max(1, concurrent sessions in the bin).
/// Empty when the timeline lacks the capacity or concurrent series.
std::vector<obs::Event> fair_share_capacity_events(
    const obs::Timeline& timeline);

/// Diagnoses one finished session: merges `capacity_events` (time-sorted)
/// into the observer's retained trace — capacity first at equal stamps, so
/// a bin's share is in force before anything that happens inside it — and
/// runs diag::diagnose over the combined evidence.
diag::Diagnosis diagnose_session(const core::SessionResult& result,
                                 const obs::Observer& observer,
                                 const std::vector<obs::Event>& capacity_events,
                                 const diag::DiagOptions& options);

/// Folds one diagnosis into the rollup (totals, not per-bin).
void fold_diagnosis(TowerDiag& into, const diag::Diagnosis& diagnosis);

/// Spreads every blame span over the timeline's blame_* series by overlap:
/// each bin gains the seconds of the span that fall inside it.
void fold_blame_bins(obs::Timeline& timeline,
                     const diag::Diagnosis& diagnosis);

}  // namespace vodx::pop
