#include "pop/pop_diag.h"

#include <algorithm>
#include <cmath>

#include "pop/pop_timeline.h"

namespace vodx::pop {

void TowerDiag::merge_from(const TowerDiag& other) {
  sessions_diagnosed += other.sessions_diagnosed;
  sessions_skipped += other.sessions_skipped;
  for (int c = 0; c < diag::kCauseCount; ++c) {
    blamed_s[c] += other.blamed_s[c];
    stall_blamed_s[c] += other.stall_blamed_s[c];
  }
  problem_s += other.problem_s;
  stall_s += other.stall_s;
  startup_s += other.startup_s;
  trace_dropped += other.trace_dropped;
}

double TowerDiag::attributed_fraction() const {
  if (problem_s <= 0) return 1.0;
  return 1.0 -
         blamed_s[static_cast<int>(diag::Cause::kUnknown)] / problem_s;
}

double TowerDiag::stall_attributed_fraction() const {
  if (stall_s <= 0) return 1.0;
  return 1.0 -
         stall_blamed_s[static_cast<int>(diag::Cause::kUnknown)] / stall_s;
}

std::vector<obs::Event> fair_share_capacity_events(
    const obs::Timeline& timeline) {
  std::vector<obs::Event> events;
  const int capacity = timeline.find("capacity_mbit");
  const int concurrent = timeline.find("concurrent");
  if (capacity < 0 || concurrent < 0 || timeline.bin_width() <= 0) {
    return events;
  }
  events.reserve(static_cast<std::size_t>(timeline.bin_count()));
  for (int bin = 0; bin < timeline.bin_count(); ++bin) {
    const double capacity_mbps =
        timeline.value(capacity, bin) / timeline.bin_width();
    const double share =
        capacity_mbps / std::max(1.0, timeline.value(concurrent, bin));
    obs::Event event;
    event.sim_time = timeline.bin_start(bin);
    event.seq = static_cast<std::uint64_t>(bin);
    event.category = obs::Category::kLink;
    event.kind = obs::EventKind::kCounter;
    event.name = "link.capacity_mbps";
    event.fields.push_back(obs::Field::n("value", share));
    events.push_back(std::move(event));
  }
  return events;
}

diag::Diagnosis diagnose_session(
    const core::SessionResult& result, const obs::Observer& observer,
    const std::vector<obs::Event>& capacity_events,
    const diag::DiagOptions& options) {
  const std::vector<obs::Event> trace = observer.trace.snapshot();
  std::vector<obs::Event> merged;
  merged.reserve(trace.size() + capacity_events.size());
  // std::merge is stable and prefers the first range on ties, so a bin's
  // share precedes same-instant session events.
  std::merge(capacity_events.begin(), capacity_events.end(), trace.begin(),
             trace.end(), std::back_inserter(merged),
             [](const obs::Event& a, const obs::Event& b) {
               return a.sim_time < b.sim_time;
             });
  diag::Diagnosis diagnosis = diag::diagnose(result, merged, {}, options);
  diagnosis.trace_dropped = observer.trace.dropped();
  return diagnosis;
}

void fold_diagnosis(TowerDiag& into, const diag::Diagnosis& diagnosis) {
  ++into.sessions_diagnosed;
  for (int c = 0; c < diag::kCauseCount; ++c) {
    into.blamed_s[c] += diagnosis.blamed_s[c];
    into.stall_blamed_s[c] += diagnosis.stall_blamed_s[c];
  }
  into.problem_s += diagnosis.problem_s();
  into.stall_s += diagnosis.stall_s();
  into.startup_s += diagnosis.problem_s() - diagnosis.stall_s();
  into.trace_dropped += diagnosis.trace_dropped;
}

void fold_blame_bins(obs::Timeline& timeline,
                     const diag::Diagnosis& diagnosis) {
  if (timeline.bin_width() <= 0) return;
  int blame_series[diag::kCauseCount];
  for (int c = 0; c < diag::kCauseCount; ++c) {
    blame_series[c] = timeline.add_series(blame_series_name(c),
                                          obs::Timeline::Fold::kSum);
  }
  for (const diag::IntervalDiagnosis& interval : diagnosis.intervals) {
    for (const diag::BlameSpan& span : interval.spans) {
      if (span.end <= span.start) continue;
      const int series = blame_series[static_cast<int>(span.cause)];
      const int first = timeline.bin_index(span.start);
      // bin_index clamps, so a span tail past the horizon folds into the
      // final bin rather than vanishing.
      const int last = timeline.bin_index(span.end - 1e-12);
      for (int bin = first; bin <= last; ++bin) {
        const Seconds bin_start = timeline.bin_start(bin);
        const Seconds bin_end = bin_start + timeline.bin_width();
        const Seconds overlap = (bin == last ? span.end
                                             : std::min(span.end, bin_end)) -
                                std::max(span.start, bin_start);
        if (overlap > 0) timeline.add(series, bin, overlap);
      }
    }
  }
}

}  // namespace vodx::pop
