// Per-tower telemetry timelines for population runs.
//
// Every tower in a vodx::pop run can produce an obs::Timeline describing its
// load and health over simulated time: arrivals/departures per bin,
// concurrent/stalled/in-startup session counts, the displayed-rung mix,
// delivered goodput against the link's trace capacity, and (when diagnosis
// is on) per-bin stall-blame seconds. Three ingredient kinds feed it:
//
//   * schedule prefill — arrivals and departures are a pure function of the
//     tower's arrival schedule, recorded before the simulator runs;
//   * trace prefill — per-bin link capacity integrates the bandwidth trace;
//   * live sampling — a TowerSampler registered as a skip-aware TickClient
//     wakes the event core exactly once per bin boundary, reads each live
//     HostedSession's O(1) Sample and the link's delivered-byte counter,
//     and closes the bin. Between boundaries it never forces a tick, so
//     the event core's skip win is preserved (DESIGN.md §15).
//
// Tower timelines fold post-join in tower order (obs::Timeline merge
// algebra), so the population timeline is byte-identical at any --jobs.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/units.h"
#include "net/link.h"
#include "net/simulator.h"
#include "obs/timeline.h"

namespace vodx::pop {

struct Arrival;            // pop/population.h
struct PopulationReport;   // pop/population.h

/// Displayed-rung histogram buckets: rung_0..rung_4 plus a 5+ bucket.
inline constexpr int kRungBuckets = 6;

/// Timeline series name for blame seconds charged to cause index
/// `cause_index` (diag::Cause order; "blame_fault", ..., "blame_unknown").
const char* blame_series_name(int cause_index);

/// Number of bins a horizon of `horizon` needs at width `bin_width` (the
/// last bin may be partial). At least 1.
int timeline_bin_count(Seconds horizon, Seconds bin_width);

/// A tower timeline with the full series schema registered in canonical
/// order (so merged timelines always agree on column order): arrivals,
/// departures, capacity_mbit, concurrent, stalled, in_startup, rung_0..5,
/// delivered_mbit, and — when `with_blame` — blame_* seconds per cause.
obs::Timeline make_tower_timeline(Seconds bin_width, Seconds horizon,
                                  bool with_blame);

/// Prefills "arrivals"/"departures" from the tower's arrival schedule: one
/// count per bin, departures at min(at + watch, horizon) and only when the
/// viewer actually departs before the horizon. Pure; exposed so bin-edge
/// tests can feed handcrafted schedules.
void record_schedule(obs::Timeline& timeline,
                     const std::vector<Arrival>& arrivals, Seconds horizon);

/// Prefills "capacity_mbit": megabits the link's trace offers per bin.
void record_capacity(obs::Timeline& timeline, const net::BandwidthTrace& trace,
                     Seconds horizon);

/// What the sampler reads from the tower at one bin boundary.
struct LiveSample {
  int concurrent = 0;  ///< arrived, not yet ended
  int stalled = 0;     ///< of those, mid-session rebuffering
  int in_startup = 0;  ///< of those, resolving manifests or prebuffering
  int rung[kRungBuckets] = {};  ///< last displayed rung histogram
};

/// Skip-aware per-tower sampler. next_wake() names the next bin boundary —
/// the only ticks it ever forces — and tick() closes a bin once simulated
/// time reaches it: gauges from `fn`, delivered megabits as the delta of
/// the link's byte counter. Registration order after the Link, so samples
/// see the bin's final link state. finalize() closes any trailing bins the
/// run loop's float accumulation stopped short of (state is frozen after
/// the last executed tick, so late closure samples identical values).
class TowerSampler : public net::TickClient {
 public:
  using SampleFn = std::function<LiveSample()>;

  /// `timeline` must outlive the sampler and hold the make_tower_timeline
  /// schema; `fn` is invoked once per bin close.
  TowerSampler(obs::Timeline& timeline, const net::Link& link, SampleFn fn);

  void tick(Seconds now, Seconds dt) override;
  Seconds next_wake(Seconds now) override;

  /// Closes every still-open bin as of `end` (idempotent).
  void finalize(Seconds end);

  int bins_closed() const { return closed_; }

 private:
  void close_bin();

  obs::Timeline& timeline_;
  const net::Link& link_;
  SampleFn fn_;
  int closed_ = 0;  ///< bins [0, closed_) are final
  Bytes last_delivered_ = 0;
  int concurrent_ = -1;
  int stalled_ = -1;
  int in_startup_ = -1;
  int delivered_ = -1;
  int rung_[kRungBuckets] = {};
};

// --- Population exports ----------------------------------------------------
//
// Rows are keyed by tower: "0".."N-1" in tower-index order, then "pop" for
// the merged population timeline. Columns are the merged timeline's series
// in schema order plus two derived ratios computed at export time only:
// stalled_frac = stalled / max(1, concurrent) and
// utilization = delivered_mbit / capacity_mbit (0 on an idle bin).
// All three are byte-stable.

std::string population_timeline_csv(const PopulationReport& report);
std::string population_timeline_jsonl(const PopulationReport& report);

/// Self-contained HTML dashboard (no external assets, no script): one row
/// per tower plus the population row, each with inline-SVG sparklines for
/// concurrency, stalled fraction, utilization and arrivals.
std::string population_timeline_html(const PopulationReport& report);

}  // namespace vodx::pop
