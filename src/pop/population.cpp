#include "pop/population.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "batch/sweep.h"
#include "batch/thread_pool.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/session_factory.h"
#include "diag/cause.h"
#include "net/link.h"
#include "obs/observer.h"
#include "obs/profiler.h"
#include "player/player.h"
#include "pop/pop_timeline.h"
#include "services/service_catalog.h"
#include "trace/cellular_profiles.h"

namespace vodx::pop {

namespace {

// Coordinate tags for batch::derive_seed — distinct per draw family so the
// streams never correlate.
constexpr std::uint64_t kTraceTag = 0x746F7765ULL;    // "towe"
constexpr std::uint64_t kSlotTag = 0x736C6F74ULL;     // "slot"
constexpr std::uint64_t kFlashTag = 0x666C6173ULL;    // "flas"
constexpr std::uint64_t kContentTag = 0x636F6E74ULL;  // "cont"
constexpr std::uint64_t kOriginTag = 0x6F726967ULL;   // "orig"
constexpr std::uint64_t kFaultTag = 0x6661756CULL;    // "faul"

/// Knuth's product-of-uniforms Poisson draw; fine for the per-second rates
/// a cell sees (lambda well under ~30).
int poisson(Rng& rng, double lambda) {
  if (lambda <= 0) return 0;
  const double limit = std::exp(-lambda);
  int k = 0;
  double product = 1.0;
  do {
    ++k;
    product *= rng.uniform(0, 1);
  } while (product > limit);
  return k - 1;
}

/// Instantaneous arrival rate per second at simulated time t.
double rate_at(const ArrivalProcess& process, Seconds t) {
  double rate = process.rate_per_min / 60.0;
  if (process.diurnal_amplitude > 0 && process.diurnal_period > 0) {
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    rate *= 1.0 + process.diurnal_amplitude *
                      std::sin(kTwoPi * t / process.diurnal_period);
  }
  return std::max(0.0, rate);
}

/// Per-arrival material drawn from the slot's (or the flash window's) own
/// stream; `counter` is the tower-local generation ordinal that keys the
/// content seed.
Arrival draw_arrival(const PopulationConfig& config, Rng& rng, Seconds at,
                     int tower_index, int service_count, int counter) {
  Arrival arrival;
  arrival.at = at;
  arrival.watch =
      config.watch_sigma > 0
          ? std::max(1.0, rng.lognormal(config.watch_time, config.watch_sigma))
          : config.watch_time;
  arrival.service_index =
      static_cast<int>(rng.uniform_int(0, service_count - 1));
  arrival.content_seed =
      batch::derive_seed(config.seed, kContentTag,
                         static_cast<std::uint64_t>(tower_index),
                         static_cast<std::uint64_t>(counter));
  return arrival;
}

}  // namespace

std::vector<Arrival> tower_arrivals(const PopulationConfig& config,
                                    int tower_index, int service_count,
                                    int* capped) {
  if (capped != nullptr) *capped = 0;
  VODX_ASSERT(service_count > 0, "empty service pool");
  std::vector<Arrival> arrivals;
  int counter = 0;
  // Poisson-by-1s-slot: each slot's draw count and placements come from the
  // slot's own stream, keyed (seed, tower, slot) — a worker can regenerate
  // any tower's schedule without any shared state.
  const int slots = static_cast<int>(config.horizon);
  for (int slot = 0; slot < slots; ++slot) {
    const double lambda =
        rate_at(config.arrivals, static_cast<Seconds>(slot) + 0.5);
    Rng rng(batch::derive_seed(config.seed, kSlotTag,
                               static_cast<std::uint64_t>(tower_index),
                               static_cast<std::uint64_t>(slot)));
    const int n = poisson(rng, lambda);
    for (int k = 0; k < n; ++k) {
      const Seconds at = static_cast<Seconds>(slot) + rng.uniform(0, 1);
      arrivals.push_back(draw_arrival(config, rng, at, tower_index,
                                      service_count, counter++));
    }
  }
  const ArrivalProcess& process = config.arrivals;
  if (process.flash_at >= 0 && process.flash_arrivals > 0) {
    Rng rng(batch::derive_seed(config.seed, kFlashTag,
                               static_cast<std::uint64_t>(tower_index)));
    for (int k = 0; k < process.flash_arrivals; ++k) {
      const Seconds at =
          process.flash_at +
          rng.uniform(0, std::max(1e-3, process.flash_window));
      if (at >= config.horizon) continue;
      arrivals.push_back(draw_arrival(config, rng, at, tower_index,
                                      service_count, counter++));
    }
  }
  // Stable by time: same-instant arrivals keep generation order, so the
  // schedule is reproducible float for float.
  std::stable_sort(arrivals.begin(), arrivals.end(),
                   [](const Arrival& a, const Arrival& b) {
                     return a.at < b.at;
                   });
  if (config.max_sessions_per_tower > 0 &&
      static_cast<int>(arrivals.size()) > config.max_sessions_per_tower) {
    if (capped != nullptr) {
      *capped = static_cast<int>(arrivals.size()) -
                config.max_sessions_per_tower;
    }
    arrivals.resize(static_cast<std::size_t>(config.max_sessions_per_tower));
  }
  return arrivals;
}

namespace {

TowerReport run_tower(const PopulationConfig& config, int tower_index,
                      const std::vector<services::ServiceSpec>& pool) {
  VODX_PROFILE_ZONE("pop.tower");
  const int profile_id =
      config.towers[static_cast<std::size_t>(tower_index)];
  core::SessionFactory::validate_profile(profile_id);

  net::Simulator sim(config.tick);
  sim.set_core(config.sim_core);
  sim.set_wall_budget(config.wall_budget);
  sim.set_max_events_per_instant(config.max_events_per_instant);
  net::Link link(
      sim,
      trace::cellular_profile(
          profile_id,
          batch::derive_seed(config.seed, kTraceTag,
                             static_cast<std::uint64_t>(tower_index))),
      config.rtt);

  int capped = 0;
  const std::vector<Arrival> arrivals = tower_arrivals(
      config, tower_index, static_cast<int>(pool.size()), &capped);

  core::SessionFactory factory;
  factory.session_duration = config.horizon;
  factory.content_duration = config.content_duration;
  factory.sim_core = config.sim_core;

  // One origin state per tower: every session the tower hosts shares this
  // edge cache and breaker (the tower's simulator is single-threaded, so
  // the sharing is race-free by construction). shared_content collapses the
  // tower onto one title so the cache sees real cross-session hits.
  const bool with_origin = config.origin.mode != origin::Mode::kNone;
  std::shared_ptr<origin::OriginState> origin_state;
  if (with_origin) origin_state = std::make_shared<origin::OriginState>();
  const std::uint64_t tower_content_seed = batch::derive_seed(
      config.seed, kContentTag, static_cast<std::uint64_t>(tower_index));

  struct Hosted {
    std::unique_ptr<core::HostedSession> session;
    Seconds departure = 0;  ///< min(arrival + watch, horizon)
  };
  std::vector<Hosted> hosted(arrivals.size());
  int live = 0;
  int peak = 0;
  Seconds peak_time = 0;

  // Per-session observers for the diagnosed prefix of the arrival order.
  // Masked to the evidence categories diag reads, so undiagnosed-category
  // emission sites stay on their null-observer fast path.
  const bool diagnose = config.diagnose;
  std::vector<std::unique_ptr<obs::Observer>> observers(
      diagnose ? arrivals.size() : 0);
  const auto diagnosed_ordinal = [&](std::size_t i) {
    return diagnose && (config.diag_session_budget <= 0 ||
                        static_cast<int>(i) < config.diag_session_budget);
  };

  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const Arrival& a = arrivals[i];
    sim.schedule(a.at, [&, i] {
      const Arrival& arr = arrivals[i];
      core::SessionConfig session_config = factory.config(
          pool[static_cast<std::size_t>(arr.service_index)],
          net::BandwidthTrace());  // the shared link already embodies it
      session_config.content_seed =
          config.shared_content ? tower_content_seed : arr.content_seed;
      session_config.tick = config.tick;
      session_config.rtt = config.rtt;
      if (with_origin) {
        session_config.origin = config.origin;
        // Per-session jitter stream, keyed like every other pop draw.
        session_config.origin.seed = batch::derive_seed(
            config.seed, kOriginTag, static_cast<std::uint64_t>(tower_index),
            static_cast<std::uint64_t>(i));
        session_config.origin_state = origin_state;
      }
      if (!config.fault_plan.empty()) {
        faults::FaultPlan plan = config.fault_plan;
        plan.seed = batch::derive_seed(config.seed, kFaultTag,
                                       static_cast<std::uint64_t>(tower_index),
                                       static_cast<std::uint64_t>(i));
        session_config.fault_plan = std::move(plan);
      }
      if (diagnosed_ordinal(i)) {
        observers[i] = std::make_unique<obs::Observer>(std::size_t{1} << 15);
        observers[i]->trace.set_category_mask(
            obs::bit(obs::Category::kTcp) | obs::bit(obs::Category::kFault) |
            obs::bit(obs::Category::kLink) |
            obs::bit(obs::Category::kOrigin));
        observers[i]->trace.set_clock([&sim] { return sim.now(); });
        session_config.observer = observers[i].get();
      }
      Hosted& slot = hosted[i];
      slot.session =
          std::make_unique<core::HostedSession>(sim, link, session_config);
      slot.session->start();
      ++live;
      if (live > peak) {
        peak = live;
        peak_time = sim.now();
      }
      slot.departure = std::min(arr.at + arr.watch, config.horizon);
      if (slot.departure < config.horizon) {
        sim.schedule(std::max(0.0, slot.departure - sim.now()), [&, i] {
          hosted[i].session->stop();
          --live;
        });
      }
    });
  }

  // Telemetry: prefill the schedule-derived and trace-derived series, then
  // register the skip-aware sampler (after the Link, so a bin close reads
  // the bin's final link state).
  const bool with_timeline = config.collect_timeline || diagnose;
  obs::Timeline timeline;
  std::unique_ptr<TowerSampler> sampler;
  if (with_timeline) {
    timeline = make_tower_timeline(config.timeline_bin, config.horizon,
                                   diagnose);
    record_schedule(timeline, arrivals, config.horizon);
    record_capacity(timeline, link.trace(), config.horizon);
    sampler = std::make_unique<TowerSampler>(timeline, link, [&] {
      LiveSample sample;
      for (const Hosted& h : hosted) {
        if (h.session == nullptr) continue;
        const core::HostedSession::Sample s = h.session->sample();
        if (s.state == player::PlayerState::kEnded) continue;  // departed
        ++sample.concurrent;
        if (s.state == player::PlayerState::kRebuffering) ++sample.stalled;
        if (s.state == player::PlayerState::kResolving ||
            s.state == player::PlayerState::kStartup) {
          ++sample.in_startup;
        }
        if (s.rung >= 0) ++sample.rung[std::min(s.rung, kRungBuckets - 1)];
      }
      return sample;
    });
    sim.add_tick_client(sampler.get());
  }

  sim.run_until(config.horizon);
  if (sampler != nullptr) sampler->finalize(config.horizon);

  TowerReport report;
  report.profile_id = profile_id;
  report.capped_arrivals = capped;
  report.peak_concurrent = peak;
  report.time_of_peak = peak_time;

  std::vector<double> startups;
  std::vector<double> stalls;
  std::vector<double> rates;
  for (std::size_t i = 0; i < hosted.size(); ++i) {
    if (hosted[i].session == nullptr) continue;  // arrival beyond the run
    const Arrival& a = arrivals[i];
    const core::SessionResult result =
        hosted[i].session->finish_light(sim.now());

    SessionOutcome outcome;
    outcome.tower = tower_index;
    outcome.ordinal = static_cast<int>(report.outcomes.size());
    outcome.arrival = a.at;
    outcome.departure = hosted[i].departure;
    outcome.service =
        pool[static_cast<std::size_t>(a.service_index)].name;
    outcome.startup_delay = result.ground_truth.startup_delay;
    outcome.stall_time = result.ground_truth.total_stall;
    outcome.stall_count = result.ground_truth.stall_count;
    outcome.total_bytes = result.ground_truth.total_bytes;
    const Seconds active =
        std::max(config.tick, outcome.departure - outcome.arrival);
    outcome.mbps =
        static_cast<double>(outcome.total_bytes) * 8.0 / active / 1e6;
    outcome.final_state = player::to_string(result.final_state);

    if (outcome.startup_delay >= 0) startups.push_back(outcome.startup_delay);
    stalls.push_back(outcome.stall_time);
    rates.push_back(outcome.mbps);
    report.outcomes.push_back(std::move(outcome));
  }

  if (diagnose) {
    const std::vector<obs::Event> capacity_events =
        fair_share_capacity_events(timeline);
    diag::DiagOptions options;
    options.rtt = config.rtt;
    for (std::size_t i = 0; i < hosted.size(); ++i) {
      if (hosted[i].session == nullptr) continue;
      if (observers[i] == nullptr) {
        ++report.diag.sessions_skipped;
        continue;
      }
      // Diagnosis reads the full finish() analysis (finish_light leaves
      // result.traffic empty, blinding the deficit/ABR evidence); outcomes
      // above still fold from finish_light, so they are byte-identical
      // whether diagnosis is on or off.
      const core::SessionResult full = hosted[i].session->finish(sim.now());
      const diag::Diagnosis diagnosis =
          diagnose_session(full, *observers[i], capacity_events, options);
      fold_diagnosis(report.diag, diagnosis);
      fold_blame_bins(timeline, diagnosis);
    }
  }
  report.timeline = std::move(timeline);
  if (with_origin) report.origin_totals = origin_state->totals;

  // Sessions must be destroyed before sim + link leave scope; explicit for
  // clarity (the vector would go out of scope in the right order anyway).
  hosted.clear();

  report.sessions = static_cast<int>(report.outcomes.size());
  report.startup = quantiles(startups);
  report.stall = quantiles(stalls);
  report.jain = jain_index(rates);
  report.mean_mbps = mean(rates);
  return report;
}

}  // namespace

PopulationReport run_population(const PopulationConfig& config) {
  // Resolve the service pool up front: unknown names throw here, once, and
  // the catalog's magic static warms before any worker spawns (same
  // rationale as batch::run_sweep).
  std::vector<services::ServiceSpec> pool;
  if (config.services.empty()) {
    pool = services::catalog();
  } else {
    for (const std::string& name : config.services) {
      pool.push_back(services::service(name));
    }
  }
  for (int id : config.towers) core::SessionFactory::validate_profile(id);
  for (int id : config.towers) trace::profile_mean(id);

  PopulationReport report;
  report.towers = batch::parallel_map<TowerReport>(
      config.towers.size(), config.jobs,
      [&](std::size_t index) {
        return run_tower(config, static_cast<int>(index), pool);
      });

  std::vector<double> startups;
  std::vector<double> stalls;
  struct PerService {
    std::vector<double> startups, stalls, rates;
  };
  std::vector<PerService> per_service(pool.size());
  report.diagnosed = config.diagnose;
  report.origin_enabled = config.origin.mode != origin::Mode::kNone;
  for (const TowerReport& tower : report.towers) {
    report.total_sessions += tower.sessions;
    report.timeline.merge_from(tower.timeline);
    report.diag.merge_from(tower.diag);
    report.origin_totals.merge_from(tower.origin_totals);
    for (const SessionOutcome& outcome : tower.outcomes) {
      if (outcome.startup_delay >= 0) {
        startups.push_back(outcome.startup_delay);
      } else {
        ++report.never_started;
      }
      stalls.push_back(outcome.stall_time);
      for (std::size_t s = 0; s < pool.size(); ++s) {
        if (pool[s].name != outcome.service) continue;
        if (outcome.startup_delay >= 0) {
          per_service[s].startups.push_back(outcome.startup_delay);
        }
        per_service[s].stalls.push_back(outcome.stall_time);
        per_service[s].rates.push_back(outcome.mbps);
        break;
      }
    }
  }
  report.startup = quantiles(startups);
  report.stall = quantiles(stalls);
  for (std::size_t s = 0; s < pool.size(); ++s) {
    ServiceRollup rollup;
    rollup.service = pool[s].name;
    rollup.sessions = static_cast<int>(per_service[s].stalls.size());
    rollup.startup = quantiles(per_service[s].startups);
    rollup.stall = quantiles(per_service[s].stalls);
    rollup.mean_mbps = mean(per_service[s].rates);
    report.by_service.push_back(std::move(rollup));
  }
  return report;
}

std::string population_text(const PopulationReport& report) {
  std::string out = format(
      "population: %zu tower(s), %d session(s), %d never started playback\n",
      report.towers.size(), report.total_sessions, report.never_started);
  out +=
      "tower profile sessions capped  peak   peak_t  start_p50  start_p95  "
      "start_p99  stall_p50  stall_p95  stall_p99   jain  mean_mbps\n";
  for (std::size_t i = 0; i < report.towers.size(); ++i) {
    const TowerReport& t = report.towers[i];
    out += format(
        "%5zu %7d %8d %6d %5d %8.1f %10.2f %10.2f %10.2f %10.2f %10.2f "
        "%10.2f %6.3f %10.3f\n",
        i, t.profile_id, t.sessions, t.capped_arrivals, t.peak_concurrent,
        t.time_of_peak, t.startup.p50, t.startup.p95, t.startup.p99,
        t.stall.p50, t.stall.p95, t.stall.p99, t.jain, t.mean_mbps);
  }
  for (std::size_t i = 0; i < report.towers.size(); ++i) {
    const TowerReport& t = report.towers[i];
    if (t.capped_arrivals == 0) continue;
    out += format(
        "warning: tower %zu dropped %d arrival(s) at the "
        "max-sessions-per-tower cap; its distributions are censored\n",
        i, t.capped_arrivals);
  }
  out += "service  sessions  start_p50  start_p95  start_p99  stall_p50  "
         "stall_p95  stall_p99  mean_mbps\n";
  for (const ServiceRollup& s : report.by_service) {
    if (s.sessions == 0) continue;
    out += format(
        "%-7s %9d %10.2f %10.2f %10.2f %10.2f %10.2f %10.2f %10.3f\n",
        s.service.c_str(), s.sessions, s.startup.p50, s.startup.p95,
        s.startup.p99, s.stall.p50, s.stall.p95, s.stall.p99, s.mean_mbps);
  }
  out += format(
      "overall: startup p50/p95/p99 = %.2f/%.2f/%.2f s, "
      "stall p50/p95/p99 = %.2f/%.2f/%.2f s\n",
      report.startup.p50, report.startup.p95, report.startup.p99,
      report.stall.p50, report.stall.p95, report.stall.p99);
  if (report.diagnosed) {
    const TowerDiag& d = report.diag;
    out += format(
        "diag: %d session(s) diagnosed, %d skipped (budget); "
        "stall %.2f s, startup %.2f s, stall attribution %.1f%%\n",
        d.sessions_diagnosed, d.sessions_skipped, d.stall_s, d.startup_s,
        d.stall_attributed_fraction() * 100.0);
    out += "cause                 blamed_s    stall_s  stall_share\n";
    for (int c = 0; c < diag::kCauseCount; ++c) {
      const double share =
          d.stall_s > 0 ? d.stall_blamed_s[c] / d.stall_s : 0.0;
      out += format("%-22s %8.2f %10.2f %12.3f\n",
                    diag::to_string(static_cast<diag::Cause>(c)),
                    d.blamed_s[c], d.stall_blamed_s[c], share);
    }
    if (d.trace_dropped > 0) {
      out += format(
          "warning: %llu trace event(s) dropped across diagnosed sessions; "
          "evidence may be incomplete\n",
          static_cast<unsigned long long>(d.trace_dropped));
    }
  }
  if (report.origin_enabled) {
    const origin::OriginState::Totals& o = report.origin_totals;
    const std::int64_t lookups = o.hits + o.misses;
    const double hit_rate =
        lookups > 0 ? static_cast<double>(o.hits) / lookups : 0.0;
    out += format(
        "origin: %lld hit(s) / %lld miss(es) (%.1f%% hit rate), "
        "%lld expired, %lld coalesced, %lld duplicate fill(s), "
        "%lld flush(es)\n",
        static_cast<long long>(o.hits), static_cast<long long>(o.misses),
        hit_rate * 100.0, static_cast<long long>(o.expired),
        static_cast<long long>(o.coalesced),
        static_cast<long long>(o.dup_fills),
        static_cast<long long>(o.flushes));
    out += format(
        "origin failover: %lld retry(ies), %lld breaker trip(s), "
        "%lld probe(s), %lld served by secondary, %lld error(s)\n",
        static_cast<long long>(o.retries), static_cast<long long>(o.trips),
        static_cast<long long>(o.probes),
        static_cast<long long>(o.secondary),
        static_cast<long long>(o.errors));
    if (o.consistency_failures > 0) {
      out += format(
          "warning: %lld cache-consistency failure(s) — cached bytes "
          "diverged from the origin copy\n",
          static_cast<long long>(o.consistency_failures));
    }
  }
  return out;
}

std::string population_jsonl(const PopulationReport& report) {
  std::string out;
  for (std::size_t i = 0; i < report.towers.size(); ++i) {
    const TowerReport& t = report.towers[i];
    out += format(
        R"({"type":"tower","tower":%zu,"profile":%d,"sessions":%d,)"
        R"("capped_arrivals":%d,"peak_concurrent":%d,"time_of_peak_s":%.3f})",
        i, t.profile_id, t.sessions, t.capped_arrivals, t.peak_concurrent,
        t.time_of_peak);
    out += '\n';
  }
  for (const TowerReport& tower : report.towers) {
    for (const SessionOutcome& s : tower.outcomes) {
      out += format(
          R"({"tower":%d,"profile":%d,"ordinal":%d,"service":"%s",)"
          R"("arrival_s":%.3f,"departure_s":%.3f,"startup_delay_s":%.3f,)"
          R"("stall_time_s":%.3f,"stall_count":%d,"total_bytes":%lld,)"
          R"("mbps":%.4f,"final_state":"%s"})",
          s.tower, tower.profile_id, s.ordinal, s.service.c_str(), s.arrival,
          s.departure, s.startup_delay, s.stall_time, s.stall_count,
          static_cast<long long>(s.total_bytes), s.mbps,
          s.final_state.c_str());
      out += '\n';
    }
  }
  return out;
}

std::string population_csv(const PopulationReport& report) {
  std::string out =
      "tower,profile,ordinal,service,arrival_s,departure_s,startup_delay_s,"
      "stall_time_s,stall_count,total_bytes,mbps,final_state\n";
  for (const TowerReport& tower : report.towers) {
    for (const SessionOutcome& s : tower.outcomes) {
      out += format("%d,%d,%d,%s,%.3f,%.3f,%.3f,%.3f,%d,%lld,%.4f,%s\n",
                    s.tower, tower.profile_id, s.ordinal, s.service.c_str(),
                    s.arrival, s.departure, s.startup_delay, s.stall_time,
                    s.stall_count, static_cast<long long>(s.total_bytes),
                    s.mbps, s.final_state.c_str());
    }
  }
  return out;
}

std::string population_tower_csv(const PopulationReport& report) {
  std::string out =
      "tower,profile,sessions,capped_arrivals,peak_concurrent,time_of_peak_s,"
      "startup_p50,startup_p95,startup_p99,stall_p50,stall_p95,stall_p99,"
      "jain,mean_mbps";
  if (report.diagnosed) {
    out += ",sessions_diagnosed,sessions_skipped,stall_attributed_frac";
    for (int c = 0; c < diag::kCauseCount; ++c) {
      out += format(",stall_s_%s", diag::to_string(static_cast<diag::Cause>(c)));
    }
  }
  out += '\n';
  for (std::size_t i = 0; i < report.towers.size(); ++i) {
    const TowerReport& t = report.towers[i];
    out += format("%zu,%d,%d,%d,%d,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.4f,"
                  "%.4f",
                  i, t.profile_id, t.sessions, t.capped_arrivals,
                  t.peak_concurrent, t.time_of_peak, t.startup.p50,
                  t.startup.p95, t.startup.p99, t.stall.p50, t.stall.p95,
                  t.stall.p99, t.jain, t.mean_mbps);
    if (report.diagnosed) {
      out += format(",%d,%d,%.4f", t.diag.sessions_diagnosed,
                    t.diag.sessions_skipped,
                    t.diag.stall_attributed_fraction());
      for (int c = 0; c < diag::kCauseCount; ++c) {
        out += format(",%.3f", t.diag.stall_blamed_s[c]);
      }
    }
    out += '\n';
  }
  return out;
}

}  // namespace vodx::pop
