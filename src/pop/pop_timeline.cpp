#include "pop/pop_timeline.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/strings.h"
#include "diag/cause.h"
#include "pop/population.h"

namespace vodx::pop {

namespace {

constexpr const char* kRungNames[kRungBuckets] = {
    "rung_0", "rung_1", "rung_2", "rung_3", "rung_4", "rung_5",
};

// diag::Cause order (cause.h); blame columns exist only on diagnosed runs.
constexpr const char* kBlameNames[] = {
    "blame_fault",   "blame_restart", "blame_failover",
    "blame_cache_miss", "blame_origin",  "blame_deficit",
    "blame_abr",     "blame_pacing",  "blame_unknown",
};
static_assert(std::size(kBlameNames) == diag::kCauseCount,
              "one blame column per diag::Cause, in enum order");

}  // namespace

const char* blame_series_name(int cause_index) {
  VODX_ASSERT(cause_index >= 0 &&
                  cause_index < static_cast<int>(std::size(kBlameNames)),
              "blame cause index out of range");
  return kBlameNames[cause_index];
}

int timeline_bin_count(Seconds horizon, Seconds bin_width) {
  VODX_ASSERT(bin_width > 0, "timeline bin width must be positive");
  return std::max(1, static_cast<int>(std::ceil(horizon / bin_width - 1e-9)));
}

obs::Timeline make_tower_timeline(Seconds bin_width, Seconds horizon,
                                  bool with_blame) {
  obs::Timeline timeline(bin_width, timeline_bin_count(horizon, bin_width));
  using Fold = obs::Timeline::Fold;
  timeline.add_series("arrivals", Fold::kSum);
  timeline.add_series("departures", Fold::kSum);
  timeline.add_series("capacity_mbit", Fold::kSum);
  timeline.add_series("concurrent", Fold::kSum);
  timeline.add_series("stalled", Fold::kSum);
  timeline.add_series("in_startup", Fold::kSum);
  for (const char* name : kRungNames) timeline.add_series(name, Fold::kSum);
  timeline.add_series("delivered_mbit", Fold::kSum);
  if (with_blame) {
    for (const char* name : kBlameNames) timeline.add_series(name, Fold::kSum);
  }
  return timeline;
}

void record_schedule(obs::Timeline& timeline,
                     const std::vector<Arrival>& arrivals, Seconds horizon) {
  const int arrivals_series = timeline.add_series(
      "arrivals", obs::Timeline::Fold::kSum);
  const int departures_series = timeline.add_series(
      "departures", obs::Timeline::Fold::kSum);
  for (const Arrival& arrival : arrivals) {
    if (arrival.at >= horizon) continue;
    timeline.add(arrivals_series, timeline.bin_index(arrival.at), 1.0);
    const Seconds depart = std::min(arrival.at + arrival.watch, horizon);
    // Sessions still live at the horizon are folded in-place, not departed.
    if (depart < horizon) {
      timeline.add(departures_series, timeline.bin_index(depart), 1.0);
    }
  }
}

void record_capacity(obs::Timeline& timeline, const net::BandwidthTrace& trace,
                     Seconds horizon) {
  const int capacity_series = timeline.add_series(
      "capacity_mbit", obs::Timeline::Fold::kSum);
  for (int bin = 0; bin < timeline.bin_count(); ++bin) {
    const Seconds start = timeline.bin_start(bin);
    const Seconds end =
        std::min(horizon, timeline.bin_start(bin) + timeline.bin_width());
    if (end <= start) break;
    timeline.set(capacity_series, bin, trace.bits_between(start, end) / 1e6);
  }
}

TowerSampler::TowerSampler(obs::Timeline& timeline, const net::Link& link,
                           SampleFn fn)
    : timeline_(timeline), link_(link), fn_(std::move(fn)) {
  concurrent_ = timeline_.add_series("concurrent", obs::Timeline::Fold::kSum);
  stalled_ = timeline_.add_series("stalled", obs::Timeline::Fold::kSum);
  in_startup_ = timeline_.add_series("in_startup", obs::Timeline::Fold::kSum);
  delivered_ =
      timeline_.add_series("delivered_mbit", obs::Timeline::Fold::kSum);
  for (int r = 0; r < kRungBuckets; ++r) {
    rung_[r] = timeline_.add_series(kRungNames[r], obs::Timeline::Fold::kSum);
  }
}

void TowerSampler::close_bin() {
  const int bin = closed_;
  const LiveSample sample = fn_();
  timeline_.set(concurrent_, bin, sample.concurrent);
  timeline_.set(stalled_, bin, sample.stalled);
  timeline_.set(in_startup_, bin, sample.in_startup);
  for (int r = 0; r < kRungBuckets; ++r) {
    timeline_.set(rung_[r], bin, sample.rung[r]);
  }
  const Bytes delivered = link_.total_delivered();
  timeline_.set(delivered_, bin,
                static_cast<double>(delivered - last_delivered_) * 8.0 / 1e6);
  last_delivered_ = delivered;
  ++closed_;
}

void TowerSampler::tick(Seconds now, Seconds dt) {
  (void)dt;
  // The 1e-9 forgiveness matches the simulator's wake slack: the grid tick
  // nearest a bin boundary may sit a hair below k * bin_width.
  while (closed_ < timeline_.bin_count() &&
         now + 1e-9 >= timeline_.bin_start(closed_) + timeline_.bin_width()) {
    close_bin();
  }
}

Seconds TowerSampler::next_wake(Seconds now) {
  (void)now;
  if (closed_ >= timeline_.bin_count()) return kNeverWakes;
  return timeline_.bin_start(closed_) + timeline_.bin_width();
}

void TowerSampler::finalize(Seconds end) {
  (void)end;
  // run_until's accumulated `now += tick` recurrence can stop one float ulp
  // short of the horizon, in which case the final boundary tick never ran.
  // Nothing fires after the last executed tick, so closing late reads the
  // same frozen state that tick would have seen.
  while (closed_ < timeline_.bin_count()) close_bin();
}

// --- Population exports ----------------------------------------------------

namespace {

/// Derived ratios for one bin of one timeline; 0 on empty/idle bins.
struct DerivedBin {
  double stalled_frac = 0;
  double utilization = 0;
};

DerivedBin derived_bin(const obs::Timeline& timeline, int bin) {
  DerivedBin out;
  const int concurrent = timeline.find("concurrent");
  const int stalled = timeline.find("stalled");
  const int delivered = timeline.find("delivered_mbit");
  const int capacity = timeline.find("capacity_mbit");
  if (concurrent >= 0 && stalled >= 0) {
    out.stalled_frac = timeline.value(stalled, bin) /
                       std::max(1.0, timeline.value(concurrent, bin));
  }
  if (delivered >= 0 && capacity >= 0 &&
      timeline.value(capacity, bin) > 0) {
    out.utilization =
        timeline.value(delivered, bin) / timeline.value(capacity, bin);
  }
  return out;
}

/// Visits every exported row: each tower by index, then the merged
/// population timeline under the key "pop".
void for_each_row(const PopulationReport& report,
                  const std::function<void(const std::string& key,
                                           const obs::Timeline&)>& fn) {
  for (std::size_t i = 0; i < report.towers.size(); ++i) {
    if (report.towers[i].timeline.empty()) continue;
    fn(format("%zu", i), report.towers[i].timeline);
  }
  if (!report.timeline.empty()) fn("pop", report.timeline);
}

}  // namespace

std::string population_timeline_csv(const PopulationReport& report) {
  // The merged timeline carries the union schema; its series order is the
  // canonical column order for every row.
  const obs::Timeline& schema = report.timeline;
  std::string out = "tower,bin,t_start_s";
  for (const obs::Timeline::Series& series : schema.all()) {
    out += ',';
    out += series.name;
  }
  out += ",stalled_frac,utilization\n";
  for_each_row(report, [&](const std::string& key,
                           const obs::Timeline& timeline) {
    for (int bin = 0; bin < timeline.bin_count(); ++bin) {
      out += format("%s,%d,%.3f", key.c_str(), bin, timeline.bin_start(bin));
      for (const obs::Timeline::Series& series : schema.all()) {
        const int index = timeline.find(series.name);
        out += format(",%.6g", index >= 0 ? timeline.value(index, bin) : 0.0);
      }
      const DerivedBin derived = derived_bin(timeline, bin);
      out += format(",%.6g,%.6g\n", derived.stalled_frac, derived.utilization);
    }
  });
  return out;
}

std::string population_timeline_jsonl(const PopulationReport& report) {
  const obs::Timeline& schema = report.timeline;
  std::string out;
  for_each_row(report, [&](const std::string& key,
                           const obs::Timeline& timeline) {
    for (int bin = 0; bin < timeline.bin_count(); ++bin) {
      out += format(R"({"tower":"%s","bin":%d,"t_start_s":%.3f)", key.c_str(),
                    bin, timeline.bin_start(bin));
      for (const obs::Timeline::Series& series : schema.all()) {
        const int index = timeline.find(series.name);
        out += format(R"(,"%s":%.6g)", series.name.c_str(),
                      index >= 0 ? timeline.value(index, bin) : 0.0);
      }
      const DerivedBin derived = derived_bin(timeline, bin);
      out += format(R"(,"stalled_frac":%.6g,"utilization":%.6g})",
                    derived.stalled_frac, derived.utilization);
      out += '\n';
    }
  });
  return out;
}

namespace {

/// Inline-SVG sparkline: values normalised to their own max, rendered as a
/// polyline (flat baseline when the series never rises above zero).
std::string sparkline(const std::vector<double>& values, const char* color) {
  constexpr double kWidth = 240, kHeight = 36, kPad = 2;
  double peak = 0;
  for (double v : values) peak = std::max(peak, v);
  std::string points;
  const int n = std::max<std::size_t>(values.size(), 2);
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double x = kPad + (kWidth - 2 * kPad) * static_cast<double>(i) /
                                static_cast<double>(n - 1);
    const double frac = peak > 0 ? values[i] / peak : 0;
    const double y = kHeight - kPad - (kHeight - 2 * kPad) * frac;
    if (!points.empty()) points += ' ';
    points += format("%.1f,%.1f", x, y);
  }
  return format(
      "<svg class=\"spark\" width=\"%.0f\" height=\"%.0f\" "
      "viewBox=\"0 0 %.0f %.0f\"><polyline fill=\"none\" stroke=\"%s\" "
      "stroke-width=\"1.5\" points=\"%s\"/></svg>"
      "<span class=\"peak\">%.3g</span>",
      kWidth, kHeight, kWidth, kHeight, color, points.c_str(), peak);
}

std::vector<double> series_values(const obs::Timeline& timeline,
                                  const char* name) {
  std::vector<double> values(static_cast<std::size_t>(timeline.bin_count()),
                             0.0);
  const int index = timeline.find(name);
  if (index < 0) return values;
  for (int bin = 0; bin < timeline.bin_count(); ++bin) {
    values[static_cast<std::size_t>(bin)] = timeline.value(index, bin);
  }
  return values;
}

std::vector<double> derived_values(const obs::Timeline& timeline,
                                   bool utilization) {
  std::vector<double> values(static_cast<std::size_t>(timeline.bin_count()),
                             0.0);
  for (int bin = 0; bin < timeline.bin_count(); ++bin) {
    const DerivedBin derived = derived_bin(timeline, bin);
    values[static_cast<std::size_t>(bin)] =
        utilization ? derived.utilization : derived.stalled_frac;
  }
  return values;
}

}  // namespace

std::string population_timeline_html(const PopulationReport& report) {
  std::string out =
      "<!doctype html>\n<html><head><meta charset=\"utf-8\">\n"
      "<title>vodx population timeline</title>\n"
      "<style>\n"
      "body{font:13px/1.4 system-ui,sans-serif;margin:24px;color:#222}\n"
      "table{border-collapse:collapse}\n"
      "th,td{padding:4px 10px;text-align:left;vertical-align:middle;"
      "border-bottom:1px solid #e3e3e3}\n"
      "th{font-weight:600;color:#555}\n"
      ".spark{vertical-align:middle}\n"
      ".peak{color:#888;font-size:11px;margin-left:4px}\n"
      "</style></head><body>\n";
  out += format("<h2>Population timeline</h2>\n<p>%zu tower(s), bin width "
                "%.3g s, %d bin(s)</p>\n",
                report.towers.size(), report.timeline.bin_width(),
                report.timeline.bin_count());
  out += "<table>\n<tr><th>tower</th><th>concurrent</th>"
         "<th>stalled frac</th><th>utilization</th><th>arrivals</th></tr>\n";
  for_each_row(report, [&](const std::string& key,
                           const obs::Timeline& timeline) {
    out += format("<tr><td>%s</td>", key.c_str());
    out += "<td>" + sparkline(series_values(timeline, "concurrent"), "#1565c0") +
           "</td>";
    out += "<td>" + sparkline(derived_values(timeline, false), "#c62828") +
           "</td>";
    out += "<td>" + sparkline(derived_values(timeline, true), "#2e7d32") +
           "</td>";
    out += "<td>" + sparkline(series_values(timeline, "arrivals"), "#6a1b9a") +
           "</td></tr>\n";
  });
  out += "</table>\n</body></html>\n";
  return out;
}

}  // namespace vodx::pop
