// Population-scale multi-session simulation on shared cells.
//
// The paper measures one session per run; the production-scale question
// (ROADMAP item 1) is what happens when many sessions contend for the same
// cell. One net::Simulator per tower hosts N core::HostedSessions whose TCP
// flows share the tower's net::Link bottleneck; viewers arrive by a Poisson
// process with diurnal modulation and optional flash crowds, watch for a
// while, and depart (their flows detach and the link redistributes the
// share max-min fairly on the next tick). Per-session ground truth folds
// into population QoE distributions: p50/p95/p99 startup delay and stall
// time, Jain fairness over per-session throughput, peak concurrency.
//
// Determinism contract (same as batch::run_sweep): every stochastic draw
// derives from batch::derive_seed over pure coordinates — (seed, tower,
// slot) for arrivals, (seed, tower, ordinal) for per-session material — and
// towers are keyed by index, so `--jobs 1/2/8` produce byte-identical
// reports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/units.h"
#include "faults/fault_plan.h"
#include "net/simulator.h"
#include "obs/timeline.h"
#include "origin/origin.h"
#include "pop/pop_diag.h"

namespace vodx::pop {

/// Seed-pure arrival/departure process for one tower.
struct ArrivalProcess {
  /// Base Poisson arrival rate, viewers per minute per tower.
  double rate_per_min = 6.0;
  /// Diurnal modulation depth in [0, 1]: the instantaneous rate is
  /// rate * (1 + amplitude * sin(2*pi*t / period)), floored at zero.
  double diurnal_amplitude = 0.0;
  Seconds diurnal_period = 3600;
  /// Flash crowd: `flash_arrivals` extra viewers spread uniformly over
  /// [flash_at, flash_at + flash_window). Disabled while flash_at < 0.
  Seconds flash_at = -1;
  Seconds flash_window = 30;
  int flash_arrivals = 0;
};

struct PopulationConfig {
  /// Service-name pool sessions draw from (empty = the whole catalog).
  std::vector<std::string> services;
  /// One entry per tower: the 1-based cellular profile its link follows.
  std::vector<int> towers = {7};
  std::uint64_t seed = 1;
  /// Observation window; sessions still live at the horizon are folded in
  /// as-of that instant.
  Seconds horizon = 1800;
  ArrivalProcess arrivals;
  /// Watch-time model: lognormal with median `watch_time` and sigma
  /// `watch_sigma` (0 = every viewer watches exactly watch_time).
  Seconds watch_time = 600;
  double watch_sigma = 0.0;
  Seconds content_duration = 600;
  /// Per-tower session cap (keeps a runaway rate bounded); 0 = uncapped.
  int max_sessions_per_tower = 0;
  /// Worker threads across towers (0 = hardware); output invariant.
  int jobs = 1;
  net::SimCore sim_core = net::SimCore::kEvent;
  Seconds tick = 0.01;
  Seconds rtt = 0.07;
  // Watchdogs, per tower run (see core::SessionConfig).
  Seconds wall_budget = 0;
  std::uint64_t max_events_per_instant = 0;

  // --- Telemetry (DESIGN.md §15) -----------------------------------------
  /// Sample every tower into an obs::Timeline (per-bin concurrency, stall /
  /// startup fractions, rung mix, goodput vs capacity); towers merge into a
  /// population timeline post-join. Off by default: the sampler costs one
  /// forced tick plus an O(live sessions) walk per bin.
  bool collect_timeline = false;
  /// Timeline bin width, seconds.
  Seconds timeline_bin = 1.0;
  /// Diagnose sessions with vodx::diag and fold blame rollups per tower and
  /// per time bin. Implies collect_timeline (the fair-share capacity
  /// evidence is synthesised from the timeline).
  bool diagnose = false;
  /// Per-tower cap on diagnosed sessions, first-arrival order (diagnosis
  /// needs a per-session trace + the full finish() analysis); 0 = all.
  int diag_session_budget = 64;

  // --- Origin tier (DESIGN.md §16) ---------------------------------------
  /// Origin/CDN tier every session runs behind (mode kNone = disabled, the
  /// historical path). When enabled, each tower owns ONE shared OriginState:
  /// its edge cache and breaker are shared by every session the tower hosts
  /// (the tower's simulator is single-threaded, so this is determinism- and
  /// TSan-safe).
  origin::OriginOptions origin;
  /// Flash-crowd content model: all of a tower's sessions stream the same
  /// title (one shared content seed per tower), so the tower's edge cache
  /// sees real cross-session hits. Off by default — per-session titles keep
  /// the historical outputs byte-identical.
  bool shared_content = false;
  /// Fault plan applied to every session. Windows are in tower-sim time
  /// (interceptors see sim.now()), so a dc_blackout at t=28s darkens the
  /// primary for every session of the tower, whenever each one arrived. The
  /// per-session injector seed derives from (seed, tower, ordinal); the
  /// default empty plan adds no interceptor at all.
  faults::FaultPlan fault_plan;
};

/// One generated viewer: when they arrive, how long they intend to watch,
/// what they stream.
struct Arrival {
  Seconds at = 0;
  Seconds watch = 0;
  int service_index = 0;           ///< into the resolved service pool
  std::uint64_t content_seed = 0;  ///< per-session content generation
};

/// The tower's full arrival schedule, sorted by time — a pure function of
/// (config, tower_index, service_count). Exposed so determinism tests can
/// pin the process without running any session. When the schedule exceeds
/// `max_sessions_per_tower` it is truncated to the cap (earliest arrivals
/// keep their slots) and `capped`, when non-null, receives the number of
/// arrivals dropped.
std::vector<Arrival> tower_arrivals(const PopulationConfig& config,
                                    int tower_index, int service_count,
                                    int* capped = nullptr);

/// Per-session ground-truth outcome, folded into the distributions.
struct SessionOutcome {
  int tower = 0;
  int ordinal = 0;  ///< arrival order on its tower
  Seconds arrival = 0;
  Seconds departure = 0;  ///< actual: min(arrival + watch, horizon)
  std::string service;
  Seconds startup_delay = -1;  ///< -1: playback never started
  Seconds stall_time = 0;
  int stall_count = 0;
  Bytes total_bytes = 0;
  double mbps = 0;  ///< wire throughput over the session's active span
  std::string final_state;
};

struct TowerReport {
  int profile_id = 0;
  int sessions = 0;
  /// Arrivals dropped by max_sessions_per_tower — a capped tower's
  /// distributions describe a censored population, so every exporter
  /// surfaces this count rather than truncating silently.
  int capped_arrivals = 0;
  int peak_concurrent = 0;
  /// Simulated time the peak was first reached (0 when no session arrived).
  Seconds time_of_peak = 0;
  QuantileSummary startup;  ///< over sessions whose playback started
  QuantileSummary stall;    ///< stall seconds, all sessions
  double jain = 0;          ///< fairness over per-session throughput
  double mean_mbps = 0;
  std::vector<SessionOutcome> outcomes;  ///< arrival order
  /// Telemetry timeline (empty unless collect_timeline/diagnose).
  obs::Timeline timeline;
  /// Attribution rollup (zero unless diagnose).
  TowerDiag diag;
  /// The tower's shared origin-tier totals (zero unless origin enabled).
  origin::OriginState::Totals origin_totals;
};

/// The population axis of the paper's per-service tables: Table 2's issue
/// metrics (startup delay, stalls) re-measured as distributions over every
/// session of one service across all towers.
struct ServiceRollup {
  std::string service;
  int sessions = 0;
  QuantileSummary startup;
  QuantileSummary stall;
  double mean_mbps = 0;
};

struct PopulationReport {
  std::vector<TowerReport> towers;  ///< tower-index order
  int total_sessions = 0;
  int never_started = 0;  ///< sessions whose playback never began
  QuantileSummary startup;
  QuantileSummary stall;
  std::vector<ServiceRollup> by_service;  ///< service-pool order
  /// Per-tower timelines folded in tower order (empty unless collected).
  obs::Timeline timeline;
  /// Per-tower attribution rollups folded in tower order.
  TowerDiag diag;
  bool diagnosed = false;  ///< whether the diag rollup was populated
  /// Origin-tier totals folded across towers; printed only when enabled, so
  /// origin-free reports stay byte-identical to the historical output.
  origin::OriginState::Totals origin_totals;
  bool origin_enabled = false;
};

/// Runs every tower (parallel across towers, deterministic at any jobs
/// value) and folds the distributions. Throws ConfigError on unknown
/// services or out-of-range tower profiles.
PopulationReport run_population(const PopulationConfig& config);

/// Fixed-width human-readable rollup; byte-stable. Capped towers draw a
/// warning line; diagnosed runs append the stall-blame table.
std::string population_text(const PopulationReport& report);
/// Per-tower summary objects (type "tower") followed by one JSON object per
/// session, tower-index then arrival order.
std::string population_jsonl(const PopulationReport& report);
/// Per-session CSV with header, same order as the jsonl's session lines.
std::string population_csv(const PopulationReport& report);
/// One CSV row per tower: sessions, cap drops, peak (+ when it happened),
/// the tower's QoE quantiles and, on diagnosed runs, attribution columns.
std::string population_tower_csv(const PopulationReport& report);

}  // namespace vodx::pop
