// Every design knob the paper's Table 1 / Table 2 attribute to a service.
//
// A PlayerConfig fully determines a client's behaviour; the 12 studied
// services are instances of this struct (see services/service_catalog.h),
// and the black-box methodology's job is to recover these values without
// being told them.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.h"
#include "net/tcp_connection.h"

namespace vodx::player {

/// Client-side adaptation family.
enum class AbrKind {
  kThroughput,   ///< windowed throughput estimate with a safety factor
  kOscillating,  ///< buffer-slope chaser that never settles (the D1 behaviour)
  /// Buffer-based (BBA-style, Huang et al. SIGCOMM'14, discussed in the
  /// paper's §5): the track is a function of buffer occupancy alone once
  /// past the reservoir; throughput only seeds the startup phase.
  kBufferBased,
};

/// Segment Replacement policy (§4.1).
enum class SrPolicy {
  kNone,
  /// Cascade from the first buffered segment at a *different* level than the
  /// new target, replacing everything after it — the H4 behaviour that can
  /// replace higher-quality segments with lower-quality ones.
  kCascadeNaive,
  /// ExoPlayer v1: cascade from the first buffered segment below the last
  /// selected level. First replacement is an upgrade by construction; later
  /// ones re-run ABR and may not be.
  kCascadeExoV1,
  /// The paper's best practice: replace one segment at a time, individually,
  /// and only ever with a higher level (§4.1.3).
  kPerSegment,
};

/// How audio and video downloads share the connection pool (§3.2).
enum class AvScheduling {
  /// One scheduler: always fetch for whichever content type is behind.
  kSynced,
  /// Independent pipelines with dedicated connections — the D1 behaviour
  /// whose audio starves at low bandwidth.
  kIndependent,
};

struct PlayerConfig {
  std::string name = "player";

  // --- Transport (Table 1 "Max #TCP" / "Persistent TCP") ---------------
  int max_connections = 1;
  bool persistent_connections = true;
  /// D3 style: split one segment into sub-ranges across all connections.
  bool split_segment_downloads = false;
  /// Transient-failure handling: a failed segment fetch is retried this many
  /// times (with linear backoff) before the pipeline gives up.
  int fetch_retries = 3;
  Seconds retry_backoff = 0.5;
  net::TcpConfig tcp;  ///< rtt etc.; persistent flag is overridden

  // --- Startup (Table 1 "Startup buffer" / "Startup bitrate") ----------
  Seconds startup_buffer = 10;
  /// Best practice from §4.3: also require this many segments downloaded.
  int startup_min_segments = 1;
  Bps startup_bitrate = 500e3;  ///< resolved to the nearest track level
  /// Samples required before the ABR trusts its estimate; until then it
  /// stays on the startup track (the §4.3 H3 failure mode needs >= 2).
  int estimator_min_samples = 2;

  // --- Rebuffering ------------------------------------------------------
  Seconds rebuffer_duration = 5;  ///< buffered seconds needed to resume
  /// §4.3's closing suggestion: apply the segment-count constraint to stall
  /// recovery too, not only to the initial startup.
  int rebuffer_min_segments = 1;

  // --- Download control (Table 1 pausing/resuming thresholds) ----------
  Seconds pausing_threshold = 30;
  Seconds resuming_threshold = 25;

  // --- Adaptation -------------------------------------------------------
  AbrKind abr = AbrKind::kThroughput;
  /// Select the highest track with (estimated need) <= safety * bandwidth.
  /// > 1 models the "aggressive" services of Fig. 9.
  double bandwidth_safety = 0.75;
  /// §4.2: estimate a track's need from actual upcoming segment sizes
  /// instead of the declared bitrate (requires the protocol to expose them).
  bool use_actual_bitrate = false;
  int actual_bitrate_lookahead = 3;
  /// Don't switch down while the video buffer holds more than this
  /// (Table 1 "Decrease buffer"); 0 disables the damping.
  Seconds decrease_buffer = 0;
  /// kBufferBased: keep the lowest track until this much is buffered...
  Seconds bba_reservoir = 10;
  /// ...then walk the ladder linearly, reaching the top at
  /// reservoir + cushion buffered seconds.
  Seconds bba_cushion = 30;
  double estimator_alpha = 0.3;  ///< EWMA weight of the newest sample
  /// Switch confirmation: only leave the current track after this many
  /// consecutive decisions agree on the move. Suppresses the boundary
  /// oscillation that per-download throughput noise would otherwise cause —
  /// every studied service except D1 shows this damping (§3.3.3). 1 = none.
  int switch_confirmation = 2;

  // --- Segment Replacement (§4.1) ---------------------------------------
  SrPolicy sr = SrPolicy::kNone;
  /// Stop replacing (and let future fetches resume) below this buffer level.
  Seconds sr_min_buffer = 10;
  /// kPerSegment only: replace segments whose existing quality is at most
  /// this height ("only discard low-quality segments", 0 = no limit).
  int sr_max_height = 0;

  // --- A/V coordination (§3.2) ------------------------------------------
  AvScheduling av_scheduling = AvScheduling::kSynced;

  // --- Resilience (vodx::faults hardening; every default is inert, so a
  // --- stock Table-1 config behaves exactly as before) -------------------
  /// Abort a segment fetch that has not completed after this many seconds
  /// and treat it as a failed attempt (0 = never time out).
  Seconds fetch_timeout = 0;
  /// Adds a seeded uniform extra of up to retry_jitter * retry_backoff to
  /// each retry delay, decorrelating retry storms (0 = deterministic linear
  /// backoff, no RNG consulted).
  double retry_jitter = 0;
  /// Seed for the retry-jitter stream (only read when retry_jitter > 0).
  std::uint64_t resilience_seed = 0x5EEDF001;
  /// When a segment exhausts its retries at level > 0, spend one final
  /// attempt at the lowest level instead of abandoning the pipeline.
  bool abandon_downswitch = false;
  /// Extra attempts for manifest-path resources (master/MPD, playlists,
  /// sidx) before the session fails (0 = first failure is fatal).
  int manifest_retries = 0;
  /// After manifest_retries, skip an unfetchable variant playlist / sidx
  /// track instead of failing the session, as long as one video track
  /// survives (stale-manifest fallback).
  bool tolerate_variant_loss = false;

  // --- Data saver ---------------------------------------------------------
  /// Cap selection at the highest track whose resolution height does not
  /// exceed this (0 = uncapped). The app-level "data saver" switch §4.1.3's
  /// data-usage concerns motivate.
  int max_height_cap = 0;
};

}  // namespace vodx::player
