// The HAS player engine.
//
// One Player instance is "an app": it resolves manifests over the simulated
// network, runs startup logic, drives audio/video download pipelines with
// pause/resume thresholds, adapts tracks with a pluggable ABR, optionally
// performs Segment Replacement, renders (advances a playback clock and
// consumes the buffer), and reports progress through a 1 Hz seekbar callback
// — the same channel the paper's UI monitor hooks (§2.4).
//
// Every behaviour is controlled by PlayerConfig; the 12 studied services are
// configurations of this one engine.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "http/http_client.h"
#include "manifest/presentation.h"
#include "net/simulator.h"
#include "obs/observer.h"
#include "player/abr.h"
#include "player/bandwidth_estimator.h"
#include "player/buffer.h"
#include "player/config.h"
#include "player/media_source.h"

namespace vodx::player {

enum class PlayerState {
  kIdle,
  kResolving,    ///< fetching manifests
  kStartup,      ///< filling the startup buffer
  kPlaying,
  kRebuffering,  ///< stalled mid-session
  kEnded,
  kFailed,
};

const char* to_string(PlayerState state);

/// Ground-truth QoE events, used to validate the black-box methodology.
struct StallEvent {
  Seconds start = 0;
  Seconds end = -1;  ///< -1 while ongoing
  Seconds duration(Seconds session_end) const {
    return (end >= 0 ? end : session_end) - start;
  }
};

struct DisplayEvent {
  Seconds wall_time = 0;  ///< when this segment started rendering
  Seconds position = 0;
  int index = 0;
  int level = 0;
  Bps declared_bitrate = 0;
  media::Resolution resolution;
  Seconds duration = 0;
};

struct SeekEvent {
  Seconds wall_time = 0;
  Seconds from = 0;
  Seconds to = 0;
};

struct ReplacementEvent {
  Seconds wall_time = 0;
  int index = 0;
  int old_level = 0;
  int new_level = 0;
  Bytes old_bytes = 0;  ///< wasted by the discard
};

struct PlayerEvents {
  Seconds session_start = 0;
  Seconds playback_started = -1;
  std::vector<StallEvent> stalls;
  std::vector<DisplayEvent> displayed;
  std::vector<ReplacementEvent> replacements;
  std::vector<SeekEvent> seeks;
  std::string failure;

  Seconds total_stall_time(Seconds session_end) const;
  Seconds startup_delay() const {
    return playback_started >= 0 ? playback_started - session_start : -1;
  }
};

class Player : public net::TickClient {
 public:
  Player(net::Simulator& sim, net::Link& link, http::Proxy& proxy,
         manifest::Protocol protocol, PlayerConfig config);
  ~Player();

  Player(const Player&) = delete;
  Player& operator=(const Player&) = delete;

  /// Attaches an observability context (propagates to the HTTP client and
  /// its TCP connections). Call before start(). The player contributes
  /// state-machine spans, stall and replacement instants, ABR decision
  /// events with their inputs, and 1 Hz buffer/bandwidth counter tracks.
  void set_observer(obs::Observer* observer);

  /// The user presses play at the current simulated time.
  void start(const std::string& manifest_url);

  /// The user drags the seekbar to `position` (§2.4: the seekbar "allows
  /// users to move to a new position in the video"). Content not covering
  /// the target is flushed, in-flight fetches are aborted, and playback
  /// re-enters buffering; the interruption is recorded as a stall.
  void seek(Seconds position);

  /// The user closes the app (population departure): aborts every in-flight
  /// fetch, closes any open stall at the current instant, parks the state
  /// machine in kEnded and permanently shuts the HTTP client down — the
  /// link redistributes this session's share on its next allocation pass.
  /// Idempotent; safe in any state, including a never-started player.
  void stop();

  /// The user pauses/resumes playback. While paused the position freezes
  /// (the seekbar keeps reporting the same value — indistinguishable from a
  /// stall to the outside, a real limitation of UI-based inference) but
  /// downloading continues up to the pausing threshold.
  void pause();
  void resume();
  bool paused_by_user() const { return user_paused_; }

  /// 1 Hz playback-progress callback (the ProgressBar.setProgress analogue).
  using SeekbarFn = std::function<void(Seconds wall_time, int progress_sec)>;
  void set_seekbar_callback(SeekbarFn fn) { seekbar_ = std::move(fn); }

  PlayerState state() const { return state_; }
  bool finished() const {
    return state_ == PlayerState::kEnded || state_ == PlayerState::kFailed;
  }
  Seconds position() const { return position_; }
  const PlayerEvents& events() const { return events_; }
  const manifest::Presentation& presentation() const { return presentation_; }
  const PlayerConfig& config() const { return config_; }

  Seconds video_buffered() const {
    return video_buffer_.buffered_ahead(position_);
  }
  Seconds audio_buffered() const {
    return audio_buffer_.buffered_ahead(position_);
  }
  const PlaybackBuffer& video_buffer() const { return video_buffer_; }

  /// Next video index the downloader will fetch (for experiments).
  int next_video_index() const { return next_index_[0]; }
  Bps bandwidth_estimate() const { return estimator_.estimate(); }

  // --- net::TickClient ----------------------------------------------------
  void tick(Seconds now, Seconds dt) override;
  /// Earliest instant the player could next do observable work. Dense while
  /// anything is in flight; while coasting (playing out of a full buffer, or
  /// parked in a terminal/stalled state) it is the min of the next seekbar /
  /// obs-sample emission, the next retry-eligible time, and — when playback
  /// advances — the next position crossing (segment display boundary,
  /// pipeline resume threshold, underrun, end of content) with a two-tick
  /// safety margin.
  Seconds next_wake(Seconds now) override;
  /// Replays the per-tick playback-position recurrence over a skipped span
  /// (exactly `ticks` clamped additions, so the float result is identical
  /// to having executed the ticks).
  void fast_forward(Seconds now, Seconds dt, std::uint64_t ticks) override;

 private:
  struct Pipeline;  // per-content-type download state

  struct FetchInfo {
    int pipeline = 0;  ///< 0 = video, 1 = audio
    int index = 0;
    int level = 0;
    bool replacement = false;
    bool failed = false;
    // Split downloads: ids of sibling sub-requests still outstanding.
    int subrequests_remaining = 0;
    std::vector<int> transfer_ids;
    Bytes accumulated_bytes = 0;
    Seconds issued_at = 0;
    int attempt = 0;
  };

  struct PendingRetry {
    FetchInfo info;
    Seconds eligible_at = 0;
  };

  void on_manifest_ready(manifest::Presentation presentation);
  void on_manifest_error(const std::string& reason);

  /// Single funnel for state transitions: keeps the trace's state span per
  /// state and the stall bookkeeping in one place.
  void set_state(PlayerState next);
  void begin_stall(const char* cause);
  void end_stall();
  void sample_observability();

  void advance_playback(Seconds dt);
  void update_state();
  void emit_seekbar();
  void record_display_if_new();

  void schedule_downloads();
  bool try_issue_video_fetch();
  bool try_issue_audio_fetch();
  void issue_segment_fetch(int pipeline, int index, int level,
                           bool replacement, int attempt = 0);
  /// Services the pipeline's retry queue; returns true if a retry was
  /// issued or the pipeline must wait for one (blocking future fetches).
  bool service_retries(int pipeline, int parallelism, bool* blocked);
  void on_segment_done(int fetch_key, const http::Response& response);
  /// Retry / downswitch / give-up policy for a fetch whose last attempt
  /// failed (HTTP error, reset, or timeout).
  void handle_fetch_failure(const FetchInfo& done);
  /// Aborts in-flight fetches older than config_.fetch_timeout and funnels
  /// them through handle_fetch_failure. No-op when the timeout is 0.
  void check_fetch_timeouts();
  void complete_segment(FetchInfo info);

  int select_video_level_for(int next_index);
  void maybe_trigger_cascade_sr(int target_level);
  std::optional<int> per_segment_sr_candidate(int target_level) const;

  const manifest::ClientTrack& video_track(int level) const;
  const manifest::ClientTrack& audio_track() const;
  PlaybackBuffer& buffer_of(int pipeline) {
    return pipeline == 0 ? video_buffer_ : audio_buffer_;
  }
  Seconds playable_end() const;

  net::Simulator& sim_;
  PlayerConfig config_;
  manifest::Protocol protocol_;
  std::unique_ptr<http::HttpClient> client_;
  std::unique_ptr<MediaSource> media_source_;
  std::unique_ptr<AbrPolicy> abr_;
  BandwidthEstimator estimator_;

  PlayerState state_ = PlayerState::kIdle;
  manifest::Presentation presentation_;
  /// presentation_.duration(), cached at manifest time (it walks every
  /// segment and the per-tick paths consult it constantly).
  Seconds presentation_duration_ = 0;
  PlaybackBuffer video_buffer_;
  PlaybackBuffer audio_buffer_;

  Seconds position_ = 0;
  int startup_level_ = 0;
  int last_selected_level_ = 0;
  Seconds last_decision_buffer_ = 0;
  bool paused_[2] = {false, false};   ///< download control per pipeline
  int next_index_[2] = {0, 0};        ///< next future segment per pipeline
  int in_flight_count_[2] = {0, 0};
  std::map<int, FetchInfo> fetches_;  ///< by fetch key
  std::deque<PendingRetry> retries_[2];
  /// Jitter stream for retry backoff; consulted only when retry_jitter > 0,
  /// so stock configs never touch it.
  Rng retry_rng_;
  int next_fetch_key_ = 0;
  Seconds next_seekbar_at_ = 0;
  int last_display_index_ = -1;
  // Player-wide bandwidth meter state.
  Bytes meter_bytes_anchor_ = 0;
  Bytes meter_last_seen_ = 0;
  Seconds meter_busy_time_ = 0;

  bool user_paused_ = false;
  PlayerEvents events_;
  SeekbarFn seekbar_;

  obs::Observer* obs_ = nullptr;
  int player_track_ = 0;
  int abr_track_ = 0;
  Seconds next_obs_sample_at_ = 0;
  bool state_span_open_ = false;
  obs::Counter* stalls_metric_ = nullptr;
  obs::Histogram* stall_seconds_metric_ = nullptr;
  obs::Counter* decisions_metric_ = nullptr;
  obs::Counter* switches_metric_ = nullptr;
  obs::Counter* replacements_metric_ = nullptr;
  obs::Counter* wasted_bytes_metric_ = nullptr;
  obs::Counter* fetch_failures_metric_ = nullptr;
  obs::Histogram* segment_fetch_metric_ = nullptr;
};

}  // namespace vodx::player
