#include "player/player.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "obs/profiler.h"

namespace vodx::player {

namespace {
constexpr double kEps = 1e-9;
constexpr int kVideoPipe = 0;
constexpr int kAudioPipe = 1;
}  // namespace

const char* to_string(PlayerState state) {
  switch (state) {
    case PlayerState::kIdle: return "idle";
    case PlayerState::kResolving: return "resolving";
    case PlayerState::kStartup: return "startup";
    case PlayerState::kPlaying: return "playing";
    case PlayerState::kRebuffering: return "rebuffering";
    case PlayerState::kEnded: return "ended";
    case PlayerState::kFailed: return "failed";
  }
  return "?";
}

Seconds PlayerEvents::total_stall_time(Seconds session_end) const {
  Seconds total = 0;
  for (const StallEvent& s : stalls) total += s.duration(session_end);
  return total;
}

Player::Player(net::Simulator& sim, net::Link& link, http::Proxy& proxy,
               manifest::Protocol protocol, PlayerConfig config)
    : sim_(sim),
      config_(std::move(config)),
      protocol_(protocol),
      estimator_(config_.estimator_alpha),
      video_buffer_(/*allow_mid_replacement=*/true),
      audio_buffer_(/*allow_mid_replacement=*/true),
      retry_rng_(config_.resilience_seed) {
  http::HttpClient::Options options;
  options.max_connections = config_.max_connections;
  options.tcp = config_.tcp;
  options.tcp.persistent = config_.persistent_connections;
  client_ = std::make_unique<http::HttpClient>(sim_, link, proxy, options);
  MediaSource::Options source_options{protocol, /*can_descramble=*/true};
  source_options.retries = config_.manifest_retries;
  source_options.tolerate_variant_loss = config_.tolerate_variant_loss;
  media_source_ = std::make_unique<MediaSource>(*client_, source_options);
  abr_ = make_abr(config_);
  if (config_.sr != SrPolicy::kNone && config_.sr != SrPolicy::kPerSegment) {
    VODX_ASSERT(config_.max_connections == 1 || config_.av_scheduling ==
                                                    AvScheduling::kSynced,
                "cascade SR requires a single sequential video pipeline");
  }
  sim_.add_tick_client(this);
}

Player::~Player() = default;

void Player::set_observer(obs::Observer* observer) {
  obs_ = observer;
  client_->set_observer(observer);
  if (obs_ == nullptr) {
    stalls_metric_ = decisions_metric_ = switches_metric_ = nullptr;
    replacements_metric_ = wasted_bytes_metric_ = fetch_failures_metric_ =
        nullptr;
    stall_seconds_metric_ = segment_fetch_metric_ = nullptr;
    return;
  }
  player_track_ = obs_->trace.track("player");
  abr_track_ = obs_->trace.track("abr");
  stalls_metric_ = &obs_->metrics.counter("player.stalls");
  stall_seconds_metric_ = &obs_->metrics.histogram(
      "player.stall_seconds", {0.5, 1, 2, 5, 10, 20, 40, 80});
  decisions_metric_ = &obs_->metrics.counter("abr.decisions");
  switches_metric_ = &obs_->metrics.counter("abr.switches");
  replacements_metric_ = &obs_->metrics.counter("player.replacements");
  wasted_bytes_metric_ = &obs_->metrics.counter("player.wasted_bytes");
  fetch_failures_metric_ = &obs_->metrics.counter("player.fetch_failures");
  segment_fetch_metric_ = &obs_->metrics.histogram(
      "player.segment_fetch_s", {0.25, 0.5, 1, 2, 4, 8, 16});
}

void Player::set_state(PlayerState next) {
  if (next == state_) return;
  if (obs::trace_on(obs_, obs::Category::kPlayer)) {
    const Seconds now = sim_.now();
    if (state_span_open_) {
      obs_->trace.end(now, obs::Category::kPlayer, to_string(state_),
                      player_track_);
    }
    obs_->trace.begin(now, obs::Category::kPlayer, to_string(next),
                      player_track_,
                      {obs::Field::t("from", to_string(state_))});
    state_span_open_ = true;
  }
  state_ = next;
}

void Player::begin_stall(const char* cause) {
  events_.stalls.push_back(StallEvent{sim_.now(), -1});
  if (stalls_metric_ != nullptr) stalls_metric_->add();
  if (obs::trace_on(obs_, obs::Category::kPlayer)) {
    obs_->trace.instant(sim_.now(), obs::Category::kPlayer, "stall.begin",
                        player_track_,
                        {obs::Field::t("cause", cause),
                         obs::Field::n("position_s", position_)});
  }
}

void Player::end_stall() {
  StallEvent& stall = events_.stalls.back();
  stall.end = sim_.now();
  const Seconds duration = stall.end - stall.start;
  if (stall_seconds_metric_ != nullptr) {
    stall_seconds_metric_->record(duration);
  }
  if (obs::trace_on(obs_, obs::Category::kPlayer)) {
    obs_->trace.instant(sim_.now(), obs::Category::kPlayer, "stall.end",
                        player_track_,
                        {obs::Field::n("duration_s", duration),
                         obs::Field::n("position_s", position_)});
  }
}

void Player::sample_observability() {
  if (!obs::trace_on(obs_, obs::Category::kPlayer)) return;
  const Seconds now = sim_.now();
  if (now < next_obs_sample_at_) return;
  next_obs_sample_at_ = now + 1.0;
  obs_->trace.counter(now, obs::Category::kPlayer, "buffer.video_s",
                      player_track_, video_buffer_.buffered_ahead(position_));
  if (presentation_.separate_audio()) {
    obs_->trace.counter(now, obs::Category::kPlayer, "buffer.audio_s",
                        player_track_,
                        audio_buffer_.buffered_ahead(position_));
  }
  obs_->trace.counter(now, obs::Category::kPlayer, "bw.estimate_mbps",
                      player_track_, estimator_.estimate() / 1e6);
}

void Player::start(const std::string& manifest_url) {
  VODX_ASSERT(state_ == PlayerState::kIdle, "player already started");
  set_state(PlayerState::kResolving);
  events_.session_start = sim_.now();
  next_seekbar_at_ = sim_.now() + 1.0;
  next_obs_sample_at_ = sim_.now();
  media_source_->resolve(
      manifest_url,
      [this](manifest::Presentation p) { on_manifest_ready(std::move(p)); },
      [this](const std::string& reason) { on_manifest_error(reason); });
}

void Player::stop() {
  if (finished() && client_->shut_down()) return;
  // Abort through the player path first so every transfer is logged as an
  // abort with its partial bytes, then shut the client down for good (which
  // also aborts anything the MediaSource still has outstanding).
  for (auto& [key, info] : fetches_) {
    for (int id : info.transfer_ids) client_->abort(id);
  }
  fetches_.clear();
  retries_[kVideoPipe].clear();
  retries_[kAudioPipe].clear();
  in_flight_count_[kVideoPipe] = 0;
  in_flight_count_[kAudioPipe] = 0;
  // A stall open at departure ends now: the viewer who leaves mid-stall
  // stops accumulating stall time (qoe_from_events would otherwise charge
  // it until session_end).
  if (!events_.stalls.empty() && events_.stalls.back().end < 0) end_stall();
  if (!finished()) set_state(PlayerState::kEnded);
  client_->shutdown();
}

void Player::pause() { user_paused_ = true; }

void Player::resume() { user_paused_ = false; }

void Player::seek(Seconds target) {
  if (state_ != PlayerState::kStartup && state_ != PlayerState::kPlaying &&
      state_ != PlayerState::kRebuffering) {
    return;  // nothing to seek in
  }
  target = std::clamp(target, 0.0, presentation_duration_ - 0.5);
  events_.seeks.push_back(SeekEvent{sim_.now(), position_, target});
  if (obs::trace_on(obs_, obs::Category::kPlayer)) {
    obs_->trace.instant(sim_.now(), obs::Category::kPlayer, "seek",
                        player_track_,
                        {obs::Field::n("from_s", position_),
                         obs::Field::n("to_s", target)});
  }

  // Abort everything in flight: the deadline structure just changed.
  for (auto& [key, info] : fetches_) {
    for (int id : info.transfer_ids) client_->abort(id);
  }
  fetches_.clear();
  retries_[kVideoPipe].clear();
  retries_[kAudioPipe].clear();
  in_flight_count_[kVideoPipe] = 0;
  in_flight_count_[kAudioPipe] = 0;

  // Keep a forward-contiguous buffer if it already covers the target;
  // otherwise flush and refetch from the segment containing it.
  auto retarget = [&](PlaybackBuffer& buffer,
                      const manifest::ClientTrack& track, int pipe) {
    if (buffer.at_position(target) != nullptr && target >= position_) {
      buffer.consume_until(target);
      next_index_[pipe] =
          std::min(buffer.last_contiguous_index(target) + 1,
                   static_cast<int>(track.segments.size()));
      if (next_index_[pipe] <= 0) {
        next_index_[pipe] = track.segment_index_at(target);
      }
      return;
    }
    buffer.reset();
    next_index_[pipe] = track.segment_index_at(target);
  };
  retarget(video_buffer_, video_track(0), kVideoPipe);
  if (presentation_.separate_audio()) {
    retarget(audio_buffer_, audio_track(), kAudioPipe);
  }
  paused_[kVideoPipe] = false;
  paused_[kAudioPipe] = false;

  position_ = target;
  last_display_index_ = -1;
  if (state_ == PlayerState::kPlaying) {
    // The interruption is user-visible; account it like a stall until the
    // rebuffer condition holds again.
    set_state(PlayerState::kRebuffering);
    begin_stall("seek");
  }
  schedule_downloads();
}

void Player::on_manifest_ready(manifest::Presentation presentation) {
  presentation_ = std::move(presentation);
  if (presentation_.video.empty()) {
    on_manifest_error("presentation has no video tracks");
    return;
  }
  // The ladder is immutable for the rest of the session and duration() walks
  // every segment; cache it for the per-tick paths.
  presentation_duration_ = presentation_.duration();
  // Resolve the configured startup bitrate to the nearest ladder rung.
  double best_gap = -1;
  for (int level = 0; level < static_cast<int>(presentation_.video.size());
       ++level) {
    const double gap =
        std::abs(presentation_.video[static_cast<std::size_t>(level)]
                     .declared_bitrate -
                 config_.startup_bitrate);
    if (best_gap < 0 || gap < best_gap) {
      best_gap = gap;
      startup_level_ = level;
    }
  }
  while (config_.max_height_cap > 0 && startup_level_ > 0 &&
         presentation_.video[static_cast<std::size_t>(startup_level_)]
                 .resolution.height > config_.max_height_cap) {
    --startup_level_;
  }
  last_selected_level_ = startup_level_;
  set_state(PlayerState::kStartup);
  schedule_downloads();
}

void Player::on_manifest_error(const std::string& reason) {
  set_state(PlayerState::kFailed);
  events_.failure = reason;
  if (obs::trace_on(obs_, obs::Category::kPlayer)) {
    obs_->trace.instant(sim_.now(), obs::Category::kPlayer, "error.manifest",
                        player_track_, {obs::Field::t("reason", reason)});
  }
}

const manifest::ClientTrack& Player::video_track(int level) const {
  VODX_ASSERT(level >= 0 &&
                  level < static_cast<int>(presentation_.video.size()),
              "video level out of range");
  return presentation_.video[static_cast<std::size_t>(level)];
}

const manifest::ClientTrack& Player::audio_track() const {
  VODX_ASSERT(!presentation_.audio.empty(), "no audio tracks");
  return presentation_.audio.front();
}

Seconds Player::playable_end() const {
  Seconds end = video_buffer_.contiguous_end(position_);
  if (presentation_.separate_audio()) {
    end = std::min(end, audio_buffer_.contiguous_end(position_));
  }
  return end;
}

void Player::tick(Seconds /*now*/, Seconds dt) {
  switch (state_) {
    case PlayerState::kIdle:
    case PlayerState::kResolving:
    case PlayerState::kEnded:
    case PlayerState::kFailed:
      return;
    case PlayerState::kStartup:
    case PlayerState::kPlaying:
    case PlayerState::kRebuffering:
      break;
  }
  // Meter "busy" time as ticks in which payload actually flowed; pure
  // protocol waits (handshakes, request RTTs) would bias the rate estimate
  // by an amount that varies with segment size.
  const Bytes flowed = client_->total_delivered();
  if (flowed != meter_last_seen_) {
    meter_busy_time_ += dt;
    meter_last_seen_ = flowed;
  }
  if (state_ == PlayerState::kPlaying && !user_paused_) advance_playback(dt);
  check_fetch_timeouts();
  update_state();
  schedule_downloads();
  emit_seekbar();
  sample_observability();
}

Seconds Player::next_wake(Seconds now) {
  switch (state_) {
    case PlayerState::kIdle:
    case PlayerState::kResolving:
    case PlayerState::kEnded:
    case PlayerState::kFailed:
      // tick() early-returns in these states; manifest resolution keeps the
      // link busy, which is what drives the kResolving phase forward.
      return net::TickClient::kNeverWakes;
    case PlayerState::kStartup:
    case PlayerState::kPlaying:
    case PlayerState::kRebuffering:
      break;
  }
  // In-flight fetches complete inside the link's tick; stay dense.
  if (!fetches_.empty()) return now;
  // Bytes flowed since our last tick: the bandwidth meter must account the
  // busy tick before anything can be skipped.
  if (client_->total_delivered() != meter_last_seen_) return now;
  // The per-segment SR probe runs an ABR decision (counter + trace event)
  // every tick while future fetching is paused — never coast it.
  if (config_.sr == SrPolicy::kPerSegment) return now;

  // A pipeline that could issue a fetch right now means no coasting. (With
  // no fetches in flight this cannot normally happen — the previous tick
  // would have issued it — but stay conservative.)
  const int video_count = static_cast<int>(video_track(0).segments.size());
  if (!paused_[kVideoPipe] && next_index_[kVideoPipe] < video_count) {
    return now;
  }
  int audio_count = 0;
  if (presentation_.separate_audio()) {
    audio_count = static_cast<int>(audio_track().segments.size());
    if (!paused_[kAudioPipe] && next_index_[kAudioPipe] < audio_count) {
      return now;
    }
  }

  Seconds wake = net::TickClient::kNeverWakes;
  if (seekbar_) wake = std::min(wake, next_seekbar_at_);
  if (obs::trace_on(obs_, obs::Category::kPlayer)) {
    wake = std::min(wake, next_obs_sample_at_);
  }
  for (int pipe : {kVideoPipe, kAudioPipe}) {
    if (!retries_[pipe].empty()) {
      wake = std::min(wake, std::max(now, retries_[pipe].front().eligible_at));
    }
  }

  if (state_ == PlayerState::kPlaying && !user_paused_) {
    // Playback advances: wake two ticks before the earliest position
    // crossing so the crossing tick itself always executes (the margin
    // swallows every comparison epsilon, all of which are << tick).
    Seconds target = std::min(playable_end(), presentation_duration_);
    const BufferedSegment* current = video_buffer_.at_position(position_);
    if (current != nullptr) {
      // Entering the next segment records a display event.
      target = std::min(target, current->start + current->duration);
    }
    // A paused pipeline with future segments resumes (and fetches) once
    // buffered falls to the resuming threshold.
    auto resume_crossing = [&](int pipe, int count) {
      if (!paused_[pipe] || next_index_[pipe] >= count) return;
      target = std::min(target, buffer_of(pipe).contiguous_end(position_) -
                                    config_.resuming_threshold);
    };
    resume_crossing(kVideoPipe, video_count);
    if (presentation_.separate_audio()) {
      resume_crossing(kAudioPipe, audio_count);
    }
    const Seconds dt = sim_.tick_duration();
    wake = std::min(wake, now + (target - position_) - 2 * dt);
  }
  return wake;
}

void Player::fast_forward(Seconds now, Seconds dt, std::uint64_t ticks) {
  (void)now;
  if (state_ != PlayerState::kPlaying || user_paused_) return;
  // Replay advance_playback's position recurrence tick by tick. The limit
  // is loop-invariant over a skipped span (no downloads complete, and the
  // contiguous run containing the position cannot shrink ahead of it), and
  // next_wake guarantees no display boundary or state threshold is crossed,
  // so the clamped additions are the span's only effect.
  const Seconds limit = std::min(playable_end(), presentation_duration_);
  for (std::uint64_t i = 0; i < ticks; ++i) {
    position_ = std::min(position_ + dt, limit);
  }
  video_buffer_.consume_until(position_);
  if (presentation_.separate_audio()) audio_buffer_.consume_until(position_);
}

void Player::advance_playback(Seconds dt) {
  const Seconds limit = std::min(playable_end(), presentation_duration_);
  record_display_if_new();
  position_ = std::min(position_ + dt, limit);
  record_display_if_new();
  video_buffer_.consume_until(position_);
  if (presentation_.separate_audio()) audio_buffer_.consume_until(position_);
}

void Player::record_display_if_new() {
  const BufferedSegment* current = video_buffer_.at_position(position_);
  if (current == nullptr || current->index == last_display_index_) return;
  DisplayEvent event;
  event.wall_time = sim_.now();
  event.position = position_;
  event.index = current->index;
  event.level = current->level;
  event.declared_bitrate = current->declared_bitrate;
  event.resolution = current->resolution;
  event.duration = current->duration;
  events_.displayed.push_back(event);
  last_display_index_ = current->index;
}

void Player::update_state() {
  const Seconds duration = presentation_duration_;
  const Seconds ahead = playable_end() - position_;
  const bool content_exhausted = playable_end() >= duration - kEps;

  if (state_ == PlayerState::kStartup) {
    const bool enough_seconds = ahead >= config_.startup_buffer - kEps;
    const bool enough_segments =
        video_buffer_.contiguous_count(position_) >=
        config_.startup_min_segments;
    if ((enough_seconds && enough_segments) || content_exhausted) {
      set_state(PlayerState::kPlaying);
      events_.playback_started = sim_.now();
      if (obs::trace_on(obs_, obs::Category::kPlayer)) {
        obs_->trace.instant(
            sim_.now(), obs::Category::kPlayer, "playback.start",
            player_track_,
            {obs::Field::n("startup_delay_s", events_.startup_delay()),
             obs::Field::n("level", startup_level_)});
      }
      if (obs_ != nullptr) {
        obs_->metrics.gauge("player.startup_delay_s")
            .set(events_.startup_delay());
      }
      record_display_if_new();
    }
    return;
  }
  if (state_ == PlayerState::kPlaying) {
    if (position_ >= duration - 1e-6) {
      set_state(PlayerState::kEnded);
      // Final progress update: the UI shows the end position.
      if (seekbar_) seekbar_(sim_.now(), static_cast<int>(position_ + kEps));
      return;
    }
    if (ahead <= kEps) {
      set_state(PlayerState::kRebuffering);
      begin_stall("underrun");
    }
    return;
  }
  if (state_ == PlayerState::kRebuffering) {
    const Seconds needed =
        std::min(config_.rebuffer_duration, duration - position_);
    const bool enough_segments =
        video_buffer_.contiguous_count(position_) >=
        config_.rebuffer_min_segments;
    if ((ahead >= needed - kEps && enough_segments) || content_exhausted) {
      set_state(PlayerState::kPlaying);
      end_stall();
    }
  }
}

void Player::emit_seekbar() {
  if (!seekbar_) return;
  while (sim_.now() + kEps >= next_seekbar_at_) {
    seekbar_(sim_.now(), static_cast<int>(position_ + kEps));
    next_seekbar_at_ += 1.0;
  }
}

// ---------------------------------------------------------------------------
// Download scheduling
// ---------------------------------------------------------------------------

void Player::schedule_downloads() {
  if (state_ != PlayerState::kStartup && state_ != PlayerState::kPlaying &&
      state_ != PlayerState::kRebuffering) {
    return;
  }

  // Update pause/resume latches (§3.3.2 download control).
  auto update_latch = [&](int pipe) {
    const Seconds buffered = buffer_of(pipe).buffered_ahead(position_);
    if (buffered >= config_.pausing_threshold) paused_[pipe] = true;
    if (buffered <= config_.resuming_threshold) paused_[pipe] = false;
  };
  update_latch(kVideoPipe);
  if (presentation_.separate_audio()) update_latch(kAudioPipe);

  // Keep issuing while connections are available and some pipeline wants one.
  while (client_->can_fetch()) {
    bool issued = false;
    if (presentation_.separate_audio() &&
        config_.av_scheduling == AvScheduling::kSynced) {
      // Fetch for whichever content type is further behind, and never let
      // either run more than a small window ahead of the other — that is
      // the whole point of synchronised A/V scheduling (§3.2).
      constexpr Seconds kAvSyncWindow = 10;
      const Seconds video_end = video_buffer_.contiguous_end(position_);
      const Seconds audio_end = audio_buffer_.contiguous_end(position_);
      const bool audio_allowed = audio_end <= video_end + kAvSyncWindow;
      const bool video_allowed = video_end <= audio_end + kAvSyncWindow;
      if (audio_end <= video_end) {
        issued = (audio_allowed && try_issue_audio_fetch()) ||
                 (video_allowed && try_issue_video_fetch());
      } else {
        issued = (video_allowed && try_issue_video_fetch()) ||
                 (audio_allowed && try_issue_audio_fetch());
      }
    } else if (presentation_.separate_audio()) {
      // Independent pipelines: audio gets one dedicated connection, video
      // greedily uses the rest (the D1 arrangement, §3.2).
      issued = try_issue_audio_fetch();
      if (client_->can_fetch()) issued = try_issue_video_fetch() || issued;
    } else {
      issued = try_issue_video_fetch();
    }
    if (!issued) break;
  }
}

bool Player::try_issue_audio_fetch() {
  if (!presentation_.separate_audio() || paused_[kAudioPipe]) return false;
  bool retry_blocked = false;
  if (service_retries(kAudioPipe, 1, &retry_blocked)) return true;
  if (retry_blocked) return false;
  if (in_flight_count_[kAudioPipe] >= 1) return false;
  const manifest::ClientTrack& track = audio_track();
  if (next_index_[kAudioPipe] >= static_cast<int>(track.segments.size())) {
    return false;
  }
  issue_segment_fetch(kAudioPipe, next_index_[kAudioPipe], 0,
                      /*replacement=*/false);
  ++next_index_[kAudioPipe];
  return true;
}

bool Player::try_issue_video_fetch() {
  int parallelism = 1;
  if (config_.av_scheduling == AvScheduling::kIndependent) {
    parallelism = std::max(
        1, config_.max_connections - (presentation_.separate_audio() ? 1 : 0));
  }
  if (config_.split_segment_downloads) parallelism = 1;
  bool retry_blocked = false;
  if (service_retries(kVideoPipe, parallelism, &retry_blocked)) return true;
  if (retry_blocked) return false;
  if (in_flight_count_[kVideoPipe] >= parallelism) return false;

  const int segment_count =
      static_cast<int>(video_track(0).segments.size());
  const bool future_available =
      !paused_[kVideoPipe] && next_index_[kVideoPipe] < segment_count;

  // Improved SR runs while future fetching is paused (§4.1.3): the
  // bandwidth would otherwise go unused.
  if (!future_available) {
    if (config_.sr == SrPolicy::kPerSegment &&
        in_flight_count_[kVideoPipe] == 0 &&
        video_buffer_.buffered_ahead(position_) > config_.sr_min_buffer) {
      const int target = select_video_level_for(
          std::min(next_index_[kVideoPipe], segment_count - 1));
      if (auto candidate = per_segment_sr_candidate(target)) {
        issue_segment_fetch(kVideoPipe, *candidate, target,
                            /*replacement=*/true);
        return true;
      }
    }
    return false;
  }

  const int level = select_video_level_for(next_index_[kVideoPipe]);
  maybe_trigger_cascade_sr(level);
  last_selected_level_ = level;
  issue_segment_fetch(kVideoPipe, next_index_[kVideoPipe], level,
                      /*replacement=*/false);
  ++next_index_[kVideoPipe];
  return true;
}

int Player::select_video_level_for(int next_index) {
  VODX_PROFILE_ZONE("abr.decide");
  AbrContext context;
  context.presentation = &presentation_;
  context.bandwidth_estimate = estimator_.estimate();
  context.estimator_samples = estimator_.sample_count();
  context.buffer = video_buffer_.buffered_ahead(position_);
  context.buffer_delta = context.buffer - last_decision_buffer_;
  context.last_level = last_selected_level_;
  context.next_index = next_index;
  context.startup_level = startup_level_;
  last_decision_buffer_ = context.buffer;
  int level = std::clamp(abr_->select_video_level(context), 0,
                         static_cast<int>(presentation_.video.size()) - 1);
  // Data-saver cap: never exceed the configured resolution.
  while (config_.max_height_cap > 0 && level > 0 &&
         video_track(level).resolution.height > config_.max_height_cap) {
    --level;
  }
  if (decisions_metric_ != nullptr) {
    decisions_metric_->add();
    if (level != context.last_level) switches_metric_->add();
  }
  if (obs::trace_on(obs_, obs::Category::kAbr)) {
    // The decision with its full input vector: this is what "why did it
    // switch here?" debugging needs, and what a bisect against ground
    // truth joins on (next_index).
    obs_->trace.instant(
        sim_.now(), obs::Category::kAbr, "abr.decide", abr_track_,
        {obs::Field::n("index", next_index),
         obs::Field::n("est_mbps", context.bandwidth_estimate / 1e6),
         obs::Field::n("samples", context.estimator_samples),
         obs::Field::n("buffer_s", context.buffer),
         obs::Field::n("last_level", context.last_level),
         obs::Field::n("level", level)});
  }
  return level;
}

void Player::maybe_trigger_cascade_sr(int target_level) {
  if (config_.sr != SrPolicy::kCascadeNaive &&
      config_.sr != SrPolicy::kCascadeExoV1) {
    return;
  }
  const int previous = last_selected_level_;
  if (target_level <= previous) return;
  if (video_buffer_.buffered_ahead(position_) <= config_.sr_min_buffer) return;

  const BufferedSegment* playing = video_buffer_.at_position(position_);
  const int playing_index = playing != nullptr ? playing->index : -1;
  int cascade_from = -1;
  for (const BufferedSegment& s : video_buffer_.segments()) {
    if (s.index <= playing_index) continue;
    const bool match = config_.sr == SrPolicy::kCascadeExoV1
                           ? s.level < previous
                           : s.level != target_level;
    if (match) {
      cascade_from = s.index;
      break;
    }
  }
  if (cascade_from < 0) return;
  // Suffix discard: the deque design cannot drop a single mid-buffer
  // segment, so everything from the match onward is thrown away (§4.1.2).
  for (const BufferedSegment& s : video_buffer_.discard_from(cascade_from)) {
    ReplacementEvent event;
    event.wall_time = sim_.now();
    event.index = s.index;
    event.old_level = s.level;
    event.new_level = -1;  // refetch level decided per segment later
    event.old_bytes = s.size;
    events_.replacements.push_back(event);
    if (replacements_metric_ != nullptr) {
      replacements_metric_->add();
      wasted_bytes_metric_->add(s.size);
    }
    if (obs::trace_on(obs_, obs::Category::kPlayer)) {
      obs_->trace.instant(
          sim_.now(), obs::Category::kPlayer, "sr.discard", player_track_,
          {obs::Field::n("index", s.index), obs::Field::n("level", s.level),
           obs::Field::n("target", target_level),
           obs::Field::n("wasted_bytes", static_cast<double>(s.size))});
    }
  }
  next_index_[kVideoPipe] = cascade_from;
}

std::optional<int> Player::per_segment_sr_candidate(int target_level) const {
  const BufferedSegment* playing = video_buffer_.at_position(position_);
  const int playing_index = playing != nullptr ? playing->index : -1;
  for (const BufferedSegment& s : video_buffer_.segments()) {
    if (s.index <= playing_index) continue;
    if (s.level >= target_level) continue;  // only ever upgrade
    if (config_.sr_max_height > 0 &&
        s.resolution.height > config_.sr_max_height) {
      continue;  // data-saver mode: leave decent segments alone
    }
    return s.index;
  }
  return std::nullopt;
}

bool Player::service_retries(int pipeline, int parallelism, bool* blocked) {
  *blocked = false;
  auto& queue = retries_[pipeline];
  if (queue.empty()) return false;
  *blocked = true;  // never fetch ahead past a hole that a retry will fill
  if (sim_.now() < queue.front().eligible_at ||
      in_flight_count_[pipeline] >= parallelism || !client_->can_fetch()) {
    return false;
  }
  const FetchInfo retry = queue.front().info;
  queue.pop_front();
  issue_segment_fetch(pipeline, retry.index, retry.level, retry.replacement,
                      retry.attempt);
  return true;
}

void Player::issue_segment_fetch(int pipeline, int index, int level,
                                 bool replacement, int attempt) {
  const manifest::ClientTrack& track =
      pipeline == kVideoPipe ? video_track(level) : audio_track();
  VODX_ASSERT(index >= 0 && index < static_cast<int>(track.segments.size()),
              "segment index out of range");
  const manifest::ClientSegment& segment =
      track.segments[static_cast<std::size_t>(index)];

  const int key = next_fetch_key_++;
  FetchInfo info;
  info.pipeline = pipeline;
  info.index = index;
  info.level = level;
  info.replacement = replacement;
  info.issued_at = sim_.now();
  info.attempt = attempt;

  // D3-style split download: one segment as parallel sub-range requests.
  int parts = 1;
  if (pipeline == kVideoPipe && config_.split_segment_downloads &&
      segment.ref.range && config_.max_connections > 1) {
    parts = std::min(config_.max_connections, client_->free_slots());
    parts = std::max(parts, 1);
  }
  info.subrequests_remaining = parts;
  fetches_[key] = info;
  ++in_flight_count_[pipeline];

  auto deliver = [this, key](const http::Response& response) {
    on_segment_done(key, response);
  };

  if (parts == 1) {
    http::Request request{http::Method::kGet, segment.ref.url,
                          segment.ref.range};
    const int id = client_->fetch(request, deliver);
    VODX_ASSERT(id >= 0, "scheduler issued fetch without a free connection");
    fetches_[key].transfer_ids.push_back(id);
    return;
  }
  const manifest::ByteRange range = *segment.ref.range;
  const Bytes total = range.length();
  Bytes offset = range.first;
  for (int part = 0; part < parts; ++part) {
    const Bytes share = total / parts + (part < total % parts ? 1 : 0);
    http::Request request{http::Method::kGet, segment.ref.url,
                          manifest::ByteRange{offset, offset + share - 1}};
    offset += share;
    const int id = client_->fetch(request, deliver);
    VODX_ASSERT(id >= 0, "split fetch without a free connection");
    fetches_[key].transfer_ids.push_back(id);
  }
}

void Player::on_segment_done(int fetch_key, const http::Response& response) {
  auto it = fetches_.find(fetch_key);
  VODX_ASSERT(it != fetches_.end(), "completion for unknown fetch");
  FetchInfo& info = it->second;
  if (!response.ok()) {
    info.failed = true;
  } else {
    info.accumulated_bytes += response.payload_size;
  }
  if (--info.subrequests_remaining > 0) return;
  FetchInfo done = info;
  fetches_.erase(it);
  --in_flight_count_[done.pipeline];
  if (done.failed) {
    handle_fetch_failure(done);
    return;
  }
  complete_segment(done);
}

void Player::handle_fetch_failure(const FetchInfo& done) {
  if (fetch_failures_metric_ != nullptr) fetch_failures_metric_->add();
  if (obs::trace_on(obs_, obs::Category::kPlayer)) {
    obs_->trace.instant(
        sim_.now(), obs::Category::kPlayer, "fetch.failed", player_track_,
        {obs::Field::n("index", done.index),
         obs::Field::n("level", done.level),
         obs::Field::n("attempt", done.attempt),
         obs::Field::n("replacement", done.replacement ? 1 : 0)});
  }
  // Transient failures get retried with linear backoff; replacement
  // downloads are opportunistic and are simply dropped. Once the retry
  // budget is exhausted the pipeline stops advancing — no further
  // content will arrive (which is exactly what the black-box startup
  // probe needs to observe).
  if (!done.replacement && done.attempt + 1 < config_.fetch_retries) {
    FetchInfo retry = done;
    retry.transfer_ids.clear();
    retry.accumulated_bytes = 0;
    retry.subrequests_remaining = 0;
    ++retry.attempt;
    Seconds backoff = config_.retry_backoff * retry.attempt;
    if (config_.retry_jitter > 0) {
      // Seeded jitter decorrelates retry storms; the stream is only ever
      // consumed here, so enabling it cannot perturb anything else.
      backoff += config_.retry_jitter * config_.retry_backoff *
                 retry_rng_.uniform(0, 1);
    }
    retries_[done.pipeline].push_back({retry, sim_.now() + backoff});
    return;
  }
  // Graceful abandon-and-downswitch: instead of giving the pipeline up,
  // spend one last attempt on the cheapest rendition. A level-0 failure
  // falls through to the give-up below.
  if (!done.replacement && config_.abandon_downswitch && done.level > 0) {
    FetchInfo retry = done;
    retry.transfer_ids.clear();
    retry.accumulated_bytes = 0;
    retry.subrequests_remaining = 0;
    retry.level = 0;
    retry.attempt = std::max(0, config_.fetch_retries - 1);
    if (obs::trace_on(obs_, obs::Category::kPlayer)) {
      obs_->trace.instant(sim_.now(), obs::Category::kPlayer,
                          "fetch.downswitch", player_track_,
                          {obs::Field::n("index", done.index),
                           obs::Field::n("from_level", done.level)});
    }
    retries_[done.pipeline].push_back(
        {retry, sim_.now() + config_.retry_backoff});
    return;
  }
  if (!done.replacement && obs::trace_on(obs_, obs::Category::kPlayer)) {
    obs_->trace.instant(sim_.now(), obs::Category::kPlayer,
                        "pipeline.giveup", player_track_,
                        {obs::Field::n("pipeline", done.pipeline),
                         obs::Field::n("index", done.index)});
  }
  next_index_[done.pipeline] =
      static_cast<int>((done.pipeline == kVideoPipe ? video_track(0)
                                                    : audio_track())
                           .segments.size());
}

void Player::check_fetch_timeouts() {
  if (config_.fetch_timeout <= 0 || fetches_.empty()) return;
  const Seconds deadline = sim_.now() - config_.fetch_timeout;
  // Collect first: aborting mutates client state, and handle_fetch_failure
  // may push retries that schedule_downloads turns into new fetches_.
  std::vector<int> expired;
  for (const auto& [key, info] : fetches_) {
    if (info.issued_at <= deadline) expired.push_back(key);
  }
  for (int key : expired) {
    auto it = fetches_.find(key);
    if (it == fetches_.end()) continue;
    FetchInfo done = it->second;
    for (int id : done.transfer_ids) client_->abort(id);
    fetches_.erase(it);
    --in_flight_count_[done.pipeline];
    if (obs::trace_on(obs_, obs::Category::kPlayer)) {
      obs_->trace.instant(
          sim_.now(), obs::Category::kPlayer, "fetch.timeout", player_track_,
          {obs::Field::n("index", done.index),
           obs::Field::n("level", done.level),
           obs::Field::n("waited_s", sim_.now() - done.issued_at)});
    }
    done.failed = true;
    handle_fetch_failure(done);
  }
}

void Player::complete_segment(FetchInfo info) {
  const manifest::ClientTrack& track = info.pipeline == kVideoPipe
                                           ? video_track(info.level)
                                           : audio_track();
  const manifest::ClientSegment& segment =
      track.segments[static_cast<std::size_t>(info.index)];

  if (info.pipeline == kVideoPipe) {
    // Player-wide bandwidth metering (the ExoPlayer BandwidthMeter idea):
    // all bytes the client received since the previous video completion,
    // over the time at least one transfer was active. This naturally
    // accounts for parallel segment downloads and for audio sharing the
    // pipe — a per-download rate would see only a fraction of the link.
    const Bytes delivered = client_->total_delivered();
    if (meter_busy_time_ > 1e-3) {
      estimator_.add_download(delivered - meter_bytes_anchor_,
                              meter_busy_time_);
    }
    meter_bytes_anchor_ = delivered;
    meter_busy_time_ = 0;
  }

  BufferedSegment buffered;
  buffered.type = track.type;
  buffered.index = info.index;
  buffered.level = info.level;
  buffered.declared_bitrate = track.declared_bitrate;
  buffered.resolution = track.resolution;
  buffered.start = track.segment_start(info.index);
  buffered.duration = segment.duration;
  buffered.size = info.accumulated_bytes;
  buffered.downloaded_at = sim_.now();

  if (segment_fetch_metric_ != nullptr) {
    segment_fetch_metric_->record(sim_.now() - info.issued_at);
  }
  if (obs::trace_on(obs_, obs::Category::kPlayer)) {
    obs_->trace.instant(
        sim_.now(), obs::Category::kPlayer, "segment.buffered", player_track_,
        {obs::Field::n("pipeline", info.pipeline),
         obs::Field::n("index", info.index), obs::Field::n("level", info.level),
         obs::Field::n("bytes", static_cast<double>(info.accumulated_bytes)),
         obs::Field::n("fetch_s", sim_.now() - info.issued_at),
         obs::Field::n("replacement", info.replacement ? 1 : 0)});
  }

  PlaybackBuffer& buffer = buffer_of(info.pipeline);
  if (info.replacement) {
    // Playback may have passed this segment while the replacement was in
    // flight; in that case the download is pure waste.
    if (buffer.find(info.index) != nullptr &&
        buffered.start >= position_ - kEps) {
      BufferedSegment old = buffer.replace(std::move(buffered));
      ReplacementEvent event;
      event.wall_time = sim_.now();
      event.index = info.index;
      event.old_level = old.level;
      event.new_level = info.level;
      event.old_bytes = old.size;
      events_.replacements.push_back(event);
      if (replacements_metric_ != nullptr) {
        replacements_metric_->add();
        wasted_bytes_metric_->add(old.size);
      }
      if (obs::trace_on(obs_, obs::Category::kPlayer)) {
        obs_->trace.instant(
            sim_.now(), obs::Category::kPlayer, "sr.replace", player_track_,
            {obs::Field::n("index", info.index),
             obs::Field::n("old_level", old.level),
             obs::Field::n("new_level", info.level),
             obs::Field::n("wasted_bytes", static_cast<double>(old.size))});
      }
    } else {
      // The replacement itself arrived too late to be used — pure waste.
      if (wasted_bytes_metric_ != nullptr) {
        wasted_bytes_metric_->add(info.accumulated_bytes);
      }
      if (obs::trace_on(obs_, obs::Category::kPlayer)) {
        obs_->trace.instant(
            sim_.now(), obs::Category::kPlayer, "sr.late", player_track_,
            {obs::Field::n("index", info.index),
             obs::Field::n("level", info.level),
             obs::Field::n(
                 "wasted_bytes",
                 static_cast<double>(info.accumulated_bytes))});
      }
    }
    return;
  }
  buffer.append(std::move(buffered));
  schedule_downloads();
}

}  // namespace vodx::player
