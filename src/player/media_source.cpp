#include "player/media_source.h"

#include <cmath>

#include "common/error.h"
#include "common/strings.h"
#include "http/origin_server.h"
#include "manifest/dash_mpd.h"
#include "manifest/hls.h"
#include "manifest/smooth.h"
#include "manifest/uri.h"
#include "media/sidx.h"

namespace vodx::player {

MediaSource::MediaSource(http::HttpClient& client, Options options)
    : client_(client), options_(options) {}

void MediaSource::resolve(const std::string& manifest_url, ReadyFn on_ready,
                          ErrorFn on_error) {
  on_ready_ = std::move(on_ready);
  on_error_ = std::move(on_error);
  http::Request request{http::Method::kGet, manifest_url, std::nullopt};
  switch (options_.protocol) {
    case manifest::Protocol::kHls:
      enqueue(request, [this, manifest_url](const http::Response& r) {
        handle_hls_master(manifest_url, r);
      });
      break;
    case manifest::Protocol::kDash:
      enqueue(request, [this, manifest_url](const http::Response& r) {
        handle_dash_mpd(manifest_url, r);
      });
      break;
    case manifest::Protocol::kSmooth:
      enqueue(request, [this, manifest_url](const http::Response& r) {
        handle_smooth(manifest_url, r);
      });
      break;
  }
  pump();
}

void MediaSource::enqueue(http::Request request, Handler handler,
                          bool droppable) {
  PendingFetch entry;
  entry.request = std::move(request);
  entry.handler = std::move(handler);
  entry.droppable = droppable;
  entry.attempts_left = options_.retries;
  queue_.push_back(std::move(entry));
}

void MediaSource::pump() {
  if (failed_ || in_flight_) return;
  if (queue_.empty()) {
    finish();
    return;
  }
  PendingFetch entry = std::move(queue_.front());
  queue_.pop_front();
  issue(std::move(entry));
}

void MediaSource::issue(PendingFetch entry) {
  in_flight_ = true;
  const http::Request request = entry.request;
  const int id = client_.fetch(
      request, [this, entry = std::move(entry)](const http::Response& r) mutable {
        in_flight_ = false;
        if (!r.ok()) {
          if (entry.attempts_left > 0) {
            --entry.attempts_left;
            issue(std::move(entry));  // each re-issue still costs >= 1 RTT
            return;
          }
          if (entry.droppable && options_.tolerate_variant_loss) {
            // Stale-manifest fallback: carry on without this track; the
            // session only fails later if no video track survived.
            pump();
            return;
          }
          fail(format("manifest fetch failed with status %d", r.status));
          return;
        }
        try {
          entry.handler(r);
        } catch (const Error& e) {
          fail(e.what());
          return;
        }
        pump();
      });
  if (id < 0) fail("no connection available for manifest fetch");
}

void MediaSource::fail(const std::string& reason) {
  failed_ = true;
  queue_.clear();
  if (on_error_) on_error_(reason);
}

void MediaSource::finish() {
  presentation_.sort_tracks();
  if (on_ready_) on_ready_(std::move(presentation_));
}

void MediaSource::handle_hls_master(const std::string& url,
                                    const http::Response& resp) {
  manifest::HlsMasterPlaylist master =
      manifest::HlsMasterPlaylist::parse(resp.body);
  if (master.variants.empty()) throw ParseError("master playlist is empty");
  for (const manifest::HlsVariant& variant : master.variants) {
    const std::string playlist_url = manifest::uri_resolve(url, variant.uri);
    enqueue(
        http::Request{http::Method::kGet, playlist_url, std::nullopt},
        [this, variant, playlist_url](const http::Response& r) {
          manifest::HlsMediaPlaylist playlist =
              manifest::HlsMediaPlaylist::parse(r.body);
          manifest::ClientTrack track;
          track.id = variant.uri;
          track.type = media::ContentType::kVideo;
          track.declared_bitrate = variant.bandwidth;
          track.average_bandwidth = variant.average_bandwidth.value_or(0);
          track.resolution = variant.resolution;
          int index = 0;
          for (const manifest::HlsMediaSegment& seg : playlist.segments) {
            manifest::ClientSegment cs;
            cs.index = index++;
            cs.duration = seg.duration;
            cs.ref.url = manifest::uri_resolve(playlist_url, seg.uri);
            cs.ref.range = seg.byterange;
            if (seg.byterange) cs.size = seg.byterange->length();
            track.segments.push_back(std::move(cs));
          }
          track.sizes_known =
              !track.segments.empty() && track.segments.front().size > 0;
          presentation_.video.push_back(std::move(track));
        },
        /*droppable=*/true);
  }
}

void MediaSource::handle_dash_mpd(const std::string& url,
                                  const http::Response& resp) {
  std::string body = resp.body;
  if (http::is_scrambled(body)) {
    if (!options_.can_descramble) {
      throw ParseError("manifest is encrypted and no key is available");
    }
    body = http::unscramble_manifest(body);
  }
  manifest::DashMpd mpd = manifest::DashMpd::parse(body);
  for (const manifest::DashAdaptationSet& set : mpd.adaptation_sets) {
    for (const manifest::DashRepresentation& rep : set.representations) {
      const std::string media_url = manifest::uri_resolve(url, rep.base_url);
      manifest::ClientTrack track;
      track.id = rep.id;
      track.type = set.content_type;
      track.declared_bitrate = rep.bandwidth;
      track.resolution = rep.resolution;
      if (!rep.media_template.empty()) {
        // SegmentTemplate: per-segment files, no sizes on the wire.
        int index = 0;
        for (Seconds d : rep.template_durations) {
          manifest::ClientSegment cs;
          cs.index = index;
          cs.duration = d;
          cs.ref.url = manifest::uri_resolve(url, rep.template_url(index));
          track.segments.push_back(std::move(cs));
          ++index;
        }
        track.sizes_known = false;
        auto& ladder = set.content_type == media::ContentType::kVideo
                           ? presentation_.video
                           : presentation_.audio;
        ladder.push_back(std::move(track));
      } else if (!rep.segments.empty()) {
        // SegmentList: everything is in the MPD.
        int index = 0;
        for (const manifest::DashSegmentRef& ref : rep.segments) {
          manifest::ClientSegment cs;
          cs.index = index++;
          cs.duration = ref.duration;
          cs.ref.url = media_url;
          cs.ref.range = ref.media_range;
          cs.size = ref.media_range.length();
          track.segments.push_back(std::move(cs));
        }
        track.sizes_known = true;
        auto& ladder = set.content_type == media::ContentType::kVideo
                           ? presentation_.video
                           : presentation_.audio;
        ladder.push_back(std::move(track));
      } else if (rep.index_range) {
        // SegmentBase: the sidx must be fetched to learn the ranges.
        const manifest::ByteRange index_range = *rep.index_range;
        const bool is_video = set.content_type == media::ContentType::kVideo;
        enqueue(
            http::Request{http::Method::kGet, media_url, index_range},
            [this, track = std::move(track), media_url, index_range,
             is_video](const http::Response& r) mutable {
              media::SidxBox sidx = media::parse_sidx(r.body);
              Bytes offset = index_range.last + 1 +
                             static_cast<Bytes>(sidx.first_offset);
              int index = 0;
              for (const media::SidxReference& ref : sidx.references) {
                manifest::ClientSegment cs;
                cs.index = index++;
                cs.duration = static_cast<double>(ref.subsegment_duration) /
                              sidx.timescale;
                cs.ref.url = media_url;
                cs.ref.range = manifest::ByteRange{
                    offset, offset + static_cast<Bytes>(ref.referenced_size) - 1};
                cs.size = static_cast<Bytes>(ref.referenced_size);
                offset += static_cast<Bytes>(ref.referenced_size);
                track.segments.push_back(std::move(cs));
              }
              track.sizes_known = true;
              auto& ladder =
                  is_video ? presentation_.video : presentation_.audio;
              ladder.push_back(std::move(track));
            },
            /*droppable=*/true);
      } else {
        throw ParseError("representation without segment information");
      }
    }
  }
}

void MediaSource::handle_smooth(const std::string& url,
                                const http::Response& resp) {
  manifest::SmoothManifest manifest = manifest::SmoothManifest::parse(resp.body);
  for (const manifest::SmoothStreamIndex& stream : manifest.stream_indexes) {
    for (const manifest::SmoothQualityLevel& quality : stream.quality_levels) {
      manifest::ClientTrack track;
      track.id = format("%s-%lld", media::to_string(stream.type),
                        static_cast<long long>(quality.bitrate));
      track.type = stream.type;
      track.declared_bitrate = quality.bitrate;
      track.resolution = quality.resolution;
      // Accumulate in seconds and round once per fragment — the same
      // arithmetic the origin uses to register fragment URLs.
      Seconds start_seconds = 0;
      int index = 0;
      for (Seconds d : stream.chunk_durations) {
        manifest::ClientSegment cs;
        cs.index = index++;
        cs.duration = d;
        const auto start_ticks = static_cast<std::uint64_t>(
            std::llround(start_seconds *
                         static_cast<double>(manifest::kSmoothTimescale)));
        cs.ref.url = manifest::uri_resolve(
            url, stream.fragment_url(quality.bitrate, start_ticks));
        start_seconds += d;
        track.segments.push_back(std::move(cs));
      }
      track.sizes_known = false;
      auto& ladder = stream.type == media::ContentType::kVideo
                         ? presentation_.video
                         : presentation_.audio;
      ladder.push_back(std::move(track));
    }
  }
}

}  // namespace vodx::player
