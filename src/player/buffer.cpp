#include "player/buffer.h"

#include <algorithm>

#include "common/error.h"

namespace vodx::player {

void PlaybackBuffer::append(BufferedSegment segment) {
  VODX_ASSERT(segment.index > consumed_up_to_,
              "appending a segment already consumed");
  auto it = std::lower_bound(segments_.begin(), segments_.end(), segment.index,
                             [](const BufferedSegment& s, int index) {
                               return s.index < index;
                             });
  VODX_ASSERT(it == segments_.end() || it->index != segment.index,
              "segment index already buffered; use replace()");
  segments_.insert(it, std::move(segment));
  ++epoch_;
}

BufferedSegment PlaybackBuffer::replace(BufferedSegment segment) {
  VODX_ASSERT(allow_mid_replacement_,
              "this buffer design cannot discard a segment in the middle");
  auto it = std::find_if(segments_.begin(), segments_.end(),
                         [&](const BufferedSegment& s) {
                           return s.index == segment.index;
                         });
  VODX_ASSERT(it != segments_.end(), "replacing a segment not in the buffer");
  BufferedSegment old = *it;
  *it = std::move(segment);
  ++epoch_;
  return old;
}

std::vector<BufferedSegment> PlaybackBuffer::discard_from(int from_index) {
  std::vector<BufferedSegment> discarded;
  auto it = std::lower_bound(segments_.begin(), segments_.end(), from_index,
                             [](const BufferedSegment& s, int index) {
                               return s.index < index;
                             });
  discarded.assign(it, segments_.end());
  segments_.erase(it, segments_.end());
  ++epoch_;
  return discarded;
}

void PlaybackBuffer::consume_until(Seconds position) {
  while (!segments_.empty() &&
         segments_.front().start + segments_.front().duration <=
             position + 1e-9) {
    consumed_up_to_ = std::max(consumed_up_to_, segments_.front().index);
    segments_.pop_front();
    ++epoch_;
  }
}

void PlaybackBuffer::reset() {
  segments_.clear();
  consumed_up_to_ = -1;
  ++epoch_;
}

Seconds PlaybackBuffer::contiguous_end(Seconds position) const {
  if (memo_valid_ && memo_epoch_ == epoch_) {
    if (memo_position_ == position) return memo_end_;
    // A position strictly inside the cached contiguous run resolves to the
    // same run end: segments cannot appear or vanish without an epoch bump,
    // and the walk from any interior position reaches the same gap. The
    // 1e-9 guard matches the walk's own "already behind" epsilon — at the
    // run boundary we fall through and recompute.
    if (position >= memo_position_ && position < memo_end_ - 1e-9) {
      memo_position_ = position;
      return memo_end_;
    }
  }
  Seconds end = position;
  int expected_index = -1;
  for (const BufferedSegment& s : segments_) {
    if (s.start + s.duration <= position + 1e-9) continue;  // already behind
    if (s.start > end + 1e-9) break;                        // gap in time
    if (expected_index >= 0 && s.index != expected_index) break;  // index gap
    end = s.start + s.duration;
    expected_index = s.index + 1;
  }
  end = std::max(end, position);
  memo_epoch_ = epoch_;
  memo_position_ = position;
  memo_end_ = end;
  memo_valid_ = true;
  return end;
}

int PlaybackBuffer::last_contiguous_index(Seconds position) const {
  int last = -1;
  int expected_index = -1;
  Seconds end = position;
  for (const BufferedSegment& s : segments_) {
    if (s.start + s.duration <= position + 1e-9) continue;
    if (s.start > end + 1e-9) break;
    if (expected_index >= 0 && s.index != expected_index) break;
    end = s.start + s.duration;
    expected_index = s.index + 1;
    last = s.index;
  }
  return last;
}

int PlaybackBuffer::contiguous_count(Seconds position) const {
  int count = 0;
  int expected_index = -1;
  Seconds end = position;
  for (const BufferedSegment& s : segments_) {
    if (s.start + s.duration <= position + 1e-9) continue;
    if (s.start > end + 1e-9) break;
    if (expected_index >= 0 && s.index != expected_index) break;
    end = s.start + s.duration;
    expected_index = s.index + 1;
    ++count;
  }
  return count;
}

const BufferedSegment* PlaybackBuffer::find(int index) const {
  auto it = std::lower_bound(segments_.begin(), segments_.end(), index,
                             [](const BufferedSegment& s, int i) {
                               return s.index < i;
                             });
  if (it == segments_.end() || it->index != index) return nullptr;
  return &*it;
}

const BufferedSegment* PlaybackBuffer::at_position(Seconds position) const {
  for (const BufferedSegment& s : segments_) {
    if (s.start <= position + 1e-9 &&
        position < s.start + s.duration - 1e-9) {
      return &s;
    }
  }
  return nullptr;
}

}  // namespace vodx::player
