// Throughput estimation from completed segment downloads.
//
// Aggregate sliding-window estimate: total bytes over total transfer time of
// the most recent downloads (the ExoPlayer BandwidthMeter idea). Aggregating
// makes single out-of-line downloads — one slow-started transfer after an
// idle pause, one tiny segment — count in proportion to the time they
// actually occupied, which a per-download EWMA gets badly wrong.
#pragma once

#include <deque>

#include "common/units.h"

namespace vodx::player {

class BandwidthEstimator {
 public:
  /// `alpha` kept for configuration compatibility: it scales the window as
  /// roughly 2/alpha samples (alpha 0.3 -> ~7 downloads).
  explicit BandwidthEstimator(double alpha = 0.3);

  /// Feeds one download: payload bytes over transfer duration.
  void add_download(Bytes bytes, Seconds duration);

  Bps estimate() const { return estimate_; }
  int sample_count() const { return samples_; }

 private:
  struct Sample {
    Bytes bytes;
    Seconds duration;
  };

  std::size_t window_;
  std::deque<Sample> samples_window_;
  Bps estimate_ = 0;
  int samples_ = 0;
};

}  // namespace vodx::player
