// Client-side manifest resolution.
//
// Drives the HTTP fetches a real player performs before it can stream:
//
//   HLS    master playlist, then every variant's media playlist
//   DASH   the MPD, then (SegmentBase mode) each representation's sidx —
//          mandatory, since byte ranges are unknown without it
//   SS     the single manifest
//
// The result is a protocol-neutral Presentation. For the D3-style service
// the MPD arrives application-layer encrypted; the client holds the app key
// (can_descramble) while the man-in-the-middle does not.
#pragma once

#include <deque>
#include <functional>
#include <string>

#include "http/http_client.h"
#include "manifest/presentation.h"

namespace vodx::player {

class MediaSource {
 public:
  struct Options {
    manifest::Protocol protocol = manifest::Protocol::kHls;
    bool can_descramble = false;
    /// Extra attempts per manifest-path fetch before it counts as failed
    /// (0 = first failure is final).
    int retries = 0;
    /// Stale-manifest fallback: skip an unfetchable variant playlist / sidx
    /// track (droppable fetches) instead of failing the whole resolution.
    bool tolerate_variant_loss = false;
  };

  MediaSource(http::HttpClient& client, Options options);

  using ReadyFn = std::function<void(manifest::Presentation)>;
  using ErrorFn = std::function<void(const std::string&)>;

  /// Starts resolution; exactly one of the callbacks fires eventually.
  void resolve(const std::string& manifest_url, ReadyFn on_ready,
               ErrorFn on_error);

 private:
  using Handler = std::function<void(const http::Response&)>;

  /// A queued manifest-path fetch. `droppable` marks per-track resources
  /// (variant playlists, sidx boxes) the resolution can survive without.
  struct PendingFetch {
    http::Request request;
    Handler handler;
    bool droppable = false;
    int attempts_left = 0;
  };

  void enqueue(http::Request request, Handler handler, bool droppable = false);
  void pump();
  void issue(PendingFetch entry);
  void fail(const std::string& reason);
  void finish();

  void handle_hls_master(const std::string& url, const http::Response& resp);
  void handle_dash_mpd(const std::string& url, const http::Response& resp);
  void handle_smooth(const std::string& url, const http::Response& resp);

  http::HttpClient& client_;
  Options options_;
  std::deque<PendingFetch> queue_;
  bool in_flight_ = false;
  bool failed_ = false;
  manifest::Presentation presentation_;
  ReadyFn on_ready_;
  ErrorFn on_error_;
};

}  // namespace vodx::player
