#include "player/bandwidth_estimator.h"

#include <algorithm>

namespace vodx::player {

BandwidthEstimator::BandwidthEstimator(double alpha)
    : window_(static_cast<std::size_t>(
          std::clamp(4.0 / std::max(alpha, 0.05), 2.0, 64.0))) {}

void BandwidthEstimator::add_download(Bytes bytes, Seconds duration) {
  if (bytes <= 0 || duration <= 0) return;
  samples_window_.push_back({bytes, duration});
  if (samples_window_.size() > window_) samples_window_.pop_front();
  Bytes total_bytes = 0;
  Seconds total_time = 0;
  for (const Sample& s : samples_window_) {
    total_bytes += s.bytes;
    total_time += s.duration;
  }
  estimate_ = rate_of(total_bytes, total_time);
  ++samples_;
}

}  // namespace vodx::player
