// Client playback buffer.
//
// Mirrors ExoPlayer's design discussed in §4.1.2: a double-ended queue
// ordered by segment index — the network appends at one end, the renderer
// consumes at the other. Discarding a suffix (cascade SR) is natural;
// replacing a single segment in the middle is the operation ExoPlayer lacks
// and the paper's improved SR needs, so we expose it behind a capability
// flag: constructing with `allow_mid_replacement = false` makes replace()
// a programming error, documenting which player designs could legally do it.
//
// With parallel segment downloads (D1) segments can arrive out of order, so
// the deque may contain gaps; playback only ever consumes the contiguous
// prefix.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/units.h"
#include "media/types.h"

namespace vodx::player {

struct BufferedSegment {
  media::ContentType type = media::ContentType::kVideo;
  int index = 0;
  int level = 0;
  Bps declared_bitrate = 0;
  media::Resolution resolution;
  Seconds start = 0;     ///< presentation time of the first frame
  Seconds duration = 0;
  Bytes size = 0;        ///< bytes spent downloading it
  Seconds downloaded_at = 0;
};

class PlaybackBuffer {
 public:
  explicit PlaybackBuffer(bool allow_mid_replacement = true)
      : allow_mid_replacement_(allow_mid_replacement) {}

  /// Inserts a newly downloaded segment (kept ordered by index). The index
  /// must not already be buffered and must be ahead of consumed content.
  void append(BufferedSegment segment);

  /// Swaps in a new rendition of an already-buffered index (improved SR).
  /// Returns the segment that was replaced.
  BufferedSegment replace(BufferedSegment segment);

  /// Discards every buffered segment with index >= `from_index` (cascade
  /// SR / ExoPlayer suffix discard). Returns the discarded segments.
  std::vector<BufferedSegment> discard_from(int from_index);

  /// Drops segments whose presentation interval ends at or before `position`
  /// (the renderer consumed them).
  void consume_until(Seconds position);

  /// Flushes everything, including the consumed-index watermark (a seek
  /// makes any position legal again).
  void reset();

  bool empty() const { return segments_.empty(); }

  /// Presentation time up to which playback can proceed without gaps,
  /// starting from `position`. Returns `position` if nothing is buffered at
  /// that point.
  Seconds contiguous_end(Seconds position) const;

  /// Buffered seconds ahead of `position` (contiguous region only).
  Seconds buffered_ahead(Seconds position) const {
    return contiguous_end(position) - position;
  }

  /// Highest buffered index within the contiguous region from `position`;
  /// -1 if none.
  int last_contiguous_index(Seconds position) const;

  /// Number of segments in the contiguous region covering `position`.
  int contiguous_count(Seconds position) const;

  const BufferedSegment* find(int index) const;

  /// Segment whose presentation interval covers `position`, or nullptr.
  const BufferedSegment* at_position(Seconds position) const;

  const std::deque<BufferedSegment>& segments() const { return segments_; }

 private:
  std::deque<BufferedSegment> segments_;
  bool allow_mid_replacement_;
  int consumed_up_to_ = -1;  ///< highest index ever consumed

  // contiguous_end() is pure in (segments_, position) and the player queries
  // it several times per tick at the same position, so the last result is
  // memoized keyed on an exact position match + a mutation epoch. The memo
  // can only ever return the value the walk would have produced.
  std::uint64_t epoch_ = 0;  ///< bumped on every segment mutation
  mutable std::uint64_t memo_epoch_ = 0;
  mutable Seconds memo_position_ = 0;
  mutable Seconds memo_end_ = 0;
  mutable bool memo_valid_ = false;
};

}  // namespace vodx::player
