// Adaptation (track selection) logic.
//
// Two families cover the behaviours observed across the 12 services
// (§3.3.3–3.3.4):
//
//  * ThroughputAbr — pick the highest track whose estimated need fits within
//    safety * bandwidth estimate. The "need" is the declared bitrate, or,
//    with use_actual_bitrate (§4.2 best practice), the worst actual bitrate
//    among the next few segments. Optional buffer damping (decrease_buffer)
//    refuses down-switches while the buffer is comfortable.
//  * OscillatingAbr — the D1 behaviour: chases the buffer slope, stepping up
//    whenever the buffer grew since the last decision and down when it
//    shrank, so it never converges even under constant bandwidth (Fig. 8).
#pragma once

#include <memory>

#include "common/units.h"
#include "manifest/presentation.h"
#include "player/config.h"

namespace vodx::player {

struct AbrContext {
  const manifest::Presentation* presentation = nullptr;
  Bps bandwidth_estimate = 0;  ///< 0 until the first sample
  int estimator_samples = 0;
  Seconds buffer = 0;          ///< buffered video seconds
  Seconds buffer_delta = 0;    ///< change since the previous decision
  int last_level = 0;
  int next_index = 0;          ///< segment the decision is for
  int startup_level = 0;
};

class AbrPolicy {
 public:
  virtual ~AbrPolicy() = default;
  virtual int select_video_level(const AbrContext& context) = 0;
};

/// Bandwidth a track will need around `next_index`, per the config's
/// declared-vs-actual setting. Exposed for tests and the SR engine.
Bps track_required_rate(const manifest::ClientTrack& track, int next_index,
                        const PlayerConfig& config);

std::unique_ptr<AbrPolicy> make_abr(const PlayerConfig& config);

}  // namespace vodx::player
