#include "player/abr.h"

#include <algorithm>

#include "common/error.h"

namespace vodx::player {

Bps track_required_rate(const manifest::ClientTrack& track, int next_index,
                        const PlayerConfig& config) {
  if (!config.use_actual_bitrate) return track.declared_bitrate;
  if (!track.sizes_known) {
    // No per-segment sizes on the wire; the HLS AVERAGE-BANDWIDTH attribute
    // is the next-best granularity (§4.2).
    return track.average_bandwidth > 0 ? track.average_bandwidth
                                       : track.declared_bitrate;
  }
  // Worst case over the upcoming window: a track is only affordable if the
  // segments about to be fetched fit, not just the average.
  Bps need = 0;
  const int count = static_cast<int>(track.segments.size());
  const int end = std::min(count, next_index + config.actual_bitrate_lookahead);
  for (int i = next_index; i < end; ++i) {
    need = std::max(need,
                    track.segments[static_cast<std::size_t>(i)].actual_bitrate());
  }
  return need > 0 ? need : track.declared_bitrate;
}

namespace {

class ThroughputAbr final : public AbrPolicy {
 public:
  explicit ThroughputAbr(const PlayerConfig& config) : config_(config) {}

  int select_video_level(const AbrContext& context) override {
    const auto& ladder = context.presentation->video;
    VODX_ASSERT(!ladder.empty(), "no video tracks");
    if (context.estimator_samples < config_.estimator_min_samples) {
      // Not enough history to trust the estimate (§4.3: players keep the
      // startup track for the first couple of segments).
      return context.startup_level;
    }
    const Bps budget = config_.bandwidth_safety * context.bandwidth_estimate;
    auto need_of = [&](int level) {
      return track_required_rate(ladder[static_cast<std::size_t>(level)],
                                 context.next_index, config_);
    };
    int best = 0;
    for (int level = 0; level < static_cast<int>(ladder.size()); ++level) {
      if (need_of(level) <= budget) best = level;
    }
    // Up-switch confirmation: a single optimistic estimate (one bursty
    // download) must not move the track up, or boundary operating points
    // flap. Down-switches stay immediate — stalls are worse than caution,
    // and the damped services express their patience via decrease_buffer.
    const int last = std::clamp(context.last_level, 0,
                                static_cast<int>(ladder.size()) - 1);
    if (best > last) {
      if (++up_votes_ < config_.switch_confirmation) best = last;
    } else {
      up_votes_ = 0;
    }
    if (best < last && config_.decrease_buffer > 0 &&
        context.buffer > config_.decrease_buffer) {
      // Plenty buffered: ride out the dip instead of switching down (§3.3.4).
      return last;
    }
    return best;
  }

 private:
  PlayerConfig config_;
  int up_votes_ = 0;
};

class OscillatingAbr final : public AbrPolicy {
 public:
  explicit OscillatingAbr(const PlayerConfig& config) : config_(config) {}

  int select_video_level(const AbrContext& context) override {
    const int max_level =
        static_cast<int>(context.presentation->video.size()) - 1;
    if (context.estimator_samples < config_.estimator_min_samples) {
      return context.startup_level;
    }
    // Baseline: the highest track whose *declared* bitrate fits the
    // estimate. With peak-declared VBR the actual bitrate is about half the
    // declared one, so this is "aggressive" in Fig.-9 terms (declared ~ y=x)
    // yet still downloads video at ~2x real time — which is exactly how D1
    // piles up ~100 s of video while its audio pipeline starves (§3.2).
    int baseline = 0;
    for (int level = 0; level <= max_level; ++level) {
      const auto& track =
          context.presentation->video[static_cast<std::size_t>(level)];
      if (track.declared_bitrate <= context.bandwidth_estimate) {
        baseline = level;
      }
    }
    // ... perturbed by the buffer slope every decision, which is what keeps
    // it from ever settling; strong slopes provoke double steps (the
    // non-consecutive switches users dislike, Fig. 8).
    int jitter = 0;
    if (context.buffer_delta > 2.0) {
      jitter = context.buffer_delta > 8.0 ? 2 : 1;  // a segment-fill burst
    } else if (context.buffer_delta < -2.5) {
      jitter = context.buffer_delta < -8.0 ? -2 : -1;  // a real drain
    }
    return std::clamp(baseline + jitter, 0, max_level);
  }

 private:
  PlayerConfig config_;
};

class BufferBasedAbr final : public AbrPolicy {
 public:
  explicit BufferBasedAbr(const PlayerConfig& config) : config_(config) {}

  int select_video_level(const AbrContext& context) override {
    const int max_level =
        static_cast<int>(context.presentation->video.size()) - 1;
    if (context.estimator_samples < config_.estimator_min_samples) {
      return context.startup_level;
    }
    // BBA rate map: lowest track inside the reservoir, highest once the
    // cushion is full, linear ladder walk in between. The buffer is the
    // controller — if the chosen track overruns the link, the buffer drains
    // and the map pulls the rate back down.
    const Seconds reservoir = std::max(0.0, config_.bba_reservoir);
    const Seconds cushion = std::max(1.0, config_.bba_cushion);
    if (context.buffer <= reservoir) return 0;
    const double frac =
        std::min(1.0, (context.buffer - reservoir) / cushion);
    return std::clamp(static_cast<int>(frac * max_level + 1e-9), 0,
                      max_level);
  }

 private:
  PlayerConfig config_;
};

}  // namespace

std::unique_ptr<AbrPolicy> make_abr(const PlayerConfig& config) {
  switch (config.abr) {
    case AbrKind::kThroughput:
      return std::make_unique<ThroughputAbr>(config);
    case AbrKind::kOscillating:
      return std::make_unique<OscillatingAbr>(config);
    case AbrKind::kBufferBased:
      return std::make_unique<BufferBasedAbr>(config);
  }
  throw ConfigError("unknown ABR kind");
}

}  // namespace vodx::player
