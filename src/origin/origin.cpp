#include "origin/origin.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/strings.h"
#include "http/proxy.h"

namespace vodx::origin {

namespace {

// splitmix64 finalizer — the same mixer faults::FaultInjector uses, so the
// jitter stream obeys the repo-wide purity discipline.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

constexpr std::uint64_t kTagBackoff = 0x0B;

/// A failed primary fetch: an HTTP error, or a wire reset scheduled by an
/// earlier (fault-injecting) response stage.
bool is_failure(const http::Response& response) {
  return !response.ok() || response.reset_after >= 0;
}

}  // namespace

const char* to_string(Mode mode) {
  switch (mode) {
    case Mode::kNone: return "none";
    case Mode::kNaive: return "naive";
    case Mode::kHardened: return "hardened";
  }
  return "?";
}

Mode parse_mode(const std::string& name) {
  if (name == "none") return Mode::kNone;
  if (name == "naive") return Mode::kNaive;
  if (name == "hardened") return Mode::kHardened;
  throw ConfigError(
      format("unknown origin mode '%s' (none|naive|hardened)", name.c_str()));
}

void OriginOptions::validate() const {
  if (cache_capacity <= 0) {
    throw ConfigError(format("origin cache capacity must be positive (got %d)",
                             cache_capacity));
  }
  if (cache_ttl_s <= 0) {
    throw ConfigError(
        format("origin cache TTL must be positive (got %g s)", cache_ttl_s));
  }
  if (cache_hit_s < 0 || manifest_package_s < 0 ||
      segment_package_base_s < 0 || segment_package_per_mb_s < 0) {
    throw ConfigError("origin latency knobs must be non-negative");
  }
  if (retry_budget < 0) {
    throw ConfigError(
        format("origin retry budget must be >= 0 (got %d)", retry_budget));
  }
  if (retry_budget > 0 && backoff_base_s <= 0) {
    throw ConfigError(format(
        "origin retry backoff must be positive (got %g s)", backoff_base_s));
  }
  if (backoff_jitter_s < 0) {
    throw ConfigError("origin backoff jitter must be non-negative");
  }
  if (breaker_threshold < 0) {
    throw ConfigError(format("origin breaker threshold must be >= 0 (got %d)",
                             breaker_threshold));
  }
  if (breaker_threshold > 0 && breaker_cooldown_s <= 0) {
    throw ConfigError(
        format("origin breaker cooldown must be positive (got %g s)",
               breaker_cooldown_s));
  }
  if (secondary_extra_s < 0) {
    throw ConfigError("origin secondary-DC latency must be non-negative");
  }
}

OriginOptions naive_origin() {
  OriginOptions options;
  options.mode = Mode::kNaive;
  options.coalesce = false;
  options.retry_budget = 0;
  options.breaker_threshold = 0;  // single DC: failures always propagate
  return options;
}

OriginOptions hardened_origin() {
  OriginOptions options;
  options.mode = Mode::kHardened;
  return options;
}

OriginOptions preset(Mode mode) {
  switch (mode) {
    case Mode::kNaive: return naive_origin();
    case Mode::kHardened: return hardened_origin();
    case Mode::kNone: break;
  }
  return OriginOptions{};
}

void OriginState::Totals::merge_from(const Totals& other) {
  hits += other.hits;
  misses += other.misses;
  expired += other.expired;
  coalesced += other.coalesced;
  dup_fills += other.dup_fills;
  flushes += other.flushes;
  consistency_failures += other.consistency_failures;
  retries += other.retries;
  trips += other.trips;
  probes += other.probes;
  secondary += other.secondary;
  errors += other.errors;
}

std::uint64_t response_digest(const http::Response& response) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001B3ull;
    }
  };
  mix(static_cast<std::uint64_t>(response.status));
  mix(static_cast<std::uint64_t>(response.payload_size));
  mix(static_cast<std::uint64_t>(response.head_content_length));
  for (char c : response.content_type) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  for (char c : response.body) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

OriginTier::OriginTier(OriginOptions options,
                       std::shared_ptr<OriginState> state,
                       std::string cache_scope)
    : options_(options),
      state_(state != nullptr ? std::move(state)
                              : std::make_shared<OriginState>()),
      cache_scope_(std::move(cache_scope)) {
  options_.validate();
}

void OriginTier::set_fault_schedule(
    std::vector<faults::CacheFlushFault> flushes,
    std::vector<faults::DcBlackoutFault> dc_blackouts) {
  flushes_ = std::move(flushes);
  dc_blackouts_ = std::move(dc_blackouts);
  std::sort(flushes_.begin(), flushes_.end(),
            [](const faults::CacheFlushFault& a,
               const faults::CacheFlushFault& b) { return a.at < b.at; });
}

void OriginTier::set_observer(obs::Observer* observer) {
  obs_ = observer;
  if (obs_ == nullptr) {
    c_hits_ = c_misses_ = c_expired_ = c_coalesced_ = c_dup_fills_ =
        c_flushes_ = c_consistency_ = c_retries_ = c_trips_ = c_probes_ =
            c_secondary_ = c_errors_ = nullptr;
    g_max_consec_ = nullptr;
    return;
  }
  obs_track_ = obs_->trace.track("origin");
  c_hits_ = &obs_->metrics.counter("origin.cache.hits");
  c_misses_ = &obs_->metrics.counter("origin.cache.misses");
  c_expired_ = &obs_->metrics.counter("origin.cache.expired");
  c_coalesced_ = &obs_->metrics.counter("origin.cache.coalesced");
  c_dup_fills_ = &obs_->metrics.counter("origin.cache.dup_fills");
  c_flushes_ = &obs_->metrics.counter("origin.cache.flushes");
  c_consistency_ = &obs_->metrics.counter("origin.cache.consistency_fail");
  c_retries_ = &obs_->metrics.counter("origin.retries");
  c_trips_ = &obs_->metrics.counter("origin.failover.trips");
  c_probes_ = &obs_->metrics.counter("origin.failover.probes");
  c_secondary_ = &obs_->metrics.counter("origin.failover.secondary");
  c_errors_ = &obs_->metrics.counter("origin.errors");
  obs_->metrics.gauge("origin.coalesce.enabled")
      .set(options_.coalesce ? 1 : 0);
  obs_->metrics.gauge("origin.breaker.threshold")
      .set(options_.breaker_threshold);
  g_max_consec_ = &obs_->metrics.gauge("origin.failover.max_consec");
  g_max_consec_->set(state_->max_consecutive_failures);
}

void OriginTier::attach(http::Proxy& proxy) { proxy_ = &proxy; }

bool OriginTier::primary_dark(Seconds when) const {
  for (const faults::DcBlackoutFault& window : dc_blackouts_) {
    if (window.covers(when)) return true;
  }
  return false;
}

double OriginTier::draw(std::uint64_t tag, std::uint64_t index) const {
  const std::uint64_t h =
      mix64(mix64(mix64(options_.seed + tag) + ordinal_) + index);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

Seconds OriginTier::packaging(const http::Response& response) const {
  if (http::Proxy::is_manifest_content(response.content_type)) {
    return options_.manifest_package_s;
  }
  const double mb = static_cast<double>(response.payload_size) / 1e6;
  return options_.segment_package_base_s +
         options_.segment_package_per_mb_s * mb;
}

std::string OriginTier::cache_key(const http::Request& request) const {
  std::string key = cache_scope_;
  key += request.method == http::Method::kHead ? "|HEAD|" : "|GET|";
  key += request.url;
  if (request.range) {
    key += format("|%lld-%lld", static_cast<long long>(request.range->first),
                  static_cast<long long>(request.range->last));
  }
  return key;
}

void OriginTier::apply_flushes(Seconds now) {
  for (const faults::CacheFlushFault& flush : flushes_) {
    if (flush.at > now) break;
    if (flush.at <= state_->last_flush) continue;
    state_->entries.clear();
    state_->last_flush = flush.at;
    ++state_->totals.flushes;
    count(c_flushes_);
  }
}

void OriginTier::verify_consistency(const http::Request& request,
                                    const OriginState::Entry& entry,
                                    Seconds now) {
  // The invariant the chaos catalog checks: bytes served from the edge must
  // be byte-identical to what the origin would serve right now. The model
  // origin is deterministic, so any mismatch is a cache bug (the classic
  // one: a key that ignores content identity and serves another session's
  // title).
  if (response_digest(fetch_origin(request)) == entry.digest) return;
  ++state_->totals.consistency_failures;
  count(c_consistency_);
  instant("origin.cache_inconsistent", request, now, 0);
}

http::Response OriginTier::fetch_origin(const http::Request& request) const {
  return proxy_->origin().handle(request);
}

void OriginTier::fill_cache(const std::string& key,
                            const http::Response& canonical, Seconds now,
                            Seconds ready_at) {
  OriginState::Entry entry;
  entry.response = canonical;
  entry.digest = response_digest(canonical);
  entry.expires = now + options_.cache_ttl_s;
  entry.ready_at = ready_at;
  entry.lru = ++state_->lru_tick;
  state_->entries[key] = std::move(entry);
  while (state_->entries.size() >
         static_cast<std::size_t>(options_.cache_capacity)) {
    auto victim = state_->entries.begin();
    for (auto it = state_->entries.begin(); it != state_->entries.end();
         ++it) {
      if (it->second.lru < victim->second.lru) victim = it;
    }
    state_->entries.erase(victim);
  }
}

void OriginTier::serve_secondary(const http::Request& request,
                                 http::Response& response,
                                 Seconds& origin_wait, Seconds now) {
  response = fetch_origin(request);
  origin_wait += packaging(response) + options_.secondary_extra_s;
  ++state_->totals.secondary;
  count(c_secondary_);
  instant("origin.failover", request, now,
          packaging(response) + options_.secondary_extra_s);
}

void OriginTier::count(obs::Counter* counter) {
  if (counter != nullptr) counter->add();
}

void OriginTier::instant(const char* name, const http::Request& request,
                         Seconds now, double wait_s) {
  if (obs::trace_on(obs_, obs::Category::kOrigin)) {
    obs_->trace.instant(now, obs::Category::kOrigin, name, obs_track_,
                        {obs::Field::t("url", request.url),
                         obs::Field::n("wait_s", wait_s)});
  }
}

std::optional<http::Response> OriginTier::on_request(
    const http::Request& request, Seconds now) {
  pending_hit_ = false;
  apply_flushes(now);
  const std::string key = cache_key(request);
  auto it = state_->entries.find(key);
  if (it == state_->entries.end()) return std::nullopt;  // miss

  OriginState::Entry& entry = it->second;
  if (now >= entry.expires) {
    state_->entries.erase(it);
    ++state_->totals.expired;
    count(c_expired_);
    return std::nullopt;  // stale: refill like any other miss
  }

  if (now >= entry.ready_at) {
    // Plain edge hit: short-circuits the origin *and* any later request
    // stage (injected origin errors never touch edge-served bytes).
    entry.lru = ++state_->lru_tick;
    ++state_->totals.hits;
    count(c_hits_);
    verify_consistency(request, entry, now);
    http::Response response = entry.response;
    response.added_latency += options_.cache_hit_s;
    pending_hit_ = true;
    return response;
  }

  // A fill for this key is still in flight (its bytes reach the edge at
  // ready_at).
  if (options_.coalesce) {
    entry.lru = ++state_->lru_tick;
    ++state_->totals.coalesced;
    count(c_coalesced_);
    verify_consistency(request, entry, now);
    http::Response response = entry.response;
    response.added_latency += (entry.ready_at - now) + options_.cache_hit_s;
    pending_hit_ = true;
    instant("origin.coalesced", request, now, entry.ready_at - now);
    return response;
  }

  // Coalescing disabled: the classic cache-miss storm. Every concurrent
  // requester refetches and repackages the same key.
  ++state_->totals.dup_fills;
  count(c_dup_fills_);
  return std::nullopt;
}

void OriginTier::on_response(const http::Request& request,
                             http::Response& response, Seconds now) {
  if (pending_hit_) {
    // Edge-served: the primary DC was never involved; wire faults layered
    // on top (injected latency/resets between edge and client) are not its
    // failures.
    pending_hit_ = false;
    ++ordinal_;
    return;
  }

  // A miss that went towards the primary DC. The response in hand is the
  // origin's answer after every fault stage ran — an injected error or
  // scheduled reset is indistinguishable from a sick primary, which is
  // exactly the point.
  ++state_->totals.misses;
  count(c_misses_);

  Seconds origin_wait = 0;
  bool served = false;  // response holds canonical bytes from some DC
  bool failed = is_failure(response) || primary_dark(now);

  if (breaker_enabled() && state_->breaker_open) {
    if (now >= state_->opened_at + options_.breaker_cooldown_s) {
      // Half-open: one probe decides. This request *was* the probe.
      ++state_->totals.probes;
      count(c_probes_);
      instant("origin.probe", request, now, 0);
      if (failed) {
        state_->opened_at = now;  // re-open for another cooldown
        serve_secondary(request, response, origin_wait, now);
        served = true;
        failed = false;
      } else {
        state_->breaker_open = false;
        state_->consecutive_failures = 0;
      }
    } else {
      serve_secondary(request, response, origin_wait, now);
      served = true;
      failed = false;
    }
  }

  if (!served && failed) {
    // Bounded retries against the primary, jittered exponential backoff.
    // Backoff is virtual time: a retry "lands" at now + accumulated backoff,
    // so it can ride out the tail of a short DC blackout. Injected
    // single-shot faults (errors, resets) are transient by model: the first
    // retry clears them unless the primary is actually dark.
    Seconds backoff_total = 0;
    for (int attempt = 1; attempt <= options_.retry_budget; ++attempt) {
      const Seconds backoff =
          options_.backoff_base_s * std::pow(2.0, attempt - 1) +
          options_.backoff_jitter_s *
              draw(kTagBackoff, static_cast<std::uint64_t>(attempt));
      backoff_total += backoff;
      ++state_->totals.retries;
      count(c_retries_);
      instant("origin.retry", request, now, backoff);
      if (!primary_dark(now + backoff_total)) {
        response = fetch_origin(request);
        origin_wait += backoff_total + packaging(response);
        state_->consecutive_failures = 0;
        served = true;
        failed = false;
        break;
      }
    }
    if (failed) {
      origin_wait += backoff_total;
      const int consecutive = ++state_->consecutive_failures;
      state_->max_consecutive_failures =
          std::max(state_->max_consecutive_failures, consecutive);
      if (g_max_consec_ != nullptr) {
        g_max_consec_->set(state_->max_consecutive_failures);
      }
      if (breaker_enabled() && consecutive >= options_.breaker_threshold) {
        state_->breaker_open = true;
        state_->opened_at = now;
        state_->consecutive_failures = 0;
        ++state_->totals.trips;
        count(c_trips_);
        instant("origin.failover", request, now, backoff_total);
        serve_secondary(request, response, origin_wait, now);
        served = true;
        failed = false;
      } else {
        // Budget exhausted below the trip threshold: the client sees the
        // failure (and its own retry machinery pushes the count upward).
        ++state_->totals.errors;
        count(c_errors_);
        if (!is_failure(response)) {
          response = http::make_error(503, "primary datacenter unavailable");
        }
      }
    }
  } else if (!served) {
    // Healthy miss straight from the primary.
    state_->consecutive_failures = 0;
    origin_wait += packaging(response);
    served = true;
  }

  if (served) {
    // Canonical copy into the edge cache: wire-fault fields stripped, the
    // fill completes (for coalescing waiters) once the origin-side latency
    // has elapsed.
    http::Response canonical = response;
    canonical.added_latency = 0;
    canonical.reset_after = -1;
    fill_cache(cache_key(request), canonical, now, now + origin_wait);
    response.added_latency += origin_wait;
  }
  instant("origin.cache_miss", request, now, origin_wait);
  ++ordinal_;
}

}  // namespace vodx::origin
