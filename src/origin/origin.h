// vodx::origin — resilient CDN/origin tier (ROADMAP item 2, DESIGN.md §16).
//
// The paper treated the server side as a black box; both related repos are
// nginx-vod-module variants — an origin that repackages MP4 → HLS/DASH on
// the fly, fronted by an edge cache and backed by more than one datacenter.
// This module models that tier as one http::Interceptor stage:
//
//   * per-request packaging latency (manifest vs segment, rung-size
//     dependent) on every fetch that reaches an origin,
//   * an edge cache (LRU + TTL) with request coalescing — one miss in
//     flight serves N waiters — and a switch to disable coalescing so
//     cache-miss storms under flash crowds are reproducible,
//   * a two-datacenter topology: bounded retries with seeded jittered
//     backoff against the primary, a consecutive-failure circuit breaker
//     that trips to the secondary, and half-open probing to recover.
//
// Determinism contract: every stochastic draw (retry jitter) is a pure
// splitmix64 hash of (options seed, per-session request ordinal, attempt) —
// the same discipline as faults::FaultInjector. Retries never schedule
// simulator events; backoff is *virtual* time accumulated into the
// response's added_latency, so a departure mid-backoff can never leak a
// scheduled event. Cache and breaker state may be shared by every session
// of a tower (single-threaded per tower), and all of it evolves only from
// the deterministic request order — byte-identical at any --jobs.
//
// Registered FIRST on the proxy chain: its request stage runs before the
// probes and the fault injector (an edge hit short-circuits the origin and
// any injected origin error — the cache absorbs origin-side pathology), and
// its response stage runs LAST, after the injector's — injected errors and
// resets register as primary-DC failures, so every faults::FaultPlan
// pathology composes against the failover machinery for free.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "faults/fault_plan.h"
#include "http/interceptor.h"
#include "obs/observer.h"

namespace vodx::origin {

enum class Mode {
  kNone,      ///< no origin tier: the plain single-origin path
  kNaive,     ///< cache without coalescing, no retries, no secondary DC
  kHardened,  ///< coalescing + bounded retries + breaker failover
};

const char* to_string(Mode mode);
/// Parses "none" | "naive" | "hardened"; throws ConfigError otherwise.
Mode parse_mode(const std::string& name);

struct OriginOptions {
  Mode mode = Mode::kNone;

  // Packaging: the nginx-vod-module cost of repackaging MP4 into the
  // protocol's container per request. Segments scale with their size.
  Seconds manifest_package_s = 0.030;
  Seconds segment_package_base_s = 0.012;
  Seconds segment_package_per_mb_s = 0.008;

  // Edge cache.
  int cache_capacity = 512;     ///< entries; LRU eviction beyond this
  Seconds cache_ttl_s = 120;    ///< entry lifetime from fill time
  Seconds cache_hit_s = 0.002;  ///< edge service latency on a hit
  bool coalesce = true;         ///< misses join an in-flight fill

  // Failover. retry_budget 0 = no retries; breaker_threshold 0 = no
  // breaker and no secondary DC (failures always propagate).
  int retry_budget = 2;
  Seconds backoff_base_s = 0.25;    ///< doubles per attempt
  Seconds backoff_jitter_s = 0.25;  ///< uniform extra in [0, jitter)
  int breaker_threshold = 3;        ///< consecutive failures before tripping
  Seconds breaker_cooldown_s = 15;  ///< open time before a half-open probe
  Seconds secondary_extra_s = 0.080;  ///< extra RTT to the secondary DC

  std::uint64_t seed = 1;  ///< retry-jitter stream

  /// Throws ConfigError on degenerate knobs (zero TTL, zero capacity,
  /// non-positive backoff with retries enabled, ...). Only meaningful when
  /// mode != kNone.
  void validate() const;
};

/// The canonical presets the CLI/sweep "origin" axis names.
OriginOptions naive_origin();
OriginOptions hardened_origin();
/// preset(kNone) returns a default (disabled) options struct.
OriginOptions preset(Mode mode);

/// Cache + breaker state. One per session by default; a population tower
/// shares one across every session it hosts (the tower's simulator is
/// single-threaded, so no locking — determinism comes from event order).
struct OriginState {
  struct Totals {
    long long hits = 0;
    long long misses = 0;
    long long expired = 0;
    long long coalesced = 0;
    long long dup_fills = 0;
    long long flushes = 0;
    long long consistency_failures = 0;
    long long retries = 0;
    long long trips = 0;
    long long probes = 0;
    long long secondary = 0;
    long long errors = 0;  ///< failures propagated to the client

    void merge_from(const Totals& other);
  };

  struct Entry {
    http::Response response;  ///< canonical: no wire-fault fields set
    std::uint64_t digest = 0;
    Seconds expires = 0;
    Seconds ready_at = 0;  ///< the edge has the bytes from here on
    std::uint64_t lru = 0;
  };

  Totals totals;
  std::map<std::string, Entry> entries;
  std::uint64_t lru_tick = 0;
  Seconds last_flush = -1;  ///< cache-flush schedule high-water mark

  // Breaker (closed -> open on threshold consecutive failures -> half-open
  // probe after the cooldown -> closed on success / re-open on failure).
  bool breaker_open = false;
  Seconds opened_at = 0;
  int consecutive_failures = 0;
  int max_consecutive_failures = 0;
};

/// FNV-1a digest of a response's identity (status, content type, body,
/// payload size) — what the cache.consistency invariant compares.
std::uint64_t response_digest(const http::Response& response);

class OriginTier : public http::Interceptor {
 public:
  /// `state` may be shared across sessions; null allocates private state.
  /// `cache_scope` namespaces this session's keys (service + content seed):
  /// two sessions share cached bytes only when they stream the same title.
  OriginTier(OriginOptions options, std::shared_ptr<OriginState> state,
             std::string cache_scope);

  /// Origin-targeted fault windows from the session's FaultPlan.
  void set_fault_schedule(std::vector<faults::CacheFlushFault> flushes,
                          std::vector<faults::DcBlackoutFault> dc_blackouts);
  void set_observer(obs::Observer* observer);

  const OriginState& state() const { return *state_; }
  const OriginOptions& options() const { return options_; }

  void attach(http::Proxy& proxy) override;
  std::optional<http::Response> on_request(const http::Request& request,
                                           Seconds now) override;
  void on_response(const http::Request& request, http::Response& response,
                   Seconds now) override;

 private:
  bool breaker_enabled() const { return options_.breaker_threshold > 0; }
  bool primary_dark(Seconds when) const;
  double draw(std::uint64_t tag, std::uint64_t index) const;
  Seconds packaging(const http::Response& response) const;
  std::string cache_key(const http::Request& request) const;
  void apply_flushes(Seconds now);
  void verify_consistency(const http::Request& request,
                          const OriginState::Entry& entry, Seconds now);
  /// Fetches the canonical response from the given DC replica (the model
  /// origin is deterministic, so both DCs serve identical bytes).
  http::Response fetch_origin(const http::Request& request) const;
  void fill_cache(const std::string& key, const http::Response& canonical,
                  Seconds now, Seconds ready_at);
  void serve_secondary(const http::Request& request, http::Response& response,
                       Seconds& origin_wait, Seconds now);
  void count(obs::Counter* counter);
  void instant(const char* name, const http::Request& request, Seconds now,
               double wait_s);

  OriginOptions options_;
  std::shared_ptr<OriginState> state_;
  std::string cache_scope_;
  std::vector<faults::CacheFlushFault> flushes_;
  std::vector<faults::DcBlackoutFault> dc_blackouts_;
  const http::Proxy* proxy_ = nullptr;

  /// One ordinal per proxied request, advanced in on_response (which runs
  /// exactly once per resolve); the retry-jitter stream is keyed on it.
  std::uint64_t ordinal_ = 0;
  /// resolve() is synchronous: set by on_request when it short-circuits
  /// from the cache, consumed by the same request's on_response.
  bool pending_hit_ = false;

  obs::Observer* obs_ = nullptr;
  int obs_track_ = 0;
  obs::Counter* c_hits_ = nullptr;
  obs::Counter* c_misses_ = nullptr;
  obs::Counter* c_expired_ = nullptr;
  obs::Counter* c_coalesced_ = nullptr;
  obs::Counter* c_dup_fills_ = nullptr;
  obs::Counter* c_flushes_ = nullptr;
  obs::Counter* c_consistency_ = nullptr;
  obs::Counter* c_retries_ = nullptr;
  obs::Counter* c_trips_ = nullptr;
  obs::Counter* c_probes_ = nullptr;
  obs::Counter* c_secondary_ = nullptr;
  obs::Counter* c_errors_ = nullptr;
  obs::Gauge* g_max_consec_ = nullptr;
};

}  // namespace vodx::origin
