#include "media/video_asset.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace vodx::media {

VideoAsset::VideoAsset(std::string name, std::vector<Track> video_tracks,
                       std::vector<Track> audio_tracks)
    : name_(std::move(name)),
      video_tracks_(std::move(video_tracks)),
      audio_tracks_(std::move(audio_tracks)) {
  VODX_ASSERT(!video_tracks_.empty(), "asset needs video tracks");
  std::sort(video_tracks_.begin(), video_tracks_.end(),
            [](const Track& a, const Track& b) {
              return a.declared_bitrate() < b.declared_bitrate();
            });
  const Seconds dur = video_tracks_.front().duration();
  for (const Track& t : video_tracks_) {
    VODX_ASSERT(t.type() == ContentType::kVideo, "video ladder holds video");
    VODX_ASSERT(std::abs(t.duration() - dur) < 1e-6,
                "all tracks must cover the same duration");
  }
  for (const Track& t : audio_tracks_) {
    VODX_ASSERT(t.type() == ContentType::kAudio, "audio ladder holds audio");
  }
}

const Track& VideoAsset::video_track(int level) const {
  VODX_ASSERT(level >= 0 && level < video_track_count(), "bad video level");
  return video_tracks_[static_cast<std::size_t>(level)];
}

const Track& VideoAsset::audio_track(int level) const {
  VODX_ASSERT(level >= 0 &&
                  level < static_cast<int>(audio_tracks_.size()),
              "bad audio level");
  return audio_tracks_[static_cast<std::size_t>(level)];
}

int VideoAsset::video_level_of(const std::string& track_id) const {
  for (int i = 0; i < video_track_count(); ++i) {
    if (video_tracks_[static_cast<std::size_t>(i)].id() == track_id) return i;
  }
  return -1;
}

Bps VideoAsset::lowest_declared_bitrate() const {
  return video_tracks_.front().declared_bitrate();
}

Bps VideoAsset::highest_declared_bitrate() const {
  return video_tracks_.back().declared_bitrate();
}

}  // namespace vodx::media
