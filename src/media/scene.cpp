#include "media/scene.h"

#include <algorithm>

#include "common/error.h"

namespace vodx::media {

SceneComplexity SceneComplexity::generate(Seconds duration, Rng& rng,
                                          const SceneModelConfig& config) {
  VODX_ASSERT(duration > 0, "need positive duration");
  SceneComplexity out;
  Seconds t = 0;
  double weighted_sum = 0;
  while (t < duration) {
    Seconds scene_dur = std::max(
        0.5, rng.lognormal(config.mean_scene_duration, config.duration_sigma));
    scene_dur = std::min(scene_dur, duration - t);
    double complexity = rng.lognormal(1.0, config.complexity_sigma);
    out.scenes_.push_back({t, complexity});
    weighted_sum += complexity * scene_dur;
    t += scene_dur;
  }
  out.duration_ = duration;
  // Normalise so the duration-weighted mean complexity is exactly 1; this
  // makes encoder bitrate targets exact in expectation and in realisation.
  const double mean = weighted_sum / duration;
  for (Scene& s : out.scenes_) s.complexity /= mean;
  return out;
}

double SceneComplexity::average_over(Seconds t0, Seconds t1) const {
  VODX_ASSERT(t1 > t0, "empty interval");
  t0 = std::clamp(t0, 0.0, duration_);
  t1 = std::clamp(t1, 0.0, duration_);
  if (t1 <= t0) return 1.0;
  double sum = 0;
  for (std::size_t i = 0; i < scenes_.size(); ++i) {
    Seconds start = std::max(scenes_[i].start, t0);
    Seconds end = (i + 1 < scenes_.size()) ? scenes_[i + 1].start : duration_;
    end = std::min(end, t1);
    if (end > start) sum += scenes_[i].complexity * (end - start);
  }
  return sum / (t1 - t0);
}

}  // namespace vodx::media
