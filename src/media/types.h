// Basic media vocabulary shared by the encoder, manifests and player.
#pragma once

#include <string>

namespace vodx::media {

enum class ContentType { kVideo, kAudio };

inline const char* to_string(ContentType type) {
  return type == ContentType::kVideo ? "video" : "audio";
}

/// Standard resolution rungs, used to bucket quality in Fig. 11/13 style
/// "time below 360p/480p" metrics.
struct Resolution {
  int width = 0;
  int height = 0;

  bool operator==(const Resolution&) const = default;
  std::string label() const { return std::to_string(height) + "p"; }
};

constexpr Resolution k240p{426, 240};
constexpr Resolution k360p{640, 360};
constexpr Resolution k480p{854, 480};
constexpr Resolution k720p{1280, 720};
constexpr Resolution k1080p{1920, 1080};

/// The conventional resolution for a given video bitrate; used when a service
/// spec gives only the bitrate ladder.
Resolution typical_resolution_for(double bps);

inline Resolution typical_resolution_for(double bps) {
  if (bps < 400e3) return k240p;
  if (bps < 900e3) return k360p;
  if (bps < 1.8e6) return k480p;
  if (bps < 3.5e6) return k720p;
  return k1080p;
}

}  // namespace vodx::media
