// ISO/IEC 14496-12 Segment Index Box ('sidx') — binary writer and parser.
//
// DASH services expose per-segment byte ranges and durations via the sidx box
// placed at the head of each track's media file. The paper's traffic analyzer
// parses sidx to map HTTP byte-range requests to segments (§2.3), including
// for the service whose MPD is application-layer encrypted (D3): the sidx is
// in the media file and stays readable.
//
// We implement the real wire format (version 0, 32-bit offsets) so the
// analyzer exercises genuine binary parsing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "media/track.h"

namespace vodx::media {

struct SidxReference {
  std::uint32_t referenced_size = 0;     ///< bytes of the subsegment
  std::uint32_t subsegment_duration = 0; ///< in timescale units
};

struct SidxBox {
  std::uint32_t reference_id = 1;
  std::uint32_t timescale = 1000;
  std::uint64_t earliest_presentation_time = 0;
  /// Distance from the byte after the sidx box to the first subsegment.
  std::uint64_t first_offset = 0;
  std::vector<SidxReference> references;

  /// Serialised size in bytes of this box (header included).
  std::uint32_t box_size() const;
};

/// Builds the sidx describing `track` (one reference per segment,
/// durations expressed in `timescale` units).
SidxBox sidx_for_track(const Track& track, std::uint32_t timescale = 1000);

/// Serialises to the exact wire format.
std::string serialize_sidx(const SidxBox& box);

/// Parses a serialised sidx; throws ParseError on malformed input.
SidxBox parse_sidx(std::string_view data);

}  // namespace vodx::media
