#include "media/track.h"

#include <algorithm>

#include "common/error.h"

namespace vodx::media {

Track::Track(std::string id, ContentType type, Bps declared_bitrate,
             Resolution resolution, std::vector<Segment> segments)
    : id_(std::move(id)),
      type_(type),
      declared_bitrate_(declared_bitrate),
      resolution_(resolution),
      segments_(std::move(segments)) {
  VODX_ASSERT(!segments_.empty(), "track needs segments");
  starts_.reserve(segments_.size());
  Bytes offset = 0;
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    Segment& s = segments_[i];
    VODX_ASSERT(s.duration > 0 && s.size > 0, "segment needs duration & size");
    s.index = static_cast<int>(i);
    s.offset = offset;
    offset += s.size;
    starts_.push_back(duration_);
    duration_ += s.duration;
    total_size_ += s.size;
  }
}

const Segment& Track::segment(int index) const {
  VODX_ASSERT(index >= 0 && index < segment_count(), "segment out of range");
  return segments_[static_cast<std::size_t>(index)];
}

Bps Track::average_actual_bitrate() const {
  return rate_of(total_size_, duration_);
}

Bps Track::peak_actual_bitrate() const {
  Bps peak = 0;
  for (const Segment& s : segments_) peak = std::max(peak, s.actual_bitrate());
  return peak;
}

int Track::segment_index_at(Seconds t) const {
  auto it = std::upper_bound(starts_.begin(), starts_.end(), t);
  if (it == starts_.begin()) return 0;
  int index = static_cast<int>(it - starts_.begin()) - 1;
  return std::min(index, segment_count() - 1);
}

Seconds Track::segment_start(int index) const {
  VODX_ASSERT(index >= 0 && index < segment_count(), "segment out of range");
  return starts_[static_cast<std::size_t>(index)];
}

}  // namespace vodx::media
