#include "media/encoder.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace vodx::media {

namespace {

/// Splits `content_duration` into segments of `segment_duration` with a
/// shorter tail segment if needed.
std::vector<Seconds> segment_durations(Seconds content_duration,
                                       Seconds segment_duration) {
  VODX_ASSERT(segment_duration > 0, "segment duration must be positive");
  VODX_ASSERT(content_duration >= segment_duration,
              "content shorter than one segment");
  std::vector<Seconds> out;
  Seconds t = 0;
  while (t + segment_duration <= content_duration + 1e-9) {
    out.push_back(segment_duration);
    t += segment_duration;
  }
  if (content_duration - t > 0.25) out.push_back(content_duration - t);
  return out;
}

}  // namespace

Track encode_video_track(const std::string& id, Bps declared_bitrate,
                         Seconds content_duration, Seconds segment_duration,
                         const EncoderConfig& config,
                         const SceneComplexity& scenes, Rng& rng) {
  VODX_ASSERT(declared_bitrate > 0, "declared bitrate must be positive");
  const std::vector<Seconds> durations =
      segment_durations(content_duration, segment_duration);

  // Per-segment complexity multipliers, normalised to mean 1 after clipping.
  std::vector<double> mult(durations.size(), 1.0);
  double cap = 1.0;
  if (config.mode == EncodingMode::kVbr) {
    cap = config.declared_policy == DeclaredPolicy::kPeak
              ? config.peak_to_average
              : config.average_policy_peak;
    Seconds t = 0;
    for (std::size_t i = 0; i < durations.size(); ++i) {
      mult[i] = std::min(scenes.average_over(t, t + durations[i]), cap);
      t += durations[i];
    }
    double weighted = 0;
    for (std::size_t i = 0; i < durations.size(); ++i)
      weighted += mult[i] * durations[i];
    const double mean = weighted / content_duration;
    for (double& m : mult) m /= mean;
  } else {
    for (double& m : mult)
      m = 1.0 + rng.uniform(-config.cbr_jitter, config.cbr_jitter);
  }

  // Average actual bitrate implied by the declared policy.
  Bps average = declared_bitrate;
  if (config.mode == EncodingMode::kVbr &&
      config.declared_policy == DeclaredPolicy::kPeak) {
    average = declared_bitrate / config.peak_to_average;
  }

  std::vector<Segment> segments;
  segments.reserve(durations.size());
  for (std::size_t i = 0; i < durations.size(); ++i) {
    Segment s;
    s.duration = durations[i];
    s.size = std::max<Bytes>(1, bytes_for(average * mult[i], durations[i]));
    segments.push_back(s);
  }
  return Track(id, ContentType::kVideo, declared_bitrate,
               typical_resolution_for(declared_bitrate), std::move(segments));
}

std::vector<Track> encode_video_ladder(const std::vector<Bps>& declared,
                                       Seconds content_duration,
                                       Seconds segment_duration,
                                       const EncoderConfig& config,
                                       const SceneComplexity& scenes,
                                       Rng& rng) {
  VODX_ASSERT(!declared.empty(), "empty ladder");
  VODX_ASSERT(std::is_sorted(declared.begin(), declared.end()),
              "ladder must be ascending");
  std::vector<Track> tracks;
  tracks.reserve(declared.size());
  for (std::size_t rung = 0; rung < declared.size(); ++rung) {
    tracks.push_back(encode_video_track(
        "video/" + std::to_string(rung), declared[rung], content_duration,
        segment_duration, config, scenes, rng));
  }
  return tracks;
}

Track encode_audio_track(Bps bitrate, Seconds content_duration,
                         Seconds segment_duration, Rng& rng, int level) {
  const std::vector<Seconds> durations =
      segment_durations(content_duration, segment_duration);
  std::vector<Segment> segments;
  segments.reserve(durations.size());
  for (Seconds d : durations) {
    Segment s;
    s.duration = d;
    s.size = std::max<Bytes>(
        1, bytes_for(bitrate * (1.0 + rng.uniform(-0.02, 0.02)), d));
    segments.push_back(s);
  }
  return Track("audio/" + std::to_string(level), ContentType::kAudio, bitrate,
               Resolution{}, std::move(segments));
}

}  // namespace vodx::media
