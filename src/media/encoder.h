// Synthetic encoder.
//
// Produces per-segment sizes for a bitrate ladder without touching real
// pixels. What matters downstream is the *statistics* the paper measures:
//
//  * CBR: every segment of a track has (nearly) the same actual bitrate, so
//    the declared bitrate is a good proxy (§4.2 history).
//  * VBR with peak-declared: actual segment bitrates vary ~2x within a track
//    and the declared bitrate sits near the per-track peak, so the average
//    actual bitrate is roughly half the declared one (Fig. 5, D2's 2x gap).
//  * VBR with average-declared: declared sits near the average, so some
//    segments exceed it (Fig. 5, S1/S2).
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "media/scene.h"
#include "media/track.h"

namespace vodx::media {

enum class EncodingMode { kCbr, kVbr };

/// How the manifest's declared bitrate relates to the actual encoding.
enum class DeclaredPolicy { kPeak, kAverage };

struct EncoderConfig {
  EncodingMode mode = EncodingMode::kVbr;
  DeclaredPolicy declared_policy = DeclaredPolicy::kPeak;
  /// declared/average ratio enforced for kVbr+kPeak (the paper observes ~2).
  double peak_to_average = 2.0;
  /// Peak cap relative to average for kVbr+kAverage encodings.
  double average_policy_peak = 1.5;
  /// Relative size jitter for kCbr segments.
  double cbr_jitter = 0.03;
};

/// Encodes one video track. `declared_bitrate` is what the manifest will
/// advertise; actual segment sizes follow the config and scene complexity.
Track encode_video_track(const std::string& id, Bps declared_bitrate,
                         Seconds content_duration, Seconds segment_duration,
                         const EncoderConfig& config,
                         const SceneComplexity& scenes, Rng& rng);

/// Encodes a full ladder; all rungs share `scenes` so size variations line up
/// across tracks. Track ids are "video/<rung>". Rungs must be ascending.
std::vector<Track> encode_video_ladder(const std::vector<Bps>& declared,
                                       Seconds content_duration,
                                       Seconds segment_duration,
                                       const EncoderConfig& config,
                                       const SceneComplexity& scenes,
                                       Rng& rng);

/// Audio is always (near-)CBR. Track id is "audio/<level>".
Track encode_audio_track(Bps bitrate, Seconds content_duration,
                         Seconds segment_duration, Rng& rng, int level = 0);

}  // namespace vodx::media
