// Segment and track model.
//
// A track is one encoding (quality level) of the content, split into
// segments. Segment sizes are what a real encoder would have produced; all
// byte accounting downstream (HTTP transfers, data-usage analysis) derives
// from them.
#pragma once

#include <string>
#include <vector>

#include "common/units.h"
#include "media/types.h"

namespace vodx::media {

struct Segment {
  int index = 0;          ///< position within the track, 0-based
  Seconds duration = 0;   ///< presentation duration
  Bytes size = 0;         ///< encoded size
  Bytes offset = 0;       ///< byte offset inside the track's media file

  Bps actual_bitrate() const { return rate_of(size, duration); }
};

class Track {
 public:
  Track(std::string id, ContentType type, Bps declared_bitrate,
        Resolution resolution, std::vector<Segment> segments);

  const std::string& id() const { return id_; }
  ContentType type() const { return type_; }

  /// The bitrate advertised in the manifest (§2.1 "declared bitrate").
  Bps declared_bitrate() const { return declared_bitrate_; }
  Resolution resolution() const { return resolution_; }

  const std::vector<Segment>& segments() const { return segments_; }
  const Segment& segment(int index) const;
  int segment_count() const { return static_cast<int>(segments_.size()); }

  Seconds duration() const { return duration_; }
  Bytes total_size() const { return total_size_; }

  /// Mean of per-segment actual bitrates, duration-weighted.
  Bps average_actual_bitrate() const;
  Bps peak_actual_bitrate() const;

  /// Index of the segment covering presentation time t (clamped to the last).
  int segment_index_at(Seconds t) const;

  /// Presentation start time of a segment.
  Seconds segment_start(int index) const;

 private:
  std::string id_;
  ContentType type_;
  Bps declared_bitrate_;
  Resolution resolution_;
  std::vector<Segment> segments_;
  std::vector<Seconds> starts_;  // cumulative start times
  Seconds duration_ = 0;
  Bytes total_size_ = 0;
};

}  // namespace vodx::media
