// A complete piece of content as hosted by an origin: the video track ladder
// and, for services that encode audio separately (§3.1), the audio tracks.
#pragma once

#include <string>
#include <vector>

#include "common/units.h"
#include "media/track.h"

namespace vodx::media {

class VideoAsset {
 public:
  VideoAsset(std::string name, std::vector<Track> video_tracks,
             std::vector<Track> audio_tracks = {});

  const std::string& name() const { return name_; }

  /// Video tracks in ascending declared-bitrate order.
  const std::vector<Track>& video_tracks() const { return video_tracks_; }
  const std::vector<Track>& audio_tracks() const { return audio_tracks_; }

  bool separate_audio() const { return !audio_tracks_.empty(); }

  const Track& video_track(int level) const;
  const Track& audio_track(int level) const;
  int video_track_count() const { return static_cast<int>(video_tracks_.size()); }

  /// Level (index into video_tracks) of a track id; -1 if unknown.
  int video_level_of(const std::string& track_id) const;

  Seconds duration() const { return video_tracks_.front().duration(); }
  Bps lowest_declared_bitrate() const;
  Bps highest_declared_bitrate() const;

 private:
  std::string name_;
  std::vector<Track> video_tracks_;
  std::vector<Track> audio_tracks_;
};

}  // namespace vodx::media
