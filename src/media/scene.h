// Scene-complexity model.
//
// VBR encoders spend bits where the content needs them: complex, high-motion
// scenes get larger segments. We model content as a sequence of scenes with
// log-normally distributed durations and complexity factors; the per-segment
// complexity is the time-weighted average of the scenes it spans. All tracks
// of one asset share the same complexity sequence, so "segment 17 is big" is
// true at every quality level — exactly the property the actual-bitrate-aware
// ABR of §4.2 exploits.
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace vodx::media {

struct SceneModelConfig {
  Seconds mean_scene_duration = 8.0;
  double duration_sigma = 0.6;    ///< sigma of log-normal scene durations
  double complexity_sigma = 0.5;  ///< sigma of log-normal scene complexity
};

/// A piecewise-constant complexity profile over the content timeline.
class SceneComplexity {
 public:
  /// Generates scenes covering at least `duration` seconds.
  static SceneComplexity generate(Seconds duration, Rng& rng,
                                  const SceneModelConfig& config = {});

  /// Mean complexity over [t0, t1); overall mean is normalised to ~1.
  double average_over(Seconds t0, Seconds t1) const;

  Seconds duration() const { return duration_; }

 private:
  struct Scene {
    Seconds start;
    double complexity;
  };
  std::vector<Scene> scenes_;
  Seconds duration_ = 0;
};

}  // namespace vodx::media
