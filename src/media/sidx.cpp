#include "media/sidx.h"

#include <cmath>

#include "common/error.h"

namespace vodx::media {

namespace {

constexpr std::uint32_t kFullBoxHeader = 12;  // size + fourcc + version/flags

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v >> 8));
  out.push_back(static_cast<char>(v & 0xFF));
}

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v >> 24));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>(v & 0xFF));
}

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  std::uint16_t u16() { return static_cast<std::uint16_t>(byte() << 8 | byte()); }

  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = v << 8 | byte();
    return v;
  }

  std::string fourcc() {
    std::string out;
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(byte()));
    return out;
  }

  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::uint8_t byte() {
    if (pos_ >= data_.size()) throw ParseError("sidx truncated");
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace

std::uint32_t SidxBox::box_size() const {
  // FullBox header + reference_ID + timescale + EPT + first_offset +
  // reserved/reference_count + 12 bytes per reference (version 0).
  return kFullBoxHeader + 4 + 4 + 4 + 4 + 4 +
         12 * static_cast<std::uint32_t>(references.size());
}

SidxBox sidx_for_track(const Track& track, std::uint32_t timescale) {
  VODX_ASSERT(timescale > 0, "timescale must be positive");
  SidxBox box;
  box.timescale = timescale;
  box.references.reserve(track.segments().size());
  for (const Segment& s : track.segments()) {
    SidxReference ref;
    ref.referenced_size = static_cast<std::uint32_t>(s.size);
    ref.subsegment_duration = static_cast<std::uint32_t>(
        std::llround(s.duration * static_cast<double>(timescale)));
    box.references.push_back(ref);
  }
  return box;
}

std::string serialize_sidx(const SidxBox& box) {
  std::string out;
  out.reserve(box.box_size());
  put_u32(out, box.box_size());
  out += "sidx";
  put_u32(out, 0);  // version 0, flags 0
  put_u32(out, box.reference_id);
  put_u32(out, box.timescale);
  put_u32(out, static_cast<std::uint32_t>(box.earliest_presentation_time));
  put_u32(out, static_cast<std::uint32_t>(box.first_offset));
  put_u16(out, 0);  // reserved
  put_u16(out, static_cast<std::uint16_t>(box.references.size()));
  for (const SidxReference& ref : box.references) {
    VODX_ASSERT((ref.referenced_size & 0x80000000U) == 0,
                "referenced_size exceeds 31 bits");
    put_u32(out, ref.referenced_size);  // reference_type bit = 0 (media)
    put_u32(out, ref.subsegment_duration);
    put_u32(out, 0x90000000U);  // starts_with_SAP=1, SAP_type=1, delta=0
  }
  return out;
}

SidxBox parse_sidx(std::string_view data) {
  Reader r(data);
  const std::uint32_t size = r.u32();
  if (size > data.size()) throw ParseError("sidx box size exceeds buffer");
  if (r.fourcc() != "sidx") throw ParseError("not a sidx box");
  const std::uint32_t version_flags = r.u32();
  const std::uint8_t version = static_cast<std::uint8_t>(version_flags >> 24);
  if (version != 0) throw ParseError("only sidx version 0 supported");

  SidxBox box;
  box.reference_id = r.u32();
  box.timescale = r.u32();
  if (box.timescale == 0) throw ParseError("sidx timescale is zero");
  box.earliest_presentation_time = r.u32();
  box.first_offset = r.u32();
  r.u16();  // reserved
  const std::uint16_t count = r.u16();
  box.references.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    SidxReference ref;
    const std::uint32_t type_size = r.u32();
    if (type_size & 0x80000000U) {
      throw ParseError("nested sidx references not supported");
    }
    ref.referenced_size = type_size;
    ref.subsegment_duration = r.u32();
    r.u32();  // SAP info
    box.references.push_back(ref);
  }
  return box;
}

}  // namespace vodx::media
