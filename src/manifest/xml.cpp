#include "manifest/xml.h"

#include <cctype>

#include "common/error.h"
#include "common/strings.h"

namespace vodx::manifest {

void XmlNode::set_attr(const std::string& key, const std::string& value) {
  for (auto& [k, v] : attrs_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  attrs_.emplace_back(key, value);
}

std::optional<std::string> XmlNode::attr(const std::string& key) const {
  for (const auto& [k, v] : attrs_) {
    if (k == key) return v;
  }
  return std::nullopt;
}

std::string XmlNode::required_attr(const std::string& key) const {
  auto value = attr(key);
  if (!value) {
    throw ParseError("<" + name_ + "> missing attribute '" + key + "'");
  }
  return *value;
}

XmlNode& XmlNode::add_child(std::string name) {
  children_.push_back(std::make_unique<XmlNode>(std::move(name)));
  return *children_.back();
}

void XmlNode::adopt_child(std::unique_ptr<XmlNode> child) {
  children_.push_back(std::move(child));
}

const XmlNode* XmlNode::child(std::string_view name) const {
  for (const auto& c : children_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::children_named(
    std::string_view name) const {
  std::vector<const XmlNode*> out;
  for (const auto& c : children_) {
    if (c->name() == name) out.push_back(c.get());
  }
  return out;
}

std::string xml_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string XmlNode::serialize(int indent) const {
  std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  std::string out = pad + "<" + name_;
  for (const auto& [k, v] : attrs_) {
    out += " " + k + "=\"" + xml_escape(v) + "\"";
  }
  if (children_.empty() && text_.empty()) {
    out += "/>\n";
    return out;
  }
  out += ">";
  if (!text_.empty()) out += xml_escape(text_);
  if (!children_.empty()) {
    out += "\n";
    for (const auto& c : children_) out += c->serialize(indent + 1);
    out += pad;
  }
  out += "</" + name_ + ">\n";
  return out;
}

std::string serialize_document(const XmlNode& root) {
  return "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n" + root.serialize();
}

namespace {

class XmlParser {
 public:
  explicit XmlParser(std::string_view text) : text_(text) {}

  std::unique_ptr<XmlNode> parse() {
    skip_misc();
    auto root = parse_element();
    skip_misc();
    if (pos_ != text_.size()) throw ParseError("trailing content after root");
    return root;
  }

 private:
  void skip_whitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  /// Skips whitespace, XML declarations and comments.
  void skip_misc() {
    while (true) {
      skip_whitespace();
      if (lookahead("<?")) {
        std::size_t end = text_.find("?>", pos_);
        if (end == std::string_view::npos) throw ParseError("unterminated <?");
        pos_ = end + 2;
      } else if (lookahead("<!--")) {
        std::size_t end = text_.find("-->", pos_);
        if (end == std::string_view::npos)
          throw ParseError("unterminated comment");
        pos_ = end + 3;
      } else {
        return;
      }
    }
  }

  bool lookahead(std::string_view prefix) const {
    return text_.substr(pos_, prefix.size()) == prefix;
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      throw ParseError(std::string("expected '") + c + "' in XML");
    }
    ++pos_;
  }

  std::string parse_name() {
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == ':' || text_[pos_] == '_' || text_[pos_] == '-' ||
            text_[pos_] == '.')) {
      ++pos_;
    }
    if (pos_ == start) throw ParseError("expected XML name");
    return std::string(text_.substr(start, pos_ - start));
  }

  std::string unescape(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size();) {
      if (raw[i] != '&') {
        out += raw[i++];
        continue;
      }
      std::size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) throw ParseError("bad entity");
      std::string_view entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "amp") out += '&';
      else if (entity == "lt") out += '<';
      else if (entity == "gt") out += '>';
      else if (entity == "quot") out += '"';
      else if (entity == "apos") out += '\'';
      else throw ParseError("unknown entity &" + std::string(entity) + ";");
      i = semi + 1;
    }
    return out;
  }

  std::unique_ptr<XmlNode> parse_element() {
    expect('<');
    auto node = std::make_unique<XmlNode>(parse_name());
    // Attributes.
    while (true) {
      skip_whitespace();
      if (lookahead("/>")) {
        pos_ += 2;
        return node;
      }
      if (lookahead(">")) {
        ++pos_;
        break;
      }
      std::string key = parse_name();
      skip_whitespace();
      expect('=');
      skip_whitespace();
      expect('"');
      std::size_t end = text_.find('"', pos_);
      if (end == std::string_view::npos)
        throw ParseError("unterminated attribute value");
      node->set_attr(key, unescape(text_.substr(pos_, end - pos_)));
      pos_ = end + 1;
    }
    // Content: text and child elements until the closing tag.
    std::string text;
    while (true) {
      if (pos_ >= text_.size()) throw ParseError("unexpected end of XML");
      if (lookahead("</")) {
        pos_ += 2;
        std::string closing = parse_name();
        if (closing != node->name()) {
          throw ParseError("mismatched </" + closing + "> for <" +
                           node->name() + ">");
        }
        skip_whitespace();
        expect('>');
        node->set_text(unescape(trim(text)));
        return node;
      }
      if (lookahead("<!--")) {
        std::size_t end = text_.find("-->", pos_);
        if (end == std::string_view::npos)
          throw ParseError("unterminated comment");
        pos_ = end + 3;
        continue;
      }
      if (lookahead("<")) {
        node->adopt_child(parse_element());
        continue;
      }
      text += text_[pos_++];
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::unique_ptr<XmlNode> parse_xml(std::string_view text) {
  return XmlParser(text).parse();
}

}  // namespace vodx::manifest
