// Minimal XML document model, writer and parser.
//
// Covers the subset DASH MPDs and SmoothStreaming manifests need: nested
// elements, attributes, text nodes, self-closing tags, XML declarations and
// comments. No namespace resolution (names are kept verbatim) and only the
// five predefined entities.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace vodx::manifest {

class XmlNode {
 public:
  explicit XmlNode(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Attributes preserve insertion order (stable serialisation).
  void set_attr(const std::string& key, const std::string& value);
  std::optional<std::string> attr(const std::string& key) const;

  /// Attribute that must exist; throws ParseError otherwise.
  std::string required_attr(const std::string& key) const;

  XmlNode& add_child(std::string name);
  void adopt_child(std::unique_ptr<XmlNode> child);
  const std::vector<std::unique_ptr<XmlNode>>& children() const {
    return children_;
  }

  /// First child with the given element name, or nullptr.
  const XmlNode* child(std::string_view name) const;
  /// All children with the given element name.
  std::vector<const XmlNode*> children_named(std::string_view name) const;

  void set_text(std::string text) { text_ = std::move(text); }
  const std::string& text() const { return text_; }

  /// Serialises this node (and subtree) with 2-space indentation.
  std::string serialize(int indent = 0) const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> attrs_;
  std::vector<std::unique_ptr<XmlNode>> children_;
  std::string text_;
};

/// Serialises with an XML declaration prepended.
std::string serialize_document(const XmlNode& root);

/// Parses a document; throws ParseError on malformed input.
std::unique_ptr<XmlNode> parse_xml(std::string_view text);

std::string xml_escape(std::string_view text);

}  // namespace vodx::manifest
