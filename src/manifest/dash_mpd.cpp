#include "manifest/dash_mpd.h"

#include <cctype>
#include <cmath>

#include "common/error.h"
#include "common/strings.h"
#include "manifest/xml.h"

namespace vodx::manifest {

namespace {

constexpr std::uint32_t kTimescale = 1000;

/// Run-length encodes durations into SegmentTimeline S@d/@r elements.
void serialize_timeline(XmlNode& parent, const std::vector<Seconds>& durations) {
  XmlNode& timeline = parent.add_child("SegmentTimeline");
  std::size_t i = 0;
  while (i < durations.size()) {
    auto ticks = static_cast<long long>(
        std::llround(durations[i] * kTimescale));
    std::size_t j = i + 1;
    while (j < durations.size() &&
           std::llround(durations[j] * kTimescale) == ticks) {
      ++j;
    }
    XmlNode& s = timeline.add_child("S");
    s.set_attr("d", std::to_string(ticks));
    if (j - i > 1) s.set_attr("r", std::to_string(j - i - 1));
    i = j;
  }
}

std::vector<Seconds> parse_timeline(const XmlNode& parent,
                                    std::uint32_t timescale) {
  const XmlNode* timeline = parent.child("SegmentTimeline");
  if (timeline == nullptr) {
    throw ParseError("<" + parent.name() + "> needs SegmentTimeline");
  }
  std::vector<Seconds> durations;
  for (const XmlNode* s : timeline->children_named("S")) {
    Seconds d = static_cast<double>(parse_int(s->required_attr("d"))) /
                timescale;
    std::int64_t repeat = parse_int(s->attr("r").value_or("0"));
    for (std::int64_t k = 0; k <= repeat; ++k) durations.push_back(d);
  }
  return durations;
}

void serialize_segment_list(XmlNode& parent,
                            const std::vector<DashSegmentRef>& segments) {
  XmlNode& list = parent.add_child("SegmentList");
  list.set_attr("timescale", std::to_string(kTimescale));
  std::vector<Seconds> durations;
  for (const DashSegmentRef& seg : segments) durations.push_back(seg.duration);
  serialize_timeline(list, durations);
  for (const DashSegmentRef& seg : segments) {
    XmlNode& url = list.add_child("SegmentURL");
    url.set_attr("mediaRange", seg.media_range.to_string());
  }
}

void serialize_segment_template(XmlNode& parent,
                                const DashRepresentation& rep) {
  XmlNode& tmpl = parent.add_child("SegmentTemplate");
  tmpl.set_attr("timescale", std::to_string(kTimescale));
  tmpl.set_attr("media", rep.media_template);
  tmpl.set_attr("startNumber", std::to_string(rep.start_number));
  serialize_timeline(tmpl, rep.template_durations);
}

std::vector<DashSegmentRef> parse_segment_list(const XmlNode& list) {
  const std::uint32_t timescale = static_cast<std::uint32_t>(
      parse_int(list.attr("timescale").value_or("1")));
  std::vector<Seconds> durations = parse_timeline(list, timescale);
  std::vector<DashSegmentRef> segments;
  std::size_t i = 0;
  for (const XmlNode* url : list.children_named("SegmentURL")) {
    if (i >= durations.size()) {
      throw ParseError("more SegmentURLs than timeline entries");
    }
    DashSegmentRef ref;
    ref.duration = durations[i++];
    ref.media_range = ByteRange::parse(url->required_attr("mediaRange"));
    segments.push_back(ref);
  }
  if (i != durations.size()) {
    throw ParseError("timeline entries do not match SegmentURLs");
  }
  return segments;
}

}  // namespace

std::string DashRepresentation::template_url(int index) const {
  VODX_ASSERT(!media_template.empty(), "representation has no template");
  const std::string number = std::to_string(start_number + index);
  std::string out = media_template;
  std::size_t pos = 0;
  while ((pos = out.find("$Number$", pos)) != std::string::npos) {
    out.replace(pos, 8, number);
    pos += number.size();
  }
  return out;
}

std::string iso8601_duration(Seconds seconds) {
  VODX_ASSERT(seconds >= 0, "negative duration");
  long long whole = static_cast<long long>(seconds);
  double frac = seconds - static_cast<double>(whole);
  long long hours = whole / 3600;
  long long minutes = (whole % 3600) / 60;
  double secs = static_cast<double>(whole % 60) + frac;
  std::string out = "PT";
  if (hours > 0) out += format("%lldH", hours);
  if (minutes > 0) out += format("%lldM", minutes);
  out += format("%.3fS", secs);
  return out;
}

Seconds parse_iso8601_duration(std::string_view text) {
  if (!starts_with(text, "PT")) {
    throw ParseError("duration must start with PT: " + std::string(text));
  }
  text.remove_prefix(2);
  Seconds total = 0;
  std::string number;
  for (char c : text) {
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      number += c;
    } else {
      if (number.empty()) throw ParseError("malformed ISO 8601 duration");
      double value = parse_double(number);
      switch (c) {
        case 'H': total += value * 3600; break;
        case 'M': total += value * 60; break;
        case 'S': total += value; break;
        default:
          throw ParseError("unknown duration designator");
      }
      number.clear();
    }
  }
  if (!number.empty()) throw ParseError("trailing digits in duration");
  return total;
}

std::string DashMpd::serialize() const {
  XmlNode root("MPD");
  root.set_attr("xmlns", "urn:mpeg:dash:schema:mpd:2011");
  root.set_attr("type", "static");
  root.set_attr("mediaPresentationDuration",
                iso8601_duration(media_presentation_duration));
  root.set_attr("profiles", "urn:mpeg:dash:profile:isoff-on-demand:2011");
  XmlNode& period = root.add_child("Period");
  for (const DashAdaptationSet& set : adaptation_sets) {
    XmlNode& set_node = period.add_child("AdaptationSet");
    const bool video = set.content_type == media::ContentType::kVideo;
    set_node.set_attr("contentType", video ? "video" : "audio");
    set_node.set_attr("mimeType", video ? "video/mp4" : "audio/mp4");
    for (const DashRepresentation& rep : set.representations) {
      XmlNode& rep_node = set_node.add_child("Representation");
      rep_node.set_attr("id", rep.id);
      rep_node.set_attr(
          "bandwidth",
          std::to_string(static_cast<long long>(std::llround(rep.bandwidth))));
      if (rep.resolution.width > 0) {
        rep_node.set_attr("width", std::to_string(rep.resolution.width));
        rep_node.set_attr("height", std::to_string(rep.resolution.height));
      }
      if (!rep.base_url.empty()) {
        rep_node.add_child("BaseURL").set_text(rep.base_url);
      }
      if (rep.index_range) {
        XmlNode& base = rep_node.add_child("SegmentBase");
        base.set_attr("indexRange", rep.index_range->to_string());
      } else if (!rep.media_template.empty()) {
        serialize_segment_template(rep_node, rep);
      } else {
        serialize_segment_list(rep_node, rep.segments);
      }
    }
  }
  return serialize_document(root);
}

DashMpd DashMpd::parse(std::string_view text) {
  std::unique_ptr<XmlNode> root = parse_xml(text);
  if (root->name() != "MPD") throw ParseError("root element must be MPD");
  DashMpd mpd;
  mpd.media_presentation_duration =
      parse_iso8601_duration(root->required_attr("mediaPresentationDuration"));
  const XmlNode* period = root->child("Period");
  if (period == nullptr) throw ParseError("MPD needs a Period");
  for (const XmlNode* set_node : period->children_named("AdaptationSet")) {
    DashAdaptationSet set;
    set.content_type = set_node->attr("contentType").value_or("video") == "audio"
                           ? media::ContentType::kAudio
                           : media::ContentType::kVideo;
    for (const XmlNode* rep_node : set_node->children_named("Representation")) {
      DashRepresentation rep;
      rep.id = rep_node->required_attr("id");
      rep.bandwidth = static_cast<Bps>(parse_int(rep_node->required_attr("bandwidth")));
      if (auto w = rep_node->attr("width")) {
        rep.resolution.width = static_cast<int>(parse_int(*w));
        rep.resolution.height =
            static_cast<int>(parse_int(rep_node->required_attr("height")));
      }
      if (const XmlNode* base_url = rep_node->child("BaseURL")) {
        rep.base_url = base_url->text();
      }
      if (const XmlNode* segment_base = rep_node->child("SegmentBase")) {
        if (rep.base_url.empty()) {
          throw ParseError("SegmentBase needs a BaseURL");
        }
        rep.index_range =
            ByteRange::parse(segment_base->required_attr("indexRange"));
      } else if (const XmlNode* list = rep_node->child("SegmentList")) {
        if (rep.base_url.empty()) {
          throw ParseError("SegmentList needs a BaseURL");
        }
        rep.segments = parse_segment_list(*list);
      } else if (const XmlNode* tmpl = rep_node->child("SegmentTemplate")) {
        rep.media_template = tmpl->required_attr("media");
        rep.start_number = static_cast<int>(
            parse_int(tmpl->attr("startNumber").value_or("1")));
        const auto timescale = static_cast<std::uint32_t>(
            parse_int(tmpl->attr("timescale").value_or("1")));
        rep.template_durations = parse_timeline(*tmpl, timescale);
      } else {
        throw ParseError(
            "Representation needs SegmentBase, SegmentList or "
            "SegmentTemplate");
      }
      set.representations.push_back(std::move(rep));
    }
    mpd.adaptation_sets.push_back(std::move(set));
  }
  return mpd;
}

}  // namespace vodx::manifest
