// DASH Media Presentation Description (ISO/IEC 23009-1 subset).
//
// Two indexing modes, matching what the paper observed in the wild (§2.3):
//  * kSegmentList — segment byte ranges and durations directly in the MPD
//    (SegmentList + SegmentTimeline), the D1 style;
//  * kSidx — the MPD only names the media file and the sidx index range
//    (SegmentBase@indexRange), the D2/D3/D4 style; clients fetch and parse
//    the sidx to learn per-segment ranges.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/units.h"
#include "manifest/presentation.h"
#include "media/types.h"

namespace vodx::manifest {

enum class DashIndexMode {
  kSegmentList,     ///< byte ranges and durations inline in the MPD (D1)
  kSidx,            ///< SegmentBase@indexRange -> sidx in the media file
  kSegmentTemplate  ///< $Number$-templated per-segment files (no sizes)
};

struct DashSegmentRef {
  Seconds duration = 0;
  ByteRange media_range;
};

struct DashRepresentation {
  std::string id;
  Bps bandwidth = 0;
  media::Resolution resolution;  ///< zero for audio
  std::string base_url;          ///< media file, relative to the MPD
  /// kSidx mode: where the sidx box sits inside the media file.
  std::optional<ByteRange> index_range;
  /// kSegmentList mode: explicit per-segment ranges and durations.
  std::vector<DashSegmentRef> segments;
  /// kSegmentTemplate mode: $Number$ template plus per-segment durations.
  std::string media_template;
  int start_number = 1;
  std::vector<Seconds> template_durations;

  /// Expands the $Number$ template for segment `index` (0-based).
  std::string template_url(int index) const;
};

struct DashAdaptationSet {
  media::ContentType content_type = media::ContentType::kVideo;
  std::vector<DashRepresentation> representations;
};

struct DashMpd {
  Seconds media_presentation_duration = 0;
  std::vector<DashAdaptationSet> adaptation_sets;

  std::string serialize() const;
  static DashMpd parse(std::string_view text);
};

/// ISO 8601 duration helpers ("PT1M30.5S").
std::string iso8601_duration(Seconds seconds);
Seconds parse_iso8601_duration(std::string_view text);

}  // namespace vodx::manifest
