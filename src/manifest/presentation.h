// Protocol-neutral client-side view of a media presentation.
//
// Whatever HAS protocol a service speaks, after resolving its manifests the
// client (and the traffic analyzer) ends up with this structure: tracks with
// declared bitrates and, per segment, a URL (plus optional byte range),
// duration, and — when the protocol exposes it — the exact size.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/units.h"
#include "media/types.h"

namespace vodx::manifest {

/// The three HAS protocol families the studied services use (§2.3).
enum class Protocol { kHls, kDash, kSmooth };

inline const char* to_string(Protocol p) {
  switch (p) {
    case Protocol::kHls: return "HLS";
    case Protocol::kDash: return "DASH";
    case Protocol::kSmooth: return "SmoothStreaming";
  }
  return "?";
}

struct ByteRange {
  Bytes first = 0;
  Bytes last = 0;  ///< inclusive, HTTP style

  Bytes length() const { return last - first + 1; }
  bool operator==(const ByteRange&) const = default;

  std::string to_string() const;
  /// Parses "first-last"; throws ParseError.
  static ByteRange parse(std::string_view text);
};

/// Where to fetch a piece of media.
struct MediaRef {
  std::string url;
  std::optional<ByteRange> range;

  bool operator==(const MediaRef&) const = default;
};

struct ClientSegment {
  int index = 0;
  Seconds duration = 0;
  MediaRef ref;
  /// Exact encoded size when the protocol exposes it (DASH byte ranges /
  /// sidx); 0 when unknown (HLS without ranges, SmoothStreaming).
  Bytes size = 0;

  /// Actual bitrate if the size is known, otherwise 0.
  Bps actual_bitrate() const { return size ? rate_of(size, duration) : 0.0; }
};

struct ClientTrack {
  std::string id;
  media::ContentType type = media::ContentType::kVideo;
  Bps declared_bitrate = 0;
  /// HLS AVERAGE-BANDWIDTH when the master playlist carries it (§4.2's
  /// "HLS also supports reporting the average bitrate"); 0 when absent.
  Bps average_bandwidth = 0;
  media::Resolution resolution;
  std::vector<ClientSegment> segments;
  bool sizes_known = false;

  Seconds duration() const;
  Seconds segment_start(int index) const;
  int segment_index_at(Seconds t) const;
  Bps average_actual_bitrate() const;  ///< 0 when sizes unknown
};

struct Presentation {
  std::vector<ClientTrack> video;  ///< ascending declared bitrate
  std::vector<ClientTrack> audio;

  Seconds duration() const;
  bool separate_audio() const { return !audio.empty(); }

  /// Sorts ladders ascending by declared bitrate (call after building).
  void sort_tracks();

  /// Video level whose track id matches; -1 if absent.
  int video_level_of(const std::string& track_id) const;
};

}  // namespace vodx::manifest
