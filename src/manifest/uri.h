// URI path helpers for resolving manifest-internal references.
//
// The simulated origin uses absolute paths ("/video/2/seg7.ts") as URLs.
// Manifests carry references relative to the manifest's own location, exactly
// like real HLS/DASH deployments.
#pragma once

#include <string>
#include <string_view>

namespace vodx::manifest {

/// Directory of a URL path: "/a/b/c.m3u8" -> "/a/b/".
std::string uri_directory(std::string_view url);

/// Resolves `reference` against `base_url`. Absolute references (leading '/')
/// are returned as-is; relative ones are joined to the base's directory.
/// "." and ".." path components are normalised.
std::string uri_resolve(std::string_view base_url, std::string_view reference);

}  // namespace vodx::manifest
