// HTTP Live Streaming playlists (RFC 8216 subset).
//
// Master playlist: EXT-X-STREAM-INF variants with BANDWIDTH (the declared
// bitrate — HLS requires the peak), optional AVERAGE-BANDWIDTH and
// RESOLUTION. Media playlist: EXTINF segment durations and URIs, with
// optional EXT-X-BYTERANGE (HLS v4+). Both directions: generation on the
// origin, parsing in the client and in the traffic analyzer.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/units.h"
#include "manifest/presentation.h"
#include "media/types.h"

namespace vodx::manifest {

struct HlsVariant {
  Bps bandwidth = 0;  ///< required; peak bits per second
  std::optional<Bps> average_bandwidth;
  media::Resolution resolution;
  std::string uri;  ///< media playlist, relative to the master
};

struct HlsMasterPlaylist {
  std::vector<HlsVariant> variants;

  std::string serialize() const;
  static HlsMasterPlaylist parse(std::string_view text);
};

struct HlsMediaSegment {
  Seconds duration = 0;
  std::string uri;
  std::optional<ByteRange> byterange;
};

struct HlsMediaPlaylist {
  Seconds target_duration = 0;
  std::vector<HlsMediaSegment> segments;

  std::string serialize() const;
  static HlsMediaPlaylist parse(std::string_view text);
};

}  // namespace vodx::manifest
