#include "manifest/smooth.h"

#include <cmath>

#include "common/error.h"
#include "common/strings.h"
#include "manifest/xml.h"

namespace vodx::manifest {

namespace {

std::string replace_all_occurrences(std::string text, std::string_view from,
                                    std::string_view to) {
  std::size_t pos = 0;
  while ((pos = text.find(from, pos)) != std::string::npos) {
    text.replace(pos, from.size(), to);
    pos += to.size();
  }
  return text;
}

}  // namespace

std::string SmoothStreamIndex::fragment_url(Bps bitrate,
                                            std::uint64_t start_ticks) const {
  std::string url = replace_all_occurrences(
      url_template, "{bitrate}",
      std::to_string(static_cast<long long>(std::llround(bitrate))));
  return replace_all_occurrences(url, "{start time}",
                                 std::to_string(start_ticks));
}

std::uint64_t SmoothStreamIndex::chunk_start_ticks(int index) const {
  VODX_ASSERT(index >= 0 &&
                  index < static_cast<int>(chunk_durations.size()),
              "chunk index out of range");
  double start = 0;
  for (int i = 0; i < index; ++i) {
    start += chunk_durations[static_cast<std::size_t>(i)];
  }
  return static_cast<std::uint64_t>(
      std::llround(start * static_cast<double>(kSmoothTimescale)));
}

std::string SmoothManifest::serialize() const {
  XmlNode root("SmoothStreamingMedia");
  root.set_attr("MajorVersion", "2");
  root.set_attr("MinorVersion", "0");
  root.set_attr("TimeScale", std::to_string(kSmoothTimescale));
  root.set_attr("Duration",
                std::to_string(static_cast<std::uint64_t>(std::llround(
                    duration * static_cast<double>(kSmoothTimescale)))));
  for (const SmoothStreamIndex& stream : stream_indexes) {
    XmlNode& index = root.add_child("StreamIndex");
    const bool video = stream.type == media::ContentType::kVideo;
    index.set_attr("Type", video ? "video" : "audio");
    index.set_attr("QualityLevels",
                   std::to_string(stream.quality_levels.size()));
    index.set_attr("Chunks", std::to_string(stream.chunk_durations.size()));
    index.set_attr("Url", stream.url_template);
    int level = 0;
    for (const SmoothQualityLevel& q : stream.quality_levels) {
      XmlNode& quality = index.add_child("QualityLevel");
      quality.set_attr("Index", std::to_string(level++));
      quality.set_attr(
          "Bitrate",
          std::to_string(static_cast<long long>(std::llround(q.bitrate))));
      if (q.resolution.width > 0) {
        quality.set_attr("MaxWidth", std::to_string(q.resolution.width));
        quality.set_attr("MaxHeight", std::to_string(q.resolution.height));
      }
    }
    for (Seconds d : stream.chunk_durations) {
      XmlNode& chunk = index.add_child("c");
      chunk.set_attr("d", std::to_string(static_cast<std::uint64_t>(std::llround(
                              d * static_cast<double>(kSmoothTimescale)))));
    }
  }
  return serialize_document(root);
}

SmoothManifest SmoothManifest::parse(std::string_view text) {
  std::unique_ptr<XmlNode> root = parse_xml(text);
  if (root->name() != "SmoothStreamingMedia") {
    throw ParseError("root must be SmoothStreamingMedia");
  }
  const double timescale = static_cast<double>(
      parse_int(root->attr("TimeScale").value_or("10000000")));
  SmoothManifest manifest;
  manifest.duration =
      static_cast<double>(parse_int(root->required_attr("Duration"))) /
      timescale;
  for (const XmlNode* index : root->children_named("StreamIndex")) {
    SmoothStreamIndex stream;
    stream.type = index->required_attr("Type") == "audio"
                      ? media::ContentType::kAudio
                      : media::ContentType::kVideo;
    stream.url_template = index->required_attr("Url");
    for (const XmlNode* quality : index->children_named("QualityLevel")) {
      SmoothQualityLevel q;
      q.bitrate = static_cast<Bps>(parse_int(quality->required_attr("Bitrate")));
      if (auto w = quality->attr("MaxWidth")) {
        q.resolution.width = static_cast<int>(parse_int(*w));
        q.resolution.height =
            static_cast<int>(parse_int(quality->required_attr("MaxHeight")));
      }
      stream.quality_levels.push_back(q);
    }
    for (const XmlNode* chunk : index->children_named("c")) {
      stream.chunk_durations.push_back(
          static_cast<double>(parse_int(chunk->required_attr("d"))) /
          timescale);
    }
    manifest.stream_indexes.push_back(std::move(stream));
  }
  return manifest;
}

}  // namespace vodx::manifest
