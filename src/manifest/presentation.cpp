#include "manifest/presentation.h"

#include <algorithm>

#include "common/error.h"
#include "common/strings.h"

namespace vodx::manifest {

std::string ByteRange::to_string() const {
  return std::to_string(first) + "-" + std::to_string(last);
}

ByteRange ByteRange::parse(std::string_view text) {
  std::size_t dash = text.find('-');
  if (dash == std::string_view::npos) {
    throw ParseError("byte range needs 'first-last': " + std::string(text));
  }
  ByteRange range;
  range.first = parse_int(text.substr(0, dash));
  range.last = parse_int(text.substr(dash + 1));
  if (range.last < range.first || range.first < 0) {
    throw ParseError("invalid byte range: " + std::string(text));
  }
  return range;
}

Seconds ClientTrack::duration() const {
  Seconds total = 0;
  for (const ClientSegment& s : segments) total += s.duration;
  return total;
}

Seconds ClientTrack::segment_start(int index) const {
  VODX_ASSERT(index >= 0 && index <= static_cast<int>(segments.size()),
              "segment index out of range");
  Seconds start = 0;
  for (int i = 0; i < index; ++i) {
    start += segments[static_cast<std::size_t>(i)].duration;
  }
  return start;
}

int ClientTrack::segment_index_at(Seconds t) const {
  Seconds start = 0;
  for (const ClientSegment& s : segments) {
    if (t < start + s.duration) return s.index;
    start += s.duration;
  }
  return static_cast<int>(segments.size()) - 1;
}

Bps ClientTrack::average_actual_bitrate() const {
  if (!sizes_known) return 0;
  Bytes bytes = 0;
  Seconds dur = 0;
  for (const ClientSegment& s : segments) {
    bytes += s.size;
    dur += s.duration;
  }
  return rate_of(bytes, dur);
}

Seconds Presentation::duration() const {
  return video.empty() ? 0 : video.front().duration();
}

void Presentation::sort_tracks() {
  auto by_bitrate = [](const ClientTrack& a, const ClientTrack& b) {
    return a.declared_bitrate < b.declared_bitrate;
  };
  std::sort(video.begin(), video.end(), by_bitrate);
  std::sort(audio.begin(), audio.end(), by_bitrate);
}

int Presentation::video_level_of(const std::string& track_id) const {
  for (std::size_t i = 0; i < video.size(); ++i) {
    if (video[i].id == track_id) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace vodx::manifest
