#include "manifest/hls.h"

#include <cmath>
#include <map>

#include "common/error.h"
#include "common/strings.h"

namespace vodx::manifest {

namespace {

/// Parses an HLS attribute list: comma-separated KEY=value pairs where values
/// may be quoted strings containing commas.
std::map<std::string, std::string> parse_attr_list(std::string_view text) {
  std::map<std::string, std::string> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eq = text.find('=', pos);
    if (eq == std::string_view::npos) {
      throw ParseError("HLS attribute without '=': " + std::string(text));
    }
    std::string key(trim(text.substr(pos, eq - pos)));
    std::size_t value_start = eq + 1;
    std::string value;
    if (value_start < text.size() && text[value_start] == '"') {
      std::size_t end_quote = text.find('"', value_start + 1);
      if (end_quote == std::string_view::npos) {
        throw ParseError("unterminated quoted HLS attribute");
      }
      value = std::string(text.substr(value_start + 1, end_quote - value_start - 1));
      pos = end_quote + 1;
      if (pos < text.size() && text[pos] == ',') ++pos;
    } else {
      std::size_t comma = text.find(',', value_start);
      if (comma == std::string_view::npos) comma = text.size();
      value = std::string(trim(text.substr(value_start, comma - value_start)));
      pos = comma + 1;
    }
    out[key] = value;
  }
  return out;
}

}  // namespace

std::string HlsMasterPlaylist::serialize() const {
  std::string out = "#EXTM3U\n#EXT-X-VERSION:4\n";
  for (const HlsVariant& v : variants) {
    out += format("#EXT-X-STREAM-INF:BANDWIDTH=%lld",
                  static_cast<long long>(std::llround(v.bandwidth)));
    if (v.average_bandwidth) {
      out += format(",AVERAGE-BANDWIDTH=%lld",
                    static_cast<long long>(std::llround(*v.average_bandwidth)));
    }
    if (v.resolution.width > 0) {
      out += format(",RESOLUTION=%dx%d", v.resolution.width,
                    v.resolution.height);
    }
    out += "\n" + v.uri + "\n";
  }
  return out;
}

HlsMasterPlaylist HlsMasterPlaylist::parse(std::string_view text) {
  std::vector<std::string> lines = split_lines(text);
  if (lines.empty() || trim(lines[0]) != "#EXTM3U") {
    throw ParseError("HLS playlist must start with #EXTM3U");
  }
  HlsMasterPlaylist playlist;
  std::optional<HlsVariant> pending;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    std::string_view line = trim(lines[i]);
    if (line.empty()) continue;
    if (starts_with(line, "#EXT-X-STREAM-INF:")) {
      auto attrs = parse_attr_list(line.substr(18));
      HlsVariant v;
      auto it = attrs.find("BANDWIDTH");
      if (it == attrs.end()) {
        throw ParseError("EXT-X-STREAM-INF missing BANDWIDTH");
      }
      v.bandwidth = static_cast<Bps>(parse_int(it->second));
      if (auto avg = attrs.find("AVERAGE-BANDWIDTH"); avg != attrs.end()) {
        v.average_bandwidth = static_cast<Bps>(parse_int(avg->second));
      }
      if (auto res = attrs.find("RESOLUTION"); res != attrs.end()) {
        std::vector<std::string> parts = split(res->second, 'x');
        if (parts.size() != 2) throw ParseError("bad RESOLUTION");
        v.resolution.width = static_cast<int>(parse_int(parts[0]));
        v.resolution.height = static_cast<int>(parse_int(parts[1]));
      }
      pending = v;
    } else if (!starts_with(line, "#")) {
      if (!pending) throw ParseError("variant URI without EXT-X-STREAM-INF");
      pending->uri = std::string(line);
      playlist.variants.push_back(*pending);
      pending.reset();
    }
  }
  if (pending) throw ParseError("EXT-X-STREAM-INF without URI");
  return playlist;
}

std::string HlsMediaPlaylist::serialize() const {
  std::string out = "#EXTM3U\n#EXT-X-VERSION:4\n";
  out += format("#EXT-X-TARGETDURATION:%d",
                static_cast<int>(std::ceil(target_duration)));
  out += "\n#EXT-X-MEDIA-SEQUENCE:0\n#EXT-X-PLAYLIST-TYPE:VOD\n";
  for (const HlsMediaSegment& s : segments) {
    out += format("#EXTINF:%.3f,\n", s.duration);
    if (s.byterange) {
      out += format("#EXT-X-BYTERANGE:%lld@%lld\n",
                    static_cast<long long>(s.byterange->length()),
                    static_cast<long long>(s.byterange->first));
    }
    out += s.uri + "\n";
  }
  out += "#EXT-X-ENDLIST\n";
  return out;
}

HlsMediaPlaylist HlsMediaPlaylist::parse(std::string_view text) {
  std::vector<std::string> lines = split_lines(text);
  if (lines.empty() || trim(lines[0]) != "#EXTM3U") {
    throw ParseError("HLS playlist must start with #EXTM3U");
  }
  HlsMediaPlaylist playlist;
  std::optional<HlsMediaSegment> pending;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    std::string_view line = trim(lines[i]);
    if (line.empty()) continue;
    if (starts_with(line, "#EXT-X-TARGETDURATION:")) {
      playlist.target_duration = parse_double(line.substr(22));
    } else if (starts_with(line, "#EXTINF:")) {
      std::string_view rest = line.substr(8);
      std::size_t comma = rest.find(',');
      if (comma != std::string_view::npos) rest = rest.substr(0, comma);
      HlsMediaSegment segment;
      segment.duration = parse_double(rest);
      pending = segment;
    } else if (starts_with(line, "#EXT-X-BYTERANGE:")) {
      if (!pending) throw ParseError("EXT-X-BYTERANGE without EXTINF");
      std::string_view rest = line.substr(17);
      std::size_t at = rest.find('@');
      if (at == std::string_view::npos) {
        throw ParseError("EXT-X-BYTERANGE needs length@offset");
      }
      Bytes length = parse_int(rest.substr(0, at));
      Bytes offset = parse_int(rest.substr(at + 1));
      pending->byterange = ByteRange{offset, offset + length - 1};
    } else if (line == "#EXT-X-ENDLIST") {
      break;
    } else if (!starts_with(line, "#")) {
      if (!pending) throw ParseError("segment URI without EXTINF");
      pending->uri = std::string(line);
      playlist.segments.push_back(*pending);
      pending.reset();
    }
  }
  if (pending) throw ParseError("EXTINF without URI");
  return playlist;
}

}  // namespace vodx::manifest
