// Microsoft SmoothStreaming client manifest (subset).
//
// SmoothStreaming describes each stream with quality levels and per-chunk
// durations; clients build fragment URLs from a template with {bitrate} and
// {start time} placeholders. No segment sizes are exposed — which is why the
// paper's analyzer issues HTTP HEAD requests to learn them (§3.1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "media/types.h"

namespace vodx::manifest {

/// SmoothStreaming expresses times in 100 ns ticks.
constexpr std::uint64_t kSmoothTimescale = 10'000'000;

struct SmoothQualityLevel {
  Bps bitrate = 0;
  media::Resolution resolution;  ///< zero for audio
};

struct SmoothStreamIndex {
  media::ContentType type = media::ContentType::kVideo;
  /// e.g. "QualityLevels({bitrate})/Fragments(video={start time})"
  std::string url_template;
  std::vector<SmoothQualityLevel> quality_levels;
  std::vector<Seconds> chunk_durations;

  /// Expands the template for one fragment.
  std::string fragment_url(Bps bitrate, std::uint64_t start_ticks) const;

  /// Start tick of chunk `index`.
  std::uint64_t chunk_start_ticks(int index) const;
};

struct SmoothManifest {
  Seconds duration = 0;
  std::vector<SmoothStreamIndex> stream_indexes;

  std::string serialize() const;
  static SmoothManifest parse(std::string_view text);
};

}  // namespace vodx::manifest
