#include "manifest/uri.h"

#include <vector>

#include "common/strings.h"

namespace vodx::manifest {

std::string uri_directory(std::string_view url) {
  std::size_t slash = url.rfind('/');
  if (slash == std::string_view::npos) return "/";
  return std::string(url.substr(0, slash + 1));
}

std::string uri_resolve(std::string_view base_url, std::string_view reference) {
  std::string joined;
  if (!reference.empty() && reference.front() == '/') {
    joined = std::string(reference);
  } else {
    joined = uri_directory(base_url) + std::string(reference);
  }
  // Normalise "." and "..".
  std::vector<std::string> parts;
  for (const std::string& part : split(joined, '/')) {
    if (part.empty() || part == ".") continue;
    if (part == "..") {
      if (!parts.empty()) parts.pop_back();
      continue;
    }
    parts.push_back(part);
  }
  std::string out;
  for (const std::string& part : parts) out += "/" + part;
  return out.empty() ? "/" : out;
}

}  // namespace vodx::manifest
